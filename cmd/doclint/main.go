// Command doclint is the documentation hygiene gate CI's lint job runs:
//
//  1. Every relative link in the repo's markdown files must resolve to an
//     existing file or directory (anchors are stripped first) — dead
//     cross-references between README/DESIGN/PROTOCOL fail the build.
//  2. Every package under internal/ must carry a package comment, so
//     `go doc ./internal/...` is usable as operator documentation.
//
// Usage:
//
//	doclint [markdown files...]   # default: *.md in the repo root
//
// Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)]+)\)`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"doclint — markdown link + package comment checker\n\nUsage:\n  doclint [markdown files...]   (default: *.md in the current directory)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("*.md")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "doclint: no markdown files found")
			os.Exit(1)
		}
	}

	bad := 0
	for _, f := range files {
		bad += checkLinks(f)
	}
	bad += checkPackageComments("internal")
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("doclint: ok (%d markdown files, internal packages documented)\n", len(files))
}

// checkLinks verifies every relative markdown link in path resolves,
// ignoring fenced code blocks and absolute URLs.
func checkLinks(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	dir := filepath.Dir(path)
	bad := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := strings.TrimSpace(m[1])
			if target == "" || strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue // external or intra-document
			}
			target, _, _ = strings.Cut(target, "#") // strip the anchor
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %s:%d: dead link %q\n", path, i+1, m[1])
				bad++
			}
		}
	}
	return bad
}

// checkPackageComments walks root for Go packages and reports every one
// whose files all lack a package comment.
func checkPackageComments(root string) int {
	// Collect the .go files (tests excluded) per directory.
	perDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		perDir[dir] = append(perDir[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	bad := 0
	for dir, files := range perDir {
		documented := false
		for _, f := range files {
			// Doc comments live before the package clause; no bodies needed.
			af, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", f, err)
				bad++
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			fmt.Fprintf(os.Stderr, "doclint: package %s has no package comment\n", dir)
			bad++
		}
	}
	return bad
}
