// Command doclint is the documentation hygiene gate CI's lint job runs:
//
//  1. Every relative link in the repo's markdown files must resolve to an
//     existing file or directory (anchors are stripped first) — dead
//     cross-references between README/DESIGN/PROTOCOL fail the build.
//  2. Every package under internal/ must carry a package comment, so
//     `go doc ./internal/...` is usable as operator documentation.
//  3. Every `-flag` a markdown line attributes to a daemon (a line naming
//     servletd, webserver, ... alongside the backticked flag) must be
//     registered by that daemon's cmd/<name>/main.go — documented flags
//     that no binary accepts fail the build.
//
// Usage:
//
//	doclint [markdown files...]   # default: *.md in the repo root
//
// Exits non-zero listing every violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)]+)\)`)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"doclint — markdown link + package comment checker\n\nUsage:\n  doclint [markdown files...]   (default: *.md in the current directory)\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("*.md")
		if err != nil || len(files) == 0 {
			fmt.Fprintln(os.Stderr, "doclint: no markdown files found")
			os.Exit(1)
		}
	}

	bad := 0
	for _, f := range files {
		bad += checkLinks(f)
	}
	bad += checkPackageComments("internal")
	bad += checkFlagDocs(files)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("doclint: ok (%d markdown files, internal packages documented)\n", len(files))
}

// checkLinks verifies every relative markdown link in path resolves,
// ignoring fenced code blocks and absolute URLs.
func checkLinks(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	dir := filepath.Dir(path)
	bad := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := strings.TrimSpace(m[1])
			if target == "" || strings.Contains(target, "://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue // external or intra-document
			}
			target, _, _ = strings.Cut(target, "#") // strip the anchor
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %s:%d: dead link %q\n", path, i+1, m[1])
				bad++
			}
		}
	}
	return bad
}

// flagTokRe matches a backticked flag, optionally carrying a value:
// `-db-cache`, `-db-cache 256`, `-measure 10s`.
var flagTokRe = regexp.MustCompile("`-([a-z][a-z0-9-]*)[^`]*`")

// checkFlagDocs verifies that every backticked `-flag` token on a
// non-fenced doc line that names a daemon is registered by that daemon's
// main.go. A line naming several daemons passes if any of them accepts
// the flag (prose like "servletd's -route must match the webserver's
// -ajp entry" stays legal).
func checkFlagDocs(docs []string) int {
	mains, err := filepath.Glob(filepath.Join("cmd", "*", "main.go"))
	if err != nil || len(mains) == 0 {
		return 0 // not run from the repo root; nothing to check against
	}
	daemons := map[string]map[string]bool{}
	for _, m := range mains {
		daemons[filepath.Base(filepath.Dir(m))] = registeredFlags(m)
	}
	bad := 0
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			continue // checkLinks already reported it
		}
		inFence := false
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			var named []string
			for d := range daemons {
				if strings.Contains(line, d) {
					named = append(named, d)
				}
			}
			if len(named) == 0 {
				continue
			}
			for _, m := range flagTokRe.FindAllStringSubmatch(line, -1) {
				fl := m[1]
				if fl == "h" || fl == "help" {
					continue // stdlib flag package built-ins
				}
				known := false
				for _, d := range named {
					if daemons[d][fl] {
						known = true
						break
					}
				}
				if !known {
					sort.Strings(named)
					fmt.Fprintf(os.Stderr, "doclint: %s:%d: flag -%s is not registered by %s\n",
						path, i+1, fl, strings.Join(named, " or "))
					bad++
				}
			}
		}
	}
	return bad
}

// registeredFlags collects the flag names a main.go registers through
// flag.String/Int/Bool/Duration/... calls (any flag.X with a literal
// first argument).
func registeredFlags(path string) map[string]bool {
	flags := map[string]bool{}
	af, err := parser.ParseFile(token.NewFileSet(), path, nil, 0)
	if err != nil {
		return flags
	}
	ast.Inspect(af, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
			flags[name] = true
		}
		return true
	})
	return flags
}

// checkPackageComments walks root for Go packages and reports every one
// whose files all lack a package comment.
func checkPackageComments(root string) int {
	// Collect the .go files (tests excluded) per directory.
	perDir := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		perDir[dir] = append(perDir[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		return 1
	}
	bad := 0
	for dir, files := range perDir {
		documented := false
		for _, f := range files {
			// Doc comments live before the package clause; no bodies needed.
			af, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", f, err)
				bad++
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			fmt.Fprintf(os.Stderr, "doclint: package %s has no package comment\n", dir)
			bad++
		}
	}
	return bad
}
