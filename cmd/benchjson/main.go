// Command benchjson runs the repository's benchmarks and records the
// results as machine-readable JSON, so the performance trajectory across
// PRs is preserved next to the code. Each invocation writes BENCH_<n>.json
// (n = one past the highest existing file) with ns/op and every custom
// metric (ipm, stmts/interaction, µs/char, ...) per benchmark.
//
// Usage:
//
//	go run ./cmd/benchjson                 # paper-figure + protocol benches
//	go run ./cmd/benchjson -bench 'Fig0[56]' -benchtime 2s
//	go run ./cmd/benchjson -out BENCH_2.json
//	go run ./cmd/benchjson -compare BENCH_0.json -threshold 10
//
// With -compare, the freshly measured results are diffed against the given
// baseline file and the process exits non-zero when any headline benchmark
// slowed down by more than -threshold percent (ns/op up, or the ipm
// throughput metric down) — the CI perf-regression gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench covers the in-text figure benchmarks plus the wire
// protocol's prepared-vs-text microbenchmarks — the hot-path numbers the
// perf PRs track.
const defaultBench = "BenchmarkIPCPerCharCost|BenchmarkEJBQueryTraffic|" +
	"BenchmarkRealStackWorkload|BenchmarkExecText|BenchmarkExecPrepared|" +
	"BenchmarkPoolExecPrepared|BenchmarkCacheSweep|BenchmarkShardSweep|" +
	"BenchmarkWALCommitSweep"

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json document.
type File struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	Packages  []string `json:"packages"`
	Results   []Result `json:"results"`
}

// usage documents the flags plus the gate semantics -h alone cannot
// carry: what -compare fails on and why -rounds exists.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `benchjson — record headline benchmarks as BENCH_<n>.json; optionally gate against a baseline

Usage:
  benchjson [flags] [package ...]

Runs 'go test -bench' on the given packages (default: the repo root and
./internal/sqldb/wire) and writes every benchmark's ns/op and custom
metrics (ipm, stmts/interaction, µs/char, ...) as JSON, so the perf
trajectory across PRs lives next to the code.

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), `
Perf-regression gate (-compare):
  With -compare BASELINE.json the fresh results are diffed against the
  baseline and the process exits 1 when any benchmark present in both
  files regressed by more than -threshold percent — ns/op rising, or the
  'ipm' throughput metric falling, both relative to the baseline.
  Benchmarks present in only one file are listed but never gate, so new
  benchmarks land without a baseline edit. Allocation volume (B/op,
  recorded via -benchmem) is compared too but only advisorily: a rise
  past -bop-threshold prints an ALLOC WARNING without failing the gate.
  CI runs this: advisory on pull requests, enforced on pushes to main.

Noise robustness (-rounds / -count / -noise-floor / -retries):
  -count N reruns each benchmark within one 'go test' invocation;
  -rounds M spreads M separate invocations across time. Scheduler noise
  on a busy machine arrives in bursts that can swallow one whole
  invocation, so the gate keeps the best observation (minimum ns/op,
  maximum ipm) across all rounds — a single quiet run beats three noisy
  averages.
  -noise-floor F (ns) is the absolute floor under the percentage gate:
  an ns/op rise smaller than F never fails, whatever the percentage.
  Sub-microsecond benchmarks swing tens of percent on cache and
  scheduler jitter alone; a delta that small is measurement noise, not
  a regression this repo could own.
  -retries R re-measures instead of trusting one bad reading: when the
  gate fails, up to R extra rounds are run and folded into the best-of
  merge, and only a regression that survives every re-measurement
  fails the process. A real slowdown reproduces; a noise burst does not.

Examples:
  benchjson                                     # record BENCH_<n>.json
  benchjson -bench 'Fig0[56]' -benchtime 2s
  benchjson -compare BENCH_2.json -threshold 10 -count 2 -rounds 3
`)
}

func main() {
	var (
		bench        = flag.String("bench", defaultBench, "go test -bench regex selecting the benchmarks to record")
		benchtime    = flag.String("benchtime", "1s", "go test -benchtime: time (1s) or iterations (100x) per benchmark")
		out          = flag.String("out", "", "output path (default: BENCH_<n>.json for the next free n)")
		count        = flag.Int("count", 1, "go test -count: benchmark repetitions per round (best observation kept)")
		compare      = flag.String("compare", "", "baseline BENCH_<n>.json to gate against; exits 1 on a regression beyond -threshold")
		threshold    = flag.Float64("threshold", 10, "max tolerated regression, percent (ns/op up, or ipm down); used with -compare")
		bopThreshold = flag.Float64("bop-threshold", 10, "advisory allocation threshold, percent (B/op up); flagged with -compare but never fails the gate")
		rounds       = flag.Int("rounds", 1, "separate go-test invocations whose results merge best-of (noise robustness)")
		noiseFloor   = flag.Float64("noise-floor", 500, "absolute ns/op rise below which the gate never fails, whatever the percentage; used with -compare")
		retries      = flag.Int("retries", 2, "extra measurement rounds run after a gate failure before the failure counts; used with -compare")
	)
	flag.Usage = usage
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{".", "./internal/sqldb/wire"}
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, pkgs...)
	// Each round is its own go-test invocation. Noise on a busy machine
	// arrives in multi-second bursts that can swallow a whole -count
	// sequence; spreading rounds across separate invocations gives every
	// benchmark samples from different time windows, and mergeBest keeps
	// the quietest one.
	runRound := func() []Result {
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			log.Fatalf("benchjson: go %s: %v", strings.Join(args, " "), err)
		}
		rs := parse(raw)
		if len(rs) == 0 {
			log.Fatalf("benchjson: no benchmark lines in output:\n%s", raw)
		}
		return rs
	}
	var all []Result
	for round := 0; round < *rounds; round++ {
		all = append(all, runRound()...)
	}
	results := mergeBest(all)

	// The gate runs before the snapshot is written so that a retried
	// failure's extra rounds land in the recorded file too: the JSON must
	// describe the same observations the verdict was reached on.
	gatePass := true
	if *compare != "" {
		gatePass = gate(results, *compare, *threshold, *bopThreshold, *noiseFloor)
		// A regression that is really scheduler noise will not reproduce:
		// fold extra rounds into the best-of merge and re-judge. Only a
		// slowdown that survives every re-measurement fails the process.
		for attempt := 1; !gatePass && attempt <= *retries; attempt++ {
			fmt.Printf("\nperf gate failed — re-measuring (retry %d/%d)\n", attempt, *retries)
			all = append(all, runRound()...)
			results = mergeBest(all)
			gatePass = gate(results, *compare, *threshold, *bopThreshold, *noiseFloor)
		}
	}

	path := *out
	if path == "" {
		path = nextPath()
	}
	doc := File{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  pkgs,
		Results:   results,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	for _, r := range results {
		fmt.Printf("  %-55s %12.0f ns/op", r.Name, r.NsPerOp)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %g %s", r.Metrics[k], k)
		}
		fmt.Println()
	}

	if !gatePass {
		os.Exit(1)
	}
}

// gate diffs results against the baseline file and reports whether they
// pass: every benchmark present in both must stay within threshold percent
// of the baseline, on ns/op (lower is better) and on the ipm throughput
// metric (higher is better). Benchmarks missing from either side are
// listed but never fail the gate — new benchmarks must not need a
// baseline edit to land.
// Allocation volume gates only advisorily: B/op moves with Go runtime
// internals and map layouts that are not this repo's regressions to own,
// so a rise past bopThreshold is flagged loudly but never fails the gate.
// noiseFloor is the absolute arm of the ns/op gate: a rise below that many
// nanoseconds never fails regardless of percentage, because sub-floor
// deltas on fast benchmarks are indistinguishable from cache and
// scheduler jitter.
func gate(results []Result, baselinePath string, threshold, bopThreshold, noiseFloor float64) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		log.Fatalf("benchjson: baseline: %v", err)
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		log.Fatalf("benchjson: baseline %s: %v", baselinePath, err)
	}
	byName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}

	fmt.Printf("\ncomparison vs %s (threshold %.0f%%):\n", baselinePath, threshold)
	fmt.Printf("  %-55s %10s %10s %8s\n", "benchmark", "base", "now", "delta")
	pass := true
	for _, r := range results {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("  %-55s %10s %10.0f %8s  (new, not gated)\n", r.Name, "-", r.NsPerOp, "-")
			continue
		}
		delete(byName, r.Name)
		verdict := func(d float64) string {
			if d > threshold {
				pass = false
				return "  REGRESSION"
			}
			return ""
		}
		slow := pctChange(b.NsPerOp, r.NsPerOp)
		nsVerdict := ""
		if slow > threshold {
			// Two-armed gate: the percentage must be exceeded AND the
			// absolute rise must clear the noise floor. A 30% swing on a
			// 200ns benchmark is jitter; the same percentage on a
			// millisecond-scale interaction is a real regression.
			if r.NsPerOp-b.NsPerOp > noiseFloor {
				pass = false
				nsVerdict = "  REGRESSION"
			} else {
				nsVerdict = "  (within noise floor)"
			}
		}
		fmt.Printf("  %-55s %10.0f %10.0f %+7.1f%%%s\n",
			r.Name+" ns/op", b.NsPerOp, r.NsPerOp, slow, nsVerdict)
		if bi, ok := b.Metrics["ipm"]; ok {
			if ni, ok := r.Metrics["ipm"]; ok {
				// Throughput: the regression is the decline relative to
				// the baseline — the negation of the printed delta, so
				// both metrics gate against the same denominator.
				change := pctChange(bi, ni)
				fmt.Printf("  %-55s %10.0f %10.0f %+7.1f%%%s\n",
					r.Name+" ipm", bi, ni, change, verdict(-change))
			}
		}
		if bb, ok := b.Metrics["B/op"]; ok {
			if nb, ok := r.Metrics["B/op"]; ok {
				change := pctChange(bb, nb)
				advisory := ""
				if change > bopThreshold {
					advisory = "  ALLOC WARNING (advisory)"
				}
				fmt.Printf("  %-55s %10.0f %10.0f %+7.1f%%%s\n",
					r.Name+" B/op", bb, nb, change, advisory)
			}
		}
	}
	for name := range byName {
		fmt.Printf("  %-55s   (in baseline only, not gated)\n", name)
	}
	if pass {
		fmt.Println("perf gate: PASS")
	} else {
		fmt.Printf("perf gate: FAIL (>%.0f%% slowdown)\n", threshold)
	}
	return pass
}

// pctChange returns how much worse now is than base, in percent, where
// larger now is worse (invert the arguments for higher-is-better metrics).
func pctChange(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (now - base) / base * 100
}

// parse extracts benchmark result lines from go test output.
func parse(raw []byte) []Result {
	var out []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcSuffix(f[0]), Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			unit := f[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
		out = append(out, r)
	}
	return out
}

// mergeBest collapses repeated runs of one benchmark (-count > 1) into its
// best observation: minimum ns/op, maximum ipm. Scheduler noise on a busy
// machine only ever slows a run down, so best-of-N is the noise-robust
// estimate the perf gate needs — a single quiet run beats three noisy
// averages.
func mergeBest(rs []Result) []Result {
	var out []Result
	index := make(map[string]int)
	for _, r := range rs {
		i, seen := index[r.Name]
		if !seen {
			index[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		best := &out[i]
		if r.NsPerOp < best.NsPerOp {
			ipm, hadIPM := best.Metrics["ipm"]
			best.NsPerOp, best.Iterations, best.Metrics = r.NsPerOp, r.Iterations, r.Metrics
			if hadIPM && best.Metrics["ipm"] < ipm {
				best.Metrics["ipm"] = ipm
			}
		} else if v, ok := r.Metrics["ipm"]; ok && v > best.Metrics["ipm"] {
			best.Metrics["ipm"] = v
		}
	}
	return out
}

// trimProcSuffix drops the -8 GOMAXPROCS suffix so names are stable across
// machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextPath returns BENCH_<n>.json for the smallest unused n.
func nextPath() string {
	entries, _ := os.ReadDir(".")
	next := 0
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
			next = n + 1
		}
	}
	return fmt.Sprintf("BENCH_%d.json", next)
}
