// Command benchjson runs the repository's benchmarks and records the
// results as machine-readable JSON, so the performance trajectory across
// PRs is preserved next to the code. Each invocation writes BENCH_<n>.json
// (n = one past the highest existing file) with ns/op and every custom
// metric (ipm, stmts/interaction, µs/char, ...) per benchmark.
//
// Usage:
//
//	go run ./cmd/benchjson                 # paper-figure + protocol benches
//	go run ./cmd/benchjson -bench 'Fig0[56]' -benchtime 2s
//	go run ./cmd/benchjson -out BENCH_2.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench covers the in-text figure benchmarks plus the wire
// protocol's prepared-vs-text microbenchmarks — the hot-path numbers the
// perf PRs track.
const defaultBench = "BenchmarkIPCPerCharCost|BenchmarkEJBQueryTraffic|" +
	"BenchmarkRealStackWorkload|BenchmarkExecText|BenchmarkExecPrepared|" +
	"BenchmarkPoolExecPrepared"

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json document.
type File struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	Packages  []string `json:"packages"`
	Results   []Result `json:"results"`
}

func main() {
	var (
		bench     = flag.String("bench", defaultBench, "go test -bench regex")
		benchtime = flag.String("benchtime", "1s", "go test -benchtime")
		out       = flag.String("out", "", "output path (default: next BENCH_<n>.json)")
		count     = flag.Int("count", 1, "go test -count")
	)
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{".", "./internal/sqldb/wire"}
	}

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		log.Fatalf("benchjson: go %s: %v", strings.Join(args, " "), err)
	}
	results := parse(raw)
	if len(results) == 0 {
		log.Fatalf("benchjson: no benchmark lines in output:\n%s", raw)
	}

	path := *out
	if path == "" {
		path = nextPath()
	}
	doc := File{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  pkgs,
		Results:   results,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(results))
	for _, r := range results {
		fmt.Printf("  %-55s %12.0f ns/op", r.Name, r.NsPerOp)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %g %s", r.Metrics[k], k)
		}
		fmt.Println()
	}
}

// parse extracts benchmark result lines from go test output.
func parse(raw []byte) []Result {
	var out []Result
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcSuffix(f[0]), Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				break
			}
			unit := f[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
		out = append(out, r)
	}
	return out
}

// trimProcSuffix drops the -8 GOMAXPROCS suffix so names are stable across
// machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextPath returns BENCH_<n>.json for the smallest unused n.
func nextPath() string {
	entries, _ := os.ReadDir(".")
	next := 0
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
			next = n + 1
		}
	}
	return fmt.Sprintf("BENCH_%d.json", next)
}
