// Command dbserver runs the SQL database tier standalone: it creates and
// populates a benchmark schema and serves the wire protocol, the role MySQL
// plays on the paper's database machine — or one replica of it, when the
// stack runs the read-one-write-all cluster.
//
// A replica can seed itself deterministically (-seed; identical seeds give
// bit-identical replicas, AUTO_INCREMENT included) or join a running
// cluster by syncing a peer's data over the wire (-peers). SIGTERM drains:
// in-flight statements finish before the listeners close.
//
// Usage:
//
//	dbserver -addr :7306 -benchmark bookstore|auction [-scale tiny|default|paper]
//	         [-seed N] [-replica I] [-peers host:7306,host:7307] [-grace 5s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7306", "listen address")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		scale     = flag.String("scale", "default", "tiny, default, paper, or empty (no schema or data: a shard backend, to be seeded through a sharded client — see cmd/dbinit)")
		seed      = flag.Int64("seed", 1, "population seed")
		replica   = flag.Int("replica", 0, "replica id, for logs and telemetry")
		peers     = flag.String("peers", "", "comma-separated peer replicas to sync initial data from (skips -seed population)")
		peerOp    = flag.Duration("peer-timeout", 0, "dial and per-statement deadline against sync peers (0: transport defaults, negative: none)")
		syncTO    = flag.Duration("sync-timeout", 2*time.Minute, "wall-clock budget for the whole startup data sync from a peer (0: unbounded)")
		grace     = flag.Duration("grace", 5*time.Second, "SIGTERM drain grace for in-flight sessions")
	)
	flag.Parse()
	logger := log.New(os.Stderr, fmt.Sprintf("replica[%d] ", *replica), log.LstdFlags)

	db := sqldb.New()
	sess := db.NewSession()
	local := sqldb.SessionExecer{S: sess}
	// -scale empty serves a bare engine: a shard group's backend must not
	// self-populate (every backend would hold every row, and its ids would
	// not be strided) — schema and data arrive over the wire from a sharded
	// client instead (cmd/dbinit, or any app tier's population path).
	if *scale != "empty" {
		switch *benchmark {
		case "bookstore":
			if err := bookstore.CreateSchema(local); err != nil {
				logger.Fatal(err)
			}
		case "auction":
			if err := auction.CreateSchema(local); err != nil {
				logger.Fatal(err)
			}
		default:
			logger.Fatalf("unknown benchmark %q", *benchmark)
		}
	}

	// Initial data: replay a live peer when joining an existing cluster,
	// otherwise populate deterministically from the seed. When -peers was
	// given, failing to sync is fatal: seeding instead would bring up a
	// replica that silently diverges from a cluster that has moved past
	// the seed state.
	if peerList := cluster.ParseDSN(*peers); len(peerList) > 0 {
		if !syncFromPeers(logger, local, peerList, *peerOp, *syncTO) {
			logger.Fatalf("no peer in %q reachable; refusing to start from seed data", *peers)
		}
	} else if *scale != "empty" {
		populate(logger, local, *benchmark, *scale, *seed)
	}
	sess.Close()

	srv := wire.NewServer(db, logger)
	bound, err := srv.Listen(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("dbserver: replica %d, %s database ready on %s (tables: %v)\n",
		*replica, *benchmark, bound, db.TableNames())

	// SIGTERM / SIGINT drain in-flight sessions before closing listeners,
	// so CI runs and cluster peers shut down without leaking connections.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	logger.Printf("%s: draining (grace %s)...", got, *grace)
	if err := srv.Shutdown(*grace); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained, bye")
}

// syncFromPeers replays the first reachable peer's data into the local
// database — the startup replica-sync path, bounded so a stalled peer
// fails over to the next one instead of wedging startup. It reports
// whether a peer provided the data.
func syncFromPeers(logger *log.Logger, local sqldb.SessionExecer, peers []string, peerOp, budget time.Duration) bool {
	for _, peer := range peers {
		conn, err := wire.DialT(peer, pool.Timeouts{Dial: peerOp, Op: peerOp}.WithDefaults())
		if err != nil {
			logger.Printf("peer %s unreachable: %v", peer, err)
			continue
		}
		logger.Printf("syncing initial data from peer %s...", peer)
		tables, rows, err := cluster.SyncWithin(conn, local, budget)
		conn.Close()
		if err != nil {
			logger.Printf("sync from %s failed: %v", peer, err)
			continue
		}
		logger.Printf("synced %d tables / %d rows from %s", tables, rows, peer)
		return true
	}
	return false
}

func populate(logger *log.Logger, local sqldb.SessionExecer, benchmark, scale string, seed int64) {
	switch benchmark {
	case "bookstore":
		sc := bookstore.DefaultScale()
		switch scale {
		case "tiny":
			sc = bookstore.TinyScale()
		case "paper":
			sc = bookstore.PaperScale()
		}
		logger.Printf("populating bookstore at %s scale (%d items, %d customers)...",
			scale, sc.Items, sc.Customers)
		if err := bookstore.Populate(local, sc, seed); err != nil {
			logger.Fatal(err)
		}
	case "auction":
		sc := auction.DefaultScale()
		switch scale {
		case "tiny":
			sc = auction.TinyScale()
		case "paper":
			sc = auction.PaperScale()
		}
		logger.Printf("populating auction at %s scale (%d items, %d users)...",
			scale, sc.Items, sc.Users)
		if err := auction.Populate(local, sc, seed); err != nil {
			logger.Fatal(err)
		}
	}
}
