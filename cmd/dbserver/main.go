// Command dbserver runs the SQL database tier standalone: it creates and
// populates a benchmark schema and serves the wire protocol, the role MySQL
// plays on the paper's database machine — or one replica of it, when the
// stack runs the read-one-write-all cluster.
//
// A replica can seed itself deterministically (-seed; identical seeds give
// bit-identical replicas, AUTO_INCREMENT included) or join a running
// cluster by syncing a peer's data over the wire (-peers). SIGTERM drains:
// in-flight statements finish before the listeners close.
//
// With -data the replica is durable: commits go through a write-ahead log
// under that directory (group commit bounded by -wal-flush-interval,
// checkpoint-and-rotate every -checkpoint-every log bytes), and a restart
// over a non-empty directory recovers — checkpoint load plus log replay,
// torn tail truncated — instead of repopulating. A recovered replica with
// -peers catches up through the WAL delta fast path when its history is
// still a prefix of a peer's log, full copy otherwise (cluster.SyncAuto).
// $SQLDB_WALFAULT=point:action[:N] arms a crash point for recovery drills
// (see sqldb/walfault).
//
// Usage:
//
//	dbserver -addr :7306 -benchmark bookstore|auction [-scale tiny|default|paper]
//	         [-seed N] [-replica I] [-peers host:7306,host:7307] [-grace 5s]
//	         [-data DIR] [-wal-flush-interval 1ms] [-checkpoint-every N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/sqldb"
	"repro/internal/sqldb/walfault"
	"repro/internal/sqldb/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7306", "listen address")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		scale     = flag.String("scale", "default", "tiny, default, paper, or empty (no schema or data: a shard backend, to be seeded through a sharded client — see cmd/dbinit)")
		seed      = flag.Int64("seed", 1, "population seed")
		replica   = flag.Int("replica", 0, "replica id, for logs and telemetry")
		peers     = flag.String("peers", "", "comma-separated peer replicas to sync initial data from (skips -seed population)")
		peerOp    = flag.Duration("peer-timeout", 0, "dial and per-statement deadline against sync peers (0: transport defaults, negative: none)")
		syncTO    = flag.Duration("sync-timeout", 2*time.Minute, "wall-clock budget for the whole startup data sync from a peer (0: unbounded)")
		grace     = flag.Duration("grace", 5*time.Second, "SIGTERM drain grace for in-flight sessions")
		data      = flag.String("data", "", "data directory for the write-ahead log; non-empty state there recovers instead of repopulating (empty: purely in-memory)")
		walFlush  = flag.Duration("wal-flush-interval", 0, "group-commit window: the longest a commit waits to share an fsync (0: the engine default, 1ms)")
		ckptEvery = flag.Int64("checkpoint-every", 0, "checkpoint-and-rotate after this many log bytes (0: the engine default, 8MiB; negative: never)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, fmt.Sprintf("replica[%d] ", *replica), log.LstdFlags)

	fault, err := walfault.FromEnv(os.Exit)
	if err != nil {
		logger.Fatal(err)
	}
	walOpts := sqldb.WALOptions{
		Dir:             *data,
		FlushInterval:   *walFlush,
		CheckpointBytes: *ckptEvery,
		Fault:           fault,
	}

	db := sqldb.New()
	recovered := false
	if *data != "" && sqldb.WALDirHasState(*data) {
		// The directory already holds a checkpoint or log segments: this is
		// a restart, and the disk — not the seed — is the source of truth.
		info, err := db.AttachWAL(walOpts)
		if err != nil {
			logger.Fatalf("wal recovery from %s: %v", *data, err)
		}
		recovered = true
		logger.Printf("recovered from %s: checkpoint lsn %d, %d statements replayed to lsn %d (torn tail: %v)",
			*data, info.CheckpointLSN, info.ReplayedStmts, info.ReplayLSN, info.TornTail)
	}
	sess := db.NewSession()
	local := sqldb.SessionExecer{S: sess}
	// -scale empty serves a bare engine: a shard group's backend must not
	// self-populate (every backend would hold every row, and its ids would
	// not be strided) — schema and data arrive over the wire from a sharded
	// client instead (cmd/dbinit, or any app tier's population path).
	if *scale != "empty" && !recovered {
		switch *benchmark {
		case "bookstore":
			if err := bookstore.CreateSchema(local); err != nil {
				logger.Fatal(err)
			}
		case "auction":
			if err := auction.CreateSchema(local); err != nil {
				logger.Fatal(err)
			}
		default:
			logger.Fatalf("unknown benchmark %q", *benchmark)
		}
	}

	// Initial data: replay a live peer when joining an existing cluster,
	// otherwise populate deterministically from the seed. When -peers was
	// given, failing to sync is fatal: seeding instead would bring up a
	// replica that silently diverges from a cluster that has moved past
	// the seed state. A recovered replica still syncs from its peers — it
	// was down while they kept committing — but through SyncAuto, which
	// ships only the missed WAL suffix when the histories still line up.
	if peerList := cluster.ParseDSN(*peers); len(peerList) > 0 {
		if !syncFromPeers(logger, local, peerList, *peerOp, *syncTO) {
			if recovered {
				logger.Fatalf("no peer in %q reachable; refusing to serve a stale recovered data set", *peers)
			}
			logger.Fatalf("no peer in %q reachable; refusing to start from seed data", *peers)
		}
	} else if *scale != "empty" && !recovered {
		populate(logger, local, *benchmark, *scale, *seed)
	}

	// A fresh durable boot attaches the log only now, so the seed (or peer
	// copy) lands in the initial checkpoint instead of being replayed
	// statement by statement on every restart.
	if *data != "" && !recovered {
		if _, err := db.AttachWAL(walOpts); err != nil {
			logger.Fatalf("wal attach at %s: %v", *data, err)
		}
		logger.Printf("write-ahead log at %s (flush %s)", *data, walOpts.FlushInterval)
	}
	sess.Close()

	srv := wire.NewServer(db, logger)
	bound, err := srv.Listen(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("dbserver: replica %d, %s database ready on %s (tables: %v)\n",
		*replica, *benchmark, bound, db.TableNames())

	// SIGTERM / SIGINT drain in-flight sessions before closing listeners,
	// so CI runs and cluster peers shut down without leaking connections.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	logger.Printf("%s: draining (grace %s)...", got, *grace)
	if err := srv.Shutdown(*grace); err != nil {
		logger.Fatal(err)
	}
	// Flush and close the log last: every drained session's commit is
	// already durable (acks follow fsync), this just retires the flusher
	// and fsyncs any straggling unacked bytes.
	if err := db.CloseWAL(); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("drained, bye")
}

// syncFromPeers replays the first reachable peer's data into the local
// database — the startup replica-sync path, bounded so a stalled peer
// fails over to the next one instead of wedging startup. A durable restart
// takes the WAL delta fast path when its log is still a prefix of the
// peer's; everything else gets the full table copy (cluster.SyncAuto). It
// reports whether a peer provided the data.
func syncFromPeers(logger *log.Logger, local sqldb.SessionExecer, peers []string, peerOp, budget time.Duration) bool {
	for _, peer := range peers {
		conn, err := wire.DialT(peer, pool.Timeouts{Dial: peerOp, Op: peerOp}.WithDefaults())
		if err != nil {
			logger.Printf("peer %s unreachable: %v", peer, err)
			continue
		}
		logger.Printf("syncing initial data from peer %s...", peer)
		st, err := cluster.SyncAuto(conn, local, budget)
		conn.Close()
		if err != nil {
			logger.Printf("sync from %s failed: %v", peer, err)
			continue
		}
		if st.Delta {
			logger.Printf("caught up from %s: %d missed statements shipped off its log", peer, st.Stmts)
		} else {
			logger.Printf("synced %d tables / %d rows from %s", st.Tables, st.Rows, peer)
		}
		return true
	}
	return false
}

func populate(logger *log.Logger, local sqldb.SessionExecer, benchmark, scale string, seed int64) {
	switch benchmark {
	case "bookstore":
		sc := bookstore.DefaultScale()
		switch scale {
		case "tiny":
			sc = bookstore.TinyScale()
		case "paper":
			sc = bookstore.PaperScale()
		}
		logger.Printf("populating bookstore at %s scale (%d items, %d customers)...",
			scale, sc.Items, sc.Customers)
		if err := bookstore.Populate(local, sc, seed); err != nil {
			logger.Fatal(err)
		}
	case "auction":
		sc := auction.DefaultScale()
		switch scale {
		case "tiny":
			sc = auction.TinyScale()
		case "paper":
			sc = auction.PaperScale()
		}
		logger.Printf("populating auction at %s scale (%d items, %d users)...",
			scale, sc.Items, sc.Users)
		if err := auction.Populate(local, sc, seed); err != nil {
			logger.Fatal(err)
		}
	}
}
