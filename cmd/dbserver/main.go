// Command dbserver runs the SQL database tier standalone: it creates and
// populates a benchmark schema and serves the wire protocol, the role MySQL
// plays on the paper's database machine.
//
// Usage:
//
//	dbserver -addr :7306 -benchmark bookstore|auction [-scale tiny|default|paper] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7306", "listen address")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		scale     = flag.String("scale", "default", "tiny, default or paper")
		seed      = flag.Int64("seed", 1, "population seed")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	db := sqldb.New()
	sess := db.NewSession()
	switch *benchmark {
	case "bookstore":
		sc := bookstore.DefaultScale()
		switch *scale {
		case "tiny":
			sc = bookstore.TinyScale()
		case "paper":
			sc = bookstore.PaperScale()
		}
		if err := bookstore.CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("populating bookstore at %s scale (%d items, %d customers)...",
			*scale, sc.Items, sc.Customers)
		if err := bookstore.Populate(sqldb.SessionExecer{S: sess}, sc, *seed); err != nil {
			logger.Fatal(err)
		}
	case "auction":
		sc := auction.DefaultScale()
		switch *scale {
		case "tiny":
			sc = auction.TinyScale()
		case "paper":
			sc = auction.PaperScale()
		}
		if err := auction.CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("populating auction at %s scale (%d items, %d users)...",
			*scale, sc.Items, sc.Users)
		if err := auction.Populate(sqldb.SessionExecer{S: sess}, sc, *seed); err != nil {
			logger.Fatal(err)
		}
	default:
		logger.Fatalf("unknown benchmark %q", *benchmark)
	}
	sess.Close()

	srv := wire.NewServer(db, logger)
	bound, err := srv.Listen(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("dbserver: %s database ready on %s (tables: %v)\n",
		*benchmark, bound, db.TableNames())
	select {} // serve forever
}
