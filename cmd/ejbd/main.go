// Command ejbd runs the EJB application-server tier standalone: entity
// beans and the benchmark's session façade served over RMI — the role JOnAS
// plays on the paper's EJB machine. Pair it with a presentation-tier
// servletd... in this stack the presentation servlets live in-process with
// cmd/webserver's connector, so a typical wiring is:
//
//	dbserver -> ejbd -> (presentation container inside this process) -> webserver
//
// Usage:
//
//	ejbd -addr :7099 -db 127.0.0.1:7306 -benchmark auction [-ajp :7009]
//
// When -ajp is given, ejbd also hosts the presentation servlets and serves
// them over AJP so a webserver can connect directly. In a load-balanced
// application tier, -route names this backend for session affinity
// (matching the webserver's -ajp entry), like servletd's -route.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/ejb"
	"repro/internal/rmi"
	"repro/internal/servlet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7099", "RMI listen address")
		ajpAddr   = flag.String("ajp", "", "also serve presentation servlets on this AJP address")
		dbAddr    = flag.String("db", "127.0.0.1:7306", "database DSN: one wire address or a comma-separated replica list")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		pool      = flag.Int("pool", 12, "database connection pool size, per replica")
		route     = flag.String("route", "", "session-affinity route id for the presentation servlets in a load-balanced tier (requires -ajp)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	ec, err := ejb.NewContainer(ejb.Config{DBAddr: *dbAddr, DBPoolSize: *pool})
	if err != nil {
		logger.Fatal(err)
	}
	switch *benchmark {
	case "bookstore":
		if err := bookstore.RegisterEntities(ec); err != nil {
			logger.Fatal(err)
		}
		if err := ec.RegisterFacade(bookstore.FacadeName, &bookstore.Facade{C: ec}); err != nil {
			logger.Fatal(err)
		}
	case "auction":
		if err := auction.RegisterEntities(ec); err != nil {
			logger.Fatal(err)
		}
		if err := ec.RegisterFacade(auction.FacadeName, &auction.Facade{C: ec}); err != nil {
			logger.Fatal(err)
		}
	default:
		logger.Fatalf("unknown benchmark %q", *benchmark)
	}
	bound, err := ec.Serve(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("ejbd: %s façade on RMI %s (db %s)\n", *benchmark, bound, *dbAddr)

	if *ajpAddr != "" {
		client := rmi.NewClient(bound.String(), *pool)
		pc := servlet.NewContainer(servlet.Config{Route: *route})
		switch *benchmark {
		case "bookstore":
			bookstore.NewPresentationApp(client, bookstore.DefaultScale()).Register(pc)
		case "auction":
			auction.NewPresentationApp(client, auction.DefaultScale()).Register(pc)
		}
		pbound, err := pc.Start(*ajpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("ejbd: presentation servlets on AJP %s\n", pbound)
	}
	select {}
}
