// Command ejbd runs the EJB application-server tier standalone: entity
// beans and the benchmark's session façade served over RMI — the role JOnAS
// plays on the paper's EJB machine. Pair it with a presentation-tier
// servletd... in this stack the presentation servlets live in-process with
// cmd/webserver's connector, so a typical wiring is:
//
//	dbserver -> ejbd -> (presentation container inside this process) -> webserver
//
// Usage:
//
//	ejbd -addr :7099 -db 127.0.0.1:7306 -benchmark auction [-ajp :7009]
//
// When -ajp is given, ejbd also hosts the presentation servlets and serves
// them over AJP so a webserver can connect directly. In a load-balanced
// application tier, -route names this backend for session affinity
// (matching the webserver's -ajp entry), like servletd's -route.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/ejb"
	"repro/internal/pool"
	"repro/internal/rmi"
	"repro/internal/servlet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7099", "RMI listen address")
		ajpAddr   = flag.String("ajp", "", "also serve presentation servlets on this AJP address")
		dbAddr    = flag.String("db", "127.0.0.1:7306", "database DSN: one wire address, a comma-separated replica list, or semicolon-separated shard groups of replica lists (\"s0r0,s0r1;s1r0,s1r1\" — sharded tiers partition by the benchmark's ShardBy map)")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		poolSize  = flag.Int("pool", 12, "database connection pool size, per replica")
		route     = flag.String("route", "", "session-affinity route id for the presentation servlets in a load-balanced tier (requires -ajp)")
		dbDial    = flag.Duration("db-dial", 0, "database dial timeout (0: default, negative: none)")
		dbOp      = flag.Duration("db-op", 0, "per-statement database deadline (0: default, negative: none)")
		dbWait    = flag.Duration("db-wait", 0, "max wait for a free pooled connection (0: default, negative: unbounded)")
		dbSlow    = flag.Duration("db-slow", 0, "eject replicas whose statements exceed this latency (0: disabled)")
		dbSync    = flag.Duration("db-sync", 0, "wall-clock budget for replica rejoin data sync (0: cluster default)")
		dbStrict  = flag.Bool("db-strict", false, "refuse writes (degraded read-only mode) instead of ejecting replicas on write failure")
		dbCache   = flag.Int("db-cache", 0, "query-result cache entries, validated by commit-time table versions (0: disabled)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	dbTimeouts := pool.Timeouts{Dial: *dbDial, Op: *dbOp, Wait: *dbWait}
	// A sharded -db DSN (semicolon-separated groups) partitions by the
	// benchmark's own table->column map; tables outside it are global.
	shardBy := bookstore.ShardBy()
	if *benchmark == "auction" {
		shardBy = auction.ShardBy()
	}
	ec, err := ejb.NewContainer(ejb.Config{
		DBAddr: *dbAddr, DBShardBy: shardBy, DBPoolSize: *poolSize,
		DBStrictWrites:  *dbStrict,
		DBTimeouts:      dbTimeouts,
		DBSlowThreshold: *dbSlow,
		DBSyncTimeout:   *dbSync,
		DBQueryCache:    *dbCache,
	})
	if err != nil {
		logger.Fatal(err)
	}
	switch *benchmark {
	case "bookstore":
		if err := bookstore.RegisterEntities(ec); err != nil {
			logger.Fatal(err)
		}
		if err := ec.RegisterFacade(bookstore.FacadeName, &bookstore.Facade{C: ec}); err != nil {
			logger.Fatal(err)
		}
	case "auction":
		if err := auction.RegisterEntities(ec); err != nil {
			logger.Fatal(err)
		}
		if err := ec.RegisterFacade(auction.FacadeName, &auction.Facade{C: ec}); err != nil {
			logger.Fatal(err)
		}
	default:
		logger.Fatalf("unknown benchmark %q", *benchmark)
	}
	bound, err := ec.Serve(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("ejbd: %s façade on RMI %s (db %s)\n", *benchmark, bound, *dbAddr)

	if *ajpAddr != "" {
		client := rmi.NewClientT(bound.String(), *poolSize, dbTimeouts)
		pc := servlet.NewContainer(servlet.Config{Route: *route})
		switch *benchmark {
		case "bookstore":
			bookstore.NewPresentationApp(client, bookstore.DefaultScale()).Register(pc)
		case "auction":
			auction.NewPresentationApp(client, auction.DefaultScale()).Register(pc)
		}
		pbound, err := pc.Start(*ajpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("ejbd: presentation servlets on AJP %s\n", pbound)
	}
	select {}
}
