// Command webserver runs the web tier standalone: static images plus a
// dynamic-content dispatcher to one or more servletd instances over AJP —
// the role Apache (with mod_jk's worker balancing) plays in the paper's
// testbed.
//
// Usage:
//
//	webserver -addr :8080 -ajp 127.0.0.1:7009 -base /tpcw/ [-imagebytes 2048]
//
// A comma-separated -ajp list load-balances the application tier
// (least-in-flight, with session affinity on the JSESSIONID route
// suffix). Each entry is "addr" — backend i gets route id "a<i>", which
// the matching servletd must be started with (-route a<i>) — or
// "route=addr" to name routes explicitly:
//
//	webserver -ajp 127.0.0.1:7009,127.0.0.1:7010            # routes a0, a1
//	webserver -ajp tc1=127.0.0.1:7009,tc2=127.0.0.1:7010   # explicit routes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/ajp"
	"repro/internal/datagen"
	"repro/internal/httpd"
	"repro/internal/lb"
	"repro/internal/pool"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		ajpAddr    = flag.String("ajp", "127.0.0.1:7009", "servlet container AJP backend(s): addr[,addr...] or route=addr[,route=addr...]; more than one enables the app-tier load balancer")
		base       = flag.String("base", "/tpcw/", "dynamic content URL prefix (/tpcw/ for bookstore, /rubis/ for auction)")
		imageBytes = flag.Int("imagebytes", 2048, "size of each synthetic image, bytes")
		conns      = flag.Int("conns", 16, "AJP connector pool size, per backend")
		ajpDial    = flag.Duration("ajp-dial", 0, "backend dial timeout (0: default, negative: none)")
		ajpOp      = flag.Duration("ajp-op", 0, "per-request backend deadline (0: default, negative: none)")
		ajpWait    = flag.Duration("ajp-wait", 0, "max wait for a free pooled backend connection (0: default, negative: unbounded)")
		pageCache  = flag.Int("page-cache", 0, "full-page cache entries for anonymous GETs (0: disabled)")
		pageTTL    = flag.Duration("page-cache-ttl", 0, "page cache entry lifetime (0: default)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	static := httpd.NewStaticSet()
	for i := 0; i < 64; i++ {
		static.Add(fmt.Sprintf("/img/item_%d.gif", i), datagen.Image(i, *imageBytes), "image/gif")
	}
	static.Add("/img/logo.gif", datagen.Image(1000, *imageBytes/2), "image/gif")
	static.Add("/img/banner.gif", datagen.Image(1001, *imageBytes), "image/gif")

	app, desc := appHandler(*ajpAddr, *conns, pool.Timeouts{Dial: *ajpDial, Op: *ajpOp, Wait: *ajpWait})
	if *pageCache > 0 {
		// Cross-process deployment: freshness rides on the X-Content-Epoch
		// response header the app tier stamps, plus the TTL backstop.
		app = lb.NewPageCache(app, lb.PageCacheConfig{MaxEntries: *pageCache, TTL: *pageTTL})
		desc += fmt.Sprintf(" (page cache: %d entries)", *pageCache)
	}
	mux := httpd.NewMux()
	mux.Handle("/img/", static)
	mux.Handle(*base, app)

	srv := httpd.NewServer(mux, logger)
	bound, err := srv.Listen(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("webserver: http://%s%s -> %s\n", bound, *base, desc)
	select {}
}

// appHandler builds the dynamic-content dispatcher: a single AJP connector
// for one backend, the load balancer for a list.
func appHandler(spec string, conns int, timeouts pool.Timeouts) (httpd.Handler, string) {
	var backends []lb.Backend
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		route, addr, named := strings.Cut(entry, "=")
		if !named {
			// Count accepted backends, not list positions: a stray comma
			// must not shift the documented "backend i gets route a<i>"
			// contract the matching servletd -route flags rely on.
			route, addr = fmt.Sprintf("a%d", len(backends)), entry
		}
		for _, be := range backends {
			if be.ID == route {
				log.Fatalf("webserver: -ajp assigns route %q twice (%q); routes must be unique or affinity pins two backends' sessions to one", route, entry)
			}
		}
		conn := ajp.NewConnectorT(addr, conns, timeouts)
		backends = append(backends, lb.Backend{ID: route, Handler: conn, PoolStats: conn.Stats})
	}
	if len(backends) == 0 {
		log.Fatal("webserver: -ajp names no backends")
	}
	if len(backends) == 1 {
		return backends[0].Handler, "AJP " + spec
	}
	return lb.New(lb.Config{Backends: backends}),
		fmt.Sprintf("lb over %d AJP backends (%s)", len(backends), spec)
}
