// Command webserver runs the web tier standalone: static images plus a
// dynamic-content connector to a servletd instance over AJP — the role
// Apache plays in the paper's testbed.
//
// Usage:
//
//	webserver -addr :8080 -ajp 127.0.0.1:7009 -base /tpcw/ [-imagebytes 2048]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ajp"
	"repro/internal/datagen"
	"repro/internal/httpd"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		ajpAddr    = flag.String("ajp", "127.0.0.1:7009", "servlet container AJP address")
		base       = flag.String("base", "/tpcw/", "dynamic content URL prefix")
		imageBytes = flag.Int("imagebytes", 2048, "size of each synthetic image")
		conns      = flag.Int("conns", 16, "AJP connector pool size")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	static := httpd.NewStaticSet()
	for i := 0; i < 64; i++ {
		static.Add(fmt.Sprintf("/img/item_%d.gif", i), datagen.Image(i, *imageBytes), "image/gif")
	}
	static.Add("/img/logo.gif", datagen.Image(1000, *imageBytes/2), "image/gif")
	static.Add("/img/banner.gif", datagen.Image(1001, *imageBytes), "image/gif")

	mux := httpd.NewMux()
	mux.Handle("/img/", static)
	mux.Handle(*base, ajp.NewConnector(*ajpAddr, *conns))

	srv := httpd.NewServer(mux, logger)
	bound, err := srv.Listen(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("webserver: http://%s%s -> AJP %s\n", bound, *base, *ajpAddr)
	select {}
}
