// Command repro regenerates every evaluation figure of the paper as data
// series, using the calibrated simulator in internal/perfsim.
//
// Usage:
//
//	repro [-figure N] [-seed S] [-ramp SEC] [-measure SEC] [-quick]
//
// Without -figure it regenerates Figures 5-14. Output is aligned text: one
// block per figure, one line per sweep point (throughput figures) or per
// configuration (CPU figures).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perfsim"
)

func main() {
	var (
		figure  = flag.Int("figure", 0, "regenerate only this figure number (5-14)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		ramp    = flag.Float64("ramp", 0, "ramp-up seconds (0 = default)")
		measure = flag.Float64("measure", 0, "measurement seconds (0 = default)")
		quick   = flag.Bool("quick", false, "short windows for a fast smoke run")
	)
	flag.Parse()

	opt := perfsim.Options{Seed: *seed, RampUp: *ramp, Measure: *measure}
	if *quick {
		opt.RampUp, opt.Measure = 80, 120
	}

	figs := perfsim.AllFigures()
	if *figure != 0 {
		figs = []perfsim.FigureID{perfsim.FigureID(*figure)}
	}
	for _, id := range figs {
		fd := perfsim.Figure(id, opt)
		printFigure(os.Stdout, fd)
	}
}

func printFigure(w *os.File, fd perfsim.FigureData) {
	fmt.Fprintf(w, "\n=== Figure %d: %s ===\n", fd.ID, fd.Title)
	if fd.CPU {
		fmt.Fprintf(w, "%-22s %8s %10s %8s %8s %8s %8s %9s\n",
			"configuration", "clients", "peak ipm", "Web%", "Servlet%", "EJB%", "DB%", "NIC Mb/s")
		for _, c := range fd.Curves {
			p := c.Peak()
			fmt.Fprintf(w, "%-22s %8d %10.0f %8.1f %8.1f %8.1f %8.1f %9.1f\n",
				c.Arch, p.Clients, p.ThroughputIPM,
				p.CPU[perfsim.TierWeb], p.CPU[perfsim.TierServlet],
				p.CPU[perfsim.TierEJB], p.CPU[perfsim.TierDB], p.WebNICMbps)
		}
		return
	}
	fmt.Fprintf(w, "%-8s", "clients")
	for _, c := range fd.Curves {
		fmt.Fprintf(w, " %20s", c.Arch)
	}
	fmt.Fprintln(w)
	for i := range fd.Curves[0].Results {
		fmt.Fprintf(w, "%-8d", fd.Curves[0].Results[i].Clients)
		for _, c := range fd.Curves {
			fmt.Fprintf(w, " %20.0f", c.Results[i].ThroughputIPM)
		}
		fmt.Fprintln(w)
	}
	for _, c := range fd.Curves {
		p := c.Peak()
		fmt.Fprintf(w, "# peak %-22s %6.0f ipm at %d clients (mean resp %.2fs, lockwait %.3f)\n",
			c.Arch, p.ThroughputIPM, p.Clients, p.MeanResponse, p.DBLockWaitFrac)
	}
}
