// Command servletd runs the application-container tier standalone: the
// benchmark's servlets served over AJP, the role Tomcat plays in the
// paper's Ws-Servlet-DB configurations.
//
// Usage:
//
//	servletd -addr :7009 -db 127.0.0.1:7306 -benchmark bookstore [-sync] [-pool 12]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/servlet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7009", "AJP listen address")
		dbAddr    = flag.String("db", "127.0.0.1:7306", "database DSN: one wire address or a comma-separated replica list")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		sync      = flag.Bool("sync", false, "engine-side locking (the paper's sync variants)")
		pool      = flag.Int("pool", 12, "database connection pool size")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	c := servlet.NewContainer(servlet.Config{DBAddr: *dbAddr, DBPoolSize: *pool})
	switch *benchmark {
	case "bookstore":
		bookstore.New(bookstore.DefaultScale(), bookstore.Config{Sync: *sync}).Register(c)
	case "auction":
		auction.New(auction.DefaultScale(), auction.Config{Sync: *sync}).Register(c)
	default:
		logger.Fatalf("unknown benchmark %q", *benchmark)
	}
	bound, err := c.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("servletd: %s container on AJP %s (db %s, sync=%v)\n",
		*benchmark, bound, *dbAddr, *sync)
	select {}
}
