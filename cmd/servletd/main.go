// Command servletd runs the application-container tier standalone: the
// benchmark's servlets served over AJP, the role Tomcat plays in the
// paper's Ws-Servlet-DB configurations.
//
// Usage:
//
//	servletd -addr :7009 -db 127.0.0.1:7306 -benchmark bookstore [-sync] [-pool 12]
//
// In a load-balanced application tier (webserver -ajp lists several
// backends), give each servletd the route id the balancer knows it by
// (-route a0, -route a1, ...): new session ids carry the route as a
// ".route" suffix and the balancer pins those sessions here. Session
// state is container-local across processes — a backend death loses its
// sessions' attributes (carts); affinity and failover still work.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/pool"
	"repro/internal/servlet"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7009", "AJP listen address")
		dbAddr    = flag.String("db", "127.0.0.1:7306", "database DSN: one wire address, a comma-separated replica list, or semicolon-separated shard groups of replica lists (\"s0r0,s0r1;s1r0,s1r1\" — sharded tiers partition by the benchmark's ShardBy map)")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		sync      = flag.Bool("sync", false, "engine-side locking (the paper's sync variants)")
		poolSize  = flag.Int("pool", 12, "database connection pool size, per replica")
		route     = flag.String("route", "", "session-affinity route id in a load-balanced tier (must match the webserver's -ajp entry for this backend)")
		dbDial    = flag.Duration("db-dial", 0, "database dial timeout (0: default, negative: none)")
		dbOp      = flag.Duration("db-op", 0, "per-statement database deadline (0: default, negative: none)")
		dbWait    = flag.Duration("db-wait", 0, "max wait for a free pooled connection (0: default, negative: unbounded)")
		dbSlow    = flag.Duration("db-slow", 0, "eject replicas whose statements exceed this latency (0: disabled)")
		dbSync    = flag.Duration("db-sync", 0, "wall-clock budget for replica rejoin data sync (0: cluster default)")
		dbCache   = flag.Int("db-cache", 0, "query-result cache entries, validated by commit-time table versions (0: disabled)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "", log.LstdFlags)

	// A sharded -db DSN (semicolon-separated groups) partitions by the
	// benchmark's own table->column map; tables outside it are global.
	shardBy := bookstore.ShardBy()
	if *benchmark == "auction" {
		shardBy = auction.ShardBy()
	}
	c := servlet.NewContainer(servlet.Config{
		DBAddr: *dbAddr, DBShardBy: shardBy, DBPoolSize: *poolSize, Route: *route,
		DBTimeouts:      pool.Timeouts{Dial: *dbDial, Op: *dbOp, Wait: *dbWait},
		DBSlowThreshold: *dbSlow,
		DBSyncTimeout:   *dbSync,
		DBQueryCache:    *dbCache,
	})
	switch *benchmark {
	case "bookstore":
		bookstore.New(bookstore.DefaultScale(), bookstore.Config{Sync: *sync}).Register(c)
	case "auction":
		auction.New(auction.DefaultScale(), auction.Config{Sync: *sync}).Register(c)
	default:
		logger.Fatalf("unknown benchmark %q", *benchmark)
	}
	bound, err := c.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	routeNote := ""
	if *route != "" {
		routeNote = ", route=" + *route
	}
	fmt.Printf("servletd: %s container on AJP %s (db %s, sync=%v%s)\n",
		*benchmark, bound, *dbAddr, *sync, routeNote)
	select {}
}
