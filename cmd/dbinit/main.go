// Command dbinit seeds a database tier through a cluster client: it
// creates the benchmark schema and populates the data over the wire, so a
// sharded tier (-db with semicolon-separated shard groups) gets each row
// on its owning shard only, with strided AUTO_INCREMENT counters. Run it
// once against empty backends (dbserver -scale empty) before starting the
// application tier:
//
//	dbserver -addr :7306 -scale empty &
//	dbserver -addr :7307 -scale empty &
//	dbinit -db "127.0.0.1:7306;127.0.0.1:7307" -benchmark auction
//
// Unsharded DSNs work too — then it is just remote schema + population,
// equivalent to the backends' own -seed path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/cluster"
	"repro/internal/pool"
)

func main() {
	var (
		dbAddr    = flag.String("db", "127.0.0.1:7306", "database DSN: shard groups separated by ';', replicas within a group by ','")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		scale     = flag.String("scale", "default", "tiny, default or paper")
		seed      = flag.Int64("seed", 1, "population seed")
		poolSize  = flag.Int("pool", 8, "connection pool size, per replica")
		opTO      = flag.Duration("op", time.Minute, "per-statement deadline (0: transport default, negative: none)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "dbinit ", log.LstdFlags)

	shardBy := bookstore.ShardBy()
	if *benchmark == "auction" {
		shardBy = auction.ShardBy()
	}
	cl := cluster.NewWithConfig(cluster.Config{
		DSN:      *dbAddr,
		ShardBy:  shardBy,
		PoolSize: *poolSize,
		Timeouts: pool.Timeouts{Op: *opTO},
	})
	defer cl.Close()

	start := time.Now()
	var err error
	switch *benchmark {
	case "bookstore":
		sc, ok := bookScale(*scale)
		if !ok {
			logger.Fatalf("unknown scale %q", *scale)
		}
		if err = bookstore.CreateSchema(cl); err == nil {
			err = bookstore.Populate(cl, sc, *seed)
		}
	case "auction":
		sc, ok := auctionScale(*scale)
		if !ok {
			logger.Fatalf("unknown scale %q", *scale)
		}
		if err = auction.CreateSchema(cl); err == nil {
			err = auction.Populate(cl, sc, *seed)
		}
	default:
		logger.Fatalf("unknown benchmark %q", *benchmark)
	}
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("dbinit: %s (%s scale) seeded via %s in %v\n",
		*benchmark, *scale, *dbAddr, time.Since(start).Round(time.Millisecond))
}

func bookScale(name string) (bookstore.Scale, bool) {
	switch name {
	case "tiny":
		return bookstore.TinyScale(), true
	case "default":
		return bookstore.DefaultScale(), true
	case "paper":
		return bookstore.PaperScale(), true
	}
	return bookstore.Scale{}, false
}

func auctionScale(name string) (auction.Scale, bool) {
	switch name {
	case "tiny":
		return auction.TinyScale(), true
	case "default":
		return auction.DefaultScale(), true
	case "paper":
		return auction.PaperScale(), true
	}
	return auction.Scale{}, false
}
