// Command sqlsh is an interactive SQL shell against a dbserver instance —
// handy for poking at the benchmark databases.
//
// Usage:
//
//	sqlsh -addr 127.0.0.1:7306
//	> SELECT id, title FROM items LIMIT 5;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/sqldb/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7306", "database wire address")
	flag.Parse()

	conn, err := wire.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Printf("connected to %s; terminate statements with ; (Ctrl-D quits)\n", *addr)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	fmt.Print("> ")
	for sc.Scan() {
		pending.WriteString(sc.Text())
		pending.WriteByte('\n')
		text := strings.TrimSpace(pending.String())
		if !strings.HasSuffix(text, ";") {
			fmt.Print("... ")
			continue
		}
		pending.Reset()
		res, err := conn.Exec(strings.TrimSuffix(text, ";"))
		if err != nil {
			fmt.Println("error:", err)
		} else if len(res.Columns) > 0 {
			fmt.Println(strings.Join(res.Columns, "\t"))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.AsString()
				}
				fmt.Println(strings.Join(parts, "\t"))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		} else {
			fmt.Printf("ok (%d rows affected, last id %d)\n", res.RowsAffected, res.LastInsertID)
		}
		fmt.Print("> ")
	}
}
