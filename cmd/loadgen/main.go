// Command loadgen runs the client-browser emulator against a web server
// hosting one of the benchmarks — the role of the paper's client emulation
// machines (§4.1).
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -benchmark bookstore -mix shopping \
//	        -clients 50 -think 100ms -ramp 2s -measure 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "web server address")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		mix       = flag.String("mix", "shopping", "workload mix name")
		clients   = flag.Int("clients", 10, "emulated clients")
		think     = flag.Duration("think", 100*time.Millisecond, "mean think time")
		session   = flag.Duration("session", 30*time.Second, "mean session length")
		ramp      = flag.Duration("ramp", 2*time.Second, "ramp-up")
		measure   = flag.Duration("measure", 10*time.Second, "measurement window")
		rampdown  = flag.Duration("rampdown", time.Second, "ramp-down")
		images    = flag.Bool("images", true, "fetch embedded images")
		seed      = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	var profile *workload.Profile
	switch *benchmark {
	case "bookstore":
		profile = bookstore.Profile(bookstore.DefaultScale())
	case "auction":
		profile = auction.Profile(auction.DefaultScale())
	default:
		log.Fatalf("unknown benchmark %q", *benchmark)
	}
	rep, err := workload.Run(*addr, profile, workload.Config{
		Clients: *clients, Mix: *mix,
		ThinkMean: *think, SessionMean: *session,
		RampUp: *ramp, Measure: *measure, RampDown: *rampdown,
		FetchImages: *images, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix=%s clients=%d window=%s\n", rep.Mix, rep.Clients, rep.MeasureDuration)
	fmt.Printf("throughput   %8.0f interactions/min (%d completed, %d errors)\n",
		rep.ThroughputIPM, rep.Interactions, rep.Errors)
	fmt.Printf("latency      mean %.1fms  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		rep.Latency.Mean()*1000, rep.Latency.Percentile(50)*1000,
		rep.Latency.Percentile(95)*1000, rep.Latency.Percentile(99)*1000)
	fmt.Printf("images       %d fetched\n", rep.ImageFetches)
	fmt.Println("per-interaction completions:")
	for name, n := range rep.ByInteraction {
		fmt.Printf("  %-26s %d\n", name, n)
	}
}
