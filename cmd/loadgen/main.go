// Command loadgen runs the client-browser emulator against a web server
// hosting one of the benchmarks — the role of the paper's client emulation
// machines (§4.1).
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -benchmark bookstore -mix shopping \
//	        -clients 50 -think 100ms -ramp 2s -measure 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/httpd/httpclient"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// usage documents every flag plus the semantics -h alone cannot carry:
// what a run's phases mean and where the saturation table comes from.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `loadgen — TPC-W-style client-browser emulator (the paper's §4.1 client machines)

Usage:
  loadgen [flags]

Drives -clients emulated browsers against the web server at -addr. Each
browser runs sessions over one persistent HTTP connection with a
browser-style cookie jar (so JSESSIONID sessions — and their
load-balancer affinity routes — persist across interactions), picks
interactions from the -mix distribution, thinks negative-exponentially
between them, and fetches each page's embedded images. The run is
ramp-up / measure / ramp-down; only completions inside the measurement
window count.

The target is typically cmd/webserver — standalone, or fronting a
load-balanced app tier and a replicated database (the multi-backend
topologies; see "Operating the stack" in README.md). When the target
serves /status (any core.Lab-assembled server), loadgen snapshots it at
both measurement-window edges and prints the windowed per-tier
saturation table naming the bottleneck tier.

Flags:
`)
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), `
Mixes:
  bookstore: browsing (95%% read-only), shopping (80%%), ordering (50%%)
  auction:   browsing (read-only), bidding (15%% read-write)

Example:
  loadgen -addr 127.0.0.1:8080 -benchmark auction -mix bidding \
          -clients 50 -think 100ms -ramp 2s -measure 10s
`)
}

// fetchStatus polls the server's /status telemetry endpoint; nil when the
// server does not expose it (e.g. a bare webserver without core assembly).
func fetchStatus(addr string) *telemetry.Snapshot {
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Get("/status")
	if err != nil || resp.Status != 200 {
		return nil
	}
	snap, err := telemetry.Parse(resp.Body)
	if err != nil {
		return nil
	}
	return snap
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "web server host:port to drive (a webserver, possibly fronting multiple app/db backends)")
		benchmark = flag.String("benchmark", "bookstore", "application profile: bookstore (TPC-W) or auction (RUBiS)")
		mix       = flag.String("mix", "shopping", "workload mix: browsing/shopping/ordering (bookstore) or browsing/bidding (auction)")
		clients   = flag.Int("clients", 10, "number of concurrently emulated browsers")
		think     = flag.Duration("think", 100*time.Millisecond, "mean think time between interactions (negative-exponential, truncated at 10x; TPC-W uses 7s)")
		session   = flag.Duration("session", 30*time.Second, "mean browser-session length (exponential); each session opens a fresh connection and cookie jar")
		ramp      = flag.Duration("ramp", 2*time.Second, "ramp-up phase excluded from measurement")
		measure   = flag.Duration("measure", 10*time.Second, "measurement window (only completions inside it count)")
		rampdown  = flag.Duration("rampdown", time.Second, "ramp-down phase excluded from measurement")
		images    = flag.Bool("images", true, "fetch the images embedded in each page, like the paper's emulated browsers")
		seed      = flag.Int64("seed", 1, "deterministic seed for interaction choice and think times")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unexpected arguments %q\n\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var profile *workload.Profile
	switch *benchmark {
	case "bookstore":
		profile = bookstore.Profile(bookstore.DefaultScale())
	case "auction":
		profile = auction.Profile(auction.DefaultScale())
	default:
		log.Fatalf("unknown benchmark %q", *benchmark)
	}
	// Snapshot /status at the measurement-window edges so the saturation
	// section covers exactly the measured interval, like the throughput.
	var before, after *telemetry.Snapshot
	rep, err := workload.Run(*addr, profile, workload.Config{
		Clients: *clients, Mix: *mix,
		ThinkMean: *think, SessionMean: *session,
		RampUp: *ramp, Measure: *measure, RampDown: *rampdown,
		FetchImages: *images, Seed: *seed,
		OnMeasureStart: func() { before = fetchStatus(*addr) },
		OnMeasureEnd:   func() { after = fetchStatus(*addr) },
	})
	if err != nil {
		log.Fatal(err)
	}
	// Both edge snapshots must have succeeded; otherwise the delta would
	// silently cover boot-to-end counters instead of the window.
	if before != nil && after != nil {
		rep.Tiers = after.Delta(before)
	}
	fmt.Printf("mix=%s clients=%d window=%s\n", rep.Mix, rep.Clients, rep.MeasureDuration)
	fmt.Printf("throughput   %8.0f interactions/min (%d completed, %d errors)\n",
		rep.ThroughputIPM, rep.Interactions, rep.Errors)
	fmt.Printf("latency      mean %.1fms  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		rep.Latency.Mean()*1000, rep.Latency.Percentile(50)*1000,
		rep.Latency.Percentile(95)*1000, rep.Latency.Percentile(99)*1000)
	fmt.Printf("images       %d fetched\n", rep.ImageFetches)
	fmt.Println("per-interaction completions:")
	for name, n := range rep.ByInteraction {
		fmt.Printf("  %-26s %d\n", name, n)
	}
	if rep.Tiers != nil {
		fmt.Println("\nper-tier saturation (from /status):")
		fmt.Print(rep.FormatTiers())
	}
}
