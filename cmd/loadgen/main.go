// Command loadgen runs the client-browser emulator against a web server
// hosting one of the benchmarks — the role of the paper's client emulation
// machines (§4.1).
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -benchmark bookstore -mix shopping \
//	        -clients 50 -think 100ms -ramp 2s -measure 10s
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/httpd/httpclient"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// fetchStatus polls the server's /status telemetry endpoint; nil when the
// server does not expose it (e.g. a bare webserver without core assembly).
func fetchStatus(addr string) *telemetry.Snapshot {
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Get("/status")
	if err != nil || resp.Status != 200 {
		return nil
	}
	snap, err := telemetry.Parse(resp.Body)
	if err != nil {
		return nil
	}
	return snap
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "web server address")
		benchmark = flag.String("benchmark", "bookstore", "bookstore or auction")
		mix       = flag.String("mix", "shopping", "workload mix name")
		clients   = flag.Int("clients", 10, "emulated clients")
		think     = flag.Duration("think", 100*time.Millisecond, "mean think time")
		session   = flag.Duration("session", 30*time.Second, "mean session length")
		ramp      = flag.Duration("ramp", 2*time.Second, "ramp-up")
		measure   = flag.Duration("measure", 10*time.Second, "measurement window")
		rampdown  = flag.Duration("rampdown", time.Second, "ramp-down")
		images    = flag.Bool("images", true, "fetch embedded images")
		seed      = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	var profile *workload.Profile
	switch *benchmark {
	case "bookstore":
		profile = bookstore.Profile(bookstore.DefaultScale())
	case "auction":
		profile = auction.Profile(auction.DefaultScale())
	default:
		log.Fatalf("unknown benchmark %q", *benchmark)
	}
	// Snapshot /status at the measurement-window edges so the saturation
	// section covers exactly the measured interval, like the throughput.
	var before, after *telemetry.Snapshot
	rep, err := workload.Run(*addr, profile, workload.Config{
		Clients: *clients, Mix: *mix,
		ThinkMean: *think, SessionMean: *session,
		RampUp: *ramp, Measure: *measure, RampDown: *rampdown,
		FetchImages: *images, Seed: *seed,
		OnMeasureStart: func() { before = fetchStatus(*addr) },
		OnMeasureEnd:   func() { after = fetchStatus(*addr) },
	})
	if err != nil {
		log.Fatal(err)
	}
	// Both edge snapshots must have succeeded; otherwise the delta would
	// silently cover boot-to-end counters instead of the window.
	if before != nil && after != nil {
		rep.Tiers = after.Delta(before)
	}
	fmt.Printf("mix=%s clients=%d window=%s\n", rep.Mix, rep.Clients, rep.MeasureDuration)
	fmt.Printf("throughput   %8.0f interactions/min (%d completed, %d errors)\n",
		rep.ThroughputIPM, rep.Interactions, rep.Errors)
	fmt.Printf("latency      mean %.1fms  p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		rep.Latency.Mean()*1000, rep.Latency.Percentile(50)*1000,
		rep.Latency.Percentile(95)*1000, rep.Latency.Percentile(99)*1000)
	fmt.Printf("images       %d fetched\n", rep.ImageFetches)
	fmt.Println("per-interaction completions:")
	for name, n := range rep.ByInteraction {
		fmt.Printf("  %-26s %d\n", name, n)
	}
	if rep.Tiers != nil {
		fmt.Println("\nper-tier saturation (from /status):")
		fmt.Print(rep.FormatTiers())
	}
}
