package scriptmod

import (
	"errors"
	"testing"

	"repro/internal/httpd"
	"repro/internal/servlet"
)

type initServlet struct {
	inited   bool
	failInit bool
}

func (s *initServlet) Init(*servlet.Context) error {
	if s.failInit {
		return errors.New("init refused")
	}
	s.inited = true
	return nil
}

func (s *initServlet) Service(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	r := httpd.NewResponse()
	r.WriteString("in-process:" + req.Path)
	return r, nil
}

func (s *initServlet) Destroy() {}

func TestMountDispatchesInProcess(t *testing.T) {
	c := servlet.NewContainer(servlet.Config{})
	sv := &initServlet{}
	c.Register("/app/", sv)
	m, err := Mount(c)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !sv.inited {
		t.Fatal("Mount must run servlet Init")
	}
	resp, err := m.ServeHTTP(&httpd.Request{Method: "GET", Path: "/app/x",
		Header: httpd.Header{}, Query: map[string][]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "in-process:/app/x" {
		t.Fatalf("body %q", resp.Body)
	}
}

func TestMountPropagatesInitError(t *testing.T) {
	c := servlet.NewContainer(servlet.Config{})
	c.Register("/app/", &initServlet{failInit: true})
	if _, err := Mount(c); err == nil {
		t.Fatal("Mount must surface Init errors")
	}
}
