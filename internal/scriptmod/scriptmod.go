// Package scriptmod mounts an application container inside the web-server
// process, the deployment model of mod_php in the paper's WsPhp-DB
// configuration (§2.1): the dynamic-content generator shares the web
// server's address space, so dispatch is a function call with no
// interprocess communication — the structural property that makes PHP
// cheaper per interaction than co-located servlets (§6.1) and at the same
// time pins it to the web server machine (§6.3).
package scriptmod

import (
	"repro/internal/httpd"
	"repro/internal/servlet"
)

// Module is an in-process dynamic-content module.
type Module struct {
	container *servlet.Container
}

// Mount initializes the container's application logic and returns it as an
// in-process module. The container must not also be started on AJP.
func Mount(c *servlet.Container) (*Module, error) {
	if err := c.Init(); err != nil {
		return nil, err
	}
	return &Module{container: c}, nil
}

// ServeHTTP dispatches in-process (no IPC).
func (m *Module) ServeHTTP(req *httpd.Request) (*httpd.Response, error) {
	return m.container.Handler().ServeHTTP(req)
}

// Container exposes the mounted container (telemetry reads its stats).
func (m *Module) Container() *servlet.Container { return m.container }

// Close shuts the container down.
func (m *Module) Close() error { return m.container.Close() }
