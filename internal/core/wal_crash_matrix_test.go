package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/perfsim"
	"repro/internal/pool"
	"repro/internal/sqldb"
	"repro/internal/sqldb/walfault"
	"repro/internal/workload"
)

// The WAL crash matrix: a durable database backend dies at a named crash
// point (or to a timed power cut) while the full stack is under load —
// (crash point × workload mix × replica count) — and every case asserts the
// same things: the run completes inside the chaos matrix's hard wall-clock
// bound, the backend restarts from its data directory alone (checkpoint
// load + log replay), and after Rejoin the database tier is row-for-row
// identical again. Clean server kills are covered by the failover tests and
// exact byte-prefix recovery by the sqldb subprocess tests; this matrix is
// the end-to-end kill-and-recover drill through the cluster client.

// walLab starts a durable configuration: every backend logs to its own
// directory under DBDataDir, with transport deadlines short enough that a
// crashed backend surfaces as a bounded error and gets ejected quickly.
func walLab(t *testing.T, cfg Config) *Lab {
	t.Helper()
	cfg.Arch = perfsim.ArchServletSync
	cfg.Benchmark = perfsim.Auction
	cfg.Seed = 3
	cfg.DBDataDir = t.TempDir()
	cfg.DBTimeouts = pool.Timeouts{Op: 250 * time.Millisecond, Wait: 300 * time.Millisecond}
	cfg.AppTimeouts = pool.Timeouts{Op: 500 * time.Millisecond}
	lab, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	return lab
}

// restartFromDiskOrSkip restarts the crashed backend from its data
// directory. Rebinding the original address can race the dying server's
// asynchronous shutdown, so bind failures retry briefly and only then skip;
// a recovery failure is always fatal.
func restartFromDiskOrSkip(t *testing.T, lab *Lab, i int) *sqldb.RecoveryInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := lab.RestartReplicaFromDisk(i)
		if err == nil {
			if !info.Recovered {
				t.Fatalf("restart found no state to recover: %+v", info)
			}
			return info
		}
		if strings.Contains(err.Error(), "recover replica") {
			t.Fatalf("recovery from disk failed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Skipf("cannot rebind replica address: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestWALCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is a torture test")
	}
	cases := []struct {
		name     string
		point    walfault.Point // "" = timed power cut, no crash-point hook
		after    int            // fire on the after-th hit
		mix      string
		replicas int
	}{
		{"pre-append/bidding/2", walfault.PreAppend, 10, "bidding", 2},
		{"post-append-pre-fsync/bidding/2", walfault.PostAppendPreFsync, 5, "bidding", 2},
		{"mid-checkpoint/bidding/2", walfault.MidCheckpoint, 1, "bidding", 2},
		{"mid-rotate/bidding/2", walfault.MidRotate, 1, "bidding", 2},
		{"power-cut/browsing/2", "", 0, "browsing", 2},
		{"pre-append/bidding/1", walfault.PreAppend, 10, "bidding", 1},
		{"post-append-pre-fsync/bidding/1", walfault.PostAppendPreFsync, 5, "bidding", 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			victim := tc.replicas - 1 // the sole backend, or the non-reference one
			cfg := Config{DBReplicas: tc.replicas}
			var hook *walfault.Hook
			if tc.point != "" {
				hook = walfault.New()
				cfg.DBWALFaults = map[int]*walfault.Hook{victim: hook}
			}
			lab := walLab(t, cfg)
			cl := lab.Cluster()

			// One serialized write before the fault so every log has a head
			// past the initial checkpoint — the delta handshake's anchor.
			if _, err := cl.ExecCached("UPDATE items SET max_bid = 11 WHERE id = 1"); err != nil {
				t.Fatal(err)
			}

			// Arm after Start so the initial-attach checkpoint and rotate
			// don't consume the hit budget: the hook fires mid-workload. The
			// crash action is the sqldb power cut (everything unsynced drops)
			// plus an asynchronous server kill — the hook runs on a statement
			// or checkpoint goroutine, which must never wait on the server's
			// own shutdown.
			var fired atomic.Bool
			if hook != nil {
				w := lab.ReplicaDB(victim).WAL()
				hook.Set(tc.point, tc.after, func() {
					fired.Store(true)
					w.Crash()
					go lab.StopReplica(victim)
				})
			}
			done := make(chan struct{})
			inject := func() {
				defer close(done)
				time.Sleep(100 * time.Millisecond)
				switch tc.point {
				case "":
					fired.Store(true)
					if err := lab.CrashReplica(victim); err != nil {
						t.Errorf("power cut: %v", err)
					}
				case walfault.MidCheckpoint, walfault.MidRotate:
					// The checkpoint walks into the armed point and dies there.
					_ = lab.ReplicaDB(victim).Checkpoint()
				}
			}
			rep := runBounded(t, lab, workload.Config{
				Clients: 6, Mix: tc.mix,
				ThinkMean: time.Millisecond, SessionMean: time.Second,
				RampUp: 30 * time.Millisecond, Measure: 600 * time.Millisecond,
				Seed:           29,
				OnMeasureStart: func() { go inject() },
			})
			<-done
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed around the crash")
			}
			// Append-point hooks fire off the workload's own writes; if the
			// window closed first, push serialized writes until the hook trips.
			for i := 0; i < 50 && !fired.Load(); i++ {
				_, _ = cl.ExecCached("UPDATE items SET max_bid = ? WHERE id = 1", sqldb.Float(float64(20+i)))
			}
			if !fired.Load() {
				t.Fatal("crash point never fired")
			}
			if tc.replicas == 1 {
				// A single-replica client never ejects (there is nothing to
				// fail over to), so just wait until the crash is observable:
				// writes through the stack fail on the dead backend.
				deadline := time.Now().Add(10 * time.Second)
				for {
					if _, err := cl.ExecCached("UPDATE items SET max_bid = 12 WHERE id = 1"); err != nil {
						break
					}
					if time.Now().After(deadline) {
						t.Fatal("writes kept succeeding after the crash")
					}
					time.Sleep(20 * time.Millisecond)
				}
				// Nothing to compare against and nothing to rejoin from: the
				// data directory alone must bring the tier back.
				restartFromDiskOrSkip(t, lab, victim)
				if err := cl.Rejoin(victim, false); err != nil {
					t.Fatalf("rejoin: %v", err)
				}
				after := runBounded(t, lab, workload.Config{
					Clients: 4, Mix: tc.mix,
					ThinkMean: time.Millisecond, SessionMean: time.Second,
					Measure: 300 * time.Millisecond, Seed: 31,
				})
				if after.Interactions == 0 || after.Errors > after.Interactions/10 {
					t.Fatalf("recovered backend not serving cleanly: %d completions, %d errors",
						after.Interactions, after.Errors)
				}
				// A lone backend has no per-replica telemetry section; the
				// tier aggregate must still show the recovery.
				if dt := lab.Telemetry().Tier("db"); dt == nil || dt.WALRecoveries < 1 {
					t.Fatalf("telemetry missed the recovery: %+v", dt)
				}
				return
			}

			// The crashed backend must end up ejected — keep a trickle of
			// writes flowing so the fan-out observes the dead transport.
			deadline := time.Now().Add(10 * time.Second)
			for cl.Healthy() != tc.replicas-1 {
				if time.Now().After(deadline) {
					t.Fatalf("crashed replica never ejected: healthy %d", cl.Healthy())
				}
				_, _ = cl.ExecCached("UPDATE items SET max_bid = 12 WHERE id = 1")
				time.Sleep(20 * time.Millisecond)
			}

			// Writes the victim misses while down: serialized, so the
			// survivor's log stays an extension of the victim's history.
			for k := 0; k < 5; k++ {
				if _, err := cl.ExecCached("UPDATE items SET max_bid = ? WHERE id = 1",
					sqldb.Float(float64(50+k))); err != nil {
					t.Fatalf("write during outage: %v", err)
				}
			}

			info := restartFromDiskOrSkip(t, lab, victim)
			if info.ReplayedStmts == 0 && info.CheckpointLSN == 0 {
				t.Errorf("recovery replayed nothing: %+v", info)
			}
			if err := cl.Rejoin(victim, true); err != nil {
				t.Fatalf("rejoin: %v", err)
			}
			st := cl.ClientStats()
			if st.WALDeltaSyncs+st.WALFullSyncs < 1 {
				t.Fatalf("rejoin synced nothing: %+v", st)
			}
			if tc.point == "" {
				// The power-cut/browsing case is order-deterministic (the mix
				// carries no writes, every write above was serialized), so the
				// rejoin MUST take the log-shipping fast path — and ship at
				// least the five missed writes, not a full copy.
				if st.WALDeltaSyncs != 1 || st.WALFullSyncs != 0 {
					t.Fatalf("rejoin took the wrong path: delta=%d full=%d",
						st.WALDeltaSyncs, st.WALFullSyncs)
				}
				if st.WALDeltaStmts < 5 {
					t.Fatalf("delta shipped %d statements, want >= 5", st.WALDeltaStmts)
				}
			}
			assertReplicasIdentical(t, lab, tc.replicas, auctionChaosTables)

			// The rejoined backend takes the next write and the recovery is
			// visible in telemetry.
			if _, err := cl.ExecCached("UPDATE items SET max_bid = 99 WHERE id = 1"); err != nil {
				t.Fatal(err)
			}
			assertReplicasIdentical(t, lab, tc.replicas, auctionChaosTables)
			tel := lab.Telemetry()
			dt := tel.Tier("db")
			if dt == nil || dt.WALRecoveries < 1 || tel.Replicas[victim].Recoveries < 1 {
				t.Fatalf("telemetry missed the recovery: tier %+v replicas %+v", dt, tel.Replicas)
			}
			if dt.WALAppends == 0 || dt.WALFsyncs == 0 {
				t.Fatalf("tier WAL counters empty: %+v", dt)
			}
		})
	}
}
