package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/perfsim"
	"repro/internal/sqldb"
	"repro/internal/workload"
)

// Clustered-database coverage: the lab with DBReplicas > 1 runs the same
// stack over a read-one-write-all database tier (DESIGN.md §3).

// TestClusterWorkloadReadsBothReplicas is the acceptance run: a 2-replica
// RealStackWorkload completes with reads observed on both replicas and
// consistent state across them.
func TestClusterWorkloadReadsBothReplicas(t *testing.T) {
	for _, arch := range []perfsim.Arch{perfsim.ArchServletSync, perfsim.ArchEJB} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			lab, err := Start(Config{
				Arch: arch, Benchmark: perfsim.Auction,
				Seed: 3, DBReplicas: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer lab.Close()
			rep, err := lab.Run(workload.Config{
				Clients: 6, Mix: "bidding",
				ThinkMean: time.Millisecond, SessionMean: time.Second,
				RampUp: 30 * time.Millisecond, Measure: 300 * time.Millisecond,
				Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed")
			}
			if rep.Errors > rep.Interactions/10 {
				t.Fatalf("error rate too high: %d errors / %d completions", rep.Errors, rep.Interactions)
			}
			for i, n := range lab.ReplicaQueryCounts() {
				if n == 0 {
					t.Errorf("replica %d served no statements; reads did not spread", i)
				}
			}
			// The report's telemetry carries the per-replica section.
			if rep.Tiers == nil || len(rep.Tiers.Replicas) != 2 {
				t.Fatalf("report missing per-replica telemetry: %+v", rep.Tiers)
			}
			for _, r := range rep.Tiers.Replicas {
				if r.Reads == 0 {
					t.Errorf("replica %d routed no reads over the window: %+v", r.ID, r)
				}
			}
			// Writes broadcast: both replicas hold identical bid state.
			a, err := lab.ReplicaDB(0).NewSession().Exec("SELECT COUNT(*), MAX(id) FROM bids")
			if err != nil {
				t.Fatal(err)
			}
			b, err := lab.ReplicaDB(1).NewSession().Exec("SELECT COUNT(*), MAX(id) FROM bids")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
				t.Fatalf("replicas diverged: bids %v vs %v", a.Rows, b.Rows)
			}
		})
	}
}

// TestClusterSurvivesReplicaFailover kills one of two replicas mid-
// workload: the run must keep completing interactions on the survivor.
func TestClusterSurvivesReplicaFailover(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
		Seed: 3, DBReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	killed := make(chan struct{})
	rep, err := lab.Run(workload.Config{
		Clients: 6, Mix: "bidding",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		RampUp: 30 * time.Millisecond, Measure: 500 * time.Millisecond,
		Seed: 13,
		OnMeasureStart: func() {
			go func() {
				time.Sleep(100 * time.Millisecond)
				lab.StopReplica(1) // fault injection mid-window
				close(killed)
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	if rep.Interactions == 0 {
		t.Fatal("no interactions completed across the failover")
	}
	// The stack must have kept serving after the kill: drive it again now
	// that only one replica is alive.
	after, err := lab.Run(workload.Config{
		Clients: 4, Mix: "bidding",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		Measure: 200 * time.Millisecond, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Interactions == 0 || after.Errors > after.Interactions/10 {
		t.Fatalf("survivor not serving cleanly: %d completions, %d errors",
			after.Interactions, after.Errors)
	}
	cl := lab.Cluster()
	if cl == nil {
		t.Fatal("no cluster client")
	}
	if h := cl.Healthy(); h != 1 {
		t.Fatalf("healthy replicas %d, want 1", h)
	}
	rs := cl.ReplicaStats()
	if rs[1].Healthy || rs[1].Ejections == 0 {
		t.Fatalf("replica 1 should be ejected: %+v", rs[1])
	}
}

// TestClusterTelemetryDelta: the /status snapshot and its windowed delta
// must both carry the replica section.
func TestClusterTelemetryDelta(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchPHP, Benchmark: perfsim.Bookstore,
		Seed: 2, DBReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	before := lab.Telemetry()
	if len(before.Replicas) != 2 {
		t.Fatalf("snapshot has %d replicas, want 2", len(before.Replicas))
	}
	// Populate already ran; route some traffic and window it.
	cl := lab.Cluster()
	for i := 0; i < 6; i++ {
		if _, err := cl.ExecCached("SELECT id FROM customers WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	delta := lab.Telemetry().Delta(before)
	var reads int64
	for _, r := range delta.Replicas {
		reads += r.Reads
		if r.Writes != 0 {
			t.Errorf("windowed writes %d on replica %d, want 0", r.Writes, r.ID)
		}
	}
	if reads != 6 {
		t.Fatalf("windowed reads %d, want 6", reads)
	}
}

// replicaTableDump renders one replica's table contents row by row.
func replicaTableDump(t *testing.T, lab *Lab, replica int, tables []string) string {
	t.Helper()
	sess := lab.ReplicaDB(replica).NewSession()
	defer sess.Close()
	var b strings.Builder
	for _, table := range tables {
		res, err := sess.Exec("SELECT * FROM " + table)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "== %s\n", table)
		for _, row := range res.Rows {
			fmt.Fprintf(&b, "%v\n", row)
		}
	}
	return b.String()
}

// assertReplicasIdentical compares the given tables row by row across every
// replica.
func assertReplicasIdentical(t *testing.T, lab *Lab, replicas int, tables []string) string {
	t.Helper()
	want := replicaTableDump(t, lab, 0, tables)
	for i := 1; i < replicas; i++ {
		if got := replicaTableDump(t, lab, i, tables); got != want {
			t.Fatalf("replica %d diverged:\n%s\nvs replica 0:\n%s", i, got, want)
		}
	}
	return want
}

var bookstoreTxTables = []string{"customers", "items", "orders", "order_line", "credit_info"}

// TestRollbackBookstoreCheckoutE2E runs the checkout transaction's exact
// statement sequence against a 2-replica cluster through the full wire
// path, fails it mid-cart, and asserts every replica is byte-identical to
// the pre-transaction state (run with -race).
func TestRollbackBookstoreCheckoutE2E(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServlet, Benchmark: perfsim.Bookstore,
		Seed: 5, DBReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	cl := lab.Cluster()

	before := assertReplicasIdentical(t, lab, 2, bookstoreTxTables)
	failure := fmt.Errorf("payment authorization declined")
	err = cl.WithTx([]string{"credit_info", "items", "order_line", "orders"}, func(tx *cluster.Session) error {
		ores, err := tx.ExecCached(
			`INSERT INTO orders (customer_id, o_date, subtotal, total, status)
			 VALUES (?, ?, ?, ?, ?)`,
			sqldb.Int(1), sqldb.Int(12000), sqldb.Float(30), sqldb.Float(30), sqldb.String("PENDING"))
		if err != nil {
			return err
		}
		orderID := ores.LastInsertID
		if _, err := tx.ExecCached(
			"INSERT INTO order_line (order_id, item_id, qty, discount) VALUES (?, ?, ?, ?)",
			sqldb.Int(orderID), sqldb.Int(1), sqldb.Int(2), sqldb.Float(0)); err != nil {
			return err
		}
		if _, err := tx.ExecCached(
			"UPDATE items SET stock = stock - ?, total_sold = total_sold + ? WHERE id = ?",
			sqldb.Int(2), sqldb.Int(2), sqldb.Int(1)); err != nil {
			return err
		}
		return failure // the cart fails before credit_info lands
	})
	if err != failure {
		t.Fatalf("WithTx error %v, want the injected failure", err)
	}
	after := assertReplicasIdentical(t, lab, 2, bookstoreTxTables)
	if after != before {
		t.Fatalf("abort did not restore pre-transaction state:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// The stack keeps serving checkouts after the abort, reusing the ids.
	err = cl.WithTx([]string{"credit_info", "items", "order_line", "orders"}, func(tx *cluster.Session) error {
		_, err := tx.ExecCached(
			`INSERT INTO orders (customer_id, o_date, subtotal, total, status)
			 VALUES (?, ?, ?, ?, ?)`,
			sqldb.Int(2), sqldb.Int(12000), sqldb.Float(10), sqldb.Float(10), sqldb.String("PENDING"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	assertReplicasIdentical(t, lab, 2, bookstoreTxTables)
}

// TestRollbackAuctionBidRaceE2E races concurrent storeBid transactions on
// one hot item against a 2-replica cluster, aborting some: the replicas
// must stay row-for-row identical and reflect committed bids only.
func TestRollbackAuctionBidRaceE2E(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction,
		Seed: 5, DBReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	cl := lab.Cluster()
	tables := []string{"items", "bids"}
	abort := fmt.Errorf("outbid")

	preSess := lab.ReplicaDB(0).NewSession()
	pre, err := preSess.Exec("SELECT nb_bids FROM items WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	initialBids := pre.Rows[0][0].AsInt()
	preSess.Close()

	const bidders, bidsEach = 5, 6
	var wg sync.WaitGroup
	var committed atomic.Int64
	for b := 0; b < bidders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; i < bidsEach; i++ {
				err := cl.WithTx([]string{"bids", "items"}, func(tx *cluster.Session) error {
					res, err := tx.ExecCached("SELECT max_bid FROM items WHERE id = ?", sqldb.Int(1))
					if err != nil {
						return err
					}
					if len(res.Rows) == 0 {
						return fmt.Errorf("no item")
					}
					bid := res.Rows[0][0].AsFloat() + 1
					if _, err := tx.ExecCached(
						`INSERT INTO bids (item_id, user_id, bid, max_bid, qty, bid_date)
						 VALUES (?, ?, ?, ?, 1, 12006)`,
						sqldb.Int(1), sqldb.Int(int64(b+1)), sqldb.Float(bid), sqldb.Float(bid*1.1)); err != nil {
						return err
					}
					if _, err := tx.ExecCached(
						"UPDATE items SET nb_bids = nb_bids + 1, max_bid = ? WHERE id = ?",
						sqldb.Float(bid), sqldb.Int(1)); err != nil {
						return err
					}
					if (b+i)%3 == 0 {
						return abort
					}
					committed.Add(1)
					return nil
				})
				if err != nil && err != abort {
					t.Error(err)
					return
				}
			}
		}(b)
	}
	wg.Wait()

	assertReplicasIdentical(t, lab, 2, tables)
	sess := lab.ReplicaDB(0).NewSession()
	defer sess.Close()
	res, err := sess.Exec("SELECT nb_bids FROM items WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt() - initialBids; got != committed.Load() {
		t.Fatalf("nb_bids grew by %d, want %d committed bids", got, committed.Load())
	}
}

// TestTxnReplicaKillAndRejoinE2E is the deterministic fault-injection run:
// a replica dies mid-transaction-broadcast, the survivors commit
// identically, and the restarted replica syncs the committed state on
// Rejoin — no half-applied transactions anywhere.
func TestTxnReplicaKillAndRejoinE2E(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction,
		Seed: 7, DBReplicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	cl := lab.Cluster()
	tables := []string{"items", "bids", "users"}

	err = cl.WithTx([]string{"bids", "items"}, func(tx *cluster.Session) error {
		if _, err := tx.ExecCached(
			`INSERT INTO bids (item_id, user_id, bid, max_bid, qty, bid_date)
			 VALUES (1, 1, 55, 60, 1, 12006)`); err != nil {
			return err
		}
		lab.StopReplica(2) // dies between the transaction's statements
		_, err := tx.ExecCached("UPDATE items SET nb_bids = nb_bids + 1, max_bid = 55 WHERE id = 1")
		return err
	})
	if err != nil {
		t.Fatalf("transaction must commit on the survivors: %v", err)
	}
	if h := cl.Healthy(); h != 2 {
		t.Fatalf("healthy %d, want 2", h)
	}
	want := assertReplicasIdentical(t, lab, 2, tables)

	// The dead replica rolled its half back when its connections dropped;
	// after restart + rejoin (data sync) it matches the survivors exactly.
	if err := lab.RestartReplica(2); err != nil {
		t.Skipf("cannot rebind replica address: %v", err)
	}
	if err := cl.Rejoin(2, true); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := replicaTableDump(t, lab, 2, tables); got != want {
		t.Fatalf("rejoined replica diverged:\n%s\nvs\n%s", got, want)
	}
	// And it participates in the next transaction.
	err = cl.WithTx([]string{"items"}, func(tx *cluster.Session) error {
		_, err := tx.ExecCached("UPDATE items SET max_bid = 77 WHERE id = 1")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	assertReplicasIdentical(t, lab, 3, tables)
}
