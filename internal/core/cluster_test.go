package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/perfsim"
	"repro/internal/workload"
)

// Clustered-database coverage: the lab with DBReplicas > 1 runs the same
// stack over a read-one-write-all database tier (DESIGN.md §3).

// TestClusterWorkloadReadsBothReplicas is the acceptance run: a 2-replica
// RealStackWorkload completes with reads observed on both replicas and
// consistent state across them.
func TestClusterWorkloadReadsBothReplicas(t *testing.T) {
	for _, arch := range []perfsim.Arch{perfsim.ArchServletSync, perfsim.ArchEJB} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			lab, err := Start(Config{
				Arch: arch, Benchmark: perfsim.Auction,
				Seed: 3, DBReplicas: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer lab.Close()
			rep, err := lab.Run(workload.Config{
				Clients: 6, Mix: "bidding",
				ThinkMean: time.Millisecond, SessionMean: time.Second,
				RampUp: 30 * time.Millisecond, Measure: 300 * time.Millisecond,
				Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed")
			}
			if rep.Errors > rep.Interactions/10 {
				t.Fatalf("error rate too high: %d errors / %d completions", rep.Errors, rep.Interactions)
			}
			for i, n := range lab.ReplicaQueryCounts() {
				if n == 0 {
					t.Errorf("replica %d served no statements; reads did not spread", i)
				}
			}
			// The report's telemetry carries the per-replica section.
			if rep.Tiers == nil || len(rep.Tiers.Replicas) != 2 {
				t.Fatalf("report missing per-replica telemetry: %+v", rep.Tiers)
			}
			for _, r := range rep.Tiers.Replicas {
				if r.Reads == 0 {
					t.Errorf("replica %d routed no reads over the window: %+v", r.ID, r)
				}
			}
			// Writes broadcast: both replicas hold identical bid state.
			a, err := lab.ReplicaDB(0).NewSession().Exec("SELECT COUNT(*), MAX(id) FROM bids")
			if err != nil {
				t.Fatal(err)
			}
			b, err := lab.ReplicaDB(1).NewSession().Exec("SELECT COUNT(*), MAX(id) FROM bids")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
				t.Fatalf("replicas diverged: bids %v vs %v", a.Rows, b.Rows)
			}
		})
	}
}

// TestClusterSurvivesReplicaFailover kills one of two replicas mid-
// workload: the run must keep completing interactions on the survivor.
func TestClusterSurvivesReplicaFailover(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
		Seed: 3, DBReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	killed := make(chan struct{})
	rep, err := lab.Run(workload.Config{
		Clients: 6, Mix: "bidding",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		RampUp: 30 * time.Millisecond, Measure: 500 * time.Millisecond,
		Seed: 13,
		OnMeasureStart: func() {
			go func() {
				time.Sleep(100 * time.Millisecond)
				lab.StopReplica(1) // fault injection mid-window
				close(killed)
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	if rep.Interactions == 0 {
		t.Fatal("no interactions completed across the failover")
	}
	// The stack must have kept serving after the kill: drive it again now
	// that only one replica is alive.
	after, err := lab.Run(workload.Config{
		Clients: 4, Mix: "bidding",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		Measure: 200 * time.Millisecond, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Interactions == 0 || after.Errors > after.Interactions/10 {
		t.Fatalf("survivor not serving cleanly: %d completions, %d errors",
			after.Interactions, after.Errors)
	}
	cl := lab.Cluster()
	if cl == nil {
		t.Fatal("no cluster client")
	}
	if h := cl.Healthy(); h != 1 {
		t.Fatalf("healthy replicas %d, want 1", h)
	}
	rs := cl.ReplicaStats()
	if rs[1].Healthy || rs[1].Ejections == 0 {
		t.Fatalf("replica 1 should be ejected: %+v", rs[1])
	}
}

// TestClusterTelemetryDelta: the /status snapshot and its windowed delta
// must both carry the replica section.
func TestClusterTelemetryDelta(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchPHP, Benchmark: perfsim.Bookstore,
		Seed: 2, DBReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	before := lab.Telemetry()
	if len(before.Replicas) != 2 {
		t.Fatalf("snapshot has %d replicas, want 2", len(before.Replicas))
	}
	// Populate already ran; route some traffic and window it.
	cl := lab.Cluster()
	for i := 0; i < 6; i++ {
		if _, err := cl.ExecCached("SELECT id FROM customers WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	delta := lab.Telemetry().Delta(before)
	var reads int64
	for _, r := range delta.Replicas {
		reads += r.Reads
		if r.Writes != 0 {
			t.Errorf("windowed writes %d on replica %d, want 0", r.Writes, r.ID)
		}
	}
	if reads != 6 {
		t.Fatalf("windowed reads %d, want 6", reads)
	}
}
