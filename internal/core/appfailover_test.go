package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
	"repro/internal/workload"
)

// Replicated-application-tier coverage: the load balancer's session
// affinity, and transparent session failover via the shared write-through
// session store when the pinned backend dies mid-session.

// routeOf extracts the affinity route from a session id ("s0000001.a1" ->
// "a1"), or "".
func routeOf(sessionID string) string {
	if dot := strings.LastIndex(sessionID, "."); dot >= 0 {
		return sessionID[dot+1:]
	}
	return ""
}

// backendIndex maps a core-assigned route id ("a<i>") to its backend index.
func backendIndex(t *testing.T, route string) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(route, "a%d", &i); err != nil {
		t.Fatalf("unparseable route %q: %v", route, err)
	}
	return i
}

// TestAppTierSessionAffinity verifies the balancer pins a session's
// requests to one backend: after N stateful interactions, exactly one
// container has served them all.
func TestAppTierSessionAffinity(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServletSync, Benchmark: perfsim.Bookstore,
		AppReplicas: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	if resp, err := c.Get("/tpcw/shoppingcart?i_id=1&qty=2"); err != nil || resp.Status != 200 {
		t.Fatalf("cart request: %v %v", resp, err)
	}
	sid := c.Cookie("JSESSIONID")
	route := routeOf(sid)
	if route == "" {
		t.Fatalf("session id %q carries no affinity route", sid)
	}
	// Replicated backends must share one engine-side lock manager (and
	// one session store): per-backend managers would let the (sync)
	// configurations' read-modify-write interactions interleave across
	// backends.
	if lab.containers[0].Context().Locks != lab.containers[1].Context().Locks {
		t.Fatal("backends do not share the engine-side lock manager")
	}

	pinned := backendIndex(t, route)
	before := lab.containers[pinned].Stats().Requests
	for i := 0; i < 8; i++ {
		if resp, err := c.Get("/tpcw/shoppingcart"); err != nil || resp.Status != 200 {
			t.Fatalf("pinned request %d: %v %v", i, resp, err)
		}
	}
	if got := lab.containers[pinned].Stats().Requests - before; got != 8 {
		t.Fatalf("pinned backend served %d of 8 session requests", got)
	}
	snap := lab.Telemetry()
	if len(snap.AppBackends) != 3 {
		t.Fatalf("telemetry reports %d app backends, want 3", len(snap.AppBackends))
	}
	if ab := snap.AppBackend(route); ab == nil || ab.Affinity < 8 {
		t.Fatalf("affinity counter for %s: %+v", route, ab)
	}
}

// TestAppTierSessionFailover kills the pinned backend mid-session under
// live concurrent traffic: the session must continue on a survivor with
// its cart intact (restored from the write-through session store), and
// telemetry must show the ejection and failover.
func TestAppTierSessionFailover(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServletSync, Benchmark: perfsim.Bookstore,
		AppReplicas: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()

	// Open a session and put a distinctive line in the cart.
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	resp, err := c.Get("/tpcw/shoppingcart?i_id=1&qty=3")
	if err != nil || resp.Status != 200 {
		t.Fatalf("cart request: %v %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "x3") {
		t.Fatalf("cart page lacks the added line: %s", resp.Body)
	}
	route := routeOf(c.Cookie("JSESSIONID"))
	pinned := backendIndex(t, route)

	// Background stateless traffic keeps both backends busy across the
	// kill (the -race value: balancer + store under real concurrency).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bc := httpclient.New(lab.WebAddr(), 10*time.Second)
			defer bc.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				bc.Get("/tpcw/home")
			}
		}()
	}

	lab.StopAppBackend(pinned) // the pinned backend dies mid-session

	// The very next session request must be answered by the survivor with
	// the cart restored.
	resp, err = c.Get("/tpcw/shoppingcart")
	if err != nil || resp.Status != 200 {
		t.Fatalf("post-failover request: %v %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "x3") {
		t.Fatalf("cart state lost in failover: %s", resp.Body)
	}
	// And the session keeps mutating state on the survivor.
	resp, err = c.Get("/tpcw/shoppingcart?i_id=2&qty=5")
	if err != nil || resp.Status != 200 {
		t.Fatalf("post-failover mutation: %v %v", resp, err)
	}
	body := string(resp.Body)
	if !strings.Contains(body, "x3") || !strings.Contains(body, "x5") {
		t.Fatalf("cart inconsistent after failover: %s", body)
	}
	close(stop)
	wg.Wait()

	survivor := 1 - pinned
	if lab.containers[survivor].Stats().Requests == 0 {
		t.Fatal("survivor served nothing")
	}
	snap := lab.Telemetry()
	dead := snap.AppBackend(route)
	if dead == nil || dead.Healthy || dead.Ejections < 1 || dead.Failovers < 1 {
		t.Fatalf("dead backend telemetry: %+v", dead)
	}
	if alive := snap.AppBackend(fmt.Sprintf("a%d", survivor)); alive == nil || !alive.Healthy {
		t.Fatalf("survivor telemetry: %+v", alive)
	}
}

// TestAppReplicaWorkload drives the full client emulator against a
// 2-backend application tier: the run must complete with both backends
// serving traffic and the per-backend telemetry attached to the report.
func TestAppReplicaWorkload(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServletSync, Benchmark: perfsim.Auction,
		AppReplicas: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	rep, err := lab.Run(workload.Config{
		Clients:     8,
		Mix:         "bidding",
		ThinkMean:   2 * time.Millisecond,
		SessionMean: 300 * time.Millisecond,
		RampUp:      100 * time.Millisecond,
		Measure:     700 * time.Millisecond,
		RampDown:    50 * time.Millisecond,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interactions == 0 {
		t.Fatal("no interactions completed")
	}
	if rep.Tiers == nil || len(rep.Tiers.AppBackends) != 2 {
		t.Fatalf("report lacks per-backend section: %+v", rep.Tiers)
	}
	total := int64(0)
	for _, ab := range rep.Tiers.AppBackends {
		total += ab.Routed
	}
	if total == 0 {
		t.Fatal("balancer routed nothing during the window")
	}
	for i := 0; i < lab.AppBackends(); i++ {
		if lab.containers[i].Stats().Requests == 0 {
			t.Fatalf("backend %d idle for the whole run", i)
		}
	}
}
