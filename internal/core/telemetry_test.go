package core

import (
	"testing"
	"time"

	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func shortRun(t *testing.T, lab *Lab) *workload.Report {
	t.Helper()
	rep, err := lab.Run(workload.Config{
		Clients: 4, Mix: "bidding",
		ThinkMean: 2 * time.Millisecond, SessionMean: 500 * time.Millisecond,
		RampUp: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStatusEndpointReportsSaturation is the acceptance check for the
// cross-tier telemetry: after a workload run, GET /status must return
// non-zero per-tier pool and request metrics for every architecture.
func TestStatusEndpointReportsSaturation(t *testing.T) {
	for _, a := range []perfsim.Arch{perfsim.ArchPHP, perfsim.ArchServletSync, perfsim.ArchEJB} {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			lab := startLab(t, a, perfsim.Auction)
			shortRun(t, lab)

			c := httpclient.New(lab.WebAddr(), 10*time.Second)
			defer c.Close()
			resp, err := c.Get("/status")
			if err != nil {
				t.Fatal(err)
			}
			if resp.Status != 200 {
				t.Fatalf("GET /status -> %d: %s", resp.Status, resp.Body)
			}
			snap, err := telemetry.Parse(resp.Body)
			if err != nil {
				t.Fatalf("parse /status: %v\n%s", err, resp.Body)
			}
			if snap.Arch != a.String() {
				t.Fatalf("arch = %q, want %q", snap.Arch, a.String())
			}

			web := snap.Tier("web")
			if web == nil || web.Requests == 0 {
				t.Fatalf("web tier missing or idle: %+v", snap)
			}
			sv := snap.Tier("servlet")
			if sv == nil || sv.Requests == 0 {
				t.Fatalf("servlet tier missing or idle: %+v", snap)
			}
			db := snap.Tier("db")
			if db == nil || db.Queries == 0 {
				t.Fatalf("db tier missing or idle: %+v", snap)
			}
			// Every architecture's hot statements run over the prepared
			// fast path, and repeats must hit the shared plan cache.
			if db.PreparedExecs == 0 {
				t.Fatalf("no prepared executes reported: %+v", db)
			}
			if db.PlanHits == 0 || db.PlanMisses == 0 {
				t.Fatalf("plan cache counters idle: %+v", db)
			}
			if a != perfsim.ArchPHP {
				if web.Pool == nil || web.Pool.Gets == 0 || web.Pool.Dials == 0 {
					t.Fatalf("AJP connector pool idle: %+v", web.Pool)
				}
			}
			if sv.Pool == nil || sv.Pool.Gets == 0 {
				t.Fatalf("servlet downstream pool idle: %+v", sv.Pool)
			}
			if a == perfsim.ArchEJB {
				ejb := snap.Tier("ejb")
				if ejb == nil || ejb.Queries == 0 || ejb.Pool.Gets == 0 {
					t.Fatalf("ejb tier missing or idle: %+v", ejb)
				}
			}
		})
	}
}

// TestRunAttachesTierDelta checks that Lab.Run windows the telemetry: the
// report carries per-tier counters for the run and names a bottleneck.
func TestRunAttachesTierDelta(t *testing.T) {
	lab := startLab(t, perfsim.ArchServletSync, perfsim.Auction)
	rep := shortRun(t, lab)
	if rep.Tiers == nil {
		t.Fatal("report has no tier telemetry")
	}
	web := rep.Tiers.Tier("web")
	if web == nil || web.Requests == 0 {
		t.Fatalf("windowed web tier: %+v", web)
	}
	db := rep.Tiers.Tier("db")
	if db == nil || db.Queries == 0 {
		t.Fatalf("windowed db tier: %+v", db)
	}
	if rep.Bottleneck() == "" {
		t.Fatal("no bottleneck named")
	}
	if rep.FormatTiers() == "" {
		t.Fatal("empty tier report")
	}

	// A second run's window must not double-count the first run's work:
	// the delta should be in the same order of magnitude as its own run,
	// not cumulative. Loose sanity bound: second window's web requests
	// are fewer than the lab's cumulative total.
	rep2 := shortRun(t, lab)
	total := lab.Telemetry().Tier("web").Requests
	if w2 := rep2.Tiers.Tier("web").Requests; w2 <= 0 || w2 >= total {
		t.Fatalf("window not differenced: run2=%d cumulative=%d", w2, total)
	}
}
