package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/perfsim"
	"repro/internal/pool"
	"repro/internal/sqldb"
	"repro/internal/workload"
)

// The chaos matrix: the full stack (web → lb → servlet → db cluster) is
// driven by the client emulator while a fault-injecting proxy degrades one
// link per case — (tier × fault) — and every case asserts the same three
// things: the run completes inside a hard wall-clock bound (nothing hangs
// on a stalled peer), the error rate stays bounded (the stack routes
// around the fault instead of failing every request), and after healing
// and RejoinAll the database replicas are row-for-row identical (no fault
// silently diverged the ROWA invariant). Clean kills are covered by the
// failover tests; this matrix is the up-but-wrong matrix.

var auctionChaosTables = []string{"items", "bids", "users"}

// chaosLab starts the standard matrix configuration: 2 db replicas and 2
// app backends, chaos proxies on every cross-tier link, and deadlines
// short enough that a stalled peer surfaces as a bounded error.
func chaosLab(t *testing.T, cfg Config) *Lab {
	t.Helper()
	if cfg.Arch == 0 {
		cfg.Arch = perfsim.ArchServletSync
	}
	cfg.Benchmark = perfsim.Auction
	cfg.Seed = 3
	cfg.DBReplicas = 2
	cfg.Chaos = true
	if cfg.DBTimeouts == (pool.Timeouts{}) {
		cfg.DBTimeouts = pool.Timeouts{Op: 250 * time.Millisecond, Wait: 300 * time.Millisecond}
	}
	if cfg.AppTimeouts == (pool.Timeouts{}) {
		cfg.AppTimeouts = pool.Timeouts{Op: 500 * time.Millisecond}
	}
	lab, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lab.Close)
	return lab
}

// runBounded drives the workload and enforces the no-hang bound: with
// every transport deadline in the 250–500ms range, even a fully stalled
// link must not stretch the run anywhere near the bound.
func runBounded(t *testing.T, lab *Lab, wcfg workload.Config) *workload.Report {
	t.Helper()
	start := time.Now()
	rep, err := lab.Run(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("workload took %v — something hung past its deadline", d)
	}
	return rep
}

func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		name string
		tier string // "db" or "app": which link the fault hits
		kind chaos.Kind
	}{
		{"db-latency", "db", chaos.Latency},
		{"db-stall", "db", chaos.Stall},
		{"db-reset", "db", chaos.Reset},
		{"app-stall", "app", chaos.Stall},
		{"app-reset", "app", chaos.Reset},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{AppReplicas: 2}
			if tc.kind == chaos.Latency {
				// The latency case is the slow-replica-ejection case: the
				// injected 150ms lag must trip the 60ms threshold.
				cfg.DBSlowThreshold = 60 * time.Millisecond
			}
			lab := chaosLab(t, cfg)

			// Fault at 100ms into the measurement window, heal at 300ms.
			done := make(chan struct{})
			inject := func() {
				defer close(done)
				time.Sleep(100 * time.Millisecond)
				switch {
				case tc.tier == "db" && tc.kind == chaos.Latency:
					lab.SlowReplica(1, 150*time.Millisecond)
				case tc.tier == "db" && tc.kind == chaos.Stall:
					lab.PartitionReplica(1)
				case tc.tier == "db":
					lab.DBProxy(1).Set(chaos.Fault{Kind: chaos.Reset})
				case tc.kind == chaos.Stall:
					lab.StallAppBackend(1)
				default:
					lab.AppProxy(1).Set(chaos.Fault{Kind: chaos.Reset})
				}
				time.Sleep(200 * time.Millisecond)
				lab.HealReplica(1)
				lab.HealAppBackend(1)
			}
			rep := runBounded(t, lab, workload.Config{
				Clients: 6, Mix: "bidding",
				ThinkMean: time.Millisecond, SessionMean: time.Second,
				RampUp: 30 * time.Millisecond, Measure: 600 * time.Millisecond,
				Seed:           11,
				OnMeasureStart: func() { go inject() },
			})
			<-done
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed under chaos")
			}
			// Bounded degradation, not collapse: the fault window covers a
			// third of the run, and the stack ejects the faulty link within
			// one deadline — most interactions must still complete.
			if rep.Errors > rep.Interactions/3 {
				t.Fatalf("error rate too high under %s: %d errors / %d completions",
					tc.name, rep.Errors, rep.Interactions)
			}

			// Recovery: every ejected replica rejoins and the tier is
			// byte-identical — the fault never half-applied a write.
			if err := lab.RejoinAll(); err != nil {
				t.Fatalf("rejoin after heal: %v", err)
			}
			if cl := lab.Cluster(); cl.Healthy() != cl.Replicas() {
				t.Fatalf("healthy %d / %d after RejoinAll", cl.Healthy(), cl.Replicas())
			}
			assertReplicasIdentical(t, lab, 2, auctionChaosTables)
		})
	}
}

// TestChaosScriptedSchedule is the deterministic acceptance run: one
// seeded schedule slows then stalls db replica 1 while the app backend 1
// link flaps, all mid-workload, with no goroutine in the test scripting
// faults — the windows are data. The run must complete, the proxies must
// show the faults actually fired, and the replicas must converge after
// rejoin.
func TestChaosScriptedSchedule(t *testing.T) {
	t.Parallel()
	appSched := chaos.Schedule{Seed: 42}
	appSched.Flap(300*time.Millisecond, 2, 80*time.Millisecond, 120*time.Millisecond)
	lab := chaosLab(t, Config{
		AppReplicas: 2,
		DBChaos: map[int]chaos.Schedule{
			1: {Seed: 42, Rules: []chaos.Rule{
				{Fault: chaos.Fault{Kind: chaos.Latency, Delay: 40 * time.Millisecond, Jitter: 20 * time.Millisecond},
					From: 100 * time.Millisecond, To: 500 * time.Millisecond},
				{Fault: chaos.Fault{Kind: chaos.Stall},
					From: 500 * time.Millisecond, To: 700 * time.Millisecond},
			}},
		},
		AppChaos: map[int]chaos.Schedule{1: appSched},
	})
	rep := runBounded(t, lab, workload.Config{
		Clients: 6, Mix: "bidding",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		RampUp: 30 * time.Millisecond, Measure: 800 * time.Millisecond,
		Seed: 19,
	})
	if rep.Interactions == 0 {
		t.Fatal("no interactions completed under the scripted schedule")
	}
	if rep.Errors > rep.Interactions/3 {
		t.Fatalf("error rate too high: %d errors / %d completions", rep.Errors, rep.Interactions)
	}
	// The schedule fired for real: replica 1's link saw delayed or stalled
	// traffic, and the flapping app link reset connections.
	if s := lab.DBProxy(1).Stats(); s.DelayedIO == 0 && s.Stalled == 0 {
		t.Errorf("db schedule never fired: %+v", s)
	}
	if s := lab.AppProxy(1).Stats(); s.Resets == 0 {
		t.Errorf("app flap schedule never fired: %+v", s)
	}
	if err := lab.RejoinAll(); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	assertReplicasIdentical(t, lab, 2, auctionChaosTables)
}

// TestChaosDegradedReadOnly: with StrictWrites, partitioning a replica
// makes the write policy unsatisfiable — the cluster must degrade to
// explicit read-only (typed fast-fail on writes) while a read-only
// workload keeps serving off the survivor, then recover fully on heal +
// rejoin. The auction browsing mix carries zero write-interaction weight,
// so it is the degraded-path probe.
func TestChaosDegradedReadOnly(t *testing.T) {
	t.Parallel()
	lab := chaosLab(t, Config{
		Arch:           perfsim.ArchServlet,
		DBStrictWrites: true,
		DBTimeouts:     pool.Timeouts{Op: 200 * time.Millisecond},
	})
	cl := lab.Cluster()
	if _, err := cl.ExecCached("UPDATE items SET max_bid = 11 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	lab.PartitionReplica(1)
	if _, err := cl.ExecCached("UPDATE items SET max_bid = 12 WHERE id = 1"); err == nil {
		t.Fatal("strict write through a partitioned replica must fail")
	}
	if !cl.Degraded() {
		t.Fatal("strict write failure must latch degraded mode")
	}
	start := time.Now()
	_, err := cl.ExecCached("UPDATE items SET max_bid = 13 WHERE id = 1")
	if !errors.Is(err, cluster.ErrDegraded) {
		t.Fatalf("degraded write = %v, want cluster.ErrDegraded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("degraded write took %v, want a fast fail before any broadcast", d)
	}

	// Reads keep serving end to end while writes are refused.
	rep := runBounded(t, lab, workload.Config{
		Clients: 4, Mix: "browsing",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		Measure: 300 * time.Millisecond, Seed: 23,
	})
	if rep.Interactions == 0 {
		t.Fatal("read-only workload served nothing in degraded mode")
	}
	if rep.Errors > rep.Interactions/10 {
		t.Fatalf("degraded reads erroring: %d errors / %d completions", rep.Errors, rep.Interactions)
	}

	lab.HealReplica(1)
	if err := lab.RejoinAll(); err != nil {
		t.Fatalf("rejoin after heal: %v", err)
	}
	if cl.Degraded() {
		t.Fatal("full rejoin must exit degraded mode")
	}
	if _, err := cl.ExecCached("UPDATE items SET max_bid = ? WHERE id = 1", sqldb.Float(14)); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	assertReplicasIdentical(t, lab, 2, auctionChaosTables)
}
