package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
	"repro/internal/workload"
)

func startLab(t testing.TB, a perfsim.Arch, b perfsim.Benchmark) *Lab {
	t.Helper()
	lab, err := Start(Config{Arch: a, Benchmark: b, Seed: 5})
	if err != nil {
		t.Fatalf("Start(%v,%v): %v", a, b, err)
	}
	t.Cleanup(lab.Close)
	return lab
}

// TestAllConfigurationsServeBothBenchmarks is the end-to-end functional
// matrix: 6 architectures x 2 benchmarks over real loopback TCP.
func TestAllConfigurationsServeBothBenchmarks(t *testing.T) {
	for _, b := range []perfsim.Benchmark{perfsim.Bookstore, perfsim.Auction} {
		for _, a := range perfsim.Archs() {
			a, b := a, b
			t.Run(fmt.Sprintf("%v/%v", b, a), func(t *testing.T) {
				t.Parallel()
				lab := startLab(t, a, b)
				c := httpclient.New(lab.WebAddr(), 10*time.Second)
				defer c.Close()
				paths := []string{"/tpcw/home?c_id=1", "/tpcw/productdetail?i_id=2", "/tpcw/buyconfirm?c_id=3"}
				if b == perfsim.Auction {
					paths = []string{"/rubis/home", "/rubis/viewitem?item=2", "/rubis/storebid?item=2&user=3&bid=999"}
				}
				for _, p := range paths {
					resp, err := c.Get(p)
					if err != nil {
						t.Fatalf("GET %s: %v", p, err)
					}
					if resp.Status != 200 {
						t.Fatalf("GET %s -> %d: %s", p, resp.Status, resp.Body)
					}
				}
				// Images served by the web tier directly.
				img, err := c.Get("/img/item_1.gif")
				if err != nil || img.Status != 200 || len(img.Body) == 0 {
					t.Fatalf("image: %v %d", err, img.Status)
				}
			})
		}
	}
}

// TestWorkloadDrivesLab runs the emulator briefly against two archs and
// checks the measurement plumbing.
func TestWorkloadDrivesLab(t *testing.T) {
	for _, a := range []perfsim.Arch{perfsim.ArchPHP, perfsim.ArchServletSync} {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			lab := startLab(t, a, perfsim.Auction)
			rep, err := lab.Run(workload.Config{
				Clients:     4,
				Mix:         "bidding",
				ThinkMean:   5 * time.Millisecond,
				SessionMean: 500 * time.Millisecond,
				RampUp:      100 * time.Millisecond,
				Measure:     700 * time.Millisecond,
				RampDown:    50 * time.Millisecond,
				FetchImages: true,
				Seed:        3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed")
			}
			if rep.Errors > rep.Interactions/10 {
				t.Fatalf("error rate too high: %d errors / %d ok", rep.Errors, rep.Interactions)
			}
			if rep.ImageFetches == 0 {
				t.Fatal("emulator fetched no embedded images")
			}
			if rep.Latency.Count() == 0 || rep.Latency.Mean() <= 0 {
				t.Fatal("latency not recorded")
			}
			if rep.ThroughputIPM <= 0 {
				t.Fatal("throughput not computed")
			}
		})
	}
}

// TestEJBIssuesMoreQueries verifies the architectural signature the paper
// measures: for the same workload, the EJB configuration issues many more
// database statements than the hand-written SQL app.
func TestEJBIssuesMoreQueries(t *testing.T) {
	lab := startLab(t, perfsim.ArchEJB, perfsim.Auction)
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	before := lab.EJBQueryCount()
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := c.Get(fmt.Sprintf("/rubis/viewitem?item=%d", 1+i%5)); err != nil {
			t.Fatal(err)
		}
	}
	perInteraction := float64(lab.EJBQueryCount()-before) / n
	if perInteraction < 2 {
		t.Fatalf("EJB issued %.1f statements/interaction; CMP should need several", perInteraction)
	}
}

// TestStateConsistencyAcrossArchitectures runs the same deterministic write
// against the SQL app and the EJB app and compares the visible result — the
// functional-equivalence check from DESIGN.md's test plan.
func TestStateConsistencyAcrossArchitectures(t *testing.T) {
	see := func(a perfsim.Arch) string {
		lab := startLab(t, a, perfsim.Auction)
		c := httpclient.New(lab.WebAddr(), 10*time.Second)
		defer c.Close()
		if _, err := c.Get("/rubis/storebid?item=4&user=2&bid=7777"); err != nil {
			t.Fatal(err)
		}
		resp, err := c.Get("/rubis/viewitem?item=4")
		if err != nil {
			t.Fatal(err)
		}
		body := string(resp.Body)
		i := strings.Index(body, "$7777.00")
		if i < 0 {
			t.Fatalf("%v: bid not visible: %s", a, body)
		}
		return "$7777.00"
	}
	if see(perfsim.ArchPHP) != see(perfsim.ArchEJB) {
		t.Fatal("architectures diverged")
	}
}

// TestBookstoreSearchStaticInteraction asserts §3.1's "one interaction
// involves only static content": searchrequest works even though it touches
// no tables.
func TestBookstoreSearchStaticInteraction(t *testing.T) {
	lab := startLab(t, perfsim.ArchServlet, perfsim.Bookstore)
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	resp, err := c.Get("/tpcw/searchrequest")
	if err != nil || resp.Status != 200 {
		t.Fatalf("searchrequest: %v %d", err, resp.Status)
	}
}
