// Package core is the experiment laboratory: it assembles any of the
// paper's six middleware configurations as a real multi-tier system over
// loopback TCP — web server (internal/httpd), dynamic-content generator
// (in-process module, servlet container over AJP, or servlet+EJB over
// AJP+RMI), and the SQL database (internal/sqldb over its wire protocol) —
// populates a benchmark database, and drives it with the client emulator.
//
// This is the functional half of the reproduction: it demonstrates that
// every architecture serves both benchmarks correctly and exposes their
// structural differences (dispatch path, query counts, locking discipline).
// The performance half — regenerating the paper's figures, which requires
// the four-machine cluster — lives in internal/perfsim; see DESIGN.md.
package core

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/ajp"
	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/ejb"
	"repro/internal/httpd"
	"repro/internal/perfsim"
	"repro/internal/rmi"
	"repro/internal/scriptmod"
	"repro/internal/servlet"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config selects what to assemble.
type Config struct {
	// Arch is one of the six configurations (perfsim.Arch names them).
	Arch perfsim.Arch
	// Benchmark selects the application.
	Benchmark perfsim.Benchmark
	// BookScale / AuctionScale size the population; zero values use the
	// packages' TinyScale, keeping Start fast.
	BookScale    bookstore.Scale
	AuctionScale auction.Scale
	// DBPoolSize bounds engine->database connections (default 12, per
	// replica).
	DBPoolSize int
	// DBReplicas runs the database tier as that many identically seeded
	// backends behind the read-one-write-all cluster client (default 1 —
	// the paper's single-database testbed).
	DBReplicas int
	// ImageBytes sizes each of the 64 synthetic item images (default 2048).
	ImageBytes int
	// Seed drives data generation.
	Seed int64
	// Logger receives tier logs; nil discards them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.BookScale == (bookstore.Scale{}) {
		c.BookScale = bookstore.TinyScale()
	}
	if c.AuctionScale == (auction.Scale{}) {
		c.AuctionScale = auction.TinyScale()
	}
	if c.DBPoolSize <= 0 {
		c.DBPoolSize = 12
	}
	if c.DBReplicas <= 0 {
		c.DBReplicas = 1
	}
	if c.ImageBytes <= 0 {
		c.ImageBytes = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Lab is a running configuration.
type Lab struct {
	cfg     Config
	dbs     []*sqldb.DB    // one per replica, identically seeded
	dbSrvs  []*wire.Server // closed (but kept, for final counters) once stopped
	dbAddrs []string
	web     *httpd.Server
	webAddr string

	module    *scriptmod.Module
	container *servlet.Container
	connector *ajp.Connector
	ejbC      *ejb.Container
	rmiClient *rmi.Client

	profile *workload.Profile
}

// Start assembles and boots the configuration.
func Start(cfg Config) (lab *Lab, err error) {
	cfg = cfg.withDefaults()
	l := &Lab{cfg: cfg}
	defer func() {
		if err != nil {
			l.Close()
		}
	}()

	// --- database tier: N identically seeded replicas (the startup
	// replica-sync path of a single-process lab — deterministic population
	// from one seed is equivalent to copying, and much faster) ---
	for i := 0; i < cfg.DBReplicas; i++ {
		db := sqldb.New()
		sess := db.NewSession()
		switch cfg.Benchmark {
		case perfsim.Bookstore:
			if err := bookstore.CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
				return nil, err
			}
			if err := bookstore.Populate(sqldb.SessionExecer{S: sess}, cfg.BookScale, cfg.Seed); err != nil {
				return nil, err
			}
			l.profile = bookstore.Profile(cfg.BookScale)
		case perfsim.Auction:
			if err := auction.CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
				return nil, err
			}
			if err := auction.Populate(sqldb.SessionExecer{S: sess}, cfg.AuctionScale, cfg.Seed); err != nil {
				return nil, err
			}
			l.profile = auction.Profile(cfg.AuctionScale)
		default:
			return nil, fmt.Errorf("core: unknown benchmark %v", cfg.Benchmark)
		}
		sess.Close()
		srv := wire.NewServer(db, cfg.Logger)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.dbs = append(l.dbs, db)
		l.dbSrvs = append(l.dbSrvs, srv)
		l.dbAddrs = append(l.dbAddrs, addr.String())
	}

	// --- application tier ---
	appHandler, err := l.startAppTier(strings.Join(l.dbAddrs, ","))
	if err != nil {
		return nil, err
	}

	// --- web tier ---
	mux := httpd.NewMux()
	mux.Handle(l.basePath(), appHandler)
	mux.Handle("/img/", staticImages(cfg.ImageBytes))
	mux.HandleFunc("/status", func(*httpd.Request) (*httpd.Response, error) {
		resp := httpd.NewResponse()
		resp.Header.Set("Content-Type", "application/json")
		resp.Body = l.Telemetry().JSON()
		return resp, nil
	})
	l.web = httpd.NewServer(mux, cfg.Logger)
	webAddr, err := l.web.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.webAddr = webAddr.String()
	return l, nil
}

func (l *Lab) basePath() string {
	if l.cfg.Benchmark == perfsim.Bookstore {
		return bookstore.BasePath
	}
	return auction.BasePath
}

// startAppTier builds the dynamic-content generator for the configured
// architecture and returns the handler the web server dispatches to.
func (l *Lab) startAppTier(dbAddr string) (httpd.Handler, error) {
	cfg := l.cfg
	sync := cfg.Arch.EngineSync()
	newAppContainer := func() *servlet.Container {
		c := servlet.NewContainer(servlet.Config{DBAddr: dbAddr, DBPoolSize: cfg.DBPoolSize})
		switch cfg.Benchmark {
		case perfsim.Bookstore:
			bookstore.New(cfg.BookScale, bookstore.Config{Sync: sync}).Register(c)
		default:
			auction.New(cfg.AuctionScale, auction.Config{Sync: sync}).Register(c)
		}
		return c
	}

	switch cfg.Arch {
	case perfsim.ArchPHP:
		// In-process script module: generator in the web server's address
		// space, no IPC (§2.1).
		m, err := scriptmod.Mount(newAppContainer())
		if err != nil {
			return nil, err
		}
		l.module = m
		return m, nil

	case perfsim.ArchServlet, perfsim.ArchServletSync,
		perfsim.ArchServletDedicated, perfsim.ArchServletDedicatedSync:
		// Servlet container in its own process boundary, reached over AJP.
		// Co-located and dedicated differ only in machine placement, which
		// a single host cannot express; both run the identical software
		// path here (the placement effect is perfsim's domain).
		c := newAppContainer()
		addr, err := c.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.container = c
		l.connector = ajp.NewConnector(addr.String(), cfg.DBPoolSize)
		return l.connector, nil

	case perfsim.ArchEJB:
		// Four tiers: web -> (AJP) presentation servlets -> (RMI) session
		// façade + entity beans -> database.
		ec, err := ejb.NewContainer(ejb.Config{DBAddr: dbAddr, DBPoolSize: cfg.DBPoolSize})
		if err != nil {
			return nil, err
		}
		l.ejbC = ec
		var pres interface{ Register(*servlet.Container) }
		switch cfg.Benchmark {
		case perfsim.Bookstore:
			if err := bookstore.RegisterEntities(ec); err != nil {
				return nil, err
			}
			if err := ec.RegisterFacade(bookstore.FacadeName, &bookstore.Facade{C: ec}); err != nil {
				return nil, err
			}
		default:
			if err := auction.RegisterEntities(ec); err != nil {
				return nil, err
			}
			if err := ec.RegisterFacade(auction.FacadeName, &auction.Facade{C: ec}); err != nil {
				return nil, err
			}
		}
		rmiAddr, err := ec.Serve("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.rmiClient = rmi.NewClient(rmiAddr.String(), cfg.DBPoolSize)
		switch cfg.Benchmark {
		case perfsim.Bookstore:
			pres = bookstore.NewPresentationApp(l.rmiClient, cfg.BookScale)
		default:
			pres = auction.NewPresentationApp(l.rmiClient, cfg.AuctionScale)
		}
		pc := servlet.NewContainer(servlet.Config{})
		pres.Register(pc)
		addr, err := pc.Start("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.container = pc
		l.connector = ajp.NewConnector(addr.String(), cfg.DBPoolSize)
		return l.connector, nil

	default:
		return nil, fmt.Errorf("core: unknown architecture %v", cfg.Arch)
	}
}

// staticImages builds the synthetic image set: 64 shared item images plus
// the site chrome.
func staticImages(size int) *httpd.StaticSet {
	set := httpd.NewStaticSet()
	for i := 0; i < 64; i++ {
		set.Add(fmt.Sprintf("/img/item_%d.gif", i), datagen.Image(i, size), "image/gif")
	}
	set.Add("/img/logo.gif", datagen.Image(1000, size/2), "image/gif")
	set.Add("/img/banner.gif", datagen.Image(1001, size), "image/gif")
	return set
}

// WebAddr returns the web server's host:port.
func (l *Lab) WebAddr() string { return l.webAddr }

// Profile returns the benchmark's workload profile.
func (l *Lab) Profile() *workload.Profile { return l.profile }

// DB exposes the (first) database for assertions.
func (l *Lab) DB() *sqldb.DB { return l.dbs[0] }

// ReplicaDB exposes replica i's database for assertions.
func (l *Lab) ReplicaDB(i int) *sqldb.DB { return l.dbs[i] }

// ReplicaAddrs returns the database tier's wire addresses.
func (l *Lab) ReplicaAddrs() []string { return l.dbAddrs }

// ReplicaQueryCounts returns each replica server's served-statement count —
// the observable behind "reads landed on both replicas". Stopped replicas
// report their final count.
func (l *Lab) ReplicaQueryCounts() []int64 {
	counts := make([]int64, len(l.dbSrvs))
	for i, srv := range l.dbSrvs {
		counts[i] = srv.QueryCount()
	}
	return counts
}

// StopReplica kills one database backend — the failover experiment's
// fault injector. The cluster client ejects it on the next statement it
// routes there. The server handle is kept so its final counters stay
// readable (and telemetry deltas never go negative).
func (l *Lab) StopReplica(i int) {
	if i < 0 || i >= len(l.dbSrvs) {
		return
	}
	l.dbSrvs[i].Close() // idempotent
}

// RestartReplica brings a stopped database backend's server back up on its
// original address (its data survives in-process). The cluster client still
// considers it ejected until Rejoin replays the writes it missed.
func (l *Lab) RestartReplica(i int) error {
	if i < 0 || i >= len(l.dbSrvs) {
		return fmt.Errorf("core: no replica %d", i)
	}
	srv := wire.NewServer(l.dbs[i], l.cfg.Logger)
	if _, err := srv.Listen(l.dbAddrs[i]); err != nil {
		return err
	}
	l.dbSrvs[i] = srv
	return nil
}

// Cluster returns the app tier's replication-aware database client (nil
// for configurations without one).
func (l *Lab) Cluster() *cluster.Client {
	container := l.container
	if l.module != nil {
		container = l.module.Container()
	}
	if container != nil && container.Context().DB != nil {
		return container.Context().DB
	}
	if l.ejbC != nil {
		return l.ejbC.DB()
	}
	return nil
}

// EJBQueryCount returns the EJB container's statement count (0 for non-EJB
// configurations) — the observable behind §6.1's packet analysis.
func (l *Lab) EJBQueryCount() int64 {
	if l.ejbC == nil {
		return 0
	}
	return l.ejbC.QueryCount()
}

// Telemetry snapshots every tier's request/query counters and transport
// pool saturation — the observable behind the paper's which-tier-saturates
// analysis. Counters accumulate from boot; diff two snapshots with
// telemetry.Snapshot.Delta to window them.
func (l *Lab) Telemetry() *telemetry.Snapshot {
	s := &telemetry.Snapshot{
		Arch:      l.cfg.Arch.String(),
		Benchmark: l.cfg.Benchmark.String(),
	}

	// Web tier: requests served, plus the AJP connector pool to the
	// engine below it (absent in-process).
	web := telemetry.Tier{Name: "web"}
	if l.web != nil {
		web.Requests = l.web.RequestCount()
		web.Bytes = l.web.ResponseBytes()
	}
	if l.connector != nil {
		ps := l.connector.Stats()
		web.Pool = &ps
		web.Downstream = "servlet"
	}
	s.Tiers = append(s.Tiers, web)

	// Engine tier: the servlet container (standalone, in-process module,
	// or EJB presentation layer). Its pool is whatever it calls into —
	// the database pool, or the RMI client pool in the EJB configuration.
	container := l.container
	if l.module != nil {
		container = l.module.Container()
	}
	if container != nil {
		cs := container.Stats()
		t := telemetry.Tier{Name: "servlet", Requests: cs.Requests, Pool: cs.DB}
		if t.Pool != nil {
			t.Downstream = "db"
		}
		if l.rmiClient != nil {
			ps := l.rmiClient.Stats()
			t.Pool = &ps
			t.Downstream = "ejb"
		}
		s.Tiers = append(s.Tiers, t)
	}

	if l.ejbC != nil {
		es := l.ejbC.Stats()
		db := es.DB
		s.Tiers = append(s.Tiers, telemetry.Tier{
			Name: "ejb", Queries: es.Queries,
			Loads: es.Loads, Stores: es.Stores,
			Commits: es.TxCommits, Aborts: es.TxAborts,
			Pool: &db, Downstream: "db",
		})
	}

	if len(l.dbSrvs) > 0 {
		// Aggregate the replica servers into the db tier, as the paper's
		// single "database machine" column.
		t := telemetry.Tier{Name: "db"}
		for _, srv := range l.dbSrvs {
			ds := srv.Stats()
			t.Queries += ds.Queries
			t.PreparedExecs += ds.PreparedExecs
			t.TextExecs += ds.TextExecs
			t.PlanHits += ds.PlanCache.Hits
			t.PlanMisses += ds.PlanCache.Misses
			t.Commits += ds.Txns.Commits
			t.Aborts += ds.Txns.Rollbacks
			t.DeadlockTimeouts += ds.Txns.DeadlockTimeouts
			t.TxnLockWaitNanos += ds.Txns.LockWaitNanos
		}
		s.Tiers = append(s.Tiers, t)
	}

	// Per-replica breakdown: the cluster client's routing view, joined
	// with each replica server's own statement counter.
	if cl := l.Cluster(); cl != nil && cl.Replicas() > 1 {
		s.Replicas = cl.ReplicaStats()
		for i := range s.Replicas {
			id := s.Replicas[i].ID
			if id < len(l.dbSrvs) {
				s.Replicas[i].Queries = l.dbSrvs[id].QueryCount()
			}
		}
	}
	return s
}

// Run drives the lab with the client emulator and attaches the per-tier
// saturation delta over the measurement window (ramp phases excluded,
// matching the report's other figures) to the report.
func (l *Lab) Run(wcfg workload.Config) (*workload.Report, error) {
	var before, after *telemetry.Snapshot
	prevStart, prevEnd := wcfg.OnMeasureStart, wcfg.OnMeasureEnd
	wcfg.OnMeasureStart = func() {
		before = l.Telemetry()
		if prevStart != nil {
			prevStart()
		}
	}
	wcfg.OnMeasureEnd = func() {
		after = l.Telemetry()
		if prevEnd != nil {
			prevEnd()
		}
	}
	rep, err := workload.Run(l.webAddr, l.profile, wcfg)
	if err != nil {
		return rep, err
	}
	if before != nil && after != nil {
		rep.Tiers = after.Delta(before)
	}
	return rep, nil
}

// Close tears the tiers down in dependency order.
func (l *Lab) Close() {
	if l.web != nil {
		l.web.Close()
	}
	if l.connector != nil {
		l.connector.Close()
	}
	if l.module != nil {
		l.module.Close()
	}
	if l.container != nil {
		l.container.Close()
	}
	if l.rmiClient != nil {
		l.rmiClient.Close()
	}
	if l.ejbC != nil {
		l.ejbC.Close()
	}
	for _, srv := range l.dbSrvs {
		srv.Close()
	}
}
