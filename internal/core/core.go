// Package core is the experiment laboratory: it assembles any of the
// paper's six middleware configurations as a real multi-tier system over
// loopback TCP — web server (internal/httpd), dynamic-content generator
// (in-process module, servlet container over AJP, or servlet+EJB over
// AJP+RMI), and the SQL database (internal/sqldb over its wire protocol) —
// populates a benchmark database, and drives it with the client emulator.
//
// This is the functional half of the reproduction: it demonstrates that
// every architecture serves both benchmarks correctly and exposes their
// structural differences (dispatch path, query counts, locking discipline).
// The performance half — regenerating the paper's figures, which requires
// the four-machine cluster — lives in internal/perfsim; see DESIGN.md.
package core

import (
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ajp"
	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/ejb"
	"repro/internal/httpd"
	"repro/internal/lb"
	"repro/internal/perfsim"
	"repro/internal/pool"
	"repro/internal/rmi"
	"repro/internal/scriptmod"
	"repro/internal/servlet"
	"repro/internal/sqldb"
	"repro/internal/sqldb/walfault"
	"repro/internal/sqldb/wire"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config selects what to assemble.
type Config struct {
	// Arch is one of the six configurations (perfsim.Arch names them).
	Arch perfsim.Arch
	// Benchmark selects the application.
	Benchmark perfsim.Benchmark
	// BookScale / AuctionScale size the population; zero values use the
	// packages' TinyScale, keeping Start fast.
	BookScale    bookstore.Scale
	AuctionScale auction.Scale
	// DBPoolSize bounds engine->database connections (default 12, per
	// replica).
	DBPoolSize int
	// AppPoolSize bounds the web→app connection pools (the AJP connector
	// per servlet backend, and the presentation→EJB RMI client pool in
	// the EJB architecture). Default 0 follows DBPoolSize, the historical
	// wiring; set it to size the tiers' pools independently — e.g. a
	// database-bottleneck experiment wants a tiny DB pool behind a wide
	// app tier.
	AppPoolSize int
	// DBReplicas runs the database tier as that many identically seeded
	// backends behind the read-one-write-all cluster client (default 1 —
	// the paper's single-database testbed). With DBShards > 1 it is the
	// replica count per shard.
	DBReplicas int
	// DBShards horizontally partitions the database tier into that many
	// shard groups of DBReplicas backends each (default 1 — unsharded).
	// The benchmark's write-heavy tables partition by the application's
	// ShardBy map (bookstore.ShardBy / auction.ShardBy); everything else
	// replicates to every shard as global tables. The population is
	// routed through a sharded cluster client so each row lives only on
	// its owning shard.
	DBShards int
	// AppReplicas runs the application tier as that many container
	// backends behind the front-end load balancer (internal/lb): N servlet
	// containers, or N EJB container + presentation pairs in the EJB
	// architecture, with session affinity and write-through session-state
	// replication between them. Default 1 — the paper's single-container
	// testbed, dispatched without a balancer. The in-process scripting
	// module (ArchPHP) ignores it: mod_php is pinned to the web server's
	// address space by construction (§2.1).
	AppReplicas int
	// ImageBytes sizes each of the 64 synthetic item images (default 2048).
	ImageBytes int
	// Seed drives data generation.
	Seed int64
	// DBStrictWrites selects the cluster's strict write policy for the
	// application tier's database clients. With it, losing a replica drops
	// the cluster into explicit read-only degradation (cluster.ErrDegraded
	// on writes) until every replica rejoins.
	DBStrictWrites bool
	// DBTimeouts bounds the app→db wire transport: dial, per-statement
	// round trip, and pool-wait deadlines (pool.Timeouts semantics — zero
	// fields take the transport defaults, negative disables).
	DBTimeouts pool.Timeouts
	// DBSlowThreshold ejects a database replica whose broadcast acks lag
	// the fastest replica by more than this (0: disabled).
	DBSlowThreshold time.Duration
	// DBSyncTimeout bounds a rejoining replica's data copy.
	DBSyncTimeout time.Duration
	// DBQueryCache bounds each app-tier cluster client's query-result
	// cache in entries (0, the default, disables it — the paper's measured
	// system regenerates every result).
	DBQueryCache int
	// DBDataDir enables durability: each database backend gets a
	// write-ahead log under DBDataDir/r<i>. A backend whose directory
	// already holds log or checkpoint state recovers from it (replaying
	// past the last checkpoint) instead of repopulating from the seed.
	// Empty (the default) runs the backends purely in memory.
	DBDataDir string
	// DBWALFlushInterval is the group-commit window: commits wait for the
	// next flusher tick, sharing one fsync (0: the sqldb default, 1ms).
	DBWALFlushInterval time.Duration
	// DBCheckpointEvery triggers an automatic checkpoint-and-rotate after
	// that many log bytes (0: the sqldb default, 8 MiB; negative
	// disables automatic checkpoints).
	DBCheckpointEvery int64
	// DBWALFaults arms crash-point hooks on individual backends' logs,
	// keyed by backend index (the kill-and-recover test harness; see
	// sqldb/walfault). Only meaningful with DBDataDir.
	DBWALFaults map[int]*walfault.Hook
	// PageCache bounds the front-end HTTP page cache in entries (0, the
	// default, disables it). When enabled it wraps the application handler
	// — balancer, single connector, or in-process scripting module alike —
	// and serves anonymous browse GETs without touching the app tier.
	PageCache int
	// PageCacheTTL is the page cache's freshness backstop (default
	// lb.DefaultPageTTL).
	PageCacheTTL time.Duration
	// AppTimeouts bounds the web→app AJP transport and, in the EJB
	// architecture, the presentation→EJB RMI transport.
	AppTimeouts pool.Timeouts
	// Chaos interposes a fault-injecting TCP proxy (internal/chaos) on
	// every cross-tier link: one in front of each database replica (the
	// app tier dials the proxies) and one in front of each AJP backend.
	// Faults are scripted ahead of time with DBChaos/AppChaos or injected
	// at runtime through the Lab's SlowReplica / PartitionReplica /
	// StallAppBackend hooks.
	Chaos bool
	// DBChaos / AppChaos script per-backend fault schedules, keyed by
	// database replica / app backend index. Indexes absent from a map get
	// a transparent proxy, still controllable through the hooks.
	DBChaos  map[int]chaos.Schedule
	AppChaos map[int]chaos.Schedule
	// Logger receives tier logs; nil discards them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.BookScale == (bookstore.Scale{}) {
		c.BookScale = bookstore.TinyScale()
	}
	if c.AuctionScale == (auction.Scale{}) {
		c.AuctionScale = auction.TinyScale()
	}
	if c.DBPoolSize <= 0 {
		c.DBPoolSize = 12
	}
	if c.AppPoolSize <= 0 {
		c.AppPoolSize = c.DBPoolSize
	}
	if c.DBReplicas <= 0 {
		c.DBReplicas = 1
	}
	if c.DBShards <= 0 {
		c.DBShards = 1
	}
	if c.AppReplicas <= 0 {
		c.AppReplicas = 1
	}
	if c.ImageBytes <= 0 {
		c.ImageBytes = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Lab is a running configuration.
type Lab struct {
	cfg     Config
	dbs     []*sqldb.DB    // one per replica, identically seeded
	dbSrvs  []*wire.Server // closed (but kept, for final counters) once stopped
	dbAddrs []string
	walDirs []string // per-backend WAL directories; empty without DBDataDir
	web     *httpd.Server
	webAddr string

	// Chaos proxies (Config.Chaos): dbProxies[i] fronts database replica
	// i — the app tier dials it instead of dbAddrs[i] — and appProxies[i]
	// fronts app backend i's AJP listener.
	dbProxies  []*chaos.Proxy
	appProxies []*chaos.Proxy

	module *scriptmod.Module
	// The application tier: index i across these slices is one backend
	// (route "a<i>"). One entry and no balancer in the paper's single
	// container setups; N entries behind the balancer with AppReplicas.
	containers []*servlet.Container
	connectors []*ajp.Connector
	ejbCs      []*ejb.Container
	rmiClients []*rmi.Client
	balancer   *lb.Balancer
	pageCache  *lb.PageCache
	sessions   *servlet.MemStore

	profile *workload.Profile
}

// Start assembles and boots the configuration.
func Start(cfg Config) (lab *Lab, err error) {
	cfg = cfg.withDefaults()
	l := &Lab{cfg: cfg}
	defer func() {
		if err != nil {
			l.Close()
		}
	}()

	// --- database tier: DBShards × DBReplicas backends. Unsharded, every
	// backend is populated in-process from the seed (the startup
	// replica-sync path of a single-process lab — deterministic population
	// from one seed is equivalent to copying, and much faster). Sharded,
	// the backends start empty and schema + population are routed through
	// a sharded cluster client below, so each row lands only on its
	// owning shard (and global tables on all of them). ---
	switch cfg.Benchmark {
	case perfsim.Bookstore:
		l.profile = bookstore.Profile(cfg.BookScale)
	case perfsim.Auction:
		l.profile = auction.Profile(cfg.AuctionScale)
	default:
		return nil, fmt.Errorf("core: unknown benchmark %v", cfg.Benchmark)
	}
	for i := 0; i < cfg.DBShards*cfg.DBReplicas; i++ {
		db := sqldb.New()
		walDir := ""
		if cfg.DBDataDir != "" {
			walDir = filepath.Join(cfg.DBDataDir, fmt.Sprintf("r%d", i))
		}
		// A backend whose data directory already holds durable state
		// recovers from it (checkpoint load + log replay) instead of
		// repopulating; a fresh backend populates in memory first and
		// attaches after, so the seed data lands in the initial checkpoint
		// rather than being logged statement by statement.
		if walDir != "" && sqldb.WALDirHasState(walDir) {
			if _, err := db.AttachWAL(l.walOpts(i, walDir)); err != nil {
				return nil, fmt.Errorf("core: recover replica %d: %w", i, err)
			}
		} else if cfg.DBShards == 1 {
			sess := db.NewSession()
			var err error
			switch cfg.Benchmark {
			case perfsim.Bookstore:
				if err = bookstore.CreateSchema(sqldb.SessionExecer{S: sess}); err == nil {
					err = bookstore.Populate(sqldb.SessionExecer{S: sess}, cfg.BookScale, cfg.Seed)
				}
			default:
				if err = auction.CreateSchema(sqldb.SessionExecer{S: sess}); err == nil {
					err = auction.Populate(sqldb.SessionExecer{S: sess}, cfg.AuctionScale, cfg.Seed)
				}
			}
			sess.Close()
			if err != nil {
				return nil, err
			}
			if walDir != "" {
				if _, err := db.AttachWAL(l.walOpts(i, walDir)); err != nil {
					return nil, fmt.Errorf("core: attach wal replica %d: %w", i, err)
				}
			}
		}
		srv := wire.NewServer(db, cfg.Logger)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.dbs = append(l.dbs, db)
		l.dbSrvs = append(l.dbSrvs, srv)
		l.dbAddrs = append(l.dbAddrs, addr.String())
		l.walDirs = append(l.walDirs, walDir)
	}
	if cfg.DBShards > 1 {
		recovered := 0
		for _, db := range l.dbs {
			if db.WALStats().Attached {
				recovered++
			}
		}
		switch recovered {
		case 0:
			// Sharded backends start empty and are seeded through the
			// sharded client; the WAL attaches afterwards so the routed
			// population lands in each shard's initial checkpoint.
			if err := l.seedShards(); err != nil {
				return nil, err
			}
			for i, db := range l.dbs {
				if l.walDirs[i] == "" {
					continue
				}
				if _, err := db.AttachWAL(l.walOpts(i, l.walDirs[i])); err != nil {
					return nil, fmt.Errorf("core: attach wal replica %d: %w", i, err)
				}
			}
		case len(l.dbs):
			// Every backend recovered its shard's data; nothing to seed.
		default:
			return nil, fmt.Errorf("core: %d of %d sharded backends recovered durable state; partial recovery is not supported", recovered, len(l.dbs))
		}
	}

	// --- chaos interposition: the app tier dials fault-injecting proxies
	// instead of the replica servers; the real listen addresses stay in
	// dbAddrs so RestartReplica re-listens where the proxy forwards ---
	dialAddrs := l.dbAddrs
	if cfg.Chaos {
		dialAddrs = make([]string, len(l.dbAddrs))
		for i, addr := range l.dbAddrs {
			px, err := chaos.Listen(fmt.Sprintf("db%d", i), addr, cfg.DBChaos[i])
			if err != nil {
				return nil, err
			}
			l.dbProxies = append(l.dbProxies, px)
			dialAddrs[i] = px.Addr()
		}
	}

	// --- application tier ---
	appHandler, err := l.startAppTier(l.shardDSN(dialAddrs))
	if err != nil {
		return nil, err
	}

	// --- web tier ---
	mux := httpd.NewMux()
	// The page cache mounts between the web server and whatever generates
	// dynamic content — balancer, single connector, or in-process module —
	// so every architecture gets the same edge. The content epoch is read
	// directly off an app-tier cluster client when one exists (all clients
	// share the per-DSN version registry, so any one of them sees every
	// committed write); the X-Content-Epoch response header covers the
	// cross-process deployments (cmd/webserver).
	if cfg.PageCache > 0 {
		pcfg := lb.PageCacheConfig{MaxEntries: cfg.PageCache, TTL: cfg.PageCacheTTL}
		if clients := l.clusterClients(); len(clients) > 0 {
			pcfg.Epoch = clients[0].ContentEpoch
		}
		l.pageCache = lb.NewPageCache(appHandler, pcfg)
		appHandler = l.pageCache
	}
	mux.Handle(l.basePath(), appHandler)
	mux.Handle("/img/", staticImages(cfg.ImageBytes))
	mux.HandleFunc("/status", func(*httpd.Request) (*httpd.Response, error) {
		resp := httpd.NewResponse()
		resp.Header.Set("Content-Type", "application/json")
		resp.Body = l.Telemetry().JSON()
		return resp, nil
	})
	l.web = httpd.NewServer(mux, cfg.Logger)
	webAddr, err := l.web.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.webAddr = webAddr.String()
	return l, nil
}

func (l *Lab) basePath() string {
	if l.cfg.Benchmark == perfsim.Bookstore {
		return bookstore.BasePath
	}
	return auction.BasePath
}

// shardDSN groups the given backend addresses into the cluster DSN:
// DBShards semicolon-separated shard groups of DBReplicas comma-separated
// replicas each, in backend order. Unsharded it degenerates to the plain
// replica list.
func (l *Lab) shardDSN(addrs []string) string {
	r := l.cfg.DBReplicas
	groups := make([]string, 0, l.cfg.DBShards)
	for i := 0; i < len(addrs); i += r {
		groups = append(groups, strings.Join(addrs[i:i+r], ","))
	}
	return strings.Join(groups, ";")
}

// shardBy returns the benchmark's table->column partitioning map, nil
// when the tier is unsharded.
func (l *Lab) shardBy() map[string]string {
	if l.cfg.DBShards <= 1 {
		return nil
	}
	if l.cfg.Benchmark == perfsim.Bookstore {
		return bookstore.ShardBy()
	}
	return auction.ShardBy()
}

// seedShards creates the schema and populates the benchmark data through
// a sharded cluster client over the wire, so every row lands only on its
// owning shard. It dials the replica servers directly, never the chaos
// proxies — an injected fault must not corrupt the population.
func (l *Lab) seedShards() error {
	cl := cluster.NewWithConfig(cluster.Config{
		DSN:      l.shardDSN(l.dbAddrs),
		ShardBy:  l.shardBy(),
		PoolSize: l.cfg.DBPoolSize,
	})
	defer cl.Close()
	if l.cfg.Benchmark == perfsim.Bookstore {
		if err := bookstore.CreateSchema(cl); err != nil {
			return err
		}
		return bookstore.Populate(cl, l.cfg.BookScale, l.cfg.Seed)
	}
	if err := auction.CreateSchema(cl); err != nil {
		return err
	}
	return auction.Populate(cl, l.cfg.AuctionScale, l.cfg.Seed)
}

// startAppTier builds the dynamic-content generator for the configured
// architecture and returns the handler the web server dispatches to: the
// in-process module, a single AJP connector, or — with AppReplicas > 1 —
// the front-end load balancer over N container backends sharing a
// write-through session store.
func (l *Lab) startAppTier(dbAddr string) (httpd.Handler, error) {
	cfg := l.cfg
	sync := cfg.Arch.EngineSync()
	replicas := cfg.AppReplicas
	// The in-process module has no replication axis (mod_php is pinned to
	// the web server, §2.1): no session store, no shared locks, no routes.
	if cfg.Arch == perfsim.ArchPHP {
		replicas = 1
	}
	// Replicated backends share the session store AND the engine-side lock
	// manager: the (sync) configurations' correctness rests on one
	// process-wide lock table — per-backend managers would let two
	// backends' read-modify-write interactions interleave.
	var sharedLocks *servlet.LockManager
	if replicas > 1 {
		l.sessions = servlet.NewMemStore()
		sharedLocks = servlet.NewLockManager()
	}
	// appRoute names backend i; with one backend there is no balancer and
	// session ids stay bare (the pre-replication behavior).
	appRoute := func(i int) string {
		if replicas == 1 {
			return ""
		}
		return fmt.Sprintf("a%d", i)
	}
	// store passes the shared MemStore as a properly nil interface when
	// the tier is unreplicated.
	store := func() servlet.SessionStore {
		if l.sessions == nil {
			return nil
		}
		return l.sessions
	}
	newAppContainer := func(route string) *servlet.Container {
		c := servlet.NewContainer(servlet.Config{
			DBAddr: dbAddr, DBShardBy: l.shardBy(), DBPoolSize: cfg.DBPoolSize,
			DBStrictWrites: cfg.DBStrictWrites, DBTimeouts: cfg.DBTimeouts,
			DBSlowThreshold: cfg.DBSlowThreshold, DBSyncTimeout: cfg.DBSyncTimeout,
			DBQueryCache: cfg.DBQueryCache,
			Route:        route, SessionStore: store(), Locks: sharedLocks,
		})
		switch cfg.Benchmark {
		case perfsim.Bookstore:
			bookstore.New(cfg.BookScale, bookstore.Config{Sync: sync}).Register(c)
		default:
			auction.New(cfg.AuctionScale, auction.Config{Sync: sync}).Register(c)
		}
		return c
	}
	// startBackend serves an initialized container over AJP and registers
	// its connector as the next backend.
	startBackend := func(c *servlet.Container) error {
		addr, err := c.Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		dial := addr.String()
		if cfg.Chaos {
			px, err := chaos.Listen(fmt.Sprintf("app%d", len(l.containers)), dial, cfg.AppChaos[len(l.containers)])
			if err != nil {
				return err
			}
			l.appProxies = append(l.appProxies, px)
			dial = px.Addr()
		}
		l.containers = append(l.containers, c)
		l.connectors = append(l.connectors, ajp.NewConnectorT(dial, cfg.AppPoolSize, cfg.AppTimeouts))
		return nil
	}

	switch cfg.Arch {
	case perfsim.ArchPHP:
		// In-process script module: generator in the web server's address
		// space, no IPC (§2.1) — and therefore no replication axis.
		m, err := scriptmod.Mount(newAppContainer(""))
		if err != nil {
			return nil, err
		}
		l.module = m
		return m, nil

	case perfsim.ArchServlet, perfsim.ArchServletSync,
		perfsim.ArchServletDedicated, perfsim.ArchServletDedicatedSync:
		// Servlet containers in their own process boundary, reached over
		// AJP. Co-located and dedicated differ only in machine placement,
		// which a single host cannot express; both run the identical
		// software path here (the placement effect is perfsim's domain).
		for i := 0; i < replicas; i++ {
			if err := startBackend(newAppContainer(appRoute(i))); err != nil {
				return nil, err
			}
		}

	case perfsim.ArchEJB:
		// Four tiers: web -> (AJP) presentation servlets -> (RMI) session
		// façade + entity beans -> database. Each backend is a complete
		// presentation + EJB container pair, as a JOnAS farm would deploy.
		for i := 0; i < replicas; i++ {
			ec, err := ejb.NewContainer(ejb.Config{
				DBAddr: dbAddr, DBShardBy: l.shardBy(), DBPoolSize: cfg.DBPoolSize,
				DBStrictWrites: cfg.DBStrictWrites, DBTimeouts: cfg.DBTimeouts,
				DBSlowThreshold: cfg.DBSlowThreshold, DBSyncTimeout: cfg.DBSyncTimeout,
				DBQueryCache: cfg.DBQueryCache,
			})
			if err != nil {
				return nil, err
			}
			l.ejbCs = append(l.ejbCs, ec)
			var pres interface{ Register(*servlet.Container) }
			switch cfg.Benchmark {
			case perfsim.Bookstore:
				if err := bookstore.RegisterEntities(ec); err != nil {
					return nil, err
				}
				if err := ec.RegisterFacade(bookstore.FacadeName, &bookstore.Facade{C: ec}); err != nil {
					return nil, err
				}
			default:
				if err := auction.RegisterEntities(ec); err != nil {
					return nil, err
				}
				if err := ec.RegisterFacade(auction.FacadeName, &auction.Facade{C: ec}); err != nil {
					return nil, err
				}
			}
			rmiAddr, err := ec.Serve("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			rc := rmi.NewClientT(rmiAddr.String(), cfg.AppPoolSize, cfg.AppTimeouts)
			l.rmiClients = append(l.rmiClients, rc)
			switch cfg.Benchmark {
			case perfsim.Bookstore:
				pres = bookstore.NewPresentationApp(rc, cfg.BookScale)
			default:
				pres = auction.NewPresentationApp(rc, cfg.AuctionScale)
			}
			pc := servlet.NewContainer(servlet.Config{
				Route: appRoute(i), SessionStore: store(),
			})
			pres.Register(pc)
			if err := startBackend(pc); err != nil {
				return nil, err
			}
		}

	default:
		return nil, fmt.Errorf("core: unknown architecture %v", cfg.Arch)
	}

	if replicas == 1 {
		return l.connectors[0], nil
	}
	backends := make([]lb.Backend, len(l.connectors))
	for i, conn := range l.connectors {
		backends[i] = lb.Backend{ID: appRoute(i), Handler: conn, PoolStats: conn.Stats}
	}
	l.balancer = lb.New(lb.Config{Backends: backends})
	return l.balancer, nil
}

// staticImages builds the synthetic image set: 64 shared item images plus
// the site chrome.
func staticImages(size int) *httpd.StaticSet {
	set := httpd.NewStaticSet()
	for i := 0; i < 64; i++ {
		set.Add(fmt.Sprintf("/img/item_%d.gif", i), datagen.Image(i, size), "image/gif")
	}
	set.Add("/img/logo.gif", datagen.Image(1000, size/2), "image/gif")
	set.Add("/img/banner.gif", datagen.Image(1001, size), "image/gif")
	return set
}

// WebAddr returns the web server's host:port.
func (l *Lab) WebAddr() string { return l.webAddr }

// Profile returns the benchmark's workload profile.
func (l *Lab) Profile() *workload.Profile { return l.profile }

// DB exposes the (first) database for assertions.
func (l *Lab) DB() *sqldb.DB { return l.dbs[0] }

// ReplicaDB exposes replica i's database for assertions.
func (l *Lab) ReplicaDB(i int) *sqldb.DB { return l.dbs[i] }

// ReplicaAddrs returns the database tier's wire addresses.
func (l *Lab) ReplicaAddrs() []string { return l.dbAddrs }

// ReplicaQueryCounts returns each replica server's served-statement count —
// the observable behind "reads landed on both replicas". Stopped replicas
// report their final count.
func (l *Lab) ReplicaQueryCounts() []int64 {
	counts := make([]int64, len(l.dbSrvs))
	for i, srv := range l.dbSrvs {
		counts[i] = srv.QueryCount()
	}
	return counts
}

// StopReplica kills one database backend — the failover experiment's
// fault injector. The cluster client ejects it on the next statement it
// routes there. The server handle is kept so its final counters stay
// readable (and telemetry deltas never go negative).
func (l *Lab) StopReplica(i int) {
	if i < 0 || i >= len(l.dbSrvs) {
		return
	}
	l.dbSrvs[i].Close() // idempotent
}

// RestartReplica brings a stopped database backend's server back up on its
// original address (its data survives in-process). The cluster client still
// considers it ejected until Rejoin replays the writes it missed.
func (l *Lab) RestartReplica(i int) error {
	if i < 0 || i >= len(l.dbSrvs) {
		return fmt.Errorf("core: no replica %d", i)
	}
	srv := wire.NewServer(l.dbs[i], l.cfg.Logger)
	if _, err := srv.Listen(l.dbAddrs[i]); err != nil {
		return err
	}
	l.dbSrvs[i] = srv
	return nil
}

// walOpts builds backend i's WAL options from the config.
func (l *Lab) walOpts(i int, dir string) sqldb.WALOptions {
	return sqldb.WALOptions{
		Dir:             dir,
		FlushInterval:   l.cfg.DBWALFlushInterval,
		CheckpointBytes: l.cfg.DBCheckpointEvery,
		Fault:           l.cfg.DBWALFaults[i],
	}
}

// ReplicaWALDir returns replica i's data directory ("" without DBDataDir).
func (l *Lab) ReplicaWALDir(i int) string {
	if i < 0 || i >= len(l.walDirs) {
		return ""
	}
	return l.walDirs[i]
}

// CrashReplica power-cuts a durable database backend: its WAL drops
// everything unsynced (acknowledged commits survive, in-flight ones fail),
// and its server goes down. The in-memory engine object is dead after
// this — RestartReplicaFromDisk builds its successor from the data
// directory. Requires DBDataDir.
func (l *Lab) CrashReplica(i int) error {
	if i < 0 || i >= len(l.dbs) {
		return fmt.Errorf("core: no replica %d", i)
	}
	w := l.dbs[i].WAL()
	if w == nil {
		return fmt.Errorf("core: replica %d has no wal (set DBDataDir)", i)
	}
	w.Crash()
	l.StopReplica(i)
	return nil
}

// RestartReplicaFromDisk replaces a crashed backend with a fresh engine
// recovered from its data directory (checkpoint load + log replay, torn
// tail truncated) and re-listens on the original address. The cluster
// client still considers the replica ejected until Rejoin catches it up on
// whatever committed after the crash.
func (l *Lab) RestartReplicaFromDisk(i int) (*sqldb.RecoveryInfo, error) {
	if i < 0 || i >= len(l.dbs) {
		return nil, fmt.Errorf("core: no replica %d", i)
	}
	if l.walDirs[i] == "" {
		return nil, fmt.Errorf("core: replica %d has no data directory (set DBDataDir)", i)
	}
	db := sqldb.New()
	info, err := db.AttachWAL(l.walOpts(i, l.walDirs[i]))
	if err != nil {
		return nil, fmt.Errorf("core: recover replica %d: %w", i, err)
	}
	srv := wire.NewServer(db, l.cfg.Logger)
	if _, err := srv.Listen(l.dbAddrs[i]); err != nil {
		db.CloseWAL()
		return nil, err
	}
	l.dbs[i].CloseWAL() // the predecessor's flusher, if still alive
	l.dbs[i] = db
	l.dbSrvs[i] = srv
	return info, nil
}

// Cluster returns the app tier's replication-aware database client (nil
// for configurations without one). With a replicated application tier it
// is backend 0's client — every backend speaks to the same database
// replicas, so any backend's client observes the same logical database.
func (l *Lab) Cluster() *cluster.Client {
	var container *servlet.Container
	if l.module != nil {
		container = l.module.Container()
	} else if len(l.containers) > 0 {
		container = l.containers[0]
	}
	if container != nil && container.Context().DB != nil {
		return container.Context().DB
	}
	if len(l.ejbCs) > 0 {
		return l.ejbCs[0].DB()
	}
	return nil
}

// AppBackends returns the number of application-tier backends.
func (l *Lab) AppBackends() int { return len(l.containers) }

// StopAppBackend kills application backend i — the app-tier failover
// experiment's fault injector. Its AJP listener, servlets and database
// client all go down; the load balancer ejects it on the next request it
// routes there, and pinned sessions fail over to a surviving backend via
// the shared session store. In the EJB architecture the backend's RMI
// client and EJB container die with it.
func (l *Lab) StopAppBackend(i int) {
	if i < 0 || i >= len(l.containers) {
		return
	}
	l.containers[i].Close() // idempotent
	if i < len(l.rmiClients) {
		l.rmiClients[i].Close()
	}
	if i < len(l.ejbCs) {
		l.ejbCs[i].Close()
	}
}

// DBProxy returns the chaos proxy fronting database replica i (nil
// without Config.Chaos) for direct fault scripting.
func (l *Lab) DBProxy(i int) *chaos.Proxy {
	if i < 0 || i >= len(l.dbProxies) {
		return nil
	}
	return l.dbProxies[i]
}

// AppProxy returns the chaos proxy fronting app backend i's AJP link
// (nil without Config.Chaos).
func (l *Lab) AppProxy(i int) *chaos.Proxy {
	if i < 0 || i >= len(l.appProxies) {
		return nil
	}
	return l.appProxies[i]
}

// SlowReplica makes every byte to and from database replica i wait d —
// the up-but-slow replica. With cluster.Config.SlowThreshold set, the
// next broadcast ejects it. No-op without Config.Chaos.
func (l *Lab) SlowReplica(i int, d time.Duration) {
	if px := l.DBProxy(i); px != nil {
		px.Set(chaos.Fault{Kind: chaos.Latency, Delay: d})
	}
}

// PartitionReplica blackholes database replica i: in-flight and new
// connections hang (not refuse) until the clients' own deadlines fire —
// the slow-failure analog of StopReplica. No-op without Config.Chaos.
func (l *Lab) PartitionReplica(i int) {
	if px := l.DBProxy(i); px != nil {
		px.Set(chaos.Fault{Kind: chaos.Stall})
	}
}

// HealReplica lifts replica i's injected fault. Connections that were
// stalled are torn down rather than resumed (the chaos package's
// stall-kills invariant); the cluster redials, and RejoinAll brings the
// ejected replica back into rotation.
func (l *Lab) HealReplica(i int) {
	if px := l.DBProxy(i); px != nil {
		px.Clear()
	}
}

// StallAppBackend blackholes application backend i's AJP link: the web
// tier's requests to it hang until the connector's deadline fires and
// the balancer ejects it. The backend process itself stays healthy —
// the fault is the link, which is exactly what StopAppBackend cannot
// model. No-op without Config.Chaos.
func (l *Lab) StallAppBackend(i int) {
	if px := l.AppProxy(i); px != nil {
		px.Set(chaos.Fault{Kind: chaos.Stall})
	}
}

// HealAppBackend lifts app backend i's injected fault; the balancer's
// readmission probes bring it back.
func (l *Lab) HealAppBackend(i int) {
	if px := l.AppProxy(i); px != nil {
		px.Clear()
	}
}

// RejoinAll rejoins every ejected database replica on every cluster
// client in the application tier, resyncing data, and returns the first
// error. Rejoin on a healthy replica is a no-op, so calling it broadly
// is safe.
func (l *Lab) RejoinAll() error {
	var firstErr error
	for _, cl := range l.clusterClients() {
		for id := 0; id < cl.Replicas(); id++ {
			if err := cl.Rejoin(id, true); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// EJBQueryCount returns the EJB tier's statement count (0 for non-EJB
// configurations) — the observable behind §6.1's packet analysis. A
// replicated tier reports the sum over its backends.
func (l *Lab) EJBQueryCount() int64 {
	var n int64
	for _, ec := range l.ejbCs {
		n += ec.QueryCount()
	}
	return n
}

// Telemetry snapshots every tier's request/query counters and transport
// pool saturation — the observable behind the paper's which-tier-saturates
// analysis. Counters accumulate from boot; diff two snapshots with
// telemetry.Snapshot.Delta to window them. Replicated tiers aggregate into
// one tier figure (the paper's per-machine column), with the per-backend
// breakdown in Snapshot.AppBackends / Snapshot.Replicas.
func (l *Lab) Telemetry() *telemetry.Snapshot {
	s := &telemetry.Snapshot{
		Arch:      l.cfg.Arch.String(),
		Benchmark: l.cfg.Benchmark.String(),
	}

	// Web tier: requests served, plus the AJP connector pool(s) to the
	// engine below it (absent in-process). N balanced backends aggregate
	// into one pool figure, so the bottleneck heuristic keeps working.
	web := telemetry.Tier{Name: "web"}
	if l.web != nil {
		web.Requests = l.web.RequestCount()
		web.Bytes = l.web.ResponseBytes()
	}
	if l.pageCache != nil {
		pcs := l.pageCache.Stats()
		web.PageCacheHits = pcs.Hits
		web.PageCacheMisses = pcs.Misses
		web.PageCacheInvalidations = pcs.Invalidations
		web.PageCacheBypasses = pcs.Bypasses
	}
	if len(l.connectors) > 0 {
		var pools []pool.Stats
		for _, conn := range l.connectors {
			pools = append(pools, conn.Stats())
		}
		ps := sumPools("ajp", pools)
		web.Pool = &ps
		web.Downstream = "servlet"
	}
	s.Tiers = append(s.Tiers, web)

	// Engine tier: the servlet containers (standalone, in-process module,
	// or EJB presentation layer). Their pool is whatever they call into —
	// the database pools, or the RMI client pools in the EJB configuration.
	engine := l.containers
	if l.module != nil {
		engine = []*servlet.Container{l.module.Container()}
	}
	if len(engine) > 0 {
		t := telemetry.Tier{Name: "servlet"}
		var dbPools []pool.Stats
		for _, c := range engine {
			cs := c.Stats()
			t.Requests += cs.Requests
			if cs.DB != nil {
				dbPools = append(dbPools, *cs.DB)
			}
			if cl := c.Context().DB; cl != nil {
				ccs := cl.ClientStats()
				t.Broadcasts += ccs.Broadcasts
				t.BroadcastAcks += ccs.BroadcastAcks
				t.ReadOnlyTxns += ccs.ReadOnlyTxns
				t.SlowEjections += ccs.SlowEjections
				t.DegradedEntries += ccs.DegradedEntries
				t.DegradedExits += ccs.DegradedExits
				t.DegradedRejects += ccs.DegradedRejects
				t.Degraded = t.Degraded || ccs.Degraded
				t.Shards = ccs.Shards
				t.ShardSingle += ccs.ShardSingle
				t.ShardScatter += ccs.ShardScatter
				t.ShardBroadcast += ccs.ShardBroadcast
				t.Shard2PCTxns += ccs.Shard2PCTxns
				t.QueryCacheHits += ccs.QueryCacheHits
				t.QueryCacheMisses += ccs.QueryCacheMisses
				t.QueryCacheInvalidations += ccs.QueryCacheInvalidations
				t.QueryCacheBypasses += ccs.QueryCacheBypasses
				t.WALDeltaSyncs += ccs.WALDeltaSyncs
				t.WALFullSyncs += ccs.WALFullSyncs
				t.WALDeltaStmts += ccs.WALDeltaStmts
			}
		}
		if len(dbPools) > 0 {
			ps := sumPools("db-cluster", dbPools)
			t.Pool = &ps
			t.Downstream = "db"
		}
		if len(l.rmiClients) > 0 {
			var pools []pool.Stats
			for _, rc := range l.rmiClients {
				pools = append(pools, rc.Stats())
			}
			ps := sumPools("rmi", pools)
			t.Pool = &ps
			t.Downstream = "ejb"
		}
		s.Tiers = append(s.Tiers, t)
	}

	if len(l.ejbCs) > 0 {
		t := telemetry.Tier{Name: "ejb", Downstream: "db"}
		var dbPools []pool.Stats
		for _, ec := range l.ejbCs {
			es := ec.Stats()
			t.Queries += es.Queries
			t.Loads += es.Loads
			t.Stores += es.Stores
			t.Commits += es.TxCommits
			t.Aborts += es.TxAborts
			// Read-only demarcations: the container's lazy, never-opened
			// transactions plus any explicit BeginReadOnly the client ran.
			t.ReadOnlyTxns += es.TxReadOnly
			ccs := ec.DB().ClientStats()
			t.Broadcasts += ccs.Broadcasts
			t.BroadcastAcks += ccs.BroadcastAcks
			t.ReadOnlyTxns += ccs.ReadOnlyTxns
			t.SlowEjections += ccs.SlowEjections
			t.DegradedEntries += ccs.DegradedEntries
			t.DegradedExits += ccs.DegradedExits
			t.DegradedRejects += ccs.DegradedRejects
			t.Degraded = t.Degraded || ccs.Degraded
			t.Shards = ccs.Shards
			t.ShardSingle += ccs.ShardSingle
			t.ShardScatter += ccs.ShardScatter
			t.ShardBroadcast += ccs.ShardBroadcast
			t.Shard2PCTxns += ccs.Shard2PCTxns
			t.QueryCacheHits += ccs.QueryCacheHits
			t.QueryCacheMisses += ccs.QueryCacheMisses
			t.QueryCacheInvalidations += ccs.QueryCacheInvalidations
			t.QueryCacheBypasses += ccs.QueryCacheBypasses
			t.WALDeltaSyncs += ccs.WALDeltaSyncs
			t.WALFullSyncs += ccs.WALFullSyncs
			t.WALDeltaStmts += ccs.WALDeltaStmts
			dbPools = append(dbPools, es.DB)
		}
		ps := sumPools("db-cluster", dbPools)
		t.Pool = &ps
		s.Tiers = append(s.Tiers, t)
	}

	if len(l.dbSrvs) > 0 {
		// Aggregate the replica servers into the db tier, as the paper's
		// single "database machine" column.
		t := telemetry.Tier{Name: "db"}
		for _, srv := range l.dbSrvs {
			ds := srv.Stats()
			t.Queries += ds.Queries
			t.PreparedExecs += ds.PreparedExecs
			t.TextExecs += ds.TextExecs
			t.PlanHits += ds.PlanCache.Hits
			t.PlanMisses += ds.PlanCache.Misses
			t.Commits += ds.Txns.Commits
			t.Aborts += ds.Txns.Rollbacks
			t.DeadlockTimeouts += ds.Txns.DeadlockTimeouts
			t.TxnLockWaitNanos += ds.Txns.LockWaitNanos
			t.SnapshotReads += ds.MVCC.SnapshotReads
			t.LockBypasses += ds.MVCC.LockBypasses
			t.SnapshotRefreshes += ds.MVCC.Refreshes
			t.WALAppends += ds.WAL.Appends
			t.WALFsyncs += ds.WAL.Fsyncs
			t.WALBytes += ds.WAL.Bytes
			t.WALCheckpoints += ds.WAL.Checkpoints
			t.WALRecoveries += ds.WAL.Recoveries
		}
		s.Tiers = append(s.Tiers, t)
	}

	// Per-replica breakdown: the cluster clients' routing views (every app
	// backend routes independently, so their counters sum), joined with
	// each replica server's own statement counter and its backend's
	// write-ahead log counters.
	if cl := l.Cluster(); cl != nil && cl.Replicas() > 1 {
		s.Replicas = aggregateReplicaStats(l.clusterClients())
		for i := range s.Replicas {
			id := s.Replicas[i].ID
			if id < len(l.dbSrvs) {
				s.Replicas[i].Queries = l.dbSrvs[id].QueryCount()
			}
			if id < len(l.dbs) {
				ws := l.dbs[id].WALStats()
				s.Replicas[i].WALAppends = ws.Appends
				s.Replicas[i].WALFsyncs = ws.Fsyncs
				s.Replicas[i].WALBytes = ws.Bytes
				s.Replicas[i].Checkpoints = ws.Checkpoints
				s.Replicas[i].Recoveries = ws.Recoveries
			}
		}
	}

	// Per-app-backend breakdown: the balancer's routing view, joined with
	// each backend container's own request counter.
	if l.balancer != nil {
		s.AppBackends = l.balancer.Stats()
		for i := range s.AppBackends {
			if i < len(l.containers) {
				s.AppBackends[i].Requests = l.containers[i].Stats().Requests
			}
		}
	}
	return s
}

// clusterClients returns every replication-aware database client in the
// application tier: one per servlet backend (or the in-process module's),
// plus each EJB container's.
func (l *Lab) clusterClients() []*cluster.Client {
	var out []*cluster.Client
	add := func(c *servlet.Container) {
		if c != nil && c.Context().DB != nil {
			out = append(out, c.Context().DB)
		}
	}
	if l.module != nil {
		add(l.module.Container())
	}
	for _, c := range l.containers {
		add(c)
	}
	for _, ec := range l.ejbCs {
		out = append(out, ec.DB())
	}
	return out
}

// aggregateReplicaStats merges the per-replica routing views of N
// independent cluster clients into one: counters sum, a replica reports
// healthy only when every client still routes to it, pools sum.
func aggregateReplicaStats(clients []*cluster.Client) []telemetry.Replica {
	var out []telemetry.Replica
	for ci, cl := range clients {
		rs := cl.ReplicaStats()
		if ci == 0 {
			out = rs
			continue
		}
		for i := range rs {
			if i >= len(out) {
				out = append(out, rs[i])
				continue
			}
			out[i].Reads += rs[i].Reads
			out[i].Writes += rs[i].Writes
			out[i].Ejections += rs[i].Ejections
			out[i].LagNanos += rs[i].LagNanos
			out[i].Healthy = out[i].Healthy && rs[i].Healthy
			if out[i].Pool != nil && rs[i].Pool != nil {
				ps := sumPools(out[i].Pool.Name, []pool.Stats{*out[i].Pool, *rs[i].Pool})
				out[i].Pool = &ps
			}
		}
	}
	return out
}

// sumPools aggregates transport pools into one figure, keeping a single
// pool's snapshot (and name) untouched.
func sumPools(name string, pools []pool.Stats) pool.Stats {
	if len(pools) == 1 {
		return pools[0]
	}
	return pool.Sum(name, pools)
}

// Run drives the lab with the client emulator and attaches the per-tier
// saturation delta over the measurement window (ramp phases excluded,
// matching the report's other figures) to the report.
func (l *Lab) Run(wcfg workload.Config) (*workload.Report, error) {
	var before, after *telemetry.Snapshot
	prevStart, prevEnd := wcfg.OnMeasureStart, wcfg.OnMeasureEnd
	wcfg.OnMeasureStart = func() {
		before = l.Telemetry()
		if prevStart != nil {
			prevStart()
		}
	}
	wcfg.OnMeasureEnd = func() {
		after = l.Telemetry()
		if prevEnd != nil {
			prevEnd()
		}
	}
	rep, err := workload.Run(l.webAddr, l.profile, wcfg)
	if err != nil {
		return rep, err
	}
	if before != nil && after != nil {
		rep.Tiers = after.Delta(before)
	}
	return rep, nil
}

// Close tears the tiers down in dependency order.
func (l *Lab) Close() {
	if l.web != nil {
		l.web.Close()
	}
	for _, conn := range l.connectors {
		conn.Close()
	}
	if l.module != nil {
		l.module.Close()
	}
	for _, c := range l.containers {
		c.Close()
	}
	for _, rc := range l.rmiClients {
		rc.Close()
	}
	for _, ec := range l.ejbCs {
		ec.Close()
	}
	for _, px := range l.appProxies {
		px.Close()
	}
	for _, px := range l.dbProxies {
		px.Close()
	}
	for _, srv := range l.dbSrvs {
		srv.Close()
	}
	for _, db := range l.dbs {
		db.CloseWAL() // flush and seal the log; no-op without one
	}
}
