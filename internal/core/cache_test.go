package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
	"repro/internal/telemetry"
)

// TestCachingTierEndToEnd drives real HTTP through both cache levels:
// the second anonymous GET of a browse page is an edge hit, a committed
// write invalidates it, and the page served afterwards shows the
// post-write state. The counters surface in /status under the tiers the
// glossary documents.
func TestCachingTierEndToEnd(t *testing.T) {
	lab, err := Start(Config{
		Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction, Seed: 5,
		DBQueryCache: 256,
		PageCache:    128,
		PageCacheTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()

	get := func(path string) *httpclient.Response {
		t.Helper()
		resp, err := c.Get(path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.Status != 200 {
			t.Fatalf("GET %s -> %d: %s", path, resp.Status, resp.Body)
		}
		return resp
	}

	// Anonymous browse page: second request is served by the page cache.
	first := get("/rubis/viewitem?item=4")
	second := get("/rubis/viewitem?item=4")
	if second.Header["x-cache"] != "HIT" {
		t.Fatal("second anonymous GET not served from the page cache")
	}
	if string(second.Body) != string(first.Body) {
		t.Fatal("cached page differs from the rendered one")
	}

	// A committed write (a bid) invalidates the cached page: the next GET
	// must show the new price, not replay the pre-write page.
	get("/rubis/storebid?item=4&user=2&bid=7777")
	after := get("/rubis/viewitem?item=4")
	if after.Header["x-cache"] == "HIT" {
		t.Fatal("page cache served across a committed write")
	}
	if !strings.Contains(string(after.Body), "$7777.00") {
		t.Fatalf("post-write page does not show the bid: %s", after.Body)
	}
	// And the refreshed page is cacheable again.
	again := get("/rubis/viewitem?item=4")
	if again.Header["x-cache"] != "HIT" {
		t.Fatal("refilled page did not hit")
	}
	if !strings.Contains(string(again.Body), "$7777.00") {
		t.Fatal("cached refill lost the committed bid")
	}

	// The write-performing GET itself must never be replayed from cache:
	// its own commit makes the stored copy stale immediately.
	get("/rubis/storebid?item=5&user=2&bid=1234")
	bid2 := get("/rubis/storebid?item=5&user=2&bid=1234")
	if bid2.Header["x-cache"] == "HIT" {
		t.Fatal("a committing interaction was replayed from the page cache")
	}

	// Both cache levels report through /status.
	status := get("/status")
	snap, err := telemetry.Parse(status.Body)
	if err != nil {
		t.Fatalf("parse /status: %v", err)
	}
	web := snap.Tier("web")
	if web == nil || web.PageCacheHits == 0 {
		t.Fatalf("web tier page-cache hits missing from /status: %+v", web)
	}
	app := snap.Tier("servlet")
	if app == nil || app.QueryCacheHits+app.QueryCacheMisses == 0 {
		t.Fatalf("servlet tier query-cache counters missing from /status: %+v", app)
	}
	// The formatted report names both caches so operators can read hit
	// ratios next to the bottleneck verdict (README's worked example).
	text := snap.Format()
	if !strings.Contains(text, "page cache") || !strings.Contains(text, "query cache") {
		t.Fatalf("formatted /status lacks cache lines:\n%s", text)
	}
}

// TestCachingTierDisabledByDefault: with the knobs at zero the stack runs
// exactly as before — no cache headers, no counters.
func TestCachingTierDisabledByDefault(t *testing.T) {
	lab, err := Start(Config{Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	c := httpclient.New(lab.WebAddr(), 10*time.Second)
	defer c.Close()
	for i := 0; i < 2; i++ {
		resp, err := c.Get("/rubis/viewitem?item=4")
		if err != nil || resp.Status != 200 {
			t.Fatalf("GET: %v %d", err, resp.Status)
		}
		if resp.Header["x-cache"] == "HIT" {
			t.Fatal("page cache active without being configured")
		}
	}
	status, err := c.Get("/status")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := telemetry.Parse(status.Body)
	if err != nil {
		t.Fatal(err)
	}
	if web := snap.Tier("web"); web == nil || web.PageCacheHits+web.PageCacheMisses != 0 {
		t.Fatalf("page-cache counters present with caching disabled: %+v", web)
	}
}
