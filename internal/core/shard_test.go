package core

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/perfsim"
	"repro/internal/workload"
)

// Sharded-database coverage: the lab with DBShards > 1 runs the same
// stack over a horizontally partitioned tier (DESIGN.md §11) — the
// write-heavy auction tables split across shard groups by the
// auction.ShardBy map while users/categories/regions replicate globally.

// shardOfID returns the shard a strided AUTO_INCREMENT id belongs to:
// shard s hands out ids congruent to s+1 modulo the shard count.
func shardOfID(id int64, shards int) int {
	return int(((id-1)%int64(shards) + int64(shards)) % int64(shards))
}

// TestShardedWorkload is the acceptance run: the full bidding mix
// completes against a 2-shard tier, the bid rows are physically
// partitioned by the strided id discipline, and the telemetry carries
// the per-shard routing section.
func TestShardedWorkload(t *testing.T) {
	for _, arch := range []perfsim.Arch{perfsim.ArchServletSync, perfsim.ArchEJB} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			lab, err := Start(Config{
				Arch: arch, Benchmark: perfsim.Auction,
				Seed: 3, DBShards: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer lab.Close()
			rep, err := lab.Run(workload.Config{
				Clients: 6, Mix: "bidding",
				ThinkMean: time.Millisecond, SessionMean: time.Second,
				RampUp: 30 * time.Millisecond, Measure: 300 * time.Millisecond,
				Seed: 11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed")
			}
			if rep.Errors > rep.Interactions/10 {
				t.Fatalf("error rate too high: %d errors / %d completions", rep.Errors, rep.Interactions)
			}

			// Rows are physically partitioned: each shard holds only ids of
			// its own congruence class, and both shards hold some.
			for shard := 0; shard < 2; shard++ {
				sess := lab.ReplicaDB(shard).NewSession()
				res, err := sess.Exec("SELECT id FROM bids")
				if err != nil {
					t.Fatal(err)
				}
				sess.Close()
				if len(res.Rows) == 0 {
					t.Fatalf("shard %d holds no bids; partitioning routed nothing there", shard)
				}
				for _, row := range res.Rows {
					if id := row[0].AsInt(); shardOfID(id, 2) != shard {
						t.Fatalf("bid id %d landed on shard %d, want %d", id, shard, shardOfID(id, 2))
					}
				}
			}

			// The cluster client reports the shard topology and the routing
			// split: pinned statements dominated, scatter reads happened
			// (searches span every shard).
			ccs := lab.Cluster().ClientStats()
			if ccs.Shards != 2 {
				t.Fatalf("ClientStats.Shards = %d, want 2", ccs.Shards)
			}
			if ccs.ShardSingle == 0 {
				t.Error("no single-shard statements routed")
			}
			if ccs.ShardScatter == 0 {
				t.Error("no scatter-gather reads routed")
			}

			// Telemetry carries the per-shard replica section and the shard
			// counters on the app tier.
			if rep.Tiers == nil || len(rep.Tiers.Replicas) != 2 {
				t.Fatalf("report missing per-shard telemetry: %+v", rep.Tiers)
			}
			for i, r := range rep.Tiers.Replicas {
				if r.Shard != i {
					t.Errorf("replica %d reports shard %d, want %d", i, r.Shard, i)
				}
				if r.Reads == 0 && r.Writes == 0 {
					t.Errorf("shard %d routed nothing over the window: %+v", i, r)
				}
			}
			for _, tier := range rep.Tiers.Tiers {
				if tier.Name == "servlet" || tier.Name == "ejb" {
					if tier.Shards == 2 && tier.ShardSingle > 0 {
						return
					}
				}
			}
			t.Error("no app tier reported the shard counters")
		})
	}
}

// TestShardedTxnWorkload drives the bookstore's checkout-bearing mix —
// the order path is the sharded one there — and asserts cross-shard
// transactions actually exercised two-phase commit. The non-sync servlet
// arch is the transactional one: its write sections run inside database
// transactions (sync archs serialize through the container lock manager
// and never open one).
func TestShardedTxnWorkload(t *testing.T) {
	t.Parallel()
	lab, err := Start(Config{
		Arch: perfsim.ArchServlet, Benchmark: perfsim.Bookstore,
		Seed: 5, DBShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	rep, err := lab.Run(workload.Config{
		Clients: 6, Mix: "ordering",
		ThinkMean: time.Millisecond, SessionMean: time.Second,
		RampUp: 30 * time.Millisecond, Measure: 400 * time.Millisecond,
		Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interactions == 0 {
		t.Fatal("no interactions completed")
	}
	if rep.Errors > rep.Interactions/10 {
		t.Fatalf("error rate too high: %d errors / %d completions", rep.Errors, rep.Interactions)
	}
	// The checkout transaction updates the global items stock alongside
	// the customer's sharded order rows, so it must commit via 2PC.
	if ccs := lab.Cluster().ClientStats(); ccs.Shard2PCTxns == 0 {
		t.Errorf("no cross-shard 2PC transactions committed: %+v", ccs)
	}
}

// assertShardReplicasIdentical compares the given tables row by row
// across each shard group's replicas — the ROWA invariant holds per
// shard, never across shards.
func assertShardReplicasIdentical(t *testing.T, lab *Lab, shards, replicasPerShard int, tables []string) {
	t.Helper()
	for s := 0; s < shards; s++ {
		base := s * replicasPerShard
		want := replicaTableDump(t, lab, base, tables)
		for r := 1; r < replicasPerShard; r++ {
			if got := replicaTableDump(t, lab, base+r, tables); got != want {
				t.Fatalf("shard %d replica %d diverged:\n%s\nvs replica 0:\n%s", s, r, got, want)
			}
		}
	}
}

// TestChaosMatrixShardAxis extends the PR-7 chaos matrix with the shard
// axis: a 2-shard × 2-replica tier loses one shard's replica link
// mid-workload (stall, then reset), keeps serving within bounds, and
// after heal + rejoin every shard's replicas are row-for-row identical —
// a fault inside one shard group must never leak divergence into any
// group.
func TestChaosMatrixShardAxis(t *testing.T) {
	cases := []struct {
		name string
		kind chaos.Kind
	}{
		{"shard-stall", chaos.Stall},
		{"shard-reset", chaos.Reset},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			lab := chaosLab(t, Config{DBShards: 2})
			// Backend layout: [s0r0 s0r1 s1r0 s1r1] — fault shard 1's
			// first replica, global index 2.
			const victim = 2
			done := make(chan struct{})
			inject := func() {
				defer close(done)
				time.Sleep(100 * time.Millisecond)
				if tc.kind == chaos.Stall {
					lab.PartitionReplica(victim)
				} else {
					lab.DBProxy(victim).Set(chaos.Fault{Kind: chaos.Reset})
				}
				time.Sleep(200 * time.Millisecond)
				lab.HealReplica(victim)
			}
			rep := runBounded(t, lab, workload.Config{
				Clients: 6, Mix: "bidding",
				ThinkMean: time.Millisecond, SessionMean: time.Second,
				RampUp: 30 * time.Millisecond, Measure: 600 * time.Millisecond,
				Seed:           11,
				OnMeasureStart: func() { go inject() },
			})
			<-done
			if rep.Interactions == 0 {
				t.Fatal("no interactions completed under shard chaos")
			}
			if rep.Errors > rep.Interactions/3 {
				t.Fatalf("error rate too high under %s: %d errors / %d completions",
					tc.name, rep.Errors, rep.Interactions)
			}
			if err := lab.RejoinAll(); err != nil {
				t.Fatalf("rejoin after heal: %v", err)
			}
			if cl := lab.Cluster(); cl.Healthy() != cl.Replicas() {
				t.Fatalf("healthy %d / %d after RejoinAll", cl.Healthy(), cl.Replicas())
			}
			assertShardReplicasIdentical(t, lab, 2, 2, auctionChaosTables)
			// The workload's writes really did keep flowing to both shard
			// groups across the fault window.
			for shard := 0; shard < 2; shard++ {
				sess := lab.ReplicaDB(shard * 2).NewSession()
				res, err := sess.Exec("SELECT COUNT(*) FROM bids")
				if err != nil {
					t.Fatal(err)
				}
				sess.Close()
				if res.Rows[0][0].AsInt() == 0 {
					t.Errorf("shard %d holds no bids after the run", shard)
				}
			}
		})
	}
}
