package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/auction"
	"repro/internal/bookstore"
	"repro/internal/httpd"
	"repro/internal/httpd/httpclient"
	"repro/internal/perfsim"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// Failure-injection coverage (DESIGN.md §9): the stack must degrade to
// clean HTTP errors when a tier dies, and recover when it returns.

// TestDatabaseOutageSurfacesAs500 kills the database under a live servlet
// configuration: dynamic requests must fail as 500s (not hangs or broken
// connections), while static content keeps being served.
func TestDatabaseOutageSurfacesAs500(t *testing.T) {
	// Assemble manually so we own the DB server's lifetime.
	db := sqldb.New()
	sess := db.NewSession()
	if err := auction.CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
		t.Fatal(err)
	}
	if err := auction.Populate(sqldb.SessionExecer{S: sess}, auction.TinyScale(), 1); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	dbSrv := wire.NewServer(db, nil)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	lab := &Lab{cfg: Config{Arch: perfsim.ArchServlet, Benchmark: perfsim.Auction}.withDefaults()}
	handler, err := lab.startAppTier(dbAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	mux := newTestMux(handler)
	web := newWebServer(t, mux)

	c := httpclient.New(web, 5*time.Second)
	defer c.Close()
	if resp, err := c.Get("/rubis/viewitem?item=1"); err != nil || resp.Status != 200 {
		t.Fatalf("pre-outage request: %v %d", err, resp.Status)
	}

	dbSrv.Close() // the outage

	resp, err := c.Get("/rubis/viewitem?item=2")
	if err != nil {
		t.Fatalf("outage must surface as an HTTP status, got transport error: %v", err)
	}
	if resp.Status != 500 {
		t.Fatalf("outage status %d, want 500", resp.Status)
	}
	// Static content is independent of the database tier.
	img, err := c.Get("/img/item_1.gif")
	if err != nil || img.Status != 200 {
		t.Fatalf("static content must survive a DB outage: %v %d", err, img.Status)
	}
}

// TestDatabaseRestartRecovers restarts the database on the same port; the
// pooled connections must re-dial transparently.
func TestDatabaseRestartRecovers(t *testing.T) {
	db := sqldb.New()
	sess := db.NewSession()
	if err := bookstore.CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
		t.Fatal(err)
	}
	if err := bookstore.Populate(sqldb.SessionExecer{S: sess}, bookstore.TinyScale(), 1); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	dbSrv := wire.NewServer(db, nil)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	lab := &Lab{cfg: Config{Arch: perfsim.ArchPHP, Benchmark: perfsim.Bookstore}.withDefaults()}
	handler, err := lab.startAppTier(dbAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	web := newWebServer(t, newTestMux(handler))
	c := httpclient.New(web, 5*time.Second)
	defer c.Close()

	if resp, _ := c.Get("/tpcw/home?c_id=1"); resp == nil || resp.Status != 200 {
		t.Fatal("pre-restart request failed")
	}
	dbSrv.Close()
	if resp, err := c.Get("/tpcw/home?c_id=1"); err == nil && resp.Status == 200 {
		t.Fatal("request succeeded during outage")
	}
	// Restart on the same address with the same data.
	dbSrv2 := wire.NewServer(db, nil)
	if _, err := dbSrv2.Listen(dbAddr.String()); err != nil {
		t.Skipf("cannot rebind %s: %v", dbAddr, err)
	}
	defer dbSrv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Get("/tpcw/home?c_id=1")
		if err == nil && resp.Status == 200 {
			if !strings.Contains(string(resp.Body), "<html>") {
				t.Fatalf("recovered but body wrong: %s", resp.Body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stack never recovered after DB restart: %v / %+v", err, resp)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestAppTierOutage kills the servlet container behind the AJP connector:
// the web server must answer 500, not hang.
func TestAppTierOutage(t *testing.T) {
	lab := startLab(t, perfsim.ArchServletSync, perfsim.Auction)
	c := httpclient.New(lab.WebAddr(), 5*time.Second)
	defer c.Close()
	if resp, _ := c.Get("/rubis/home"); resp == nil || resp.Status != 200 {
		t.Fatal("pre-outage request failed")
	}
	lab.StopAppBackend(0) // kill the app tier only
	resp, err := c.Get("/rubis/home")
	if err != nil {
		t.Fatalf("want HTTP error, got transport failure: %v", err)
	}
	if resp.Status != 500 {
		t.Fatalf("status %d, want 500 after app-tier death", resp.Status)
	}
}

// newTestMux builds the web mux the way Start does: app handler plus the
// synthetic static images.
func newTestMux(app httpd.Handler) *httpd.Mux {
	mux := httpd.NewMux()
	mux.Handle("/rubis/", app)
	mux.Handle("/tpcw/", app)
	mux.Handle("/img/", staticImages(512))
	return mux
}

// newWebServer boots an httpd server on loopback and returns its address.
func newWebServer(t *testing.T, mux *httpd.Mux) string {
	t.Helper()
	srv := httpd.NewServer(mux, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}
