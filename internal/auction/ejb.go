package auction

import (
	"fmt"
	"strings"

	"repro/internal/ejb"
	"repro/internal/httpd"
	"repro/internal/rmi"
	"repro/internal/servlet"
	"repro/internal/sqldb"
)

// EJB deployment of the auction site: entity beans for the nine tables, a
// stateless session façade (§4.2), and presentation servlets calling it
// over RMI under the same URLs as the direct app.

// RegisterEntities declares the entity beans.
func RegisterEntities(c *ejb.Container) error {
	defs := []ejb.EntityDef{
		{Name: "Category", Table: "categories", Key: "id", Fields: []string{"name"}},
		{Name: "Region", Table: "regions", Key: "id", Fields: []string{"name"}},
		{Name: "User", Table: "users", Key: "id", Fields: []string{
			"fname", "lname", "nickname", "password", "region_id", "rating", "balance", "creation"}},
		{Name: "Item", Table: "items", Key: "id", Fields: []string{
			"name", "description", "seller_id", "category_id", "region_id",
			"init_price", "reserve", "buy_now", "nb_bids", "max_bid", "start_date", "end_date"}},
		{Name: "OldItem", Table: "old_items", Key: "id", Fields: []string{
			"name", "seller_id", "category_id", "region_id", "max_bid", "end_date"}},
		{Name: "Bid", Table: "bids", Key: "id", Fields: []string{
			"item_id", "user_id", "bid", "max_bid", "qty", "bid_date"}},
		{Name: "BuyNow", Table: "buy_now", Key: "id", Fields: []string{
			"item_id", "buyer_id", "qty", "bn_date"}},
		{Name: "Comment", Table: "comments", Key: "id", Fields: []string{
			"from_user", "to_user", "item_id", "rating", "comment"}},
	}
	for _, d := range defs {
		if err := c.DefineEntity(d); err != nil {
			return err
		}
	}
	return nil
}

// FacadeName is the RMI service name of the auction façade.
const FacadeName = "AuctionFacade"

// Facade is the stateless session bean with the auction business logic.
type Facade struct {
	C *ejb.Container
}

// ListArgs selects a listing page; Region 0 means category-only.
type ListArgs struct {
	Category int64
	Region   int64
	Limit    int
}

// ListReply carries listing rows.
type ListReply struct{ Items []ItemRow }

func itemRowOf(tx *ejb.Tx, pk sqldb.Value) (ItemRow, error) {
	it, err := tx.Load("Item", pk)
	if err != nil {
		return ItemRow{}, err
	}
	get := func(f string) sqldb.Value { v, _ := it.Get(f); return v }
	return ItemRow{ID: pk.AsInt(), Name: get("name").AsString(),
		MaxBid: get("max_bid").AsFloat(), NBids: get("nb_bids").AsInt(),
		EndDate: get("end_date").AsInt()}, nil
}

// List is the category/region finder plus per-row activations.
func (f *Facade) List(args *ListArgs, reply *ListReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		var keys []sqldb.Value
		var err error
		if args.Region > 0 {
			keys, err = tx.FindWhere("Item", "region_id = ? AND category_id = ?",
				[]sqldb.Value{sqldb.Int(args.Region), sqldb.Int(args.Category)}, "end_date", args.Limit)
		} else {
			keys, err = tx.FindWhere("Item", "category_id = ?",
				[]sqldb.Value{sqldb.Int(args.Category)}, "end_date", args.Limit)
		}
		if err != nil {
			return err
		}
		for _, pk := range keys {
			row, err := itemRowOf(tx, pk)
			if err != nil {
				return err
			}
			reply.Items = append(reply.Items, row)
		}
		return nil
	})
}

// ViewArgs / ViewReply serve the item page.
type ViewArgs struct{ ItemID int64 }
type ViewReply struct {
	Found  bool
	Name   string
	Descr  string
	MaxBid float64
	NBids  int64
	BuyNow float64
	Seller string
}

// View activates the item and its seller.
func (f *Facade) View(args *ViewArgs, reply *ViewReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		it, err := tx.Load("Item", sqldb.Int(args.ItemID))
		if err != nil {
			return nil
		}
		get := func(field string) sqldb.Value { v, _ := it.Get(field); return v }
		seller, err := tx.Load("User", get("seller_id"))
		if err != nil {
			return err
		}
		nick, _ := seller.Get("nickname")
		reply.Found = true
		reply.Name = get("name").AsString()
		reply.Descr = get("description").AsString()
		reply.MaxBid = get("max_bid").AsFloat()
		reply.NBids = get("nb_bids").AsInt()
		reply.BuyNow = get("buy_now").AsFloat()
		reply.Seller = nick.AsString()
		return nil
	})
}

// HistoryArgs / HistoryReply serve the bid history.
type HistoryArgs struct{ ItemID int64 }
type HistoryReply struct {
	Bids  []float64
	Users []string
}

// History runs the bids finder and activates each bid and bidder.
func (f *Facade) History(args *HistoryArgs, reply *HistoryReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		keys, err := tx.FindBy("Bid", "item_id", sqldb.Int(args.ItemID), 20)
		if err != nil {
			return err
		}
		for _, bk := range keys {
			b, err := tx.Load("Bid", bk)
			if err != nil {
				return err
			}
			amount, _ := b.Get("bid")
			uid, _ := b.Get("user_id")
			u, err := tx.Load("User", uid)
			if err != nil {
				return err
			}
			nick, _ := u.Get("nickname")
			reply.Bids = append(reply.Bids, amount.AsFloat())
			reply.Users = append(reply.Users, nick.AsString())
		}
		return nil
	})
}

// UserArgs / UserReply serve user info with recent comments.
type UserArgs struct{ UserID int64 }
type UserReply struct {
	Found    bool
	Nickname string
	Rating   int64
	Comments []string
}

// UserInfo activates the user and each recent comment (plus authors).
func (f *Facade) UserInfo(args *UserArgs, reply *UserReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		u, err := tx.Load("User", sqldb.Int(args.UserID))
		if err != nil {
			return nil
		}
		nick, _ := u.Get("nickname")
		rating, _ := u.Get("rating")
		reply.Found = true
		reply.Nickname = nick.AsString()
		reply.Rating = rating.AsInt()
		keys, err := tx.FindBy("Comment", "to_user", sqldb.Int(args.UserID), 10)
		if err != nil {
			return err
		}
		for _, ck := range keys {
			c, err := tx.Load("Comment", ck)
			if err != nil {
				return err
			}
			text, _ := c.Get("comment")
			reply.Comments = append(reply.Comments, text.AsString())
		}
		return nil
	})
}

// BidArgs / BidReply store a bid.
type BidArgs struct {
	ItemID int64
	UserID int64
	Amount float64
}
type BidReply struct{ Accepted float64 }

// StoreBid creates the bid entity and maintains the denormalized counters
// with two single-column CMP stores.
func (f *Facade) StoreBid(args *BidArgs, reply *BidReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		it, err := tx.Load("Item", sqldb.Int(args.ItemID))
		if err != nil {
			return err
		}
		cur, _ := it.Get("max_bid")
		amount := args.Amount
		if amount <= cur.AsFloat() {
			amount = cur.AsFloat() + 1
		}
		if _, err := tx.Create("Bid", []sqldb.Value{
			sqldb.Int(args.ItemID), sqldb.Int(args.UserID), sqldb.Float(amount),
			sqldb.Float(amount * 1.1), sqldb.Int(1), sqldb.Int(12006)}); err != nil {
			return err
		}
		n, _ := it.Get("nb_bids")
		if err := it.Set("nb_bids", sqldb.Int(n.AsInt()+1)); err != nil {
			return err
		}
		if err := it.Set("max_bid", sqldb.Float(amount)); err != nil {
			return err
		}
		reply.Accepted = amount
		return nil
	})
}

// BuyNowArgs / BuyNowReply store a direct purchase.
type BuyNowArgs struct {
	ItemID int64
	UserID int64
	Qty    int64
}
type BuyNowReply struct{ OK bool }

// StoreBuyNow creates the purchase and closes the auction.
func (f *Facade) StoreBuyNow(args *BuyNowArgs, reply *BuyNowReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		it, err := tx.Load("Item", sqldb.Int(args.ItemID))
		if err != nil {
			return err
		}
		if _, err := tx.Create("BuyNow", []sqldb.Value{
			sqldb.Int(args.ItemID), sqldb.Int(args.UserID),
			sqldb.Int(args.Qty), sqldb.Int(12005)}); err != nil {
			return err
		}
		if err := it.Set("end_date", sqldb.Int(12005)); err != nil {
			return err
		}
		reply.OK = true
		return nil
	})
}

// CommentArgs / CommentReply store a comment and rating delta.
type CommentArgs struct {
	From, To, ItemID, Rating int64
	Text                     string
}
type CommentReply struct{ OK bool }

// StoreComment creates the comment and updates the rating field.
func (f *Facade) StoreComment(args *CommentArgs, reply *CommentReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		if _, err := tx.Create("Comment", []sqldb.Value{
			sqldb.Int(args.From), sqldb.Int(args.To), sqldb.Int(args.ItemID),
			sqldb.Int(args.Rating), sqldb.String(args.Text)}); err != nil {
			return err
		}
		u, err := tx.Load("User", sqldb.Int(args.To))
		if err != nil {
			return err
		}
		r, _ := u.Get("rating")
		if err := u.Set("rating", sqldb.Int(r.AsInt()+args.Rating-2)); err != nil {
			return err
		}
		reply.OK = true
		return nil
	})
}

// SellArgs / SellReply list a new item.
type SellArgs struct {
	Name     string
	Seller   int64
	Category int64
	Region   int64
	Price    float64
}
type SellReply struct{ ItemID int64 }

// Sell verifies the seller and creates the item entity.
func (f *Facade) Sell(args *SellArgs, reply *SellReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		if _, err := tx.Load("User", sqldb.Int(args.Seller)); err != nil {
			return err
		}
		pk, err := tx.Create("Item", []sqldb.Value{
			sqldb.String(args.Name), sqldb.String("newly listed"),
			sqldb.Int(args.Seller), sqldb.Int(args.Category), sqldb.Int(args.Region),
			sqldb.Float(args.Price), sqldb.Float(args.Price * 1.2),
			sqldb.Float(args.Price * 2), sqldb.Int(0), sqldb.Float(args.Price),
			sqldb.Int(12000), sqldb.Int(12007)})
		if err != nil {
			return err
		}
		reply.ItemID = pk.AsInt()
		return nil
	})
}

// RegisterArgs / RegisterReply create a user.
type RegisterArgs struct {
	Nickname string
	Region   int64
}
type RegisterReply struct{ UserID int64 }

// Register creates the user entity.
func (f *Facade) Register(args *RegisterArgs, reply *RegisterReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		pk, err := tx.Create("User", []sqldb.Value{
			sqldb.String("F"), sqldb.String("L"), sqldb.String(args.Nickname),
			sqldb.String("pw"), sqldb.Int(args.Region), sqldb.Int(0),
			sqldb.Float(0), sqldb.Int(12000)})
		if err != nil {
			return err
		}
		reply.UserID = pk.AsInt()
		return nil
	})
}

// AboutArgs / AboutReply serve the myEbay page.
type AboutArgs struct{ UserID int64 }
type AboutReply struct {
	Found    bool
	Nickname string
	BidCount int
	Selling  []ItemRow
}

// About runs the user's finders and activations.
func (f *Facade) About(args *AboutArgs, reply *AboutReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		u, err := tx.Load("User", sqldb.Int(args.UserID))
		if err != nil {
			return nil
		}
		nick, _ := u.Get("nickname")
		reply.Found = true
		reply.Nickname = nick.AsString()
		bidKeys, err := tx.FindBy("Bid", "user_id", sqldb.Int(args.UserID), 10)
		if err != nil {
			return err
		}
		reply.BidCount = len(bidKeys)
		sellKeys, err := tx.FindBy("Item", "seller_id", sqldb.Int(args.UserID), 10)
		if err != nil {
			return err
		}
		for _, pk := range sellKeys {
			row, err := itemRowOf(tx, pk)
			if err != nil {
				return err
			}
			reply.Selling = append(reply.Selling, row)
		}
		return nil
	})
}

// PresentationApp is the servlet-side presentation tier of the EJB
// deployment.
type PresentationApp struct {
	rmi *rmi.Client
	sc  Scale
}

// NewPresentationApp wires the presentation servlets to an RMI client.
func NewPresentationApp(client *rmi.Client, sc Scale) *PresentationApp {
	return &PresentationApp{rmi: client, sc: sc}
}

func (p *PresentationApp) call(method string, args, reply any) error {
	return p.rmi.Call(FacadeName+"."+method, args, reply)
}

// Register installs the 26 presentation servlets under the same URLs.
func (p *PresentationApp) Register(c *servlet.Container) {
	a := &App{sc: p.sc} // reuse the static forms and logout
	type h = func(*servlet.Context, *httpd.Request) (*httpd.Response, error)
	list := func(regionParam bool) h {
		return func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			args := ListArgs{Category: intParam(req, "category", 1), Limit: 20}
			if regionParam {
				args.Region = intParam(req, "region", 1)
			}
			var reply ListReply
			if err := p.call("List", &args, &reply); err != nil {
				return nil, err
			}
			return page("Items", func(b *strings.Builder) { renderListing(b, reply.Items) }), nil
		}
	}
	viewItem := func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
		var reply ViewReply
		id := intParam(req, "item", 1)
		if err := p.call("View", &ViewArgs{ItemID: id}, &reply); err != nil {
			return nil, err
		}
		if !reply.Found {
			return httpd.Error(404, "no such item"), nil
		}
		return page("Item: "+reply.Name, func(b *strings.Builder) {
			fmt.Fprintf(b, `<img src="/img/item_%d.gif"><p>%s</p><p>$%.2f (%d bids), seller %s</p>`+"\n",
				id%64, reply.Descr, reply.MaxBid, reply.NBids, reply.Seller)
		}), nil
	}
	userInfo := func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
		var reply UserReply
		if err := p.call("UserInfo", &UserArgs{UserID: intParam(req, "user", 1)}, &reply); err != nil {
			return nil, err
		}
		if !reply.Found {
			return httpd.Error(404, "no such user"), nil
		}
		return page("User "+reply.Nickname, func(b *strings.Builder) {
			fmt.Fprintf(b, "<p>Rating %d</p>\n", reply.Rating)
			for _, c := range reply.Comments {
				fmt.Fprintf(b, "<p>%s</p>\n", c)
			}
		}), nil
	}
	routes := map[string]h{
		"home": func(_ *servlet.Context, _ *httpd.Request) (*httpd.Response, error) {
			return page("RUBiS Auction (EJB)", func(b *strings.Builder) {
				fmt.Fprintf(b, `<p><a href="%sbrowsecategories">Browse</a></p>`+"\n", BasePath)
			}), nil
		},
		"browsecategories": func(_ *servlet.Context, _ *httpd.Request) (*httpd.Response, error) {
			return page("Categories", func(b *strings.Builder) {
				for i := 1; i <= p.sc.Categories; i++ {
					fmt.Fprintf(b, `<p><a href="%ssearchitemsincategory?category=%d">cat %d</a></p>`+"\n", BasePath, i, i)
				}
			}), nil
		},
		"browseregions": func(_ *servlet.Context, _ *httpd.Request) (*httpd.Response, error) {
			return page("Regions", func(b *strings.Builder) {
				for i := 1; i <= p.sc.Regions; i++ {
					fmt.Fprintf(b, `<p><a href="%sbrowsecategoriesinregion?region=%d">region %d</a></p>`+"\n", BasePath, i, i)
				}
			}), nil
		},
		"browsecategoriesinregion": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			region := intParam(req, "region", 1)
			return page("Categories in region", func(b *strings.Builder) {
				for i := 1; i <= p.sc.Categories; i++ {
					fmt.Fprintf(b, `<p><a href="%ssearchitemsinregion?region=%d&category=%d">cat %d</a></p>`+"\n", BasePath, region, i, i)
				}
			}), nil
		},
		"searchitemsincategory": list(false),
		"searchitemsinregion":   list(true),
		"viewitem":              viewItem,
		"buynow":                viewItem,
		"putbid":                viewItem,
		"viewbidhistory": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			var reply HistoryReply
			if err := p.call("History", &HistoryArgs{ItemID: intParam(req, "item", 1)}, &reply); err != nil {
				return nil, err
			}
			return page("Bid history", func(b *strings.Builder) {
				for i := range reply.Bids {
					fmt.Fprintf(b, "<p>$%.2f by %s</p>\n", reply.Bids[i], reply.Users[i])
				}
			}), nil
		},
		"viewuserinfo": userInfo,
		"putcomment":   userInfo,
		"sellitemform": a.staticForm("Sell an item", "registeritem"),
		"registeritem": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			var reply SellReply
			err := p.call("Sell", &SellArgs{Name: "listed item",
				Seller:   intParam(req, "seller", 1),
				Category: intParam(req, "category", 1),
				Region:   intParam(req, "region", 1),
				Price:    float64(intParam(req, "price", 10))}, &reply)
			if err != nil {
				return nil, err
			}
			return page("Item listed", func(b *strings.Builder) {
				fmt.Fprintf(b, "<p>Item #%d on sale.</p>\n", reply.ItemID)
			}), nil
		},
		"registeruserform": a.staticForm("Register", "registeruser"),
		"registeruser": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			nick := req.Form().Get("nickname")
			if nick == "" {
				nick = fmt.Sprintf("ejbnick%d", intParam(req, "seed", 1))
			}
			var reply RegisterReply
			if err := p.call("Register", &RegisterArgs{Nickname: nick,
				Region: intParam(req, "region", 1)}, &reply); err != nil {
				return nil, err
			}
			return page("Registered", func(b *strings.Builder) {
				fmt.Fprintf(b, "<p>User #%d created.</p>\n", reply.UserID)
			}), nil
		},
		"buynowauth": a.staticForm("Buy Now: log in", "buynow"),
		"storebuynow": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			var reply BuyNowReply
			if err := p.call("StoreBuyNow", &BuyNowArgs{
				ItemID: intParam(req, "item", 1), UserID: intParam(req, "user", 1),
				Qty: intParam(req, "qty", 1)}, &reply); err != nil {
				return nil, err
			}
			return page("Purchase complete", func(b *strings.Builder) {
				fmt.Fprintf(b, "<p>ok=%v</p>\n", reply.OK)
			}), nil
		},
		"putbidauth": a.staticForm("Bid: log in", "putbid"),
		"storebid": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			var reply BidReply
			if err := p.call("StoreBid", &BidArgs{
				ItemID: intParam(req, "item", 1), UserID: intParam(req, "user", 1),
				Amount: float64(intParam(req, "bid", 0))}, &reply); err != nil {
				return nil, err
			}
			return page("Bid stored", func(b *strings.Builder) {
				fmt.Fprintf(b, "<p>Accepted $%.2f</p>\n", reply.Accepted)
			}), nil
		},
		"putcommentauth": a.staticForm("Comment: log in", "putcomment"),
		"storecomment": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			var reply CommentReply
			if err := p.call("StoreComment", &CommentArgs{
				From: intParam(req, "user", 1), To: intParam(req, "to", 1),
				ItemID: intParam(req, "item", 1), Rating: intParam(req, "rating", 3),
				Text: req.Form().Get("comment")}, &reply); err != nil {
				return nil, err
			}
			return page("Comment stored", func(b *strings.Builder) {
				fmt.Fprintf(b, "<p>ok=%v</p>\n", reply.OK)
			}), nil
		},
		"aboutmeauth": a.staticForm("About Me: log in", "aboutme"),
		"aboutme": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			var reply AboutReply
			if err := p.call("About", &AboutArgs{UserID: intParam(req, "user", 1)}, &reply); err != nil {
				return nil, err
			}
			if !reply.Found {
				return httpd.Error(404, "no such user"), nil
			}
			return page("About "+reply.Nickname, func(b *strings.Builder) {
				fmt.Fprintf(b, "<p>%d bids</p>\n", reply.BidCount)
				renderListing(b, reply.Selling)
			}), nil
		},
		"login": func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
			return page("Login", func(b *strings.Builder) {
				b.WriteString("<p>Logged in.</p>\n")
			}), nil
		},
		"logout": a.logout,
	}
	for name, fn := range routes {
		c.Register(BasePath+name, servlet.Func(fn))
	}
}
