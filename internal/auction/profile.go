package auction

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/workload"
)

// Mix names accepted by Profile.
const (
	BrowsingMix = "browsing"
	BiddingMix  = "bidding"
)

// Profile builds the emulator description: 26 interactions and the two
// mixes of §3.2 (browsing read-only; bidding with 15% read-write).
func Profile(sc Scale) *workload.Profile {
	item := func(g *datagen.Gen) int { return 1 + g.Intn(sc.Items) }
	user := func(g *datagen.Gen) int { return 1 + g.Intn(sc.Users) }
	get := func(format string, args ...any) workload.Request {
		return workload.Request{Method: "GET", Path: fmt.Sprintf(format, args...)}
	}
	b := func(name, format string, params func(g *datagen.Gen) []any) workload.Interaction {
		return workload.Interaction{Name: name, Build: func(g *datagen.Gen) workload.Request {
			return get(format, params(g)...)
		}}
	}
	none := func(*datagen.Gen) []any { return nil }
	inters := []workload.Interaction{
		b("home", BasePath+"home", none),
		b("browsecategories", BasePath+"browsecategories", none),
		b("browseregions", BasePath+"browseregions", none),
		b("searchitemsincategory", BasePath+"searchitemsincategory?category=%d",
			func(g *datagen.Gen) []any { return []any{1 + g.Intn(sc.Categories)} }),
		b("searchitemsinregion", BasePath+"searchitemsinregion?region=%d&category=%d",
			func(g *datagen.Gen) []any { return []any{1 + g.Intn(sc.Regions), 1 + g.Intn(sc.Categories)} }),
		b("browsecategoriesinregion", BasePath+"browsecategoriesinregion?region=%d",
			func(g *datagen.Gen) []any { return []any{1 + g.Intn(sc.Regions)} }),
		b("viewitem", BasePath+"viewitem?item=%d",
			func(g *datagen.Gen) []any { return []any{item(g)} }),
		b("viewbidhistory", BasePath+"viewbidhistory?item=%d",
			func(g *datagen.Gen) []any { return []any{item(g)} }),
		b("viewuserinfo", BasePath+"viewuserinfo?user=%d",
			func(g *datagen.Gen) []any { return []any{user(g)} }),
		b("sellitemform", BasePath+"sellitemform", none),
		b("registeritem", BasePath+"registeritem?seller=%d&category=%d&region=%d&price=%d",
			func(g *datagen.Gen) []any {
				return []any{user(g), 1 + g.Intn(sc.Categories), 1 + g.Intn(sc.Regions), 5 + g.Intn(200)}
			}),
		b("registeruserform", BasePath+"registeruserform", none),
		b("registeruser", BasePath+"registeruser?nickname=n%d&region=%d",
			func(g *datagen.Gen) []any { return []any{g.Intn(1 << 30), 1 + g.Intn(sc.Regions)} }),
		b("buynowauth", BasePath+"buynowauth?item=%d",
			func(g *datagen.Gen) []any { return []any{item(g)} }),
		b("buynow", BasePath+"buynow?item=%d",
			func(g *datagen.Gen) []any { return []any{item(g)} }),
		b("storebuynow", BasePath+"storebuynow?item=%d&user=%d",
			func(g *datagen.Gen) []any { return []any{item(g), user(g)} }),
		b("putbidauth", BasePath+"putbidauth?item=%d",
			func(g *datagen.Gen) []any { return []any{item(g)} }),
		b("putbid", BasePath+"putbid?item=%d",
			func(g *datagen.Gen) []any { return []any{item(g)} }),
		b("storebid", BasePath+"storebid?item=%d&user=%d&bid=%d",
			func(g *datagen.Gen) []any { return []any{item(g), user(g), 1 + g.Intn(500)} }),
		b("putcommentauth", BasePath+"putcommentauth?to=%d",
			func(g *datagen.Gen) []any { return []any{user(g)} }),
		b("putcomment", BasePath+"putcomment?user=%d",
			func(g *datagen.Gen) []any { return []any{user(g)} }),
		b("storecomment", BasePath+"storecomment?user=%d&to=%d&rating=%d",
			func(g *datagen.Gen) []any { return []any{user(g), user(g), g.Intn(6)} }),
		b("aboutmeauth", BasePath+"aboutmeauth", none),
		b("aboutme", BasePath+"aboutme?user=%d",
			func(g *datagen.Gen) []any { return []any{user(g)} }),
		b("login", BasePath+"login?nickname=bidder%d&password=pwbidder%d",
			func(g *datagen.Gen) []any { u := user(g); return []any{u, u} }),
		b("logout", BasePath+"logout", none),
	}
	// Order matches Interactions(). Writes: registeritem, registeruser,
	// storebuynow, storebid, storecomment.
	mixes := map[string][]float64{
		BrowsingMix: {
			0.06, 0.09, 0.06, 0.15, 0.08, 0.05, 0.22, 0.06, 0.06, 0.01,
			0, 0.01, 0, 0.01, 0.02, 0, 0.02, 0.03, 0, 0.01,
			0.01, 0, 0.01, 0.03, 0.01, 0,
		},
		BiddingMix: {
			0.04, 0.06, 0.04, 0.10, 0.06, 0.03, 0.14, 0.05, 0.05, 0.01,
			0.018, 0.01, 0.012, 0.015, 0.02, 0.018, 0.03, 0.05, 0.088, 0.015,
			0.02, 0.022, 0.015, 0.035, 0.04, 0.012,
		},
	}
	return &workload.Profile{Name: "auction", Interactions: inters, Mixes: mixes}
}
