package auction

import (
	"strings"
	"testing"

	"repro/internal/ejb"
	"repro/internal/httpd"
	"repro/internal/rmi"
	"repro/internal/servlet"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

func startDB(t testing.TB) string {
	t.Helper()
	db := sqldb.New()
	sess := db.NewSession()
	if err := CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
		t.Fatal(err)
	}
	if err := Populate(sqldb.SessionExecer{S: sess}, TinyScale(), 42); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	srv := wire.NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func newAppContainer(t testing.TB, sync bool) *servlet.Container {
	t.Helper()
	c := servlet.NewContainer(servlet.Config{DBAddr: startDB(t), DBPoolSize: 8})
	New(TinyScale(), Config{Sync: sync}).Register(c)
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func doGet(t testing.TB, h httpd.Handler, path string) *httpd.Response {
	t.Helper()
	req := &httpd.Request{Method: "GET", Path: path, Header: httpd.Header{},
		Query: map[string][]string{}}
	if i := strings.IndexByte(path, '?'); i >= 0 {
		req.Path = path[:i]
		for _, kv := range strings.Split(path[i+1:], "&") {
			k, v, _ := strings.Cut(kv, "=")
			req.Query[k] = []string{v}
		}
	}
	resp, err := h.ServeHTTP(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

func TestInteractionsCount(t *testing.T) {
	if len(Interactions()) != 26 {
		t.Fatalf("the auction site defines 26 interactions, got %d", len(Interactions()))
	}
}

func TestProfileCoversAllInteractions(t *testing.T) {
	p := Profile(TinyScale())
	if len(p.Interactions) != 26 {
		t.Fatalf("profile has %d interactions", len(p.Interactions))
	}
	names := Interactions()
	for i, in := range p.Interactions {
		if in.Name != names[i] {
			t.Fatalf("interaction %d = %q, want %q", i, in.Name, names[i])
		}
	}
	for mix, w := range p.Mixes {
		var sum float64
		for _, v := range w {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s weights sum %.4f", mix, sum)
		}
	}
	// Bidding mix: ~15% read-write (§3.2).
	writes := map[string]bool{"registeritem": true, "registeruser": true,
		"storebuynow": true, "storebid": true, "storecomment": true}
	var rw float64
	for i, in := range p.Interactions {
		if writes[in.Name] {
			rw += p.Mixes[BiddingMix][i]
		}
	}
	if rw < 0.12 || rw > 0.18 {
		t.Errorf("bidding mix read-write fraction %.3f, want ~0.15", rw)
	}
	for i := range p.Interactions {
		if writes[p.Interactions[i].Name] && p.Mixes[BrowsingMix][i] != 0 {
			t.Errorf("browsing mix must be read-only; %s has weight", p.Interactions[i].Name)
		}
	}
}

func TestAllInteractionsServeHTML(t *testing.T) {
	c := newAppContainer(t, false)
	h := c.Handler()
	paths := []string{
		"home", "browsecategories", "browseregions",
		"searchitemsincategory?category=2", "searchitemsinregion?region=1&category=1",
		"browsecategoriesinregion?region=2", "viewitem?item=3",
		"viewbidhistory?item=3", "viewuserinfo?user=5", "sellitemform",
		"registeritem?seller=2&category=1&region=1&price=50", "registeruserform",
		"registeruser?nickname=znew1&region=2", "buynowauth?item=2", "buynow?item=2",
		"storebuynow?item=2&user=3", "putbidauth?item=4", "putbid?item=4",
		"storebid?item=4&user=5&bid=900", "putcommentauth?to=3", "putcomment?user=3",
		"storecomment?user=2&to=3&rating=5", "aboutmeauth", "aboutme?user=2",
		"login?nickname=bidder3&password=pwbidder3", "logout",
	}
	if len(paths) != 26 {
		t.Fatalf("test covers %d paths, want 26", len(paths))
	}
	for _, p := range paths {
		resp := doGet(t, h, BasePath+p)
		if resp.Status != 200 {
			t.Errorf("%s -> %d: %s", p, resp.Status, resp.Body)
		}
	}
}

func TestStoreBidMaintainsCounters(t *testing.T) {
	for _, sync := range []bool{false, true} {
		c := newAppContainer(t, sync)
		h := c.Handler()
		before := doGet(t, h, BasePath+"viewitem?item=1")
		doGet(t, h, BasePath+"storebid?item=1&user=2&bid=100000")
		after := doGet(t, h, BasePath+"viewitem?item=1")
		if string(before.Body) == string(after.Body) {
			t.Fatalf("sync=%v: bid did not change the item page", sync)
		}
		if !strings.Contains(string(after.Body), "$100000.00") {
			t.Fatalf("sync=%v: max bid not updated: %s", sync, after.Body)
		}
	}
}

func TestStoreCommentUpdatesRating(t *testing.T) {
	c := newAppContainer(t, false)
	h := c.Handler()
	doGet(t, h, BasePath+"storecomment?user=2&to=7&rating=5")
	resp := doGet(t, h, BasePath+"viewuserinfo?user=7")
	if resp.Status != 200 {
		t.Fatalf("userinfo: %d", resp.Status)
	}
}

func TestRegisterItemVisibleInCategory(t *testing.T) {
	c := newAppContainer(t, true)
	h := c.Handler()
	resp := doGet(t, h, BasePath+"registeritem?seller=1&category=3&region=1&price=42&name=zzz")
	if !strings.Contains(string(resp.Body), "on sale") {
		t.Fatalf("register item: %s", resp.Body)
	}
	listing := doGet(t, h, BasePath+"searchitemsincategory?category=3")
	if !strings.Contains(string(listing.Body), "viewitem") {
		t.Fatalf("listing empty after register: %s", listing.Body)
	}
}

func TestLogin(t *testing.T) {
	c := newAppContainer(t, false)
	h := c.Handler()
	good := doGet(t, h, BasePath+"login?nickname=bidder1&password=pwbidder1")
	if !strings.Contains(string(good.Body), "Welcome user") {
		t.Fatalf("login failed: %s", good.Body)
	}
	bad := doGet(t, h, BasePath+"login?nickname=bidder1&password=wrong")
	if !strings.Contains(string(bad.Body), "Invalid") {
		t.Fatalf("bad login accepted: %s", bad.Body)
	}
}

func TestEJBDeployment(t *testing.T) {
	dbAddr := startDB(t)
	ec, err := ejb.NewContainer(ejb.Config{DBAddr: dbAddr, DBPoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ec.Close() })
	if err := RegisterEntities(ec); err != nil {
		t.Fatal(err)
	}
	if err := ec.RegisterFacade(FacadeName, &Facade{C: ec}); err != nil {
		t.Fatal(err)
	}
	rmiAddr, err := ec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := rmi.NewClient(rmiAddr.String(), 4)
	t.Cleanup(client.Close)
	sc := servlet.NewContainer(servlet.Config{})
	NewPresentationApp(client, TinyScale()).Register(sc)
	if err := sc.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	h := sc.Handler()

	for _, p := range []string{
		"home", "searchitemsincategory?category=1", "viewitem?item=2",
		"viewbidhistory?item=2", "viewuserinfo?user=3",
		"storebid?item=2&user=4&bid=50000", "storebuynow?item=3&user=5",
		"storecomment?user=1&to=2&rating=4", "registeruser?nickname=zejb1",
		"registeritem?seller=1&category=2&region=1&price=9", "aboutme?user=1",
	} {
		resp := doGet(t, h, BasePath+p)
		if resp.Status != 200 {
			t.Errorf("%s -> %d: %s", p, resp.Status, resp.Body)
		}
	}
	if q := ec.QueryCount(); q < 30 {
		t.Errorf("EJB issued only %d statements; CMP should flood the DB", q)
	}
	// Verify the bid actually landed, through a fresh direct check.
	conn, err := wire.Dial(dbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := conn.Exec("SELECT max_bid FROM items WHERE id = 2")
	if err != nil || res.Rows[0][0].AsFloat() < 50000 {
		t.Fatalf("EJB bid not persisted: %v %v", err, res.Rows)
	}
}

func TestPopulateDeterministic(t *testing.T) {
	mk := func() int {
		db := sqldb.New()
		s := db.NewSession()
		defer s.Close()
		if err := CreateSchema(sqldb.SessionExecer{S: s}); err != nil {
			t.Fatal(err)
		}
		if err := Populate(sqldb.SessionExecer{S: s}, TinyScale(), 9); err != nil {
			t.Fatal(err)
		}
		tb, _ := db.Table("bids")
		return tb.RowCount()
	}
	if a, b := mk(), mk(); a != b || a == 0 {
		t.Fatalf("bids: %d vs %d", a, b)
	}
}

func TestDenormalizedCountersConsistent(t *testing.T) {
	// nb_bids on items must equal the count of bids rows per item after
	// population (§3.2 calls this redundancy out explicitly).
	db := sqldb.New()
	s := db.NewSession()
	defer s.Close()
	if err := CreateSchema(sqldb.SessionExecer{S: s}); err != nil {
		t.Fatal(err)
	}
	if err := Populate(sqldb.SessionExecer{S: s}, TinyScale(), 11); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("SELECT id, nb_bids FROM items")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		cres, err := s.Exec("SELECT COUNT(*) FROM bids WHERE item_id = ?", r[0])
		if err != nil {
			t.Fatal(err)
		}
		if got, want := r[1].AsInt(), cres.Rows[0][0].AsInt(); got != want {
			t.Fatalf("item %v: nb_bids %d, bids rows %d", r[0], got, want)
		}
	}
}
