// Package auction implements the paper's auction site benchmark (§3.2), a
// RUBiS-style application modeled on eBay: nine tables, twenty-six
// interactions, and two mixes (read-only browsing; bidding with 15%
// read-write). As with the bookstore, the hand-written SQL layer serves
// both the in-process (PHP-analog) and servlet deployments, and ejb.go
// provides the session-façade/entity-bean variant.
package auction

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// Scale sizes the population. The paper runs 33,000 live items, 500,000
// old items, 1,000,000 users, ~330,000 bids and ~500,000 comments (1.4 GB).
type Scale struct {
	Items      int // live auctions
	OldItems   int
	Users      int
	BidsPer    int // average bids per item
	Comments   int
	Categories int
	Regions    int
}

// DefaultScale is roughly 1/100 of the paper's population.
func DefaultScale() Scale {
	return Scale{Items: 330, OldItems: 5000, Users: 10000, BidsPer: 10,
		Comments: 5000, Categories: 40, Regions: 62}
}

// PaperScale matches §3.2's sizing observations from eBay.
func PaperScale() Scale {
	return Scale{Items: 33000, OldItems: 500000, Users: 1000000, BidsPer: 10,
		Comments: 500000, Categories: 40, Regions: 62}
}

// TinyScale keeps unit tests fast.
func TinyScale() Scale {
	return Scale{Items: 40, OldItems: 60, Users: 120, BidsPer: 3,
		Comments: 50, Categories: 8, Regions: 6}
}

// SchemaSQL returns the DDL for the nine tables (§3.2) plus indexes. The
// items table carries the denormalized bid count and current maximum bid
// the paper calls out as a necessary optimization.
func SchemaSQL() []string {
	return []string{
		`CREATE TABLE categories (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name VARCHAR(50) NOT NULL)`,
		`CREATE TABLE regions (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name VARCHAR(50) NOT NULL)`,
		`CREATE TABLE users (
			id INT PRIMARY KEY AUTO_INCREMENT,
			fname VARCHAR(20),
			lname VARCHAR(20),
			nickname VARCHAR(24) NOT NULL,
			password VARCHAR(20),
			region_id INT,
			rating INT,
			balance FLOAT,
			creation INT)`,
		`CREATE UNIQUE INDEX idx_user_nick ON users (nickname)`,
		`CREATE INDEX idx_user_region ON users (region_id)`,
		`CREATE TABLE items (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name VARCHAR(60) NOT NULL,
			description TEXT,
			seller_id INT NOT NULL,
			category_id INT,
			region_id INT,
			init_price FLOAT,
			reserve FLOAT,
			buy_now FLOAT,
			nb_bids INT,
			max_bid FLOAT,
			start_date INT,
			end_date INT)`,
		`CREATE INDEX idx_item_cat ON items (category_id)`,
		`CREATE INDEX idx_item_region ON items (region_id)`,
		`CREATE INDEX idx_item_seller ON items (seller_id)`,
		`CREATE TABLE old_items (
			id INT PRIMARY KEY,
			name VARCHAR(60),
			seller_id INT,
			category_id INT,
			region_id INT,
			max_bid FLOAT,
			end_date INT)`,
		`CREATE INDEX idx_old_cat ON old_items (category_id)`,
		`CREATE TABLE bids (
			id INT PRIMARY KEY AUTO_INCREMENT,
			item_id INT NOT NULL,
			user_id INT NOT NULL,
			bid FLOAT,
			max_bid FLOAT,
			qty INT,
			bid_date INT)`,
		`CREATE INDEX idx_bid_item ON bids (item_id)`,
		`CREATE INDEX idx_bid_user ON bids (user_id)`,
		`CREATE TABLE buy_now (
			id INT PRIMARY KEY AUTO_INCREMENT,
			item_id INT NOT NULL,
			buyer_id INT NOT NULL,
			qty INT,
			bn_date INT)`,
		`CREATE INDEX idx_bn_buyer ON buy_now (buyer_id)`,
		`CREATE TABLE comments (
			id INT PRIMARY KEY AUTO_INCREMENT,
			from_user INT NOT NULL,
			to_user INT NOT NULL,
			item_id INT,
			rating INT,
			comment TEXT)`,
		`CREATE INDEX idx_comment_to ON comments (to_user)`,
		`CREATE TABLE ids (
			name VARCHAR(20),
			value INT)`,
	}
}

// Execer abstracts pooled and in-process statement execution. Exec ships
// SQL text; ExecCached is the prepared-statement fast path for statements
// repeated on every request (identical for in-process sessions, where the
// database's plan cache already deduplicates the parse).
type Execer interface {
	Exec(query string, args ...sqldb.Value) (*sqldb.Result, error)
	ExecCached(query string, args ...sqldb.Value) (*sqldb.Result, error)
}

var _ Execer = (*wire.Pool)(nil)
var _ Execer = (*wire.Conn)(nil)
var _ Execer = (*cluster.Client)(nil)
var _ Execer = (*cluster.Session)(nil)

// ShardBy is the benchmark's horizontal partitioning map
// (cluster.Config.ShardBy): the write-heavy auction tables partition by
// the key their hot queries pin on — an item's bids and buy-now
// purchases colocate with the item (strided AUTO_INCREMENT makes an
// item's id congruent to its shard, and bids/buy_now carry that id), and
// a user's feedback colocates by recipient. Everything else (users,
// categories, regions, old_items, the ids counter) replicates to every
// shard as global tables.
func ShardBy() map[string]string {
	return map[string]string{
		"items":    "id",
		"bids":     "item_id",
		"buy_now":  "item_id",
		"comments": "to_user",
	}
}

// CreateSchema applies the DDL.
func CreateSchema(db Execer) error {
	for _, q := range SchemaSQL() {
		if _, err := db.Exec(q); err != nil {
			return fmt.Errorf("auction: schema: %w", err)
		}
	}
	return nil
}

// Populate fills the database deterministically at the given scale.
func Populate(db Execer, sc Scale, seed int64) error {
	g := datagen.New(seed)
	for i := 0; i < sc.Categories; i++ {
		if _, err := db.Exec("INSERT INTO categories (name) VALUES (?)",
			sqldb.String(g.Name())); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Regions; i++ {
		if _, err := db.Exec("INSERT INTO regions (name) VALUES (?)",
			sqldb.String(g.Name())); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Users; i++ {
		nick := fmt.Sprintf("bidder%d", i+1)
		if _, err := db.Exec(
			`INSERT INTO users (fname, lname, nickname, password, region_id, rating, balance, creation)
			 VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			sqldb.String(g.Name()), sqldb.String(g.Name()), sqldb.String(nick),
			sqldb.String("pw"+nick), sqldb.Int(int64(1+g.Intn(sc.Regions))),
			sqldb.Int(int64(g.Intn(10))), sqldb.Float(g.Price(0, 500)),
			sqldb.Int(g.Date(12000, 900))); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Items; i++ {
		price := g.Price(1, 200)
		if _, err := db.Exec(
			`INSERT INTO items (name, description, seller_id, category_id, region_id,
				init_price, reserve, buy_now, nb_bids, max_bid, start_date, end_date)
			 VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
			sqldb.String(g.Sentence(3)), sqldb.String(g.Sentence(20)),
			sqldb.Int(int64(1+g.Intn(sc.Users))), sqldb.Int(int64(1+g.Intn(sc.Categories))),
			sqldb.Int(int64(1+g.Intn(sc.Regions))),
			sqldb.Float(price), sqldb.Float(price*1.2), sqldb.Float(price*2),
			sqldb.Int(0), sqldb.Float(price), sqldb.Int(12000), sqldb.Int(12007)); err != nil {
			return err
		}
	}
	// Bids over the live items, maintaining the denormalized counters.
	totalBids := sc.Items * sc.BidsPer
	for i := 0; i < totalBids; i++ {
		item := int64(1 + g.Intn(sc.Items))
		bid := g.Price(1, 400)
		if _, err := db.Exec(
			`INSERT INTO bids (item_id, user_id, bid, max_bid, qty, bid_date)
			 VALUES (?, ?, ?, ?, ?, ?)`,
			sqldb.Int(item), sqldb.Int(int64(1+g.Intn(sc.Users))),
			sqldb.Float(bid), sqldb.Float(bid*1.1), sqldb.Int(1),
			sqldb.Int(g.Date(12006, 6))); err != nil {
			return err
		}
		if _, err := db.Exec(
			"UPDATE items SET nb_bids = nb_bids + 1 WHERE id = ?",
			sqldb.Int(item)); err != nil {
			return err
		}
		if _, err := db.Exec(
			"UPDATE items SET max_bid = ? WHERE id = ? AND max_bid < ?",
			sqldb.Float(bid), sqldb.Int(item), sqldb.Float(bid)); err != nil {
			return err
		}
	}
	for i := 0; i < sc.OldItems; i++ {
		if _, err := db.Exec(
			`INSERT INTO old_items (id, name, seller_id, category_id, region_id, max_bid, end_date)
			 VALUES (?, ?, ?, ?, ?, ?, ?)`,
			sqldb.Int(int64(1000000+i)), sqldb.String(g.Sentence(3)),
			sqldb.Int(int64(1+g.Intn(sc.Users))), sqldb.Int(int64(1+g.Intn(sc.Categories))),
			sqldb.Int(int64(1+g.Intn(sc.Regions))), sqldb.Float(g.Price(1, 400)),
			sqldb.Int(g.Date(11999, 900))); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Comments; i++ {
		if _, err := db.Exec(
			`INSERT INTO comments (from_user, to_user, item_id, rating, comment)
			 VALUES (?, ?, ?, ?, ?)`,
			sqldb.Int(int64(1+g.Intn(sc.Users))), sqldb.Int(int64(1+g.Intn(sc.Users))),
			sqldb.Int(int64(1+g.Intn(sc.Items))), sqldb.Int(int64(g.Intn(6))),
			sqldb.String(g.Sentence(8))); err != nil {
			return err
		}
	}
	if _, err := db.Exec("INSERT INTO ids (name, value) VALUES ('item', ?)",
		sqldb.Int(int64(sc.Items+1))); err != nil {
		return err
	}
	return nil
}
