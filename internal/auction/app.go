package auction

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/httpd"
	"repro/internal/servlet"
	"repro/internal/sqldb"
)

// Config selects the locking discipline, as in the bookstore.
type Config struct {
	// Sync moves the short write transactions' locking into the engine.
	// §6.1 predicts (and the harness confirms) it makes no difference on
	// this benchmark: the queries are too short for database lock
	// contention to arise.
	Sync bool
}

// App is the hand-written-SQL auction implementation.
type App struct {
	sc  Scale
	cfg Config
}

// New creates the application.
func New(sc Scale, cfg Config) *App { return &App{sc: sc, cfg: cfg} }

// BasePath is the URL prefix of every auction interaction.
const BasePath = "/rubis/"

// Interactions lists the 26 interaction names in a stable order.
func Interactions() []string {
	return []string{
		"home", "browsecategories", "browseregions", "searchitemsincategory",
		"searchitemsinregion", "browsecategoriesinregion", "viewitem",
		"viewbidhistory", "viewuserinfo", "sellitemform", "registeritem",
		"registeruserform", "registeruser", "buynowauth", "buynow",
		"storebuynow", "putbidauth", "putbid", "storebid", "putcommentauth",
		"putcomment", "storecomment", "aboutmeauth", "aboutme", "login",
		"logout",
	}
}

// Register installs all interaction servlets.
func (a *App) Register(c *servlet.Container) {
	type h = func(*servlet.Context, *httpd.Request) (*httpd.Response, error)
	routes := map[string]h{
		"home":                     a.home,
		"browsecategories":         a.browseCategories,
		"browseregions":            a.browseRegions,
		"searchitemsincategory":    a.searchInCategory,
		"searchitemsinregion":      a.searchInRegion,
		"browsecategoriesinregion": a.browseCategoriesInRegion,
		"viewitem":                 a.viewItem,
		"viewbidhistory":           a.viewBidHistory,
		"viewuserinfo":             a.viewUserInfo,
		"sellitemform":             a.staticForm("Sell an item", "registeritem"),
		"registeritem":             a.registerItem,
		"registeruserform":         a.staticForm("Register", "registeruser"),
		"registeruser":             a.registerUser,
		"buynowauth":               a.staticForm("Buy Now: log in", "buynow"),
		"buynow":                   a.buyNowPage,
		"storebuynow":              a.storeBuyNow,
		"putbidauth":               a.staticForm("Bid: log in", "putbid"),
		"putbid":                   a.putBid,
		"storebid":                 a.storeBid,
		"putcommentauth":           a.staticForm("Comment: log in", "putcomment"),
		"putcomment":               a.putComment,
		"storecomment":             a.storeComment,
		"aboutmeauth":              a.staticForm("About Me: log in", "aboutme"),
		"aboutme":                  a.aboutMe,
		"login":                    a.login,
		"logout":                   a.logout,
	}
	for name, fn := range routes {
		c.Register(BasePath+name, servlet.Func(fn))
	}
}

// withLocks mirrors the bookstore helper: engine locks with sync, a real
// database transaction over the write-intent tables without — the short
// write transactions of the benchmark (storeBid and friends) commit or roll
// back atomically on every replica. Read-only sets run without a bracket.
func (a *App) withLocks(ctx *servlet.Context, set []servlet.TableLock, fn func(ex Execer) error) error {
	if ctx.DB == nil {
		return servlet.ErrNoDatabase
	}
	if a.cfg.Sync {
		release := ctx.Locks.Acquire(set)
		defer release()
		return fn(ctx.DB)
	}
	writes := servlet.WriteTables(set)
	if len(writes) == 0 {
		return fn(ctx.DB)
	}
	return ctx.Tx(writes, func(tx *cluster.Session) error { return fn(tx) })
}

// ---- row shapes and rendering ----

// ItemRow is one listing entry.
type ItemRow struct {
	ID      int64
	Name    string
	MaxBid  float64
	NBids   int64
	EndDate int64
}

func page(title string, body func(b *strings.Builder)) *httpd.Response {
	resp := httpd.NewResponse()
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body><h1>%s</h1>\n", title, title)
	b.WriteString(`<img src="/img/logo.gif">` + "\n")
	body(&b)
	b.WriteString("</body></html>\n")
	resp.WriteString(b.String())
	return resp
}

func renderListing(b *strings.Builder, items []ItemRow) {
	b.WriteString("<table>\n")
	for _, it := range items {
		fmt.Fprintf(b,
			`<tr><td><img src="/img/item_%d.gif"></td><td><a href="%sviewitem?item=%d">%s</a></td><td>$%.2f</td><td>%d bids</td></tr>`+"\n",
			it.ID%64, BasePath, it.ID, it.Name, it.MaxBid, it.NBids)
	}
	b.WriteString("</table>\n")
}

func itemRows(res *sqldb.Result) []ItemRow {
	out := make([]ItemRow, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, ItemRow{ID: r[0].AsInt(), Name: r[1].AsString(),
			MaxBid: r[2].AsFloat(), NBids: r[3].AsInt(), EndDate: r[4].AsInt()})
	}
	return out
}

func intParam(req *httpd.Request, key string, def int64) int64 {
	v := req.Form().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def
	}
	return n
}

const listSQL = `SELECT id, name, max_bid, nb_bids, end_date FROM items WHERE %s = ? ORDER BY end_date LIMIT 20`

// ---- the twenty-six interactions ----

func (a *App) home(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	res, err := ctx.DB.ExecCached("SELECT COUNT(*) FROM items")
	if err != nil {
		return nil, err
	}
	n := res.Rows[0][0].AsInt()
	return page("RUBiS Auction", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>%d items for sale.</p>\n", n)
		fmt.Fprintf(b, `<p><a href="%sbrowsecategories">Browse categories</a> <a href="%sbrowseregions">Browse regions</a></p>`+"\n", BasePath, BasePath)
	}), nil
}

func (a *App) browseCategories(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	res, err := ctx.DB.ExecCached("SELECT id, name FROM categories ORDER BY id")
	if err != nil {
		return nil, err
	}
	return page("Categories", func(b *strings.Builder) {
		for _, r := range res.Rows {
			fmt.Fprintf(b, `<p><a href="%ssearchitemsincategory?category=%d">%s</a></p>`+"\n",
				BasePath, r[0].AsInt(), r[1].AsString())
		}
	}), nil
}

func (a *App) browseRegions(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	res, err := ctx.DB.ExecCached("SELECT id, name FROM regions ORDER BY id")
	if err != nil {
		return nil, err
	}
	return page("Regions", func(b *strings.Builder) {
		for _, r := range res.Rows {
			fmt.Fprintf(b, `<p><a href="%sbrowsecategoriesinregion?region=%d">%s</a></p>`+"\n",
				BasePath, r[0].AsInt(), r[1].AsString())
		}
	}), nil
}

func (a *App) browseCategoriesInRegion(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	region := intParam(req, "region", 1)
	res, err := ctx.DB.ExecCached("SELECT id, name FROM categories ORDER BY id")
	if err != nil {
		return nil, err
	}
	return page("Categories in region", func(b *strings.Builder) {
		for _, r := range res.Rows {
			fmt.Fprintf(b, `<p><a href="%ssearchitemsinregion?region=%d&category=%d">%s</a></p>`+"\n",
				BasePath, region, r[0].AsInt(), r[1].AsString())
		}
	}), nil
}

func (a *App) searchInCategory(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	cat := intParam(req, "category", 1)
	res, err := ctx.DB.ExecCached(fmt.Sprintf(listSQL, "category_id"), sqldb.Int(cat))
	if err != nil {
		return nil, err
	}
	items := itemRows(res)
	return page("Items in category", func(b *strings.Builder) { renderListing(b, items) }), nil
}

func (a *App) searchInRegion(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	region := intParam(req, "region", 1)
	cat := intParam(req, "category", 1)
	res, err := ctx.DB.ExecCached(
		`SELECT id, name, max_bid, nb_bids, end_date FROM items
		 WHERE region_id = ? AND category_id = ? ORDER BY end_date LIMIT 20`,
		sqldb.Int(region), sqldb.Int(cat))
	if err != nil {
		return nil, err
	}
	items := itemRows(res)
	return page("Items in region", func(b *strings.Builder) { renderListing(b, items) }), nil
}

func (a *App) viewItem(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	id := intParam(req, "item", 1)
	res, err := ctx.DB.ExecCached(
		`SELECT i.name, i.description, i.max_bid, i.nb_bids, i.buy_now, u.nickname
		 FROM items i JOIN users u ON u.id = i.seller_id WHERE i.id = ?`, sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return httpd.Error(404, "no such item"), nil
	}
	r := res.Rows[0]
	return page("Item: "+r[0].AsString(), func(b *strings.Builder) {
		fmt.Fprintf(b, `<img src="/img/item_%d.gif"><p>%s</p><p>Current bid $%.2f (%d bids), buy now $%.2f, seller %s</p>`+"\n",
			id%64, r[1].AsString(), r[2].AsFloat(), r[3].AsInt(), r[4].AsFloat(), r[5].AsString())
		fmt.Fprintf(b, `<p><a href="%sputbidauth?item=%d">Bid</a> <a href="%sviewbidhistory?item=%d">History</a></p>`+"\n",
			BasePath, id, BasePath, id)
	}), nil
}

func (a *App) viewBidHistory(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	id := intParam(req, "item", 1)
	res, err := ctx.DB.ExecCached(
		`SELECT b.bid, b.bid_date, u.nickname FROM bids b
		 JOIN users u ON u.id = b.user_id
		 WHERE b.item_id = ? ORDER BY b.bid DESC LIMIT 20`, sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	return page("Bid history", func(b *strings.Builder) {
		for _, r := range res.Rows {
			fmt.Fprintf(b, "<p>$%.2f by %s</p>\n", r[0].AsFloat(), r[2].AsString())
		}
	}), nil
}

func (a *App) viewUserInfo(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	id := intParam(req, "user", 1)
	ures, err := ctx.DB.ExecCached("SELECT nickname, rating, creation FROM users WHERE id = ?", sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	if len(ures.Rows) == 0 {
		return httpd.Error(404, "no such user"), nil
	}
	cres, err := ctx.DB.ExecCached(
		`SELECT c.rating, c.comment, u.nickname FROM comments c
		 JOIN users u ON u.id = c.from_user
		 WHERE c.to_user = ? ORDER BY c.id DESC LIMIT 10`, sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	u := ures.Rows[0]
	return page("User "+u[0].AsString(), func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Rating %d, member since %d</p>\n", u[1].AsInt(), u[2].AsInt())
		for _, r := range cres.Rows {
			fmt.Fprintf(b, "<p>[%d] %s — %s</p>\n", r[0].AsInt(), r[1].AsString(), r[2].AsString())
		}
	}), nil
}

// staticForm renders the login/registration forms that involve no database
// access.
func (a *App) staticForm(title, action string) func(*servlet.Context, *httpd.Request) (*httpd.Response, error) {
	return func(_ *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
		passthrough := ""
		for _, k := range []string{"item", "user", "to"} {
			if v := req.Form().Get(k); v != "" {
				passthrough += fmt.Sprintf(`<input type="hidden" name=%q value=%q>`, k, v)
			}
		}
		return page(title, func(b *strings.Builder) {
			fmt.Fprintf(b, `<form action="%s%s">%s<input name="nickname"><input name="password" type="password"><input type="submit"></form>`+"\n",
				BasePath, action, passthrough)
		}), nil
	}
}

// registerItem (write): a seller lists a new item.
func (a *App) registerItem(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	f := req.Form()
	name := f.Get("name")
	if name == "" {
		name = "listed item"
	}
	seller := intParam(req, "seller", 1)
	cat := intParam(req, "category", 1)
	region := intParam(req, "region", 1)
	price := float64(intParam(req, "price", 10))
	var itemID int64
	err := a.withLocks(ctx,
		[]servlet.TableLock{{Table: "items", Write: true}, {Table: "users"}},
		func(ex Execer) error {
			// Sellers pay a listing fee (§3.2): verify the account exists.
			if _, err := ex.ExecCached("SELECT balance FROM users WHERE id = ?", sqldb.Int(seller)); err != nil {
				return err
			}
			res, err := ex.ExecCached(
				`INSERT INTO items (name, description, seller_id, category_id, region_id,
					init_price, reserve, buy_now, nb_bids, max_bid, start_date, end_date)
				 VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0, ?, 12000, 12007)`,
				sqldb.String(name), sqldb.String("newly listed"), sqldb.Int(seller),
				sqldb.Int(cat), sqldb.Int(region), sqldb.Float(price),
				sqldb.Float(price*1.2), sqldb.Float(price*2), sqldb.Float(price))
			if err != nil {
				return err
			}
			itemID = res.LastInsertID
			return nil
		})
	if err != nil {
		return nil, err
	}
	return page("Item listed", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Item #%d on sale.</p>\n", itemID)
	}), nil
}

// registerUser (write).
func (a *App) registerUser(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	f := req.Form()
	nick := f.Get("nickname")
	if nick == "" {
		nick = fmt.Sprintf("nick%d", intParam(req, "seed", 1))
	}
	var uid int64
	err := a.withLocks(ctx, []servlet.TableLock{{Table: "users", Write: true}},
		func(ex Execer) error {
			res, err := ex.ExecCached(
				`INSERT INTO users (fname, lname, nickname, password, region_id, rating, balance, creation)
				 VALUES (?, ?, ?, ?, ?, 0, 0, 12000)`,
				sqldb.String(f.Get("fname")), sqldb.String(f.Get("lname")),
				sqldb.String(nick), sqldb.String(f.Get("password")),
				sqldb.Int(intParam(req, "region", 1)))
			if err != nil {
				return err
			}
			uid = res.LastInsertID
			return nil
		})
	if err != nil {
		return nil, err
	}
	return page("Registered", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>User #%d (%s) created.</p>\n", uid, nick)
	}), nil
}

// buyNowPage (read): the pre-purchase view.
func (a *App) buyNowPage(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	return a.viewItem(ctx, req)
}

// storeBuyNow (write): direct purchase.
func (a *App) storeBuyNow(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	item := intParam(req, "item", 1)
	buyer := intParam(req, "user", 1)
	qty := intParam(req, "qty", 1)
	err := a.withLocks(ctx,
		[]servlet.TableLock{{Table: "buy_now", Write: true}, {Table: "items", Write: true}},
		func(ex Execer) error {
			if _, err := ex.ExecCached("SELECT buy_now FROM items WHERE id = ?", sqldb.Int(item)); err != nil {
				return err
			}
			if _, err := ex.ExecCached(
				"INSERT INTO buy_now (item_id, buyer_id, qty, bn_date) VALUES (?, ?, ?, 12005)",
				sqldb.Int(item), sqldb.Int(buyer), sqldb.Int(qty)); err != nil {
				return err
			}
			_, err := ex.ExecCached("UPDATE items SET end_date = 12005 WHERE id = ?", sqldb.Int(item))
			return err
		})
	if err != nil {
		return nil, err
	}
	return page("Purchase complete", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Item %d bought by user %d.</p>\n", item, buyer)
	}), nil
}

// putBid (read): item + current bids before bidding.
func (a *App) putBid(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	return a.viewItem(ctx, req)
}

// storeBid (write): the canonical short write transaction of the
// benchmark — insert the bid and maintain the denormalized counters.
func (a *App) storeBid(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	item := intParam(req, "item", 1)
	user := intParam(req, "user", 1)
	bid := float64(intParam(req, "bid", 0))
	err := a.withLocks(ctx,
		[]servlet.TableLock{{Table: "bids", Write: true}, {Table: "items", Write: true}},
		func(ex Execer) error {
			res, err := ex.ExecCached("SELECT max_bid FROM items WHERE id = ?", sqldb.Int(item))
			if err != nil {
				return err
			}
			if len(res.Rows) == 0 {
				return fmt.Errorf("auction: no item %d", item)
			}
			cur := res.Rows[0][0].AsFloat()
			if bid <= cur {
				bid = cur + 1
			}
			if _, err := ex.ExecCached(
				`INSERT INTO bids (item_id, user_id, bid, max_bid, qty, bid_date)
				 VALUES (?, ?, ?, ?, 1, 12006)`,
				sqldb.Int(item), sqldb.Int(user), sqldb.Float(bid), sqldb.Float(bid*1.1)); err != nil {
				return err
			}
			_, err = ex.ExecCached(
				"UPDATE items SET nb_bids = nb_bids + 1, max_bid = ? WHERE id = ?",
				sqldb.Float(bid), sqldb.Int(item))
			return err
		})
	if err != nil {
		return nil, err
	}
	return page("Bid stored", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Bid $%.2f on item %d by user %d.</p>\n", bid, item, user)
	}), nil
}

// putComment (read): the target user's info before commenting.
func (a *App) putComment(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	return a.viewUserInfo(ctx, req)
}

// storeComment (write): insert the comment and update the rating.
func (a *App) storeComment(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	from := intParam(req, "user", 1)
	to := intParam(req, "to", 1)
	rating := intParam(req, "rating", 3)
	err := a.withLocks(ctx,
		[]servlet.TableLock{{Table: "comments", Write: true}, {Table: "users", Write: true}},
		func(ex Execer) error {
			if _, err := ex.ExecCached(
				`INSERT INTO comments (from_user, to_user, item_id, rating, comment)
				 VALUES (?, ?, ?, ?, ?)`,
				sqldb.Int(from), sqldb.Int(to), sqldb.Int(intParam(req, "item", 1)),
				sqldb.Int(rating), sqldb.String(req.Form().Get("comment"))); err != nil {
				return err
			}
			_, err := ex.ExecCached("UPDATE users SET rating = rating + ? WHERE id = ?",
				sqldb.Int(rating-2), sqldb.Int(to))
			return err
		})
	if err != nil {
		return nil, err
	}
	return page("Comment stored", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Comment from %d to %d.</p>\n", from, to)
	}), nil
}

// aboutMe (read): the myEbay page — the benchmark's heaviest read.
func (a *App) aboutMe(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	uid := intParam(req, "user", 1)
	ures, err := ctx.DB.ExecCached("SELECT nickname, rating FROM users WHERE id = ?", sqldb.Int(uid))
	if err != nil {
		return nil, err
	}
	if len(ures.Rows) == 0 {
		return httpd.Error(404, "no such user"), nil
	}
	bres, err := ctx.DB.ExecCached(
		`SELECT b.bid, i.name FROM bids b JOIN items i ON i.id = b.item_id
		 WHERE b.user_id = ? ORDER BY b.id DESC LIMIT 10`, sqldb.Int(uid))
	if err != nil {
		return nil, err
	}
	sres, err := ctx.DB.ExecCached(
		"SELECT id, name, max_bid, nb_bids, end_date FROM items WHERE seller_id = ? LIMIT 10",
		sqldb.Int(uid))
	if err != nil {
		return nil, err
	}
	bnres, err := ctx.DB.ExecCached(
		"SELECT item_id, qty FROM buy_now WHERE buyer_id = ? LIMIT 10", sqldb.Int(uid))
	if err != nil {
		return nil, err
	}
	selling := itemRows(sres)
	u := ures.Rows[0]
	return page("About "+u[0].AsString(), func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Rating %d</p><h2>My bids</h2>\n", u[1].AsInt())
		for _, r := range bres.Rows {
			fmt.Fprintf(b, "<p>$%.2f on %s</p>\n", r[0].AsFloat(), r[1].AsString())
		}
		b.WriteString("<h2>Selling</h2>\n")
		renderListing(b, selling)
		fmt.Fprintf(b, "<p>%d buy-now purchases</p>\n", len(bnres.Rows))
	}), nil
}

// login (read): nickname/password check.
func (a *App) login(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	nick := req.Form().Get("nickname")
	res, err := ctx.DB.ExecCached("SELECT id, password FROM users WHERE nickname = ?", sqldb.String(nick))
	if err != nil {
		return nil, err
	}
	ok := len(res.Rows) > 0 && res.Rows[0][1].AsString() == req.Form().Get("password")
	return page("Login", func(b *strings.Builder) {
		if ok {
			fmt.Fprintf(b, "<p>Welcome user #%d</p>\n", res.Rows[0][0].AsInt())
		} else {
			b.WriteString("<p>Invalid credentials.</p>\n")
		}
	}), nil
}

// logout involves no database access.
func (a *App) logout(*servlet.Context, *httpd.Request) (*httpd.Response, error) {
	return page("Logged out", func(b *strings.Builder) {
		b.WriteString("<p>Goodbye.</p>\n")
	}), nil
}
