package lb

import (
	"fmt"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpd"
)

// countingApp is a stub app tier: every render bumps a counter into the
// body, and optionally stamps the given epoch header.
type countingApp struct {
	renders atomic.Int64
	epoch   atomic.Uint64 // stamped as X-Content-Epoch when nonzero
	status  int
	cookie  string // Set-Cookie value to attach, if any
}

func (a *countingApp) ServeHTTP(req *httpd.Request) (*httpd.Response, error) {
	n := a.renders.Add(1)
	status := a.status
	if status == 0 {
		status = 200
	}
	resp := &httpd.Response{
		Status: status,
		Header: httpd.Header{},
		Body:   []byte(fmt.Sprintf("render %d of %s", n, req.Path)),
	}
	if e := a.epoch.Load(); e != 0 {
		resp.Header.Set(ContentEpochHeader, fmt.Sprint(e))
	}
	if a.cookie != "" {
		resp.Header.Set("Set-Cookie", a.cookie)
	}
	return resp, nil
}

func getPage(t *testing.T, p *PageCache, path string, hdr httpd.Header) *httpd.Response {
	t.Helper()
	if hdr == nil {
		hdr = httpd.Header{}
	}
	resp, err := p.ServeHTTP(&httpd.Request{Method: "GET", Path: path, Header: hdr})
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

// TestPageCacheHit: the second anonymous GET of a page replays the stored
// response without touching the app tier, marked X-Cache: HIT.
func TestPageCacheHit(t *testing.T) {
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})

	first := getPage(t, p, "/tpcw/home", nil)
	second := getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 1 {
		t.Fatalf("app rendered %d times, want 1", app.renders.Load())
	}
	if string(second.Body) != string(first.Body) {
		t.Fatalf("cached body %q != original %q", second.Body, first.Body)
	}
	if second.Header.Get("X-Cache") != "HIT" {
		t.Fatal("cache hit not marked X-Cache: HIT")
	}
	if first.Header.Get("X-Cache") == "HIT" {
		t.Fatal("fill response wrongly marked as a hit")
	}
	// Distinct pages are distinct entries.
	getPage(t, p, "/tpcw/search", nil)
	if app.renders.Load() != 2 {
		t.Fatalf("app rendered %d times after a different page, want 2", app.renders.Load())
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
}

// TestPageCacheSessionBypass: a request carrying the session cookie must
// not be served from — or fill — the cache.
func TestPageCacheSessionBypass(t *testing.T) {
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})

	hdr := httpd.Header{}
	hdr.Set("Cookie", "JSESSIONID=abc.a0")
	p.ServeHTTP(&httpd.Request{Method: "GET", Path: "/tpcw/cart", Header: hdr})
	p.ServeHTTP(&httpd.Request{Method: "GET", Path: "/tpcw/cart", Header: hdr})
	if app.renders.Load() != 2 {
		t.Fatalf("session requests rendered %d times, want 2 (no caching)", app.renders.Load())
	}
	st := p.Stats()
	if st.Bypasses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 bypasses / 0 entries", st)
	}
	// An anonymous GET after the session traffic still misses: nothing
	// was stored for it.
	getPage(t, p, "/tpcw/cart", nil)
	if app.renders.Load() != 3 {
		t.Fatal("anonymous GET was served a session-rendered page")
	}
}

// TestPageCachePOSTBypass: non-GET requests are never cached.
func TestPageCachePOSTBypass(t *testing.T) {
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})
	req := &httpd.Request{Method: "POST", Path: "/tpcw/buy", Header: httpd.Header{}}
	p.ServeHTTP(req)
	p.ServeHTTP(req)
	if app.renders.Load() != 2 {
		t.Fatalf("POSTs rendered %d times, want 2", app.renders.Load())
	}
	if st := p.Stats(); st.Bypasses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 bypasses / 0 entries", st)
	}
}

// TestPageCacheSetCookieNotStored: a response that establishes a session
// must never be replayed to another client.
func TestPageCacheSetCookieNotStored(t *testing.T) {
	app := &countingApp{cookie: "JSESSIONID=new.a0"}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})
	getPage(t, p, "/tpcw/home", nil)
	getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 2 {
		t.Fatal("Set-Cookie response was cached")
	}
}

// TestPageCacheErrorNotStored: non-200 responses are not cached.
func TestPageCacheErrorNotStored(t *testing.T) {
	app := &countingApp{status: 500}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})
	getPage(t, p, "/tpcw/home", nil)
	getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 2 {
		t.Fatal("error response was cached")
	}
}

// TestPageCacheEpochInvalidation: advancing the content epoch — via the
// in-process reader or the response header — invalidates every entry.
func TestPageCacheEpochInvalidation(t *testing.T) {
	var epoch atomic.Uint64
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{
		MaxEntries: 8, TTL: time.Minute,
		Epoch: epoch.Load,
	})

	getPage(t, p, "/tpcw/best", nil)
	getPage(t, p, "/tpcw/best", nil)
	if app.renders.Load() != 1 {
		t.Fatal("no hit before the epoch moved")
	}

	epoch.Add(1) // a commit landed somewhere in the database tier
	resp := getPage(t, p, "/tpcw/best", nil)
	if app.renders.Load() != 2 {
		t.Fatal("stale page served after the epoch moved")
	}
	if resp.Header.Get("X-Cache") == "HIT" {
		t.Fatal("post-commit fill marked as a hit")
	}
	if st := p.Stats(); st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation", st)
	}
	// The refilled entry is fresh under the new epoch.
	getPage(t, p, "/tpcw/best", nil)
	if app.renders.Load() != 2 {
		t.Fatal("refilled entry did not hit")
	}
}

// TestPageCacheHeaderEpoch: in a cross-process deployment the epoch
// arrives only as the X-Content-Epoch response header; a response stamped
// with a newer epoch invalidates pages cached under the older one.
func TestPageCacheHeaderEpoch(t *testing.T) {
	app := &countingApp{}
	app.epoch.Store(1)
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})

	getPage(t, p, "/tpcw/home", nil)
	getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 1 {
		t.Fatal("no hit under a steady header epoch")
	}

	// A write committed: the app tier's next response carries epoch 2.
	// Session traffic (a bypass) is enough to deliver the signal.
	app.epoch.Store(2)
	hdr := httpd.Header{}
	hdr.Set("Cookie", "JSESSIONID=buyer.a0")
	p.ServeHTTP(&httpd.Request{Method: "GET", Path: "/tpcw/cart", Header: hdr})

	getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 3 {
		t.Fatal("page cached at epoch 1 served after epoch 2 was observed")
	}
}

// TestPageCacheTTL: with no epoch signal at all, the TTL backstop expires
// entries.
func TestPageCacheTTL(t *testing.T) {
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: 10 * time.Millisecond})
	getPage(t, p, "/tpcw/home", nil)
	getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 1 {
		t.Fatal("no hit inside the TTL")
	}
	time.Sleep(20 * time.Millisecond)
	getPage(t, p, "/tpcw/home", nil)
	if app.renders.Load() != 2 {
		t.Fatal("expired entry still served")
	}
}

// TestPageCacheLRUEviction: the cache is bounded; filling past MaxEntries
// evicts the least recently used page.
func TestPageCacheLRUEviction(t *testing.T) {
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 2, TTL: time.Minute})
	getPage(t, p, "/a", nil)
	getPage(t, p, "/b", nil)
	getPage(t, p, "/a", nil) // touch /a: /b becomes LRU
	getPage(t, p, "/c", nil) // evicts /b
	if st := p.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	renders := app.renders.Load()
	getPage(t, p, "/a", nil)
	if app.renders.Load() != renders {
		t.Fatal("/a was evicted instead of LRU /b")
	}
	getPage(t, p, "/b", nil)
	if app.renders.Load() != renders+1 {
		t.Fatal("/b survived eviction")
	}
}

// TestPageCacheKeyCanonicalization: the cache key is the parsed path plus
// the query re-encoded in sorted order, never the raw request target —
// "?b=2&a=1" and "?a=1&b=2" are the same page and must share one entry.
func TestPageCacheKeyCanonicalization(t *testing.T) {
	app := &countingApp{}
	p := NewPageCache(app, PageCacheConfig{MaxEntries: 8, TTL: time.Minute})
	q := url.Values{"a": {"1"}, "b": {"2"}}
	for i, raw := range []string{"/tpcw/search?b=2&a=1", "/tpcw/search?a=1&b=2", "/tpcw/search?b=%32&a=1"} {
		resp, err := p.ServeHTTP(&httpd.Request{
			Method:  "GET",
			Path:    "/tpcw/search",
			RawPath: raw,
			Query:   q,
			Header:  httpd.Header{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && resp.Header.Get("X-Cache") != "HIT" {
			t.Fatalf("request %d (%s) missed the cache", i, raw)
		}
	}
	if n := app.renders.Load(); n != 1 {
		t.Fatalf("app rendered %d times, want 1 (cache fragmented by raw target)", n)
	}
}
