// HTTP page cache: the level-2 half of the caching tier (DESIGN.md §10).
//
// Dynamic pages on the browse-heavy mixes are regenerated for every
// request even though nothing changed between two requests — the paper's
// whole cost model is the price of that regeneration across the web, app
// and database tiers. The page cache short-circuits it at the edge: a
// session-less GET's full response is kept and replayed until either its
// TTL lapses or the database content epoch moves.
//
// Two freshness signals compose:
//   - The content epoch — the cluster-wide committed-write counter
//     (cluster.Client.ContentEpoch). In process it is read directly via
//     Config.Epoch; across processes the app tier republishes it on every
//     response as the X-Content-Epoch header, captured BEFORE the page
//     rendered (so the tag can only understate the data's freshness, never
//     overstate it — the conservative direction). The cache tracks the
//     maximum epoch it has seen, and an entry is served only while its
//     fill-time epoch still equals the current one: any commit anywhere in
//     the database tier invalidates every cached page at once. Pages are
//     whole-catalog aggregates (best sellers, search results), so the
//     blunt signal is the honest one.
//   - A TTL backstop (default 2s) for deployments where no epoch reaches
//     the cache at all.
//
// Only anonymous traffic is cacheable: non-GET requests and requests
// carrying a session cookie bypass the cache entirely, and responses that
// set a cookie, fail, or carry a non-200 status are never stored — a page
// rendered for a session could embed cart or identity state.
package lb

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpd"
)

// ContentEpochHeader carries the app tier's pre-render content epoch on
// every response (set by internal/servlet; see cluster.Client.ContentEpoch).
const ContentEpochHeader = "X-Content-Epoch"

// DefaultPageTTL is the freshness backstop when no content epoch reaches
// the cache: long enough to absorb a burst of identical browse requests,
// short enough that a human reloading sees fresh data.
const DefaultPageTTL = 2 * time.Second

// PageCacheConfig configures a PageCache.
type PageCacheConfig struct {
	// MaxEntries bounds the cache (required > 0).
	MaxEntries int
	// TTL is the per-entry freshness backstop (default DefaultPageTTL).
	TTL time.Duration
	// Epoch optionally reads the database content epoch in process
	// (cluster.Client.ContentEpoch). When nil the cache relies on the
	// X-Content-Epoch response header, falling back to TTL-only freshness
	// if the app tier never sends one.
	Epoch func() uint64
	// CookieName is the session cookie whose presence marks a request as
	// session-bound and uncacheable (default JSESSIONID).
	CookieName string
}

// PageCacheStats is the cache's observability surface.
type PageCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Bypasses      int64 `json:"bypasses"`
	Entries       int   `json:"entries"`
}

type pageEntry struct {
	key     string
	resp    *httpd.Response
	epoch   uint64
	expires time.Time
}

// PageCache is a bounded LRU of whole HTTP responses wrapped around a
// handler. Safe for concurrent use.
type PageCache struct {
	next   httpd.Handler
	max    int
	ttl    time.Duration
	epoch  func() uint64
	cookie string

	// headerEpoch is the maximum X-Content-Epoch observed on any response —
	// the cross-process view of the database's committed-write counter.
	headerEpoch atomic.Uint64

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
	bypasses      atomic.Int64
}

// NewPageCache wraps next with a page cache.
func NewPageCache(next httpd.Handler, cfg PageCacheConfig) *PageCache {
	if cfg.MaxEntries <= 0 {
		panic("lb: PageCacheConfig.MaxEntries must be positive")
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = DefaultPageTTL
	}
	cookie := cfg.CookieName
	if cookie == "" {
		cookie = "JSESSIONID"
	}
	return &PageCache{
		next:   next,
		max:    cfg.MaxEntries,
		ttl:    ttl,
		epoch:  cfg.Epoch,
		cookie: cookie,
		ll:     list.New(),
		byKey:  make(map[string]*list.Element),
	}
}

// Stats snapshots the counters.
func (p *PageCache) Stats() PageCacheStats {
	p.mu.Lock()
	n := p.ll.Len()
	p.mu.Unlock()
	return PageCacheStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Invalidations: p.invalidations.Load(),
		Bypasses:      p.bypasses.Load(),
		Entries:       n,
	}
}

// pageKey identifies a cacheable page: method plus the parsed path and the
// query re-encoded in sorted-key order. The request line's raw target is
// deliberately NOT used — "/s?a=1&b=2" and "/s?b=2&a=1" (and two
// percent-encodings of the same value) are the same page, and keying on the
// raw bytes would both fragment the cache and let an attacker mint
// unbounded distinct keys for one page by shuffling parameters.
func pageKey(req *httpd.Request) string {
	target := req.Path
	if len(req.Query) > 0 {
		target += "?" + req.Query.Encode()
	}
	return req.Method + " " + target
}

// currentEpoch is the freshest content-epoch view available: the direct
// in-process reading when configured, never behind the maximum seen on
// response headers.
func (p *PageCache) currentEpoch() uint64 {
	e := p.headerEpoch.Load()
	if p.epoch != nil {
		if v := p.epoch(); v > e {
			e = v
		}
	}
	return e
}

// observe folds a response's X-Content-Epoch into the max-seen tracker and
// returns its value (ok reports presence). Runs on every forwarded
// response, bypasses included, so session traffic keeps the epoch fresh
// even when no cacheable request has passed recently.
func (p *PageCache) observe(resp *httpd.Response) (uint64, bool) {
	v := resp.Header.Get(ContentEpochHeader)
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, false
	}
	for {
		cur := p.headerEpoch.Load()
		if n <= cur || p.headerEpoch.CompareAndSwap(cur, n) {
			return n, true
		}
	}
}

// ServeHTTP serves a validated cached page, or forwards and fills.
func (p *PageCache) ServeHTTP(req *httpd.Request) (*httpd.Response, error) {
	if req.Method != "GET" || httpd.CookieValue(req.Header.Get("Cookie"), p.cookie) != "" {
		p.bypasses.Add(1)
		return p.forward(req)
	}
	key := pageKey(req)
	if resp, ok := p.get(key, time.Now()); ok {
		return resp, nil
	}
	// The epoch is captured before the forward: a commit racing the render
	// lands on top of this value and the freshly stored entry validates as
	// stale — conservative in the only safe direction.
	e0 := p.currentEpoch()
	resp, err := p.next.ServeHTTP(req)
	if resp == nil || err != nil {
		return resp, err
	}
	if ep, hasHeader := p.observe(resp); hasHeader {
		// The app's own pre-render capture is the authoritative tag: the
		// page reflects every commit up to ep, and any commit after the
		// capture advances the observed epoch past it. When ep is older
		// than our pre-forward view the entry is born stale — conservative
		// in the only safe direction.
		e0 = ep
	}
	if resp.Status == 200 && resp.Header.Get("Set-Cookie") == "" {
		p.put(key, resp, e0, time.Now().Add(p.ttl))
	}
	return resp, err
}

// forward proxies one uncacheable request, still observing the response's
// epoch header.
func (p *PageCache) forward(req *httpd.Request) (*httpd.Response, error) {
	resp, err := p.next.ServeHTTP(req)
	if resp != nil {
		p.observe(resp)
	}
	return resp, err
}

// get returns a copy of the cached page when it is still fresh by both
// signals; a stale entry is removed (per-entry invalidation).
func (p *PageCache) get(key string, now time.Time) (*httpd.Response, bool) {
	cur := p.currentEpoch()
	p.mu.Lock()
	el, ok := p.byKey[key]
	if !ok {
		p.mu.Unlock()
		p.misses.Add(1)
		return nil, false
	}
	e := el.Value.(*pageEntry)
	if now.After(e.expires) || e.epoch != cur {
		p.ll.Remove(el)
		delete(p.byKey, key)
		p.mu.Unlock()
		p.invalidations.Add(1)
		p.misses.Add(1)
		return nil, false
	}
	p.ll.MoveToFront(el)
	resp := copyResponse(e.resp)
	p.mu.Unlock()
	p.hits.Add(1)
	resp.Header.Set("X-Cache", "HIT")
	return resp, true
}

// put stores a private copy of the response (the server layer may still
// decorate the original's headers while writing it out), evicting the LRU
// entry at capacity. Serving copies again, so the entry stays pristine.
func (p *PageCache) put(key string, resp *httpd.Response, epoch uint64, expires time.Time) {
	e := &pageEntry{key: key, resp: copyResponse(resp), epoch: epoch, expires: expires}
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		el.Value = e
		p.ll.MoveToFront(el)
		return
	}
	for p.ll.Len() >= p.max {
		back := p.ll.Back()
		p.ll.Remove(back)
		delete(p.byKey, back.Value.(*pageEntry).key)
	}
	p.byKey[key] = p.ll.PushFront(e)
}

// copyResponse clones status and headers; the body bytes are shared — a
// completed response's body is never appended to again.
func copyResponse(r *httpd.Response) *httpd.Response {
	h := make(httpd.Header, len(r.Header)+1)
	for k, v := range r.Header {
		h[k] = v
	}
	return &httpd.Response{Status: r.Status, Header: h, Body: r.Body}
}
