package lb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpd"
)

// stubBackend is a controllable handler: it counts calls and can be told
// to fail (transport-level) or block.
type stubBackend struct {
	calls atomic.Int64
	fail  atomic.Bool
	gate  chan struct{} // non-nil: Service blocks until the gate closes
}

func (s *stubBackend) ServeHTTP(req *httpd.Request) (*httpd.Response, error) {
	s.calls.Add(1)
	if s.gate != nil {
		<-s.gate
	}
	if s.fail.Load() {
		return nil, errors.New("dial refused")
	}
	resp := httpd.NewResponse()
	resp.Body = []byte("ok")
	return resp, nil
}

func newBalancer(t *testing.T, stubs ...*stubBackend) *Balancer {
	t.Helper()
	var backends []Backend
	for i, s := range stubs {
		backends = append(backends, Backend{ID: fmt.Sprintf("a%d", i), Handler: s})
	}
	return New(Config{Backends: backends, RetryAfter: 50 * time.Millisecond})
}

func reqWithCookie(id string) *httpd.Request {
	req := &httpd.Request{Method: "GET", Path: "/x", Header: httpd.Header{}}
	if id != "" {
		req.Header.Set("Cookie", "JSESSIONID="+id)
	}
	return req
}

func TestStatelessRequestsSpreadAcrossBackends(t *testing.T) {
	b0, b1 := &stubBackend{}, &stubBackend{}
	b := newBalancer(t, b0, b1)
	for i := 0; i < 20; i++ {
		if _, err := b.ServeHTTP(reqWithCookie("")); err != nil {
			t.Fatal(err)
		}
	}
	// With equal load the round-robin tiebreak must use both backends.
	if b0.calls.Load() == 0 || b1.calls.Load() == 0 {
		t.Fatalf("calls not spread: %d / %d", b0.calls.Load(), b1.calls.Load())
	}
}

func TestLeastInFlightAvoidsBusyBackend(t *testing.T) {
	// Backend 0 is wedged mid-request (held by a pinned request); every
	// new stateless request must route to backend 1.
	b0 := &stubBackend{gate: make(chan struct{})}
	b1 := &stubBackend{}
	b := newBalancer(t, b0, b1)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.ServeHTTP(reqWithCookie("s01.a0")) // parks on b0's gate
	}()
	deadline := time.Now().Add(time.Second)
	for b0.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parked request never dispatched")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		if _, err := b.ServeHTTP(reqWithCookie("")); err != nil {
			t.Fatal(err)
		}
	}
	if got := b1.calls.Load(); got != 10 {
		t.Fatalf("free backend served %d of 10 requests; busy one stole some", got)
	}
	close(b0.gate)
	wg.Wait()
}

func TestSessionAffinityPinsToRoute(t *testing.T) {
	b0, b1 := &stubBackend{}, &stubBackend{}
	b := newBalancer(t, b0, b1)
	for i := 0; i < 10; i++ {
		if _, err := b.ServeHTTP(reqWithCookie("s0000002a.a1")); err != nil {
			t.Fatal(err)
		}
	}
	if b0.calls.Load() != 0 || b1.calls.Load() != 10 {
		t.Fatalf("affinity broken: b0=%d b1=%d", b0.calls.Load(), b1.calls.Load())
	}
	st := b.Stats()
	if st[1].Affinity != 10 || st[1].Routed != 10 {
		t.Fatalf("stats: %+v", st[1])
	}
}

func TestFailoverRetriesOnSurvivor(t *testing.T) {
	b0, b1 := &stubBackend{}, &stubBackend{}
	b0.fail.Store(true)
	b := newBalancer(t, b0, b1)
	// A session pinned to the dead backend must still be answered.
	resp, err := b.ServeHTTP(reqWithCookie("s01.a0"))
	if err != nil || resp.Status != 200 {
		t.Fatalf("pinned request not failed over: %v %v", resp, err)
	}
	if b1.calls.Load() != 1 {
		t.Fatalf("survivor calls = %d, want 1", b1.calls.Load())
	}
	st := b.Stats()
	if st[0].Ejections != 1 || st[0].Failovers != 1 || st[0].Healthy {
		t.Fatalf("dead backend stats: %+v", st[0])
	}
	// Subsequent pinned requests skip the dead backend entirely (no probe
	// before the cooldown).
	if _, err := b.ServeHTTP(reqWithCookie("s01.a0")); err != nil {
		t.Fatal(err)
	}
	if got := b0.calls.Load(); got != 1 {
		t.Fatalf("dead backend called %d times before cooldown, want 1", got)
	}
	if b.Healthy() != 1 {
		t.Fatalf("Healthy() = %d, want 1", b.Healthy())
	}
}

func TestProbeReadmitsRecoveredBackend(t *testing.T) {
	b0, b1 := &stubBackend{}, &stubBackend{}
	b0.fail.Store(true)
	b := newBalancer(t, b0, b1)
	if _, err := b.ServeHTTP(reqWithCookie("")); err != nil {
		t.Fatal(err) // ejects b0 (if routed there) — force it
	}
	b.ServeHTTP(reqWithCookie("s01.a0")) // guarantee b0 is ejected
	b0.fail.Store(false)                 // backend recovers
	time.Sleep(60 * time.Millisecond)    // cooldown elapses
	deadline := time.Now().Add(time.Second)
	for b.Healthy() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("recovered backend never readmitted")
		}
		if _, err := b.ServeHTTP(reqWithCookie("")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllBackendsDownSurfacesError(t *testing.T) {
	b0, b1 := &stubBackend{}, &stubBackend{}
	b0.fail.Store(true)
	b1.fail.Store(true)
	b := newBalancer(t, b0, b1)
	if _, err := b.ServeHTTP(reqWithCookie("")); err == nil {
		t.Fatal("want error with every backend down")
	}
	// Both ejected and inside the cooldown: no backend may be tried, and
	// the sentinel surfaces.
	if _, err := b.ServeHTTP(reqWithCookie("")); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want ErrNoBackends", err)
	}
}

func TestConcurrentMixedTraffic(t *testing.T) {
	// Race-detector exercise: stateless + pinned traffic over a backend
	// that dies and recovers mid-run.
	b0, b1 := &stubBackend{}, &stubBackend{}
	b := newBalancer(t, b0, b1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ""
				if w%2 == 0 {
					id = fmt.Sprintf("s%02d.a%d", w, w%2)
				}
				b.ServeHTTP(reqWithCookie(id))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			b0.fail.Store(i%2 == 0)
			time.Sleep(5 * time.Millisecond)
		}
		b0.fail.Store(false)
	}()
	wg.Wait()
	st := b.Stats()
	if st[0].Routed+st[1].Routed == 0 {
		t.Fatal("no traffic routed")
	}
}
