// Package lb is the application-tier front-end load balancer: an
// httpd.Handler that spreads dynamic requests over N replicated servlet
// (or EJB presentation) containers, the role mod_jk's worker balancing
// plays in sticky-session Apache/Tomcat farms — and the missing piece for
// the paper's "scale the middle tier" experiments, which PR 3's database
// cluster opened on the data side only.
//
// Routing policy:
//
//   - Stateless requests go to the healthy backend with the fewest
//     requests in flight (round-robin on ties) — the same least-loaded
//     discipline the database cluster's read router uses.
//   - Stateful requests carry their backend in the session cookie: the
//     servlet tier appends its route id to new session ids
//     ("s0000002a.a1", the jvmRoute convention), and the balancer pins
//     every request of that session to the matching backend while it is
//     healthy — session affinity.
//   - A transport-level failure ejects the backend and the request is
//     retried transparently on another healthy one. Pinned sessions fail
//     over the same way; with the containers sharing a
//     servlet.SessionStore, the survivor restores the session's
//     replicated state and the failover is invisible to the client.
//     Caveat, shared with mod_jk's worker recovery (and with the AJP
//     connector's own single retry underneath): a backend that dies
//     AFTER executing a request but before answering gets that request
//     replayed — a non-idempotent interaction (an order, a bid) can
//     apply twice across a mid-request crash. The stack accepts
//     at-least-once dispatch during failover, as the paper-era farms
//     did.
//   - An ejected backend is re-admitted by probing: after a cooldown
//     (Config.RetryAfter) one live request at a time is allowed through;
//     success restores the backend to the rotation.
package lb

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/httpd"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// ErrNoBackends is returned when every backend is ejected and none is due
// for a probe.
var ErrNoBackends = errors.New("lb: no healthy app backends")

// Backend declares one application container to balance over.
type Backend struct {
	// ID is the backend's route id — it must match the container's
	// servlet.Config.Route for session affinity to find it.
	ID string
	// Handler forwards a request to the container (typically an
	// *ajp.Connector).
	Handler httpd.Handler
	// PoolStats optionally exposes the connector pool into this backend,
	// surfaced per backend in telemetry (nil omits it).
	PoolStats func() pool.Stats
}

// Config configures a Balancer.
type Config struct {
	Backends []Backend
	// RetryAfter is the ejection cooldown before an ejected backend gets a
	// probe request (default 500ms).
	RetryAfter time.Duration
	// CookieName carries the session id whose route suffix pins requests
	// (default JSESSIONID).
	CookieName string
}

// backend is the balancer's per-target state.
type backend struct {
	id        string
	h         httpd.Handler
	poolStats func() pool.Stats
	idx       int

	healthy   atomic.Bool
	ejectedAt atomic.Int64 // unix nanos of the last ejection
	probing   atomic.Bool  // one probe request at a time

	inFlight  atomic.Int64
	routed    atomic.Int64
	affinity  atomic.Int64
	failovers atomic.Int64
	errors    atomic.Int64
	ejections atomic.Int64
}

// Balancer dispatches requests across backends. It is safe for concurrent
// use.
type Balancer struct {
	backends   []*backend
	byRoute    map[string]*backend
	retryAfter time.Duration
	cookie     string
	rr         atomic.Uint64
}

// New creates a balancer over the configured backends.
func New(cfg Config) *Balancer {
	if len(cfg.Backends) == 0 {
		panic("lb: no backends")
	}
	b := &Balancer{
		byRoute:    make(map[string]*backend, len(cfg.Backends)),
		retryAfter: cfg.RetryAfter,
		cookie:     cfg.CookieName,
	}
	if b.retryAfter <= 0 {
		b.retryAfter = 500 * time.Millisecond
	}
	if b.cookie == "" {
		b.cookie = "JSESSIONID"
	}
	for i, be := range cfg.Backends {
		t := &backend{id: be.ID, h: be.Handler, poolStats: be.PoolStats, idx: i}
		t.healthy.Store(true)
		b.backends = append(b.backends, t)
		if be.ID != "" {
			if _, dup := b.byRoute[be.ID]; dup {
				// Failing fast beats the silent alternative: the map would
				// keep one winner and pin every matching session there,
				// quietly losing the other backend's session state.
				panic(fmt.Sprintf("lb: duplicate backend route id %q", be.ID))
			}
			b.byRoute[be.ID] = t
		}
	}
	return b
}

// ServeHTTP routes one request: to its session's pinned backend when the
// request carries an affinity cookie and the pin is up, otherwise to the
// least-loaded healthy backend; a backend failing at the transport level
// is ejected and the request retried on the next one.
func (b *Balancer) ServeHTTP(req *httpd.Request) (*httpd.Response, error) {
	tried := make([]bool, len(b.backends))
	var lastErr error
	if p := b.pinOf(req); p != nil {
		if p.healthy.Load() || b.claimProbe(p) {
			resp, err := b.do(p, req, true)
			if err == nil {
				return resp, nil
			}
			lastErr = err
			tried[p.idx] = true
		}
		// The pin is down (or just died under this request): the session
		// fails over to whichever backend the loop below picks.
		p.failovers.Add(1)
	}
	for {
		be := b.pick(tried)
		if be == nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ErrNoBackends
		}
		resp, err := b.do(be, req, false)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		tried[be.idx] = true
	}
}

// do forwards the request to one backend, maintaining its counters and
// health. Any handler error is transport-level (container-side failures
// come back as HTTP 5xx responses, not errors) and ejects the backend.
func (b *Balancer) do(be *backend, req *httpd.Request, viaAffinity bool) (*httpd.Response, error) {
	be.routed.Add(1)
	if viaAffinity {
		be.affinity.Add(1)
	}
	be.inFlight.Add(1)
	resp, err := be.h.ServeHTTP(req)
	be.inFlight.Add(-1)
	if err != nil {
		be.errors.Add(1)
		b.eject(be)
		be.probing.Store(false)
		return nil, err
	}
	be.healthy.Store(true) // a probe (or plain success) restores the backend
	be.probing.Store(false)
	return resp, nil
}

// pick selects the least-in-flight healthy backend not yet tried,
// round-robin on ties. Ejected backends whose cooldown has elapsed take
// priority as probes — live traffic is the only readmission signal, and
// the probe claim bounds the cost to one request per cooldown window
// (a failed probe restamps the cooldown and transparently retries
// elsewhere).
func (b *Balancer) pick(tried []bool) *backend {
	for _, be := range b.backends {
		if !tried[be.idx] && b.claimProbe(be) {
			return be
		}
	}
	var best *backend
	bestLoad := int64(0)
	offset := int(b.rr.Add(1))
	for i := range b.backends {
		be := b.backends[(i+offset)%len(b.backends)]
		if tried[be.idx] || !be.healthy.Load() {
			continue
		}
		load := be.inFlight.Load()
		if best == nil || load < bestLoad {
			best, bestLoad = be, load
		}
	}
	return best
}

// eject marks the backend out of rotation and stamps the cooldown clock.
func (b *Balancer) eject(be *backend) {
	if be.healthy.CompareAndSwap(true, false) {
		be.ejections.Add(1)
	}
	be.ejectedAt.Store(time.Now().UnixNano())
}

// claimProbe atomically claims the single trial request an ejected
// backend receives once its cooldown has elapsed.
func (b *Balancer) claimProbe(be *backend) bool {
	if be.healthy.Load() {
		return false
	}
	if time.Now().UnixNano()-be.ejectedAt.Load() < int64(b.retryAfter) {
		return false
	}
	return be.probing.CompareAndSwap(false, true)
}

// pinOf resolves the request's session-affinity backend from the route
// suffix of its session cookie, or nil for stateless requests and unknown
// routes.
func (b *Balancer) pinOf(req *httpd.Request) *backend {
	id := httpd.CookieValue(req.Header.Get("Cookie"), b.cookie)
	if id == "" {
		return nil
	}
	dot := strings.LastIndexByte(id, '.')
	if dot < 0 {
		return nil
	}
	return b.byRoute[id[dot+1:]]
}

// Healthy returns the number of backends currently in rotation.
func (b *Balancer) Healthy() int {
	n := 0
	for _, be := range b.backends {
		if be.healthy.Load() {
			n++
		}
	}
	return n
}

// Stats reports the per-backend routing view for telemetry.
func (b *Balancer) Stats() []telemetry.AppBackend {
	out := make([]telemetry.AppBackend, 0, len(b.backends))
	for _, be := range b.backends {
		a := telemetry.AppBackend{
			ID:        be.id,
			Healthy:   be.healthy.Load(),
			Routed:    be.routed.Load(),
			Affinity:  be.affinity.Load(),
			Failovers: be.failovers.Load(),
			Errors:    be.errors.Load(),
			Ejections: be.ejections.Load(),
			InFlight:  be.inFlight.Load(),
		}
		if be.poolStats != nil {
			ps := be.poolStats()
			a.Pool = &ps
		}
		out = append(out, a)
	}
	return out
}
