package lb

import (
	"testing"
	"time"

	"repro/internal/ajp"
	"repro/internal/chaos"
	"repro/internal/httpd"
	"repro/internal/pool"
	"repro/internal/servlet"
)

// TestProbeAgainstStalledBackend is the slow-failure readmission test: a
// real AJP backend sits behind a fault proxy that ACCEPTS connections but
// stalls them — the failure mode a closed listener (the other probe test)
// cannot model. The balancer must eject it on the connector's op
// deadline, keep probing without readmitting while the link stays
// stalled, bound every caller's latency to one deadline (probes ride live
// requests), and readmit once the link heals.
func TestProbeAgainstStalledBackend(t *testing.T) {
	c := servlet.NewContainer(servlet.Config{Route: "a1"})
	c.Register("/x", servlet.Func(func(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
		resp := httpd.NewResponse()
		resp.Body = []byte("ok")
		return resp, nil
	}))
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	px, err := chaos.Listen("app1", addr.String(), chaos.Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	const opTimeout = 150 * time.Millisecond
	conn := ajp.NewConnectorT(px.Addr(), 2, pool.Timeouts{Op: opTimeout})
	defer conn.Close()
	good := &stubBackend{}
	b := New(Config{
		Backends: []Backend{
			{ID: "a0", Handler: good},
			{ID: "a1", Handler: conn},
		},
		RetryAfter: 50 * time.Millisecond,
	})

	// Healthy start: the pinned request reaches the real container through
	// the (transparent) proxy.
	resp, err := b.ServeHTTP(reqWithCookie("s01.a1"))
	if err != nil || string(resp.Body) != "ok" {
		t.Fatalf("through-proxy request: %v %q", err, resp)
	}

	// Stall the link. The pinned request blocks until the connector's op
	// deadline, then fails over to a0 — bounded, not hung.
	px.Set(chaos.Fault{Kind: chaos.Stall})
	start := time.Now()
	resp, err = b.ServeHTTP(reqWithCookie("s01.a1"))
	if err != nil {
		t.Fatalf("failover request: %v", err)
	}
	if d := time.Since(start); d > 10*opTimeout {
		t.Fatalf("failover took %v, want ~ one op deadline", d)
	}
	if b.Healthy() != 1 {
		t.Fatalf("healthy = %d, want the stalled backend ejected", b.Healthy())
	}

	// While the link stays stalled, cooldown-elapsed probes keep riding
	// live requests: each one burns at most one deadline, fails, and must
	// NOT readmit the backend.
	for i := 0; i < 3; i++ {
		time.Sleep(60 * time.Millisecond) // past RetryAfter: a probe is due
		start = time.Now()
		if _, err := b.ServeHTTP(reqWithCookie("")); err != nil {
			t.Fatalf("request during stalled probe: %v", err)
		}
		if d := time.Since(start); d > 10*opTimeout {
			t.Fatalf("probing request took %v, want bounded by the op deadline", d)
		}
		if b.Healthy() != 1 {
			t.Fatal("a stalled probe must not readmit the backend")
		}
	}

	// Heal. The stalled connections die (stall-kills invariant), the
	// connector redials, and the next due probe readmits the backend.
	px.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for b.Healthy() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("backend never readmitted after heal")
		}
		time.Sleep(60 * time.Millisecond)
		if _, err := b.ServeHTTP(reqWithCookie("")); err != nil {
			t.Fatalf("request during readmission: %v", err)
		}
	}
	// And the readmitted backend serves pinned traffic again.
	resp, err = b.ServeHTTP(reqWithCookie("s01.a1"))
	if err != nil || string(resp.Body) != "ok" {
		t.Fatalf("post-readmission pinned request: %v %q", err, resp)
	}
}
