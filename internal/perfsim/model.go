// Package perfsim reproduces the paper's evaluation figures with a
// calibrated discrete-event simulation of the four-machine testbed.
//
// The paper (Cecchet et al., MIDDLEWARE 2003) measures six configurations of
// a dynamic-content web site — PHP in the web server, servlets co-located or
// on a dedicated machine (each with and without engine-side locking), and an
// EJB server — under two benchmarks (a TPC-W bookstore and a RUBiS-style
// auction site). The original results depend on which physical machine's CPU
// saturates and on MySQL table-lock contention, neither of which can be
// observed by running all tiers on a single host. perfsim therefore models
// the cluster (internal/sim/cluster) and replays the benchmarks' interaction
// classes through each architecture's tier graph, with per-tier service
// demands calibrated from the paper's own measurements (see calibrate.go).
//
// Absolute interactions/minute are not the goal; the reproduced quantity is
// the shape of every figure: which configuration wins, by what factor, where
// the curves peak, and which machine saturates.
package perfsim

import "fmt"

// Arch identifies one of the six hardware/software configurations of
// Figure 4 in the paper.
type Arch int

const (
	// ArchPHP is WsPhp-DB: the script module runs inside the web server
	// process; the database is on a separate machine.
	ArchPHP Arch = iota
	// ArchServlet is WsServlet-DB: the servlet engine runs on the web
	// server machine in a separate process (AJP IPC), DB separate.
	ArchServlet
	// ArchServletSync is WsServlet-DB(sync): as ArchServlet, but table
	// locking is performed inside the servlet engine instead of with
	// LOCK TABLES statements in the database.
	ArchServletSync
	// ArchServletDedicated is Ws-Servlet-DB: web server, servlet engine and
	// database each on their own machine.
	ArchServletDedicated
	// ArchServletDedicatedSync is Ws-Servlet-DB(sync).
	ArchServletDedicatedSync
	// ArchEJB is Ws-Servlet-EJB-DB: four machines; servlets hold only
	// presentation logic and call stateless session-façade beans over RMI;
	// entity beans use container-managed persistence.
	ArchEJB

	numArchs = int(ArchEJB) + 1
)

// Archs lists all six configurations in the paper's presentation order.
func Archs() []Arch {
	return []Arch{ArchPHP, ArchServlet, ArchServletSync,
		ArchServletDedicated, ArchServletDedicatedSync, ArchEJB}
}

// String returns the paper's name for the configuration.
func (a Arch) String() string {
	switch a {
	case ArchPHP:
		return "WsPhp-DB"
	case ArchServlet:
		return "WsServlet-DB"
	case ArchServletSync:
		return "WsServlet-DB(sync)"
	case ArchServletDedicated:
		return "Ws-Servlet-DB"
	case ArchServletDedicatedSync:
		return "Ws-Servlet-DB(sync)"
	case ArchEJB:
		return "Ws-Servlet-EJB-DB"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// EngineSync reports whether the configuration performs table locking in the
// application engine (the paper's "(sync)" variants).
func (a Arch) EngineSync() bool {
	return a == ArchServletSync || a == ArchServletDedicatedSync
}

// DedicatedEngine reports whether the dynamic-content generator runs on its
// own machine rather than on the web server.
func (a Arch) DedicatedEngine() bool {
	return a == ArchServletDedicated || a == ArchServletDedicatedSync || a == ArchEJB
}

// Benchmark selects one of the two applications.
type Benchmark int

const (
	// Bookstore is the TPC-W online bookstore (stresses the database).
	Bookstore Benchmark = iota
	// Auction is the RUBiS-style auction site (stresses the front end).
	Auction
)

func (b Benchmark) String() string {
	switch b {
	case Bookstore:
		return "bookstore"
	case Auction:
		return "auction"
	default:
		return fmt.Sprintf("Benchmark(%d)", int(b))
	}
}

// Mix selects a workload mix within a benchmark.
type Mix int

const (
	// BrowsingMix: bookstore 95% read-only, auction 100% read-only.
	BrowsingMix Mix = iota
	// ShoppingMix: bookstore 80% read-only (TPC-W's representative mix).
	ShoppingMix
	// OrderingMix: bookstore 50% read-only.
	OrderingMix
	// BiddingMix: auction with 15% read-write (the representative mix).
	BiddingMix
)

func (m Mix) String() string {
	switch m {
	case BrowsingMix:
		return "browsing"
	case ShoppingMix:
		return "shopping"
	case OrderingMix:
		return "ordering"
	case BiddingMix:
		return "bidding"
	default:
		return fmt.Sprintf("Mix(%d)", int(m))
	}
}

// Tier names the simulated machines; Result reports utilization per tier.
type Tier string

const (
	TierWeb     Tier = "WebServer"
	TierServlet Tier = "Servlet Container"
	TierEJB     Tier = "EJB Server"
	TierDB      Tier = "Database"
)

// Options controls a simulation run. The zero value is completed by
// (*Options).withDefaults.
type Options struct {
	// Seed makes runs reproducible; runs with equal options are identical.
	Seed int64
	// RampUp is the virtual warm-up time in seconds before measurement.
	RampUp float64
	// Measure is the virtual measurement window in seconds.
	Measure float64
	// ThinkTime overrides the mean think time (default 7s per TPC-W
	// clause 5.3.1.1).
	ThinkTime float64
	// Costs overrides the calibrated cost table; nil uses DefaultCosts.
	Costs *Costs
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RampUp <= 0 {
		o.RampUp = 240
	}
	if o.Measure <= 0 {
		o.Measure = 360
	}
	if o.ThinkTime <= 0 {
		o.ThinkTime = 7.0
	}
	if o.Costs == nil {
		c := DefaultCosts()
		o.Costs = &c
	}
	return o
}

// Result summarizes one simulated experiment (one configuration at one
// client count).
type Result struct {
	Benchmark Benchmark
	Mix       Mix
	Arch      Arch
	Clients   int

	// ThroughputIPM is the measured throughput in interactions per minute,
	// the unit of the paper's Figures 5, 7, 9, 11 and 13.
	ThroughputIPM float64
	// MeanResponse is the mean interaction response time in seconds.
	MeanResponse float64
	// CPU is per-tier CPU utilization in percent over the measurement
	// window (the unit of Figures 6, 8, 10, 12 and 14). Only the tiers
	// present in the configuration appear.
	CPU map[Tier]float64
	// WebNICMbps is the web server's client-facing transmit traffic in
	// megabits per second (the paper reports 94 Mb/s at the auction
	// browsing peak).
	WebNICMbps float64
	// DBLockWaitFrac is the fraction of total virtual time interactions
	// spent waiting for database table locks, an observability aid for the
	// lock-contention analysis in sections 5.1 and 5.3.
	DBLockWaitFrac float64
	// Completed is the raw number of interactions in the window.
	Completed int64
}
