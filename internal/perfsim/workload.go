package perfsim

// This file defines the simulated workloads: the interaction classes of the
// TPC-W bookstore and the RUBiS-style auction site, with per-class service
// demands and the probability mixes of section 3 of the paper.
//
// Classes aggregate the paper's 14 bookstore / 26 auction interactions into
// the groups that matter for performance (the paper's own analysis reasons
// at this granularity: light reads, heavy reads such as best-sellers and
// search, and short writes vs. lock-holding purchase transactions).

// opStep is one application-level database query inside an interaction.
type opStep struct {
	table    int     // index into workloadSpec.tables
	write    bool    // exclusive (write) table access
	dbCPU    float64 // seconds of database CPU at full speed
	gap      float64 // engine CPU consumed before issuing this query
	extDelay float64 // non-CPU delay before this query (e.g. TPC-W's
	// payment-gateway authorization), spent while any LOCK TABLES
	// acquired by the class are still held
}

// class is one interaction class.
type class struct {
	name string
	// genCPU is the dynamic-content generator's CPU demand per interaction
	// on the servlet engine (PHP scales it by Costs.PHPGenFactor; EJB
	// splits it between presentation and business logic).
	genCPU float64
	// dynBytes is the generated HTML size; staticBytes the embedded images
	// served directly by the web server.
	dynBytes    float64
	staticBytes float64
	// lockTables lists tables the non-sync configurations wrap in
	// LOCK TABLES ... UNLOCK TABLES for this class (empty: none).
	lockTables []int
	// steps are the hand-written queries (PHP/servlet configurations).
	steps []opStep
	// rows is how many result rows the interaction materializes; under
	// container-managed persistence each row costs extra short queries.
	rows int
}

// workloadSpec is a complete benchmark description.
type workloadSpec struct {
	name    string
	tables  []string
	classes []class
	// mixes maps a Mix to per-class probabilities (summing to 1).
	mixes map[Mix][]float64
	// cmpFinderFactor scales step dbCPU under EJB: auction finder methods
	// return only primary keys (0.5); the bookstore's complex decision-
	// support queries run unchanged (1.0).
	cmpFinderFactor float64
	// cmpRowQueryCPU is database CPU per short CMP row-state query. It is
	// per-benchmark: auction rows are hot single-row primary-key lookups;
	// bookstore rows live in 350 MB tables with wider indexes.
	cmpRowQueryCPU float64
}

// Bookstore tables (section 3.1 names eight; the simulation keeps the five
// that matter for locking: carts is TPC-W's shopping_cart, orders covers
// orders/order_line/credit_info, misc covers authors/countries/address).
const (
	bkItems = iota
	bkOrders
	bkCustomers
	bkCarts
	bkMisc
)

func bookstoreSpec() *workloadSpec {
	s := &workloadSpec{
		name:            "bookstore",
		tables:          []string{"items", "orders", "customers", "carts", "misc"},
		cmpFinderFactor: 1.0,
		cmpRowQueryCPU:  0.0022,
	}
	ms := func(v float64) float64 { return v / 1000 }
	s.classes = []class{
		{
			name: "home", genCPU: ms(4.0), dynBytes: 4000, staticBytes: 42000, rows: 14,
			steps: []opStep{
				{table: bkItems, dbCPU: ms(12), gap: ms(1.2)},
				{table: bkMisc, dbCPU: ms(8), gap: ms(0.8)},
			},
		},
		{
			name: "search", genCPU: ms(6.0), dynBytes: 6500, staticBytes: 46000, rows: 40,
			steps: []opStep{
				{table: bkItems, dbCPU: ms(180), gap: ms(1.5)},
				{table: bkMisc, dbCPU: ms(40), gap: ms(1.0)},
			},
		},
		{
			name: "bestsellers", genCPU: ms(5.0), dynBytes: 6000, staticBytes: 44000, rows: 50,
			steps: []opStep{
				// The 3,333-order scan joined with items (TPC-W 2.28).
				{table: bkItems, dbCPU: ms(450), gap: ms(1.5)},
			},
		},
		{
			name: "productdetail", genCPU: ms(3.5), dynBytes: 3500, staticBytes: 48000, rows: 4,
			steps: []opStep{
				{table: bkItems, dbCPU: ms(25), gap: ms(1.0)},
			},
		},
		{
			name: "newproducts", genCPU: ms(5.0), dynBytes: 6000, staticBytes: 45000, rows: 45,
			steps: []opStep{
				{table: bkItems, dbCPU: ms(90), gap: ms(1.2)},
			},
		},
		{
			name: "orderinquiry", genCPU: ms(4.0), dynBytes: 4500, staticBytes: 30000, rows: 12,
			steps: []opStep{
				{table: bkCustomers, dbCPU: ms(9), gap: ms(1.0)},
				{table: bkOrders, dbCPU: ms(14), gap: ms(1.0)},
			},
		},
		{
			name: "cartupdate", genCPU: ms(5.0), dynBytes: 4500, staticBytes: 34000, rows: 6,
			lockTables: []int{bkCarts, bkItems},
			steps: []opStep{
				{table: bkItems, dbCPU: ms(15), gap: ms(15)},
				{table: bkCarts, write: true, dbCPU: ms(8), gap: ms(15)},
				{table: bkCarts, dbCPU: ms(8), gap: ms(15)},
			},
		},
		{
			name: "buyconfirm", genCPU: ms(6.0), dynBytes: 5000, staticBytes: 26000, rows: 10,
			lockTables: []int{bkCarts, bkCustomers, bkItems, bkOrders},
			steps: []opStep{
				{table: bkCarts, dbCPU: ms(8), gap: ms(25)},
				{table: bkCustomers, dbCPU: ms(8), gap: ms(25)},
				// TPC-W clause 6.1.5: the purchase contacts the external
				// payment gateway emulator for authorization while its
				// LOCK TABLES grant is held — together with the in-lock
				// script work (cart totalling, order assembly) this is the
				// database-idle time behind the ~70% DB CPU ceiling of
				// Figure 6.
				{table: bkOrders, write: true, dbCPU: ms(10), gap: ms(25), extDelay: 0.4},
				{table: bkOrders, write: true, dbCPU: ms(12), gap: ms(25)},
				{table: bkItems, write: true, dbCPU: ms(10), gap: ms(25)},
				{table: bkOrders, write: true, dbCPU: ms(6), gap: ms(25)},
			},
		},
		{
			name: "register", genCPU: ms(4.0), dynBytes: 3000, staticBytes: 20000, rows: 2,
			lockTables: []int{bkCustomers},
			steps: []opStep{
				{table: bkCustomers, dbCPU: ms(6), gap: ms(1.5)},
				{table: bkCustomers, write: true, dbCPU: ms(10), gap: ms(1.5)},
			},
		},
		{
			name: "adminupdate", genCPU: ms(4.5), dynBytes: 3000, staticBytes: 24000, rows: 2,
			lockTables: []int{bkItems},
			steps: []opStep{
				{table: bkItems, dbCPU: ms(10), gap: ms(20)},
				{table: bkItems, write: true, dbCPU: ms(18), gap: ms(20)},
			},
		},
	}
	// Class order: home, search, bestsellers, productdetail, newproducts,
	// orderinquiry, cartupdate, buyconfirm, register, adminupdate.
	s.mixes = map[Mix][]float64{
		// 95% read-only (TPC-W browsing mix).
		BrowsingMix: {0.26, 0.25, 0.12, 0.21, 0.11, 0.00, 0.02, 0.006, 0.016, 0.008},
		// 80% read-only (TPC-W shopping mix, the representative one).
		ShoppingMix: {0.16, 0.20, 0.046, 0.20, 0.09, 0.104, 0.12, 0.026, 0.04, 0.014},
		// 50% read-only (TPC-W ordering mix: short updates dominate).
		OrderingMix: {0.08, 0.10, 0.02, 0.15, 0.05, 0.10, 0.27, 0.10, 0.09, 0.04},
	}
	return s
}

// Auction tables (section 3.2 lists nine; buy_now/categories/regions fold
// into buynow and misc).
const (
	auItems = iota
	auBids
	auUsers
	auComments
	auBuyNow
	auMisc
)

func auctionSpec() *workloadSpec {
	s := &workloadSpec{
		name:            "auction",
		tables:          []string{"items", "bids", "users", "comments", "buynow", "misc"},
		cmpFinderFactor: 0.5,
		cmpRowQueryCPU:  0.00009,
	}
	ms := func(v float64) float64 { return v / 1000 }
	// Auction locked sections issue their two or three short queries
	// back-to-back (gap 0 inside the lock), so lock hold times stay small
	// and — as the paper observes — the database exhibits no lock
	// contention on this benchmark.
	s.classes = []class{
		{
			name: "browse", genCPU: ms(2.7), dynBytes: 3600, staticBytes: 65000, rows: 20,
			steps: []opStep{
				{table: auMisc, dbCPU: ms(0.9), gap: ms(0.5)},
				{table: auItems, dbCPU: ms(2.0), gap: ms(0.5)},
			},
		},
		{
			name: "viewitem", genCPU: ms(2.4), dynBytes: 3200, staticBytes: 30000, rows: 11,
			steps: []opStep{
				{table: auItems, dbCPU: ms(1.1), gap: ms(0.5)},
				{table: auBids, dbCPU: ms(1.5), gap: ms(0.4)},
			},
		},
		{
			name: "viewuser", genCPU: ms(2.6), dynBytes: 3000, staticBytes: 10000, rows: 11,
			steps: []opStep{
				{table: auUsers, dbCPU: ms(0.9), gap: ms(0.5)},
				{table: auComments, dbCPU: ms(1.5), gap: ms(0.4)},
			},
		},
		{
			name: "search", genCPU: ms(3.0), dynBytes: 3800, staticBytes: 65000, rows: 20,
			steps: []opStep{
				{table: auItems, dbCPU: ms(2.4), gap: ms(0.5)},
				{table: auMisc, dbCPU: ms(0.8), gap: ms(0.5)},
			},
		},
		{
			name: "aboutme", genCPU: ms(6.0), dynBytes: 4200, staticBytes: 12000, rows: 12,
			steps: []opStep{
				{table: auUsers, dbCPU: ms(0.9), gap: ms(0.7)},
				{table: auBids, dbCPU: ms(1.3), gap: ms(0.7)},
				{table: auItems, dbCPU: ms(1.1), gap: ms(0.7)},
				{table: auBuyNow, dbCPU: ms(0.7), gap: ms(0.7)},
			},
		},
		// The write classes run their short query groups back-to-back (no
		// engine work while holding locks), so lock hold times stay tiny and
		// the database exhibits no lock contention on this benchmark (§6.1).
		{
			name: "placebid", genCPU: ms(6.9), dynBytes: 3000, staticBytes: 8000, rows: 3,
			lockTables: []int{auBids, auItems},
			steps: []opStep{
				{table: auItems, dbCPU: ms(1.1)},
				{table: auBids, write: true, dbCPU: ms(1.5)},
				{table: auItems, write: true, dbCPU: ms(1.3)},
			},
		},
		{
			name: "buynow", genCPU: ms(6.2), dynBytes: 2800, staticBytes: 7000, rows: 2,
			lockTables: []int{auBuyNow, auItems},
			steps: []opStep{
				{table: auItems, dbCPU: ms(1.1)},
				{table: auBuyNow, write: true, dbCPU: ms(1.3)},
				{table: auItems, write: true, dbCPU: ms(1.2)},
			},
		},
		{
			name: "comment", genCPU: ms(6.2), dynBytes: 2800, staticBytes: 7000, rows: 2,
			lockTables: []int{auComments, auUsers},
			steps: []opStep{
				{table: auComments, write: true, dbCPU: ms(1.4)},
				{table: auUsers, write: true, dbCPU: ms(1.2)},
			},
		},
		{
			name: "sellitem", genCPU: ms(6.9), dynBytes: 3200, staticBytes: 8000, rows: 2,
			lockTables: []int{auItems},
			steps: []opStep{
				{table: auUsers, dbCPU: ms(0.9)},
				{table: auItems, write: true, dbCPU: ms(1.6)},
			},
		},
		{
			name: "registeruser", genCPU: ms(6.0), dynBytes: 2600, staticBytes: 6000, rows: 2,
			lockTables: []int{auUsers},
			steps: []opStep{
				{table: auUsers, dbCPU: ms(0.8)},
				{table: auUsers, write: true, dbCPU: ms(1.2)},
			},
		},
	}
	// Class order: browse, viewitem, viewuser, search, aboutme, placebid,
	// buynow, comment, sellitem, registeruser.
	s.mixes = map[Mix][]float64{
		// Read-only browsing mix (section 3.2).
		BrowsingMix: {0.30, 0.32, 0.10, 0.20, 0.08, 0, 0, 0, 0, 0},
		// Bidding mix: 15% read-write, the representative auction mix.
		BiddingMix: {0.25, 0.28, 0.09, 0.14, 0.09, 0.09, 0.015, 0.025, 0.015, 0.005},
	}
	return s
}

// specFor returns the workload for a benchmark. Mixes not defined for the
// benchmark (e.g. ShoppingMix on the auction) cause a panic in newRun.
func specFor(b Benchmark) *workloadSpec {
	switch b {
	case Bookstore:
		return bookstoreSpec()
	case Auction:
		return auctionSpec()
	default:
		panic("perfsim: unknown benchmark")
	}
}
