package perfsim

// Costs is the calibrated service-demand table. All CPU demands are seconds
// on the paper's reference machine (1.33 GHz AMD Athlon, CPU speed 1.0 in
// the cluster model); byte costs are seconds per byte.
//
// Calibration sources, by field, from the paper:
//
//   - Auction bidding peaks (Fig. 11): WsPhp-DB 9,780 ipm at 1,100 clients;
//     WsServlet-DB 7,380 ipm at 700 clients; Ws-Servlet-DB 10,440 ipm at
//     1,200 clients; Ws-Servlet-EJB-DB 4,136 ipm. These pin the per-
//     interaction front-end demands: PHP ≈ 6.1 ms, servlet co-located
//     ≈ 8.1 ms, servlet alone ≈ 5.7 ms, EJB server ≈ 14.4 ms.
//   - §6.1: PHP beats co-located servlets by ~33% on bidding (IPC overhead
//     plus interpreted type-4 JDBC driver vs. PHP's native driver); the
//     AJP and driver costs below produce that gap.
//   - §6.1: EJB server CPU 99% at peak with servlet engine at 32%, DB at
//     17%, web at 6%; ~2,000 packets/s between EJB and DB at ~69
//     interactions/s ≈ 29 small CMP queries per interaction.
//   - §6.2/Fig. 13: auction browsing, dedicated-servlet configuration is
//     web-server bound at ~12,000 ipm with 94 Mb/s on the web NIC
//     (~50 KB/interaction including images); PHP ≈ 25% over co-located
//     servlets.
//   - Bookstore (Figs. 5–10): DB-bound. Shopping-mix peaks 520 ipm without
//     engine locking (DB CPU ~70%, lock contention) vs. 663–665 ipm with
//     (DB CPU 100%) pin the mean DB demand near 85–90 ms/interaction and
//     the contention level. Ordering mix: shorter updates, DB ~60% without
//     sync. Browsing mix: DB CPU-bound at 100% for every non-EJB
//     configuration.
type Costs struct {
	// --- web server ---

	// WebFixedCPU is web-server CPU per interaction: accept/parse the HTTP
	// request, dispatch, and serve embedded static images.
	WebFixedCPU float64
	// WebCPUPerByte is web-server CPU per byte sent to the client (kernel
	// copies, interrupts, checksums). At the auction browsing peak this is
	// what saturates the web machine (Fig. 14).
	WebCPUPerByte float64

	// --- AJP (web server <-> servlet engine IPC) ---

	// AJPFixedCPU is the per-request protocol cost on each side.
	AJPFixedCPU float64
	// AJPPerByte is the per-byte cost of moving the dynamic response
	// between engine and web server, paid on each side. §6.1 measures this
	// IPC as the main reason co-located servlets trail PHP.
	AJPPerByte float64

	// --- generators ---

	// PHPGenFactor scales a class's generator demand for the PHP
	// interpreter relative to the servlet engine (<1: §6.3 attributes
	// PHP's edge chiefly to avoided IPC, with a smaller interpreter gap).
	PHPGenFactor float64
	// PHPDriverPerQuery is PHP's native MySQL driver CPU per query.
	PHPDriverPerQuery float64
	// JDBCDriverPerQuery is the interpreted type-4 JDBC driver CPU per
	// query (§6.1 calls out the driver gap explicitly).
	JDBCDriverPerQuery float64

	// --- RMI (servlet <-> EJB) ---

	// RMIFixedCPU is the per-call marshalling cost paid on each side.
	RMIFixedCPU float64
	// RMIBytes is the wire size of one session-façade call+reply.
	RMIBytes float64

	// --- EJB container ---

	// EJBPresentFactor is the share of a class's generator demand that
	// remains in the servlet as presentation logic under EJB.
	EJBPresentFactor float64
	// EJBLogicFactor multiplies the business-logic share of the generator
	// demand to model container services (JTA, pooling, reflection).
	EJBLogicFactor float64
	// CMPFanout is how many short automatically-generated queries replace
	// one hand-written query step (entity-bean field loads/stores).
	CMPFanout int
	// CMPQueryCPUDB is database CPU per short CMP query.
	CMPQueryCPUDB float64
	// CMPQueryCPUEJB is container CPU per short CMP query.
	CMPQueryCPUEJB float64
	// CMPQueryBytes is the wire size of one CMP query+reply ("a very large
	// number of small packets", §6.1: ~2,000 pkt/s at 0.5 Mb/s ≈ 250 B).
	CMPQueryBytes float64

	// --- database ---

	// DBStmtFixedCPU is per-statement parse/dispatch CPU on the DB.
	DBStmtFixedCPU float64
	// LockStmtCPU is DB CPU for each LOCK TABLES / UNLOCK TABLES statement.
	LockStmtCPU float64
	// DBPoolSize is the engine-side database connection pool size; it
	// bounds how many statements execute in the database concurrently.
	// Lock-taking transactions hold one connection for their whole
	// critical sequence, as the real servlet engine does.
	DBPoolSize int
	// DBConcOverhead inflates a query's CPU demand by this fraction per
	// additional concurrently-executing query, modeling MySQL thread
	// thrash; it produces the gentle post-peak decline of Figure 5.
	DBConcOverhead float64

	// --- wire sizes ---

	// QueryBytes / ResultBytes are the default per-query wire sizes
	// engine<->DB when a class step does not override them.
	QueryBytes  float64
	ResultBytes float64
	// RequestBytes is the client HTTP request size.
	RequestBytes float64
}

// DefaultCosts returns the calibrated cost table used for all figure
// reproductions. See the type comment for how each value is pinned to the
// paper's measurements.
func DefaultCosts() Costs {
	return Costs{
		WebFixedCPU:   0.00075, // 0.75 ms: accept+parse+static dispatch
		WebCPUPerByte: 55e-9,   // 55 ns/B: ~2.6 ms for a 47 KB browsing page

		AJPFixedCPU: 0.00012, // 0.12 ms/side per request
		AJPPerByte:  20e-9,   // 20 ns/B/side of dynamic content

		PHPGenFactor:       0.68,
		PHPDriverPerQuery:  0.00010, // native driver
		JDBCDriverPerQuery: 0.00040, // interpreted type-4 driver

		RMIFixedCPU: 0.0009, // 0.9 ms marshalling per façade call per side
		RMIBytes:    1500,

		EJBPresentFactor: 0.45,
		EJBLogicFactor:   2.2,
		CMPFanout:        7,       // ~29 small queries per auction interaction
		CMPQueryCPUDB:    0.00009, // 90 µs of DB CPU per tiny query
		CMPQueryCPUEJB:   0.00030, // container overhead per tiny query
		CMPQueryBytes:    250,

		DBStmtFixedCPU: 0.00012,
		LockStmtCPU:    0.0009,
		DBPoolSize:     12,
		DBConcOverhead: 0.0025,

		QueryBytes:   350,
		ResultBytes:  1600,
		RequestBytes: 360,
	}
}
