package perfsim

import "fmt"

// FigureID identifies one of the paper's evaluation figures.
type FigureID int

const (
	// Fig05 — bookstore throughput vs clients, shopping mix.
	Fig05 FigureID = 5
	// Fig06 — bookstore CPU utilization at peak, shopping mix.
	Fig06 FigureID = 6
	// Fig07 — bookstore throughput vs clients, browsing mix.
	Fig07 FigureID = 7
	// Fig08 — bookstore CPU utilization at peak, browsing mix.
	Fig08 FigureID = 8
	// Fig09 — bookstore throughput vs clients, ordering mix.
	Fig09 FigureID = 9
	// Fig10 — bookstore CPU utilization at peak, ordering mix.
	Fig10 FigureID = 10
	// Fig11 — auction throughput vs clients, bidding mix.
	Fig11 FigureID = 11
	// Fig12 — auction CPU utilization at peak, bidding mix.
	Fig12 FigureID = 12
	// Fig13 — auction throughput vs clients, browsing mix.
	Fig13 FigureID = 13
	// Fig14 — auction CPU utilization at peak, browsing mix.
	Fig14 FigureID = 14
)

// AllFigures lists the evaluation figures in paper order.
func AllFigures() []FigureID {
	return []FigureID{Fig05, Fig06, Fig07, Fig08, Fig09, Fig10, Fig11, Fig12, Fig13, Fig14}
}

// figureSpec ties a figure to its benchmark, mix and kind.
type figureSpec struct {
	bench   Benchmark
	mix     Mix
	cpuBars bool // false: throughput curve; true: CPU bars at peak
	title   string
}

func specOfFigure(id FigureID) figureSpec {
	switch id {
	case Fig05:
		return figureSpec{Bookstore, ShoppingMix, false, "Online bookstore throughput, shopping mix"}
	case Fig06:
		return figureSpec{Bookstore, ShoppingMix, true, "Online bookstore CPU utilization at peak, shopping mix"}
	case Fig07:
		return figureSpec{Bookstore, BrowsingMix, false, "Online bookstore throughput, browsing mix"}
	case Fig08:
		return figureSpec{Bookstore, BrowsingMix, true, "Online bookstore CPU utilization at peak, browsing mix"}
	case Fig09:
		return figureSpec{Bookstore, OrderingMix, false, "Online bookstore throughput, ordering mix"}
	case Fig10:
		return figureSpec{Bookstore, OrderingMix, true, "Online bookstore CPU utilization at peak, ordering mix"}
	case Fig11:
		return figureSpec{Auction, BiddingMix, false, "Auction site throughput, bidding mix"}
	case Fig12:
		return figureSpec{Auction, BiddingMix, true, "Auction site CPU utilization at peak, bidding mix"}
	case Fig13:
		return figureSpec{Auction, BrowsingMix, false, "Auction site throughput, browsing mix"}
	case Fig14:
		return figureSpec{Auction, BrowsingMix, true, "Auction site CPU utilization at peak, browsing mix"}
	default:
		panic(fmt.Sprintf("perfsim: unknown figure %d", id))
	}
}

// ClientSweep returns the client counts simulated for a benchmark/mix curve.
// The ranges bracket the paper's peaks (auction browsing extends to 14,000
// clients; the paper pushes it to 12,000).
func ClientSweep(b Benchmark, m Mix) []int {
	switch {
	case b == Bookstore:
		return []int{10, 25, 50, 75, 100, 150, 200, 300, 450, 600, 800, 1100, 1600}
	case b == Auction && m == BiddingMix:
		return []int{100, 200, 350, 500, 700, 900, 1100, 1300, 1600, 2000}
	default: // auction browsing
		return []int{200, 500, 800, 1100, 1400, 1800, 2500, 4000, 7000, 10000, 14000}
	}
}

// Curve is one configuration's series in a throughput figure.
type Curve struct {
	Arch    Arch
	Results []Result
}

// Peak returns the sweep point with maximum throughput.
func (c Curve) Peak() Result {
	best := c.Results[0]
	for _, r := range c.Results[1:] {
		if r.ThroughputIPM > best.ThroughputIPM {
			best = r
		}
	}
	return best
}

// FigureData is a fully evaluated figure: for throughput figures, one curve
// per configuration; for CPU figures, the per-tier utilization at each
// configuration's peak.
type FigureData struct {
	ID     FigureID
	Title  string
	Bench  Benchmark
	Mix    Mix
	CPU    bool
	Curves []Curve
}

// Sweep runs one configuration across a client sweep.
func Sweep(b Benchmark, m Mix, a Arch, clients []int, opt Options) Curve {
	c := Curve{Arch: a}
	for _, n := range clients {
		c.Results = append(c.Results, Run(b, m, a, n, opt))
	}
	return c
}

// Figure evaluates a figure for all six configurations. CPU figures reuse
// the throughput sweep of the same benchmark/mix and report utilization at
// each configuration's peak, exactly as the paper's bar charts do.
func Figure(id FigureID, opt Options) FigureData {
	fs := specOfFigure(id)
	fd := FigureData{ID: id, Title: fs.title, Bench: fs.bench, Mix: fs.mix, CPU: fs.cpuBars}
	sweep := ClientSweep(fs.bench, fs.mix)
	for _, a := range Archs() {
		fd.Curves = append(fd.Curves, Sweep(fs.bench, fs.mix, a, sweep, opt))
	}
	return fd
}
