package perfsim

import (
	"math"
	"testing"
)

// fastOpt keeps unit-test runs short; shape assertions use generous margins
// because short windows are noisier than the defaults used by cmd/repro.
func fastOpt() Options {
	return Options{Seed: 7, RampUp: 60, Measure: 120}
}

func TestArchString(t *testing.T) {
	want := map[Arch]string{
		ArchPHP:                  "WsPhp-DB",
		ArchServlet:              "WsServlet-DB",
		ArchServletSync:          "WsServlet-DB(sync)",
		ArchServletDedicated:     "Ws-Servlet-DB",
		ArchServletDedicatedSync: "Ws-Servlet-DB(sync)",
		ArchEJB:                  "Ws-Servlet-EJB-DB",
	}
	for a, w := range want {
		if a.String() != w {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), w)
		}
	}
	if len(Archs()) != 6 {
		t.Fatalf("Archs() = %d entries, want 6", len(Archs()))
	}
}

func TestArchPredicates(t *testing.T) {
	if !ArchServletSync.EngineSync() || !ArchServletDedicatedSync.EngineSync() {
		t.Error("sync variants must report EngineSync")
	}
	if ArchPHP.EngineSync() || ArchEJB.EngineSync() {
		t.Error("non-sync variants must not report EngineSync")
	}
	for _, a := range []Arch{ArchServletDedicated, ArchServletDedicatedSync, ArchEJB} {
		if !a.DedicatedEngine() {
			t.Errorf("%v must report DedicatedEngine", a)
		}
	}
	if ArchPHP.DedicatedEngine() || ArchServlet.DedicatedEngine() {
		t.Error("co-located variants must not report DedicatedEngine")
	}
}

func TestMixWeightsSumToOne(t *testing.T) {
	for _, b := range []Benchmark{Bookstore, Auction} {
		spec := specFor(b)
		for m, w := range spec.mixes {
			if len(w) != len(spec.classes) {
				t.Fatalf("%v/%v: %d weights for %d classes", b, m, len(w), len(spec.classes))
			}
			var sum float64
			for _, v := range w {
				if v < 0 {
					t.Fatalf("%v/%v: negative weight", b, m)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v/%v: weights sum to %g, want 1", b, m, sum)
			}
		}
	}
}

func TestMixReadWriteFractions(t *testing.T) {
	// Paper §3.1/§3.2: bookstore browsing 95% / shopping 80% / ordering 50%
	// read-only; auction browsing 100% / bidding 85%.
	cases := []struct {
		b    Benchmark
		m    Mix
		want float64
	}{
		{Bookstore, BrowsingMix, 0.95},
		{Bookstore, ShoppingMix, 0.80},
		{Bookstore, OrderingMix, 0.50},
		{Auction, BrowsingMix, 1.00},
		{Auction, BiddingMix, 0.85},
	}
	for _, tc := range cases {
		spec := specFor(tc.b)
		var ro float64
		for i, c := range spec.classes {
			write := false
			for _, st := range c.steps {
				if st.write {
					write = true
				}
			}
			if !write {
				ro += spec.mixes[tc.m][i]
			}
		}
		if math.Abs(ro-tc.want) > 0.02 {
			t.Errorf("%v/%v read-only fraction %.3f, want %.2f", tc.b, tc.m, ro, tc.want)
		}
	}
}

func TestLockIntents(t *testing.T) {
	spec := bookstoreSpec()
	intents := lockIntents(spec)
	buy := intents["buyconfirm"]
	if len(buy) != 4 {
		t.Fatalf("buyconfirm locks %d tables, want 4", len(buy))
	}
	for i := 1; i < len(buy); i++ {
		if buy[i-1].table >= buy[i].table {
			t.Fatal("lock refs must be sorted by table")
		}
	}
	wantWrite := map[int]bool{bkItems: true, bkOrders: true, bkCarts: false, bkCustomers: false}
	for _, ref := range buy {
		if wantWrite[ref.table] != ref.write {
			t.Errorf("buyconfirm table %d write=%v, want %v", ref.table, ref.write, wantWrite[ref.table])
		}
	}
	if _, ok := intents["home"]; ok {
		t.Error("read-only class must not appear in lock intents")
	}
}

func TestRunDeterminism(t *testing.T) {
	opt := fastOpt()
	a := Run(Auction, BiddingMix, ArchPHP, 150, opt)
	b := Run(Auction, BiddingMix, ArchPHP, 150, opt)
	if a.ThroughputIPM != b.ThroughputIPM || a.Completed != b.Completed {
		t.Fatalf("same seed produced different results: %v vs %v", a.ThroughputIPM, b.ThroughputIPM)
	}
	c := Run(Auction, BiddingMix, ArchPHP, 150, Options{Seed: 99, RampUp: 60, Measure: 120})
	if c.Completed == a.Completed && c.MeanResponse == a.MeanResponse {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestLowLoadThroughputMatchesLittlesLaw(t *testing.T) {
	// At 50 clients the auction site is far from saturation: X ≈ N/(Z+R)
	// with R ≈ tens of milliseconds, so X ≈ 50/7 ≈ 7.1/s ≈ 428 ipm.
	r := Run(Auction, BiddingMix, ArchPHP, 50, fastOpt())
	if r.ThroughputIPM < 380 || r.ThroughputIPM > 470 {
		t.Fatalf("low-load throughput %.0f ipm, want ~428", r.ThroughputIPM)
	}
	if r.MeanResponse > 0.5 {
		t.Fatalf("low-load response %.3fs, want well under saturation", r.MeanResponse)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r := Run(Bookstore, ShoppingMix, ArchEJB, 200, fastOpt())
	for tier, u := range r.CPU {
		if u < 0 || u > 100 {
			t.Fatalf("%s utilization %.1f out of [0,100]", tier, u)
		}
	}
	if _, ok := r.CPU[TierEJB]; !ok {
		t.Fatal("EJB configuration must report EJB tier utilization")
	}
	if _, ok := Run(Bookstore, ShoppingMix, ArchPHP, 50, fastOpt()).CPU[TierEJB]; ok {
		t.Fatal("PHP configuration must not report an EJB tier")
	}
}

func TestThroughputConservation(t *testing.T) {
	// Completions per client cannot exceed measure/think on average by much
	// (each client must think between interactions).
	opt := fastOpt()
	n := 100
	r := Run(Auction, BrowsingMix, ArchServletDedicated, n, opt)
	maxPerClient := opt.Measure / opt.ThinkTimeOrDefault() * 1.6
	if got := float64(r.Completed) / float64(n); got > maxPerClient {
		t.Fatalf("%.2f completions/client exceeds think-time bound %.2f", got, maxPerClient)
	}
}

// --- Figure-shape assertions (the paper's qualitative results) ---

// TestFig11Shape asserts the auction bidding ordering: dedicated servlets >
// PHP > co-located servlets > EJB, with sync == non-sync.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	peak := func(a Arch) float64 {
		best := 0.0
		for _, n := range []int{700, 1100, 1500} {
			if r := Run(Auction, BiddingMix, a, n, opt); r.ThroughputIPM > best {
				best = r.ThroughputIPM
			}
		}
		return best
	}
	php := peak(ArchPHP)
	coloc := peak(ArchServlet)
	ded := peak(ArchServletDedicated)
	ejb := peak(ArchEJB)
	if !(ded > php && php > coloc && coloc > ejb) {
		t.Fatalf("bidding peaks: ded=%.0f php=%.0f coloc=%.0f ejb=%.0f; want ded>php>coloc>ejb",
			ded, php, coloc, ejb)
	}
	// Paper: PHP ≈ 33% over co-located servlets; dedicated ≈ 7% over PHP.
	if ratio := php / coloc; ratio < 1.15 || ratio > 1.55 {
		t.Errorf("php/coloc ratio %.2f, want ~1.33", ratio)
	}
	if ratio := ejb / php; ratio > 0.60 {
		t.Errorf("ejb/php ratio %.2f, want well below 0.6 (paper 0.42)", ratio)
	}
}

// TestFig11SyncCoincides asserts §6.1: no DB lock contention on the auction,
// so engine-side locking changes nothing.
func TestFig11SyncCoincides(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	a := Run(Auction, BiddingMix, ArchServlet, 700, opt)
	b := Run(Auction, BiddingMix, ArchServletSync, 700, opt)
	diff := math.Abs(a.ThroughputIPM-b.ThroughputIPM) / a.ThroughputIPM
	if diff > 0.08 {
		t.Fatalf("sync and non-sync differ by %.1f%% on auction bidding, want ~0", diff*100)
	}
}

// TestFig5Shape asserts the bookstore shopping mix: engine-side locking
// beats database locking, PHP equals servlets (same queries), EJB is worst.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	at := func(a Arch, n int) float64 { return Run(Bookstore, ShoppingMix, a, n, opt).ThroughputIPM }
	php := at(ArchPHP, 200)
	servlet := at(ArchServlet, 200)
	sync := at(ArchServletSync, 200)
	ded := at(ArchServletDedicated, 200)
	ejb := at(ArchEJB, 200)
	if math.Abs(php-servlet)/php > 0.07 {
		t.Errorf("PHP %.0f vs servlet %.0f: same DB interface must give same throughput", php, servlet)
	}
	if math.Abs(php-ded)/php > 0.07 {
		t.Errorf("moving servlets to a dedicated machine must not help a DB-bound workload: %.0f vs %.0f", php, ded)
	}
	if sync < php*1.04 {
		t.Errorf("sync %.0f must beat non-sync %.0f on the shopping mix", sync, php)
	}
	if ejb > php*0.85 {
		t.Errorf("EJB %.0f must be clearly worst (php %.0f)", ejb, php)
	}
}

// TestFig5DBUtilization asserts §5.1: without sync the DB CPU is capped by
// lock contention; with sync it saturates.
func TestFig5DBUtilization(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	ns := Run(Bookstore, ShoppingMix, ArchPHP, 300, opt)
	sy := Run(Bookstore, ShoppingMix, ArchServletSync, 300, opt)
	if ns.CPU[TierDB] > 93 {
		t.Errorf("non-sync DB CPU %.0f%%, want capped below saturation by lock contention", ns.CPU[TierDB])
	}
	if sy.CPU[TierDB] < 90 {
		t.Errorf("sync DB CPU %.0f%%, want ~100%%", sy.CPU[TierDB])
	}
	if ns.DBLockWaitFrac < sy.DBLockWaitFrac {
		t.Errorf("non-sync lock wait %.3f must exceed sync %.3f", ns.DBLockWaitFrac, sy.DBLockWaitFrac)
	}
}

// TestFig9Shape asserts the ordering mix: sync is much better than non-sync.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	ns := Run(Bookstore, OrderingMix, ArchPHP, 300, opt)
	sy := Run(Bookstore, OrderingMix, ArchServletSync, 300, opt)
	if sy.ThroughputIPM < ns.ThroughputIPM*1.4 {
		t.Fatalf("ordering mix: sync %.0f vs non-sync %.0f, want much better (>1.4x)",
			sy.ThroughputIPM, ns.ThroughputIPM)
	}
}

// TestFig7AllEqual asserts the browsing mix: read-dominated, no contention,
// every non-EJB configuration performs the same; EJB trails.
func TestFig7AllEqual(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	var base float64
	for _, a := range []Arch{ArchPHP, ArchServlet, ArchServletSync, ArchServletDedicated, ArchServletDedicatedSync} {
		r := Run(Bookstore, BrowsingMix, a, 150, opt)
		if base == 0 {
			base = r.ThroughputIPM
			continue
		}
		if math.Abs(r.ThroughputIPM-base)/base > 0.08 {
			t.Errorf("%v: %.0f differs from %.0f by more than 8%%", a, r.ThroughputIPM, base)
		}
	}
	ejb := Run(Bookstore, BrowsingMix, ArchEJB, 150, opt)
	if ejb.ThroughputIPM > base*0.85 {
		t.Errorf("EJB browsing %.0f must be clearly below %.0f", ejb.ThroughputIPM, base)
	}
}

// TestFig13Shape asserts the auction browsing mix ordering.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	opt := fastOpt()
	php := Run(Auction, BrowsingMix, ArchPHP, 1800, opt).ThroughputIPM
	coloc := Run(Auction, BrowsingMix, ArchServlet, 1800, opt).ThroughputIPM
	ded := Run(Auction, BrowsingMix, ArchServletDedicated, 1800, opt).ThroughputIPM
	ejb := Run(Auction, BrowsingMix, ArchEJB, 1800, opt).ThroughputIPM
	if !(ded > php && php > coloc && coloc > ejb) {
		t.Fatalf("browsing: ded=%.0f php=%.0f coloc=%.0f ejb=%.0f; want ded>php>coloc>ejb",
			ded, php, coloc, ejb)
	}
	// Paper §6.2: PHP ≈ 25% over co-located servlets.
	if ratio := php / coloc; ratio < 1.1 || ratio > 1.5 {
		t.Errorf("php/coloc browsing ratio %.2f, want ~1.25", ratio)
	}
}

// TestFig12EJBServerSaturates asserts §6.1: the EJB server CPU is the
// bidding-mix bottleneck with modest utilization elsewhere.
func TestFig12EJBServerSaturates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Run(Auction, BiddingMix, ArchEJB, 900, fastOpt())
	if r.CPU[TierEJB] < 92 {
		t.Errorf("EJB server CPU %.0f%%, want ~99%%", r.CPU[TierEJB])
	}
	if r.CPU[TierDB] > 65 {
		t.Errorf("DB CPU %.0f%%, paper reports 17%% (low)", r.CPU[TierDB])
	}
	if r.CPU[TierServlet] > 70 {
		t.Errorf("servlet CPU %.0f%%, paper reports 32%% (modest)", r.CPU[TierServlet])
	}
}

// TestWebNICTraffic asserts the browsing mix pushes substantial traffic
// through the web NIC in the dedicated configuration (paper: 94 Mb/s).
func TestWebNICTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	r := Run(Auction, BrowsingMix, ArchServletDedicated, 2500, fastOpt())
	if r.WebNICMbps < 50 {
		t.Errorf("web NIC %.0f Mb/s at browsing peak, want high (paper 94)", r.WebNICMbps)
	}
}

func TestFigureMetadata(t *testing.T) {
	if len(AllFigures()) != 10 {
		t.Fatalf("AllFigures() = %d, want 10", len(AllFigures()))
	}
	for _, id := range AllFigures() {
		fs := specOfFigure(id)
		if fs.title == "" {
			t.Errorf("figure %d has no title", id)
		}
		if len(ClientSweep(fs.bench, fs.mix)) < 5 {
			t.Errorf("figure %d sweep too short", id)
		}
	}
}

func TestCurvePeak(t *testing.T) {
	c := Curve{Arch: ArchPHP, Results: []Result{
		{Clients: 10, ThroughputIPM: 100},
		{Clients: 20, ThroughputIPM: 300},
		{Clients: 30, ThroughputIPM: 200},
	}}
	if p := c.Peak(); p.Clients != 20 {
		t.Fatalf("Peak at %d clients, want 20", p.Clients)
	}
}

// ThinkTimeOrDefault exposes the defaulted think time for tests.
func (o Options) ThinkTimeOrDefault() float64 {
	return o.withDefaults().ThinkTime
}
