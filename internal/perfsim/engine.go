package perfsim

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/sim/cluster"
)

// lockRef is one table in a LOCK TABLES statement with its intent, e.g.
// "LOCK TABLES items WRITE, carts READ".
type lockRef struct {
	table int
	write bool
}

// run is one simulated experiment: a benchmark mix on one architecture at a
// fixed client count.
type run struct {
	s     *sim.Sim
	cl    *cluster.Cluster
	opt   Options
	spec  *workloadSpec
	arch  Arch
	bench Benchmark
	mix   Mix
	costs *Costs

	web *cluster.Machine // always present
	app *cluster.Machine // dedicated generator machine (nil if co-located)
	ejb *cluster.Machine // EJB server (ArchEJB only)
	db  *cluster.Machine

	dbLocks  []*sim.RWLock  // database table locks
	engLocks []*sim.RWLock  // engine-side locks for the (sync) variants
	dbPool   *sim.Semaphore // engine-side database connection pool
	weights  []float64
	locksFor map[string][]lockRef

	// activeQueries counts queries executing on the DB CPU; each
	// concurrent query inflates demand by Costs.DBConcOverhead.
	activeQueries int

	// measurement window state
	winStart  float64
	winEnd    float64
	completed int64
	respSum   float64
	respN     int64
	mark      *cluster.Mark
	lockWait0 float64
}

// engineMachine returns the machine hosting the dynamic-content generator.
func (r *run) engineMachine() *cluster.Machine {
	if r.app != nil {
		return r.app
	}
	return r.web
}

// newRun wires up machines, locks and workload weights for one experiment.
func newRun(b Benchmark, m Mix, a Arch, opt Options) *run {
	spec := specFor(b)
	weights, ok := spec.mixes[m]
	if !ok {
		panic(fmt.Sprintf("perfsim: mix %v not defined for benchmark %v", m, b))
	}
	s := sim.New()
	cl := cluster.New(s, cluster.DefaultConfig())
	r := &run{
		s: s, cl: cl, opt: opt, spec: spec, arch: a, bench: b, mix: m,
		costs: opt.Costs, weights: weights,
	}
	r.web = cl.AddMachine("web")
	if a.DedicatedEngine() {
		r.app = cl.AddMachine("servlet")
	}
	if a == ArchEJB {
		r.ejb = cl.AddMachine("ejb")
	}
	r.db = cl.AddMachine("db")
	for _, t := range spec.tables {
		// MyISAM gives pending write locks priority over pending reads; the
		// engine-side lock manager of the (sync) variants is a fair queue.
		r.dbLocks = append(r.dbLocks, sim.NewWriterPriorityRWLock(s, "db/"+t))
		r.engLocks = append(r.engLocks, sim.NewRWLock(s, "eng/"+t))
	}
	r.locksFor = lockIntents(spec)
	r.dbPool = sim.NewSemaphore(s, "dbpool", opt.Costs.DBPoolSize)
	return r
}

// lockIntents derives the LOCK TABLES intents for each class: WRITE for
// tables the class updates, READ for tables it only consults (MyISAM
// requires every referenced table to appear in the LOCK TABLES list).
func lockIntents(spec *workloadSpec) map[string][]lockRef {
	out := make(map[string][]lockRef, len(spec.classes))
	for _, c := range spec.classes {
		if len(c.lockTables) == 0 {
			continue
		}
		writes := make(map[int]bool)
		for _, st := range c.steps {
			if st.write {
				writes[st.table] = true
			}
		}
		refs := make([]lockRef, 0, len(c.lockTables))
		for _, t := range c.lockTables {
			refs = append(refs, lockRef{table: t, write: writes[t]})
		}
		// MySQL sorts the lock list to avoid deadlock; so do we.
		sort.Slice(refs, func(i, j int) bool { return refs[i].table < refs[j].table })
		out[c.name] = refs
	}
	return out
}

// Run executes one experiment and returns its Result.
func Run(b Benchmark, m Mix, a Arch, clients int, opt Options) Result {
	opt = opt.withDefaults()
	r := newRun(b, m, a, opt)
	// Past saturation, response times grow with the client count and the
	// system needs correspondingly longer to reach steady state; scale the
	// warm-up with the expected in-system time (~N/throughput).
	rough := 9.0 // bookstore interactions/s near saturation
	if b == Auction {
		rough = 140
	}
	ramp := opt.RampUp
	if adaptive := 4 * float64(clients) / rough; adaptive > ramp {
		ramp = adaptive
	}
	r.winStart = ramp
	r.winEnd = ramp + opt.Measure

	for i := 0; i < clients; i++ {
		g := sim.NewRNG(sim.Seed(opt.Seed, i))
		r.scheduleThink(g)
	}
	r.s.Schedule(r.winStart, func() {
		r.mark = r.cl.MarkNow()
		r.lockWait0 = r.totalLockWait()
	})
	r.s.RunUntil(r.winEnd)

	res := Result{
		Benchmark: b, Mix: m, Arch: a, Clients: clients,
		Completed:     r.completed,
		ThroughputIPM: float64(r.completed) / opt.Measure * 60,
		CPU:           make(map[Tier]float64),
	}
	if r.respN > 0 {
		res.MeanResponse = r.respSum / float64(r.respN)
	}
	res.CPU[TierWeb] = 100 * r.cl.CPUUtilization(r.mark, r.web)
	res.CPU[TierDB] = 100 * r.cl.CPUUtilization(r.mark, r.db)
	if r.app != nil {
		res.CPU[TierServlet] = 100 * r.cl.CPUUtilization(r.mark, r.app)
	}
	if r.ejb != nil {
		res.CPU[TierEJB] = 100 * r.cl.CPUUtilization(r.mark, r.ejb)
	}
	res.WebNICMbps = r.cl.NICThroughput(r.mark, r.web) * 8 / 1e6
	if clients > 0 && opt.Measure > 0 {
		res.DBLockWaitFrac = (r.totalLockWait() - r.lockWait0) /
			(float64(clients) * opt.Measure)
	}
	return res
}

func (r *run) totalLockWait() float64 {
	var sum float64
	for _, l := range r.dbLocks {
		sum += l.TotalWait()
	}
	return sum
}

// scheduleThink puts a client into its think state and then starts the next
// interaction (TPC-W: negative-exponential think time, mean 7 s).
func (r *run) scheduleThink(g *sim.RNG) {
	r.s.Schedule(g.TruncExp(r.opt.ThinkTime, 10*r.opt.ThinkTime), func() {
		r.startInteraction(g)
	})
}

func (r *run) startInteraction(g *sim.RNG) {
	c := &r.spec.classes[g.Pick(r.weights)]
	start := r.s.Now()
	r.execInteraction(g, c, func() {
		end := r.s.Now()
		if end >= r.winStart && end < r.winEnd {
			r.completed++
			r.respSum += end - start
			r.respN++
		}
		r.scheduleThink(g)
	})
}

// execInteraction runs the full interaction pipeline: web-server request
// handling, architecture-specific dynamic content generation, and the
// response transmission back to the client.
func (r *run) execInteraction(g *sim.RNG, c *class, done func()) {
	co := r.costs
	finish := func() {
		// Response path: web-server CPU per byte (kernel copies and
		// interrupts) and the client-facing NIC.
		total := c.dynBytes + c.staticBytes
		r.web.CPU.Use(co.WebCPUPerByte*total, func() {
			r.web.TX.Use(total, done)
		})
	}
	r.web.CPU.Use(co.WebFixedCPU, func() {
		switch r.arch {
		case ArchPHP:
			r.web.CPU.Use(c.genCPU*co.PHPGenFactor, func() {
				r.execSteps(c, r.web, co.PHPDriverPerQuery, finish)
			})
		case ArchServlet, ArchServletSync:
			// The servlet engine is a separate process on the web-server
			// machine: the AJP protocol cost of both sides lands on the
			// same CPU (§6.1: this IPC is why co-located servlets trail
			// PHP).
			ipc := 2*co.AJPFixedCPU + 2*co.AJPPerByte*c.dynBytes
			r.web.CPU.Use(ipc+c.genCPU, func() {
				r.execSteps(c, r.web, co.JDBCDriverPerQuery, finish)
			})
		case ArchServletDedicated, ArchServletDedicatedSync:
			r.web.CPU.Use(co.AJPFixedCPU, func() {
				r.cl.Send(r.web, r.app, co.RequestBytes, func() {
					r.app.CPU.Use(co.AJPFixedCPU+c.genCPU, func() {
						r.execSteps(c, r.app, co.JDBCDriverPerQuery, func() {
							r.app.CPU.Use(co.AJPPerByte*c.dynBytes, func() {
								r.cl.Send(r.app, r.web, c.dynBytes, func() {
									r.web.CPU.Use(co.AJPPerByte*c.dynBytes, finish)
								})
							})
						})
					})
				})
			})
		case ArchEJB:
			r.execEJB(c, finish)
		default:
			panic("perfsim: unknown architecture")
		}
	})
}

// execEJB models the four-tier pipeline: the servlet keeps only the
// presentation logic and calls a stateless session façade over RMI; the
// façade's entity beans turn each hand-written query into finder plus
// per-row state queries (container-managed persistence).
func (r *run) execEJB(c *class, finish func()) {
	co := r.costs
	presCPU := c.genCPU * co.EJBPresentFactor
	logicCPU := c.genCPU * (1 - co.EJBPresentFactor) * co.EJBLogicFactor
	r.web.CPU.Use(co.AJPFixedCPU, func() {
		r.cl.Send(r.web, r.app, co.RequestBytes, func() {
			r.app.CPU.Use(co.AJPFixedCPU+presCPU+co.RMIFixedCPU, func() {
				r.cl.Send(r.app, r.ejb, co.RMIBytes, func() {
					r.ejb.CPU.Use(co.RMIFixedCPU+logicCPU, func() {
						r.execCMPSteps(c, func() {
							r.cl.Send(r.ejb, r.app, co.RMIBytes+c.dynBytes, func() {
								r.app.CPU.Use(co.RMIFixedCPU+co.AJPPerByte*c.dynBytes, func() {
									r.cl.Send(r.app, r.web, c.dynBytes, func() {
										r.web.CPU.Use(co.AJPPerByte*c.dynBytes, finish)
									})
								})
							})
						})
					})
				})
			})
		})
	})
}

// execSteps runs a class's hand-written query sequence from the engine
// machine, applying the configuration's locking discipline:
//
//   - non-sync configurations wrap lock-taking classes in database-side
//     LOCK TABLES ... UNLOCK TABLES (extra statements plus two round trips),
//     during which per-query locks on held tables are unnecessary;
//   - (sync) configurations serialize the same classes on engine-side locks
//     instead, and every query takes only its own short implicit table lock
//     at the database.
func (r *run) execSteps(c *class, mach *cluster.Machine, driverCPU float64, done func()) {
	refs := r.locksFor[c.name]
	if len(refs) == 0 {
		r.runQueries(c, mach, driverCPU, nil, 0, done)
		return
	}
	if r.arch.EngineSync() {
		// Engine-side locking: the Java implementation performs the
		// result processing and the external payment authorization BEFORE
		// entering the synchronized block, so the critical section is just
		// the back-to-back query sequence on one pinned connection. This
		// is precisely why the (sync) configurations let the database
		// reach 100% CPU (§5.1, §5.3).
		var gaps, ext float64
		for i := range c.steps {
			gaps += c.steps[i].gap
			ext += c.steps[i].extDelay
		}
		enter := func() {
			r.acquireAll(r.engLocks, refs, 0, func() {
				r.dbPool.Acquire(func() {
					r.runQueries(c, mach, driverCPU, nil, connHeld|skipStalls, func() {
						r.dbPool.Release()
						r.releaseAll(r.engLocks, refs)
						done()
					})
				})
			})
		}
		mach.CPU.Use(gaps, func() {
			if ext > 0 {
				r.s.Schedule(ext, enter)
			} else {
				enter()
			}
		})
		return
	}
	// LOCK TABLES: pin a connection, one round trip and statement, then the
	// atomic multi-table grant in sorted order (MySQL's discipline).
	co := r.costs
	held := make(map[int]bool, len(refs))
	for _, ref := range refs {
		held[ref.table] = true
	}
	r.dbPool.Acquire(func() {
		r.cl.Send(mach, r.db, co.QueryBytes, func() {
			r.acquireAll(r.dbLocks, refs, 0, func() {
				r.dbCPUUse(co.LockStmtCPU, func() {
					r.cl.Send(r.db, mach, 64, func() {
						r.runQueries(c, mach, driverCPU, held, connHeld, func() {
							// UNLOCK TABLES round trip.
							r.cl.Send(mach, r.db, co.QueryBytes, func() {
								r.dbCPUUse(co.LockStmtCPU, func() {
									r.releaseAll(r.dbLocks, refs)
									r.cl.Send(r.db, mach, 64, func() {
										r.dbPool.Release()
										done()
									})
								})
							})
						})
					})
				})
			})
		})
	})
}

// acquireAll acquires refs[i:] in order (the list is pre-sorted, MySQL's
// deadlock-avoidance discipline) and then calls done.
func (r *run) acquireAll(locks []*sim.RWLock, refs []lockRef, i int, done func()) {
	if i >= len(refs) {
		done()
		return
	}
	locks[refs[i].table].Acquire(refs[i].write, func() {
		r.acquireAll(locks, refs, i+1, done)
	})
}

func (r *run) releaseAll(locks []*sim.RWLock, refs []lockRef) {
	for _, ref := range refs {
		locks[ref.table].Release(ref.write)
	}
}

// queryFlags adjusts runQueries behaviour.
type queryFlags int

const (
	// connHeld: the caller already pinned a pooled connection; otherwise
	// each query checks one out for its own round trip.
	connHeld queryFlags = 1 << iota
	// skipStalls: engine gaps and external delays were paid up front (the
	// sync configurations hoist them out of the critical section).
	skipStalls
)

// runQueries executes the step list sequentially. held marks tables already
// covered by LOCK TABLES (no per-query lock needed); nil means every query
// takes its own short table lock, as MyISAM does implicitly.
func (r *run) runQueries(c *class, mach *cluster.Machine, driverCPU float64, held map[int]bool, flags queryFlags, done func()) {
	co := r.costs
	var step func(i int)
	step = func(i int) {
		if i >= len(c.steps) {
			done()
			return
		}
		st := &c.steps[i]
		next := func() {
			mach.CPU.Use(driverCPU, func() { step(i + 1) })
		}
		exec := func() {
			r.withConn(flags&connHeld != 0, next, func(release func()) {
				r.cl.Send(mach, r.db, co.QueryBytes, func() {
					r.dbQuery(st.table, st.write, co.DBStmtFixedCPU+st.dbCPU, held, func() {
						r.cl.Send(r.db, mach, co.ResultBytes, release)
					})
				})
			})
		}
		if flags&skipStalls != 0 {
			exec()
			return
		}
		afterGap := func() {
			if st.extDelay > 0 {
				r.s.Schedule(st.extDelay, exec)
			} else {
				exec()
			}
		}
		if st.gap > 0 {
			mach.CPU.Use(st.gap, afterGap)
		} else {
			afterGap()
		}
	}
	step(0)
}

// withConn runs body with a database connection: if haveConn, the caller's
// pinned connection is reused and body's release continues straight to next;
// otherwise a pool slot is checked out and returned before next runs.
func (r *run) withConn(haveConn bool, next func(), body func(release func())) {
	if haveConn {
		body(next)
		return
	}
	r.dbPool.Acquire(func() {
		body(func() {
			r.dbPool.Release()
			next()
		})
	})
}

// dbQuery executes one statement's CPU demand on the database, bracketed by
// the table's implicit lock unless the table is already held.
func (r *run) dbQuery(table int, write bool, cpu float64, held map[int]bool, done func()) {
	if held != nil && held[table] {
		r.dbCPUUse(cpu, done)
		return
	}
	l := r.dbLocks[table]
	l.Acquire(write, func() {
		r.dbCPUUse(cpu, func() {
			l.Release(write)
			done()
		})
	})
}

// dbCPUUse runs cpu seconds of database work, inflated by the concurrency
// overhead that models MySQL thread thrash under many simultaneous queries.
func (r *run) dbCPUUse(cpu float64, done func()) {
	eff := cpu * (1 + r.costs.DBConcOverhead*float64(r.activeQueries))
	r.activeQueries++
	r.db.CPU.Use(eff, func() {
		r.activeQueries--
		done()
	})
}

// execCMPSteps is the EJB query plan: each hand-written step becomes a
// finder (scaled by the benchmark's cmpFinderFactor) plus CMPFanout short
// bean-state queries, and materializing the page costs one short query per
// row. Short queries skip explicit locking — they are single-row primary-key
// statements whose implicit lock hold is their own execution time, which the
// per-query path models; batching them here keeps the event count tractable
// while preserving their CPU and wire cost.
func (r *run) execCMPSteps(c *class, done func()) {
	co := r.costs
	var step func(i int)
	smallQ := func(n int, after func()) {
		var one func(j int)
		one = func(j int) {
			if j >= n {
				after()
				return
			}
			r.withConn(false, func() { one(j + 1) }, func(release func()) {
				r.cl.Send(r.ejb, r.db, co.CMPQueryBytes, func() {
					r.dbCPUUse(r.spec.cmpRowQueryCPU, func() {
						r.cl.Send(r.db, r.ejb, co.CMPQueryBytes, func() {
							r.ejb.CPU.Use(co.CMPQueryCPUEJB, release)
						})
					})
				})
			})
		}
		one(0)
	}
	step = func(i int) {
		if i >= len(c.steps) {
			// Row materialization: one short query per result row.
			smallQ(c.rows, done)
			return
		}
		st := &c.steps[i]
		run := func() {
			r.withConn(false, func() { smallQ(co.CMPFanout, func() { step(i + 1) }) }, func(release func()) {
				r.cl.Send(r.ejb, r.db, co.QueryBytes, func() {
					cpu := co.DBStmtFixedCPU + st.dbCPU*r.spec.cmpFinderFactor
					r.dbQuery(st.table, st.write, cpu, nil, func() {
						r.cl.Send(r.db, r.ejb, co.ResultBytes, release)
					})
				})
			})
		}
		afterGap := func() {
			// External delays (the payment gateway) apply regardless of
			// middleware; EJB transactions hold no table locks across them.
			if st.extDelay > 0 {
				r.s.Schedule(st.extDelay, run)
			} else {
				run()
			}
		}
		if st.gap > 0 {
			r.ejb.CPU.Use(st.gap, afterGap)
		} else {
			afterGap()
		}
	}
	step(0)
}
