package ejb

import (
	"fmt"
	"testing"

	"repro/internal/rmi"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

func startDB(t testing.TB) string {
	t.Helper()
	db := sqldb.New()
	s := db.NewSession()
	defer s.Close()
	for _, q := range []string{
		`CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, nick VARCHAR(30), rating INT, balance FLOAT)`,
		`INSERT INTO users (nick, rating, balance) VALUES ('alice', 5, 100.0), ('bob', 3, 50.0)`,
		`CREATE INDEX idx_nick ON users (nick)`,
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	srv := wire.NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func userEntity() EntityDef {
	return EntityDef{Name: "User", Table: "users", Key: "id",
		Fields: []string{"nick", "rating", "balance"}}
}

func newTestContainer(t testing.TB, cfg Config) *Container {
	t.Helper()
	cfg.DBAddr = startDB(t)
	c, err := NewContainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineEntity(userEntity()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestEntityLoadGetSet(t *testing.T) {
	c := newTestContainer(t, Config{})
	tx := c.Begin()
	u, err := tx.Load("User", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	nick, err := u.Get("nick")
	if err != nil || nick.AsString() != "alice" {
		t.Fatalf("nick %v err %v", nick, err)
	}
	base := c.QueryCount()
	if err := u.Set("rating", sqldb.Int(9)); err != nil {
		t.Fatal(err)
	}
	if got := c.QueryCount() - base; got != 1 {
		t.Fatalf("CMP field store issued %d statements, want exactly 1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Verify through a fresh activation.
	u2, err := c.Begin().Load("User", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := u2.Get("rating"); r.AsInt() != 9 {
		t.Fatalf("rating %v", r)
	}
}

func TestFinderReturnsKeysOnly(t *testing.T) {
	c := newTestContainer(t, Config{})
	tx := c.Begin()
	keys, err := tx.FindBy("User", "nick", sqldb.String("bob"), 0)
	if err != nil || len(keys) != 1 || keys[0].AsInt() != 2 {
		t.Fatalf("keys %v err %v", keys, err)
	}
	// N+1 pattern: materializing costs one query per key.
	base := c.QueryCount()
	for _, k := range keys {
		if _, err := tx.Load("User", k); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.QueryCount() - base; got != int64(len(keys)) {
		t.Fatalf("activations issued %d statements, want %d", got, len(keys))
	}
}

func TestFindWhere(t *testing.T) {
	c := newTestContainer(t, Config{})
	keys, err := c.Begin().FindWhere("User", "rating > ?",
		[]sqldb.Value{sqldb.Int(2)}, "rating DESC", 10)
	if err != nil || len(keys) != 2 {
		t.Fatalf("keys %v err %v", keys, err)
	}
	if keys[0].AsInt() != 1 {
		t.Fatalf("order: %v", keys)
	}
}

func TestCreateAndRemove(t *testing.T) {
	c := newTestContainer(t, Config{})
	tx := c.Begin()
	pk, err := tx.Create("User", []sqldb.Value{sqldb.String("carol"), sqldb.Int(1), sqldb.Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	if pk.AsInt() != 3 {
		t.Fatalf("pk %v", pk)
	}
	if _, err := tx.Load("User", pk); err != nil {
		t.Fatal(err)
	}
	if err := tx.Remove("User", pk); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Load("User", pk); err == nil {
		t.Fatal("removed entity still loads")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBehindBatchesStores(t *testing.T) {
	c := newTestContainer(t, Config{WriteBehind: true})
	tx := c.Begin()
	u, err := tx.Load("User", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	base := c.QueryCount()
	// Three stores to the same field collapse into one UPDATE at commit.
	for _, v := range []int64{1, 2, 3} {
		if err := u.Set("rating", sqldb.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Set("balance", sqldb.Float(7)); err != nil {
		t.Fatal(err)
	}
	if got := c.QueryCount() - base; got != 0 {
		t.Fatalf("write-behind issued %d statements before commit", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := c.QueryCount() - base; got != 2 {
		t.Fatalf("commit issued %d statements, want 2 (one per dirty field)", got)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit must fail")
	}
	u2, _ := c.Begin().Load("User", sqldb.Int(1))
	if r, _ := u2.Get("rating"); r.AsInt() != 3 {
		t.Fatalf("last write must win: %v", r)
	}
}

func TestUnknownEntityAndField(t *testing.T) {
	c := newTestContainer(t, Config{})
	tx := c.Begin()
	if _, err := tx.Load("Nope", sqldb.Int(1)); err == nil {
		t.Fatal("unknown entity must fail")
	}
	u, err := tx.Load("User", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Get("nope"); err == nil {
		t.Fatal("unknown field get must fail")
	}
	if err := u.Set("nope", sqldb.Int(1)); err == nil {
		t.Fatal("unknown field set must fail")
	}
	if _, err := tx.Create("User", []sqldb.Value{sqldb.Int(1)}); err == nil {
		t.Fatal("wrong create arity must fail")
	}
}

func TestDuplicateEntityDefinition(t *testing.T) {
	c := newTestContainer(t, Config{})
	if err := c.DefineEntity(userEntity()); err == nil {
		t.Fatal("duplicate entity must fail")
	}
	if err := c.DefineEntity(EntityDef{Name: "X"}); err == nil {
		t.Fatal("incomplete definition must fail")
	}
}

// Facade exercises the full session-façade path over RMI.
type RateArgs struct {
	UserID int64
	Delta  int64
}
type RateReply struct {
	NewRating int64
	Queries   int64
}

type UserFacade struct{ c *Container }

func (f *UserFacade) Rate(args *RateArgs, reply *RateReply) error {
	return f.c.RunInTx(func(tx *Tx) error {
		u, err := tx.Load("User", sqldb.Int(args.UserID))
		if err != nil {
			return err
		}
		r, err := u.Get("rating")
		if err != nil {
			return err
		}
		if err := u.Set("rating", sqldb.Int(r.AsInt()+args.Delta)); err != nil {
			return err
		}
		reply.NewRating = r.AsInt() + args.Delta
		reply.Queries = f.c.QueryCount()
		return nil
	})
}

func TestSessionFacadeOverRMI(t *testing.T) {
	c := newTestContainer(t, Config{})
	if err := c.RegisterFacade("UserFacade", &UserFacade{c: c}); err != nil {
		t.Fatal(err)
	}
	addr, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := rmi.NewClient(addr.String(), 2)
	defer cl.Close()
	var reply RateReply
	if err := cl.Call("UserFacade.Rate", &RateArgs{UserID: 2, Delta: 4}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.NewRating != 7 {
		t.Fatalf("rating %d, want 7", reply.NewRating)
	}
	if reply.Queries < 2 {
		t.Fatalf("facade should have issued >=2 CMP statements, got %d", reply.Queries)
	}
}

// TestRunInTxCommitsAndCounts: container-managed demarcation commits on nil
// and the counters see it.
func TestRunInTxCommitsAndCounts(t *testing.T) {
	c := newTestContainer(t, Config{})
	err := c.RunInTx(func(tx *Tx) error {
		u, err := tx.Load("User", sqldb.Int(1))
		if err != nil {
			return err
		}
		return u.Set("rating", sqldb.Int(8))
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := c.Begin().Load("User", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := u.Get("rating"); r.AsInt() != 8 {
		t.Fatalf("rating %v, want 8", r)
	}
	if s := c.Stats(); s.TxCommits != 1 || s.TxAborts != 0 {
		t.Fatalf("tx counters %+v", s)
	}
}

// TestRunInTxErrorRollsBack: a business method returning an error must
// leave the database untouched.
func TestRunInTxErrorRollsBack(t *testing.T) {
	c := newTestContainer(t, Config{})
	errSentinel := fmt.Errorf("business rule violated")
	err := c.RunInTx(func(tx *Tx) error {
		u, err := tx.Load("User", sqldb.Int(1))
		if err != nil {
			return err
		}
		if err := u.Set("rating", sqldb.Int(99)); err != nil {
			return err
		}
		if _, err := tx.Create("User", []sqldb.Value{
			sqldb.String("phantom"), sqldb.Int(0), sqldb.Float(0)}); err != nil {
			return err
		}
		return errSentinel
	})
	if err != errSentinel {
		t.Fatalf("err %v, want sentinel", err)
	}
	tx := c.Begin()
	u, err := tx.Load("User", sqldb.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := u.Get("rating"); r.AsInt() != 5 {
		t.Fatalf("aborted store visible: rating %v", r)
	}
	if keys, _ := tx.FindBy("User", "nick", sqldb.String("phantom"), 0); len(keys) != 0 {
		t.Fatal("aborted create visible")
	}
	if s := c.Stats(); s.TxAborts != 1 {
		t.Fatalf("tx counters %+v", s)
	}
}

// TestRunInTxPanicRollsBack: a panicking business method rolls back and the
// panic propagates (the container's panic ⇒ rollback guarantee).
func TestRunInTxPanicRollsBack(t *testing.T) {
	c := newTestContainer(t, Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic must propagate")
			}
		}()
		_ = c.RunInTx(func(tx *Tx) error {
			u, err := tx.Load("User", sqldb.Int(2))
			if err != nil {
				return err
			}
			if err := u.Set("balance", sqldb.Float(-1)); err != nil {
				return err
			}
			panic("bean exploded")
		})
	}()
	u, err := c.Begin().Load("User", sqldb.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := u.Get("balance"); b.AsFloat() != 50.0 {
		t.Fatalf("balance %v, want 50 (panic must roll back)", b)
	}
	if s := c.Stats(); s.TxAborts != 1 {
		t.Fatalf("tx counters %+v", s)
	}
}
