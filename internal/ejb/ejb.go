// Package ejb is an Enterprise-JavaBeans-style container in the mold of
// JOnAS 2.5, the EJB server of the paper's testbed: entity beans with
// container-managed persistence (CMP) whose SQL is generated automatically,
// stateless session beans exposed over RMI (the session façade pattern of
// §4.2), and a per-entity bean cache.
//
// The defining performance property the paper measures — "a very large
// number of small packets ... accesses to fields in the beans that require
// a single value to be read or updated in the database" (§6.1) — falls out
// of the CMP design: finders return primary keys, each entity activation is
// a single-row SELECT, and every field store is a single-column UPDATE.
package ejb

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/pool"
	"repro/internal/rmi"
	"repro/internal/sqldb"
	"repro/internal/telemetry"
)

// EntityDef declares one entity bean: a table, its primary key and the
// managed fields.
type EntityDef struct {
	Name   string
	Table  string
	Key    string
	Fields []string
}

// entityMeta holds the container-generated SQL for one entity, prepared
// once at deployment: every CMP access (activation SELECT, field-store
// UPDATE, create INSERT, remove DELETE) runs over the wire protocol's
// EXECUTE-by-id fast path.
type entityMeta struct {
	def        EntityDef
	load       *cluster.Stmt            // SELECT key, fields WHERE key = ?
	insert     *cluster.Stmt            // INSERT (fields...)
	delete     *cluster.Stmt            // DELETE WHERE key = ?
	update     map[string]*cluster.Stmt // per-field single-column UPDATE
	fieldIndex map[string]int           // field -> position in load results
}

// Config configures a container.
type Config struct {
	// DBAddr is the database DSN (required): one wire address, a
	// comma-separated replica list for a read-one-write-all cluster, or
	// semicolon-separated shard groups of replica lists for a
	// horizontally partitioned tier.
	DBAddr string
	// DBShardBy maps table name -> partitioning column for a sharded
	// DSN (cluster.Config.ShardBy semantics; ignored without shards).
	DBShardBy map[string]string
	// DBPoolSize bounds concurrent database connections per replica
	// (default 12).
	DBPoolSize int
	// WriteBehind batches field stores until Tx.Commit instead of issuing
	// one UPDATE per Set — the ablation knob for the CMP-granularity
	// experiment. The paper's measured system behaves like false.
	WriteBehind bool
	// DBStrictWrites selects the cluster's strict write policy: a write
	// errors when any replica fails mid-broadcast instead of continuing on
	// the survivors.
	DBStrictWrites bool
	// DBTimeouts bounds the cluster transport: dial, per-statement round
	// trip, and pool-wait deadlines (pool.Timeouts semantics).
	DBTimeouts pool.Timeouts
	// DBSlowThreshold ejects a replica whose broadcast acks lag the
	// fastest replica by more than this (0: disabled).
	DBSlowThreshold time.Duration
	// DBSyncTimeout bounds a rejoining replica's data copy (cluster.Config
	// semantics: 0 is the cluster default, negative is unbounded).
	DBSyncTimeout time.Duration
	// DBQueryCache bounds the cluster client's query-result cache in
	// entries (0 disables; cluster.Config.QueryCache semantics).
	DBQueryCache int
}

// Container manages entity beans and hosts session beans over RMI.
type Container struct {
	pool        *cluster.Client
	writeBehind bool

	mu       sync.RWMutex
	entities map[string]*entityMeta

	rmiServer *rmi.Server

	queries   atomic.Int64 // statements issued, for the packet-count analysis
	loads     atomic.Int64
	stores    atomic.Int64
	txCommits atomic.Int64
	txAborts  atomic.Int64
	roCommits atomic.Int64 // commits of transactions that never wrote
}

// NewContainer creates a container connected to the database.
func NewContainer(cfg Config) (*Container, error) {
	if cfg.DBAddr == "" {
		return nil, fmt.Errorf("ejb: DBAddr required")
	}
	return &Container{
		pool: cluster.NewWithConfig(cluster.Config{
			DSN:           cfg.DBAddr,
			ShardBy:       cfg.DBShardBy,
			PoolSize:      cfg.DBPoolSize,
			StrictWrites:  cfg.DBStrictWrites,
			Timeouts:      cfg.DBTimeouts,
			SlowThreshold: cfg.DBSlowThreshold,
			SyncTimeout:   cfg.DBSyncTimeout,
			QueryCache:    cfg.DBQueryCache,
		}),
		writeBehind: cfg.WriteBehind,
		entities:    make(map[string]*entityMeta),
		rmiServer:   rmi.NewServer(),
	}, nil
}

// DefineEntity registers an entity bean and generates its CMP SQL.
func (c *Container) DefineEntity(def EntityDef) error {
	if def.Name == "" || def.Table == "" || def.Key == "" {
		return fmt.Errorf("ejb: entity definition needs name, table and key")
	}
	m := &entityMeta{
		def:        def,
		update:     make(map[string]*cluster.Stmt, len(def.Fields)),
		fieldIndex: make(map[string]int, len(def.Fields)),
	}
	cols := append([]string{def.Key}, def.Fields...)
	m.load = c.pool.Prepare(fmt.Sprintf("SELECT %s FROM %s WHERE %s = ?",
		strings.Join(cols, ", "), def.Table, def.Key))
	ph := strings.TrimSuffix(strings.Repeat("?, ", len(def.Fields)), ", ")
	m.insert = c.pool.Prepare(fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)",
		def.Table, strings.Join(def.Fields, ", "), ph))
	m.delete = c.pool.Prepare(fmt.Sprintf("DELETE FROM %s WHERE %s = ?", def.Table, def.Key))
	for i, f := range def.Fields {
		m.update[f] = c.pool.Prepare(fmt.Sprintf("UPDATE %s SET %s = ? WHERE %s = ?",
			def.Table, f, def.Key))
		m.fieldIndex[f] = i + 1 // position 0 is the key
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entities[def.Name]; dup {
		return fmt.Errorf("ejb: duplicate entity %q", def.Name)
	}
	c.entities[def.Name] = m
	return nil
}

func (c *Container) meta(name string) (*entityMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.entities[name]
	if !ok {
		return nil, fmt.Errorf("ejb: unknown entity %q", name)
	}
	return m, nil
}

// QueryCount returns the number of statements the container has issued —
// the observable behind the paper's ~2,000 packets/s measurement.
func (c *Container) QueryCount() int64 { return c.queries.Load() }

// LoadCount returns entity activations (single-row SELECTs).
func (c *Container) LoadCount() int64 { return c.loads.Load() }

// StoreCount returns field stores (single-column UPDATEs).
func (c *Container) StoreCount() int64 { return c.stores.Load() }

// Stats describes the container's load for the cross-tier telemetry: the
// CMP statement counters, the database pool's aggregate saturation
// counters, and the per-replica routing breakdown for clustered databases.
type Stats struct {
	Queries int64 `json:"queries"`
	Loads   int64 `json:"loads"`
	Stores  int64 `json:"stores"`
	// TxCommits / TxAborts count container-managed transaction outcomes
	// (RunInTx demarcations and explicit Tx completions).
	TxCommits int64 `json:"tx_commits"`
	TxAborts  int64 `json:"tx_aborts"`
	// TxReadOnly counts the subset of TxCommits whose business method never
	// wrote: the lazy demarcation left them without a database transaction,
	// so their reads were pure MVCC snapshot traffic — no write-order locks,
	// no broadcast, no replica coordination of any kind.
	TxReadOnly int64               `json:"tx_readonly"`
	DB         pool.Stats          `json:"db"`
	Replicas   []telemetry.Replica `json:"replicas,omitempty"`
}

// Stats snapshots the container.
func (c *Container) Stats() Stats {
	s := Stats{
		Queries:    c.queries.Load(),
		Loads:      c.loads.Load(),
		Stores:     c.stores.Load(),
		TxCommits:  c.txCommits.Load(),
		TxAborts:   c.txAborts.Load(),
		TxReadOnly: c.roCommits.Load(),
		DB:         c.pool.Stats(),
	}
	if c.pool.Replicas() > 1 {
		s.Replicas = c.pool.ReplicaStats()
	}
	return s
}

// Entity is an activated entity bean instance: a local copy of one row.
type Entity struct {
	meta   *entityMeta
	c      *Container
	tx     *Tx
	pk     sqldb.Value
	fields []sqldb.Value
}

// PK returns the primary key value.
func (e *Entity) PK() sqldb.Value { return e.pk }

// Get returns a managed field's value from the activated state.
func (e *Entity) Get(field string) (sqldb.Value, error) {
	i, ok := e.meta.fieldIndex[field]
	if !ok {
		return sqldb.Null(), fmt.Errorf("ejb: entity %q has no field %q", e.meta.def.Name, field)
	}
	return e.fields[i], nil
}

// Set stores a managed field. With container-managed persistence each store
// is one single-column UPDATE (unless the transaction batches writes). The
// first store opens the transaction's database transaction: every
// subsequent statement of the business method runs inside it, and a
// rollback revokes them all.
func (e *Entity) Set(field string, v sqldb.Value) error {
	i, ok := e.meta.fieldIndex[field]
	if !ok {
		return fmt.Errorf("ejb: entity %q has no field %q", e.meta.def.Name, field)
	}
	e.fields[i] = v
	e.c.stores.Add(1)
	if e.tx != nil && e.c.writeBehind {
		e.tx.addDirty(e, field, v)
		return nil
	}
	_, err := e.tx.execWrite(e.meta.update[field], v, e.pk)
	return err
}

// Tx is a container-managed transaction: the unit-of-work every business
// method runs in. It is backed by a real database transaction, opened
// lazily on the first write — reads before any write run on load-balanced
// pooled connections, and a purely-read method never pays for transaction
// state at all. Once a write happens, every statement of the method (reads
// included) runs on the transaction's session, Commit makes the method's
// effects atomic across all replicas, and Rollback (or a panic unwinding
// through RunInTx) erases them bit-identically.
//
// Isolation note: reads before the first write are NOT serialized against
// concurrent transactions — they are MVCC snapshot reads (each statement
// sees the last committed state, never touching the lock table), so two
// business methods can both activate an entity and then write values
// derived from the same stale read. This mirrors the paper's EJB
// configuration, whose CMP activations ran under nothing stronger than
// MyISAM's per-statement locks (the hand-written-SQL apps' LOCK TABLES
// discipline had no EJB counterpart). A method that never writes completes
// without ever opening a database transaction: snapshot-only, zero
// replication coordination.
type Tx struct {
	c     *Container
	sess  *cluster.Session
	dirty []dirtyField
	done  bool
}

type dirtyField struct {
	e     *Entity
	field string
	v     sqldb.Value
}

// Begin opens a container-managed transaction. Most callers should use
// RunInTx, which also demarcates the commit/rollback decision.
func (c *Container) Begin() *Tx { return &Tx{c: c} }

// RunInTx is container-managed transaction demarcation: the business
// method fn runs inside a fresh transaction; returning nil commits,
// returning an error rolls back, and a panic rolls back before re-raising
// — so a crashing business method can never publish partial state.
func (c *Container) RunInTx(fn func(tx *Tx) error) error {
	tx := c.Begin()
	defer func() {
		if r := recover(); r != nil {
			_ = tx.Rollback()
			panic(r)
		}
	}()
	if err := fn(tx); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}

// ensureTxn lazily opens the backing database transaction. The transaction
// declares no write tables (a business method's write set is not known up
// front), so conflicting transactions serialize on the cluster's catch-all
// key when the database tier is replicated.
func (t *Tx) ensureTxn() error {
	if t.sess != nil {
		return nil
	}
	if t.done {
		return fmt.Errorf("ejb: transaction already completed")
	}
	sess, err := t.c.pool.Get()
	if err != nil {
		return err
	}
	if err := sess.Begin(); err != nil {
		t.c.pool.Put(sess, true)
		return err
	}
	t.sess = sess
	return nil
}

// execRead runs a pre-prepared CMP statement: on the transaction's session
// once one is open (read-your-writes), otherwise over the pool's
// EXECUTE-by-id fast path.
func (t *Tx) execRead(st *cluster.Stmt, args ...sqldb.Value) (*sqldb.Result, error) {
	t.c.queries.Add(1)
	if t.sess != nil {
		return t.sess.ExecCached(st.Query(), args...)
	}
	return st.Exec(args...)
}

// execWrite runs a pre-prepared CMP write inside the database transaction,
// opening it first if needed.
func (t *Tx) execWrite(st *cluster.Stmt, args ...sqldb.Value) (*sqldb.Result, error) {
	if err := t.ensureTxn(); err != nil {
		return nil, err
	}
	t.c.queries.Add(1)
	return t.sess.ExecCached(st.Query(), args...)
}

// execText runs dynamically built finder SQL (a read). The pool caches a
// Stmt per distinct text, so even finders run prepared after first use.
func (t *Tx) execText(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	t.c.queries.Add(1)
	if t.sess != nil {
		return t.sess.ExecCached(query, args...)
	}
	return t.c.pool.ExecCached(query, args...)
}

// end releases the backing session, committing or rolling back first.
func (t *Tx) end(commit bool) error {
	t.done = true
	if t.sess == nil {
		return nil
	}
	sess := t.sess
	t.sess = nil
	var err error
	if commit {
		err = sess.Commit()
	} else {
		err = sess.Rollback()
	}
	t.c.pool.Put(sess, err != nil)
	return err
}

func (t *Tx) addDirty(e *Entity, field string, v sqldb.Value) {
	t.dirty = append(t.dirty, dirtyField{e, field, v})
}

// Commit flushes deferred field stores (one UPDATE per dirty field, last
// write wins per field) and commits the database transaction.
func (t *Tx) Commit() error {
	if t.done {
		return fmt.Errorf("ejb: transaction already completed")
	}
	type key struct {
		e     *Entity
		field string
	}
	last := make(map[key]sqldb.Value, len(t.dirty))
	order := make([]key, 0, len(t.dirty))
	for _, d := range t.dirty {
		k := key{d.e, d.field}
		if _, seen := last[k]; !seen {
			order = append(order, k)
		}
		last[k] = d.v
	}
	for _, k := range order {
		if _, err := t.execWrite(k.e.meta.update[k.field], last[k], k.e.pk); err != nil {
			_ = t.end(false)
			t.c.txAborts.Add(1)
			return err
		}
	}
	// A method that never wrote has no backing database transaction: its
	// reads ran as MVCC snapshot statements on pooled connections, and its
	// "commit" is free. Counted separately so the telemetry can show how much
	// of the transaction volume paid zero replication tax.
	ro := t.sess == nil
	if err := t.end(true); err != nil {
		t.c.txAborts.Add(1)
		return err
	}
	t.c.txCommits.Add(1)
	if ro {
		t.c.roCommits.Add(1)
	}
	return nil
}

// Rollback aborts the transaction: deferred stores are discarded and the
// database transaction (if any statement opened one) rolls back on every
// replica. Without an open database transaction it is a no-op — a failing
// read-only method has nothing to undo.
func (t *Tx) Rollback() error {
	if t.done {
		return nil
	}
	t.dirty = nil
	err := t.end(false)
	t.c.txAborts.Add(1)
	return err
}

// Load activates an entity by primary key within the transaction.
func (t *Tx) Load(entity string, pk sqldb.Value) (*Entity, error) {
	m, err := t.c.meta(entity)
	if err != nil {
		return nil, err
	}
	t.c.loads.Add(1)
	res, err := t.execRead(m.load, pk)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("ejb: %s[%v] not found", entity, pk)
	}
	// The entity's field slice is a private copy: SetField mutates it in
	// place, and the loaded row may be shared — the cluster's query cache
	// serves result rows to many callers.
	return &Entity{meta: m, c: t.c, tx: t, pk: res.Rows[0][0],
		fields: append(sqldb.Row(nil), res.Rows[0]...)}, nil
}

// FindBy runs a CMP finder: SELECT key FROM table WHERE col = ? [LIMIT n],
// returning primary keys only — materializing each result costs a Load.
func (t *Tx) FindBy(entity, col string, v sqldb.Value, limit int) ([]sqldb.Value, error) {
	m, err := t.c.meta(entity)
	if err != nil {
		return nil, err
	}
	q := fmt.Sprintf("SELECT %s FROM %s WHERE %s = ?", m.def.Key, m.def.Table, col)
	if limit > 0 {
		q += fmt.Sprintf(" LIMIT %d", limit)
	}
	res, err := t.execText(q, v)
	if err != nil {
		return nil, err
	}
	return keysOf(res), nil
}

// FindWhere runs a finder with a caller-supplied condition (the EJB-QL
// analog), still returning primary keys only.
func (t *Tx) FindWhere(entity, whereSQL string, args []sqldb.Value, orderBy string, limit int) ([]sqldb.Value, error) {
	m, err := t.c.meta(entity)
	if err != nil {
		return nil, err
	}
	q := fmt.Sprintf("SELECT %s FROM %s", m.def.Key, m.def.Table)
	if whereSQL != "" {
		q += " WHERE " + whereSQL
	}
	if orderBy != "" {
		q += " ORDER BY " + orderBy
	}
	if limit > 0 {
		q += fmt.Sprintf(" LIMIT %d", limit)
	}
	res, err := t.execText(q, args...)
	if err != nil {
		return nil, err
	}
	return keysOf(res), nil
}

func keysOf(res *sqldb.Result) []sqldb.Value {
	keys := make([]sqldb.Value, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = r[0]
	}
	return keys
}

// Create inserts a new entity row; values follow the definition's field
// order. It returns the new primary key (AUTO_INCREMENT when the schema
// assigns it).
func (t *Tx) Create(entity string, values []sqldb.Value) (sqldb.Value, error) {
	m, err := t.c.meta(entity)
	if err != nil {
		return sqldb.Null(), err
	}
	if len(values) != len(m.def.Fields) {
		return sqldb.Null(), fmt.Errorf("ejb: %s create needs %d values, got %d",
			entity, len(m.def.Fields), len(values))
	}
	res, err := t.execWrite(m.insert, values...)
	if err != nil {
		return sqldb.Null(), err
	}
	return sqldb.Int(res.LastInsertID), nil
}

// Remove deletes an entity row.
func (t *Tx) Remove(entity string, pk sqldb.Value) error {
	m, err := t.c.meta(entity)
	if err != nil {
		return err
	}
	_, err = t.execWrite(m.delete, pk)
	return err
}

// RegisterFacade exposes a stateless session bean over RMI under name.
func (c *Container) RegisterFacade(name string, facade any) error {
	return c.rmiServer.Register(name, facade)
}

// Serve binds the RMI endpoint.
func (c *Container) Serve(addr string) (net.Addr, error) {
	return c.rmiServer.Listen(addr)
}

// Close stops the RMI server and the DB pool.
func (c *Container) Close() error {
	err := c.rmiServer.Close()
	c.pool.Close()
	return err
}

// DB exposes the pooled database client for session beans that need
// non-CMP access (the paper's façades occasionally run read-only finders
// directly).
func (c *Container) DB() *cluster.Client { return c.pool }
