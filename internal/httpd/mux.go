package httpd

import (
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// Mux routes requests by path: exact matches first, then the longest
// registered prefix ending in "/".
type Mux struct {
	mu       sync.RWMutex
	exact    map[string]Handler
	prefixes map[string]Handler
	sorted   []string // prefix keys, longest first
}

// NewMux returns an empty mux.
func NewMux() *Mux {
	return &Mux{exact: make(map[string]Handler), prefixes: make(map[string]Handler)}
}

// Handle registers a handler. Patterns ending in "/" match by prefix.
func (m *Mux) Handle(pattern string, h Handler) {
	if pattern == "" || pattern[0] != '/' {
		panic(fmt.Sprintf("httpd: invalid pattern %q", pattern))
	}
	if h == nil {
		panic("httpd: nil handler")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if strings.HasSuffix(pattern, "/") {
		m.prefixes[pattern] = h
		m.sorted = append(m.sorted[:0:0], m.sorted...)
		m.sorted = nil
		for p := range m.prefixes {
			m.sorted = append(m.sorted, p)
		}
		sort.Slice(m.sorted, func(i, j int) bool { return len(m.sorted[i]) > len(m.sorted[j]) })
		return
	}
	m.exact[pattern] = h
}

// HandleFunc registers a function handler.
func (m *Mux) HandleFunc(pattern string, f func(*Request) (*Response, error)) {
	m.Handle(pattern, HandlerFunc(f))
}

// ServeHTTP dispatches to the matching handler or returns 404.
func (m *Mux) ServeHTTP(req *Request) (*Response, error) {
	m.mu.RLock()
	h := m.exact[req.Path]
	if h == nil {
		for _, p := range m.sorted {
			if strings.HasPrefix(req.Path, p) {
				h = m.prefixes[p]
				break
			}
		}
	}
	m.mu.RUnlock()
	if h == nil {
		return Error(404, "no handler for "+req.Path), nil
	}
	return h.ServeHTTP(req)
}

// StaticSet serves in-memory static content (the benchmark images are
// generated synthetically, so no on-disk document root is required; AddFile
// supports mixing in real files).
type StaticSet struct {
	mu    sync.RWMutex
	files map[string][]byte
	types map[string]string
}

// NewStaticSet returns an empty static content set.
func NewStaticSet() *StaticSet {
	return &StaticSet{files: make(map[string][]byte), types: make(map[string]string)}
}

// Add registers content at path with an explicit content type.
func (s *StaticSet) Add(p string, body []byte, contentType string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[p] = body
	s.types[p] = contentType
}

// AddFile loads an on-disk file into the set.
func (s *StaticSet) AddFile(p, diskPath string) error {
	body, err := os.ReadFile(diskPath)
	if err != nil {
		return fmt.Errorf("httpd: static %s: %w", diskPath, err)
	}
	s.Add(p, body, contentTypeFor(diskPath))
	return nil
}

// Len returns the number of files.
func (s *StaticSet) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// TotalBytes returns the total stored size.
func (s *StaticSet) TotalBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, b := range s.files {
		n += len(b)
	}
	return n
}

// ServeHTTP serves the file at the request path.
func (s *StaticSet) ServeHTTP(req *Request) (*Response, error) {
	if req.Method != "GET" && req.Method != "HEAD" {
		return Error(405, ""), nil
	}
	s.mu.RLock()
	body, ok := s.files[req.Path]
	ct := s.types[req.Path]
	s.mu.RUnlock()
	if !ok {
		return Error(404, ""), nil
	}
	resp := NewResponse()
	if ct == "" {
		ct = contentTypeFor(req.Path)
	}
	resp.Header.Set("Content-Type", ct)
	resp.Body = body
	return resp, nil
}

// contentTypeFor guesses from the extension (the handful the site serves).
func contentTypeFor(p string) string {
	switch strings.ToLower(path.Ext(p)) {
	case ".html", ".htm":
		return "text/html; charset=utf-8"
	case ".gif":
		return "image/gif"
	case ".jpg", ".jpeg":
		return "image/jpeg"
	case ".png":
		return "image/png"
	case ".css":
		return "text/css"
	case ".txt":
		return "text/plain; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}
