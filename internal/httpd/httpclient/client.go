// Package httpclient is a persistent-connection HTTP/1.1 client for the
// client-browser emulator: the paper's emulated browsers open one
// keep-alive connection per session and issue every interaction (and its
// embedded image fetches) over it.
package httpclient

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Response is a parsed HTTP response.
type Response struct {
	Status int
	Header map[string]string
	Body   []byte
}

// Client is a single-connection HTTP client. Not safe for concurrent use;
// each emulated browser session owns one, matching the paper's model. It
// keeps a browser-style cookie jar: cookies the server sets are echoed on
// every subsequent request, which is what carries the JSESSIONID session
// (and its load-balancer affinity route) across interactions.
type Client struct {
	addr    string
	timeout time.Duration
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	jar     map[string]string
	// armedUntil amortizes SetDeadline: fast back-to-back requests reuse
	// the armed deadline while >3/4 of the timeout window remains.
	armedUntil time.Time
}

// New creates a client for addr ("host:port"). timeout bounds each request
// round trip (zero: none).
func New(addr string, timeout time.Duration) *Client {
	return &Client{addr: addr, timeout: timeout}
}

// connect (re)establishes the persistent connection. The round-trip
// timeout bounds the dial too — a stalled accept queue should fail like
// a stalled response, not hang the emulated browser.
func (c *Client) connect() error {
	c.closeConn()
	var conn net.Conn
	var err error
	if c.timeout > 0 {
		conn, err = net.DialTimeout("tcp", c.addr, c.timeout)
	} else {
		conn, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return fmt.Errorf("httpclient: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, 32<<10)
	c.bw = bufio.NewWriterSize(conn, 16<<10)
	c.armedUntil = time.Time{} // fresh conn has no deadline armed yet
	return nil
}

func (c *Client) closeConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close shuts the connection down.
func (c *Client) Close() { c.closeConn() }

// Get issues a GET for path (which may include a query string).
func (c *Client) Get(path string) (*Response, error) {
	return c.Do("GET", path, "", nil)
}

// PostForm issues an application/x-www-form-urlencoded POST.
func (c *Client) PostForm(path, form string) (*Response, error) {
	return c.Do("POST", path, "application/x-www-form-urlencoded", []byte(form))
}

// Do issues one request, transparently reconnecting once if the persistent
// connection went stale (server idle-closed it between interactions).
func (c *Client) Do(method, path, contentType string, body []byte) (*Response, error) {
	fresh := false
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil, err
		}
		fresh = true
	}
	resp, err := c.attempt(method, path, contentType, body)
	if err != nil && !fresh && retriable(err) {
		if err := c.connect(); err != nil {
			return nil, err
		}
		resp, err = c.attempt(method, path, contentType, body)
	}
	if err != nil {
		c.closeConn()
		return nil, err
	}
	if sc := resp.Header["set-cookie"]; sc != "" {
		// First attribute is the NAME=VALUE pair; the rest (Path, ...) are
		// directives this single-site client does not need.
		pair, _, _ := strings.Cut(sc, ";")
		if name, value, ok := strings.Cut(strings.TrimSpace(pair), "="); ok {
			if c.jar == nil {
				c.jar = make(map[string]string)
			}
			c.jar[name] = value
		}
	}
	if strings.EqualFold(resp.Header["connection"], "close") {
		c.closeConn()
	}
	return resp, nil
}

// Cookie returns the jar's value for name ("" when the server never set
// it) — tests use it to read the session's affinity route.
func (c *Client) Cookie(name string) string { return c.jar[name] }

// retriable reports errors that indicate a stale keep-alive connection.
func retriable(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || strings.Contains(err.Error(), "reset by peer") ||
		strings.Contains(err.Error(), "broken pipe")
}

func (c *Client) attempt(method, path, contentType string, body []byte) (*Response, error) {
	if c.timeout > 0 {
		if now := time.Now(); c.armedUntil.Sub(now) <= c.timeout-c.timeout/4 {
			c.armedUntil = now.Add(c.timeout)
			_ = c.conn.SetDeadline(c.armedUntil)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\nHost: %s\r\n", method, path, c.addr)
	if len(c.jar) > 0 {
		b.WriteString("Cookie: ")
		first := true
		for name, value := range c.jar {
			if !first {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s=%s", name, value)
			first = false
		}
		b.WriteString("\r\n")
	}
	if len(body) > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
		if contentType != "" {
			fmt.Fprintf(&b, "Content-Type: %s\r\n", contentType)
		}
	}
	b.WriteString("\r\n")
	if _, err := io.WriteString(c.bw, b.String()); err != nil {
		return nil, err
	}
	if len(body) > 0 {
		if _, err := c.bw.Write(body); err != nil {
			return nil, err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return readResponse(c.br, method == "HEAD")
}

func readResponse(br *bufio.Reader, headOnly bool) (*Response, error) {
	status, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(status, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("httpclient: malformed status line %q", status)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("httpclient: bad status code in %q", status)
	}
	resp := &Response{Status: code, Header: make(map[string]string)}
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			break
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("httpclient: malformed header %q", line)
		}
		resp.Header[strings.ToLower(strings.TrimSpace(name))] = strings.TrimSpace(value)
	}
	if headOnly {
		return resp, nil
	}
	cl := resp.Header["content-length"]
	if cl == "" {
		return resp, nil
	}
	n, err := strconv.Atoi(cl)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("httpclient: bad Content-Length %q", cl)
	}
	resp.Body = make([]byte, n)
	if _, err := io.ReadFull(br, resp.Body); err != nil {
		return nil, fmt.Errorf("httpclient: short body: %w", err)
	}
	return resp, nil
}

func readLine(br *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		chunk, isPrefix, err := br.ReadLine()
		if err != nil {
			return "", err
		}
		b.Write(chunk)
		if b.Len() > 64<<10 {
			return "", errors.New("httpclient: line too long")
		}
		if !isPrefix {
			return b.String(), nil
		}
	}
}
