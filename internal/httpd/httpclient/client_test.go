package httpclient

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// rawServer speaks scripted HTTP for client-side edge cases.
func rawServer(t *testing.T, handler func(conn net.Conn, br *bufio.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(conn, bufio.NewReader(conn))
		}
	}()
	return ln.Addr().String()
}

// readRawRequest consumes one request including any body.
func readRawRequest(br *bufio.Reader) bool {
	var contentLength int
	first := true
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return false
		}
		line = strings.TrimRight(line, "\r\n")
		if first && line == "" {
			continue
		}
		first = false
		if line == "" {
			break
		}
		if strings.HasPrefix(strings.ToLower(line), "content-length:") {
			fmt.Sscanf(strings.TrimSpace(line[len("content-length:"):]), "%d", &contentLength)
		}
	}
	if contentLength > 0 {
		buf := make([]byte, contentLength)
		for read := 0; read < contentLength; {
			n, err := br.Read(buf[read:])
			if err != nil {
				return false
			}
			read += n
		}
	}
	return true
}

func TestGetParsesStatusHeadersBody(t *testing.T) {
	addr := rawServer(t, func(conn net.Conn, br *bufio.Reader) {
		defer conn.Close()
		if !readRawRequest(br) {
			return
		}
		fmt.Fprintf(conn, "HTTP/1.1 201 Created\r\nX-Custom: Yes\r\nContent-Length: 5\r\n\r\nhello")
	})
	c := New(addr, 2*time.Second)
	defer c.Close()
	resp, err := c.Get("/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 201 || resp.Header["x-custom"] != "Yes" || string(resp.Body) != "hello" {
		t.Fatalf("resp: %+v %q", resp, resp.Body)
	}
}

func TestConnectionCloseHonored(t *testing.T) {
	var conns atomic.Int64
	addr := rawServer(t, func(conn net.Conn, br *bufio.Reader) {
		conns.Add(1)
		defer conn.Close()
		if !readRawRequest(br) {
			return
		}
		fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 2\r\n\r\nok")
	})
	c := New(addr, 2*time.Second)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Get("/"); err != nil {
			t.Fatal(err)
		}
	}
	if n := conns.Load(); n != 3 {
		t.Fatalf("client reused a closed connection (%d conns)", n)
	}
}

func TestStaleKeepAliveRetry(t *testing.T) {
	// Server closes the connection after one response without announcing
	// it; the client must transparently retry on a fresh connection.
	addr := rawServer(t, func(conn net.Conn, br *bufio.Reader) {
		defer conn.Close()
		if !readRawRequest(br) {
			return
		}
		fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\na")
		// silently close despite implied keep-alive
	})
	c := New(addr, 2*time.Second)
	defer c.Close()
	if _, err := c.Get("/1"); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get("/2")
	if err != nil {
		t.Fatalf("stale-connection retry failed: %v", err)
	}
	if string(resp.Body) != "a" {
		t.Fatalf("body %q", resp.Body)
	}
}

func TestMalformedStatusLine(t *testing.T) {
	addr := rawServer(t, func(conn net.Conn, br *bufio.Reader) {
		defer conn.Close()
		if !readRawRequest(br) {
			return
		}
		fmt.Fprintf(conn, "TOTALLY/NOT HTTP\r\n\r\n")
	})
	c := New(addr, 2*time.Second)
	defer c.Close()
	if _, err := c.Get("/"); err == nil {
		t.Fatal("malformed status line must error")
	}
}

func TestTimeout(t *testing.T) {
	addr := rawServer(t, func(conn net.Conn, br *bufio.Reader) {
		defer conn.Close()
		readRawRequest(br)
		time.Sleep(2 * time.Second) // never respond in time
	})
	c := New(addr, 150*time.Millisecond)
	defer c.Close()
	start := time.Now()
	if _, err := c.Get("/"); err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout not enforced")
	}
}

func TestPostFormSendsBody(t *testing.T) {
	got := make(chan string, 1)
	addr := rawServer(t, func(conn net.Conn, br *bufio.Reader) {
		defer conn.Close()
		var cl int
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "" {
				break
			}
			if strings.HasPrefix(strings.ToLower(line), "content-length:") {
				fmt.Sscanf(strings.TrimSpace(line[len("content-length:"):]), "%d", &cl)
			}
		}
		body := make([]byte, cl)
		for read := 0; read < cl; {
			n, err := br.Read(body[read:])
			if err != nil {
				return
			}
			read += n
		}
		got <- string(body)
		fmt.Fprintf(conn, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
	})
	c := New(addr, 2*time.Second)
	defer c.Close()
	if _, err := c.PostForm("/submit", "a=1&b=2"); err != nil {
		t.Fatal(err)
	}
	select {
	case body := <-got:
		if body != "a=1&b=2" {
			t.Fatalf("body %q", body)
		}
	case <-time.After(time.Second):
		t.Fatal("server never saw the body")
	}
}
