// Package httpd is a small HTTP/1.1 server built directly on net.Conn,
// standing in for the Apache 1.3 web server of the paper's testbed. It
// serves static content itself and dispatches dynamic requests to a
// pluggable Handler — either an in-process module (the mod_php analog, see
// internal/scriptmod) or a connector that forwards to a separate application
// container over the AJP-like protocol (internal/ajp).
//
// Supported protocol surface: GET/POST/HEAD, request headers, query strings,
// Content-Length bodies, persistent connections with Connection: close
// opt-out, and 1.0-style single-shot connections.
package httpd

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// CookieValue extracts one cookie's value from a Cookie header — the
// shared parser under the servlet tier's session lookup and the load
// balancer's affinity routing (they must agree on cookie parsing, or
// affinity silently breaks).
func CookieValue(header, name string) string {
	for _, part := range strings.Split(header, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if ok && k == name {
			return v
		}
	}
	return ""
}

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Path    string // decoded path, query stripped
	RawPath string // as received
	Proto   string
	Header  Header
	Query   url.Values
	Body    []byte

	// RemoteAddr is the client address, for logs.
	RemoteAddr string
}

// Form returns POST form values (application/x-www-form-urlencoded) merged
// over the query string, query first.
func (r *Request) Form() url.Values {
	v := url.Values{}
	for k, vals := range r.Query {
		v[k] = append(v[k], vals...)
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-www-form-urlencoded") {
		if parsed, err := url.ParseQuery(string(r.Body)); err == nil {
			for k, vals := range parsed {
				v[k] = append(v[k], vals...)
			}
		}
	}
	return v
}

// Header is a case-insensitive header map with deterministic write order.
type Header map[string]string

// Get returns the header value ("" when absent).
func (h Header) Get(key string) string { return h[canonical(key)] }

// Set stores a header value.
func (h Header) Set(key, value string) { h[canonical(key)] = value }

// Del removes a header.
func (h Header) Del(key string) { delete(h, canonical(key)) }

// keys returns header names sorted for deterministic serialization.
func (h Header) keys() []string {
	ks := make([]string, 0, len(h))
	for k := range h {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// canonical normalizes a header name: "content-type" -> "Content-Type".
func canonical(key string) string {
	b := []byte(key)
	upper := true
	for i, c := range b {
		switch {
		case upper && 'a' <= c && c <= 'z':
			b[i] = c - ('a' - 'A')
		case !upper && 'A' <= c && c <= 'Z':
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// Response is a buffered HTTP response under construction.
type Response struct {
	Status int
	Header Header
	Body   []byte
}

// NewResponse returns an empty 200 response.
func NewResponse() *Response {
	return &Response{Status: 200, Header: Header{}}
}

// WriteString appends body text.
func (r *Response) WriteString(s string) { r.Body = append(r.Body, s...) }

// Write appends body bytes, satisfying io.Writer.
func (r *Response) Write(p []byte) (int, error) {
	r.Body = append(r.Body, p...)
	return len(p), nil
}

// Handler generates responses for requests.
type Handler interface {
	ServeHTTP(req *Request) (*Response, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(req *Request) (*Response, error)

// ServeHTTP calls f.
func (f HandlerFunc) ServeHTTP(req *Request) (*Response, error) { return f(req) }

// statusText maps the codes the stack produces.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 302:
		return "Found"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 413:
		return "Payload Too Large"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return fmt.Sprintf("Status %d", code)
	}
}

// Error builds a plain-text error response.
func Error(code int, msg string) *Response {
	r := NewResponse()
	r.Status = code
	r.Header.Set("Content-Type", "text/plain; charset=utf-8")
	if msg == "" {
		msg = statusText(code)
	}
	r.WriteString(msg + "\n")
	return r
}
