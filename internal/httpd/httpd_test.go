package httpd_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/httpd"
	"repro/internal/httpd/httpclient"
)

func startServer(t *testing.T, h httpd.Handler) string {
	t.Helper()
	srv := httpd.NewServer(h, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

func echoHandler(req *httpd.Request) (*httpd.Response, error) {
	resp := httpd.NewResponse()
	resp.Header.Set("Content-Type", "text/plain")
	fmt.Fprintf(resp, "method=%s path=%s q=%s body=%s",
		req.Method, req.Path, req.Query.Get("x"), req.Body)
	return resp, nil
}

func TestGetRoundtrip(t *testing.T) {
	addr := startServer(t, httpd.HandlerFunc(echoHandler))
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Get("/hello?x=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status %d", resp.Status)
	}
	if got := string(resp.Body); got != "method=GET path=/hello q=1 body=" {
		t.Fatalf("body %q", got)
	}
}

func TestPostForm(t *testing.T) {
	addr := startServer(t, httpd.HandlerFunc(func(req *httpd.Request) (*httpd.Response, error) {
		resp := httpd.NewResponse()
		f := req.Form()
		fmt.Fprintf(resp, "a=%s b=%s", f.Get("a"), f.Get("b"))
		return resp, nil
	}))
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.PostForm("/submit?a=1", "b=two")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(resp.Body); got != "a=1 b=two" {
		t.Fatalf("form: %q", got)
	}
}

func TestKeepAliveReuse(t *testing.T) {
	var mu sync.Mutex
	remotes := make(map[string]int)
	addr := startServer(t, httpd.HandlerFunc(func(req *httpd.Request) (*httpd.Response, error) {
		mu.Lock()
		remotes[req.RemoteAddr]++
		mu.Unlock()
		return httpd.NewResponse(), nil
	}))
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Get("/"); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(remotes) != 1 {
		t.Fatalf("used %d connections, want 1 (keep-alive)", len(remotes))
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startServer(t, httpd.HandlerFunc(echoHandler))
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := httpclient.New(addr, 5*time.Second)
			defer c.Close()
			for j := 0; j < 10; j++ {
				resp, err := c.Get(fmt.Sprintf("/p%d?x=%d", i, j))
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				want := fmt.Sprintf("q=%d", j)
				if !strings.Contains(string(resp.Body), want) {
					t.Errorf("body %q missing %q", resp.Body, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMuxRouting(t *testing.T) {
	mux := httpd.NewMux()
	mux.HandleFunc("/exact", func(*httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		r.WriteString("exact")
		return r, nil
	})
	mux.HandleFunc("/images/", func(req *httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		r.WriteString("img:" + req.Path)
		return r, nil
	})
	mux.HandleFunc("/images/special/", func(*httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		r.WriteString("special")
		return r, nil
	})
	addr := startServer(t, mux)
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()

	cases := []struct{ path, want string }{
		{"/exact", "exact"},
		{"/images/a.gif", "img:/images/a.gif"},
		{"/images/special/b.gif", "special"}, // longest prefix wins
	}
	for _, tc := range cases {
		resp, err := c.Get(tc.path)
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != tc.want {
			t.Errorf("%s -> %q, want %q", tc.path, resp.Body, tc.want)
		}
	}
	resp, _ := c.Get("/nope")
	if resp.Status != 404 {
		t.Fatalf("unrouted path: %d", resp.Status)
	}
}

func TestStaticSet(t *testing.T) {
	static := httpd.NewStaticSet()
	static.Add("/img/logo.gif", []byte("GIF89a..."), "")
	addr := startServer(t, static)
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Get("/img/logo.gif")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header["content-type"] != "image/gif" {
		t.Fatalf("content type %q", resp.Header["content-type"])
	}
	if string(resp.Body) != "GIF89a..." {
		t.Fatalf("body %q", resp.Body)
	}
	if resp, _ := c.Get("/img/missing.gif"); resp.Status != 404 {
		t.Fatalf("missing file: %d", resp.Status)
	}
	if static.Len() != 1 || static.TotalBytes() != 9 {
		t.Fatalf("set accounting: %d/%d", static.Len(), static.TotalBytes())
	}
}

func TestHandlerErrorBecomes500(t *testing.T) {
	addr := startServer(t, httpd.HandlerFunc(func(*httpd.Request) (*httpd.Response, error) {
		return nil, fmt.Errorf("boom")
	}))
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Get("/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 {
		t.Fatalf("status %d, want 500", resp.Status)
	}
}

func TestLargeBody(t *testing.T) {
	addr := startServer(t, httpd.HandlerFunc(func(req *httpd.Request) (*httpd.Response, error) {
		resp := httpd.NewResponse()
		resp.Body = make([]byte, 256<<10)
		for i := range resp.Body {
			resp.Body[i] = byte(i)
		}
		return resp, nil
	}))
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Get("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != 256<<10 {
		t.Fatalf("body %d bytes", len(resp.Body))
	}
	for i, b := range resp.Body {
		if b != byte(i) {
			t.Fatalf("corrupt byte at %d", i)
		}
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	h := httpd.Header{}
	h.Set("content-TYPE", "x")
	if h.Get("Content-Type") != "x" {
		t.Fatal("case-insensitive get")
	}
	h.Del("CONTENT-type")
	if h.Get("content-type") != "" {
		t.Fatal("delete")
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv := httpd.NewServer(httpd.HandlerFunc(echoHandler), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := httpclient.New(addr.String(), 5*time.Second)
	defer c.Close()
	if _, err := c.Get("/a"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := httpd.NewServer(httpd.HandlerFunc(echoHandler), nil)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if _, err := c.Get("/b"); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}

func TestHEADOmitsBody(t *testing.T) {
	addr := startServer(t, httpd.HandlerFunc(func(*httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		r.WriteString("data")
		return r, nil
	}))
	c := httpclient.New(addr, 5*time.Second)
	defer c.Close()
	resp, err := c.Do("HEAD", "/", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("HEAD returned body %q", resp.Body)
	}
	if resp.Header["content-length"] != "4" {
		t.Fatalf("content-length %q", resp.Header["content-length"])
	}
	// Connection must remain usable after HEAD.
	if _, err := c.Get("/"); err != nil {
		t.Fatal(err)
	}
}
