package httpd

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds request bodies, as Apache's LimitRequestBody does.
const maxBodyBytes = 4 << 20

// maxHeaderLines bounds header count against malicious requests.
const maxHeaderLines = 100

// Server accepts HTTP/1.x connections and dispatches requests to a Handler.
type Server struct {
	handler Handler
	logger  *log.Logger

	// IdleTimeout closes keep-alive connections idle beyond this duration
	// (zero: no timeout).
	IdleTimeout time.Duration

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	shutdown chan struct{}
	wg       sync.WaitGroup

	requests  atomic.Int64
	respBytes atomic.Int64
}

// RequestCount returns the number of requests dispatched to the handler —
// the web tier's work counter in the cross-tier telemetry.
func (s *Server) RequestCount() int64 { return s.requests.Load() }

// ResponseBytes returns the cumulative response body bytes written.
func (s *Server) ResponseBytes() int64 { return s.respBytes.Load() }

// NewServer creates a server dispatching to handler. logger may be nil.
func NewServer(handler Handler, logger *log.Logger) *Server {
	if handler == nil {
		panic("httpd: nil handler")
	}
	return &Server{
		handler:  handler,
		logger:   logger,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
}

// Listen binds addr and serves in background goroutines, returning the
// bound address (useful with port 0).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpd: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("httpd: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
			default:
				s.logf("accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 16<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req, err := readRequest(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				var ne net.Error
				if !(errors.As(err, &ne) && ne.Timeout()) {
					s.logf("parse: %v", err)
					resp := Error(400, err.Error())
					_ = writeResponse(bw, resp, "HTTP/1.1", false, "close")
					_ = bw.Flush()
				}
			}
			return
		}
		req.RemoteAddr = conn.RemoteAddr().String()

		s.requests.Add(1)
		resp, herr := s.handler.ServeHTTP(req)
		if herr != nil {
			s.logf("handler %s %s: %v", req.Method, req.Path, herr)
			resp = Error(500, "internal server error")
		} else if resp == nil {
			resp = Error(404, "")
		}

		keepAlive := wantKeepAlive(req)
		connHeader := "keep-alive"
		if !keepAlive {
			connHeader = "close"
		}
		headOnly := req.Method == "HEAD"
		if err := writeResponse(bw, resp, "HTTP/1.1", headOnly, connHeader); err != nil {
			s.logf("write: %v", err)
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if !headOnly {
			s.respBytes.Add(int64(len(resp.Body)))
		}
		if !keepAlive {
			return
		}
	}
}

// wantKeepAlive implements the HTTP/1.0 and 1.1 persistence rules.
func wantKeepAlive(req *Request) bool {
	c := strings.ToLower(req.Header.Get("Connection"))
	if req.Proto == "HTTP/1.0" {
		return c == "keep-alive"
	}
	return c != "close"
}

// readRequest parses one request from br.
func readRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("httpd: malformed request line %q", line)
	}
	method, rawPath, proto := parts[0], parts[1], parts[2]
	switch method {
	case "GET", "POST", "HEAD":
	default:
		return nil, fmt.Errorf("httpd: unsupported method %q", method)
	}
	if proto != "HTTP/1.1" && proto != "HTTP/1.0" {
		return nil, fmt.Errorf("httpd: unsupported protocol %q", proto)
	}
	req := &Request{Method: method, RawPath: rawPath, Proto: proto, Header: Header{}}

	// Split query, decode path.
	pathPart, queryPart, _ := strings.Cut(rawPath, "?")
	decoded, err := url.PathUnescape(pathPart)
	if err != nil {
		return nil, fmt.Errorf("httpd: bad path %q: %w", pathPart, err)
	}
	req.Path = decoded
	if queryPart != "" {
		q, err := url.ParseQuery(queryPart)
		if err != nil {
			return nil, fmt.Errorf("httpd: bad query %q: %w", queryPart, err)
		}
		req.Query = q
	} else {
		req.Query = url.Values{}
	}

	for i := 0; ; i++ {
		if i > maxHeaderLines {
			return nil, errors.New("httpd: too many header lines")
		}
		h, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if h == "" {
			break
		}
		name, value, ok := strings.Cut(h, ":")
		if !ok {
			return nil, fmt.Errorf("httpd: malformed header %q", h)
		}
		req.Header.Set(strings.TrimSpace(name), strings.TrimSpace(value))
	}

	if cl := req.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("httpd: bad Content-Length %q", cl)
		}
		if n > maxBodyBytes {
			return nil, fmt.Errorf("httpd: body of %d bytes exceeds limit", n)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("httpd: short body: %w", err)
		}
		req.Body = body
	}
	return req, nil
}

// readLine reads a CRLF- (or LF-) terminated line without the terminator.
func readLine(br *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		chunk, isPrefix, err := br.ReadLine()
		if err != nil {
			return "", err
		}
		b.Write(chunk)
		if b.Len() > 16<<10 {
			return "", errors.New("httpd: header line too long")
		}
		if !isPrefix {
			return b.String(), nil
		}
	}
}

// writeResponse serializes resp.
func writeResponse(w *bufio.Writer, resp *Response, proto string, headOnly bool, connHeader string) error {
	if resp.Header == nil {
		resp.Header = Header{}
	}
	fmt.Fprintf(w, "%s %d %s\r\n", proto, resp.Status, statusText(resp.Status))
	resp.Header.Set("Content-Length", strconv.Itoa(len(resp.Body)))
	if resp.Header.Get("Content-Type") == "" {
		resp.Header.Set("Content-Type", "text/html; charset=utf-8")
	}
	resp.Header.Set("Connection", connHeader)
	resp.Header.Set("Server", "repro-httpd/1.0")
	for _, k := range resp.Header.keys() {
		fmt.Fprintf(w, "%s: %s\r\n", k, resp.Header[k])
	}
	if _, err := io.WriteString(w, "\r\n"); err != nil {
		return err
	}
	if headOnly {
		return nil
	}
	_, err := w.Write(resp.Body)
	return err
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.shutdown)
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf("httpd: "+format, args...)
	}
}
