package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestSendLatencyAndBandwidth(t *testing.T) {
	s := sim.New()
	cfg := Config{CPUSpeed: 1, LinkBandwidth: 1000, Latency: 0.01}
	c := New(s, cfg)
	a := c.AddMachine("a")
	b := c.AddMachine("b")
	var doneAt float64
	c.Send(a, b, 500, func() { doneAt = s.Now() })
	s.Run()
	// 500 bytes at 1000 B/s on tx (0.5s) + 0.01 latency + 0.5s on rx.
	want := 0.5 + 0.01 + 0.5
	if math.Abs(doneAt-want) > 1e-9 {
		t.Fatalf("delivery at %g, want %g", doneAt, want)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig())
	a := c.AddMachine("a")
	var doneAt float64 = -1
	c.Send(a, a, 1e9, func() { doneAt = s.Now() })
	s.Run()
	if doneAt != 0 {
		t.Fatalf("loopback delivered at %g, want 0", doneAt)
	}
}

func TestSwitchedFabricNoCrossContention(t *testing.T) {
	// a->b and c->d transfer concurrently at full speed on a switch.
	s := sim.New()
	cfg := Config{CPUSpeed: 1, LinkBandwidth: 1000, Latency: 0}
	c := New(s, cfg)
	a, b := c.AddMachine("a"), c.AddMachine("b")
	x, y := c.AddMachine("x"), c.AddMachine("y")
	var t1, t2 float64
	c.Send(a, b, 1000, func() { t1 = s.Now() })
	c.Send(x, y, 1000, func() { t2 = s.Now() })
	s.Run()
	if math.Abs(t1-2.0) > 1e-9 || math.Abs(t2-2.0) > 1e-9 {
		t.Fatalf("deliveries at %g,%g, want 2.0 each (no cross contention)", t1, t2)
	}
}

func TestSharedEndpointContends(t *testing.T) {
	// Two flows out of the same machine share its TX link.
	s := sim.New()
	cfg := Config{CPUSpeed: 1, LinkBandwidth: 1000, Latency: 0}
	c := New(s, cfg)
	a := c.AddMachine("a")
	b := c.AddMachine("b")
	d := c.AddMachine("d")
	var ends []float64
	c.Send(a, b, 1000, func() { ends = append(ends, s.Now()) })
	c.Send(a, d, 1000, func() { ends = append(ends, s.Now()) })
	s.Run()
	for _, e := range ends {
		// Each spends 2s on the shared TX link, then 1s alone on its RX.
		if math.Abs(e-3.0) > 1e-9 {
			t.Fatalf("delivery at %g, want 3.0 (TX shared)", e)
		}
	}
}

func TestDuplicateMachinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate machine")
		}
	}()
	s := sim.New()
	c := New(s, DefaultConfig())
	c.AddMachine("a")
	c.AddMachine("a")
}

func TestCPUUtilizationWindow(t *testing.T) {
	s := sim.New()
	c := New(s, Config{CPUSpeed: 1, LinkBandwidth: 1000, Latency: 0})
	a := c.AddMachine("a")
	// Busy 1s of the first 2s window.
	a.CPU.Use(1.0, func() {})
	s.RunUntil(2.0)
	mark := c.MarkNow()
	// Busy 0.5s of the next 1s window.
	a.CPU.Use(0.5, func() {})
	s.RunUntil(3.0)
	if u := c.CPUUtilization(mark, a); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("windowed utilization %g, want 0.5", u)
	}
}

func TestNICThroughput(t *testing.T) {
	s := sim.New()
	c := New(s, Config{CPUSpeed: 1, LinkBandwidth: 1000, Latency: 0})
	a := c.AddMachine("a")
	b := c.AddMachine("b")
	mark := c.MarkNow()
	c.Send(a, b, 500, func() {})
	s.RunUntil(1.0)
	// 500 bytes moved during a 1s window.
	if got := c.NICThroughput(mark, a); math.Abs(got-500) > 1e-6 {
		t.Fatalf("NIC throughput %g, want 500", got)
	}
}

func TestMachinesOrder(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig())
	names := []string{"web", "servlet", "ejb", "db"}
	for _, n := range names {
		c.AddMachine(n)
	}
	ms := c.Machines()
	if len(ms) != len(names) {
		t.Fatalf("got %d machines, want %d", len(ms), len(names))
	}
	for i, m := range ms {
		if m.Name != names[i] {
			t.Fatalf("machine %d = %q, want %q", i, m.Name, names[i])
		}
	}
	if c.Machine("db") == nil || c.Machine("nope") != nil {
		t.Fatal("Machine lookup broken")
	}
}
