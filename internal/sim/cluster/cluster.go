// Package cluster models the paper's hardware testbed on top of the
// discrete-event kernel: single-CPU machines connected by a switched
// full-duplex Ethernet. Each machine has a processor-sharing CPU and a pair
// of NIC links (transmit and receive) sharing the link bandwidth, which is
// how a switched LAN behaves — flows to different hosts do not contend with
// each other, only flows sharing an endpoint do.
package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Machine is a simulated host: one CPU and one full-duplex NIC.
type Machine struct {
	Name string
	CPU  *sim.PSResource
	TX   *sim.PSResource
	RX   *sim.PSResource
}

// Config describes the homogeneous cluster the paper uses.
type Config struct {
	// CPUSpeed is the relative CPU speed; service demands are expressed in
	// seconds on a speed-1.0 CPU (the paper's 1.33 GHz Athlon).
	CPUSpeed float64
	// LinkBandwidth is the NIC bandwidth in bytes/second
	// (100 Mbps switched Ethernet = 12.5e6 B/s).
	LinkBandwidth float64
	// Latency is the one-way wire latency in seconds.
	Latency float64
}

// DefaultConfig mirrors the paper's testbed: 1.33 GHz Athlons on switched
// 100 Mbps Ethernet with LAN-scale latency.
func DefaultConfig() Config {
	return Config{CPUSpeed: 1.0, LinkBandwidth: 12.5e6, Latency: 100e-6}
}

// Cluster is a set of machines plus the switching fabric.
type Cluster struct {
	sim      *sim.Sim
	cfg      Config
	machines map[string]*Machine
	order    []string
}

// New creates an empty cluster attached to s.
func New(s *sim.Sim, cfg Config) *Cluster {
	if cfg.CPUSpeed <= 0 {
		cfg.CPUSpeed = 1.0
	}
	if cfg.LinkBandwidth <= 0 {
		cfg.LinkBandwidth = 12.5e6
	}
	return &Cluster{sim: s, cfg: cfg, machines: make(map[string]*Machine)}
}

// AddMachine creates a machine with the cluster-wide CPU speed and NIC
// bandwidth. Adding a duplicate name panics: configurations are static.
func (c *Cluster) AddMachine(name string) *Machine {
	if _, dup := c.machines[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate machine %q", name))
	}
	m := &Machine{
		Name: name,
		CPU:  sim.NewPSResource(c.sim, name+"/cpu", c.cfg.CPUSpeed),
		TX:   sim.NewPSResource(c.sim, name+"/tx", c.cfg.LinkBandwidth),
		RX:   sim.NewPSResource(c.sim, name+"/rx", c.cfg.LinkBandwidth),
	}
	c.machines[name] = m
	c.order = append(c.order, name)
	return m
}

// Machine returns a machine by name, or nil.
func (c *Cluster) Machine(name string) *Machine { return c.machines[name] }

// Machines returns the machines in creation order.
func (c *Cluster) Machines() []*Machine {
	ms := make([]*Machine, 0, len(c.order))
	for _, n := range c.order {
		ms = append(ms, c.machines[n])
	}
	return ms
}

// Send models transferring size bytes from machine a to machine b through
// the switch: the bytes occupy a's transmit link and b's receive link, plus
// one propagation latency. done fires when the last byte is delivered.
// Loopback (a == b) costs nothing but a zero-delay event, matching
// same-machine IPC whose cost is accounted as CPU time instead.
func (c *Cluster) Send(a, b *Machine, size float64, done func()) {
	if done == nil {
		panic("cluster: Send with nil done")
	}
	if a == b {
		c.sim.Schedule(0, done)
		return
	}
	a.TX.Use(size, func() {
		c.sim.Schedule(c.cfg.Latency, func() {
			b.RX.Use(size, done)
		})
	})
}

// Utilization snapshots CPU and NIC busy fractions over a window. Callers
// snapshot with Mark at the start of the measurement phase.
type Mark struct {
	t    float64
	busy map[*sim.PSResource]float64
}

// MarkNow records the busy-time counters of every resource in the cluster.
func (c *Cluster) MarkNow() *Mark {
	m := &Mark{t: c.sim.Now(), busy: make(map[*sim.PSResource]float64)}
	for _, mach := range c.machines {
		for _, r := range []*sim.PSResource{mach.CPU, mach.TX, mach.RX} {
			m.busy[r] = r.BusyTime()
		}
	}
	return m
}

// CPUUtilization returns machine m's CPU utilization since the mark.
func (c *Cluster) CPUUtilization(mark *Mark, m *Machine) float64 {
	return m.CPU.UtilizationSince(mark.busy[m.CPU], mark.t)
}

// NICThroughput returns machine m's transmit throughput in bytes/second
// since the mark.
func (c *Cluster) NICThroughput(mark *Mark, m *Machine) float64 {
	dt := c.sim.Now() - mark.t
	if dt <= 0 {
		return 0
	}
	// Work done on a PS link is exactly the bytes moved while busy.
	return (m.TX.BusyTime() - mark.busy[m.TX]) * m.TX.Speed() / dt
}
