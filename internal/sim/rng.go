package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the distributions the benchmarks need. Every
// simulation entity that draws random numbers owns its own RNG stream so
// that runs are reproducible regardless of event interleaving.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Exp returns a negative-exponential sample with the given mean. TPC-W
// clause 5.3.1.1 specifies this distribution for client think times.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return -mean * math.Log(u)
}

// TruncExp returns an exponential sample with the given mean truncated to at
// most cap (TPC-W truncates think times at ten times the mean).
func (g *RNG) TruncExp(mean, cap float64) float64 {
	v := g.Exp(mean)
	if cap > 0 && v > cap {
		return cap
	}
	return v
}

// Pick returns an index in [0,len(weights)) with probability proportional to
// the weights, which must be non-negative and not all zero.
func (g *RNG) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		panic("sim: Pick with non-positive weight sum")
	}
	x := g.r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Seed derives a child seed for entity i, letting callers fan one master
// seed out into independent streams.
func Seed(master int64, i int) int64 {
	// SplitMix64-style mixing keeps child streams decorrelated.
	z := uint64(master) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
