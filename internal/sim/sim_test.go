package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(2, func() { got = append(got, 2) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(3, func() { got = append(got, 3) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %g, want 3", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events out of order: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.Schedule(1, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	tm.Cancel() // double-cancel is a no-op
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, d := range []float64{1, 2, 5} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %g, want 3", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %v, want all three after Run", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.Schedule(0.5, rec)
		}
	}
	s.Schedule(0, rec)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if math.Abs(s.Now()-49.5) > 1e-9 {
		t.Fatalf("clock = %g, want 49.5", s.Now())
	}
}

func TestPSResourceSingleJob(t *testing.T) {
	s := New()
	r := NewPSResource(s, "cpu", 1.0)
	var doneAt float64
	r.Use(2.5, func() { doneAt = s.Now() })
	s.Run()
	if math.Abs(doneAt-2.5) > 1e-9 {
		t.Fatalf("single job finished at %g, want 2.5", doneAt)
	}
	if got := r.BusyTime(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("busy time %g, want 2.5", got)
	}
}

func TestPSResourceFairSharing(t *testing.T) {
	// Two equal jobs sharing a unit-speed CPU both finish at 2*demand.
	s := New()
	r := NewPSResource(s, "cpu", 1.0)
	var ends []float64
	for i := 0; i < 2; i++ {
		r.Use(1.0, func() { ends = append(ends, s.Now()) })
	}
	s.Run()
	if len(ends) != 2 {
		t.Fatalf("want 2 completions, got %d", len(ends))
	}
	for _, e := range ends {
		if math.Abs(e-2.0) > 1e-9 {
			t.Fatalf("completion at %g, want 2.0", e)
		}
	}
}

func TestPSResourceStaggeredJobs(t *testing.T) {
	// Job A (demand 1) alone for 0.5s, then B (demand 0.25) arrives.
	// A: 0.5 work left at t=0.5, then rate 1/2. B finishes at t=1.0
	// (0.25 work at rate 1/2). A then runs alone: 0.25 left, done t=1.25.
	s := New()
	r := NewPSResource(s, "cpu", 1.0)
	var aEnd, bEnd float64
	r.Use(1.0, func() { aEnd = s.Now() })
	s.Schedule(0.5, func() {
		r.Use(0.25, func() { bEnd = s.Now() })
	})
	s.Run()
	if math.Abs(bEnd-1.0) > 1e-9 {
		t.Fatalf("B finished at %g, want 1.0", bEnd)
	}
	if math.Abs(aEnd-1.25) > 1e-9 {
		t.Fatalf("A finished at %g, want 1.25", aEnd)
	}
}

func TestPSResourceSpeed(t *testing.T) {
	s := New()
	r := NewPSResource(s, "fast", 4.0)
	var end float64
	r.Use(2.0, func() { end = s.Now() })
	s.Run()
	if math.Abs(end-0.5) > 1e-9 {
		t.Fatalf("finished at %g, want 0.5", end)
	}
}

func TestPSResourceZeroDemand(t *testing.T) {
	s := New()
	r := NewPSResource(s, "cpu", 1.0)
	fired := false
	r.Use(0, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("zero-demand job never completed")
	}
}

func TestPSResourceUtilization(t *testing.T) {
	s := New()
	r := NewPSResource(s, "cpu", 1.0)
	r.Use(1.0, func() {})
	s.Schedule(4, func() {}) // extend the horizon to 4s
	s.Run()
	u := r.UtilizationSince(0, 0)
	if math.Abs(u-0.25) > 1e-9 {
		t.Fatalf("utilization %g, want 0.25", u)
	}
}

// TestPSResourceConservation: with many random jobs, total work served must
// equal total demand, and completions must respect demand ordering given
// simultaneous arrival.
func TestPSResourceConservation(t *testing.T) {
	s := New()
	r := NewPSResource(s, "cpu", 1.0)
	g := NewRNG(42)
	var total float64
	n := 200
	completed := 0
	for i := 0; i < n; i++ {
		d := 0.01 + g.Float64()
		total += d
		r.Use(d, func() { completed++ })
	}
	s.Run()
	if completed != n {
		t.Fatalf("completed %d, want %d", completed, n)
	}
	// All jobs start together, so makespan equals total work at unit speed.
	if math.Abs(s.Now()-total) > 1e-6*total {
		t.Fatalf("makespan %g, want %g", s.Now(), total)
	}
	if math.Abs(r.BusyTime()-total) > 1e-6*total {
		t.Fatalf("busy %g, want %g", r.BusyTime(), total)
	}
}

// Property: for simultaneously arriving jobs on a PS resource, completion
// order matches demand order.
func TestPSResourceCompletionOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		s := New()
		r := NewPSResource(s, "cpu", 1.0)
		n := 3 + g.Intn(20)
		demands := make([]float64, n)
		type comp struct {
			idx int
			at  float64
		}
		var comps []comp
		for i := 0; i < n; i++ {
			demands[i] = 0.01 + g.Float64()
			i := i
			r.Use(demands[i], func() { comps = append(comps, comp{i, s.Now()}) })
		}
		s.Run()
		if len(comps) != n {
			return false
		}
		// Completion times must be non-decreasing in demand.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return demands[idx[a]] < demands[idx[b]] })
		at := make(map[int]float64, n)
		for _, c := range comps {
			at[c.idx] = c.at
		}
		prev := -1.0
		for _, i := range idx {
			if at[i] < prev-1e-9 {
				return false
			}
			prev = at[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRWLockSharedReaders(t *testing.T) {
	s := New()
	l := NewRWLock(s, "t")
	held := 0
	for i := 0; i < 3; i++ {
		l.Acquire(false, func() { held++ })
	}
	if held != 3 {
		t.Fatalf("readers held = %d, want 3", held)
	}
	if l.Holders() != 3 {
		t.Fatalf("Holders = %d, want 3", l.Holders())
	}
}

func TestRWLockWriterExcludes(t *testing.T) {
	s := New()
	l := NewRWLock(s, "t")
	var order []string
	l.Acquire(true, func() { order = append(order, "w1") })
	l.Acquire(false, func() { order = append(order, "r1") })
	l.Acquire(true, func() { order = append(order, "w2") })
	if len(order) != 1 || order[0] != "w1" {
		t.Fatalf("order = %v, want [w1]", order)
	}
	l.Release(true)
	if len(order) != 2 || order[1] != "r1" {
		t.Fatalf("order = %v, want [w1 r1]", order)
	}
	l.Release(false)
	if len(order) != 3 || order[2] != "w2" {
		t.Fatalf("order = %v, want [w1 r1 w2]", order)
	}
	l.Release(true)
}

func TestRWLockFCFSBlocksReaderBehindWriter(t *testing.T) {
	s := New()
	l := NewRWLock(s, "t")
	var got []string
	l.Acquire(false, func() { got = append(got, "r1") }) // held
	l.Acquire(true, func() { got = append(got, "w") })   // queued
	l.Acquire(false, func() { got = append(got, "r2") }) // must queue behind w
	if len(got) != 1 {
		t.Fatalf("got %v, want only r1 granted", got)
	}
	l.Release(false)
	if len(got) != 2 || got[1] != "w" {
		t.Fatalf("got %v, want writer next", got)
	}
	l.Release(true)
	if len(got) != 3 || got[2] != "r2" {
		t.Fatalf("got %v, want r2 last", got)
	}
}

// Property: RWLock never grants a writer concurrently with anyone else.
func TestRWLockSafetyProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		s := New()
		l := NewRWLock(s, "t")
		readers, writers := 0, 0
		ok := true
		n := 5 + g.Intn(40)
		for i := 0; i < n; i++ {
			write := g.Float64() < 0.3
			hold := 0.001 + g.Float64()*0.01
			delay := g.Float64() * 0.02
			s.Schedule(delay, func() {
				l.Acquire(write, func() {
					if write {
						writers++
						if writers > 1 || readers > 0 {
							ok = false
						}
					} else {
						readers++
						if writers > 0 {
							ok = false
						}
					}
					s.Schedule(hold, func() {
						if write {
							writers--
						} else {
							readers--
						}
						l.Release(write)
					})
				})
			})
		}
		s.Run()
		return ok && l.Holders() == 0 && l.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(7)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(7.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-7.0) > 0.1 {
		t.Fatalf("sample mean %g, want ~7.0", mean)
	}
}

func TestRNGPickDistribution(t *testing.T) {
	g := NewRNG(11)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[g.Pick(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pick[%d] freq %g, want ~%g", i, got, want)
		}
	}
}

func TestRNGTruncExp(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := g.TruncExp(7, 70); v > 70 {
			t.Fatalf("TruncExp produced %g > cap", v)
		}
	}
}

func TestSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := Seed(12345, i)
		if seen[s] {
			t.Fatalf("duplicate child seed at %d", i)
		}
		seen[s] = true
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, int64) {
		s := New()
		r := NewPSResource(s, "cpu", 1.0)
		g := NewRNG(99)
		done := 0
		for i := 0; i < 100; i++ {
			s.Schedule(g.Float64()*10, func() {
				r.Use(0.01+g.Float64()*0.1, func() { done++ })
			})
		}
		s.Run()
		return s.Now(), s.Steps()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Fatalf("non-deterministic: (%g,%d) vs (%g,%d)", t1, n1, t2, n2)
	}
}
