// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for the calibrated performance model in
// internal/perfsim: it schedules events on a virtual clock, models contended
// resources with processor sharing (CPUs, network links), and provides FCFS
// lock primitives used to model database table locking.
//
// All times are float64 seconds of virtual time. A Sim is single-threaded
// and deterministic: events at equal times fire in scheduling order.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Sim is a discrete-event simulator. The zero value is not usable; call New.
type Sim struct {
	now    float64
	events eventHeap
	seq    int64
	steps  int64
}

// New returns an empty simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// Timer is a handle to a scheduled event. It can be cancelled before firing.
type Timer struct {
	at        float64
	seq       int64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil {
		t.cancelled = true
		t.fn = nil
	}
}

// Schedule arranges for fn to run after delay seconds of virtual time.
// A negative delay is treated as zero. It returns a Timer handle that can
// cancel the event.
func (s *Sim) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute virtual time t. Times in the
// past are clamped to the current time.
func (s *Sim) ScheduleAt(t float64, fn func()) *Timer {
	if fn == nil {
		panic("sim: ScheduleAt with nil fn")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &Timer{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return ev
}

// Step executes the next pending event. It returns false when no events
// remain.
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*Timer)
		if ev.cancelled {
			continue
		}
		if ev.at < s.now {
			panic(fmt.Sprintf("sim: time went backwards: %g < %g", ev.at, s.now))
		}
		s.now = ev.at
		s.steps++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled for later remain pending.
func (s *Sim) RunUntil(t float64) {
	for {
		ev := s.events.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Pending reports the number of live (non-cancelled) events in the queue.
func (s *Sim) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// eventHeap is a min-heap ordered by (time, sequence) so that simultaneous
// events fire in the order they were scheduled.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Timer)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) peek() *Timer {
	for h.Len() > 0 {
		if !(*h)[0].cancelled {
			return (*h)[0]
		}
		// Lazily drop cancelled head entries so peek stays O(1) amortized.
		heap.Pop(h)
	}
	return nil
}
