package sim

// Semaphore is a FCFS counting semaphore, used to model bounded resources
// such as database connection pools: the number of queries concurrently
// executing in the database is limited by the connections the engine tier
// holds, which in the real system is what keeps a saturated MySQL from
// time-slicing hundreds of queries at once.
type Semaphore struct {
	sim   *Sim
	name  string
	cap   int
	held  int
	queue []func()

	grants  int64
	waitAcc float64
	waitT   []float64 // arrival times of queued waiters (parallel to queue)
}

// NewSemaphore creates a semaphore with the given capacity (>0).
func NewSemaphore(s *Sim, name string, capacity int) *Semaphore {
	if capacity <= 0 {
		panic("sim: Semaphore capacity must be positive")
	}
	return &Semaphore{sim: s, name: name, cap: capacity}
}

// Name returns the semaphore name.
func (sem *Semaphore) Name() string { return sem.name }

// Cap returns the capacity.
func (sem *Semaphore) Cap() int { return sem.cap }

// Held returns the number of slots currently held.
func (sem *Semaphore) Held() int { return sem.held }

// QueueLen returns the number of waiters.
func (sem *Semaphore) QueueLen() int { return len(sem.queue) }

// Grants returns the number of acquisitions granted so far.
func (sem *Semaphore) Grants() int64 { return sem.grants }

// TotalWait returns the accumulated waiting time across grants.
func (sem *Semaphore) TotalWait() float64 { return sem.waitAcc }

// Acquire requests a slot; granted runs synchronously if one is free,
// otherwise when a predecessor releases.
func (sem *Semaphore) Acquire(granted func()) {
	if granted == nil {
		panic("sim: Semaphore.Acquire with nil granted")
	}
	if sem.held < sem.cap && len(sem.queue) == 0 {
		sem.held++
		sem.grants++
		granted()
		return
	}
	sem.queue = append(sem.queue, granted)
	sem.waitT = append(sem.waitT, sem.sim.Now())
}

// Release frees one slot, granting the oldest waiter if any.
func (sem *Semaphore) Release() {
	if sem.held <= 0 {
		panic("sim: Semaphore.Release without hold")
	}
	sem.held--
	if len(sem.queue) > 0 {
		granted := sem.queue[0]
		sem.queue = sem.queue[1:]
		sem.waitAcc += sem.sim.Now() - sem.waitT[0]
		sem.waitT = sem.waitT[1:]
		sem.held++
		sem.grants++
		granted()
	}
}
