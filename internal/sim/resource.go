package sim

import (
	"container/heap"
	"math"
)

// PSResource models a processor-sharing resource such as a single CPU or a
// network link. When n jobs are in service, each progresses at speed/n work
// units per second. Demands are expressed in work units (seconds of service
// at full speed for a CPU, bytes for a link whose speed is bytes/second).
//
// The implementation uses the classic virtual-time formulation: virtual time
// V advances at rate speed/n, each job completes when V reaches its arrival
// value plus its demand, so arrivals and completions cost O(log n).
type PSResource struct {
	sim   *Sim
	name  string
	speed float64

	jobs    jobHeap
	lastT   float64 // real time of last state update
	v       float64 // virtual time
	pending *Timer

	busy     float64 // integral of 1{n>0} dt
	workDone float64 // integral of speed*1{n>0} dt (work units served)
	areaN    float64 // integral of n dt (for mean jobs in service)
	served   int64   // completed jobs
}

// NewPSResource creates a processor-sharing resource attached to s.
// speed is the work-unit rate when a single job is in service and must be
// positive.
func NewPSResource(s *Sim, name string, speed float64) *PSResource {
	if speed <= 0 || math.IsNaN(speed) {
		panic("sim: PSResource speed must be positive")
	}
	return &PSResource{sim: s, name: name, speed: speed, lastT: s.Now()}
}

// Name returns the resource name given at construction.
func (r *PSResource) Name() string { return r.name }

// Speed returns the full-speed service rate.
func (r *PSResource) Speed() float64 { return r.speed }

// InService returns the number of jobs currently being served.
func (r *PSResource) InService() int { return r.jobs.Len() }

// Use submits a job with the given demand. done runs (via a scheduled event)
// when the job's service completes. Zero or negative demands complete after
// an infinitesimal delay (next event at the current time).
func (r *PSResource) Use(demand float64, done func()) {
	if done == nil {
		panic("sim: PSResource.Use with nil done")
	}
	r.advance()
	if demand <= 0 || math.IsNaN(demand) {
		r.sim.Schedule(0, done)
		return
	}
	j := &psJob{target: r.v + demand, done: done}
	heap.Push(&r.jobs, j)
	r.reschedule()
}

// advance brings the virtual clock and accounting integrals up to the
// simulator's current time.
func (r *PSResource) advance() {
	now := r.sim.Now()
	dt := now - r.lastT
	if dt > 0 {
		if n := r.jobs.Len(); n > 0 {
			r.v += dt * r.speed / float64(n)
			r.busy += dt
			r.workDone += dt * r.speed
			r.areaN += dt * float64(n)
		}
		r.lastT = now
	} else {
		r.lastT = now
	}
}

// reschedule (re)arms the completion event for the job with the smallest
// virtual-time target.
func (r *PSResource) reschedule() {
	if r.pending != nil {
		r.pending.Cancel()
		r.pending = nil
	}
	if r.jobs.Len() == 0 {
		return
	}
	minTarget := r.jobs[0].target
	n := float64(r.jobs.Len())
	dt := (minTarget - r.v) * n / r.speed
	if dt < 0 {
		dt = 0
	}
	r.pending = r.sim.Schedule(dt, r.complete)
}

func (r *PSResource) complete() {
	r.pending = nil
	r.advance()
	// Pop every job whose target has been reached. Tolerance covers float
	// drift when many equal-demand jobs share the resource.
	const eps = 1e-9
	var dones []func()
	for r.jobs.Len() > 0 && r.jobs[0].target <= r.v+eps*(1+math.Abs(r.v)) {
		j := heap.Pop(&r.jobs).(*psJob)
		dones = append(dones, j.done)
		r.served++
	}
	r.reschedule()
	for _, d := range dones {
		d()
	}
}

// BusyTime returns the accumulated time during which at least one job was in
// service, up to the current simulation time.
func (r *PSResource) BusyTime() float64 {
	r.advance()
	return r.busy
}

// AreaJobs returns the time-integral of the number of jobs in service, used
// to derive the mean concurrency over a window.
func (r *PSResource) AreaJobs() float64 {
	r.advance()
	return r.areaN
}

// Served returns the number of completed jobs.
func (r *PSResource) Served() int64 { return r.served }

// UtilizationSince returns the fraction of time the resource was busy over
// the window starting at a prior BusyTime snapshot busy0 taken at time t0.
func (r *PSResource) UtilizationSince(busy0, t0 float64) float64 {
	dt := r.sim.Now() - t0
	if dt <= 0 {
		return 0
	}
	u := (r.BusyTime() - busy0) / dt
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

type psJob struct {
	target float64 // virtual time at which service completes
	done   func()
	index  int
}

type jobHeap []*psJob

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].target < h[j].target }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x any)        { j := x.(*psJob); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	j.index = -1
	return j
}
