package sim

// RWLock is a simulated readers-writer lock used to model table locks.
//
// Two admission policies are supported:
//
//   - FCFS (the default): waiters are granted strictly in arrival order; a
//     reader behind a waiting writer waits even if the lock is read-held.
//     This matches a fair queue, e.g. a lock manager inside the servlet
//     engine.
//   - Writer priority (MyISAM's policy, NewWriterPriorityRWLock): pending
//     write locks are always granted before pending read locks regardless
//     of arrival order. Under a steady stream of writers this starves
//     readers — the behaviour behind the throughput drop the paper observes
//     past the peak on the bookstore write mixes (§5.1).
type RWLock struct {
	sim      *Sim
	name     string
	writePri bool
	readers  int
	writer   bool

	rq []*lockWaiter // waiting readers, FIFO
	wq []*lockWaiter // waiting writers, FIFO

	seq int64 // per-lock arrival counter for FCFS ordering

	// accounting
	waitAcc    float64 // accumulated waiting time over all grants
	grants     int64
	contended  int64 // grants that had to queue
	writeGrant int64
}

type lockWaiter struct {
	since   float64
	granted func()
	seq     int64
}

// NewRWLock creates a FCFS lock attached to s.
func NewRWLock(s *Sim, name string) *RWLock {
	return &RWLock{sim: s, name: name}
}

// NewWriterPriorityRWLock creates a lock with MyISAM-style writer priority.
func NewWriterPriorityRWLock(s *Sim, name string) *RWLock {
	return &RWLock{sim: s, name: name, writePri: true}
}

// Name returns the lock name.
func (l *RWLock) Name() string { return l.name }

// WriterPriority reports the admission policy.
func (l *RWLock) WriterPriority() bool { return l.writePri }

// Acquire requests the lock. granted runs (synchronously if the lock is
// immediately available, otherwise when predecessors release) once the lock
// is held.
func (l *RWLock) Acquire(write bool, granted func()) {
	if granted == nil {
		panic("sim: RWLock.Acquire with nil granted")
	}
	w := &lockWaiter{since: l.sim.Now(), granted: granted, seq: l.nextSeq()}
	if write {
		l.wq = append(l.wq, w)
	} else {
		l.rq = append(l.rq, w)
	}
	if l.writer || l.readers > 0 || len(l.rq)+len(l.wq) > 1 {
		l.contended++
	}
	l.dispatch()
}

func (l *RWLock) nextSeq() int64 {
	l.seq++
	return l.seq
}

// Release releases one hold on the lock. write must match the corresponding
// Acquire.
func (l *RWLock) Release(write bool) {
	if write {
		if !l.writer {
			panic("sim: RWLock.Release(write) without write hold")
		}
		l.writer = false
	} else {
		if l.readers <= 0 {
			panic("sim: RWLock.Release(read) without read hold")
		}
		l.readers--
	}
	l.dispatch()
}

// dispatch grants as many waiters as the policy allows.
func (l *RWLock) dispatch() {
	for {
		var w *lockWaiter
		var write bool
		switch {
		case l.writePri:
			// MyISAM: all pending writes before any pending read.
			if len(l.wq) > 0 {
				if l.writer || l.readers > 0 {
					return
				}
				w, write = l.wq[0], true
			} else if len(l.rq) > 0 {
				if l.writer {
					return
				}
				w = l.rq[0]
			} else {
				return
			}
		default:
			// FCFS: strict arrival order across both queues.
			switch {
			case len(l.wq) == 0 && len(l.rq) == 0:
				return
			case len(l.rq) == 0 || (len(l.wq) > 0 && l.wq[0].seq < l.rq[0].seq):
				if l.writer || l.readers > 0 {
					return
				}
				w, write = l.wq[0], true
			default:
				if l.writer {
					return
				}
				w = l.rq[0]
			}
		}
		if write {
			l.wq = l.wq[1:]
			l.writer = true
			l.writeGrant++
		} else {
			l.rq = l.rq[1:]
			l.readers++
		}
		l.grants++
		l.waitAcc += l.sim.Now() - w.since
		w.granted()
	}
}

// Holders returns the current number of holders (readers, or 1 for a writer).
func (l *RWLock) Holders() int {
	if l.writer {
		return 1
	}
	return l.readers
}

// QueueLen returns the number of waiters not yet granted.
func (l *RWLock) QueueLen() int { return len(l.rq) + len(l.wq) }

// Grants returns the total number of grants so far.
func (l *RWLock) Grants() int64 { return l.grants }

// WriteGrants returns how many grants were write locks.
func (l *RWLock) WriteGrants() int64 { return l.writeGrant }

// ContendedGrants returns how many acquisitions found the lock unavailable.
func (l *RWLock) ContendedGrants() int64 { return l.contended }

// TotalWait returns the accumulated waiting time across all grants.
func (l *RWLock) TotalWait() float64 { return l.waitAcc }
