package sqldb

import (
	"encoding/base64"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sqldb/walfault"
)

// Fast group-commit settings for tests: a short tick keeps single-threaded
// test workloads from serializing on 1ms waits.
func testWALOpts(dir string) WALOptions {
	return WALOptions{Dir: dir, FlushInterval: 200 * time.Microsecond, CheckpointBytes: -1}
}

func walMustExec(t *testing.T, s *Session, q string, args ...Value) *Result {
	t.Helper()
	res, err := s.Exec(q, args...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func walSchema(t *testing.T, s *Session) {
	t.Helper()
	walMustExec(t, s, `CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32), qty INT)`)
	walMustExec(t, s, `CREATE INDEX byname ON items (name)`)
	walMustExec(t, s, `CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, item INT, delta INT)`)
}

// dbDump renders the full engine state — schema, rows in scan order, rowid
// and AUTO_INCREMENT counters, index definitions — for byte-identity
// assertions between a recovered instance and the original.
func dbDump(t *testing.T, db *DB) string {
	t.Helper()
	sess := db.NewSession()
	defer sess.Close()
	var b strings.Builder
	for _, name := range db.TableNames() {
		tb, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.Exec("SELECT * FROM " + name)
		if err != nil {
			t.Fatal(err)
		}
		ixs := make([]string, 0, len(tb.indexes))
		for n, ix := range tb.indexes {
			ixs = append(ixs, fmt.Sprintf("%s:%d:%v", n, ix.col, ix.unique))
		}
		sortStrings(ixs)
		fmt.Fprintf(&b, "%s cols=%v ids=%d ai=%d/%d/%d ix=%v rows=%v\n",
			name, tb.columns, tb.nextID, tb.nextAI, tb.aiOffset, tb.aiStride, ixs, res.Rows)
	}
	return b.String()
}

// recoverDB attaches a fresh engine to dir and returns it with the info.
func recoverDB(t *testing.T, dir string) (*DB, *RecoveryInfo) {
	t.Helper()
	db := New()
	info, err := db.AttachWAL(testWALOpts(dir))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	t.Cleanup(func() { db.CloseWAL() })
	return db, info
}

// TestWALRoundTrip: commits (auto-commit, transaction, DDL) survive a clean
// close and are byte-identically recovered — log-only, no checkpoint.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)", String("widget"), Int(7))
	walMustExec(t, s, "BEGIN")
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('gadget', 2)")
	walMustExec(t, s, "INSERT INTO audit (item, delta) VALUES (2, 2)")
	walMustExec(t, s, "COMMIT")
	// A rolled-back transaction must leave no trace in the log.
	walMustExec(t, s, "BEGIN")
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('ghost', 99)")
	walMustExec(t, s, "ROLLBACK")
	walMustExec(t, s, "UPDATE items SET qty = qty + 1 WHERE name = 'widget'")
	walMustExec(t, s, "DELETE FROM audit WHERE delta = 0")
	walMustExec(t, s, "ALTER TABLE audit AUTO_INCREMENT OFFSET 2 STRIDE 4")
	s.Close()
	want := dbDump(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, info := recoverDB(t, dir)
	if !info.Recovered || info.ReplayedStmts == 0 {
		t.Fatalf("expected replayed recovery, got %+v", info)
	}
	if got := dbDump(t, db2); got != want {
		t.Fatalf("recovered state differs:\n got: %s\nwant: %s", got, want)
	}
	// The ghost row really is absent.
	sess := db2.NewSession()
	defer sess.Close()
	res := walMustExec(t, sess, "SELECT COUNT(*) FROM items WHERE name = 'ghost'")
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatal("rolled-back insert resurfaced after recovery")
	}
}

// TestWALCrashKeepsAckedWrites: every write acknowledged before a simulated
// power cut must survive recovery (the durability contract), and the
// recovered state equals the pre-crash committed state exactly.
func TestWALCrashKeepsAckedWrites(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	for i := 0; i < 50; i++ {
		walMustExec(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)",
			String(fmt.Sprintf("item-%03d", i)), Int(int64(i)))
	}
	s.Close()
	want := dbDump(t, db)
	db.WAL().Crash()

	db2, info := recoverDB(t, dir)
	if got := dbDump(t, db2); got != want {
		t.Fatalf("acked writes lost (recovered through LSN %d):\n got: %s\nwant: %s",
			info.ReplayLSN, got, want)
	}
}

// TestWALTornTail: garbage and a truncated record at the log's tail are cut
// at the first bad checksum; the intact prefix replays, recovery reports
// where it stopped, and a second recovery from the truncated log agrees.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('kept', 1)")
	s.Close()
	want := dbDump(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: half a record (a plausible length prefix with
	// not enough bytes behind it) at the end of the active segment.
	_, segs, err := scanWALDir(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	seg := segPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3} // claims 64B payload, has 3
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, info := recoverDB(t, dir)
	if !info.TornTail {
		t.Fatalf("expected torn tail, got %+v", info)
	}
	if got := dbDump(t, db2); got != want {
		t.Fatalf("torn-tail recovery diverged:\n got: %s\nwant: %s", got, want)
	}
	if info.ReplayLSN == 0 {
		t.Fatal("recovery did not report the LSN it stopped at")
	}
	db2.CloseWAL()

	// The truncation is durable: recovering again sees a clean (not torn)
	// log ending at the same LSN.
	db3, info3 := recoverDB(t, dir)
	if info3.TornTail {
		t.Fatal("second recovery still sees a torn tail; truncation not persisted")
	}
	if got := dbDump(t, db3); got != want {
		t.Fatal("second recovery diverged")
	}
}

// TestWALCheckpointAndRecover: recovery from a checkpoint plus a log suffix,
// with superseded segments garbage-collected by the rotation.
func TestWALCheckpointAndRecover(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	for i := 0; i < 20; i++ {
		walMustExec(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)", String("pre"), Int(int64(i)))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		walMustExec(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)", String("post"), Int(int64(i)))
	}
	s.Close()
	want := dbDump(t, db)
	stats := db.WALStats()
	if stats.Checkpoints != 1 || stats.CheckpointLSN == 0 {
		t.Fatalf("checkpoint not recorded: %+v", stats)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	db2, info := recoverDB(t, dir)
	if info.CheckpointLSN != stats.CheckpointLSN {
		t.Fatalf("recovered from checkpoint %d, want %d", info.CheckpointLSN, stats.CheckpointLSN)
	}
	// Only the post-checkpoint suffix should replay.
	if info.ReplayedStmts != 7 {
		t.Fatalf("replayed %d statements, want 7", info.ReplayedStmts)
	}
	if got := dbDump(t, db2); got != want {
		t.Fatalf("checkpoint recovery diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALCheckpointOnlyRecovery: a checkpoint with an empty log suffix
// recovers from the snapshot alone.
func TestWALCheckpointOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('only', 1)")
	s.Close()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dbDump(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, info := recoverDB(t, dir)
	if info.ReplayedStmts != 0 {
		t.Fatalf("checkpoint-only recovery replayed %d statements", info.ReplayedStmts)
	}
	if got := dbDump(t, db2); got != want {
		t.Fatalf("diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALMidCheckpointCrash: a crash during the checkpoint write leaves the
// previous checkpoint authoritative; recovery replays the longer suffix and
// the half-written temp file is ignored and cleaned up.
func TestWALMidCheckpointCrash(t *testing.T) {
	dir := t.TempDir()
	db := New()
	hook := walfault.New()
	opts := testWALOpts(dir)
	opts.Fault = hook
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('first', 1)")
	if err := db.Checkpoint(); err != nil { // checkpoint #1, clean
		t.Fatal(err)
	}
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('second', 2)")
	s.Close()
	want := dbDump(t, db)

	hook.Set(walfault.MidCheckpoint, 1, func() { db.WAL().Crash() })
	if err := db.Checkpoint(); err == nil { // checkpoint #2 dies mid-write
		t.Fatal("checkpoint should have failed at the crash point")
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt.tmp")); err != nil {
		t.Fatalf("expected half-written ckpt.tmp on disk: %v", err)
	}

	db2, info := recoverDB(t, dir)
	if got := dbDump(t, db2); got != want {
		t.Fatalf("mid-checkpoint crash recovery diverged:\n got: %s\nwant: %s", got, want)
	}
	if info.ReplayedStmts == 0 {
		t.Fatal("expected a replay from the previous checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, "ckpt.tmp")); !os.IsNotExist(err) {
		t.Fatal("recovery left the stale ckpt.tmp behind")
	}
}

// TestWALMidRotateCrash: a crash after the new segment is created but
// before old ones are garbage-collected leaves overlapping segments;
// recovery must handle the overlap (skip what the checkpoint covers).
func TestWALMidRotateCrash(t *testing.T) {
	dir := t.TempDir()
	db := New()
	hook := walfault.New()
	opts := testWALOpts(dir)
	opts.Fault = hook
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('pre-rotate', 1)")
	s.Close()
	want := dbDump(t, db)

	hook.Set(walfault.MidRotate, 1, func() { db.WAL().Crash() })
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint should have failed at the rotate crash point")
	}
	_, segs, err := scanWALDir(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected overlapping segments after mid-rotate crash, got %v (%v)", segs, err)
	}

	db2, _ := recoverDB(t, dir)
	if got := dbDump(t, db2); got != want {
		t.Fatalf("mid-rotate crash recovery diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALPreAppendCrash: a crash before the record enters the buffer loses
// the commit — and the committer learns it (error), so nothing acked is
// lost.
func TestWALPreAppendCrash(t *testing.T) {
	dir := t.TempDir()
	db := New()
	hook := walfault.New()
	opts := testWALOpts(dir)
	opts.Fault = hook
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('kept', 1)")
	want := dbDump(t, db) // state the log can reproduce

	hook.Set(walfault.PreAppend, 1, func() { db.WAL().Crash() })
	if _, err := s.Exec("INSERT INTO items (name, qty) VALUES ('lost', 2)"); err == nil {
		t.Fatal("commit during crash should not be acknowledged")
	}
	s.Close()

	db2, _ := recoverDB(t, dir)
	if got := dbDump(t, db2); got != want {
		t.Fatalf("pre-append crash recovery diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALPostAppendPreFsyncCrash: the record was written but never fsynced
// when the power died — the pessimal model drops it, the committer got an
// error, and recovery lands on the pre-crash acked state.
func TestWALPostAppendPreFsyncCrash(t *testing.T) {
	dir := t.TempDir()
	db := New()
	hook := walfault.New()
	opts := testWALOpts(dir)
	opts.Fault = hook
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('kept', 1)")
	want := dbDump(t, db)

	// The hook runs on the flusher goroutine, between its write and fsync.
	hook.Set(walfault.PostAppendPreFsync, 1, func() { db.WAL().Crash() })
	if _, err := s.Exec("INSERT INTO items (name, qty) VALUES ('unsynced', 2)"); err == nil {
		t.Fatal("commit whose fsync died should not be acknowledged")
	}
	s.Close()

	db2, _ := recoverDB(t, dir)
	if got := dbDump(t, db2); got != want {
		t.Fatalf("post-append-pre-fsync crash recovery diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALPartialAutoCommitReplay: MyISAM partial application — a multi-row
// auto-commit INSERT that dies on a duplicate key keeps its earlier rows —
// must reproduce identically through the log.
func TestWALPartialAutoCommitReplay(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walMustExec(t, s, `CREATE TABLE u (id INT PRIMARY KEY, v INT)`)
	walMustExec(t, s, "INSERT INTO u (id, v) VALUES (5, 0)")
	if _, err := s.Exec("INSERT INTO u (id, v) VALUES (1, 1), (2, 2), (5, 5), (9, 9)"); err == nil {
		t.Fatal("expected duplicate-key failure")
	}
	s.Close()
	want := dbDump(t, db)
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, info := recoverDB(t, dir)
	if info.ReplayErrors != 1 {
		t.Fatalf("replay errors %d, want 1 (the logged failing INSERT)", info.ReplayErrors)
	}
	if got := dbDump(t, db2); got != want {
		t.Fatalf("partial-application replay diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALPopulateThenAttach: the boot order for a fresh data directory —
// populate in memory first, then attach — must checkpoint the populated
// state immediately so it is durable without per-statement logging.
func TestWALPopulateThenAttach(t *testing.T) {
	dir := t.TempDir()
	db := New()
	s := db.NewSession()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES ('seeded', 1)")
	s.Close()
	want := dbDump(t, db)
	info, err := db.AttachWAL(testWALOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	if info.Recovered {
		t.Fatal("fresh dir should not report recovery")
	}
	if db.WALStats().Checkpoints != 1 {
		t.Fatal("populate-then-attach should write the initial checkpoint")
	}
	db.WAL().Crash() // nothing logged since attach; the checkpoint carries it all

	db2, info2 := recoverDB(t, dir)
	if !info2.Recovered {
		t.Fatal("expected recovery from the initial checkpoint")
	}
	if got := dbDump(t, db2); got != want {
		t.Fatalf("initial-checkpoint recovery diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestWALGroupCommit: concurrent committers share fsyncs — with many
// sessions committing at once, the fsync count stays well under the append
// count.
func TestWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	db := New()
	opts := testWALOpts(dir)
	opts.FlushInterval = 2 * time.Millisecond // widen the batching window
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	s.Close()
	base := db.WALStats()

	const workers, each = 8, 25
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < each; i++ {
				if _, err := sess.Exec("INSERT INTO audit (item, delta) VALUES (?, ?)",
					Int(int64(wkr)), Int(int64(i))); err != nil {
					t.Errorf("worker %d: %v", wkr, err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	st := db.WALStats()
	appends := st.Appends - base.Appends
	fsyncs := st.Fsyncs - base.Fsyncs
	if appends != workers*each {
		t.Fatalf("appends %d, want %d", appends, workers*each)
	}
	if fsyncs >= appends {
		t.Fatalf("no group commit: %d fsyncs for %d appends", fsyncs, appends)
	}
	if st.DurableLSN < st.LastLSN {
		t.Fatalf("acked commits not durable: durable %d < last %d", st.DurableLSN, st.LastLSN)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestShowWALStatements: the SQL surface the log-shipping rejoin uses.
func TestShowWALStatements(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	defer s.Close()
	walSchema(t, s)
	walMustExec(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)", String("x"), Int(1))

	st := walMustExec(t, s, "SHOW WAL STATUS")
	if st.Rows[0][0].AsInt() != 1 {
		t.Fatal("SHOW WAL STATUS says no wal attached")
	}
	last := st.Rows[0][1].AsInt()
	if last < 4 {
		t.Fatalf("last_lsn %d, want >= 4 (3 DDL + 1 insert)", last)
	}

	// The chain at last_lsn equals the status chain; records page through.
	ch := walMustExec(t, s, fmt.Sprintf("SHOW WAL CHAIN %d", last))
	if ch.Rows[0][2].AsInt() != 1 {
		t.Fatal("chain at last_lsn unavailable")
	}
	if ch.Rows[0][1].AsInt() != st.Rows[0][3].AsInt() {
		t.Fatal("SHOW WAL CHAIN at head disagrees with SHOW WAL STATUS")
	}
	recs := walMustExec(t, s, "SHOW WAL RECORDS SINCE 0 LIMIT 2")
	if len(recs.Rows) != 2 || recs.Rows[0][0].AsInt() != 1 || recs.Rows[1][0].AsInt() != 2 {
		t.Fatalf("paging: got %v", recs.Rows)
	}
	recs = walMustExec(t, s, fmt.Sprintf("SHOW WAL RECORDS SINCE %d LIMIT 100", last))
	if len(recs.Rows) != 0 {
		t.Fatalf("records past head: %v", recs.Rows)
	}

	// Replaying the shipped records into a second engine converges chains —
	// the delta-sync core.
	db2 := New()
	if _, err := db2.AttachWAL(testWALOpts(t.TempDir())); err != nil {
		t.Fatal(err)
	}
	defer db2.CloseWAL()
	s2 := db2.NewSession()
	defer s2.Close()
	all := walMustExec(t, s, "SHOW WAL RECORDS SINCE 0 LIMIT 10000")
	for _, row := range all.Rows {
		args, err := DecodeWALValues(mustB64(t, row[2].AsString()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Exec(row[1].AsString(), args...); err != nil {
			t.Fatalf("replay %q: %v", row[1].AsString(), err)
		}
	}
	a := walMustExec(t, s, "SHOW WAL STATUS").Rows[0]
	b := walMustExec(t, s2, "SHOW WAL STATUS").Rows[0]
	if a[1].AsInt() != b[1].AsInt() || a[3].AsInt() != b[3].AsInt() {
		t.Fatalf("chains diverged after full replay: src=%v dst=%v", a, b)
	}

	// After a checkpoint rotates history away, records below the horizon
	// are refused (the caller must full-copy instead).
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SHOW WAL RECORDS SINCE 0 LIMIT 1"); err == nil {
		t.Fatal("records below the rotated horizon should be refused")
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
}

func mustB64(t *testing.T, s string) []byte {
	t.Helper()
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWALOnNilIsInert: a DB without a WAL answers the SHOW WAL surface
// gracefully and pays no durability cost.
func TestWALOnNilIsInert(t *testing.T) {
	db := New()
	s := db.NewSession()
	defer s.Close()
	walSchema(t, s)
	st := walMustExec(t, s, "SHOW WAL STATUS")
	if st.Rows[0][0].AsInt() != 0 {
		t.Fatal("no-wal status should report attached=0")
	}
	if _, err := s.Exec("SHOW WAL RECORDS SINCE 0 LIMIT 1"); err == nil {
		t.Fatal("records on a wal-less engine should error")
	}
	if got := db.WALStats(); got.Attached {
		t.Fatal("WALStats on wal-less engine")
	}
}

// TestWALRefusesNonEmptyRecovery: recovering into a populated engine is a
// configuration error, not a silent merge.
func TestWALRefusesNonEmptyRecovery(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	s.Close()
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	s2 := db2.NewSession()
	walMustExec(t, s2, "CREATE TABLE other (id INT PRIMARY KEY)")
	s2.Close()
	if _, err := db2.AttachWAL(testWALOpts(dir)); err == nil {
		t.Fatal("recovery into a non-empty engine must be refused")
	}
}

// TestWALAutoCheckpoint: crossing CheckpointBytes triggers a checkpoint
// from the flusher without an explicit call.
func TestWALAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := New()
	opts := testWALOpts(dir)
	opts.CheckpointBytes = 4 << 10
	if _, err := db.AttachWAL(opts); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	walSchema(t, s)
	for i := 0; i < 200; i++ {
		walMustExec(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)",
			String(fmt.Sprintf("row-%04d-padding-padding-padding", i)), Int(int64(i)))
	}
	s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for db.WALStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no automatic checkpoint after crossing CheckpointBytes")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	db2, info := recoverDB(t, dir)
	if info.CheckpointLSN == 0 {
		t.Fatal("recovery should start from the automatic checkpoint")
	}
	if got, want := dbDump(t, db2), dbDump(t, db); got != want {
		t.Fatal("auto-checkpoint recovery diverged")
	}
}
