package sqldb

import (
	"sort"
	"sync"
	"time"
)

// lockManager implements MyISAM-style table locking for real (goroutine)
// concurrency: shared read locks, exclusive write locks, and writer
// priority — a pending write lock blocks later read requests on the same
// table. Explicit LOCK TABLES acquires a set atomically in sorted order
// (MySQL's deadlock-avoidance discipline); implicit per-statement locks
// bracket single statements.
//
// Since the snapshot-read path landed (mvcc.go), plain SELECTs no longer
// come here at all: the lock manager serves writers, LOCK TABLES brackets,
// the read-your-writes reads of open transactions, and the brief read lock
// a snapshot refresh takes to copy committed state. Sessions that hold a
// *Table should go through DB.tableLockOf, which skips the map lookup via
// the pointer cached on the table at CREATE time.
type lockManager struct {
	mu     sync.Mutex
	tables map[string]*tableLock
}

type tableLock struct {
	mu          sync.Mutex
	cond        *sync.Cond
	readers     int
	writer      bool
	wantWriters int // pending write requests, for writer priority
}

func newLockManager() *lockManager {
	return &lockManager{tables: make(map[string]*tableLock)}
}

func (lm *lockManager) lockFor(table string) *tableLock {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	tl, ok := lm.tables[table]
	if !ok {
		tl = &tableLock{}
		tl.cond = sync.NewCond(&tl.mu)
		lm.tables[table] = tl
	}
	return tl
}

func (tl *tableLock) lock(write bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if write {
		tl.wantWriters++
		for tl.writer || tl.readers > 0 {
			tl.cond.Wait()
		}
		tl.wantWriters--
		tl.writer = true
		return
	}
	// Writer priority: readers yield to pending writers.
	for tl.writer || tl.wantWriters > 0 {
		tl.cond.Wait()
	}
	tl.readers++
}

// lockTimed acquires like lock but gives up once timeout elapses, returning
// false with nothing held. Transactions use it for every lock they take:
// their locks accumulate across statements in arbitrary table order, so a
// cycle between two transactions is possible — the timeout converts a
// would-be deadlock into an abort of one participant.
func (tl *tableLock) lockTimed(write bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// The timer broadcast takes tl.mu, so it serializes against the wait
	// loop below: waiters are either woken by it or observe the expired
	// deadline on their next check — no lost-wakeup window.
	timer := time.AfterFunc(timeout, func() {
		tl.mu.Lock()
		tl.cond.Broadcast()
		tl.mu.Unlock()
	})
	defer timer.Stop()
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if write {
		tl.wantWriters++
		for tl.writer || tl.readers > 0 {
			if !time.Now().Before(deadline) {
				tl.wantWriters--
				tl.cond.Broadcast() // unblock readers yielding to us
				return false
			}
			tl.cond.Wait()
		}
		tl.wantWriters--
		tl.writer = true
		return true
	}
	for tl.writer || tl.wantWriters > 0 {
		if !time.Now().Before(deadline) {
			return false
		}
		tl.cond.Wait()
	}
	tl.readers++
	return true
}

func (tl *tableLock) unlock(write bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if write {
		tl.writer = false
	} else {
		tl.readers--
	}
	tl.cond.Broadcast()
}

// heldLock records one lock held by a session.
type heldLock struct {
	table string
	write bool
}

// acquireSet locks the given tables in sorted name order, upgrading
// duplicates to the strongest requested mode.
func (lm *lockManager) acquireSet(items []heldLock) []heldLock {
	merged := make(map[string]bool, len(items))
	for _, it := range items {
		merged[it.table] = merged[it.table] || it.write
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	held := make([]heldLock, 0, len(names))
	for _, n := range names {
		lm.lockFor(n).lock(merged[n])
		held = append(held, heldLock{table: n, write: merged[n]})
	}
	return held
}

// releaseSet unlocks a previously acquired set.
func (lm *lockManager) releaseSet(held []heldLock) {
	// Release in reverse acquisition order.
	for i := len(held) - 1; i >= 0; i-- {
		lm.lockFor(held[i].table).unlock(held[i].write)
	}
}
