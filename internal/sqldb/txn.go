package sqldb

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the transaction subsystem: BEGIN/COMMIT/ROLLBACK with a
// per-session row-level undo log over the MyISAM-style storage. A
// transaction acquires each table's write lock the first time it writes the
// table and holds it until commit or rollback (table-granular two-phase
// locking); every lock a transaction takes — including the short read locks
// of its SELECTs — is acquired with a wait timeout, and a timeout aborts
// the whole transaction, converting lock cycles between transactions into a
// deterministic "deadlock wait timeout" error instead of a hang. Within a
// statement, multi-table lock sets are still acquired in sorted order.
//
// Statements inside a transaction are individually atomic: a statement that
// fails midway (say row 3 of a multi-row INSERT hitting a duplicate key)
// is undone back to its own start, and the transaction continues — MySQL's
// statement-level atomicity.
//
// Rollback is purely deterministic: undo records are applied in reverse,
// restoring row images, index postings, scan order, and the AUTO_INCREMENT
// and rowid counters, so an aborted transaction leaves the database
// bit-identical to its pre-transaction state — the property the replicated
// cluster relies on to keep backends identical across aborts.

// ErrLockWaitTimeout is wrapped by errors returned when a transaction's
// lock wait times out; the transaction has been rolled back.
var ErrLockWaitTimeout = errors.New("lock wait timeout, transaction rolled back")

// defaultLockWait bounds how long a transaction waits for any table lock
// before aborting. Both benchmarks' transactions run in microseconds, so a
// quarter second of waiting means a lock cycle, not contention.
const defaultLockWait = 250 * time.Millisecond

// SetLockWaitTimeout overrides the transaction lock-wait timeout (tests use
// short values to exercise the deadlock-abort path quickly). Zero or
// negative restores the default.
func (db *DB) SetLockWaitTimeout(d time.Duration) {
	if d <= 0 {
		d = defaultLockWait
	}
	db.lockWaitNanos.Store(int64(d))
}

func (db *DB) lockWait() time.Duration {
	if n := db.lockWaitNanos.Load(); n > 0 {
		return time.Duration(n)
	}
	return defaultLockWait
}

// TxnStats is the transaction subsystem's observability surface: counters
// since boot, reported by the database tier's telemetry.
type TxnStats struct {
	Begins           int64 `json:"begins"`
	Commits          int64 `json:"commits"`
	Rollbacks        int64 `json:"rollbacks"`
	DeadlockTimeouts int64 `json:"deadlock_timeouts"`
	// LockWaitNanos is cumulative time transactions spent blocked waiting
	// for table locks — the contention observable the bottleneck heuristic
	// charges to the database tier.
	LockWaitNanos int64 `json:"lock_wait_nanos"`
}

// txnCounters aggregates the DB-wide transaction counters.
type txnCounters struct {
	begins           atomic.Int64
	commits          atomic.Int64
	rollbacks        atomic.Int64
	deadlockTimeouts atomic.Int64
	lockWaitNanos    atomic.Int64
}

// TxnStats snapshots the transaction counters.
func (db *DB) TxnStats() TxnStats {
	return TxnStats{
		Begins:           db.txns.begins.Load(),
		Commits:          db.txns.commits.Load(),
		Rollbacks:        db.txns.rollbacks.Load(),
		DeadlockTimeouts: db.txns.deadlockTimeouts.Load(),
		LockWaitNanos:    db.txns.lockWaitNanos.Load(),
	}
}

// undoRec is one inverse operation. Records are applied newest-first.
type undoRec struct {
	t  *Table
	id int64
	// kind discriminates the union below.
	kind undoKind
	// old holds the pre-image: changed columns for an update, the full row
	// for a delete.
	old map[int]Value
	row Row
	// prevNextID / prevNextAI restore the table counters for an insert.
	prevNextID int64
	prevNextAI int64
}

type undoKind int

const (
	undoInsert undoKind = iota
	undoUpdate
	undoDelete
)

func (r *undoRec) revert() {
	switch r.kind {
	case undoInsert:
		r.t.undoInsert(r.id, r.prevNextID, r.prevNextAI)
	case undoUpdate:
		r.t.restoreCols(r.id, r.old)
	case undoDelete:
		r.t.restoreRow(r.id, r.row)
	}
}

// txn is a session's active transaction: its undo log, the write locks it
// holds until commit or rollback, and the tables those locks cover (for the
// snapshot publications at commit).
type txn struct {
	undo   []undoRec
	held   []heldLock
	tables []*Table // write-locked tables, same order as held
	// logged accumulates the transaction's successful write statements for
	// the WAL: the whole list becomes one record batch at COMMIT. Failed
	// statements are absent — their effects were reverted (statement
	// atomicity), so replay must not re-run them. A rolled-back
	// transaction's list is discarded with the txn: it never touches the
	// log.
	logged []walStmt
	// prepared marks phase one of two-phase commit: the transaction holds
	// its locks and undo log but accepts no further statements until COMMIT
	// or ROLLBACK. The in-memory engine's commit of a prepared transaction
	// cannot fail — undo is discarded, publications are lock-protected —
	// which is the property the cluster's 2PC coordinator relies on.
	prepared bool
}

// add appends an undo record.
func (tx *txn) add(r undoRec) { tx.undo = append(tx.undo, r) }

// mark returns the current undo position (the statement-atomicity anchor).
func (tx *txn) mark() int { return len(tx.undo) }

// revertTo undoes everything after mark, newest first.
func (tx *txn) revertTo(mark int) {
	for i := len(tx.undo) - 1; i >= mark; i-- {
		tx.undo[i].revert()
	}
	tx.undo = tx.undo[:mark]
}

// holdsWrite reports whether the transaction holds table's write lock.
func (tx *txn) holdsWrite(table string) bool {
	for _, h := range tx.held {
		if h.table == table {
			return true
		}
	}
	return false
}

// holdsWriteAny reports whether the transaction write-locks any of tabs —
// the read-your-writes test that forces a SELECT off the snapshot path.
func (tx *txn) holdsWriteAny(tabs []*Table) bool {
	for _, t := range tabs {
		if tx.holdsWrite(t.name) {
			return true
		}
	}
	return false
}

// InTxn reports whether a transaction is open on the session.
func (s *Session) InTxn() bool { return s.tx != nil }

// execBegin opens a transaction. A transaction already open is implicitly
// committed first, and an active LOCK TABLES set is released — both MySQL's
// rules for START TRANSACTION.
func (s *Session) execBegin() (*Result, error) {
	if s.tx != nil {
		s.commitTxn()
	}
	if s.held != nil {
		s.db.locks.releaseSet(s.held)
		s.held = nil
	}
	s.tx = &txn{}
	s.db.txns.begins.Add(1)
	return &Result{}, nil
}

// execCommit commits the open transaction; with none open it is a no-op,
// as in MySQL.
func (s *Session) execCommit() (*Result, error) {
	if s.tx != nil {
		s.commitTxn()
	}
	return &Result{}, nil
}

// execPrepareTxn is PREPARE TRANSACTION: phase one of two-phase commit.
// Every lock the transaction will ever need is already held and every
// statement has been applied, so a prepared transaction can always commit;
// the session merely latches out further statements. A session that closes
// (connection drop) still rolls back — the in-memory engine has no durable
// prepared state, a limitation PROTOCOL.md documents.
func (s *Session) execPrepareTxn() (*Result, error) {
	if s.tx == nil {
		return nil, fmt.Errorf("sqldb: PREPARE TRANSACTION outside a transaction")
	}
	s.tx.prepared = true
	return &Result{}, nil
}

// execRollback rolls the open transaction back; a no-op with none open.
func (s *Session) execRollback() (*Result, error) {
	if s.tx != nil {
		s.rollbackTxn()
		s.db.txns.rollbacks.Add(1)
	}
	return &Result{}, nil
}

// commitTxn discards the undo log and releases the held write locks. Each
// written table is published first — still under its write lock — so the
// transaction's effects on a table become visible to snapshot readers
// atomically, and only at commit. The WAL record — one batch for the whole
// transaction, so a torn tail drops it atomically — is appended under the
// same locks; the committer waits for its fsync only after they drop.
func (s *Session) commitTxn() {
	if w := s.db.wal; w != nil && len(s.tx.logged) > 0 {
		s.notePending(w.appendBatch(s.tx.logged))
	}
	for _, t := range s.tx.tables {
		t.publish()
	}
	s.db.locks.releaseSet(s.tx.held)
	s.tx = nil
	s.db.txns.commits.Add(1)
}

// rollbackTxn applies the undo log in reverse, then releases the locks.
// Undo runs while the write locks are still held, so no other session
// observes the intermediate states.
func (s *Session) rollbackTxn() {
	s.tx.revertTo(0)
	s.db.locks.releaseSet(s.tx.held)
	s.tx = nil
}

// abortTxn is the deadlock-timeout exit: roll back, count, and surface a
// wrapped ErrLockWaitTimeout for the statement that timed out.
func (s *Session) abortTxn(table string) error {
	s.rollbackTxn()
	s.db.txns.rollbacks.Add(1)
	s.db.txns.deadlockTimeouts.Add(1)
	return fmt.Errorf("sqldb: %w (table %q)", ErrLockWaitTimeout, table)
}

// txnWriteLock ensures the transaction holds table's write lock, acquiring
// it with the wait timeout. On timeout the transaction is aborted and the
// returned error wraps ErrLockWaitTimeout.
func (s *Session) txnWriteLock(t *Table) error {
	if s.tx.holdsWrite(t.name) {
		return nil
	}
	start := time.Now()
	ok := s.db.tableLockOf(t).lockTimed(true, s.db.lockWait())
	s.db.txns.lockWaitNanos.Add(time.Since(start).Nanoseconds())
	if !ok {
		return s.abortTxn(t.name)
	}
	s.tx.held = append(s.tx.held, heldLock{table: t.name, write: true})
	s.tx.tables = append(s.tx.tables, t)
	return nil
}

// txnReadLocks takes short (statement-scoped) read locks for the tables a
// SELECT inside a transaction touches, skipping tables whose write lock the
// transaction already holds. Names are sorted and deduped first (the same
// deadlock-avoidance order every lock set uses); each acquisition is timed,
// and a timeout aborts the transaction. It returns a release for the
// acquired set.
func (s *Session) txnReadLocks(tables []*Table) (release func(), err error) {
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		if !s.tx.holdsWrite(t.name) {
			names = append(names, t.name)
		}
	}
	sortStrings(names)
	var acquired []heldLock
	releaseAcquired := func() { s.db.locks.releaseSet(acquired) }
	for i, n := range names {
		if i > 0 && n == names[i-1] {
			continue
		}
		start := time.Now()
		ok := s.db.locks.lockFor(n).lockTimed(false, s.db.lockWait())
		s.db.txns.lockWaitNanos.Add(time.Since(start).Nanoseconds())
		if !ok {
			releaseAcquired()
			return nil, s.abortTxn(n)
		}
		acquired = append(acquired, heldLock{table: n})
	}
	return releaseAcquired, nil
}

// withTxnLock brackets a write statement inside the transaction: the table
// write lock is acquired (and kept), and the statement's effects are undone
// if it fails partway — statement-level atomicity. A successful statement
// joins the transaction's WAL batch (logged at COMMIT); a failed one was
// reverted and is not replayable state.
func (s *Session) withTxnLock(table, src string, args []Value, fn func(*Table) (*Result, error)) (*Result, error) {
	t, err := s.db.table(table)
	if err != nil {
		return nil, err
	}
	if err := s.txnWriteLock(t); err != nil {
		return nil, err
	}
	mark := s.tx.mark()
	res, err := fn(t)
	if err != nil {
		s.tx.revertTo(mark)
		return nil, err
	}
	if s.db.wal != nil && src != "" {
		s.tx.logged = append(s.tx.logged, walStmt{q: src, args: args})
	}
	return res, nil
}
