package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqldb/sqlparse"
)

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT 1", "SELECT 1"},
		{"  SELECT 1  ", "SELECT 1"},
		{"SELECT\n\t1", "SELECT 1"},
		{"SELECT  a,   b FROM t", "SELECT a, b FROM t"},
		{"SELECT 'a  b'", "SELECT 'a  b'"},       // quoted whitespace preserved
		{"SELECT \"x\t y\"", "SELECT \"x\t y\""}, // double quotes too
		{"SELECT 'a  b'  ,  c", "SELECT 'a  b' , c"},
		// Lexer escapes: a backslash-escaped quote does not close the
		// literal, and a doubled quote stays inside it.
		{`SELECT 'a\' b'  ,  c`, `SELECT 'a\' b' , c`},
		{`SELECT 'a\\'  ,  c`, `SELECT 'a\\' , c`},
		{"SELECT 'a''  b'  ,  c", "SELECT 'a''  b' , c"},
	}
	for _, c := range cases {
		if got := normalizeQuery(c.in); got != c.want {
			t.Errorf("normalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Differently formatted spellings of one statement share a cache key.
	a := normalizeQuery("SELECT id, name FROM items\n\t WHERE category = ?")
	b := normalizeQuery("SELECT id, name FROM items WHERE category = ?")
	if a != b {
		t.Fatalf("keys differ: %q vs %q", a, b)
	}
	// Statements whose literals differ only in interior whitespace after
	// an escaped quote must NOT collide (they parse differently).
	x := normalizeQuery(`SELECT id FROM t WHERE v = 'a\' b'`)
	y := normalizeQuery(`SELECT id FROM t WHERE v = 'a\'  b'`)
	if x == y {
		t.Fatalf("distinct literals share a cache key: %q", x)
	}
}

func TestPlanCacheHitMissCounters(t *testing.T) {
	db := New()
	if _, err := db.Prepare("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Prepare("SELECT  id  FROM t"); err != nil { // same normalized key
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Misses != 1 || st.Hits != 3 || st.Size != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Capacity != defaultPlanCacheSize {
		t.Fatalf("capacity: %+v", st)
	}
}

func TestPlanCacheSharesAST(t *testing.T) {
	db := New()
	s1, err := db.Prepare("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Prepare("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("repeated Prepare must return the shared cached AST")
	}
}

func TestPlanCacheBounded(t *testing.T) {
	c := newPlanCache(2)
	stmt, err := sqlparse.Parse("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	c.put("a", stmt)
	c.put("b", stmt)
	c.put("c", stmt) // evicts "a" (LRU)
	if c.size() != 2 {
		t.Fatalf("size %d, want 2", c.size())
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("recent entry evicted")
	}
	// Touching "b" made "c" the LRU candidate.
	c.put("d", stmt)
	if _, ok := c.get("c"); ok {
		t.Fatal("LRU order not maintained")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestPlanCacheParseErrorNotCached(t *testing.T) {
	db := New()
	for i := 0; i < 2; i++ {
		if _, err := db.Prepare("SELEKT nope"); err == nil {
			t.Fatal("want parse error")
		}
	}
	if st := db.PlanCacheStats(); st.Size != 0 {
		t.Fatalf("parse errors must not be cached: %+v", st)
	}
}

// TestPlanCacheConcurrent hammers Prepare from many goroutines (same and
// distinct statements) under -race.
func TestPlanCacheConcurrent(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("SELECT id FROM t%d", i%17)
				if g%2 == 0 {
					q = "SELECT id FROM t"
				}
				if _, err := db.Prepare(q); err != nil {
					t.Errorf("prepare: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := db.PlanCacheStats()
	if st.Size == 0 || st.Hits+st.Misses != 1600 {
		t.Fatalf("stats: %+v", st)
	}
}
