package sqldb

import (
	"bytes"
	"os"
	"testing"
)

// FuzzWALRecord exercises the record codec and the recovery scan against
// hostile bytes. The invariants under fuzz:
//
//   - decodeRecord never panics, whatever the input;
//   - a decode that succeeds yields exactly what was encoded — truncated
//     tails surface as errWALNeedMore, and a single flipped bit is either
//     rejected or decodes to the identical statement list (crc32 detects
//     all single-bit errors; either way nothing corrupted is applied);
//   - full recovery over a log whose tail is fuzz garbage never panics,
//     never applies anything past the first bad checksum, and reports the
//     LSN it stopped at.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{}, "INSERT INTO items (name, qty) VALUES (?, ?)", int64(7), "widget", true)
	f.Add([]byte{0x40, 0, 0, 0, 0xde, 0xad}, "UPDATE items SET qty = 0", int64(-1), "", false)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, "DELETE FROM items", int64(1<<40), "x", true)
	f.Add(bytes.Repeat([]byte{0xff}, 64), "q", int64(0), "\x00\xff", false)

	f.Fuzz(func(t *testing.T, tail []byte, q string, iv int64, sv string, withNull bool) {
		// 1. Arbitrary bytes through the decoder: must not panic, and a
		// "successful" decode of garbage must still be internally consistent
		// (args decodable).
		if stmts, _, err := decodeRecord(tail); err == nil {
			for _, st := range stmts {
				if _, verr := st.values(); verr != nil {
					t.Fatalf("record decoded OK but args do not: %v", verr)
				}
			}
		}

		// 2. Round trip of a fuzz-shaped statement batch.
		args := []Value{Int(iv), String(sv), Float(float64(iv) / 3)}
		if withNull {
			args = append(args, Null())
		}
		stmts := []walStmt{{q: q, args: args}, {q: q + "/2", args: nil}}
		encArgs := [][]byte{EncodeWALValues(args), EncodeWALValues(nil)}
		rec := encodeRecord(41, stmts, encArgs)

		got, rest, err := decodeRecord(rec)
		if err != nil || len(rest) != 0 {
			t.Fatalf("round trip decode: %v (rest %d)", err, len(rest))
		}
		if len(got) != 2 || got[0].lsn != 41 || got[1].lsn != 42 || got[0].q != q {
			t.Fatalf("round trip mismatch: %+v", got)
		}
		gotArgs, err := got[0].values()
		if err != nil || len(gotArgs) != len(args) {
			t.Fatalf("arg round trip: %v (%d args)", err, len(gotArgs))
		}
		for i := range args {
			if gotArgs[i] != args[i] {
				t.Fatalf("arg %d: got %v want %v", i, gotArgs[i], args[i])
			}
		}

		// 3. Every truncated tail of the record is "need more", never a
		// short successful decode and never a panic.
		for cut := 0; cut < len(rec); cut++ {
			if _, _, err := decodeRecord(rec[:cut]); err == nil {
				t.Fatalf("truncation at %d/%d decoded successfully", cut, len(rec))
			}
		}

		// 4. Single-bit corruption: rejected, or decodes to the identical
		// batch (never to different statements).
		flip := make([]byte, len(rec))
		stride := 1
		if len(rec) > 128 {
			stride = len(rec) * 8 / 512 // cap the sweep for big records
		}
		for bit := 0; bit < len(rec)*8; bit += stride {
			copy(flip, rec)
			flip[bit/8] ^= 1 << (bit % 8)
			fs, _, err := decodeRecord(flip)
			if err != nil {
				continue
			}
			if len(fs) != len(got) {
				t.Fatalf("bit %d flip decoded to %d statements", bit, len(fs))
			}
			for i := range fs {
				if fs[i].q != got[i].q || fs[i].lsn != got[i].lsn ||
					!bytes.Equal(fs[i].encArgs, got[i].encArgs) {
					t.Fatalf("bit %d flip decoded to different content", bit)
				}
			}
		}

		// 5. Recovery over a segment ending in the fuzz bytes: the two
		// committed inserts survive, nothing from the garbage applies, and
		// the reported stop LSN matches the intact prefix.
		dir := t.TempDir()
		db := New()
		if _, err := db.AttachWAL(testWALOpts(dir)); err != nil {
			t.Fatal(err)
		}
		s := db.NewSession()
		for _, stmt := range []string{
			"CREATE TABLE fz (id INT PRIMARY KEY, v INT)",
			"INSERT INTO fz (id, v) VALUES (1, 1)",
			"INSERT INTO fz (id, v) VALUES (2, 2)",
		} {
			if _, err := s.Exec(stmt); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		want := dbDump(t, db)
		wantLSN := db.WALStats().LastLSN
		if err := db.CloseWAL(); err != nil {
			t.Fatal(err)
		}
		_, segs, err := scanWALDir(dir)
		if err != nil || len(segs) == 0 {
			t.Fatalf("segments: %v", err)
		}
		fh, err := os.OpenFile(segPath(dir, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(tail); err != nil {
			t.Fatal(err)
		}
		fh.Close()

		db2, info := recoverDB(t, dir)
		if got := dbDump(t, db2); got != want {
			t.Fatalf("garbage tail changed recovered state:\n got: %s\nwant: %s", got, want)
		}
		if info.ReplayLSN < wantLSN {
			// Higher is legal only for a checksum-passing, LSN-contiguous
			// tail (a valid record — then the dump check above arbitrates);
			// lower means a committed write was dropped.
			t.Fatalf("replay stopped at LSN %d, want %d", info.ReplayLSN, wantLSN)
		}
	})
}
