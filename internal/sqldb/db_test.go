package sqldb

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// testDB builds a small schema used across tests.
func testDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := New()
	s := db.NewSession()
	stmts := []string{
		`CREATE TABLE items (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name VARCHAR(100) NOT NULL,
			category INT,
			price FLOAT,
			stock INT
		)`,
		`CREATE INDEX idx_cat ON items (category)`,
		`CREATE TABLE bids (
			id INT PRIMARY KEY AUTO_INCREMENT,
			item_id INT NOT NULL,
			user_id INT NOT NULL,
			bid FLOAT
		)`,
		`CREATE INDEX idx_item ON bids (item_id)`,
	}
	for _, q := range stmts {
		if _, err := s.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	return db, s
}

func mustExec(t *testing.T, s *Session, q string, args ...Value) *Result {
	t.Helper()
	r, err := s.Exec(q, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return r
}

func TestInsertSelect(t *testing.T) {
	_, s := testDB(t)
	r := mustExec(t, s, "INSERT INTO items (name, category, price, stock) VALUES ('go book', 3, 29.5, 10)")
	if r.RowsAffected != 1 || r.LastInsertID != 1 {
		t.Fatalf("insert result: %+v", r)
	}
	mustExec(t, s, "INSERT INTO items (name, category, price, stock) VALUES ('db book', 3, 49.0, 5), ('net book', 4, 19.0, 0)")
	got := mustExec(t, s, "SELECT name, price FROM items WHERE category = 3 ORDER BY price DESC")
	if len(got.Rows) != 2 {
		t.Fatalf("rows: %+v", got.Rows)
	}
	if got.Rows[0][0].AsString() != "db book" || got.Rows[1][0].AsString() != "go book" {
		t.Fatalf("order: %+v", got.Rows)
	}
	if got.Columns[0] != "name" || got.Columns[1] != "price" {
		t.Fatalf("columns: %v", got.Columns)
	}
}

func TestAutoIncrement(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (10, 'explicit')")
	r := mustExec(t, s, "INSERT INTO items (name) VALUES ('auto')")
	if r.LastInsertID != 11 {
		t.Fatalf("auto id %d, want 11", r.LastInsertID)
	}
}

func TestSelectStarAndParams(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('a', 1), ('b', 2)")
	got := mustExec(t, s, "SELECT * FROM items WHERE category = ?", Int(2))
	if len(got.Rows) != 1 || got.Rows[0][1].AsString() != "b" {
		t.Fatalf("rows: %+v", got.Rows)
	}
	if len(got.Columns) != 5 {
		t.Fatalf("star columns: %v", got.Columns)
	}
}

func TestUpdate(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, stock, price) VALUES ('a', 5, 2.0), ('b', 1, 3.0)")
	r := mustExec(t, s, "UPDATE items SET stock = stock - 1, price = price * 2 WHERE name = 'a'")
	if r.RowsAffected != 1 {
		t.Fatalf("affected %d", r.RowsAffected)
	}
	got := mustExec(t, s, "SELECT stock, price FROM items WHERE name = 'a'")
	if got.Rows[0][0].AsInt() != 4 || got.Rows[0][1].AsFloat() != 4.0 {
		t.Fatalf("updated row: %+v", got.Rows[0])
	}
}

func TestUpdateIndexMaintenance(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('a', 1)")
	mustExec(t, s, "UPDATE items SET category = 9 WHERE name = 'a'")
	if got := mustExec(t, s, "SELECT id FROM items WHERE category = 1"); len(got.Rows) != 0 {
		t.Fatalf("stale index entry: %+v", got.Rows)
	}
	if got := mustExec(t, s, "SELECT id FROM items WHERE category = 9"); len(got.Rows) != 1 {
		t.Fatalf("missing index entry: %+v", got.Rows)
	}
}

func TestDelete(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('a', 1), ('b', 1), ('c', 2)")
	r := mustExec(t, s, "DELETE FROM items WHERE category = 1")
	if r.RowsAffected != 2 {
		t.Fatalf("affected %d", r.RowsAffected)
	}
	got := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if got.Rows[0][0].AsInt() != 1 {
		t.Fatalf("count after delete: %+v", got.Rows)
	}
}

func TestJoinWithIndex(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('a', 1), ('b', 2)")
	mustExec(t, s, "INSERT INTO bids (item_id, user_id, bid) VALUES (1, 100, 5.0), (1, 101, 6.0), (2, 100, 9.0)")
	got := mustExec(t, s, `SELECT i.name, b.bid FROM items i
		JOIN bids b ON b.item_id = i.id WHERE i.id = 1 ORDER BY b.bid DESC`)
	if len(got.Rows) != 2 || got.Rows[0][1].AsFloat() != 6.0 {
		t.Fatalf("join rows: %+v", got.Rows)
	}
}

func TestJoinThreeTables(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "CREATE TABLE users (id INT PRIMARY KEY, nick VARCHAR(20))")
	mustExec(t, s, "INSERT INTO users VALUES (100, 'alice'), (101, 'bob')")
	mustExec(t, s, "INSERT INTO items (name) VALUES ('a')")
	mustExec(t, s, "INSERT INTO bids (item_id, user_id, bid) VALUES (1, 100, 5.0), (1, 101, 7.0)")
	got := mustExec(t, s, `SELECT u.nick FROM items i
		JOIN bids b ON b.item_id = i.id
		JOIN users u ON u.id = b.user_id
		WHERE i.id = 1 ORDER BY b.bid DESC LIMIT 1`)
	if len(got.Rows) != 1 || got.Rows[0][0].AsString() != "bob" {
		t.Fatalf("top bidder: %+v", got.Rows)
	}
}

func TestAggregates(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO bids (item_id, user_id, bid) VALUES (1,1,2.0),(1,2,4.0),(2,1,10.0)")
	got := mustExec(t, s, "SELECT COUNT(*), MAX(bid), MIN(bid), AVG(bid), SUM(bid) FROM bids WHERE item_id = 1")
	r := got.Rows[0]
	if r[0].AsInt() != 2 || r[1].AsFloat() != 4.0 || r[2].AsFloat() != 2.0 ||
		r[3].AsFloat() != 3.0 || r[4].AsFloat() != 6.0 {
		t.Fatalf("aggregates: %+v", r)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	_, s := testDB(t)
	got := mustExec(t, s, "SELECT COUNT(*), MAX(bid) FROM bids")
	if got.Rows[0][0].AsInt() != 0 || !got.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregate: %+v", got.Rows[0])
	}
}

func TestGroupBy(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO bids (item_id, user_id, bid) VALUES (1,1,2.0),(1,2,4.0),(2,1,10.0)")
	got := mustExec(t, s, `SELECT item_id, COUNT(*) AS n, MAX(bid) AS top
		FROM bids GROUP BY item_id ORDER BY n DESC`)
	if len(got.Rows) != 2 {
		t.Fatalf("groups: %+v", got.Rows)
	}
	if got.Rows[0][0].AsInt() != 1 || got.Rows[0][1].AsInt() != 2 || got.Rows[0][2].AsFloat() != 4.0 {
		t.Fatalf("group row: %+v", got.Rows[0])
	}
}

func TestOrderByUnselectedColumn(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, price) VALUES ('cheap', 1.0), ('dear', 9.0)")
	got := mustExec(t, s, "SELECT name FROM items ORDER BY price DESC")
	if got.Rows[0][0].AsString() != "dear" {
		t.Fatalf("order by unselected: %+v", got.Rows)
	}
}

func TestLimitOffset(t *testing.T) {
	_, s := testDB(t)
	for i := 0; i < 10; i++ {
		mustExec(t, s, "INSERT INTO items (name, price) VALUES (?, ?)", String("x"), Int(int64(i)))
	}
	got := mustExec(t, s, "SELECT price FROM items ORDER BY price LIMIT 3 OFFSET 4")
	if len(got.Rows) != 3 || got.Rows[0][0].AsFloat() != 4 {
		t.Fatalf("limit/offset: %+v", got.Rows)
	}
	got = mustExec(t, s, "SELECT price FROM items ORDER BY price LIMIT 100 OFFSET 8")
	if len(got.Rows) != 2 {
		t.Fatalf("offset past end: %+v", got.Rows)
	}
}

func TestDistinct(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('a',1),('b',1),('c',2)")
	got := mustExec(t, s, "SELECT DISTINCT category FROM items ORDER BY category")
	if len(got.Rows) != 2 {
		t.Fatalf("distinct: %+v", got.Rows)
	}
}

func TestLikeAndIn(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('golang',1),('gopher',2),('java',3)")
	got := mustExec(t, s, "SELECT name FROM items WHERE name LIKE 'go%' ORDER BY name")
	if len(got.Rows) != 2 {
		t.Fatalf("like: %+v", got.Rows)
	}
	got = mustExec(t, s, "SELECT name FROM items WHERE category IN (1, 3) ORDER BY name")
	if len(got.Rows) != 2 || got.Rows[0][0].AsString() != "golang" {
		t.Fatalf("in: %+v", got.Rows)
	}
}

func TestNullSemantics(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, category) VALUES ('a', NULL), ('b', 2)")
	if got := mustExec(t, s, "SELECT name FROM items WHERE category = NULL"); len(got.Rows) != 0 {
		t.Fatalf("= NULL must match nothing: %+v", got.Rows)
	}
	if got := mustExec(t, s, "SELECT name FROM items WHERE category IS NULL"); len(got.Rows) != 1 {
		t.Fatalf("IS NULL: %+v", got.Rows)
	}
	if got := mustExec(t, s, "SELECT name FROM items WHERE category IS NOT NULL"); len(got.Rows) != 1 {
		t.Fatalf("IS NOT NULL: %+v", got.Rows)
	}
}

func TestUniqueViolation(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (id, name) VALUES (1, 'a')")
	if _, err := s.Exec("INSERT INTO items (id, name) VALUES (1, 'b')"); err == nil {
		t.Fatal("duplicate primary key must fail")
	}
	// The failed insert must not have corrupted the table.
	got := mustExec(t, s, "SELECT COUNT(*) FROM items")
	if got.Rows[0][0].AsInt() != 1 {
		t.Fatalf("row count after violation: %+v", got.Rows)
	}
}

func TestNotNullViolation(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.Exec("INSERT INTO items (name) VALUES (NULL)"); err == nil {
		t.Fatal("NULL into NOT NULL must fail")
	}
}

func TestUnknownTableAndColumn(t *testing.T) {
	_, s := testDB(t)
	if _, err := s.Exec("SELECT a FROM nope"); err == nil {
		t.Fatal("unknown table must fail")
	}
	if _, err := s.Exec("SELECT nope FROM items"); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestLockTablesEnforcesCoverage(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "LOCK TABLES items WRITE")
	if _, err := s.Exec("SELECT COUNT(*) FROM bids"); err == nil {
		t.Fatal("access to unlocked table under LOCK TABLES must fail")
	}
	if _, err := s.Exec("INSERT INTO items (name) VALUES ('x')"); err != nil {
		t.Fatalf("write to write-locked table: %v", err)
	}
	mustExec(t, s, "UNLOCK TABLES")
	mustExec(t, s, "SELECT COUNT(*) FROM bids")
}

func TestLockTablesReadBlocksWrite(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "LOCK TABLES items READ")
	if _, err := s.Exec("INSERT INTO items (name) VALUES ('x')"); err == nil {
		t.Fatal("write under READ lock must fail")
	}
	mustExec(t, s, "UNLOCK TABLES")
}

func TestSessionCloseReleasesLocks(t *testing.T) {
	db, s := testDB(t)
	mustExec(t, s, "LOCK TABLES items WRITE")
	s.Close()
	// A second session must be able to lock immediately; guard with a
	// timeout via goroutine.
	done := make(chan struct{})
	go func() {
		s2 := db.NewSession()
		defer s2.Close()
		if _, err := s2.Exec("LOCK TABLES items WRITE"); err != nil {
			t.Errorf("lock after close: %v", err)
		}
		s2.Exec("UNLOCK TABLES")
		close(done)
	}()
	<-done
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 0)")
	var wg sync.WaitGroup
	const writers, increments = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < increments; i++ {
				if _, err := sess.Exec("UPDATE items SET stock = stock + 1 WHERE id = 1"); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < 30; i++ {
				if _, err := sess.Exec("SELECT stock FROM items WHERE id = 1"); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got := mustExec(t, s, "SELECT stock FROM items WHERE id = 1")
	if got.Rows[0][0].AsInt() != writers*increments {
		t.Fatalf("lost updates: stock = %v, want %d", got.Rows[0][0], writers*increments)
	}
}

func TestConcurrentLockTablesAtomicity(t *testing.T) {
	// Two sessions locking {items, bids} in different textual orders must
	// not deadlock (the manager sorts), and increments under the lock pair
	// must not be lost.
	db, s := testDB(t)
	mustExec(t, s, "INSERT INTO items (name, stock) VALUES ('a', 0)")
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			lock := "LOCK TABLES items WRITE, bids WRITE"
			if w%2 == 1 {
				lock = "LOCK TABLES bids WRITE, items WRITE"
			}
			for i := 0; i < 20; i++ {
				if _, err := sess.Exec(lock); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if _, err := sess.Exec("UPDATE items SET stock = stock + 1 WHERE id = 1"); err != nil {
					t.Errorf("update: %v", err)
				}
				if _, err := sess.Exec("UNLOCK TABLES"); err != nil {
					t.Errorf("unlock: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	got := mustExec(t, s, "SELECT stock FROM items WHERE id = 1")
	if got.Rows[0][0].AsInt() != 120 {
		t.Fatalf("stock = %v, want 120", got.Rows[0][0])
	}
}

func TestDropTable(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "DROP TABLE bids")
	if _, err := s.Exec("SELECT * FROM bids"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	mustExec(t, s, "DROP TABLE IF EXISTS bids")
	if _, err := s.Exec("DROP TABLE bids"); err == nil {
		t.Fatal("dropping missing table must fail without IF EXISTS")
	}
}

func TestValueConversions(t *testing.T) {
	cases := []struct {
		v    Value
		i    int64
		f    float64
		s    string
		null bool
	}{
		{Int(42), 42, 42, "42", false},
		{Float(2.5), 2, 2.5, "2.5", false},
		{String("7"), 7, 7, "7", false},
		{String("abc"), 0, 0, "abc", false},
		{Null(), 0, 0, "", true},
	}
	for _, c := range cases {
		if c.v.AsInt() != c.i || c.v.AsFloat() != c.f || c.v.AsString() != c.s || c.v.IsNull() != c.null {
			t.Errorf("conversions for %v: %d %g %q %v", c.v, c.v.AsInt(), c.v.AsFloat(), c.v.AsString(), c.v.IsNull())
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(Int(1), Float(1.0)) != 0 {
		t.Error("int/float equality")
	}
	if Compare(Null(), Int(-100)) != -1 {
		t.Error("NULL sorts first")
	}
	if Compare(String("a"), String("b")) != -1 {
		t.Error("string order")
	}
}

// Property: inserting N rows with distinct keys then querying each key via
// the index returns exactly that row — index lookups agree with full scans.
func TestIndexScanEquivalenceProperty(t *testing.T) {
	f := func(keys []int16) bool {
		db := New()
		s := db.NewSession()
		defer s.Close()
		if _, err := s.Exec("CREATE TABLE t (k INT, v INT)"); err != nil {
			return false
		}
		if _, err := s.Exec("CREATE INDEX ik ON t (k)"); err != nil {
			return false
		}
		for i, k := range keys {
			if _, err := s.Exec("INSERT INTO t (k, v) VALUES (?, ?)", Int(int64(k)), Int(int64(i))); err != nil {
				return false
			}
		}
		for _, k := range keys {
			idx, err := s.Exec("SELECT v FROM t WHERE k = ?", Int(int64(k)))
			if err != nil {
				return false
			}
			// Force a scan with a no-op OR that defeats index selection.
			scan, err := s.Exec("SELECT v FROM t WHERE k = ? OR 1 = 2", Int(int64(k)))
			if err != nil {
				return false
			}
			if len(idx.Rows) != len(scan.Rows) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LIKE matching agrees with a reference implementation based on
// strings.Contains for simple %x% patterns.
func TestLikeContainsProperty(t *testing.T) {
	f := func(s, sub string) bool {
		if strings.ContainsAny(sub, "%_") || strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, "%"+sub+"%") == strings.Contains(s, sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestTableNames(t *testing.T) {
	db, _ := testDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "bids" || names[1] != "items" {
		t.Fatalf("names: %v", names)
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	_, s := testDB(t)
	mustExec(t, s, "INSERT INTO ITEMS (NAME, Category) VALUES ('a', 1)")
	got := mustExec(t, s, "SELECT Name FROM Items WHERE CATEGORY = 1")
	if len(got.Rows) != 1 {
		t.Fatalf("case insensitivity: %+v", got.Rows)
	}
}

// TestShowTables: the catalog query the cluster replica-sync path uses.
func TestShowTables(t *testing.T) {
	db := New()
	s := db.NewSession()
	defer s.Close()
	for _, q := range []string{
		"CREATE TABLE zebra (id INT)",
		"CREATE TABLE apple (id INT)",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "table" {
		t.Fatalf("columns: %v", res.Columns)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsString() != "apple" || res.Rows[1][0].AsString() != "zebra" {
		t.Fatalf("rows not the sorted catalog: %v", res.Rows)
	}
}
