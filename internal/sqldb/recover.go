package sqldb

// Boot-time WAL recovery: AttachWAL loads the newest valid checkpoint
// snapshot into the (empty) engine, replays every log record past it
// through the normal session executor, truncates a torn tail at the first
// bad checksum, and arms the log for new appends. Replay is exactly the
// rejoin path in miniature — the engine is deterministic under an ordered
// statement stream, so re-executing the logged statements re-derives the
// pre-crash committed state, uncommitted transactions excluded (they were
// never logged).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/sqldb/sqlparse"
)

// RecoveryInfo reports what AttachWAL found on disk.
type RecoveryInfo struct {
	// Recovered is true when the directory held prior state (a checkpoint
	// or log segments) that was loaded into the engine.
	Recovered bool
	// CheckpointLSN is the snapshot the engine was seeded from (0: none).
	CheckpointLSN uint64
	// ReplayLSN is the last statement LSN applied — recovery stopped here.
	ReplayLSN uint64
	// ReplayedStmts counts statements re-executed from the log.
	ReplayedStmts int
	// ReplayErrors counts replayed statements that returned errors. A
	// logged auto-commit statement that originally failed (say, the tail
	// of a partially applied multi-row INSERT) fails identically on
	// replay, so a nonzero count is not by itself corruption.
	ReplayErrors int
	// TornTail is true when a truncated or corrupt record ended replay and
	// the log was truncated at that point (the unacknowledged-commit rule:
	// nothing at or past a bad checksum is ever applied).
	TornTail bool
}

// WALDirHasState reports whether dir holds recoverable WAL state — the
// boot-order probe: callers populate first and attach after on a fresh
// directory, but must attach-and-recover without populating on a used one.
func WALDirHasState(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		var x uint64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%016x.snap", &x); err == nil {
			return true
		}
		if _, err := fmt.Sscanf(e.Name(), "wal-%016x.log", &x); err == nil {
			return true
		}
	}
	return false
}

// AttachWAL opens (creating if needed) the write-ahead log in opts.Dir,
// recovers any state found there into db, and arms logging: from here on
// every committed mutation is logged and acknowledged only once fsynced
// (group commit). On a fresh directory with a pre-populated db — the
// populate-then-attach boot order — an initial checkpoint captures the
// populated state so it is durable without having been logged statement by
// statement. Recovering into a non-empty db is refused.
func (db *DB) AttachWAL(opts WALOptions) (*RecoveryInfo, error) {
	if db.wal != nil {
		return nil, errors.New("sqldb: wal already attached")
	}
	if opts.Dir == "" {
		return nil, errors.New("sqldb: wal: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{
		db:         db,
		dir:        opts.Dir,
		fault:      opts.Fault,
		flushEvery: opts.FlushInterval,
		groupBytes: opts.GroupBytes,
		ckptBytes:  opts.CheckpointBytes,
		nextLSN:    1,
	}
	if w.flushEvery <= 0 {
		w.flushEvery = defaultFlushInterval
	}
	if w.groupBytes <= 0 {
		w.groupBytes = defaultGroupBytes
	}
	if w.ckptBytes == 0 {
		w.ckptBytes = defaultCheckpointBytes
	}

	ckpts, segFirsts, err := scanWALDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	hasState := len(ckpts) > 0 || len(segFirsts) > 0
	if hasState && len(db.TableNames()) > 0 {
		return nil, errors.New("sqldb: wal: refusing to recover into a non-empty database")
	}

	info := &RecoveryInfo{Recovered: hasState}

	// Newest checkpoint that loads cleanly wins; older ones are the
	// fallback a crash during checkpoint write leaves us (the temp file
	// never got renamed, so a *named* checkpoint is complete by
	// construction — the fallback guards against disk-level corruption).
	for i := len(ckpts) - 1; i >= 0; i-- {
		lsn, chain, tables, err := loadCheckpoint(ckptPath(opts.Dir, ckpts[i]))
		if err != nil {
			continue
		}
		db.mu.Lock()
		for _, t := range tables {
			t.tlock = db.locks.lockFor(t.name)
			db.tables[t.name] = t
			t.publish()
		}
		db.mu.Unlock()
		w.ckptLSN, w.ckptChain = lsn, chain
		w.chain = chain
		info.CheckpointLSN = lsn
		break
	}

	// Replay segments in LSN order past the checkpoint. A torn or corrupt
	// record — or a gap — ends replay: the log is truncated there and any
	// later segments are removed, so no future boot can apply records past
	// a bad checksum either.
	applied := w.ckptLSN
	sess := db.NewSession()
	replayDone := false
	for _, first := range segFirsts {
		if replayDone {
			os.Remove(segPath(opts.Dir, first))
			continue
		}
		path := segPath(opts.Dir, first)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if len(data) < walSegHeaderSize || [8]byte(data[:8]) != walSegMagic {
			// Garbage file: a break in the log right at this segment.
			os.Remove(path)
			info.TornTail = true
			replayDone = true
			continue
		}
		off := walSegHeaderSize
		for off < len(data) {
			stmts, rest, err := decodeRecord(data[off:])
			if err != nil {
				truncateWALFile(path, int64(off))
				info.TornTail = true
				replayDone = true
				break
			}
			gap := false
			for _, st := range stmts {
				if st.lsn <= applied {
					continue // pre-GC overlap with the checkpoint
				}
				if st.lsn != applied+1 {
					gap = true
					break
				}
				vals, verr := st.values()
				if verr != nil {
					gap = true
					break
				}
				if _, xerr := sess.Exec(st.q, vals...); xerr != nil {
					info.ReplayErrors++
				}
				w.chain = chainStep(w.chain, st.q, st.encArgs)
				applied = st.lsn
				info.ReplayedStmts++
			}
			if gap {
				truncateWALFile(path, int64(off))
				info.TornTail = true
				replayDone = true
				break
			}
			off = len(data) - len(rest)
		}
		w.segs = append(w.segs, walSegment{path: path, firstLSN: first})
	}
	sess.Close()
	w.nextLSN = applied + 1
	// Everything replayed came off fsynced segments: the durability frontier
	// starts at the replay head, not at zero.
	w.durableLSN = applied
	info.ReplayLSN = applied

	// Arm the log: append into the last surviving segment, or start a
	// fresh one.
	if n := len(w.segs); n > 0 {
		f, err := os.OpenFile(w.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil { // make any truncation durable
			f.Close()
			return nil, err
		}
		w.f = f
		w.fSize, w.syncedSize = st.Size(), st.Size()
	} else {
		f, err := createSegment(opts.Dir, w.nextLSN)
		if err != nil {
			return nil, err
		}
		w.f = f
		w.fSize, w.syncedSize = walSegHeaderSize, walSegHeaderSize
		w.segs = append(w.segs, walSegment{path: segPath(opts.Dir, w.nextLSN), firstLSN: w.nextLSN})
	}
	os.Remove(filepath.Join(opts.Dir, "ckpt.tmp")) // crash-mid-checkpoint leftover
	if err := fsyncDir(opts.Dir); err != nil {
		return nil, err
	}

	if hasState {
		w.recoveries.Store(1)
		w.replayed.Store(int64(info.ReplayedStmts))
	}
	w.startFlusher()
	db.wal = w

	if !hasState && len(db.TableNames()) > 0 {
		// Populate-then-attach boot: checkpoint now so the seeded state is
		// durable from the start.
		if err := w.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return info, nil
}

// Checkpoint snapshots the attached log; no-op error when none is attached.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return errors.New("sqldb: no wal attached")
	}
	return db.wal.Checkpoint()
}

func truncateWALFile(path string, n int64) {
	if f, err := os.OpenFile(path, os.O_WRONLY, 0o644); err == nil {
		f.Truncate(n)
		f.Sync()
		f.Close()
	}
}

// scanWALDir lists checkpoint LSNs (ascending) and segment first-LSNs
// (ascending) found in dir.
func scanWALDir(dir string) (ckpts, segs []uint64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		var x uint64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%016x.snap", &x); err == nil {
			ckpts = append(ckpts, x)
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "wal-%016x.log", &x); err == nil {
			segs = append(segs, x)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return ckpts, segs, nil
}

// ---- checkpoint file parsing ----

// ckptReader is a bounds-checked cursor over a checkpoint body: corrupt
// input surfaces as an error, never a panic.
type ckptReader struct {
	b   []byte
	err error
}

func (r *ckptReader) fail() {
	if r.err == nil {
		r.err = errors.New("sqldb: checkpoint: truncated")
	}
	r.b = nil
}

func (r *ckptReader) u8() byte {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *ckptReader) u32() uint32 {
	if len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *ckptReader) u64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *ckptReader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *ckptReader) value() Value {
	v, rest, err := decodeWALValue(r.b)
	if err != nil {
		r.err = err
		r.b = nil
		return Value{}
	}
	r.b = rest
	return v
}

// loadCheckpoint parses a checkpoint snapshot into detached Tables.
func loadCheckpoint(path string) (lsn, chain uint64, tables []*Table, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(data) < 8+4 || [8]byte(data[:8]) != walCkptMagic {
		return 0, 0, nil, errors.New("sqldb: checkpoint: bad magic")
	}
	body := data[8 : len(data)-4]
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return 0, 0, nil, errors.New("sqldb: checkpoint: checksum mismatch")
	}
	r := &ckptReader{b: body}
	lsn = r.u64()
	chain = r.u64()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > 1<<20 {
		return 0, 0, nil, errors.New("sqldb: checkpoint: bad table count")
	}
	for i := 0; i < n; i++ {
		t, terr := loadCkptTable(r)
		if terr != nil {
			return 0, 0, nil, terr
		}
		tables = append(tables, t)
	}
	if len(r.b) != 0 {
		return 0, 0, nil, errors.New("sqldb: checkpoint: trailing bytes")
	}
	return lsn, chain, tables, nil
}

func loadCkptTable(r *ckptReader) (*Table, error) {
	name := r.str()
	ncols := int(r.u32())
	if r.err != nil || ncols < 1 || ncols > 1<<16 {
		return nil, errors.New("sqldb: checkpoint: bad column count")
	}
	cols := make([]Column, 0, ncols)
	for i := 0; i < ncols; i++ {
		cname := r.str()
		typ := r.u8()
		flags := r.u8()
		if r.err != nil {
			return nil, r.err
		}
		cols = append(cols, Column{
			Name:          cname,
			Type:          colTypeFromByte(typ),
			PrimaryKey:    flags&1 != 0,
			AutoIncrement: flags&2 != 0,
			NotNull:       flags&4 != 0,
		})
	}
	t, err := newTable(name, cols)
	if err != nil {
		return nil, err
	}
	t.nextID = int64(r.u64())
	t.nextAI = int64(r.u64())
	t.aiOffset = int64(r.u64())
	t.aiStride = int64(r.u64())
	nix := int(r.u32())
	if r.err != nil || nix < 0 || nix > 1<<16 {
		return nil, errors.New("sqldb: checkpoint: bad index count")
	}
	for i := 0; i < nix; i++ {
		ixname := r.str()
		col := int(r.u32())
		unique := r.u8() == 1
		if r.err != nil {
			return nil, r.err
		}
		if col < 0 || col >= len(cols) {
			return nil, errors.New("sqldb: checkpoint: index column out of range")
		}
		if err := t.addIndex(ixname, col, unique); err != nil {
			return nil, err
		}
	}
	nrows := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	for i := uint64(0); i < nrows; i++ {
		id := int64(r.u64())
		row := make(Row, ncols)
		for c := 0; c < ncols; c++ {
			row[c] = r.value()
		}
		if r.err != nil {
			return nil, r.err
		}
		t.rows[id] = row
		t.rowOrder = append(t.rowOrder, id)
		for _, ix := range t.indexes {
			k := row[ix.col].key()
			ix.m[k] = append(ix.m[k], id)
		}
	}
	return t, r.err
}

func colTypeFromByte(b byte) sqlparse.ColType {
	return sqlparse.ColType(b)
}
