package sqldb

// This file is the write-ahead log: the durability subsystem ROADMAP.md
// names as the prerequisite for production scale. The engine logs
// *logically* — each committed mutation's statement text plus its bound
// arguments — because the replicated cluster already relies on the engine
// being deterministic under an ordered statement stream (seeded populates,
// strided AUTO_INCREMENT, reverse undo): replaying the log re-derives the
// exact pre-crash state the same way a rejoining replica re-derives a
// peer's.
//
// Write path. Appends happen while the committing session still holds its
// table write locks (or the catalog lock, for DDL), so log order equals
// publication order per table; the append only copies the encoded record
// into an in-memory buffer and assigns LSNs — one per statement, so a
// transaction's record spans [firstLSN, firstLSN+n). Durability is group
// commit: after releasing its locks the session blocks in WaitDurable until
// the background flusher has written and fsynced its LSN, which happens on
// the next flush tick (WALOptions.FlushInterval) or as soon as the buffer
// exceeds GroupBytes, whichever comes first — concurrent committers share
// one fsync. Acknowledgement is therefore visible-before-durable within the
// flush window; the client ack, not the publication, is the durability
// promise (PROTOCOL.md's commit contract).
//
// On-disk format. A segment file (wal-<firstLSN>.log) is a 16-byte header
// followed by records. Each record is one commit unit:
//
//	u32 payload length | u32 CRC32 (IEEE) of payload | payload
//	payload: u64 firstLSN | u32 nStmts | nStmts × statement
//	statement: u32 len | query text | u16 nArgs | nArgs × value
//	value: u8 kind | int64/float64 (8B LE) or u32 len + bytes (strings)
//
// Recovery (recover.go) loads the newest valid checkpoint, replays every
// record past it, and truncates the tail at the first bad checksum — a torn
// record is a commit that was never acknowledged, so dropping it is correct
// (torn-tail rule). The chain hash — fnv64a folded over every statement
// since LSN 0 — rides along so a rejoining replica can prove its state is a
// prefix of a peer's stream before asking for a delta (cluster.SyncAuto).
//
// Checkpoints. Checkpoint freezes every table at a quiesced point (all
// table read locks + the catalog lock held, so no append is in flight),
// serializes the frozen copies to ckpt-<LSN>.snap via a temp file + rename,
// then rotates to a fresh segment and garbage-collects segments and
// checkpoints wholly superseded. The walfault crash points (pre-append,
// post-append-pre-fsync, mid-checkpoint, mid-rotate) bracket each of these
// transitions for the kill-and-recover matrix.

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb/walfault"
)

// Defaults for WALOptions zero values.
const (
	defaultFlushInterval   = time.Millisecond
	defaultGroupBytes      = 256 << 10
	defaultCheckpointBytes = 8 << 20
)

// maxWALRecord bounds a single record's payload: recovery refuses larger
// length prefixes so a corrupt length field cannot become an allocation
// bomb.
const maxWALRecord = 64 << 20

// walSegMagic / walCkptMagic head every segment / checkpoint file.
var (
	walSegMagic  = [8]byte{'W', 'A', 'L', 'S', 'E', 'G', '0', '1'}
	walCkptMagic = [8]byte{'W', 'A', 'L', 'C', 'K', 'P', '0', '1'}
)

const walSegHeaderSize = 16 // magic + u64 firstLSN

// Errors surfaced by WaitDurable when the log dies under a committer.
var (
	// ErrWALCrashed reports a (simulated or real) log failure: the commit
	// applied in memory but its durability is unknown.
	ErrWALCrashed = errors.New("sqldb: wal crashed")
	// ErrWALClosed reports an append raced a clean shutdown.
	ErrWALClosed = errors.New("sqldb: wal closed")
)

// WALOptions configures AttachWAL.
type WALOptions struct {
	// Dir is the data directory (created if absent). Segments and
	// checkpoints live directly inside it; one directory per DB.
	Dir string
	// FlushInterval is the group-commit tick: the longest a commit waits
	// for its fsync. Default 1ms.
	FlushInterval time.Duration
	// GroupBytes flushes early once the buffer holds this many bytes.
	// Default 256KiB.
	GroupBytes int
	// CheckpointBytes triggers an automatic checkpoint once this many log
	// bytes accumulate since the last one. Default 8MiB; negative disables
	// automatic checkpoints (explicit Checkpoint calls still work).
	CheckpointBytes int64
	// Fault is the crash-point harness; nil in production.
	Fault *walfault.Hook
}

// WALStats is the log's observability surface, reported per replica by the
// database tier's telemetry.
type WALStats struct {
	Attached bool `json:"attached"`
	// Appends counts record batches (commit units) entering the log;
	// Stmts counts the statements inside them.
	Appends int64 `json:"wal_appends"`
	Stmts   int64 `json:"wal_stmts"`
	// Fsyncs counts fsync calls on the active segment — Appends/Fsyncs is
	// the group-commit amortization factor.
	Fsyncs int64 `json:"wal_fsyncs"`
	// Bytes counts record bytes appended (log volume, not file size).
	Bytes       int64 `json:"wal_bytes"`
	Checkpoints int64 `json:"checkpoints"`
	// Recoveries is 1 when this process recovered state from disk at
	// attach; ReplayedStmts counts statements replayed doing so.
	Recoveries    int64  `json:"recoveries"`
	ReplayedStmts int64  `json:"replayed_stmts"`
	LastLSN       uint64 `json:"last_lsn"`
	DurableLSN    uint64 `json:"durable_lsn"`
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
}

// walStmt is one logged statement: the source text and its bound arguments.
type walStmt struct {
	q    string
	args []Value
}

// walSegment is one on-disk log segment.
type walSegment struct {
	path     string
	firstLSN uint64
}

// WAL is an attached write-ahead log. All fields after construction are
// guarded as annotated; sessions only touch append/WaitDurable.
type WAL struct {
	db    *DB
	dir   string
	fault *walfault.Hook

	flushEvery time.Duration
	groupBytes int
	ckptBytes  int64

	// mu guards the append state: buffer, LSN/chain counters, the active
	// segment handle and the segment list. Appenders hold it only long
	// enough to encode into the buffer. Lock order: engine locks (db.mu /
	// table locks) → mu; never the reverse.
	mu             sync.Mutex
	buf            []byte
	bufLast        uint64 // last LSN sitting in buf
	nextLSN        uint64 // LSN the next statement gets
	chain          uint64 // chain hash through nextLSN-1
	f              *os.File
	fSize          int64        // bytes written to f (record boundary)
	syncedSize     int64        // bytes of f known fsynced
	segs           []walSegment // ascending firstLSN; last is active
	ckptLSN        uint64
	ckptChain      uint64
	bytesSinceCkpt int64
	crashed        bool
	closed         bool

	// flushMu serializes file I/O on the active segment: the flusher's
	// write+fsync, rotation's segment swap, and external Crash truncation.
	flushMu sync.Mutex

	// ckptMu serializes checkpoints.
	ckptMu   sync.Mutex
	ckptBusy atomic.Bool

	// Durability frontier: WaitDurable blocks on dcond until durableLSN
	// covers the caller or derr is set (crash/close).
	dmu        sync.Mutex
	dcond      *sync.Cond
	durableLSN uint64
	derr       error

	kick     chan struct{}
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	appends     atomic.Int64
	stmts       atomic.Int64
	fsyncs      atomic.Int64
	bytes       atomic.Int64
	checkpoints atomic.Int64
	recoveries  atomic.Int64
	replayed    atomic.Int64
}

// WAL returns the attached log, or nil.
func (db *DB) WAL() *WAL { return db.wal }

// WALStats snapshots the log counters; the zero struct when no log is
// attached.
func (db *DB) WALStats() WALStats {
	w := db.wal
	if w == nil {
		return WALStats{}
	}
	w.mu.Lock()
	last, ckpt := w.nextLSN-1, w.ckptLSN
	w.mu.Unlock()
	w.dmu.Lock()
	durable := w.durableLSN
	w.dmu.Unlock()
	return WALStats{
		Attached:      true,
		Appends:       w.appends.Load(),
		Stmts:         w.stmts.Load(),
		Fsyncs:        w.fsyncs.Load(),
		Bytes:         w.bytes.Load(),
		Checkpoints:   w.checkpoints.Load(),
		Recoveries:    w.recoveries.Load(),
		ReplayedStmts: w.replayed.Load(),
		LastLSN:       last,
		DurableLSN:    durable,
		CheckpointLSN: ckpt,
	}
}

// ---- value / statement / record codec ----

// EncodeWALValues encodes bound arguments in the WAL's value format — the
// representation SHOW WAL RECORDS ships (base64ed) to a rejoining replica.
func EncodeWALValues(args []Value) []byte {
	var b []byte
	for _, v := range args {
		b = appendWALValue(b, v)
	}
	return b
}

// DecodeWALValues is EncodeWALValues' inverse. Trailing garbage is an error.
func DecodeWALValues(b []byte) ([]Value, error) {
	var vals []Value
	for len(b) > 0 {
		v, rest, err := decodeWALValue(b)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		b = rest
	}
	return vals, nil
}

func appendWALValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindInt:
		b = binary.LittleEndian.AppendUint64(b, uint64(v.i))
	case KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.f))
	case KindString:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.s)))
		b = append(b, v.s...)
	}
	return b
}

func decodeWALValue(b []byte) (Value, []byte, error) {
	if len(b) < 1 {
		return Value{}, nil, errors.New("sqldb: wal value: short kind")
	}
	kind, b := Kind(b[0]), b[1:]
	switch kind {
	case KindNull:
		return Null(), b, nil
	case KindInt:
		if len(b) < 8 {
			return Value{}, nil, errors.New("sqldb: wal value: short int")
		}
		return Int(int64(binary.LittleEndian.Uint64(b))), b[8:], nil
	case KindFloat:
		if len(b) < 8 {
			return Value{}, nil, errors.New("sqldb: wal value: short float")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	case KindString:
		if len(b) < 4 {
			return Value{}, nil, errors.New("sqldb: wal value: short string length")
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if n < 0 || n > len(b) {
			return Value{}, nil, errors.New("sqldb: wal value: string length past end")
		}
		return String(string(b[:n])), b[n:], nil
	default:
		return Value{}, nil, fmt.Errorf("sqldb: wal value: unknown kind %d", kind)
	}
}

// chainStep folds one statement into the chain hash. The chain is
// comparable across replicas because the ROWA cluster delivers every
// replica the same ordered statement stream.
func chainStep(prev uint64, q string, encArgs []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], prev)
	h.Write(b[:])
	h.Write([]byte(q))
	h.Write([]byte{0})
	h.Write(encArgs)
	return h.Sum64()
}

// encodeRecord builds one record (length + crc + payload) for a commit
// unit. Statements were pre-encoded by the caller (it also needs the arg
// bytes for the chain hash).
func encodeRecord(firstLSN uint64, stmts []walStmt, encArgs [][]byte) []byte {
	payload := binary.LittleEndian.AppendUint64(nil, firstLSN)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(stmts)))
	for i, st := range stmts {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(st.q)))
		payload = append(payload, st.q...)
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(st.args)))
		payload = append(payload, encArgs[i]...)
	}
	rec := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// walRecStmt is one decoded logged statement.
type walRecStmt struct {
	lsn     uint64
	q       string
	encArgs []byte
}

func (s walRecStmt) values() ([]Value, error) { return DecodeWALValues(s.encArgs) }

// decodeRecord parses one record from b. It returns the decoded statements
// and the remaining bytes. io-style sentinel behavior: (nil, b, errWALNeedMore)
// when b holds a clean prefix of a record (torn tail), a real error for
// checksum/shape violations.
var errWALNeedMore = errors.New("sqldb: wal record: truncated")

func decodeRecord(b []byte) (stmts []walRecStmt, rest []byte, err error) {
	if len(b) < 8 {
		return nil, b, errWALNeedMore
	}
	n := int(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n < 12 || n > maxWALRecord {
		return nil, b, fmt.Errorf("sqldb: wal record: implausible length %d", n)
	}
	if len(b) < 8+n {
		return nil, b, errWALNeedMore
	}
	payload := b[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, b, errors.New("sqldb: wal record: checksum mismatch")
	}
	firstLSN := binary.LittleEndian.Uint64(payload)
	count := int(binary.LittleEndian.Uint32(payload[8:]))
	p := payload[12:]
	if count < 1 || count > n {
		return nil, b, fmt.Errorf("sqldb: wal record: implausible statement count %d", count)
	}
	stmts = make([]walRecStmt, 0, count)
	for i := 0; i < count; i++ {
		if len(p) < 4 {
			return nil, b, errors.New("sqldb: wal record: short statement header")
		}
		qn := int(binary.LittleEndian.Uint32(p))
		p = p[4:]
		if qn < 0 || qn > len(p) {
			return nil, b, errors.New("sqldb: wal record: query length past end")
		}
		q := string(p[:qn])
		p = p[qn:]
		if len(p) < 2 {
			return nil, b, errors.New("sqldb: wal record: short arg count")
		}
		nargs := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		// Walk the args to find the statement boundary, validating shape.
		argStart := p
		for a := 0; a < nargs; a++ {
			_, rest, err := decodeWALValue(p)
			if err != nil {
				return nil, b, err
			}
			p = rest
		}
		stmts = append(stmts, walRecStmt{
			lsn:     firstLSN + uint64(i),
			q:       q,
			encArgs: argStart[:len(argStart)-len(p)],
		})
	}
	if len(p) != 0 {
		return nil, b, errors.New("sqldb: wal record: trailing bytes in payload")
	}
	return stmts, b[8+n:], nil
}

// ---- append path ----

// appendOne logs a single auto-commit statement; see appendBatch.
func (w *WAL) appendOne(q string, args []Value) uint64 {
	return w.appendBatch([]walStmt{{q: q, args: args}})
}

// appendBatch logs one commit unit (a whole transaction, or one auto-commit
// statement) and returns the unit's last LSN, which the session passes to
// WaitDurable after releasing its locks. Callers must still hold the engine
// locks covering the statements, so per-table log order equals publication
// order.
func (w *WAL) appendBatch(stmts []walStmt) uint64 {
	w.fault.Fire(walfault.PreAppend)
	encArgs := make([][]byte, len(stmts))
	for i, st := range stmts {
		encArgs[i] = EncodeWALValues(st.args)
	}
	w.mu.Lock()
	first := w.nextLSN
	for i, st := range stmts {
		w.chain = chainStep(w.chain, st.q, encArgs[i])
	}
	w.nextLSN = first + uint64(len(stmts))
	last := w.nextLSN - 1
	if !w.closed && !w.crashed {
		rec := encodeRecord(first, stmts, encArgs)
		w.buf = append(w.buf, rec...)
		w.bufLast = last
		w.bytesSinceCkpt += int64(len(rec))
		w.appends.Add(1)
		w.stmts.Add(int64(len(stmts)))
		w.bytes.Add(int64(len(rec)))
		if len(w.buf) >= w.groupBytes {
			select {
			case w.kick <- struct{}{}:
			default:
			}
		}
	}
	w.mu.Unlock()
	return last
}

// WaitDurable blocks until lsn is fsynced — the group-commit wait. It
// returns ErrWALCrashed/ErrWALClosed if the log died first (the in-memory
// apply already happened; durability is what failed).
func (w *WAL) WaitDurable(lsn uint64) error {
	w.dmu.Lock()
	defer w.dmu.Unlock()
	for w.durableLSN < lsn && w.derr == nil {
		w.dcond.Wait()
	}
	if w.durableLSN >= lsn {
		return nil
	}
	return w.derr
}

func (w *WAL) failDurable(err error) {
	w.dmu.Lock()
	if w.derr == nil {
		w.derr = err
	}
	w.dcond.Broadcast()
	w.dmu.Unlock()
}

func (w *WAL) advanceDurable(lsn uint64) {
	w.dmu.Lock()
	if lsn > w.durableLSN {
		w.durableLSN = lsn
	}
	w.dcond.Broadcast()
	w.dmu.Unlock()
}

// ---- flusher ----

func (w *WAL) startFlusher() {
	w.kick = make(chan struct{}, 1)
	w.quit = make(chan struct{})
	w.done = make(chan struct{})
	w.dcond = sync.NewCond(&w.dmu)
	go w.flusher()
}

func (w *WAL) flusher() {
	defer close(w.done)
	t := time.NewTicker(w.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-w.kick:
		case <-w.quit:
			w.flush()
			return
		}
		w.flush()
		w.maybeCheckpoint()
	}
}

// flush writes the buffered records to the active segment and fsyncs,
// advancing the durability frontier — one fsync for every commit that
// queued since the last tick.
func (w *WAL) flush() {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.crashed {
		w.mu.Unlock()
		w.truncateToSyncedLocked()
		w.failDurable(ErrWALCrashed)
		return
	}
	buf, last, f := w.buf, w.bufLast, w.f
	w.buf = nil
	w.mu.Unlock()
	if len(buf) == 0 {
		return
	}
	if _, err := f.Write(buf); err != nil {
		w.failDurable(fmt.Errorf("sqldb: wal write: %w", err))
		return
	}
	w.mu.Lock()
	w.fSize += int64(len(buf))
	w.mu.Unlock()
	w.fault.Fire(walfault.PostAppendPreFsync)
	w.mu.Lock()
	crashed := w.crashed
	w.mu.Unlock()
	if crashed {
		// Power cut between write and fsync: the bytes past the last sync
		// are gone (worst case), and nothing was acknowledged.
		w.truncateToSyncedLocked()
		w.failDurable(ErrWALCrashed)
		return
	}
	if err := f.Sync(); err != nil {
		w.failDurable(fmt.Errorf("sqldb: wal fsync: %w", err))
		return
	}
	w.fsyncs.Add(1)
	w.mu.Lock()
	w.syncedSize = w.fSize
	w.mu.Unlock()
	w.advanceDurable(last)
}

// truncateToSyncedLocked models the post-crash disk state: only fsynced
// bytes survive. Caller must hold flushMu (or be the sole I/O actor).
func (w *WAL) truncateToSyncedLocked() {
	w.mu.Lock()
	f, synced := w.f, w.syncedSize
	w.buf = nil
	if f != nil {
		w.fSize = synced
	}
	w.mu.Unlock()
	if f != nil {
		f.Truncate(synced)
	}
}

// Crash simulates kill -9 / power loss in-process: the log stops, every
// byte not yet fsynced is discarded (the pessimal outcome a real crash
// permits), and pending commits fail with ErrWALCrashed. The DB itself
// keeps serving from memory — tests then discard it and recover a fresh DB
// from the directory. Safe to call from a walfault hook on the flusher
// goroutine: the truncation is deferred to the flusher when a flush is in
// flight.
func (w *WAL) Crash() {
	w.mu.Lock()
	if w.crashed || w.closed {
		w.mu.Unlock()
		return
	}
	w.crashed = true
	w.buf = nil
	w.mu.Unlock()
	if w.flushMu.TryLock() {
		w.truncateToSyncedLocked()
		w.flushMu.Unlock()
	}
	w.failDurable(ErrWALCrashed)
	w.stopFlusher()
}

func (w *WAL) stopFlusher() {
	w.stopOnce.Do(func() { close(w.quit) })
}

// Close flushes, fsyncs and closes the log — the clean-shutdown path
// dbserver's SIGTERM drain takes after the wire listeners close.
func (w *WAL) Close() error {
	w.stopFlusher()
	<-w.done
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	f, crashed := w.f, w.crashed
	w.mu.Unlock()
	var err error
	if f != nil {
		if !crashed {
			err = f.Sync()
		}
		if cerr := f.Close(); err == nil && !crashed {
			err = cerr
		}
	}
	w.failDurable(ErrWALClosed)
	return err
}

// CloseWAL cleanly closes the attached log, if any.
func (db *DB) CloseWAL() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}

// ---- checkpoint & rotation ----

func (w *WAL) maybeCheckpoint() {
	w.mu.Lock()
	due := w.ckptBytes > 0 && w.bytesSinceCkpt >= w.ckptBytes && !w.crashed && !w.closed
	w.mu.Unlock()
	if due && w.ckptBusy.CompareAndSwap(false, true) {
		go func() {
			defer w.ckptBusy.Store(false)
			w.Checkpoint()
		}()
	}
}

// Checkpoint snapshots every table to a sidecar file and rotates the log:
// recovery then starts from the snapshot and replays only the records past
// it. Concurrent commits are excluded only for the duration of the table
// freezes (microseconds), not the file write.
func (w *WAL) Checkpoint() error {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	db := w.db

	// Quiesce appends: every append happens under a table write lock or the
	// catalog write lock, so holding the catalog read lock plus every
	// table's read lock guarantees no record is in flight while we capture
	// (LSN, chain) and freeze — the snapshot is exactly the state through
	// that LSN.
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortStrings(names)
	want := make([]heldLock, 0, len(names))
	for _, n := range names {
		want = append(want, heldLock{table: n})
	}
	held := db.locks.acquireSet(want)
	w.mu.Lock()
	lsn, chain := w.nextLSN-1, w.chain
	crashed := w.crashed || w.closed
	w.mu.Unlock()
	frozen := make([]*Table, 0, len(names))
	if !crashed {
		for _, n := range names {
			frozen = append(frozen, db.tables[n].freeze())
		}
	}
	db.locks.releaseSet(held)
	db.mu.RUnlock()
	if crashed {
		return ErrWALCrashed
	}

	if err := w.writeCheckpoint(lsn, chain, frozen); err != nil {
		return err
	}
	w.mu.Lock()
	w.ckptLSN, w.ckptChain = lsn, chain
	w.bytesSinceCkpt = 0
	w.mu.Unlock()
	w.checkpoints.Add(1)
	return w.rotate(lsn)
}

func ckptPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.snap", lsn))
}

func segPath(dir string, firstLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", firstLSN))
}

// writeCheckpoint serializes the frozen tables to ckpt-<lsn>.snap via a
// temp file, fsync, rename, directory fsync — the standard atomic-publish
// dance, so a crash leaves either the old checkpoint set or the new one,
// never a half-written file under the real name.
func (w *WAL) writeCheckpoint(lsn, chain uint64, tables []*Table) error {
	body := binary.LittleEndian.AppendUint64(nil, lsn)
	body = binary.LittleEndian.AppendUint64(body, chain)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(tables)))
	for _, t := range tables {
		body = appendCkptTable(body, t)
	}
	tmp := filepath.Join(w.dir, "ckpt.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(walCkptMagic[:])
	if err == nil {
		_, err = f.Write(body)
	}
	if err == nil {
		var crcb [4]byte
		binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(body))
		_, err = f.Write(crcb[:])
	}
	if err != nil {
		f.Close()
		return err
	}
	w.fault.Fire(walfault.MidCheckpoint)
	if w.isCrashed() {
		// Simulated power cut mid-checkpoint: leave the temp file exactly
		// as a real crash would; recovery ignores it.
		f.Close()
		return ErrWALCrashed
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, ckptPath(w.dir, lsn)); err != nil {
		return err
	}
	return fsyncDir(w.dir)
}

func appendCkptTable(b []byte, t *Table) []byte {
	b = appendLenStr(b, t.name)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(t.columns)))
	for _, c := range t.columns {
		b = appendLenStr(b, c.Name)
		b = append(b, byte(c.Type))
		var flags byte
		if c.PrimaryKey {
			flags |= 1
		}
		if c.AutoIncrement {
			flags |= 2
		}
		if c.NotNull {
			flags |= 4
		}
		b = append(b, flags)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(t.nextID))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.nextAI))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.aiOffset))
	b = binary.LittleEndian.AppendUint64(b, uint64(t.aiStride))
	// Secondary indexes ("primary" is rebuilt by newTable).
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		if n != "primary" {
			names = append(names, n)
		}
	}
	sortStrings(names)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(names)))
	for _, n := range names {
		ix := t.indexes[n]
		b = appendLenStr(b, ix.name)
		b = binary.LittleEndian.AppendUint32(b, uint32(ix.col))
		if ix.unique {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(t.rowOrder)))
	for _, id := range t.rowOrder {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
		for _, v := range t.rows[id] {
			b = appendWALValue(b, v)
		}
	}
	return b
}

func appendLenStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func (w *WAL) isCrashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}

// rotate seals the active segment and opens a fresh one, then deletes
// segments and checkpoints wholly covered by the checkpoint at upto.
func (w *WAL) rotate(upto uint64) error {
	w.flushMu.Lock()
	w.mu.Lock()
	if w.crashed || w.closed {
		w.mu.Unlock()
		w.flushMu.Unlock()
		return ErrWALCrashed
	}
	buf, last, old := w.buf, w.bufLast, w.f
	w.buf = nil
	newFirst := w.nextLSN
	// An active segment that holds no records yet (its firstLSN IS the next
	// LSN to assign — e.g. the initial checkpoint right after attach, or
	// back-to-back checkpoints with no writes between) is already the
	// post-checkpoint segment: creating a "new" one would reuse the same
	// file name and the GC below would delete the file out from under the
	// live descriptor. Keep it and only run the GC.
	sameSeg := len(w.segs) > 0 && w.segs[len(w.segs)-1].firstLSN == newFirst
	w.mu.Unlock()
	// Drain the buffer into the old segment so every record < newFirst
	// lives there, then seal it. (With sameSeg the buffer is necessarily
	// empty: buffered records always carry LSNs at or past the active
	// segment's firstLSN, and none below nextLSN exist.)
	if len(buf) > 0 {
		if _, err := old.Write(buf); err != nil {
			w.flushMu.Unlock()
			w.failDurable(fmt.Errorf("sqldb: wal rotate write: %w", err))
			return err
		}
	}
	if err := old.Sync(); err != nil {
		w.flushMu.Unlock()
		w.failDurable(fmt.Errorf("sqldb: wal rotate fsync: %w", err))
		return err
	}
	w.fsyncs.Add(1)
	if !sameSeg {
		old.Close()
		f, err := createSegment(w.dir, newFirst)
		if err != nil {
			w.flushMu.Unlock()
			w.failDurable(err)
			return err
		}
		w.mu.Lock()
		w.f = f
		w.fSize = walSegHeaderSize
		w.syncedSize = walSegHeaderSize
		w.segs = append(w.segs, walSegment{path: segPath(w.dir, newFirst), firstLSN: newFirst})
		w.mu.Unlock()
	}
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	w.mu.Unlock()
	w.flushMu.Unlock()
	if len(buf) > 0 {
		w.advanceDurable(last)
	}
	w.fault.Fire(walfault.MidRotate)
	if w.isCrashed() {
		return ErrWALCrashed
	}
	// GC: a segment is dead when a successor exists and every record it
	// could hold is ≤ the checkpoint; old checkpoints are strictly
	// superseded by the one at upto.
	keep := segs[:0:0]
	for i, s := range segs {
		if i+1 < len(segs) && segs[i+1].firstLSN <= upto+1 {
			os.Remove(s.path)
			continue
		}
		keep = append(keep, s)
	}
	w.mu.Lock()
	w.segs = keep
	w.mu.Unlock()
	if ents, err := os.ReadDir(w.dir); err == nil {
		for _, e := range ents {
			var lsn uint64
			if _, err := fmt.Sscanf(e.Name(), "ckpt-%016x.snap", &lsn); err == nil && lsn < upto {
				os.Remove(filepath.Join(w.dir, e.Name()))
			}
		}
	}
	return fsyncDir(w.dir)
}

func createSegment(dir string, firstLSN uint64) (*os.File, error) {
	path := segPath(dir, firstLSN)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, walSegHeaderSize)
	hdr = append(hdr, walSegMagic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fsyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---- log scanning (SHOW WAL ... and recovery share this) ----

// scanState captures a consistent read view of the log: finished bytes of
// every on-disk segment plus the not-yet-flushed buffer tail.
type scanState struct {
	segs    []walSegment
	activeN int64 // bytes of the active (last) segment to trust
	tail    []byte
	lastLSN uint64
	chain   uint64
	ckptLSN uint64
	ckptCh  uint64
}

func (w *WAL) scanView() scanState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return scanState{
		segs:    append([]walSegment(nil), w.segs...),
		activeN: w.fSize,
		tail:    append([]byte(nil), w.buf...),
		lastLSN: w.nextLSN - 1,
		chain:   w.chain,
		ckptLSN: w.ckptLSN,
		ckptCh:  w.ckptChain,
	}
}

// scanStmts streams every logged statement in the view with lsn > after, in
// LSN order, until fn returns false. Statements at or below the checkpoint
// may appear in pre-GC segments; they are skipped via the after filter the
// callers pass.
func (v scanState) scanStmts(after uint64, fn func(walRecStmt) bool) error {
	emit := func(b []byte) (bool, error) {
		for len(b) > 0 {
			stmts, rest, err := decodeRecord(b)
			if err != nil {
				return false, err
			}
			for _, st := range stmts {
				if st.lsn <= after {
					continue
				}
				if !fn(st) {
					return false, nil
				}
			}
			b = rest
		}
		return true, nil
	}
	for i, s := range v.segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return err
		}
		if len(data) < walSegHeaderSize {
			return errors.New("sqldb: wal segment: short header")
		}
		body := data[walSegHeaderSize:]
		if i == len(v.segs)-1 {
			// The active segment may have grown past the captured view;
			// only the captured prefix is record-aligned for sure.
			if n := v.activeN - walSegHeaderSize; int64(len(body)) > n {
				body = body[:n]
			}
			body = append(body, v.tail...)
		}
		cont, err := emit(body)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// ---- SHOW WAL executors ----

// execShowWALStatus serves SHOW WAL STATUS. LSNs and hashes are reported as
// int64 bit patterns (the engine's integer type); consumers compare them
// for equality only.
func (db *DB) execShowWALStatus() (*Result, error) {
	res := &Result{Columns: []string{"attached", "last_lsn", "durable_lsn", "chain", "checkpoint_lsn"}}
	w := db.wal
	if w == nil {
		res.Rows = append(res.Rows, Row{Int(0), Int(0), Int(0), Int(0), Int(0)})
		return res, nil
	}
	v := w.scanView()
	w.dmu.Lock()
	durable := w.durableLSN
	w.dmu.Unlock()
	res.Rows = append(res.Rows, Row{
		Int(1), Int(int64(v.lastLSN)), Int(int64(durable)),
		Int(int64(v.chain)), Int(int64(v.ckptLSN)),
	})
	return res, nil
}

// execShowWALChain serves SHOW WAL CHAIN n: (lsn, chain, available). The
// chain at n is reconstructible only while n is at or past the checkpoint
// the log was last rotated against.
func (db *DB) execShowWALChain(at uint64) (*Result, error) {
	res := &Result{Columns: []string{"lsn", "chain", "available"}}
	w := db.wal
	if w == nil {
		res.Rows = append(res.Rows, Row{Int(int64(at)), Int(0), Int(0)})
		return res, nil
	}
	v := w.scanView()
	chain, ok := v.chainAt(at)
	avail := Int(0)
	if ok {
		avail = Int(1)
	}
	res.Rows = append(res.Rows, Row{Int(int64(at)), Int(int64(chain)), avail})
	return res, nil
}

func (v scanState) chainAt(at uint64) (uint64, bool) {
	switch {
	case at > v.lastLSN || at < v.ckptLSN:
		return 0, false
	case at == v.lastLSN:
		return v.chain, true
	case at == v.ckptLSN:
		return v.ckptCh, true
	}
	chain := v.ckptCh
	reached := false
	err := v.scanStmts(v.ckptLSN, func(st walRecStmt) bool {
		chain = chainStep(chain, st.q, st.encArgs)
		if st.lsn == at {
			reached = true
			return false
		}
		return true
	})
	if err != nil || !reached {
		return 0, false
	}
	return chain, true
}

// execShowWALRecords serves SHOW WAL RECORDS SINCE n LIMIT m: the logged
// statements with LSN > n as (lsn, query, base64(args)) rows — the
// log-shipping payload a rejoining replica replays. Asking below the
// retained horizon is an error (the caller must fall back to a full copy).
func (db *DB) execShowWALRecords(since uint64, limit int64) (*Result, error) {
	w := db.wal
	if w == nil {
		return nil, errors.New("sqldb: no wal attached")
	}
	v := w.scanView()
	if since < v.ckptLSN {
		return nil, fmt.Errorf("sqldb: wal records before lsn %d rotated away (asked since %d)", v.ckptLSN, since)
	}
	if limit < 0 {
		limit = int64(^uint64(0) >> 1)
	}
	res := &Result{Columns: []string{"lsn", "query", "args"}}
	err := v.scanStmts(since, func(st walRecStmt) bool {
		if int64(len(res.Rows)) >= limit {
			return false
		}
		res.Rows = append(res.Rows, Row{
			Int(int64(st.lsn)), String(st.q),
			String(base64.StdEncoding.EncodeToString(st.encArgs)),
		})
		return int64(len(res.Rows)) < limit
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
