// Package walfault is the write-ahead log's crash-point harness: named
// points inside the WAL's append / fsync / checkpoint / rotate paths where a
// test (or an operator drill) can make the process die. The WAL calls
// Fire(point) at each site; an armed hook runs its action on the N-th hit —
// anything from a clean panic to os.Exit(137), the in-repo stand-in for
// kill -9. Production leaves the hook nil, which compiles down to one nil
// check per site.
//
// Tests arm hooks directly with Set; subprocess crash tests arm them from
// the environment (SQLDB_WALFAULT=point:action[:N]) so a re-exec'd test
// binary can die mid-commit exactly like a production dbserver would.
package walfault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Point names one crash site inside the WAL.
type Point string

// The four crash sites the recovery matrix exercises. They bracket the two
// durability boundaries: records entering the log (append/fsync) and state
// leaving it (checkpoint/rotate).
const (
	// PreAppend fires before a commit's record batch enters the WAL buffer:
	// a crash here loses the commit entirely — the unacked-write case.
	PreAppend Point = "pre-append"
	// PostAppendPreFsync fires after the flusher has written a batch to the
	// segment file but before fsync: a crash here is the torn-tail case —
	// bytes may or may not survive, and none of them were acked.
	PostAppendPreFsync Point = "post-append-pre-fsync"
	// MidCheckpoint fires after the checkpoint temp file is written but
	// before it is fsynced and renamed into place: recovery must fall back
	// to the previous checkpoint and replay a longer log suffix.
	MidCheckpoint Point = "mid-checkpoint"
	// MidRotate fires after a new segment is opened but before obsolete
	// segments and checkpoints are garbage-collected: recovery must cope
	// with overlapping segments on disk.
	MidRotate Point = "mid-rotate"
)

// Points lists every crash site, in log-lifecycle order — the axis the crash
// matrix iterates.
var Points = []Point{PreAppend, PostAppendPreFsync, MidCheckpoint, MidRotate}

// Hook is a set of armed crash points. The zero value is unarmed; a nil
// *Hook is legal and never fires.
type Hook struct {
	mu   sync.Mutex
	arms map[Point]*arm
}

type arm struct {
	hits  int // Fire calls seen so far
	after int // fire the action on the after-th hit (1-based)
	fn    func()
}

// New returns an empty hook.
func New() *Hook { return &Hook{arms: make(map[Point]*arm)} }

// Set arms point: the after-th Fire(point) call runs fn (after < 1 means the
// first). fn runs on the goroutine that hit the point — a fn that panics or
// exits therefore dies exactly where a real crash would.
func (h *Hook) Set(point Point, after int, fn func()) {
	if after < 1 {
		after = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.arms == nil {
		h.arms = make(map[Point]*arm)
	}
	h.arms[point] = &arm{after: after, fn: fn}
}

// Clear disarms point.
func (h *Hook) Clear(point Point) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.arms, point)
}

// Fire is called by the WAL at each crash site. It runs the armed action at
// most once, outside the hook's lock (the action typically never returns).
func (h *Hook) Fire(point Point) {
	if h == nil {
		return
	}
	h.mu.Lock()
	a := h.arms[point]
	var fn func()
	if a != nil {
		a.hits++
		if a.hits == a.after {
			fn = a.fn
		}
	}
	h.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// FromEnv parses $SQLDB_WALFAULT — "point:action[:N]" where action is
// "exit" (exit(137), the kill -9 stand-in) or "panic", and N is the hit
// number to die on (default 1) — and returns an armed hook, or nil when the
// variable is unset. exitFn is called for the exit action (os.Exit in
// production; tests substitute a recorder).
func FromEnv(exitFn func(code int)) (*Hook, error) {
	spec := os.Getenv("SQLDB_WALFAULT")
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("walfault: bad SQLDB_WALFAULT %q (want point:action[:N])", spec)
	}
	point := Point(parts[0])
	ok := false
	for _, p := range Points {
		if p == point {
			ok = true
		}
	}
	if !ok {
		return nil, fmt.Errorf("walfault: unknown crash point %q", parts[0])
	}
	after := 1
	if len(parts) == 3 {
		n, err := strconv.Atoi(parts[2])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("walfault: bad hit count %q", parts[2])
		}
		after = n
	}
	var fn func()
	switch parts[1] {
	case "exit":
		if exitFn == nil {
			exitFn = os.Exit
		}
		fn = func() { exitFn(137) }
	case "panic":
		fn = func() { panic(fmt.Sprintf("walfault: injected crash at %s", point)) }
	default:
		return nil, fmt.Errorf("walfault: unknown action %q (want exit or panic)", parts[1])
	}
	h := New()
	h.Set(point, after, fn)
	return h, nil
}
