package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// mvccDB builds the transfer ledger the torture tests hammer: two accounts
// whose balances always sum to 200 in every committed state.
func mvccDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	s := db.NewSession()
	defer s.Close()
	mustTx(t, s, `CREATE TABLE acct (id INT PRIMARY KEY, bal INT)`)
	mustTx(t, s, "INSERT INTO acct (id, bal) VALUES (1, 100)")
	mustTx(t, s, "INSERT INTO acct (id, bal) VALUES (2, 100)")
	return db
}

// TestMVCCSnapshotTorture runs transactional writers that move money
// between the two accounts (every committed state sums to 200) against
// snapshot readers that assert per-statement consistency — run with -race.
// A reader that ever observes a mid-transaction sum has seen uncommitted
// state; a reader that observes a sum other than 200 has seen a torn
// snapshot (one row from before a commit, one from after).
func TestMVCCSnapshotTorture(t *testing.T) {
	db := mvccDB(t)
	const writers, readers, rounds = 4, 4, 200
	var wg sync.WaitGroup
	var stop atomic.Bool

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer stop.Store(true)
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < rounds; i++ {
				if _, err := s.Exec("BEGIN"); err != nil {
					t.Error(err)
					return
				}
				amt := Int(int64(1 + (w+i)%5))
				_, err1 := s.Exec("UPDATE acct SET bal = bal - ? WHERE id = 1", amt)
				_, err2 := s.Exec("UPDATE acct SET bal = bal + ? WHERE id = 2", amt)
				if err1 != nil || err2 != nil {
					// A lock-wait abort rolled the transaction back; every
					// other error leaves it open — roll back explicitly.
					s.Exec("ROLLBACK")
					continue
				}
				// Odd rounds roll back: the snapshot published at the next
				// read must not contain the undone halves either.
				end := "COMMIT"
				if i%2 == 1 {
					end = "ROLLBACK"
				}
				if _, err := s.Exec(end); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for !stop.Load() {
				res, err := s.Exec("SELECT id, bal FROM acct")
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Rows) != 2 {
					t.Errorf("snapshot saw %d rows, want 2", len(res.Rows))
					return
				}
				sum := res.Rows[0][1].AsInt() + res.Rows[1][1].AsInt()
				if sum != 200 {
					t.Errorf("inconsistent snapshot: balances sum to %d, want 200", sum)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := db.MVCCStats()
	if st.SnapshotReads == 0 || st.LockBypasses == 0 {
		t.Errorf("snapshot read path never engaged: %+v", st)
	}
	if st.Refreshes == 0 {
		t.Errorf("writers published versions but no snapshot was ever rebuilt: %+v", st)
	}
}

// TestMVCCReadOnlyTxnConsistency: a transaction that only reads must see
// committed state in every statement. Its reads hold no locks a writer
// could wait on; the one legitimate failure is a lock-wait timeout on the
// snapshot-refresh slow path, which aborts the reader cleanly — the test
// restarts it and keeps asserting consistency.
func TestMVCCReadOnlyTxnConsistency(t *testing.T) {
	db := mvccDB(t)
	var wg sync.WaitGroup
	var stop atomic.Bool

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		s := db.NewSession()
		defer s.Close()
		for i := 0; i < 300; i++ {
			mustTx(t, s, "BEGIN")
			mustTx(t, s, "UPDATE acct SET bal = bal - 1 WHERE id = 1")
			mustTx(t, s, "UPDATE acct SET bal = bal + 1 WHERE id = 2")
			mustTx(t, s, "COMMIT")
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		s := db.NewSession()
		defer s.Close()
		for !stop.Load() {
			if _, err := s.Exec("BEGIN"); err != nil {
				t.Error(err)
				return
			}
			aborted := false
			for j := 0; j < 3; j++ {
				res, err := s.Exec("SELECT id, bal FROM acct")
				if err != nil {
					if strings.Contains(err.Error(), ErrLockWaitTimeout.Error()) {
						aborted = true // refresh slow path timed out; txn rolled back
						break
					}
					t.Errorf("read-only txn statement failed: %v", err)
					return
				}
				if sum := res.Rows[0][1].AsInt() + res.Rows[1][1].AsInt(); sum != 200 {
					t.Errorf("read-only txn saw sum %d, want 200", sum)
				}
			}
			if aborted {
				continue
			}
			if _, err := s.Exec("COMMIT"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestMVCCReadYourWrites: once a transaction has written a table, its own
// reads must switch from the snapshot to the live locked rows — and other
// sessions' snapshot reads must keep seeing the pre-transaction state
// until COMMIT publishes a new version.
func TestMVCCReadYourWrites(t *testing.T) {
	db := mvccDB(t)
	w := db.NewSession()
	defer w.Close()
	r := db.NewSession()
	defer r.Close()

	// Warm the snapshot first: a COLD snapshot build takes the table read
	// lock and would wait out the writer's open transaction; a warm one is
	// served lock-free while the writer holds the table.
	mustTx(t, r, "SELECT bal FROM acct WHERE id = 1")

	mustTx(t, w, "BEGIN")
	mustTx(t, w, "UPDATE acct SET bal = 999 WHERE id = 1")
	res := mustTx(t, w, "SELECT bal FROM acct WHERE id = 1")
	if got := res.Rows[0][0].AsInt(); got != 999 {
		t.Fatalf("writer read its own write as %d, want 999", got)
	}
	res = mustTx(t, r, "SELECT bal FROM acct WHERE id = 1")
	if got := res.Rows[0][0].AsInt(); got != 100 {
		t.Fatalf("snapshot reader saw uncommitted %d, want 100", got)
	}
	mustTx(t, w, "COMMIT")
	res = mustTx(t, r, "SELECT bal FROM acct WHERE id = 1")
	if got := res.Rows[0][0].AsInt(); got != 999 {
		t.Fatalf("post-commit snapshot saw %d, want 999", got)
	}
}

// TestMVCCSnapshotSeesRolledBackNothing: a rollback restores the table
// without publishing a version, so the pre-transaction snapshot stays
// valid and no reader ever sees the undone rows.
func TestMVCCSnapshotSeesRolledBackNothing(t *testing.T) {
	db := mvccDB(t)
	w := db.NewSession()
	defer w.Close()
	r := db.NewSession()
	defer r.Close()

	// Warm the snapshot.
	mustTx(t, r, "SELECT bal FROM acct WHERE id = 1")

	mustTx(t, w, "BEGIN")
	mustTx(t, w, "INSERT INTO acct (id, bal) VALUES (3, 7)")
	mustTx(t, w, "ROLLBACK")

	res := mustTx(t, r, "SELECT COUNT(*) FROM acct")
	if got := res.Rows[0][0].AsInt(); got != 2 {
		t.Fatalf("snapshot saw %d rows after rollback, want 2", got)
	}
}

// TestMVCCStatsCounters pins the counter semantics: every snapshot-served
// SELECT increments SnapshotReads once, and each table it served without
// touching the lock manager increments LockBypasses.
func TestMVCCStatsCounters(t *testing.T) {
	db := mvccDB(t)
	s := db.NewSession()
	defer s.Close()

	before := db.MVCCStats()
	mustTx(t, s, "SELECT * FROM acct") // cold: refresh, no bypass
	mid := db.MVCCStats()
	if mid.SnapshotReads != before.SnapshotReads+1 {
		t.Fatalf("SnapshotReads %d, want %d", mid.SnapshotReads, before.SnapshotReads+1)
	}
	if mid.Refreshes != before.Refreshes+1 {
		t.Fatalf("Refreshes %d, want %d", mid.Refreshes, before.Refreshes+1)
	}
	for i := 0; i < 5; i++ {
		mustTx(t, s, "SELECT * FROM acct") // warm: pure bypass
	}
	after := db.MVCCStats()
	if after.LockBypasses != mid.LockBypasses+5 {
		t.Fatalf("LockBypasses %d, want %d", after.LockBypasses, mid.LockBypasses+5)
	}
	if after.Refreshes != mid.Refreshes {
		t.Fatalf("warm reads rebuilt snapshots: %+v", after)
	}
}

// TestMVCCResultsImmutableAfterWrite: a result handed to a reader must not
// change when a later transaction updates the row — the copy-on-write
// contract that lets results alias storage.
func TestMVCCResultsImmutableAfterWrite(t *testing.T) {
	db := mvccDB(t)
	s := db.NewSession()
	defer s.Close()
	res := mustTx(t, s, "SELECT id, bal FROM acct ORDER BY id")
	mustTx(t, s, "UPDATE acct SET bal = 0 WHERE id = 1")
	if got := res.Rows[0][1].AsInt(); got != 100 {
		t.Fatalf("held result mutated by later write: bal %d, want 100", got)
	}
	for i := 0; i < 3; i++ {
		mustTx(t, s, fmt.Sprintf("UPDATE acct SET bal = %d WHERE id = 2", i))
	}
	if got := res.Rows[1][1].AsInt(); got != 100 {
		t.Fatalf("held result mutated by later writes: bal %d, want 100", got)
	}
}
