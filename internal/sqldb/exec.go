package sqldb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqldb/sqlparse"
)

// env is the evaluation context for expressions: the tables bound by the
// current FROM/JOIN row combination plus statement parameters.
type env struct {
	aliases []string // lower-cased alias (or table name) per bound table
	tabs    []*Table
	rows    []Row
	args    []Value
}

// resolve finds (table position, column position) for a possibly qualified
// column reference.
func (e *env) resolve(table, column string) (int, int, error) {
	if table != "" {
		lt := strings.ToLower(table)
		for ti, a := range e.aliases {
			if a == lt {
				ci, err := e.tabs[ti].colOf(column)
				if err != nil {
					return 0, 0, err
				}
				return ti, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqldb: unknown table alias %q", table)
	}
	found := -1
	var fc int
	for ti, t := range e.tabs {
		if ci, err := t.colOf(column); err == nil {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %q", column)
			}
			found, fc = ti, ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqldb: unknown column %q", column)
	}
	return found, fc, nil
}

// eval evaluates a non-aggregate expression.
func (e *env) eval(x sqlparse.Expr) (Value, error) {
	switch ex := x.(type) {
	case *sqlparse.IntLit:
		return Int(ex.V), nil
	case *sqlparse.FloatLit:
		return Float(ex.V), nil
	case *sqlparse.StringLit:
		return String(ex.V), nil
	case *sqlparse.NullLit:
		return Null(), nil
	case *sqlparse.ParamExpr:
		if ex.Index >= len(e.args) {
			return Null(), fmt.Errorf("sqldb: missing argument for placeholder %d", ex.Index+1)
		}
		return e.args[ex.Index], nil
	case *sqlparse.ColRefExpr:
		ti, ci, err := e.resolve(ex.Table, ex.Column)
		if err != nil {
			return Null(), err
		}
		return e.rows[ti][ci], nil
	case *sqlparse.NegExpr:
		v, err := e.eval(ex.E)
		if err != nil {
			return Null(), err
		}
		if v.Kind() == KindInt {
			return Int(-v.AsInt()), nil
		}
		return Float(-v.AsFloat()), nil
	case *sqlparse.NotExpr:
		v, err := e.eval(ex.E)
		if err != nil {
			return Null(), err
		}
		return boolVal(!v.Truthy()), nil
	case *sqlparse.IsNullExpr:
		v, err := e.eval(ex.E)
		if err != nil {
			return Null(), err
		}
		return boolVal(v.IsNull() != ex.Not), nil
	case *sqlparse.BetweenExpr:
		v, err := e.eval(ex.E)
		if err != nil {
			return Null(), err
		}
		lo, err := e.eval(ex.Lo)
		if err != nil {
			return Null(), err
		}
		hi, err := e.eval(ex.Hi)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return boolVal(false), nil
		}
		return boolVal(Compare(v, lo) >= 0 && Compare(v, hi) <= 0), nil
	case *sqlparse.InExpr:
		v, err := e.eval(ex.E)
		if err != nil {
			return Null(), err
		}
		match := false
		for _, item := range ex.List {
			iv, err := e.eval(item)
			if err != nil {
				return Null(), err
			}
			if Equal(v, iv) {
				match = true
				break
			}
		}
		return boolVal(match != ex.Not), nil
	case *sqlparse.BinaryExpr:
		return e.evalBinary(ex)
	case *sqlparse.AggExpr:
		return Null(), fmt.Errorf("sqldb: aggregate %v outside SELECT list", ex.Func)
	default:
		return Null(), fmt.Errorf("sqldb: cannot evaluate %T", x)
	}
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

func (e *env) evalBinary(ex *sqlparse.BinaryExpr) (Value, error) {
	// Short-circuit logic operators.
	switch ex.Op {
	case sqlparse.OpAnd:
		l, err := e.eval(ex.L)
		if err != nil {
			return Null(), err
		}
		if !l.Truthy() {
			return boolVal(false), nil
		}
		r, err := e.eval(ex.R)
		if err != nil {
			return Null(), err
		}
		return boolVal(r.Truthy()), nil
	case sqlparse.OpOr:
		l, err := e.eval(ex.L)
		if err != nil {
			return Null(), err
		}
		if l.Truthy() {
			return boolVal(true), nil
		}
		r, err := e.eval(ex.R)
		if err != nil {
			return Null(), err
		}
		return boolVal(r.Truthy()), nil
	}
	l, err := e.eval(ex.L)
	if err != nil {
		return Null(), err
	}
	r, err := e.eval(ex.R)
	if err != nil {
		return Null(), err
	}
	switch ex.Op {
	case sqlparse.OpEq:
		return boolVal(Equal(l, r)), nil
	case sqlparse.OpNe:
		return boolVal(!l.IsNull() && !r.IsNull() && Compare(l, r) != 0), nil
	case sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		if l.IsNull() || r.IsNull() {
			return boolVal(false), nil
		}
		c := Compare(l, r)
		switch ex.Op {
		case sqlparse.OpLt:
			return boolVal(c < 0), nil
		case sqlparse.OpLe:
			return boolVal(c <= 0), nil
		case sqlparse.OpGt:
			return boolVal(c > 0), nil
		default:
			return boolVal(c >= 0), nil
		}
	case sqlparse.OpLike:
		if l.IsNull() || r.IsNull() {
			return boolVal(false), nil
		}
		return boolVal(likeMatch(l.AsString(), r.AsString())), nil
	case sqlparse.OpAdd, sqlparse.OpSub, sqlparse.OpMul, sqlparse.OpDiv:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		if l.Kind() == KindInt && r.Kind() == KindInt && ex.Op != sqlparse.OpDiv {
			a, b := l.AsInt(), r.AsInt()
			switch ex.Op {
			case sqlparse.OpAdd:
				return Int(a + b), nil
			case sqlparse.OpSub:
				return Int(a - b), nil
			default:
				return Int(a * b), nil
			}
		}
		a, b := l.AsFloat(), r.AsFloat()
		switch ex.Op {
		case sqlparse.OpAdd:
			return Float(a + b), nil
		case sqlparse.OpSub:
			return Float(a - b), nil
		case sqlparse.OpMul:
			return Float(a * b), nil
		default:
			if b == 0 {
				return Null(), nil // MySQL: division by zero yields NULL
			}
			return Float(a / b), nil
		}
	default:
		return Null(), fmt.Errorf("sqldb: unsupported operator %v", ex.Op)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes.
	n, m := len(s), len(pattern)
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= m; j++ {
		pc := pattern[j-1]
		cur[0] = prev[0] && pc == '%'
		for i := 1; i <= n; i++ {
			switch pc {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == pc
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// ---- INSERT / UPDATE / DELETE ----

// execInsert applies an INSERT. With tx non-nil, one undo record per row is
// logged before the row lands, capturing the rowid it will take and the
// pre-statement AUTO_INCREMENT/rowid counters — so rollback restores the
// counters even when a later row of the statement fails.
func execInsert(t *Table, st *sqlparse.Insert, args []Value, tx *txn) (*Result, error) {
	cols := st.Columns
	if len(cols) == 0 {
		cols = make([]string, len(t.columns))
		for i, c := range t.columns {
			cols[i] = c.Name
		}
	}
	colPos := make([]int, len(cols))
	for i, c := range cols {
		p, err := t.colOf(c)
		if err != nil {
			return nil, err
		}
		colPos[i] = p
	}
	ev := &env{args: args}
	res := &Result{}
	for _, exprRow := range st.Rows {
		if len(exprRow) != len(cols) {
			return nil, fmt.Errorf("sqldb: %d values for %d columns in INSERT into %q",
				len(exprRow), len(cols), t.name)
		}
		row := make(Row, len(t.columns))
		provided := make([]bool, len(t.columns))
		for i, ex := range exprRow {
			v, err := ev.eval(ex)
			if err != nil {
				return nil, err
			}
			row[colPos[i]] = coerce(v, t.columns[colPos[i]].Type)
			provided[colPos[i]] = true
		}
		if tx != nil {
			tx.add(undoRec{t: t, kind: undoInsert, id: t.nextID,
				prevNextID: t.nextID, prevNextAI: t.nextAI})
		}
		for i, c := range t.columns {
			if c.AutoIncrement && (!provided[i] || row[i].IsNull()) {
				row[i] = Int(t.assignAI())
				res.LastInsertID = row[i].AsInt()
			} else if c.AutoIncrement && provided[i] {
				t.noteExplicitAI(row[i].AsInt())
				res.LastInsertID = row[i].AsInt()
			}
		}
		if _, err := t.insert(row); err != nil {
			return nil, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// coerce converts a value to the column's declared type (MySQL-style weak
// typing keeps the benchmarks' string/number mixing working).
func coerce(v Value, t sqlparse.ColType) Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case sqlparse.TypeInt:
		return Int(v.AsInt())
	case sqlparse.TypeFloat:
		return Float(v.AsFloat())
	default:
		return String(v.AsString())
	}
}

// execUpdate applies an UPDATE. With tx non-nil, each row's pre-image of
// the assigned columns is logged before the row is touched, so a failing
// assignment mid-row (or a later row) unwinds cleanly.
func execUpdate(t *Table, st *sqlparse.Update, args []Value, tx *txn) (*Result, error) {
	setPos := make([]int, len(st.Set))
	for i, a := range st.Set {
		p, err := t.colOf(a.Column)
		if err != nil {
			return nil, err
		}
		setPos[i] = p
	}
	ids, err := matchRows(t, st.Where, args)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, id := range ids {
		row := t.rows[id]
		ev := &env{aliases: []string{t.name}, tabs: []*Table{t}, rows: []Row{row}, args: args}
		set := make(map[int]Value, len(st.Set))
		for i, a := range st.Set {
			v, err := ev.eval(a.Value)
			if err != nil {
				return nil, err
			}
			set[setPos[i]] = coerce(v, t.columns[setPos[i]].Type)
		}
		if tx != nil {
			old := make(map[int]Value, len(set))
			for col := range set {
				old[col] = row[col]
			}
			tx.add(undoRec{t: t, kind: undoUpdate, id: id, old: old})
		}
		if err := t.update(id, set); err != nil {
			return nil, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// execDelete applies a DELETE. With tx non-nil, each row is copied into the
// undo log before removal; rollback resurrects it under its original rowid
// and scan position.
func execDelete(t *Table, st *sqlparse.Delete, args []Value, tx *txn) (*Result, error) {
	ids, err := matchRows(t, st.Where, args)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if tx != nil {
			// Stored rows are immutable; the undo image can share the slice.
			tx.add(undoRec{t: t, kind: undoDelete, id: id, row: t.rows[id]})
		}
		t.deleteRow(id)
	}
	return &Result{RowsAffected: int64(len(ids))}, nil
}

// matchRows returns the rowids satisfying where (all rows when where is
// nil), using an index for top-level equality conjuncts when possible.
func matchRows(t *Table, where sqlparse.Expr, args []Value) ([]int64, error) {
	cands, indexed, err := candidateIDs(t, where, args)
	if err != nil {
		return nil, err
	}
	var ids []int64
	check := func(id int64, r Row) error {
		if where != nil {
			ev := &env{aliases: []string{t.name}, tabs: []*Table{t}, rows: []Row{r}, args: args}
			v, err := ev.eval(where)
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		ids = append(ids, id)
		return nil
	}
	if indexed {
		for _, id := range cands {
			if r, ok := t.rows[id]; ok {
				if err := check(id, r); err != nil {
					return nil, err
				}
			}
		}
		return ids, nil
	}
	if err := t.scan(check); err != nil {
		return nil, err
	}
	return ids, nil
}

// candidateIDs inspects the WHERE clause for an equality conjunct on an
// indexed column of t and returns the posting list when one is found.
func candidateIDs(t *Table, where sqlparse.Expr, args []Value) ([]int64, bool, error) {
	var walk func(e sqlparse.Expr) ([]int64, bool, error)
	walk = func(e sqlparse.Expr) ([]int64, bool, error) {
		be, ok := e.(*sqlparse.BinaryExpr)
		if !ok {
			return nil, false, nil
		}
		switch be.Op {
		case sqlparse.OpAnd:
			if ids, found, err := walk(be.L); found || err != nil {
				return ids, found, err
			}
			return walk(be.R)
		case sqlparse.OpEq:
			col, val := be.L, be.R
			if _, isCol := col.(*sqlparse.ColRefExpr); !isCol {
				col, val = val, col
			}
			cr, isCol := col.(*sqlparse.ColRefExpr)
			if !isCol || !constExpr(val) {
				return nil, false, nil
			}
			if cr.Table != "" && !strings.EqualFold(cr.Table, t.name) {
				return nil, false, nil
			}
			ci, err := t.colOf(cr.Column)
			if err != nil {
				return nil, false, nil // not this table's column
			}
			ev := &env{args: args}
			v, err := ev.eval(val)
			if err != nil {
				return nil, false, err
			}
			if ids, ok := t.lookup(ci, v); ok {
				return ids, true, nil
			}
			return nil, false, nil
		default:
			return nil, false, nil
		}
	}
	if where == nil {
		return nil, false, nil
	}
	return walk(where)
}

// constExpr reports whether e evaluates without row context.
func constExpr(e sqlparse.Expr) bool {
	switch ex := e.(type) {
	case *sqlparse.IntLit, *sqlparse.FloatLit, *sqlparse.StringLit,
		*sqlparse.NullLit, *sqlparse.ParamExpr:
		return true
	case *sqlparse.NegExpr:
		return constExpr(ex.E)
	default:
		return false
	}
}

// ---- SELECT ----

func execSelect(tabs []*Table, st *sqlparse.Select, args []Value) (*Result, error) {
	aliases := []string{strings.ToLower(st.From.Name())}
	for _, j := range st.Joins {
		aliases = append(aliases, strings.ToLower(j.Table.Name()))
	}
	ev := &env{aliases: aliases, tabs: tabs, args: args,
		rows: make([]Row, len(tabs))}

	// Plan-time validation: every column reference must resolve even when
	// no rows flow (real engines reject unknown columns regardless).
	var exprs []sqlparse.Expr
	for _, it := range st.Items {
		exprs = append(exprs, it.Expr)
	}
	if st.Where != nil {
		exprs = append(exprs, st.Where)
	}
	for i := range st.GroupBy {
		exprs = append(exprs, &st.GroupBy[i])
	}
	for _, oi := range st.OrderBy {
		// ORDER BY may name a select-list alias instead of a table column.
		if cr, ok := oi.Expr.(*sqlparse.ColRefExpr); ok && cr.Table == "" {
			if outputIndex(outputColumns(st, tabs), cr.Column) >= 0 {
				continue
			}
		}
		exprs = append(exprs, oi.Expr)
	}
	for _, j := range st.Joins {
		exprs = append(exprs, j.On)
	}
	for _, x := range exprs {
		if err := validateCols(x, ev); err != nil {
			return nil, err
		}
	}

	agg := len(st.GroupBy) > 0
	for _, it := range st.Items {
		if containsAgg(it.Expr) {
			agg = true
		}
	}

	res := &Result{Columns: outputColumns(st, tabs)}
	var groups *groupSet
	if agg {
		groups = newGroupSet(st)
	}
	// For non-aggregate selects, ORDER BY keys are evaluated against the
	// bound rows at emit time so they may name columns outside the select
	// list (e.g. SELECT name FROM items ORDER BY price).
	var sortKeys [][]Value

	// Result rows are carved from slab allocations rather than one slice per
	// row; stored rows are immutable (updates are copy-on-write), so a
	// single-table SELECT * shares them outright with no copy at all.
	// Slabs start at one row and double up to 64 rows per allocation: a
	// point lookup pays for exactly one row, a big scan amortizes to a
	// handful of allocations.
	var slab []Value
	slabRows := 1
	newRow := func(w int) Row {
		if w > len(slab) {
			slab = make([]Value, slabRows*w)
			if slabRows < 64 {
				slabRows *= 2
			}
		}
		r := Row(slab[:0:w])
		slab = slab[w:]
		return r
	}
	emit := func() error {
		if agg {
			return groups.add(ev)
		}
		var out Row
		if st.Star {
			if len(ev.rows) == 1 {
				out = ev.rows[0]
			} else {
				out = newRow(len(res.Columns))
				for _, r := range ev.rows {
					out = append(out, r...)
				}
			}
		} else {
			out = newRow(len(res.Columns))
			for _, it := range st.Items {
				v, err := ev.eval(it.Expr)
				if err != nil {
					return err
				}
				out = append(out, v)
			}
		}
		if len(st.OrderBy) > 0 {
			keys := make([]Value, len(st.OrderBy))
			for i, oi := range st.OrderBy {
				v, err := ev.eval(oi.Expr)
				if err != nil {
					// The key may be a select-list alias (SELECT price AS p
					// ... ORDER BY p): fall back to the output value.
					cr, ok := oi.Expr.(*sqlparse.ColRefExpr)
					if !ok || cr.Table != "" {
						return err
					}
					idx := outputIndex(res.Columns, cr.Column)
					if idx < 0 || st.Star {
						return err
					}
					v = out[idx]
				}
				keys[i] = v
			}
			sortKeys = append(sortKeys, keys)
		}
		res.Rows = append(res.Rows, out)
		return nil
	}

	// Nested-loop join over From and Joins, index-accelerated on the From
	// table's WHERE equalities and each join's ON equality.
	var joinLevel func(level int) error
	joinLevel = func(level int) error {
		if level == len(tabs) {
			if st.Where != nil {
				v, err := ev.eval(st.Where)
				if err != nil {
					return err
				}
				if !v.Truthy() {
					return nil
				}
			}
			return emit()
		}
		t := tabs[level]
		if level == 0 {
			cands, indexed, err := candidateIDs(t, st.Where, args)
			if err != nil {
				return err
			}
			if indexed {
				for _, id := range cands {
					if r, ok := t.rows[id]; ok {
						ev.rows[0] = r
						if err := joinLevel(1); err != nil {
							return err
						}
					}
				}
				return nil
			}
			return t.scan(func(_ int64, r Row) error {
				ev.rows[0] = r
				return joinLevel(1)
			})
		}
		// Join level: try to use the ON equality with an index.
		on := st.Joins[level-1].On
		if ids, ok, err := joinLookup(ev, t, level, on); err != nil {
			return err
		} else if ok {
			for _, id := range ids {
				if r, exists := t.rows[id]; exists {
					ev.rows[level] = r
					if err := joinLevel(level + 1); err != nil {
						return err
					}
				}
			}
			return nil
		}
		return t.scan(func(_ int64, r Row) error {
			ev.rows[level] = r
			okv, err := (&env{aliases: ev.aliases[:level+1], tabs: ev.tabs[:level+1],
				rows: ev.rows[:level+1], args: args}).eval(on)
			if err != nil {
				return err
			}
			if !okv.Truthy() {
				return nil
			}
			return joinLevel(level + 1)
		})
	}
	if err := joinLevel(0); err != nil {
		return nil, err
	}

	if agg {
		rows, err := groups.finish(ev)
		if err != nil {
			return nil, err
		}
		res.Rows = rows
		if err := orderAggRows(res, st); err != nil {
			return nil, err
		}
	} else if err := orderPlainRows(res, st, sortKeys); err != nil {
		return nil, err
	}
	if st.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	applyLimit(res, st)
	return res, nil
}

// joinLookup resolves "a.x = b.y" where one side references the level's
// table on an indexed column and the other references an already-bound
// table; it returns the matching rowids.
func joinLookup(ev *env, t *Table, level int, on sqlparse.Expr) ([]int64, bool, error) {
	be, ok := on.(*sqlparse.BinaryExpr)
	if !ok || be.Op != sqlparse.OpEq {
		return nil, false, nil
	}
	lc, lok := be.L.(*sqlparse.ColRefExpr)
	rc, rok := be.R.(*sqlparse.ColRefExpr)
	if !lok || !rok {
		return nil, false, nil
	}
	levelAlias := ev.aliases[level]
	var newSide, boundSide *sqlparse.ColRefExpr
	switch {
	case strings.EqualFold(lc.Table, levelAlias):
		newSide, boundSide = lc, rc
	case strings.EqualFold(rc.Table, levelAlias):
		newSide, boundSide = rc, lc
	default:
		return nil, false, nil
	}
	ci, err := t.colOf(newSide.Column)
	if err != nil {
		return nil, false, nil
	}
	bi, bc, err := (&env{aliases: ev.aliases[:level], tabs: ev.tabs[:level],
		rows: ev.rows[:level], args: ev.args}).resolve(boundSide.Table, boundSide.Column)
	if err != nil {
		return nil, false, nil
	}
	v := ev.rows[bi][bc]
	ids, ok := t.lookup(ci, v)
	if !ok {
		return nil, false, nil
	}
	return ids, true, nil
}

// validateCols resolves every column reference in e against the bound
// tables, returning an error for unknown or ambiguous names. ORDER BY
// references may also name select-list aliases, which resolve later, so
// callers pass only structural expressions here; aliases are cheap to
// accept by ignoring resolution failures for bare ORDER BY columns — the
// executor reports them precisely when actually evaluated.
func validateCols(e sqlparse.Expr, ev *env) error {
	switch x := e.(type) {
	case *sqlparse.ColRefExpr:
		_, _, err := ev.resolve(x.Table, x.Column)
		return err
	case *sqlparse.BinaryExpr:
		if err := validateCols(x.L, ev); err != nil {
			return err
		}
		return validateCols(x.R, ev)
	case *sqlparse.NotExpr:
		return validateCols(x.E, ev)
	case *sqlparse.NegExpr:
		return validateCols(x.E, ev)
	case *sqlparse.IsNullExpr:
		return validateCols(x.E, ev)
	case *sqlparse.BetweenExpr:
		if err := validateCols(x.E, ev); err != nil {
			return err
		}
		if err := validateCols(x.Lo, ev); err != nil {
			return err
		}
		return validateCols(x.Hi, ev)
	case *sqlparse.InExpr:
		if err := validateCols(x.E, ev); err != nil {
			return err
		}
		for _, item := range x.List {
			if err := validateCols(item, ev); err != nil {
				return err
			}
		}
		return nil
	case *sqlparse.AggExpr:
		if x.Arg != nil {
			return validateCols(x.Arg, ev)
		}
		return nil
	default:
		return nil
	}
}

func containsAgg(e sqlparse.Expr) bool {
	switch ex := e.(type) {
	case *sqlparse.AggExpr:
		return true
	case *sqlparse.BinaryExpr:
		return containsAgg(ex.L) || containsAgg(ex.R)
	case *sqlparse.NegExpr:
		return containsAgg(ex.E)
	case *sqlparse.NotExpr:
		return containsAgg(ex.E)
	default:
		return false
	}
}

func outputColumns(st *sqlparse.Select, tabs []*Table) []string {
	if st.Star {
		var cols []string
		for _, t := range tabs {
			for _, c := range t.Columns() {
				cols = append(cols, c.Name)
			}
		}
		return cols
	}
	cols := make([]string, len(st.Items))
	for i, it := range st.Items {
		switch {
		case it.Alias != "":
			cols[i] = it.Alias
		default:
			if cr, ok := it.Expr.(*sqlparse.ColRefExpr); ok {
				cols[i] = cr.Column
			} else if ag, ok := it.Expr.(*sqlparse.AggExpr); ok {
				cols[i] = strings.ToLower(ag.Func.String())
			} else {
				cols[i] = fmt.Sprintf("expr%d", i+1)
			}
		}
	}
	return cols
}

// ---- aggregation ----

type groupState struct {
	key    string
	sample []Row // bound rows of the first member, for non-agg items
	counts []int64
	sums   []float64
	mins   []Value
	maxs   []Value
	seen   []bool
}

type groupSet struct {
	st     *sqlparse.Select
	order  []string
	groups map[string]*groupState
	aggs   []*sqlparse.AggExpr // aggregates in select-list order (nil gaps)
}

func newGroupSet(st *sqlparse.Select) *groupSet {
	gs := &groupSet{st: st, groups: make(map[string]*groupState)}
	for _, it := range st.Items {
		if ag, ok := it.Expr.(*sqlparse.AggExpr); ok {
			gs.aggs = append(gs.aggs, ag)
		} else {
			gs.aggs = append(gs.aggs, nil)
		}
	}
	return gs
}

func (gs *groupSet) add(ev *env) error {
	var keyParts []string
	for _, g := range gs.st.GroupBy {
		g := g
		v, err := ev.eval(&g)
		if err != nil {
			return err
		}
		keyParts = append(keyParts, v.String())
	}
	key := strings.Join(keyParts, "\x00")
	g, ok := gs.groups[key]
	if !ok {
		g = &groupState{
			key:    key,
			counts: make([]int64, len(gs.aggs)),
			sums:   make([]float64, len(gs.aggs)),
			mins:   make([]Value, len(gs.aggs)),
			maxs:   make([]Value, len(gs.aggs)),
			seen:   make([]bool, len(gs.aggs)),
		}
		g.sample = make([]Row, len(ev.rows))
		// Stored rows are immutable; samples can alias them.
		copy(g.sample, ev.rows)
		gs.groups[key] = g
		gs.order = append(gs.order, key)
	}
	for i, ag := range gs.aggs {
		if ag == nil {
			continue
		}
		if ag.Star {
			g.counts[i]++
			continue
		}
		v, err := ev.eval(ag.Arg)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue
		}
		g.counts[i]++
		g.sums[i] += v.AsFloat()
		if !g.seen[i] || Compare(v, g.mins[i]) < 0 {
			g.mins[i] = v
		}
		if !g.seen[i] || Compare(v, g.maxs[i]) > 0 {
			g.maxs[i] = v
		}
		g.seen[i] = true
	}
	return nil
}

func (gs *groupSet) finish(ev *env) ([]Row, error) {
	var out []Row
	if len(gs.order) == 0 && len(gs.st.GroupBy) == 0 {
		// Aggregate over an empty input still yields one row.
		gs.groups[""] = &groupState{
			counts: make([]int64, len(gs.aggs)),
			sums:   make([]float64, len(gs.aggs)),
			mins:   make([]Value, len(gs.aggs)),
			maxs:   make([]Value, len(gs.aggs)),
			seen:   make([]bool, len(gs.aggs)),
			sample: make([]Row, len(ev.tabs)),
		}
		for i, t := range ev.tabs {
			gs.groups[""].sample[i] = make(Row, len(t.columns))
		}
		gs.order = append(gs.order, "")
	}
	for _, key := range gs.order {
		g := gs.groups[key]
		genv := &env{aliases: ev.aliases, tabs: ev.tabs, rows: g.sample, args: ev.args}
		row := make(Row, len(gs.st.Items))
		for i, it := range gs.st.Items {
			if ag := gs.aggs[i]; ag != nil {
				row[i] = aggValue(ag, g, i)
				continue
			}
			v, err := genv.eval(it.Expr)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

func aggValue(ag *sqlparse.AggExpr, g *groupState, i int) Value {
	switch ag.Func {
	case sqlparse.AggCount:
		return Int(g.counts[i])
	case sqlparse.AggSum:
		if g.counts[i] == 0 {
			return Null()
		}
		return Float(g.sums[i])
	case sqlparse.AggAvg:
		if g.counts[i] == 0 {
			return Null()
		}
		return Float(g.sums[i] / float64(g.counts[i]))
	case sqlparse.AggMin:
		if !g.seen[i] {
			return Null()
		}
		return g.mins[i]
	case sqlparse.AggMax:
		if !g.seen[i] {
			return Null()
		}
		return g.maxs[i]
	default:
		return Null()
	}
}

// ---- ordering, distinct, limit ----

// orderPlainRows sorts a non-aggregate result by the keys captured at emit
// time.
func orderPlainRows(res *Result, st *sqlparse.Select, sortKeys [][]Value) error {
	if len(st.OrderBy) == 0 {
		return nil
	}
	idx := make([]int, len(res.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
		for k, oi := range st.OrderBy {
			c := Compare(ka[k], kb[k])
			if c == 0 {
				continue
			}
			if oi.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	rows := make([]Row, len(res.Rows))
	for i, j := range idx {
		rows[i] = res.Rows[j]
	}
	res.Rows = rows
	return nil
}

// orderAggRows sorts an aggregate result; keys must name output columns
// (alias or column name), the only case the benchmarks need after GROUP BY.
func orderAggRows(res *Result, st *sqlparse.Select) error {
	if len(st.OrderBy) == 0 {
		return nil
	}
	cols := make([]int, len(st.OrderBy))
	for i, oi := range st.OrderBy {
		cr, ok := oi.Expr.(*sqlparse.ColRefExpr)
		if !ok {
			return fmt.Errorf("sqldb: ORDER BY after GROUP BY must name an output column")
		}
		idx := outputIndex(res.Columns, cr.Column)
		if idx < 0 {
			return fmt.Errorf("sqldb: ORDER BY key %q not in select list", cr.Column)
		}
		cols[i] = idx
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, ci := range cols {
			c := Compare(res.Rows[a][ci], res.Rows[b][ci])
			if c == 0 {
				continue
			}
			if st.OrderBy[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

func outputIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

func distinctRows(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.String())
			b.WriteByte('\x00')
		}
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func applyLimit(res *Result, st *sqlparse.Select) {
	if st.Offset > 0 {
		if st.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(res.Rows) {
		res.Rows = res.Rows[:st.Limit]
	}
}
