package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseSelectBasic(t *testing.T) {
	st := mustParse(t, "SELECT id, name FROM items WHERE id = 7").(*Select)
	if len(st.Items) != 2 || st.From.Table != "items" {
		t.Fatalf("unexpected select: %+v", st)
	}
	be, ok := st.Where.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		t.Fatalf("where = %#v, want equality", st.Where)
	}
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, "SELECT * FROM users").(*Select)
	if !st.Star || st.Limit != -1 {
		t.Fatalf("unexpected: %+v", st)
	}
}

func TestParseSelectFull(t *testing.T) {
	st := mustParse(t, `SELECT i.id, COUNT(*) AS n
		FROM items i JOIN bids b ON b.item_id = i.id
		WHERE i.category = ? AND b.bid > 10
		GROUP BY i.id ORDER BY n DESC LIMIT 20 OFFSET 5`).(*Select)
	if len(st.Joins) != 1 || st.Joins[0].Table.Table != "bids" {
		t.Fatalf("joins: %+v", st.Joins)
	}
	if len(st.GroupBy) != 1 || st.GroupBy[0].Column != "id" {
		t.Fatalf("group by: %+v", st.GroupBy)
	}
	if len(st.OrderBy) != 1 || !st.OrderBy[0].Desc {
		t.Fatalf("order by: %+v", st.OrderBy)
	}
	if st.Limit != 20 || st.Offset != 5 {
		t.Fatalf("limit/offset: %d/%d", st.Limit, st.Offset)
	}
	if st.Items[1].Alias != "n" {
		t.Fatalf("alias: %+v", st.Items[1])
	}
}

func TestParseMySQLLimitComma(t *testing.T) {
	st := mustParse(t, "SELECT id FROM t LIMIT 10, 20").(*Select)
	if st.Offset != 10 || st.Limit != 20 {
		t.Fatalf("LIMIT 10,20 -> offset=%d limit=%d", st.Offset, st.Limit)
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO users (id, name, balance) VALUES (1, 'bob', 3.5), (2, 'eve', 0)").(*Insert)
	if st.Table != "users" || len(st.Columns) != 3 || len(st.Rows) != 2 {
		t.Fatalf("insert: %+v", st)
	}
	if v, ok := st.Rows[0][1].(*StringLit); !ok || v.V != "bob" {
		t.Fatalf("row value: %#v", st.Rows[0][1])
	}
}

func TestParseInsertNoColumns(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (?, ?, NULL)").(*Insert)
	if len(st.Columns) != 0 || len(st.Rows[0]) != 3 {
		t.Fatalf("insert: %+v", st)
	}
	if p, ok := st.Rows[0][1].(*ParamExpr); !ok || p.Index != 1 {
		t.Fatalf("param indices must increment: %#v", st.Rows[0][1])
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, "UPDATE items SET stock = stock - 1, sales = sales + 1 WHERE id = ?").(*Update)
	if st.Table != "items" || len(st.Set) != 2 || st.Where == nil {
		t.Fatalf("update: %+v", st)
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM carts WHERE session = 'x'").(*Delete)
	if st.Table != "carts" || st.Where == nil {
		t.Fatalf("delete: %+v", st)
	}
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE items (
		id INT PRIMARY KEY AUTO_INCREMENT,
		name VARCHAR(100) NOT NULL,
		price FLOAT,
		descr TEXT DEFAULT 'none'
	)`).(*CreateTable)
	if st.Name != "items" || len(st.Columns) != 4 {
		t.Fatalf("create: %+v", st)
	}
	id := st.Columns[0]
	if !id.PrimaryKey || !id.AutoIncrement || id.Type != TypeInt {
		t.Fatalf("id column: %+v", id)
	}
	if !st.Columns[1].NotNull || st.Columns[1].Type != TypeString {
		t.Fatalf("name column: %+v", st.Columns[1])
	}
}

func TestParseCreateTableConstraint(t *testing.T) {
	st := mustParse(t, "CREATE TABLE t (a INT, b INT, PRIMARY KEY (b))").(*CreateTable)
	if st.Columns[0].PrimaryKey || !st.Columns[1].PrimaryKey {
		t.Fatalf("constraint: %+v", st.Columns)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st := mustParse(t, "CREATE UNIQUE INDEX idx_name ON users (nickname)").(*CreateIndex)
	if !st.Unique || st.Table != "users" || st.Column != "nickname" {
		t.Fatalf("index: %+v", st)
	}
}

func TestParseLockTables(t *testing.T) {
	st := mustParse(t, "LOCK TABLES items WRITE, authors READ").(*LockTables)
	if len(st.Items) != 2 || !st.Items[0].Write || st.Items[1].Write {
		t.Fatalf("lock: %+v", st)
	}
	if _, ok := mustParse(t, "UNLOCK TABLES").(*UnlockTables); !ok {
		t.Fatal("unlock")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Select)
	// Must parse as a=1 OR (b=2 AND c=3).
	or, ok := st.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top must be OR: %#v", st.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right must be AND: %#v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT a + b * 2 FROM t").(*Select)
	add, ok := st.Items[0].Expr.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top must be +: %#v", st.Items[0].Expr)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Fatalf("right must be *: %#v", add.R)
	}
}

func TestParseInBetweenLikeIsNull(t *testing.T) {
	st := mustParse(t, `SELECT a FROM t WHERE a IN (1,2,3) AND b BETWEEN 2 AND 9
		AND name LIKE '%go%' AND c IS NOT NULL AND d NOT IN (4)`).(*Select)
	if st.Where == nil {
		t.Fatal("where missing")
	}
	s := exprString(st.Where)
	for _, want := range []string{"IN", "BETWEEN", "LIKE", "ISNOTNULL", "NOTIN"} {
		if !strings.Contains(s, want) {
			t.Fatalf("parsed where %q missing %s", s, want)
		}
	}
}

// exprString renders enough structure for assertions.
func exprString(e Expr) string {
	switch x := e.(type) {
	case *BinaryExpr:
		return "(" + exprString(x.L) + x.Op.String() + exprString(x.R) + ")"
	case *InExpr:
		if x.Not {
			return exprString(x.E) + "NOTIN"
		}
		return exprString(x.E) + "IN"
	case *BetweenExpr:
		return exprString(x.E) + "BETWEEN"
	case *IsNullExpr:
		if x.Not {
			return exprString(x.E) + "ISNOTNULL"
		}
		return exprString(x.E) + "ISNULL"
	case *ColRefExpr:
		return x.Column
	case *IntLit, *FloatLit, *StringLit, *NullLit, *ParamExpr:
		return "v"
	case *NotExpr:
		return "NOT" + exprString(x.E)
	case *NegExpr:
		return "-" + exprString(x.E)
	case *AggExpr:
		return x.Func.String()
	default:
		return "?"
	}
}

func TestParseAggregates(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*), MAX(bid), AVG(price) FROM bids").(*Select)
	ag := st.Items[0].Expr.(*AggExpr)
	if ag.Func != AggCount || !ag.Star {
		t.Fatalf("count(*): %+v", ag)
	}
	if st.Items[1].Expr.(*AggExpr).Func != AggMax {
		t.Fatal("max")
	}
}

func TestParseStringEscapes(t *testing.T) {
	st := mustParse(t, `SELECT a FROM t WHERE s = 'it''s' AND r = 'a\nb'`).(*Select)
	and := st.Where.(*BinaryExpr)
	l := and.L.(*BinaryExpr).R.(*StringLit)
	if l.V != "it's" {
		t.Fatalf("doubled quote: %q", l.V)
	}
	r := and.R.(*BinaryExpr).R.(*StringLit)
	if r.V != "a\nb" {
		t.Fatalf("backslash escape: %q", r.V)
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, "SELECT a FROM t -- trailing comment\nWHERE a = 1")
}

func TestParseNegativeNumbers(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE a > -5 AND b = -2.5").(*Select)
	if st.Where == nil {
		t.Fatal("where")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"INSERT INTO t",
		"UPDATE t",
		"LOCK TABLES t",
		"SELECT a FROM t GROUP BY COUNT(*)",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT 'unterminated FROM t",
		"CREATE TABLE t (a BLOB)",
		"CREATE TABLE t (a INT, PRIMARY KEY (zzz))",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseSemicolon(t *testing.T) {
	mustParse(t, "SELECT a FROM t;")
}

// Property: the lexer never panics and either tokenizes or errors cleanly on
// arbitrary input.
func TestLexerRobustness(t *testing.T) {
	f := func(s string) bool {
		toks, err := lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics on arbitrary input.
func TestParserRobustness(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = Parse("SELECT " + s + " FROM t")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParamIndexing(t *testing.T) {
	st := mustParse(t, "SELECT a FROM t WHERE x = ? AND y = ? AND z = ?").(*Select)
	var idx []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *ParamExpr:
			idx = append(idx, x.Index)
		}
	}
	walk(st.Where)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("param indices: %v", idx)
	}
}

func TestParseTxnControl(t *testing.T) {
	for _, q := range []string{"BEGIN", "begin work", "START TRANSACTION"} {
		if _, ok := mustParse(t, q).(*Begin); !ok {
			t.Errorf("%q did not parse as Begin", q)
		}
	}
	if _, ok := mustParse(t, "COMMIT WORK;").(*Commit); !ok {
		t.Error("COMMIT WORK did not parse as Commit")
	}
	if _, ok := mustParse(t, "rollback").(*Rollback); !ok {
		t.Error("rollback did not parse as Rollback")
	}
	if _, err := Parse("START"); err == nil {
		t.Error("bare START must not parse")
	}
	// The new keywords must not break identifiers that contain them.
	st := mustParse(t, "SELECT start_date FROM items").(*Select)
	if cr, ok := st.Items[0].Expr.(*ColRefExpr); !ok || cr.Column != "start_date" {
		t.Errorf("start_date mislexed: %+v", st.Items[0].Expr)
	}
}
