package sqlparse

import "testing"

func TestShardExprsPinned(t *testing.T) {
	cases := []struct {
		src    string
		table  string
		column string
		want   int // expected number of key expressions
	}{
		{"SELECT * FROM items WHERE id = ?", "items", "id", 1},
		{"SELECT * FROM items WHERE id = 7", "items", "id", 1},
		{"SELECT name FROM items i WHERE i.id = ? AND stock > 0", "items", "id", 1},
		{"SELECT * FROM items WHERE subject = ? AND id = ?", "items", "id", 1},
		{"SELECT * FROM items WHERE id IN (1, 2, 3)", "items", "id", 3},
		{"SELECT * FROM items WHERE id IN (?, ?)", "items", "id", 2},
		{"SELECT b.bid FROM bids b JOIN items i ON i.id = b.item_id WHERE b.item_id = ?",
			"bids", "item_id", 1},
		{"UPDATE items SET stock = stock - ? WHERE id = ?", "items", "id", 1},
		{"DELETE FROM orders WHERE customer_id = ?", "orders", "customer_id", 1},
		{"INSERT INTO orders (customer_id, total) VALUES (?, ?)", "orders", "customer_id", 1},
		{"INSERT INTO orders (customer_id, total) VALUES (1, 2), (3, 4)", "orders", "customer_id", 2},
		{"SELECT * FROM items WHERE id = -1", "items", "id", 1},
	}
	for _, c := range cases {
		exprs, ok := ShardExprs(mustParse(t, c.src), c.table, c.column)
		if !ok {
			t.Errorf("%q: want pinned, got scatter", c.src)
			continue
		}
		if len(exprs) != c.want {
			t.Errorf("%q: got %d key exprs, want %d", c.src, len(exprs), c.want)
		}
		for _, e := range exprs {
			if !shardConst(e) {
				t.Errorf("%q: non-constant key expr %T", c.src, e)
			}
		}
	}
}

func TestShardExprsScatter(t *testing.T) {
	cases := []struct {
		src    string
		table  string
		column string
	}{
		// Range predicates never pin.
		{"SELECT * FROM items WHERE id > ?", "items", "id"},
		{"SELECT * FROM items WHERE id BETWEEN 1 AND 9", "items", "id"},
		// Key column absent.
		{"SELECT * FROM items WHERE subject = ?", "items", "id"},
		{"SELECT * FROM items", "items", "id"},
		{"DELETE FROM orders", "orders", "customer_id"},
		// A disjunct constrains nothing on its own.
		{"SELECT * FROM items WHERE id = 1 OR subject = ?", "items", "id"},
		{"SELECT * FROM items WHERE NOT id = 1", "items", "id"},
		{"SELECT * FROM items WHERE id NOT IN (1, 2)", "items", "id"},
		// Equality against another column is not a constant pin.
		{"SELECT * FROM items WHERE id = stock", "items", "id"},
		// Qualified reference to a different table's column of the same name.
		{"SELECT * FROM bids b JOIN items i ON i.id = b.item_id WHERE i.id = ?",
			"bids", "item_id"},
		// Wrong table entirely.
		{"SELECT * FROM authors WHERE id = ?", "items", "id"},
		// INSERT without an explicit column list, or missing the key column.
		{"INSERT INTO orders (total) VALUES (?)", "orders", "customer_id"},
		// Reassigning the shard column could migrate the row.
		{"UPDATE orders SET customer_id = ? WHERE customer_id = ?", "orders", "customer_id"},
	}
	for _, c := range cases {
		if _, ok := ShardExprs(mustParse(t, c.src), c.table, c.column); ok {
			t.Errorf("%q: want scatter, got pinned", c.src)
		}
	}
}

func TestParseShardStatements(t *testing.T) {
	al, err := Parse("ALTER TABLE orders AUTO_INCREMENT OFFSET 2 STRIDE 4 NEXT 10")
	if err != nil {
		t.Fatalf("ALTER: %v", err)
	}
	a, ok := al.(*AlterAutoInc)
	if !ok || a.Table != "orders" || a.Offset != 2 || a.Stride != 4 || a.Next != 10 {
		t.Fatalf("ALTER parsed wrong: %+v", al)
	}
	if _, err := Parse("ALTER TABLE orders AUTO_INCREMENT"); err == nil {
		t.Fatal("ALTER without clauses should fail")
	}
	if st := mustParse(t, "PREPARE TRANSACTION"); st != (Statement)(st.(*PrepareTxn)) {
		t.Fatalf("PREPARE TRANSACTION parsed as %T", st)
	}
	if _, ok := mustParse(t, "SHOW TABLE STATUS").(*ShowTableStatus); !ok {
		t.Fatal("SHOW TABLE STATUS parsed wrong")
	}
	// The contextual keywords must stay usable as column names.
	sel := mustParse(t, "SELECT status, next FROM orders WHERE status = ?").(*Select)
	if len(sel.Items) != 2 {
		t.Fatalf("contextual keywords broke column references: %+v", sel)
	}
}
