package sqlparse

import "strings"

// Shard-key extraction: given a parsed statement and a table's shard column,
// find the expressions that pin every affected row of that table to specific
// key values. The cluster's shard router evaluates those expressions against
// the statement's arguments at execution time — when they all hash to one
// shard, the statement ships to that shard alone; when extraction fails
// (range predicate, OR at the top level, key column absent) the statement
// scatter-gathers.
//
// Extraction is conservative by construction: it only claims a pin when the
// predicate structure guarantees that any row the statement touches carries
// one of the returned key values. A false negative costs a scatter; a false
// positive would silently lose rows, so anything not provably pinned returns
// ok=false.

// ShardExprs returns the expressions constraining table's shard column in st.
//
// For INSERT the returned slice holds one expression per VALUES row (the
// value landing in column). For SELECT/UPDATE/DELETE it holds the values of
// an equality or IN conjunct on the column that every matching row must
// satisfy. Each returned expression is constant — a literal, a '?' parameter,
// or a negation of one — so callers can evaluate it with only the statement
// arguments.
//
// ok=false means the statement is not provably pinned and must be treated as
// cross-shard.
func ShardExprs(st Statement, table, column string) (exprs []Expr, ok bool) {
	switch s := st.(type) {
	case *Insert:
		if !strings.EqualFold(s.Table, table) || len(s.Columns) == 0 {
			return nil, false
		}
		pos := -1
		for i, c := range s.Columns {
			if strings.EqualFold(c, column) {
				pos = i
			}
		}
		if pos < 0 {
			return nil, false
		}
		for _, row := range s.Rows {
			if pos >= len(row) || !shardConst(row[pos]) {
				return nil, false
			}
			exprs = append(exprs, row[pos])
		}
		return exprs, len(exprs) > 0
	case *Update:
		if !strings.EqualFold(s.Table, table) {
			return nil, false
		}
		// An UPDATE that reassigns the shard column could move a row between
		// shards, which single-shard routing cannot express.
		for _, a := range s.Set {
			if strings.EqualFold(a.Column, column) {
				return nil, false
			}
		}
		return whereShardExprs(s.Where, []string{s.Table}, column)
	case *Delete:
		if !strings.EqualFold(s.Table, table) {
			return nil, false
		}
		return whereShardExprs(s.Where, []string{s.Table}, column)
	case *Select:
		names := tableNames(s, table)
		if len(names) == 0 {
			return nil, false
		}
		return whereShardExprs(s.Where, names, column)
	default:
		return nil, false
	}
}

// tableNames collects the qualifiers (table name and alias) under which table
// is visible in sel, or nil when sel does not reference it.
func tableNames(sel *Select, table string) []string {
	var names []string
	add := func(tr TableRef) {
		if !strings.EqualFold(tr.Table, table) {
			return
		}
		names = append(names, tr.Table)
		if tr.Alias != "" {
			names = append(names, tr.Alias)
		}
	}
	add(sel.From)
	for _, j := range sel.Joins {
		add(j.Table)
	}
	return names
}

// whereShardExprs walks the top-level AND conjuncts of where for an equality
// or IN predicate on the shard column. Only conjuncts can pin: a predicate
// under OR or NOT constrains nothing on its own.
func whereShardExprs(where Expr, quals []string, column string) ([]Expr, bool) {
	if where == nil {
		return nil, false
	}
	switch e := where.(type) {
	case *BinaryExpr:
		switch e.Op {
		case OpAnd:
			if exprs, ok := whereShardExprs(e.L, quals, column); ok {
				return exprs, true
			}
			return whereShardExprs(e.R, quals, column)
		case OpEq:
			col, val := e.L, e.R
			if _, isCol := col.(*ColRefExpr); !isCol {
				col, val = val, col
			}
			cr, isCol := col.(*ColRefExpr)
			if !isCol || !shardConst(val) || !colMatches(cr, quals, column) {
				return nil, false
			}
			return []Expr{val}, true
		}
	case *InExpr:
		if e.Not {
			return nil, false
		}
		cr, isCol := e.E.(*ColRefExpr)
		if !isCol || !colMatches(cr, quals, column) {
			return nil, false
		}
		for _, item := range e.List {
			if !shardConst(item) {
				return nil, false
			}
		}
		return e.List, len(e.List) > 0
	}
	return nil, false
}

// colMatches reports whether cr names the shard column, unqualified or under
// one of the table's visible qualifiers.
func colMatches(cr *ColRefExpr, quals []string, column string) bool {
	if !strings.EqualFold(cr.Column, column) {
		return false
	}
	if cr.Table == "" {
		return true
	}
	for _, q := range quals {
		if strings.EqualFold(cr.Table, q) {
			return true
		}
	}
	return false
}

// shardConst reports whether e evaluates without row context — the property
// that lets the router compute the key before shipping the statement.
func shardConst(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit, *StringLit, *ParamExpr:
		return true
	case *NegExpr:
		return shardConst(x.E)
	default:
		return false
	}
}
