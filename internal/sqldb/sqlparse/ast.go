package sqlparse

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColType is a column's declared type.
type ColType int

const (
	TypeInt ColType = iota
	TypeFloat
	TypeString
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	default:
		return "?"
	}
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name          string
	Type          ColType
	PrimaryKey    bool
	AutoIncrement bool
	NotNull       bool
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
	Src         string // original statement text (see Statement Src note below)
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (column).
type CreateIndex struct {
	Name   string
	Table  string
	Column string
	Unique bool
	Src    string
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
	Src      string
}

// Insert is INSERT INTO table [(cols)] VALUES (exprs), (exprs)...
//
// Mutation statements carry Src, the exact source text Parse consumed: the
// write-ahead log records mutations logically (statement text + bound args),
// and prepared statements reach execution as bare ASTs, so the text must
// travel with the AST. Parse fills it; hand-built ASTs may leave it empty
// (such statements simply cannot be WAL-logged).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Src     string
}

// Update is UPDATE table SET col=expr,... [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
	Src   string
}

// Assignment is one col=expr pair in UPDATE ... SET.
type Assignment struct {
	Column string
	Value  Expr
}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr
	Src   string
}

// Select is a SELECT statement over one table plus inner joins.
type Select struct {
	Items    []SelectItem
	Star     bool
	From     TableRef
	Joins    []Join
	Where    Expr
	GroupBy  []ColRefExpr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int
	Distinct bool
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if present, otherwise the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// Join is INNER JOIN table ON left = right (equijoins only, which is all the
// benchmarks use).
type Join struct {
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// LockTables is MyISAM's LOCK TABLES t1 READ, t2 WRITE, ...
type LockTables struct {
	Items []LockItem
}

// LockItem is one table in LOCK TABLES.
type LockItem struct {
	Table string
	Write bool
}

// UnlockTables is UNLOCK TABLES.
type UnlockTables struct{}

// ShowTables is SHOW TABLES — the catalog query the cluster replica-sync
// path uses to enumerate what to copy.
type ShowTables struct{}

// ShowTableStatus is SHOW TABLE STATUS: one row per table with its row count
// and AUTO_INCREMENT state (next value, offset, stride). The replica-sync
// path uses it to carry id-assignment state to the destination exactly.
type ShowTableStatus struct{}

// AlterAutoInc is ALTER TABLE t AUTO_INCREMENT [OFFSET o] [STRIDE s] [NEXT n]:
// it configures strided id assignment (MySQL's auto_increment_offset /
// auto_increment_increment) so each shard of a partitioned table draws ids
// from a disjoint congruence class. A zero field leaves that setting
// unchanged; NEXT pins the counter exactly (the sync path's use).
type AlterAutoInc struct {
	Table  string
	Offset int64
	Stride int64
	Next   int64
	Src    string
}

// ShowWALStatus is SHOW WAL STATUS: one row describing the write-ahead log —
// whether one is attached, the last assigned LSN, the chain hash at that LSN,
// and the durable checkpoint LSN. The cluster's log-shipping rejoin path uses
// it to decide between a delta replay and a full copy.
type ShowWALStatus struct{}

// ShowWALRecords is SHOW WAL RECORDS SINCE n LIMIT m: up to m logged
// statements with LSN > n, in LSN order — one row per statement carrying
// (lsn, query text, base64-encoded args). The log-shipping sync path pages
// through it to replay a peer's tail.
type ShowWALRecords struct {
	SinceLSN int64
	Limit    int64
}

// ShowWALChain is SHOW WAL CHAIN n: the chain hash as of LSN n, if the log
// still reaches back that far. The sync path compares it against the
// joiner's own chain to prove the joiner's state is a prefix of the
// source's statement stream before shipping a delta.
type ShowWALChain struct {
	AtLSN int64
}

// PrepareTxn is PREPARE TRANSACTION — phase one of two-phase commit. The
// open transaction keeps its locks and undo log but accepts no further
// statements until COMMIT or ROLLBACK.
type PrepareTxn struct{}

// Begin is BEGIN [WORK] / START TRANSACTION: it opens a multi-statement
// transaction on the session.
type Begin struct{}

// Commit is COMMIT [WORK].
type Commit struct{}

// Rollback is ROLLBACK [WORK].
type Rollback struct{}

func (*CreateTable) stmt()     {}
func (*CreateIndex) stmt()     {}
func (*DropTable) stmt()       {}
func (*Insert) stmt()          {}
func (*Update) stmt()          {}
func (*Delete) stmt()          {}
func (*Select) stmt()          {}
func (*LockTables) stmt()      {}
func (*UnlockTables) stmt()    {}
func (*ShowTables) stmt()      {}
func (*ShowTableStatus) stmt() {}
func (*ShowWALStatus) stmt()   {}
func (*ShowWALRecords) stmt()  {}
func (*ShowWALChain) stmt()    {}
func (*AlterAutoInc) stmt()    {}
func (*PrepareTxn) stmt()      {}
func (*Begin) stmt()           {}
func (*Commit) stmt()          {}
func (*Rollback) stmt()        {}

// Expr is an expression node.
type Expr interface{ expr() }

// BinaryOp enumerates binary operators.
type BinaryOp int

const (
	OpEq BinaryOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpLike
)

func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpLike:
		return "LIKE"
	default:
		return "?"
	}
}

// BinaryExpr applies op to two operands.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

// NegExpr is arithmetic negation.
type NegExpr struct{ E Expr }

// ColRefExpr references a column, optionally qualified ("t.col").
type ColRefExpr struct {
	Table  string // empty when unqualified
	Column string
}

// IntLit / FloatLit / StringLit / NullLit are literals.
type IntLit struct{ V int64 }
type FloatLit struct{ V float64 }
type StringLit struct{ V string }
type NullLit struct{}

// ParamExpr is the i-th '?' placeholder (0-based).
type ParamExpr struct{ Index int }

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// AggExpr is an aggregate call; Star is COUNT(*).
type AggExpr struct {
	Func AggFunc
	Arg  Expr
	Star bool
}

// InExpr is "e IN (list...)" (value lists only).
type InExpr struct {
	E    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is "e IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Not bool
}

// BetweenExpr is "e BETWEEN lo AND hi".
type BetweenExpr struct {
	E, Lo, Hi Expr
}

func (*BinaryExpr) expr()  {}
func (*NotExpr) expr()     {}
func (*NegExpr) expr()     {}
func (*ColRefExpr) expr()  {}
func (*IntLit) expr()      {}
func (*FloatLit) expr()    {}
func (*StringLit) expr()   {}
func (*NullLit) expr()     {}
func (*ParamExpr) expr()   {}
func (*AggExpr) expr()     {}
func (*InExpr) expr()      {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}
