package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input after statement")
	}
	// Mutations keep their source text on the AST: the storage engine's
	// write-ahead log records them logically (text + args), and prepared
	// statements execute from the AST alone.
	switch st := st.(type) {
	case *Insert:
		st.Src = src
	case *Update:
		st.Src = src
	case *Delete:
		st.Src = src
	case *CreateTable:
		st.Src = src
	case *CreateIndex:
		st.Src = src
	case *DropTable:
		st.Src = src
	case *AlterAutoInc:
		st.Src = src
	}
	return st, nil
}

type parser struct {
	toks   []token
	i      int
	src    string
	params int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the token if it matches.
func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = fmt.Sprintf("token kind %d", kind)
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at byte %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, truncate(p.src))
}

func truncate(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.at(tokKeyword, "LOCK"):
		return p.parseLock()
	case p.at(tokKeyword, "UNLOCK"):
		p.next()
		if _, err := p.expect(tokKeyword, "TABLES"); err != nil {
			return nil, err
		}
		return &UnlockTables{}, nil
	case p.at(tokKeyword, "SHOW"):
		p.next()
		// WAL, like STATUS below, is contextual: nothing stops a schema
		// from having a column named "wal".
		if p.acceptIdent("WAL") {
			return p.parseShowWAL()
		}
		if p.accept(tokKeyword, "TABLE") {
			// STATUS is contextual, not reserved: it is a live column name
			// (orders.status) in the benchmark schemas.
			if !p.acceptIdent("STATUS") {
				return nil, p.errf("expected STATUS after SHOW TABLE")
			}
			return &ShowTableStatus{}, nil
		}
		if _, err := p.expect(tokKeyword, "TABLES"); err != nil {
			return nil, err
		}
		return &ShowTables{}, nil
	case p.at(tokKeyword, "ALTER"):
		return p.parseAlter()
	case p.at(tokKeyword, "BEGIN"):
		p.next()
		p.accept(tokKeyword, "WORK")
		return &Begin{}, nil
	case p.at(tokKeyword, "START"):
		p.next()
		if _, err := p.expect(tokKeyword, "TRANSACTION"); err != nil {
			return nil, err
		}
		return &Begin{}, nil
	case p.at(tokKeyword, "COMMIT"):
		p.next()
		p.accept(tokKeyword, "WORK")
		return &Commit{}, nil
	case p.at(tokKeyword, "ROLLBACK"):
		p.next()
		p.accept(tokKeyword, "WORK")
		return &Rollback{}, nil
	default:
		// PREPARE is contextual (tokIdent) so columns named "prepare" would
		// still lex as identifiers elsewhere.
		if p.acceptIdent("PREPARE") {
			if _, err := p.expect(tokKeyword, "TRANSACTION"); err != nil {
				return nil, err
			}
			return &PrepareTxn{}, nil
		}
		return nil, p.errf("unsupported statement beginning with %q", p.cur().text)
	}
}

// acceptIdent consumes an identifier matching text case-insensitively —
// contextual keywords (STATUS, STRIDE, NEXT, PREPARE) that must stay usable
// as column names.
func (p *parser) acceptIdent(text string) bool {
	if p.at(tokIdent, "") && strings.EqualFold(p.cur().text, text) {
		p.i++
		return true
	}
	return false
}

// parseAlter parses ALTER TABLE t AUTO_INCREMENT [OFFSET o] [STRIDE s] [NEXT n].
func (p *parser) parseAlter() (Statement, error) {
	p.next() // ALTER
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AUTO_INCREMENT"); err != nil {
		return nil, err
	}
	al := &AlterAutoInc{Table: name}
	seen := false
	for {
		var dst *int64
		switch {
		case p.accept(tokKeyword, "OFFSET"):
			dst = &al.Offset
		case p.acceptIdent("STRIDE"):
			dst = &al.Stride
		case p.acceptIdent("NEXT"):
			dst = &al.Next
		default:
			if !seen {
				return nil, p.errf("ALTER TABLE ... AUTO_INCREMENT needs OFFSET, STRIDE or NEXT")
			}
			return al, nil
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		*dst = int64(n)
		seen = true
	}
}

func (p *parser) parseIdent() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

// parseShowWAL parses the tail of SHOW WAL: STATUS, CHAIN n, or
// RECORDS SINCE n [LIMIT m]. SHOW WAL itself was already consumed.
func (p *parser) parseShowWAL() (Statement, error) {
	switch {
	case p.acceptIdent("STATUS"):
		return &ShowWALStatus{}, nil
	case p.acceptIdent("CHAIN"):
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		return &ShowWALChain{AtLSN: int64(n)}, nil
	case p.acceptIdent("RECORDS"):
		if !p.acceptIdent("SINCE") {
			return nil, p.errf("expected SINCE after SHOW WAL RECORDS")
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		rec := &ShowWALRecords{SinceLSN: int64(n), Limit: -1}
		if p.accept(tokKeyword, "LIMIT") {
			m, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			rec.Limit = int64(m)
		}
		return rec, nil
	default:
		return nil, p.errf("expected STATUS, CHAIN or RECORDS after SHOW WAL")
	}
}

func (p *parser) parseSelect() (*Select, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	sel.Distinct = p.accept(tokKeyword, "DISTINCT")
	if p.accept(tokSymbol, "*") {
		sel.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		if p.accept(tokKeyword, "INNER") || p.at(tokKeyword, "JOIN") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Table: tr, On: on})
			continue
		}
		break
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cr, ok := e.(*ColRefExpr)
			if !ok {
				return nil, p.errf("GROUP BY supports column references only")
			}
			sel.GroupBy = append(sel.GroupBy, *cr)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				oi.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, oi)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		sel.Limit = n
		if p.accept(tokKeyword, "OFFSET") {
			off, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			sel.Offset = off
		} else if p.accept(tokSymbol, ",") {
			// MySQL's LIMIT offset, count
			cnt, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			sel.Offset = sel.Limit
			sel.Limit = cnt
		}
	}
	return sel, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.accept(tokKeyword, "AS") {
		a, err := p.parseIdent()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) parseInsert() (*Insert, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	p.next() // UPDATE
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: v})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.accept(tokKeyword, "WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.accept(tokKeyword, "UNIQUE")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		ct := &CreateTable{}
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "NOT"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			ct.IfNotExists = true
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ct.Name = name
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			if p.accept(tokKeyword, "PRIMARY") {
				// PRIMARY KEY (col) table constraint
				if _, err := p.expect(tokKeyword, "KEY"); err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSymbol, "("); err != nil {
					return nil, err
				}
				col, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				found := false
				for i := range ct.Columns {
					if strings.EqualFold(ct.Columns[i].Name, col) {
						ct.Columns[i].PrimaryKey = true
						found = true
					}
				}
				if !found {
					return nil, p.errf("PRIMARY KEY names unknown column %q", col)
				}
			} else {
				cd, err := p.parseColumnDef()
				if err != nil {
					return nil, err
				}
				ct.Columns = append(ct.Columns, cd)
			}
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.accept(tokKeyword, "INDEX"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		table, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Column: col, Unique: unique}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	var cd ColumnDef
	name, err := p.parseIdent()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	t := p.next()
	if t.kind != tokKeyword {
		return cd, p.errf("expected column type, found %q", t.text)
	}
	switch t.text {
	case "INT", "INTEGER", "BIGINT", "DATETIME":
		cd.Type = TypeInt
	case "FLOAT", "DOUBLE":
		cd.Type = TypeFloat
	case "VARCHAR", "TEXT", "CHAR":
		cd.Type = TypeString
	default:
		return cd, p.errf("unsupported column type %q", t.text)
	}
	// optional (length)
	if p.accept(tokSymbol, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return cd, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return cd, err
		}
	}
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
		case p.accept(tokKeyword, "AUTO_INCREMENT"):
			cd.AutoIncrement = true
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		case p.accept(tokKeyword, "DEFAULT"):
			// accept and ignore a literal default
			if _, err := p.parsePrimary(); err != nil {
				return cd, err
			}
		default:
			return cd, nil
		}
	}
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.accept(tokKeyword, "IF") {
		if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *parser) parseLock() (Statement, error) {
	p.next() // LOCK
	if _, err := p.expect(tokKeyword, "TABLES"); err != nil {
		return nil, err
	}
	lt := &LockTables{}
	for {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		item := LockItem{Table: name}
		switch {
		case p.accept(tokKeyword, "WRITE"):
			item.Write = true
		case p.accept(tokKeyword, "READ"):
		default:
			return nil, p.errf("expected READ or WRITE after table name in LOCK TABLES")
		}
		lt.Items = append(lt.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return lt, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or   := and (OR and)*
//	and  := not (AND not)*
//	not  := NOT not | cmp
//	cmp  := add ((=|<>|<|<=|>|>=|LIKE) add | IS [NOT] NULL |
//	        [NOT] IN (list) | BETWEEN add AND add)?
//	add  := mul ((+|-) mul)*
//	mul  := unary ((*|/) unary)*
//	unary:= - unary | primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch {
	case p.at(tokSymbol, "="), p.at(tokSymbol, "<>"), p.at(tokSymbol, "!="),
		p.at(tokSymbol, "<"), p.at(tokSymbol, "<="), p.at(tokSymbol, ">"),
		p.at(tokSymbol, ">="):
		opTok := p.next().text
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		var op BinaryOp
		switch opTok {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	case p.accept(tokKeyword, "LIKE"):
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpLike, L: l, R: r}, nil
	case p.accept(tokKeyword, "IS"):
		not := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Not: not}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi}, nil
	case p.at(tokKeyword, "IN"), p.at(tokKeyword, "NOT"):
		not := false
		if p.at(tokKeyword, "NOT") {
			// only consume NOT IN here; bare NOT was handled above
			if p.i+1 < len(p.toks) && p.toks[p.i+1].text == "IN" {
				p.next()
				not = true
			} else {
				return l, nil
			}
		}
		if !p.accept(tokKeyword, "IN") {
			return l, nil
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		in := &InExpr{E: l, Not: not}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpAdd, L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpMul, L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &FloatLit{V: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &IntLit{V: n}, nil
	case tokString:
		p.next()
		return &StringLit{V: t.text}, nil
	case tokParam:
		p.next()
		e := &ParamExpr{Index: p.params}
		p.params++
		return e, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &NullLit{}, nil
		case "TRUE":
			p.next()
			return &IntLit{V: 1}, nil
		case "FALSE":
			p.next()
			return &IntLit{V: 0}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			return p.parseAgg()
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColRefExpr{Table: t.text, Column: col}, nil
		}
		return &ColRefExpr{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseAgg() (Expr, error) {
	t := p.next()
	var f AggFunc
	switch t.text {
	case "COUNT":
		f = AggCount
	case "SUM":
		f = AggSum
	case "MIN":
		f = AggMin
	case "MAX":
		f = AggMax
	case "AVG":
		f = AggAvg
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	agg := &AggExpr{Func: f}
	if p.accept(tokSymbol, "*") {
		if f != AggCount {
			return nil, p.errf("only COUNT accepts *")
		}
		agg.Star = true
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return agg, nil
}
