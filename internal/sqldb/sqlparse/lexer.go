// Package sqlparse implements the SQL dialect used by the repro database
// engine: the subset of MySQL 3.23 the paper's benchmarks rely on —
// SELECT with joins, WHERE, GROUP BY, ORDER BY and LIMIT; INSERT, UPDATE,
// DELETE; CREATE TABLE / CREATE INDEX; and MyISAM's LOCK TABLES /
// UNLOCK TABLES statements.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // operators and punctuation
	tokParam  // ? placeholder
)

type token struct {
	kind tokKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

// keywords recognized by the dialect. Identifiers matching these (case-
// insensitively) lex as tokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"PRIMARY": true, "KEY": true, "UNIQUE": true, "ON": true, "JOIN": true,
	"INNER": true, "LEFT": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "GROUP": true, "AS": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "FLOAT": true, "DOUBLE": true,
	"VARCHAR": true, "TEXT": true, "CHAR": true, "NULL": true, "IS": true,
	"IN": true, "LIKE": true, "BETWEEN": true, "LOCK": true, "UNLOCK": true,
	"TABLES": true, "READ": true, "WRITE": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "DISTINCT": true, "DROP": true,
	"IF": true, "EXISTS": true, "DEFAULT": true, "AUTO_INCREMENT": true,
	"DATETIME": true, "TRUE": true, "FALSE": true, "SHOW": true, "ALTER": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "START": true,
	"TRANSACTION": true, "WORK": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src. It returns an error with byte position on malformed
// input (unterminated string, unexpected rune).
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '?':
			l.emit(token{kind: tokParam, text: "?", pos: l.pos})
			l.pos++
		case c == '\'' || c == '"':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			// -- line comment
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\\' && l.pos+1 < len(l.src):
			// backslash escapes, MySQL style
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(next)
			}
			l.pos += 2
		case c == quote:
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				// doubled quote escapes itself
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: b.String(), pos: start})
			return nil
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return fmt.Errorf("sqlparse: unterminated string at byte %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !isDigit(c) {
			break
		}
		l.pos++
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.emit(token{kind: tokKeyword, text: strings.ToUpper(text), pos: start})
		return
	}
	l.emit(token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		l.emit(token{kind: tokSymbol, text: two, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '*', '+', '-', '/', '=', '<', '>', '.', ';', '%':
		l.pos++
		l.emit(token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sqlparse: unexpected character %q at byte %d", c, start)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || isDigit(c) || unicode.IsLetter(rune(c)) }
