package sqldb

import (
	"strings"
	"testing"
)

func TestStridedAutoIncrement(t *testing.T) {
	db := New()
	s := db.NewSession()
	mustExecT(t, s, "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v INT)")
	mustExecT(t, s, "ALTER TABLE w AUTO_INCREMENT OFFSET 2 STRIDE 3")
	var ids []int64
	for i := 0; i < 3; i++ {
		res := mustExecT(t, s, "INSERT INTO w (v) VALUES (?)", Int(int64(i)))
		ids = append(ids, res.LastInsertID)
	}
	if ids[0] != 2 || ids[1] != 5 || ids[2] != 8 {
		t.Fatalf("strided ids = %v, want [2 5 8]", ids)
	}
	// An explicit id advances the counter to the next value in class.
	mustExecT(t, s, "INSERT INTO w (id, v) VALUES (9, 0)")
	res := mustExecT(t, s, "INSERT INTO w (v) VALUES (0)")
	if res.LastInsertID != 11 {
		t.Fatalf("after explicit id 9, next strided id = %d, want 11", res.LastInsertID)
	}
	// SHOW TABLE STATUS reports the assignment state.
	st := mustExecT(t, s, "SHOW TABLE STATUS")
	found := false
	for _, r := range st.Rows {
		if r[0].AsString() == "w" {
			found = true
			if r[2].AsInt() != 14 || r[3].AsInt() != 2 || r[4].AsInt() != 3 {
				t.Fatalf("status row = %v, want next=14 offset=2 stride=3", r)
			}
		}
	}
	if !found {
		t.Fatal("SHOW TABLE STATUS missing table w")
	}
	// NEXT pins the counter exactly.
	mustExecT(t, s, "ALTER TABLE w AUTO_INCREMENT NEXT 20")
	if res := mustExecT(t, s, "INSERT INTO w (v) VALUES (0)"); res.LastInsertID != 20 {
		t.Fatalf("after NEXT 20, id = %d", res.LastInsertID)
	}
}

func TestStridedAutoIncrementRollback(t *testing.T) {
	db := New()
	s := db.NewSession()
	mustExecT(t, s, "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v INT)")
	mustExecT(t, s, "ALTER TABLE w AUTO_INCREMENT OFFSET 1 STRIDE 2")
	mustExecT(t, s, "BEGIN")
	mustExecT(t, s, "INSERT INTO w (v) VALUES (1)")
	mustExecT(t, s, "ROLLBACK")
	if res := mustExecT(t, s, "INSERT INTO w (v) VALUES (2)"); res.LastInsertID != 1 {
		t.Fatalf("rollback must restore the strided counter, got id %d", res.LastInsertID)
	}
}

func TestPrepareTransaction(t *testing.T) {
	db := New()
	s := db.NewSession()
	mustExecT(t, s, "CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v INT)")
	if _, err := s.Exec("PREPARE TRANSACTION"); err == nil {
		t.Fatal("PREPARE TRANSACTION outside a transaction should fail")
	}
	mustExecT(t, s, "BEGIN")
	mustExecT(t, s, "INSERT INTO w (v) VALUES (1)")
	mustExecT(t, s, "PREPARE TRANSACTION")
	if _, err := s.Exec("INSERT INTO w (v) VALUES (2)"); err == nil ||
		!strings.Contains(err.Error(), "prepared") {
		t.Fatalf("statement on a prepared transaction: err = %v", err)
	}
	mustExecT(t, s, "COMMIT")
	if res := mustExecT(t, s, "SELECT COUNT(*) FROM w"); res.Rows[0][0].AsInt() != 1 {
		t.Fatal("prepared transaction did not commit")
	}

	// Phase one followed by ROLLBACK undoes everything.
	mustExecT(t, s, "BEGIN")
	mustExecT(t, s, "INSERT INTO w (v) VALUES (3)")
	mustExecT(t, s, "PREPARE TRANSACTION")
	mustExecT(t, s, "ROLLBACK")
	if res := mustExecT(t, s, "SELECT COUNT(*) FROM w"); res.Rows[0][0].AsInt() != 1 {
		t.Fatal("prepared transaction did not roll back")
	}

	// A session closing with a prepared transaction still rolls back.
	s2 := db.NewSession()
	mustExecT(t, s2, "BEGIN")
	mustExecT(t, s2, "INSERT INTO w (v) VALUES (4)")
	mustExecT(t, s2, "PREPARE TRANSACTION")
	s2.Close()
	if res := mustExecT(t, s, "SELECT COUNT(*) FROM w"); res.Rows[0][0].AsInt() != 1 {
		t.Fatal("session close must abort a prepared transaction")
	}
}

func mustExecT(t *testing.T, s *Session, q string, args ...Value) *Result {
	t.Helper()
	res, err := s.Exec(q, args...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}
