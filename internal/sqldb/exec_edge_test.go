package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqldb/sqlparse"
)

func TestLikeMatchPatterns(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		// Literals.
		{"abc", "abc", true},
		{"abc", "ab", false},
		{"abc", "abcd", false},
		{"ABC", "abc", false}, // byte-wise, case sensitive
		{"", "", true},
		{"abc", "", false},
		// % alone.
		{"", "%", true},
		{"abc", "%", true},
		{"abc", "%%", true},
		// % prefix/suffix/infix.
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a%c", true},
		{"ac", "a%c", true}, // % matches the empty run
		{"abc", "%d%", false},
		{"banana", "%ana", true},
		{"banana", "ana%", false},
		{"banana", "%ana%", true},
		{"banana", "b%na", true},
		// _ single byte.
		{"abc", "a_c", true},
		{"aXc", "a_c", true},
		{"ac", "a_c", false},
		{"abc", "___", true},
		{"abc", "__", false},
		{"a", "_", true},
		{"", "_", false},
		// Mixed % and _.
		{"hello world", "h%o w%d", true},
		{"hello world", "h_llo%", true},
		{"hello world", "%o_ld", true},
		{"hello world", "_%_", true},
		{"x", "_%_", false},
		// Adjacent wildcards.
		{"abc", "%_", true},
		{"", "%_", false},
		{"abc", "a%%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pattern); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

// whereOf parses a SELECT and returns its WHERE expression.
func whereOf(t *testing.T, query string) sqlparse.Expr {
	t.Helper()
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sqlparse.Select).Where
}

// TestCandidateIDsIndexSelection checks when the executor takes an index
// posting list versus a full scan.
func TestCandidateIDsIndexSelection(t *testing.T) {
	db, s := testDB(t)
	defer s.Close()
	mustExec(t, s, "INSERT INTO items (name, category, price, stock) VALUES"+
		" ('a', 1, 10, 1), ('b', 2, 20, 2), ('c', 2, 30, 3), ('d', 3, 40, 4)")
	tbl, err := db.Table("items")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		query   string
		args    []Value
		indexed bool
		want    int // candidate count when indexed
	}{
		{"indexed equality", "SELECT id FROM items WHERE category = 2", nil, true, 2},
		{"indexed equality param", "SELECT id FROM items WHERE category = ?", []Value{Int(3)}, true, 1},
		{"primary key", "SELECT id FROM items WHERE id = 1", nil, true, 1},
		{"reversed operands", "SELECT id FROM items WHERE 2 = category", nil, true, 2},
		{"conjunct uses index", "SELECT id FROM items WHERE category = 2 AND stock > 2", nil, true, 2},
		{"right conjunct", "SELECT id FROM items WHERE stock > 0 AND category = 2", nil, true, 2},
		{"unindexed column", "SELECT id FROM items WHERE name = 'a'", nil, false, 0},
		{"range predicate", "SELECT id FROM items WHERE category > 1", nil, false, 0},
		{"column = column", "SELECT id FROM items WHERE category = stock", nil, false, 0},
		{"OR disjunction", "SELECT id FROM items WHERE category = 2 OR category = 3", nil, false, 0},
		{"no where", "SELECT id FROM items", nil, false, 0},
		// A key absent from the index still resolves through it: the empty
		// posting list means "no rows", not "fall back to a scan".
		{"miss in index", "SELECT id FROM items WHERE category = 99", nil, true, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ids, indexed, err := candidateIDs(tbl, whereOf(t, c.query), c.args)
			if err != nil {
				t.Fatal(err)
			}
			if indexed != c.indexed {
				t.Fatalf("indexed = %v, want %v", indexed, c.indexed)
			}
			if indexed && len(ids) != c.want {
				t.Fatalf("candidates = %v, want %d", ids, c.want)
			}
		})
	}
}

// TestMatchRowsIndexAndScanAgree runs the same predicates through the
// indexed path and a forced scan and requires identical row sets.
func TestMatchRowsIndexAndScanAgree(t *testing.T) {
	_, s := testDB(t)
	defer s.Close()
	for i := 0; i < 40; i++ {
		mustExec(t, s, "INSERT INTO items (name, category, price, stock) VALUES (?, ?, ?, ?)",
			String(fmt.Sprintf("item-%d", i)), Int(int64(i%5)), Float(float64(i)), Int(int64(i%7)))
	}
	queries := []string{
		"SELECT id FROM items WHERE category = 3 ORDER BY id",               // indexed
		"SELECT id FROM items WHERE category = 3 AND stock = 1 ORDER BY id", // indexed + residual filter
		"SELECT id FROM items WHERE stock = 1 ORDER BY id",                  // scan
	}
	for _, q := range queries {
		indexed := mustExec(t, s, q)
		// Defeat the index by wrapping the equality so candidateIDs cannot
		// see a top-level conjunct (0 + category = 3 is not a ColRef = const).
		scan := mustExec(t, s, "SELECT id FROM items WHERE NOT (NOT ("+q[len("SELECT id FROM items WHERE "):len(q)-len(" ORDER BY id")]+")) ORDER BY id")
		if len(indexed.Rows) == 0 {
			t.Fatalf("%s: empty result", q)
		}
		if len(indexed.Rows) != len(scan.Rows) {
			t.Fatalf("%s: indexed %d rows, scan %d rows", q, len(indexed.Rows), len(scan.Rows))
		}
		for i := range indexed.Rows {
			if indexed.Rows[i][0].AsInt() != scan.Rows[i][0].AsInt() {
				t.Fatalf("%s: row %d differs", q, i)
			}
		}
	}
}

// TestConcurrentPreparedExecution executes one shared cached AST from many
// sessions at once, mixing reads and writes, under -race: the executor must
// treat cached statements as immutable.
func TestConcurrentPreparedExecution(t *testing.T) {
	db, s := testDB(t)
	for i := 0; i < 20; i++ {
		mustExec(t, s, "INSERT INTO items (name, category, price, stock) VALUES (?, ?, ?, ?)",
			String(fmt.Sprintf("item-%d", i)), Int(int64(i%4)), Float(9.5), Int(10))
	}
	s.Close()

	sel, err := db.Prepare("SELECT id, name, price FROM items WHERE category = ?")
	if err != nil {
		t.Fatal(err)
	}
	upd, err := db.Prepare("UPDATE items SET stock = stock - ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					res, err := sess.ExecStmt(sel, Int(int64(i%4)))
					if err != nil {
						t.Errorf("select: %v", err)
						return
					}
					if len(res.Rows) == 0 {
						t.Error("select: no rows")
						return
					}
				} else {
					if _, err := sess.ExecStmt(upd, Int(0), Int(int64(1+i%20))); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// The same statements re-prepared must be cache hits.
	before := db.PlanCacheStats().Hits
	if _, err := db.Prepare("SELECT id, name, price FROM items WHERE category = ?"); err != nil {
		t.Fatal(err)
	}
	if db.PlanCacheStats().Hits != before+1 {
		t.Fatal("re-prepare missed the plan cache")
	}
}
