package sqldb

import "testing"

// TestTableVersionPublish: the engine-side per-table version — the ground
// truth the cluster client's commit-time mirror approximates — advances
// exactly when a write publishes, and only for the written table.
func TestTableVersionPublish(t *testing.T) {
	db := txnDB(t)
	s := db.NewSession()
	defer s.Close()

	items0, audit0 := db.TableVersion("items"), db.TableVersion("audit")

	// Auto-commit write publishes immediately.
	mustTx(t, s, "UPDATE items SET qty = 11 WHERE id = 1")
	if got := db.TableVersion("items"); got <= items0 {
		t.Fatalf("items version %d not advanced past %d by auto-commit write", got, items0)
	}
	if got := db.TableVersion("audit"); got != audit0 {
		t.Fatalf("audit version moved %d -> %d without a write", audit0, got)
	}

	// In-txn writes publish at COMMIT, not before.
	items1 := db.TableVersion("items")
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "UPDATE items SET qty = 12 WHERE id = 1")
	if got := db.TableVersion("items"); got != items1 {
		t.Fatalf("items version moved %d -> %d before commit", items1, got)
	}
	mustTx(t, s, "COMMIT")
	if got := db.TableVersion("items"); got <= items1 {
		t.Fatalf("items version %d not advanced past %d by commit", got, items1)
	}

	// ROLLBACK publishes nothing.
	items2 := db.TableVersion("items")
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "UPDATE items SET qty = 13 WHERE id = 1")
	mustTx(t, s, "ROLLBACK")
	if got := db.TableVersion("items"); got != items2 {
		t.Fatalf("items version moved %d -> %d across a rollback", items2, got)
	}

	// Reads never publish; unknown tables report zero.
	mustTx(t, s, "SELECT qty FROM items WHERE id = 1")
	if got := db.TableVersion("items"); got != items2 {
		t.Fatalf("items version moved %d -> %d on a read", items2, got)
	}
	if got := db.TableVersion("nope"); got != 0 {
		t.Fatalf("TableVersion of missing table = %d, want 0", got)
	}
}
