package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"repro/internal/pool"
	"repro/internal/sqldb"
)

// Conn is one client connection. It is not safe for concurrent use; the
// Pool hands each borrower exclusive access, like a JDBC connection.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// Dial connects to a wire server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 32<<10),
		w:  bufio.NewWriterSize(nc, 32<<10),
	}, nil
}

// Exec sends one statement and waits for its result.
func (c *Conn) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	if err := writeFrame(c.w, msgQuery, encodeQuery(query, args)); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("wire: flush: %w", err)
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	switch typ {
	case msgResult:
		return decodeResult(payload)
	case msgError:
		return nil, &ServerError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("wire: unexpected frame type 0x%x", typ)
	}
}

// Close closes the underlying connection (the server releases its locks).
func (c *Conn) Close() error { return c.nc.Close() }

// ServerError is an error reported by the database server (as opposed to a
// transport failure): the connection remains usable.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// IsServerError reports whether err is a database-side error.
func IsServerError(err error) bool {
	var se *ServerError
	return errors.As(err, &se)
}

// Pool is a fixed-size connection pool: the engine-side throttle whose size
// the paper's application servers configure. Borrowers block FIFO until a
// connection frees. It is a typed wrapper over the shared instrumented
// pool subsystem (internal/pool).
type Pool struct {
	p *pool.Pool[*Conn]
}

// NewPool creates a pool of up to size connections to addr. Connections are
// opened lazily.
func NewPool(addr string, size int) *Pool {
	return &Pool{p: pool.New(pool.Config[*Conn]{
		Name:    "db@" + addr,
		Dial:    func() (*Conn, error) { return Dial(addr) },
		Destroy: func(c *Conn) { c.Close() },
		Size:    size,
	})}
}

// Get borrows a connection, dialing a new one if the pool has capacity.
func (p *Pool) Get() (*Conn, error) {
	c, err := p.p.Get()
	if errors.Is(err, pool.ErrClosed) {
		return nil, errors.New("wire: pool closed")
	}
	return c, err
}

// Put returns a borrowed connection. Pass broken=true after a transport
// error to discard it and free capacity for a fresh dial.
func (p *Pool) Put(c *Conn, broken bool) { p.p.Put(c, broken) }

// Exec borrows a connection, runs the statement, and returns it. A
// server-side error (IsServerError) keeps the connection; a transport
// error discards it.
func (p *Pool) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	var res *sqldb.Result
	err := p.p.Do(false, func(err error) bool { return !IsServerError(err) },
		func(c *Conn) error {
			var err error
			res, err = c.Exec(query, args...)
			return err
		})
	return res, err
}

// Stats snapshots the pool's saturation counters.
func (p *Pool) Stats() pool.Stats { return p.p.Stats() }

// Close closes idle connections and marks the pool closed. Borrowed
// connections are closed as they are returned.
func (p *Pool) Close() { p.p.Close() }
