package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/sqldb"
)

// Conn is one client connection. It is not safe for concurrent use; the
// Pool hands each borrower exclusive access, like a JDBC connection.
type Conn struct {
	nc net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
}

// Dial connects to a wire server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Conn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 32<<10),
		w:  bufio.NewWriterSize(nc, 32<<10),
	}, nil
}

// Exec sends one statement and waits for its result.
func (c *Conn) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	if err := writeFrame(c.w, msgQuery, encodeQuery(query, args)); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, fmt.Errorf("wire: flush: %w", err)
	}
	typ, payload, err := readFrame(c.r)
	if err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	switch typ {
	case msgResult:
		return decodeResult(payload)
	case msgError:
		return nil, &ServerError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("wire: unexpected frame type 0x%x", typ)
	}
}

// Close closes the underlying connection (the server releases its locks).
func (c *Conn) Close() error { return c.nc.Close() }

// ServerError is an error reported by the database server (as opposed to a
// transport failure): the connection remains usable.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// IsServerError reports whether err is a database-side error.
func IsServerError(err error) bool {
	var se *ServerError
	return errors.As(err, &se)
}

// Pool is a fixed-size connection pool: the engine-side throttle whose size
// the paper's application servers configure. Borrowers block FIFO-ish until
// a connection frees (Go channel semantics).
type Pool struct {
	addr  string
	conns chan *Conn

	mu     sync.Mutex
	opened int
	limit  int
	closed bool
}

// NewPool creates a pool of up to size connections to addr. Connections are
// opened lazily.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{addr: addr, conns: make(chan *Conn, size), limit: size}
}

// Get borrows a connection, dialing a new one if the pool has capacity.
func (p *Pool) Get() (*Conn, error) {
	select {
	case c := <-p.conns:
		return c, nil
	default:
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("wire: pool closed")
	}
	if p.opened < p.limit {
		p.opened++
		p.mu.Unlock()
		c, err := Dial(p.addr)
		if err != nil {
			p.mu.Lock()
			p.opened--
			p.mu.Unlock()
			return nil, err
		}
		return c, nil
	}
	p.mu.Unlock()
	c, ok := <-p.conns
	if !ok {
		return nil, errors.New("wire: pool closed")
	}
	return c, nil
}

// Put returns a borrowed connection. Pass broken=true after a transport
// error to discard it and free capacity for a fresh dial.
func (p *Pool) Put(c *Conn, broken bool) {
	if broken {
		c.Close()
		p.mu.Lock()
		p.opened--
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		c.Close()
		return
	}
	select {
	case p.conns <- c:
	default:
		// Shouldn't happen (puts never exceed gets), but never block.
		c.Close()
		p.mu.Lock()
		p.opened--
		p.mu.Unlock()
	}
}

// Exec borrows a connection, runs the statement, and returns it.
func (p *Pool) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	c, err := p.Get()
	if err != nil {
		return nil, err
	}
	res, err := c.Exec(query, args...)
	p.Put(c, err != nil && !IsServerError(err))
	return res, err
}

// Close closes idle connections and marks the pool closed. Borrowed
// connections are closed as they are returned.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.conns)
	for c := range p.conns {
		c.Close()
	}
}
