package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/pool"
	"repro/internal/sqldb"
)

// Conn is one client connection. It is not safe for concurrent use; the
// Pool hands each borrower exclusive access, like a JDBC connection.
//
// Conn tracks which statements it has prepared on its server session
// (query text -> client-assigned id), so the prepared-statement fast path
// is transparent: ExecCached prepares on first use, pipelining the PREPARE
// with the first EXECUTE in a single round trip, and a freshly dialed
// connection simply starts with an empty map and re-prepares.
type Conn struct {
	nc   net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	fb   frameBuf
	cols colCache // column-name reuse across responses

	stmts  map[string]uint32
	nextID uint32

	// opTimeout bounds one public operation (all of its writes, flushes
	// and reads) with a connection deadline, so a stalled server turns
	// into a transport error instead of a hang. 0 means unbounded.
	// armedUntil amortizes SetDeadline: re-arming is a timer-heap
	// operation per call, so fast back-to-back ops reuse the armed
	// deadline while it still holds >3/4 of the window (an op observes
	// between 0.75×Op and Op of budget — bounded is the contract, not
	// precise).
	opTimeout  time.Duration
	armedUntil time.Time

	// pendingBegins counts BEGIN frames written but whose replies have not
	// been read yet: Begin is pipelined — the frame rides to the server with
	// the transaction's first statement, and the reply is drained just
	// before that statement's own.
	pendingBegins int
}

// Dial connects to a wire server with the default dial and per-operation
// timeouts.
func Dial(addr string) (*Conn, error) {
	return DialT(addr, pool.Timeouts{}.WithDefaults())
}

// DialT connects to a wire server, bounding the dial with t.Dial and every
// subsequent operation with t.Op (zero fields: unbounded).
func DialT(addr string, t pool.Timeouts) (*Conn, error) {
	var nc net.Conn
	var err error
	if t.Dial > 0 {
		nc, err = net.DialTimeout("tcp", addr, t.Dial)
	} else {
		nc, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Conn{
		nc:        nc,
		r:         bufio.NewReaderSize(nc, 32<<10),
		w:         bufio.NewWriterSize(nc, 32<<10),
		stmts:     make(map[string]uint32),
		opTimeout: t.Op,
	}, nil
}

// arm starts the per-operation deadline clock. Called at the top of each
// public operation — not in flush — so writes that spill the 32KB buffer
// mid-encode (large sync batches) are bounded too.
func (c *Conn) arm() {
	if c.opTimeout <= 0 {
		return
	}
	now := time.Now()
	if c.armedUntil.Sub(now) > c.opTimeout-c.opTimeout/4 {
		return
	}
	c.armedUntil = now.Add(c.opTimeout)
	c.nc.SetDeadline(c.armedUntil)
}

// send writes one request frame from a pooled encoder (unflushed) and
// returns the encoder to the pool.
func (c *Conn) send(typ byte, e *enc) error {
	err := writeFrame(c.w, typ, e.b)
	putEnc(e)
	if err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	return nil
}

// sendPrepare frames a PREPARE for id/query (unflushed).
func (c *Conn) sendPrepare(id uint32, query string) error {
	e := getEnc()
	encodePrepare(e, id, query)
	return c.send(msgPrepare, e)
}

// sendExecStmt frames an EXECUTE-by-id (unflushed).
func (c *Conn) sendExecStmt(id uint32, args []sqldb.Value) error {
	e := getEnc()
	encodeExecStmt(e, id, args)
	return c.send(msgExecStmt, e)
}

// flush pushes framed requests to the server.
func (c *Conn) flush() error {
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// readReply reads one response frame and decodes it as a result.
func (c *Conn) readReply() (*sqldb.Result, error) {
	typ, payload, err := c.fb.read(c.r)
	if err != nil {
		return nil, fmt.Errorf("wire: recv: %w", err)
	}
	switch typ {
	case msgResult:
		return decodeResult(payload, &c.cols)
	case msgPrepOK, msgTxnOK:
		return &sqldb.Result{}, nil
	case msgError:
		return nil, &ServerError{Msg: string(payload)}
	default:
		return nil, fmt.Errorf("wire: unexpected frame type 0x%x", typ)
	}
}

// drainPending reads the replies of pipelined BEGIN frames, keeping the
// stream in lockstep. Callers invoke it after flushing, before reading
// their own reply.
func (c *Conn) drainPending() error {
	for c.pendingBegins > 0 {
		c.pendingBegins--
		if _, err := c.readReply(); err != nil {
			return err
		}
	}
	return nil
}

// Begin opens a transaction on the connection's server session. The frame
// is only buffered: it ships with the next statement (or Commit/Rollback),
// so opening a transaction costs no extra round trip.
func (c *Conn) Begin() error {
	c.arm()
	if err := writeFrame(c.w, msgBegin, nil); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	c.pendingBegins++
	return nil
}

// Commit commits the open transaction (a server-side no-op without one).
func (c *Conn) Commit() error { return c.txnEnd(msgCommit) }

// Rollback rolls the open transaction back (a no-op without one).
func (c *Conn) Rollback() error { return c.txnEnd(msgRollback) }

// PrepareTxn brings the open transaction to the prepared state (phase one
// of two-phase commit, protocol v4): the server keeps every lock and
// refuses further statements until Commit or Rollback. An error means the
// transaction could not prepare and the coordinator must roll back
// everywhere.
func (c *Conn) PrepareTxn() error { return c.txnEnd(msgPrepareTxn) }

func (c *Conn) txnEnd(typ byte) error {
	c.arm()
	if err := writeFrame(c.w, typ, nil); err != nil {
		return fmt.Errorf("wire: send: %w", err)
	}
	if err := c.flush(); err != nil {
		return err
	}
	if err := c.drainPending(); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// Exec sends one statement as SQL text and waits for its result (the v1
// exchange; the server parses through its plan cache).
func (c *Conn) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	c.arm()
	e := getEnc()
	encodeQuery(e, query, args)
	if err := c.send(msgQuery, e); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	if err := c.drainPending(); err != nil {
		return nil, err
	}
	return c.readReply()
}

// Prepare registers query on the connection's server session and returns
// its statement id. Most callers never need it: ExecCached prepares
// implicitly.
func (c *Conn) Prepare(query string) (uint32, error) {
	if id, ok := c.stmts[query]; ok {
		return id, nil
	}
	c.arm()
	c.nextID++
	id := c.nextID
	if err := c.sendPrepare(id, query); err != nil {
		return 0, err
	}
	if err := c.flush(); err != nil {
		return 0, err
	}
	if err := c.drainPending(); err != nil {
		return 0, err
	}
	if _, err := c.readReply(); err != nil {
		return 0, err
	}
	c.stmts[query] = id
	return id, nil
}

// ExecPrepared runs a statement previously registered with Prepare.
func (c *Conn) ExecPrepared(id uint32, args ...sqldb.Value) (*sqldb.Result, error) {
	c.arm()
	if err := c.sendExecStmt(id, args); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	if err := c.drainPending(); err != nil {
		return nil, err
	}
	return c.readReply()
}

// ExecCached runs query over the prepared-statement fast path, preparing it
// on this connection first if needed. The first use pipelines PREPARE and
// EXECUTE into one round trip; thereafter only the 4-byte statement id and
// the arguments cross the wire.
func (c *Conn) ExecCached(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	c.arm()
	id, prepared := c.stmts[query]
	if !prepared {
		c.nextID++
		id = c.nextID
		if err := c.sendPrepare(id, query); err != nil {
			return nil, err
		}
	}
	if err := c.sendExecStmt(id, args); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	if err := c.drainPending(); err != nil {
		return nil, err
	}
	if !prepared {
		if _, perr := c.readReply(); perr != nil {
			// The pipelined EXECUTE hit the unregistered id; drain its
			// error response to keep the stream in lockstep, then report
			// the PREPARE failure (a transport error poisons both reads).
			if _, eerr := c.readReply(); eerr != nil && !IsServerError(eerr) {
				return nil, eerr
			}
			return nil, perr
		}
		c.stmts[query] = id
	}
	return c.readReply()
}

// CloseStmt retires a prepared statement on both ends.
func (c *Conn) CloseStmt(query string) error {
	id, ok := c.stmts[query]
	if !ok {
		return nil
	}
	c.arm()
	delete(c.stmts, query)
	e := getEnc()
	encodeCloseStmt(e, id)
	if err := c.send(msgCloseStmt, e); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	if err := c.drainPending(); err != nil {
		return err
	}
	_, err := c.readReply()
	return err
}

// Close closes the underlying connection (the server releases its locks
// and every statement id prepared on it).
func (c *Conn) Close() error { return c.nc.Close() }

// ServerError is an error reported by the database server (as opposed to a
// transport failure): the connection remains usable.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return e.Msg }

// IsServerError reports whether err is a database-side error.
func IsServerError(err error) bool {
	var se *ServerError
	return errors.As(err, &se)
}

// Pool is a fixed-size connection pool: the engine-side throttle whose size
// the paper's application servers configure. Borrowers block FIFO until a
// connection frees. It is a typed wrapper over the shared instrumented
// pool subsystem (internal/pool).
type Pool struct {
	p *pool.Pool[*Conn]

	mu    sync.RWMutex // steady state is read-only lookups on the hot path
	stmts map[string]*Stmt
}

// NewPool creates a pool of up to size connections to addr with the
// default timeouts. Connections are opened lazily.
func NewPool(addr string, size int) *Pool {
	return NewPoolT(addr, size, pool.Timeouts{})
}

// NewPoolT creates a pool of up to size connections to addr, bounding
// dials, operations and borrow waits with t (zero fields take the
// pool-package defaults; negative fields disable a bound).
func NewPoolT(addr string, size int, t pool.Timeouts) *Pool {
	t = t.WithDefaults()
	waitTimeout := time.Duration(-1)
	if t.Wait > 0 {
		waitTimeout = t.Wait
	}
	return &Pool{
		p: pool.New(pool.Config[*Conn]{
			Name:        "db@" + addr,
			Dial:        func() (*Conn, error) { return DialT(addr, t) },
			Destroy:     func(c *Conn) { c.Close() },
			Size:        size,
			WaitTimeout: waitTimeout,
		}),
		stmts: make(map[string]*Stmt),
	}
}

// Get borrows a connection, dialing a new one if the pool has capacity.
func (p *Pool) Get() (*Conn, error) {
	c, err := p.p.Get()
	if errors.Is(err, pool.ErrClosed) {
		return nil, errors.New("wire: pool closed")
	}
	return c, err
}

// Put returns a borrowed connection. Pass broken=true after a transport
// error to discard it and free capacity for a fresh dial.
func (p *Pool) Put(c *Conn, broken bool) { p.p.Put(c, broken) }

// Exec borrows a connection, runs the statement as SQL text, and returns
// it. A server-side error (IsServerError) keeps the connection; a
// transport error discards it.
func (p *Pool) Exec(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return p.ExecNotify(nil, query, args...)
}

// ExecNotify is Exec with a per-attempt hook (see Stmt.ExecNotify).
func (p *Pool) ExecNotify(onAttempt func(int), query string, args ...sqldb.Value) (*sqldb.Result, error) {
	var res *sqldb.Result
	err := p.p.DoNotify(false, func(err error) bool { return !IsServerError(err) },
		onAttempt,
		func(c *Conn) error {
			var err error
			res, err = c.Exec(query, args...)
			return err
		})
	return res, err
}

// ExecCached runs query over the prepared-statement fast path, managing
// per-connection statement ids transparently (see Stmt.Exec).
func (p *Pool) ExecCached(query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return p.Prepare(query).Exec(args...)
}

// ExecCachedNotify is ExecCached with a per-attempt hook (see
// Stmt.ExecNotify).
func (p *Pool) ExecCachedNotify(onAttempt func(int), query string, args ...sqldb.Value) (*sqldb.Result, error) {
	return p.Prepare(query).ExecNotify(onAttempt, args...)
}

// Prepare returns the pool's shared handle for query. No network traffic
// happens here: each connection registers the statement on first execute,
// so a Stmt may be created once at startup and used from any goroutine.
func (p *Pool) Prepare(query string) *Stmt {
	p.mu.RLock()
	s, ok := p.stmts[query]
	p.mu.RUnlock()
	if ok {
		return s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.stmts[query]; ok {
		return s
	}
	s = &Stmt{p: p, query: query, retry: retryableStmt(query)}
	p.stmts[query] = s
	return s
}

// Stmt is a pool-level prepared statement: the query text plus the pool to
// run it on. Statement ids live on the individual connections, so the
// statement survives connection churn — a recycled or freshly dialed
// connection transparently re-prepares on its next execute.
type Stmt struct {
	p     *Pool
	query string
	retry bool
}

// Query returns the statement's SQL text.
func (s *Stmt) Query() string { return s.query }

// retryableStmt reports whether a statement may safely run twice. Only
// idempotent statements absorb a stale pooled connection with a retry: a
// write retried after a transport failure could double-apply if the server
// had already executed it before the connection died. (LOCK/UNLOCK TABLES
// are safe: the dead connection's session lock set was released with it.)
func retryableStmt(query string) bool {
	q := strings.TrimSpace(query)
	i := 0
	for i < len(q) && q[i] != ' ' && q[i] != '\t' && q[i] != '\n' {
		i++
	}
	switch strings.ToUpper(q[:i]) {
	case "SELECT", "LOCK", "UNLOCK":
		return true
	}
	return false
}

// Exec borrows a connection and runs the statement by id, preparing it on
// that connection first when needed. For idempotent statements a transport
// failure discards the broken connection and retries once on a fresh one;
// because statement ids are per-connection state carried by the Conn
// itself, the retry re-prepares from scratch rather than executing a stale
// id. Writes are never retried (the text path never did either): the
// server may have applied the statement before the connection died.
func (s *Stmt) Exec(args ...sqldb.Value) (*sqldb.Result, error) {
	return s.ExecNotify(nil, args...)
}

// ExecNotify is Exec with a per-attempt hook: onAttempt (when non-nil) runs
// just before every try, including the retry a stale connection triggers.
// The cluster's cached-read path uses it to re-capture its cache-version
// stamp for the attempt that actually produces the rows.
func (s *Stmt) ExecNotify(onAttempt func(int), args ...sqldb.Value) (*sqldb.Result, error) {
	var res *sqldb.Result
	err := s.p.p.DoNotify(s.retry, func(err error) bool { return !IsServerError(err) },
		onAttempt,
		func(c *Conn) error {
			var err error
			res, err = c.ExecCached(s.query, args...)
			return err
		})
	if errors.Is(err, pool.ErrClosed) {
		return nil, errors.New("wire: pool closed")
	}
	return res, err
}

// Stats snapshots the pool's saturation counters.
func (p *Pool) Stats() pool.Stats { return p.p.Stats() }

// InUse returns the number of borrowed connections — the cluster read
// router's load gauge.
func (p *Pool) InUse() int { return p.p.InUse() }

// Reset discards the idle connections (they are stale after the server
// restarted); borrowers dial fresh and transparently re-prepare.
func (p *Pool) Reset() { p.p.Reset() }

// Close closes idle connections and marks the pool closed. Borrowed
// connections are closed as they are returned.
func (p *Pool) Close() { p.p.Close() }
