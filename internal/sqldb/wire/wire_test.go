package wire

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sqldb"
)

func startServer(t *testing.T) (*sqldb.DB, string) {
	t.Helper()
	db := sqldb.New()
	s := db.NewSession()
	defer s.Close()
	for _, q := range []string{
		"CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(50))",
		"INSERT INTO kv VALUES (1, 'one'), (2, 'two')",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return db, addr.String()
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := writeFrame(&buf, msgQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil || typ != msgQuery || string(got) != "hello world" {
		t.Fatalf("roundtrip: %v %x %q", err, typ, got)
	}
}

func TestQueryEncodingRoundtrip(t *testing.T) {
	args := []sqldb.Value{sqldb.Int(-7), sqldb.Float(2.5), sqldb.String("x"), sqldb.Null()}
	var e enc
	encodeQuery(&e, "SELECT 1", args)
	q, got, err := decodeQuery(e.b)
	if err != nil || q != "SELECT 1" || len(got) != 4 {
		t.Fatalf("roundtrip: %v %q %v", err, q, got)
	}
	if got[0].AsInt() != -7 || got[1].AsFloat() != 2.5 || got[2].AsString() != "x" || !got[3].IsNull() {
		t.Fatalf("args: %v", got)
	}
}

func TestPreparedFrameRoundtrips(t *testing.T) {
	var e enc
	encodePrepare(&e, 42, "SELECT ?")
	id, q, err := decodePrepare(e.b)
	if err != nil || id != 42 || q != "SELECT ?" {
		t.Fatalf("prepare roundtrip: %v %d %q", err, id, q)
	}
	e = enc{}
	encodeExecStmt(&e, 7, []sqldb.Value{sqldb.Int(3), sqldb.String("y")})
	id, args, err := decodeExecStmt(e.b)
	if err != nil || id != 7 || len(args) != 2 || args[0].AsInt() != 3 || args[1].AsString() != "y" {
		t.Fatalf("exec roundtrip: %v %d %v", err, id, args)
	}
	e = enc{}
	encodeCloseStmt(&e, 9)
	id, err = decodeCloseStmt(e.b)
	if err != nil || id != 9 {
		t.Fatalf("close roundtrip: %v %d", err, id)
	}
}

func TestResultEncodingRoundtrip(t *testing.T) {
	in := &sqldb.Result{
		Columns:      []string{"a", "b"},
		Rows:         []sqldb.Row{{sqldb.Int(1), sqldb.String("x")}, {sqldb.Null(), sqldb.Float(3.25)}},
		RowsAffected: 5,
		LastInsertID: 42,
	}
	var e enc
	encodeResult(&e, in)
	out, err := decodeResult(e.b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.RowsAffected != 5 || out.LastInsertID != 42 || len(out.Rows) != 2 {
		t.Fatalf("out: %+v", out)
	}
	if !out.Rows[0][0].IsNull() && out.Rows[0][0].AsInt() != 1 {
		t.Fatalf("row: %+v", out.Rows[0])
	}
	if out.Rows[1][1].AsFloat() != 3.25 {
		t.Fatalf("row: %+v", out.Rows[1])
	}
}

// Property: result encoding roundtrips for arbitrary scalar tables.
func TestResultRoundtripProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		in := &sqldb.Result{Columns: []string{"i", "s"}}
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			in.Rows = append(in.Rows, sqldb.Row{sqldb.Int(ints[i]), sqldb.String(strs[i])})
		}
		var e enc
		encodeResult(&e, in)
		out, err := decodeResult(e.b, nil)
		if err != nil || len(out.Rows) != len(in.Rows) {
			return false
		}
		for i := range in.Rows {
			if out.Rows[i][0].AsInt() != in.Rows[i][0].AsInt() ||
				out.Rows[i][1].AsString() != in.Rows[i][1].AsString() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := decodeResult([]byte{1, 2, 3}, nil); err == nil {
		t.Fatal("truncated result must error")
	}
	if _, _, err := decodeQuery([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage query must error")
	}
}

func TestClientServerQuery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("SELECT v FROM kv WHERE k = ?", sqldb.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "two" {
		t.Fatalf("rows: %+v", res.Rows)
	}
}

func TestClientServerWrite(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("INSERT INTO kv VALUES (3, 'three')")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("insert: %v %+v", err, res)
	}
	res, err = c.Exec("UPDATE kv SET v = 'THREE' WHERE k = 3")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v %+v", err, res)
	}
}

func TestServerErrorKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT nope FROM kv")
	if err == nil || !IsServerError(err) {
		t.Fatalf("want server error, got %v", err)
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error should mention column: %v", err)
	}
	// Connection must still work.
	if _, err := c.Exec("SELECT k FROM kv"); err != nil {
		t.Fatalf("connection unusable after server error: %v", err)
	}
}

func TestLockTablesPerConnection(t *testing.T) {
	_, addr := startServer(t)
	c1, _ := Dial(addr)
	defer c1.Close()
	c2, _ := Dial(addr)
	defer c2.Close()
	if _, err := c1.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatal(err)
	}
	// c2's read must block until c1 unlocks; verify via goroutine ordering.
	got := make(chan error, 1)
	go func() {
		_, err := c2.Exec("SELECT COUNT(*) FROM kv")
		got <- err
	}()
	if _, err := c1.Exec("INSERT INTO kv VALUES (9, 'nine')"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("UNLOCK TABLES"); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("blocked reader failed: %v", err)
	}
}

func TestDisconnectReleasesLocks(t *testing.T) {
	_, addr := startServer(t)
	c1, _ := Dial(addr)
	if _, err := c1.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatal(err)
	}
	c1.Close() // server must release the session's locks
	c2, _ := Dial(addr)
	defer c2.Close()
	if _, err := c2.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatalf("lock after disconnect: %v", err)
	}
	c2.Exec("UNLOCK TABLES")
}

func TestPoolConcurrentUse(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 4)
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Exec("INSERT INTO kv VALUES (?, ?)",
				sqldb.Int(int64(100+i)), sqldb.String("v")); err != nil {
				t.Errorf("pool exec: %v", err)
			}
		}()
	}
	wg.Wait()
	res, err := p.Exec("SELECT COUNT(*) FROM kv WHERE k >= 100")
	if err != nil || res.Rows[0][0].AsInt() != 16 {
		t.Fatalf("count: %v %+v", err, res)
	}
}

func TestPoolBoundsConnections(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 2)
	defer p.Close()
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	acquired := make(chan *Conn)
	go func() {
		c, err := p.Get() // must block until a Put
		if err != nil {
			t.Errorf("get: %v", err)
		}
		acquired <- c
	}()
	select {
	case <-acquired:
		t.Fatal("third Get should have blocked on a size-2 pool")
	default:
	}
	go func() { <-release; p.Put(a, false) }()
	close(release)
	c := <-acquired
	p.Put(b, false)
	p.Put(c, false)
}

func TestConnExecCached(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const q = "SELECT v FROM kv WHERE k = ?"
	for i := 0; i < 3; i++ {
		res, err := c.ExecCached(q, sqldb.Int(1))
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "one" {
			t.Fatalf("exec %d rows: %+v", i, res.Rows)
		}
	}
	if len(c.stmts) != 1 {
		t.Fatalf("want one cached statement, have %d", len(c.stmts))
	}
	if err := c.CloseStmt(q); err != nil {
		t.Fatalf("close stmt: %v", err)
	}
	// After CLOSE-STMT the id is gone on both ends; the next ExecCached
	// must silently re-prepare.
	if _, err := c.ExecCached(q, sqldb.Int(2)); err != nil {
		t.Fatalf("exec after close: %v", err)
	}
}

func TestExecPreparedUnknownID(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ExecPrepared(999)
	if err == nil || !IsServerError(err) || !strings.Contains(err.Error(), "unknown statement id") {
		t.Fatalf("want unknown-statement server error, got %v", err)
	}
	// The connection must remain usable.
	if _, err := c.Exec("SELECT k FROM kv"); err != nil {
		t.Fatalf("connection unusable: %v", err)
	}
}

func TestExecCachedParseErrorKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ExecCached("SELEKT broken")
	if err == nil || !IsServerError(err) {
		t.Fatalf("want server error from pipelined PREPARE, got %v", err)
	}
	if len(c.stmts) != 0 {
		t.Fatalf("failed prepare must not be cached: %v", c.stmts)
	}
	// The pipelined EXECUTE's error response must have been drained: the
	// stream stays in lockstep.
	res, err := c.ExecCached("SELECT v FROM kv WHERE k = ?", sqldb.Int(2))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "two" {
		t.Fatalf("connection out of sync after prepare failure: %v %+v", err, res)
	}
}

// TestTextProtocolBackwardCompat drives the server with raw v1 frames — the
// exact bytes a pre-v2 client emits — proving old clients still work
// against the new server.
func TestTextProtocolBackwardCompat(t *testing.T) {
	_, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var e enc
	e.str("SELECT v FROM kv WHERE k = ?")
	e.u32(1)
	e.value(sqldb.Int(1))
	if err := writeFrame(nc, msgQuery, e.b); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(nc)
	if err != nil || typ != msgResult {
		t.Fatalf("v1 exchange: %v type=0x%x", err, typ)
	}
	res, err := decodeResult(payload, nil)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "one" {
		t.Fatalf("v1 result: %v %+v", err, res)
	}
}

func TestPoolStmtExec(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 2)
	defer p.Close()
	stmt := p.Prepare("SELECT v FROM kv WHERE k = ?")
	if again := p.Prepare("SELECT v FROM kv WHERE k = ?"); again != stmt {
		t.Fatal("Prepare must return the shared statement handle")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				res, err := stmt.Exec(sqldb.Int(2))
				if err != nil {
					t.Errorf("stmt exec: %v", err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "two" {
					t.Errorf("stmt rows: %+v", res.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStmtReconnectReprepares is the regression test for the stale-
// connection retry: after every pooled connection dies with the server,
// Stmt.Exec must re-establish statement ids on the replacement connection
// instead of failing with "unknown statement id".
func TestStmtReconnectReprepares(t *testing.T) {
	db := sqldb.New()
	s := db.NewSession()
	for _, q := range []string{
		"CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(50))",
		"INSERT INTO kv VALUES (1, 'one')",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(addr.String(), 1)
	defer p.Close()
	stmt := p.Prepare("SELECT v FROM kv WHERE k = ?")
	if _, err := stmt.Exec(sqldb.Int(1)); err != nil {
		t.Fatalf("first exec: %v", err)
	}
	// Kill the server (dropping the connection holding the statement id)
	// and restart it on the same port: the pooled connection is now stale.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(db, nil)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { srv2.Close() })
	res, err := stmt.Exec(sqldb.Int(1))
	if err != nil {
		t.Fatalf("exec after reconnect: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "one" {
		t.Fatalf("rows after reconnect: %+v", res.Rows)
	}
	if st := p.Stats(); st.Retries != 1 || st.Discards != 1 {
		t.Fatalf("want 1 retry / 1 discard, got %+v", st)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	db := sqldb.New()
	srv := NewServer(db, nil)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsInFlight: Shutdown must hang up idle connections
// immediately, but let a connection that is mid-statement finish and
// receive its answer — the SIGTERM drain dbserver and the cluster rely on.
func TestShutdownDrainsInFlight(t *testing.T) {
	db := sqldb.New()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(50))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kv VALUES (1, 'one')"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Connection A holds the table write-locked, then goes idle.
	a, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatal(err)
	}

	// Connection B's SELECT blocks on A's lock: it is in flight when the
	// drain starts.
	type reply struct {
		res *sqldb.Result
		err error
	}
	b, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make(chan reply, 1)
	go func() {
		res, err := b.Exec("SELECT v FROM kv WHERE k = 1")
		got <- reply{res, err}
	}()
	time.Sleep(100 * time.Millisecond) // let B's request reach the server

	// Drain: A is idle, so it is hung up at once — releasing its session
	// locks — and B's in-flight SELECT completes and is answered.
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight statement must be answered through the drain: %v", r.err)
	}
	if len(r.res.Rows) != 1 || r.res.Rows[0][0].AsString() != "one" {
		t.Fatalf("drained reply rows: %+v", r.res.Rows)
	}
	// Both connections are gone afterwards.
	if _, err := a.Exec("UNLOCK TABLES"); err == nil {
		t.Fatal("idle connection must be closed by the drain")
	}
	if _, err := b.Exec("SELECT v FROM kv WHERE k = 1"); err == nil {
		t.Fatal("drained connection must be closed after its in-flight reply")
	}
}

// TestTxnOverWire drives the v3 frames end to end: pipelined BEGIN, writes,
// COMMIT persisting and ROLLBACK restoring, per connection.
func TestTxnOverWire(t *testing.T) {
	db, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	// The BEGIN reply is drained transparently before this statement's own.
	if _, err := c.ExecCached("INSERT INTO kv VALUES (?, ?)", sqldb.Int(3), sqldb.String("three")); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecCached("UPDATE kv SET v = ? WHERE k = ?", sqldb.String("mutated"), sqldb.Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("DELETE FROM kv WHERE k = 2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rollback(); err != nil {
		t.Fatal(err)
	}

	sess := db.NewSession()
	defer sess.Close()
	res, err := sess.Exec("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	want := `[[1 "one"] [2 "two"] [3 "three"]]`
	if got := valuesString(res.Rows); got != want {
		t.Fatalf("kv after commit+rollback: %s, want %s", got, want)
	}
	st := db.TxnStats()
	if st.Begins != 2 || st.Commits != 1 || st.Rollbacks != 1 {
		t.Fatalf("txn stats %+v", st)
	}
}

// TestConnDropRollsBackTxn: a connection dying mid-transaction must leave
// no trace — the server session's auto-ROLLBACK.
func TestConnDropRollsBackTxn(t *testing.T) {
	db, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO kv VALUES (9, 'orphan')"); err != nil {
		t.Fatal(err)
	}
	c.Close() // dies without COMMIT

	sess := db.NewSession()
	defer sess.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		res, err := sess.Exec("SELECT COUNT(*) FROM kv WHERE k = 9")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].AsInt() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("orphaned transaction not rolled back after connection drop")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownAbortsInFlightTxn is the drain regression test: Shutdown must
// abort (roll back) transactions still open on draining connections, not
// just answer in-flight statements.
func TestShutdownAbortsInFlightTxn(t *testing.T) {
	db := sqldb.New()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(50))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kv VALUES (1, 'one')"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The connection opens a transaction, mutates, and goes idle without
	// committing — the state a client pause leaves mid-checkout.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("UPDATE kv SET v = 'dirty' WHERE k = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO kv VALUES (2, 'uncommitted')"); err != nil {
		t.Fatal(err)
	}

	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	defer sess.Close()
	res, err := sess.Exec("SELECT k, v FROM kv ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if got := valuesString(res.Rows); got != `[[1 "one"]]` {
		t.Fatalf("shutdown kept uncommitted transaction state: %s", got)
	}
	if db.TxnStats().Rollbacks != 1 {
		t.Fatalf("rollbacks %d, want 1", db.TxnStats().Rollbacks)
	}
}

func valuesString(rows []sqldb.Row) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, r := range rows {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for j, v := range r {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.String())
		}
		b.WriteByte(']')
	}
	b.WriteByte(']')
	return b.String()
}

// TestPrepareTxnFrame: the v4 PREPARE-TXN frame must bring the open
// transaction to the prepared state (further statements rejected) and
// COMMIT must then publish it; outside a transaction it is a server error.
func TestPrepareTxnFrame(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.PrepareTxn(); err == nil || !IsServerError(err) {
		t.Fatalf("PREPARE-TXN outside a transaction: err = %v, want server error", err)
	}
	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO kv VALUES (3, 'three')"); err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareTxn(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO kv VALUES (4, 'four')"); err == nil ||
		!strings.Contains(err.Error(), "prepared") {
		t.Fatalf("statement on a prepared transaction: err = %v", err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("SELECT v FROM kv WHERE k = 3")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].AsString() != "three" {
		t.Fatalf("prepared transaction did not commit: %v %v", err, res)
	}
}

// TestExecNotifyFiresPerAttempt: the per-attempt hook must fire before
// every try, including the retry a stale pooled connection triggers — the
// contract the cluster's query cache relies on to re-capture its version
// stamp for the attempt that actually produced the rows.
func TestExecNotifyFiresPerAttempt(t *testing.T) {
	db := sqldb.New()
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(50))"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO kv VALUES (1, 'one')"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	p := NewPool(addr.String(), 1)
	defer p.Close()
	stmt := p.Prepare("SELECT v FROM kv WHERE k = ?")
	if _, err := stmt.Exec(sqldb.Int(1)); err != nil {
		t.Fatal(err)
	}

	// Kill the server: the pool's idle connection is now stale. Rebind the
	// same address over the same database, so the retry's fresh dial lands.
	srv.Close()
	srv2 := NewServer(db, nil)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	var attempts []int
	res, err := stmt.ExecNotify(func(n int) { attempts = append(attempts, n) }, sqldb.Int(1))
	if err != nil {
		t.Fatalf("retried exec: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "one" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if len(attempts) != 2 || attempts[0] != 0 || attempts[1] != 1 {
		t.Fatalf("onAttempt calls = %v, want [0 1] (hook must fire before the retry too)", attempts)
	}
}
