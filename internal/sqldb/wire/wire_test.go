package wire

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sqldb"
)

func startServer(t *testing.T) (*sqldb.DB, string) {
	t.Helper()
	db := sqldb.New()
	s := db.NewSession()
	defer s.Close()
	for _, q := range []string{
		"CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(50))",
		"INSERT INTO kv VALUES (1, 'one'), (2, 'two')",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return db, addr.String()
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello world")
	if err := writeFrame(&buf, msgQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := readFrame(&buf)
	if err != nil || typ != msgQuery || string(got) != "hello world" {
		t.Fatalf("roundtrip: %v %x %q", err, typ, got)
	}
}

func TestQueryEncodingRoundtrip(t *testing.T) {
	args := []sqldb.Value{sqldb.Int(-7), sqldb.Float(2.5), sqldb.String("x"), sqldb.Null()}
	q, got, err := decodeQuery(encodeQuery("SELECT 1", args))
	if err != nil || q != "SELECT 1" || len(got) != 4 {
		t.Fatalf("roundtrip: %v %q %v", err, q, got)
	}
	if got[0].AsInt() != -7 || got[1].AsFloat() != 2.5 || got[2].AsString() != "x" || !got[3].IsNull() {
		t.Fatalf("args: %v", got)
	}
}

func TestResultEncodingRoundtrip(t *testing.T) {
	in := &sqldb.Result{
		Columns:      []string{"a", "b"},
		Rows:         []sqldb.Row{{sqldb.Int(1), sqldb.String("x")}, {sqldb.Null(), sqldb.Float(3.25)}},
		RowsAffected: 5,
		LastInsertID: 42,
	}
	out, err := decodeResult(encodeResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.RowsAffected != 5 || out.LastInsertID != 42 || len(out.Rows) != 2 {
		t.Fatalf("out: %+v", out)
	}
	if !out.Rows[0][0].IsNull() && out.Rows[0][0].AsInt() != 1 {
		t.Fatalf("row: %+v", out.Rows[0])
	}
	if out.Rows[1][1].AsFloat() != 3.25 {
		t.Fatalf("row: %+v", out.Rows[1])
	}
}

// Property: result encoding roundtrips for arbitrary scalar tables.
func TestResultRoundtripProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		in := &sqldb.Result{Columns: []string{"i", "s"}}
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		for i := 0; i < n; i++ {
			in.Rows = append(in.Rows, sqldb.Row{sqldb.Int(ints[i]), sqldb.String(strs[i])})
		}
		out, err := decodeResult(encodeResult(in))
		if err != nil || len(out.Rows) != len(in.Rows) {
			return false
		}
		for i := range in.Rows {
			if out.Rows[i][0].AsInt() != in.Rows[i][0].AsInt() ||
				out.Rows[i][1].AsString() != in.Rows[i][1].AsString() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := decodeResult([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated result must error")
	}
	if _, _, err := decodeQuery([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("garbage query must error")
	}
}

func TestClientServerQuery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("SELECT v FROM kv WHERE k = ?", sqldb.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "two" {
		t.Fatalf("rows: %+v", res.Rows)
	}
}

func TestClientServerWrite(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Exec("INSERT INTO kv VALUES (3, 'three')")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("insert: %v %+v", err, res)
	}
	res, err = c.Exec("UPDATE kv SET v = 'THREE' WHERE k = 3")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v %+v", err, res)
	}
}

func TestServerErrorKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Exec("SELECT nope FROM kv")
	if err == nil || !IsServerError(err) {
		t.Fatalf("want server error, got %v", err)
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Fatalf("error should mention column: %v", err)
	}
	// Connection must still work.
	if _, err := c.Exec("SELECT k FROM kv"); err != nil {
		t.Fatalf("connection unusable after server error: %v", err)
	}
}

func TestLockTablesPerConnection(t *testing.T) {
	_, addr := startServer(t)
	c1, _ := Dial(addr)
	defer c1.Close()
	c2, _ := Dial(addr)
	defer c2.Close()
	if _, err := c1.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatal(err)
	}
	// c2's read must block until c1 unlocks; verify via goroutine ordering.
	got := make(chan error, 1)
	go func() {
		_, err := c2.Exec("SELECT COUNT(*) FROM kv")
		got <- err
	}()
	if _, err := c1.Exec("INSERT INTO kv VALUES (9, 'nine')"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("UNLOCK TABLES"); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("blocked reader failed: %v", err)
	}
}

func TestDisconnectReleasesLocks(t *testing.T) {
	_, addr := startServer(t)
	c1, _ := Dial(addr)
	if _, err := c1.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatal(err)
	}
	c1.Close() // server must release the session's locks
	c2, _ := Dial(addr)
	defer c2.Close()
	if _, err := c2.Exec("LOCK TABLES kv WRITE"); err != nil {
		t.Fatalf("lock after disconnect: %v", err)
	}
	c2.Exec("UNLOCK TABLES")
}

func TestPoolConcurrentUse(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 4)
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Exec("INSERT INTO kv VALUES (?, ?)",
				sqldb.Int(int64(100+i)), sqldb.String("v")); err != nil {
				t.Errorf("pool exec: %v", err)
			}
		}()
	}
	wg.Wait()
	res, err := p.Exec("SELECT COUNT(*) FROM kv WHERE k >= 100")
	if err != nil || res.Rows[0][0].AsInt() != 16 {
		t.Fatalf("count: %v %+v", err, res)
	}
}

func TestPoolBoundsConnections(t *testing.T) {
	_, addr := startServer(t)
	p := NewPool(addr, 2)
	defer p.Close()
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	acquired := make(chan *Conn)
	go func() {
		c, err := p.Get() // must block until a Put
		if err != nil {
			t.Errorf("get: %v", err)
		}
		acquired <- c
	}()
	select {
	case <-acquired:
		t.Fatal("third Get should have blocked on a size-2 pool")
	default:
	}
	go func() { <-release; p.Put(a, false) }()
	close(release)
	c := <-acquired
	p.Put(b, false)
	p.Put(c, false)
}

func TestServerCloseIdempotent(t *testing.T) {
	db := sqldb.New()
	srv := NewServer(db, nil)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
