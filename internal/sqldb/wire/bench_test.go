package wire

import (
	"testing"

	"repro/internal/sqldb"
)

// benchServer builds a bookstore-shaped schema: the product-detail lookup
// (single-row SELECT with a JOIN) is the representative hot statement of
// the TPC-W mixes.
func benchServer(b *testing.B) string {
	b.Helper()
	db := sqldb.New()
	s := db.NewSession()
	defer s.Close()
	stmts := []string{
		`CREATE TABLE authors (id INT PRIMARY KEY AUTO_INCREMENT, lname VARCHAR(50))`,
		`CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, title VARCHAR(100),
			author_id INT, cost FLOAT)`,
		`CREATE INDEX idx_items_author ON items (author_id)`,
	}
	for _, q := range stmts {
		if _, err := s.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i <= 64; i++ {
		if _, err := s.Exec("INSERT INTO authors (lname) VALUES (?)",
			sqldb.String("author")); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Exec("INSERT INTO items (title, author_id, cost) VALUES (?, ?, ?)",
			sqldb.String("a fairly representative book title"),
			sqldb.Int(int64(i)), sqldb.Float(19.99)); err != nil {
			b.Fatal(err)
		}
	}
	srv := NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	return addr.String()
}

const benchQuery = `SELECT i.id, i.title, a.lname, i.cost
	 FROM items i JOIN authors a ON a.id = i.author_id WHERE i.id = ?`

// BenchmarkExecText is the v1 path: full SQL text on every round trip,
// parsed server-side (through the plan cache) per request.
func BenchmarkExecText(b *testing.B) {
	addr := benchServer(b)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Exec(benchQuery, sqldb.Int(int64(1+i%64)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows: %+v", res.Rows)
		}
	}
}

// BenchmarkExecPrepared is the v2 fast path: EXECUTE-by-id, no SQL text and
// no parse after the first use.
func BenchmarkExecPrepared(b *testing.B) {
	addr := benchServer(b)
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ExecCached(benchQuery, sqldb.Int(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.ExecCached(benchQuery, sqldb.Int(int64(1+i%64)))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows: %+v", res.Rows)
		}
	}
}

// BenchmarkPoolExecPrepared measures the pooled fast path the application
// tiers actually use (borrow + EXECUTE-by-id + return).
func BenchmarkPoolExecPrepared(b *testing.B) {
	addr := benchServer(b)
	p := NewPool(addr, 4)
	defer p.Close()
	stmt := p.Prepare(benchQuery)
	if _, err := stmt.Exec(sqldb.Int(1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(sqldb.Int(int64(1 + i%64))); err != nil {
			b.Fatal(err)
		}
	}
}
