// Package wire exposes a sqldb.DB over TCP with a compact length-prefixed
// binary protocol, standing in for the MySQL client protocol of the paper's
// testbed. The Client plays the role of PHP's native driver and of the
// MM-MySQL type-4 JDBC driver; Pool provides the engine-side connection
// pooling that Tomcat and JOnAS configure in the original system.
//
// Protocol v2 adds a prepared-statement fast path alongside the v1 text
// query frame: PREPARE registers a statement under a client-assigned id on
// the connection's server session, EXECUTE-by-id runs it with bound
// arguments without re-sending (or re-parsing) the SQL text, and
// CLOSE-STMT retires the id. v1 clients that only ever send msgQuery remain
// fully supported — the frame layout and the text-query exchange are
// unchanged.
//
// Protocol v3 adds transaction control: BEGIN / COMMIT / ROLLBACK frames
// with empty payloads operating on the connection's server session. The
// client pipelines BEGIN with the transaction's first statement (one round
// trip opens the transaction and runs it), and the server rolls back any
// transaction still open when a connection drops — so a dying client can
// never publish half a transaction. v1/v2 clients remain wire-compatible,
// and the statements also parse as SQL text for clients that prefer the
// query frame.
//
// Protocol v4 adds PREPARE-TXN, phase one of two-phase commit for the
// sharded cluster: an empty-payload frame that brings the connection's open
// transaction to the prepared state (every statement applied, every lock
// held) and latches out further statements until COMMIT or ROLLBACK. The
// reply is msgTxnOK, like the other transaction-control frames. v3 and
// older clients never send it and remain fully compatible.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/sqldb"
)

// Frame layout: 4-byte big-endian payload length, 1-byte type, payload.
//
// Requests:
//
//	msgQuery     query string, arg count, args      -> msgResult | msgError
//	msgPrepare   u32 stmt id, query string          -> msgPrepOK | msgError
//	msgExecStmt  u32 stmt id, arg count, args       -> msgResult | msgError
//	msgCloseStmt u32 stmt id                        -> msgPrepOK | msgError
//	msgBegin      (empty)                           -> msgTxnOK | msgError
//	msgCommit     (empty)                           -> msgTxnOK | msgError
//	msgRollback   (empty)                           -> msgTxnOK | msgError
//	msgPrepareTxn (empty)                           -> msgTxnOK | msgError
//
// Statement ids are assigned by the client and scoped to the connection, so
// a PREPARE and its first EXECUTE pipeline into a single round trip — and
// so does a BEGIN with its transaction's first statement.
const (
	msgQuery      = 0x01
	msgPrepare    = 0x02
	msgExecStmt   = 0x03
	msgCloseStmt  = 0x04
	msgBegin      = 0x05
	msgCommit     = 0x06
	msgRollback   = 0x07
	msgPrepareTxn = 0x08
	msgResult     = 0x81
	msgError      = 0x82
	msgPrepOK     = 0x83
	msgTxnOK      = 0x84
	maxFrameLen   = 16 << 20

	// maxStmtsPerConn bounds one connection's prepared-statement table —
	// both benchmarks together need a few dozen; the cap only stops a
	// pathological client from pinning unlimited ASTs server-side.
	maxStmtsPerConn = 4096
)

// value tags on the wire.
const (
	tagNull   = 0
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
)

// writeFrame emits one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	if len(payload) > maxFrameLen {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame into a fresh buffer.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var fb frameBuf
	return fb.read(r)
}

// frameBuf reads frames into a buffer reused across calls, so a long-lived
// connection stops allocating per request once the buffer reaches the
// conversation's working-set size. Decoded payloads alias the buffer and
// are only valid until the next read; every decode function below copies
// what it keeps (string() conversions and value constructors copy).
type frameBuf struct{ b []byte }

func (fb *frameBuf) read(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:4]))
	if n > maxFrameLen {
		return 0, nil, fmt.Errorf("wire: oversized frame (%d bytes)", n)
	}
	if cap(fb.b) < n {
		fb.b = make([]byte, n)
	}
	payload = fb.b[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// enc is an append-style encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func (e *enc) value(v sqldb.Value) {
	switch v.Kind() {
	case sqldb.KindNull:
		e.b = append(e.b, tagNull)
	case sqldb.KindInt:
		e.b = append(e.b, tagInt)
		e.u64(uint64(v.AsInt()))
	case sqldb.KindFloat:
		e.b = append(e.b, tagFloat)
		e.u64(math.Float64bits(v.AsFloat()))
	default:
		e.b = append(e.b, tagString)
		e.str(v.AsString())
	}
}

// encPool recycles encoder buffers across requests; the frame is written
// out before the encoder is returned, so buffers never escape.
var encPool = sync.Pool{New: func() any { return &enc{b: make([]byte, 0, 1024)} }}

// maxPooledEnc keeps the occasional huge result from pinning memory.
const maxPooledEnc = 1 << 20

func getEnc() *enc { return encPool.Get().(*enc) }

func putEnc(e *enc) {
	if cap(e.b) > maxPooledEnc {
		return
	}
	e.b = e.b[:0]
	encPool.Put(e)
}

// dec is a cursor-style decoder.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: %s at offset %d", msg, d.off)
	}
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) str() string { return string(d.strBytes()) }

// strBytes returns the next length-prefixed string's bytes without the
// string conversion. The slice aliases the frame buffer and is only valid
// until the next frame read; callers that keep it must copy.
func (d *dec) strBytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.b) || n < 0 {
		d.fail("truncated string")
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) value() sqldb.Value {
	switch d.byte() {
	case tagNull:
		return sqldb.Null()
	case tagInt:
		return sqldb.Int(int64(d.u64()))
	case tagFloat:
		return sqldb.Float(math.Float64frombits(d.u64()))
	case tagString:
		return sqldb.String(d.str())
	default:
		d.fail("unknown value tag")
		return sqldb.Null()
	}
}

// args decodes an argument vector (count-prefixed values).
func (d *dec) args() []sqldb.Value {
	n := int(d.u32())
	if n > 1<<16 {
		d.fail("absurd arg count")
		return nil
	}
	if n == 0 {
		return nil
	}
	args := make([]sqldb.Value, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		args = append(args, d.value())
	}
	return args
}

// encodeQuery appends a text-query request payload.
func encodeQuery(e *enc, query string, args []sqldb.Value) {
	e.str(query)
	e.u32(uint32(len(args)))
	for _, a := range args {
		e.value(a)
	}
}

// decodeQuery parses a text-query request payload.
func decodeQuery(p []byte) (string, []sqldb.Value, error) {
	d := &dec{b: p}
	q := d.str()
	args := d.args()
	return q, args, d.err
}

// encodePrepare appends a PREPARE payload.
func encodePrepare(e *enc, id uint32, query string) {
	e.u32(id)
	e.str(query)
}

// decodePrepare parses a PREPARE payload.
func decodePrepare(p []byte) (uint32, string, error) {
	d := &dec{b: p}
	id := d.u32()
	q := d.str()
	return id, q, d.err
}

// encodeExecStmt appends an EXECUTE-by-id payload.
func encodeExecStmt(e *enc, id uint32, args []sqldb.Value) {
	e.u32(id)
	e.u32(uint32(len(args)))
	for _, a := range args {
		e.value(a)
	}
}

// decodeExecStmt parses an EXECUTE-by-id payload.
func decodeExecStmt(p []byte) (uint32, []sqldb.Value, error) {
	d := &dec{b: p}
	id := d.u32()
	args := d.args()
	return id, args, d.err
}

// encodeCloseStmt appends a CLOSE-STMT payload.
func encodeCloseStmt(e *enc, id uint32) { e.u32(id) }

// decodeCloseStmt parses a CLOSE-STMT payload.
func decodeCloseStmt(p []byte) (uint32, error) {
	d := &dec{b: p}
	id := d.u32()
	return id, d.err
}

// encodeResult appends a result payload.
func encodeResult(e *enc, r *sqldb.Result) {
	e.u64(uint64(r.RowsAffected))
	e.u64(uint64(r.LastInsertID))
	e.u32(uint32(len(r.Columns)))
	for _, c := range r.Columns {
		e.str(c)
	}
	e.u32(uint32(len(r.Rows)))
	for _, row := range r.Rows {
		e.u32(uint32(len(row)))
		for _, v := range row {
			e.value(v)
		}
	}
}

// colCache remembers the previous response's column-name slice. A pooled
// client connection replays the same handful of statements, so almost every
// response's header is byte-identical to one seen before: reusing the prior
// []string (names compared against the frame bytes, no conversion) drops
// both the slice and the per-name string allocations from the hot path.
type colCache struct{ cols []string }

// decodeResult parses a result payload. Row values are carved from slab
// allocations rather than one slice per row — list pages decode 50 rows
// per response, and per-row allocs dominated the client-side profile.
// cc, when non-nil, caches column headers across responses (see colCache).
func decodeResult(p []byte, cc *colCache) (*sqldb.Result, error) {
	d := &dec{b: p}
	r := &sqldb.Result{
		RowsAffected: int64(d.u64()),
		LastInsertID: int64(d.u64()),
	}
	nc := int(d.u32())
	if nc > 1<<16 {
		return nil, fmt.Errorf("wire: absurd column count %d", nc)
	}
	switch {
	case nc == 0 || d.err != nil:
	case cc != nil && len(cc.cols) == nc:
		// Optimistically compare against the cached header; on the first
		// mismatch, materialize a fresh slice from the matched prefix.
		cols := cc.cols
		for i := 0; i < nc && d.err == nil; i++ {
			b := d.strBytes()
			if string(b) != cols[i] {
				fresh := make([]string, i, nc)
				copy(fresh, cols[:i])
				fresh = append(fresh, string(b))
				for j := i + 1; j < nc && d.err == nil; j++ {
					fresh = append(fresh, d.str())
				}
				cols = fresh
				break
			}
		}
		r.Columns = cols
		cc.cols = cols
	default:
		r.Columns = make([]string, 0, min(nc, len(p)/4))
		for i := 0; i < nc && d.err == nil; i++ {
			r.Columns = append(r.Columns, d.str())
		}
		if cc != nil {
			cc.cols = r.Columns
		}
	}
	nr := int(d.u32())
	if nr > maxFrameLen {
		return nil, fmt.Errorf("wire: absurd row count %d", nr)
	}
	if nr > 0 && d.err == nil {
		// Each encoded row is at least 4 bytes (its width prefix), which
		// bounds preallocation against a lying header.
		r.Rows = make([]sqldb.Row, 0, min(nr, len(p)/4))
	}
	var slab []sqldb.Value
	for i := 0; i < nr && d.err == nil; i++ {
		w := int(d.u32())
		if w > 1<<16 {
			return nil, fmt.Errorf("wire: absurd row width %d", w)
		}
		if w > len(slab) {
			// Size the slab from what is actually left to decode: the
			// remaining row count, capped both by a constant (bounds slab
			// size for huge results) and by the remaining payload bytes
			// (every encoded value is at least one byte, so a lying row
			// header cannot force a giant allocation). A single-row
			// point-lookup response allocates exactly one row's worth.
			n := (nr - i) * w
			if max := 16 * w; n > max {
				n = max
			}
			if left := len(d.b) - d.off; n > left {
				n = left
			}
			if n < w {
				n = w
			}
			slab = make([]sqldb.Value, n)
		}
		row := sqldb.Row(slab[:0:w])
		slab = slab[w:]
		for j := 0; j < w && d.err == nil; j++ {
			row = append(row, d.value())
		}
		r.Rows = append(r.Rows, row)
	}
	return r, d.err
}
