// Package wire exposes a sqldb.DB over TCP with a compact length-prefixed
// binary protocol, standing in for the MySQL client protocol of the paper's
// testbed. The Client plays the role of PHP's native driver and of the
// MM-MySQL type-4 JDBC driver; Pool provides the engine-side connection
// pooling that Tomcat and JOnAS configure in the original system.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/sqldb"
)

// Frame layout: 4-byte big-endian payload length, 1-byte type, payload.
// Request payload: query string, arg count, args. Response payload: result
// or error.
const (
	msgQuery    = 0x01
	msgResult   = 0x81
	msgError    = 0x82
	maxFrameLen = 16 << 20
)

// value tags on the wire.
const (
	tagNull   = 0
	tagInt    = 1
	tagFloat  = 2
	tagString = 3
)

// writeFrame emits one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	if len(payload) > maxFrameLen {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrameLen {
		return 0, nil, fmt.Errorf("wire: oversized frame (%d bytes)", n)
	}
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// enc is an append-style encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func (e *enc) value(v sqldb.Value) {
	switch v.Kind() {
	case sqldb.KindNull:
		e.b = append(e.b, tagNull)
	case sqldb.KindInt:
		e.b = append(e.b, tagInt)
		e.u64(uint64(v.AsInt()))
	case sqldb.KindFloat:
		e.b = append(e.b, tagFloat)
		e.u64(math.Float64bits(v.AsFloat()))
	default:
		e.b = append(e.b, tagString)
		e.str(v.AsString())
	}
}

// dec is a cursor-style decoder.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: %s at offset %d", msg, d.off)
	}
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) byte() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.b) || n < 0 {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) value() sqldb.Value {
	switch d.byte() {
	case tagNull:
		return sqldb.Null()
	case tagInt:
		return sqldb.Int(int64(d.u64()))
	case tagFloat:
		return sqldb.Float(math.Float64frombits(d.u64()))
	case tagString:
		return sqldb.String(d.str())
	default:
		d.fail("unknown value tag")
		return sqldb.Null()
	}
}

// encodeQuery builds a query request payload.
func encodeQuery(query string, args []sqldb.Value) []byte {
	var e enc
	e.str(query)
	e.u32(uint32(len(args)))
	for _, a := range args {
		e.value(a)
	}
	return e.b
}

// decodeQuery parses a query request payload.
func decodeQuery(p []byte) (string, []sqldb.Value, error) {
	d := &dec{b: p}
	q := d.str()
	n := int(d.u32())
	if n > 1<<16 {
		return "", nil, fmt.Errorf("wire: absurd arg count %d", n)
	}
	args := make([]sqldb.Value, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		args = append(args, d.value())
	}
	return q, args, d.err
}

// encodeResult builds a result payload.
func encodeResult(r *sqldb.Result) []byte {
	var e enc
	e.u64(uint64(r.RowsAffected))
	e.u64(uint64(r.LastInsertID))
	e.u32(uint32(len(r.Columns)))
	for _, c := range r.Columns {
		e.str(c)
	}
	e.u32(uint32(len(r.Rows)))
	for _, row := range r.Rows {
		e.u32(uint32(len(row)))
		for _, v := range row {
			e.value(v)
		}
	}
	return e.b
}

// decodeResult parses a result payload.
func decodeResult(p []byte) (*sqldb.Result, error) {
	d := &dec{b: p}
	r := &sqldb.Result{
		RowsAffected: int64(d.u64()),
		LastInsertID: int64(d.u64()),
	}
	nc := int(d.u32())
	if nc > 1<<16 {
		return nil, fmt.Errorf("wire: absurd column count %d", nc)
	}
	for i := 0; i < nc && d.err == nil; i++ {
		r.Columns = append(r.Columns, d.str())
	}
	nr := int(d.u32())
	if nr > maxFrameLen {
		return nil, fmt.Errorf("wire: absurd row count %d", nr)
	}
	for i := 0; i < nr && d.err == nil; i++ {
		w := int(d.u32())
		row := make(sqldb.Row, 0, w)
		for j := 0; j < w && d.err == nil; j++ {
			row = append(row, d.value())
		}
		r.Rows = append(r.Rows, row)
	}
	return r, d.err
}
