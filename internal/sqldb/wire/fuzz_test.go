package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/sqldb"
)

// FuzzFrameRoundTrip feeds arbitrary bytes through the framing layer and
// every payload decoder, across v1 (text query), v2 (prepared statements)
// and v3 (transaction control) frame types: any input must either decode
// cleanly or return an error — never panic, never over-read. Inputs that do
// decode are re-encoded and decoded again, and must survive the round trip
// unchanged.
func FuzzFrameRoundTrip(f *testing.F) {
	// Seed with one well-formed frame of each request type plus a result.
	seed := func(typ byte, build func(e *enc)) {
		e := &enc{}
		build(e)
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, e.b); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	args := []sqldb.Value{sqldb.Int(42), sqldb.String("x"), sqldb.Null(), sqldb.Float(1.5)}
	seed(msgQuery, func(e *enc) { encodeQuery(e, "SELECT * FROM kv WHERE k = ?", args) })
	seed(msgPrepare, func(e *enc) { encodePrepare(e, 7, "INSERT INTO kv VALUES (?, ?)") })
	seed(msgExecStmt, func(e *enc) { encodeExecStmt(e, 7, args) })
	seed(msgCloseStmt, func(e *enc) { encodeCloseStmt(e, 7) })
	seed(msgBegin, func(*enc) {})
	seed(msgCommit, func(*enc) {})
	seed(msgRollback, func(*enc) {})
	seed(msgResult, func(e *enc) {
		encodeResult(e, &sqldb.Result{
			Columns:      []string{"k", "v"},
			Rows:         []sqldb.Row{{sqldb.Int(1), sqldb.String("one")}},
			RowsAffected: 1, LastInsertID: 3,
		})
	})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var fb frameBuf
		typ, payload, err := fb.read(bytes.NewReader(data))
		if err != nil {
			return // truncated or oversized frame: a clean error is the contract
		}
		switch typ {
		case msgQuery:
			q, args, err := decodeQuery(payload)
			if err != nil {
				return
			}
			e := &enc{}
			encodeQuery(e, q, args)
			q2, args2, err := decodeQuery(e.b)
			if err != nil || q2 != q || len(args2) != len(args) {
				t.Fatalf("query round trip: %v (%q->%q, %d->%d args)", err, q, q2, len(args), len(args2))
			}
		case msgPrepare:
			id, q, err := decodePrepare(payload)
			if err != nil {
				return
			}
			e := &enc{}
			encodePrepare(e, id, q)
			id2, q2, err := decodePrepare(e.b)
			if err != nil || id2 != id || q2 != q {
				t.Fatalf("prepare round trip: %v", err)
			}
		case msgExecStmt:
			id, args, err := decodeExecStmt(payload)
			if err != nil {
				return
			}
			e := &enc{}
			encodeExecStmt(e, id, args)
			id2, args2, err := decodeExecStmt(e.b)
			if err != nil || id2 != id || len(args2) != len(args) {
				t.Fatalf("exec-stmt round trip: %v", err)
			}
		case msgCloseStmt:
			id, err := decodeCloseStmt(payload)
			if err != nil {
				return
			}
			e := &enc{}
			encodeCloseStmt(e, id)
			if id2, err := decodeCloseStmt(e.b); err != nil || id2 != id {
				t.Fatalf("close-stmt round trip: %v", err)
			}
		case msgBegin, msgCommit, msgRollback:
			// Transaction control frames carry no payload to decode; the
			// server ignores whatever rode along. Nothing to round-trip.
		case msgResult:
			r, err := decodeResult(payload, nil)
			if err != nil {
				return
			}
			e := &enc{}
			encodeResult(e, r)
			r2, err := decodeResult(e.b, nil)
			if err != nil {
				t.Fatalf("result re-decode: %v", err)
			}
			if len(r2.Rows) != len(r.Rows) || len(r2.Columns) != len(r.Columns) ||
				r2.RowsAffected != r.RowsAffected || r2.LastInsertID != r.LastInsertID {
				t.Fatalf("result round trip changed shape: %+v vs %+v", r, r2)
			}
		}
		// Whatever the payload was, a second frame read past it must not
		// panic either (the reader sees the remaining bytes).
		rest := bytes.NewReader(data)
		if _, err := io.CopyN(io.Discard, rest, int64(5+len(payload))); err == nil {
			var fb2 frameBuf
			_, _, _ = fb2.read(rest)
		}
	})
}
