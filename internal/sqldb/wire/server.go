package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb"
)

// Server serves a sqldb.DB over TCP. Each connection gets its own session,
// so LOCK TABLES state is per-connection, as in MySQL.
type Server struct {
	db     *sqldb.DB
	logger *log.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	shutdown chan struct{}
	wg       sync.WaitGroup

	queries atomic.Int64
}

// QueryCount returns the number of statements served — the database
// tier's work counter in the cross-tier telemetry.
func (s *Server) QueryCount() int64 { return s.queries.Load() }

// NewServer creates a server for db. logger may be nil to discard logs.
func NewServer(db *sqldb.DB, logger *log.Logger) *Server {
	return &Server{
		db:       db,
		logger:   logger,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("wire: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return
			default:
			}
			s.logf("accept: %v", err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	sess := s.db.NewSession()
	defer func() {
		sess.Close()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 32<<10)
	w := bufio.NewWriterSize(conn, 32<<10)
	for {
		typ, payload, err := readFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("read: %v", err)
			}
			return
		}
		if typ != msgQuery {
			s.logf("unexpected frame type 0x%x", typ)
			return
		}
		query, args, err := decodeQuery(payload)
		var out []byte
		var outTyp byte
		if err == nil {
			s.queries.Add(1)
			var res *sqldb.Result
			res, err = sess.Exec(query, args...)
			if err == nil {
				outTyp, out = msgResult, encodeResult(res)
			}
		}
		if err != nil {
			outTyp, out = msgError, []byte(err.Error())
		}
		if err := writeFrame(w, outTyp, out); err != nil {
			s.logf("write: %v", err)
			return
		}
		if err := w.Flush(); err != nil {
			s.logf("flush: %v", err)
			return
		}
	}
}

// Close stops accepting and closes every connection, releasing their locks.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.shutdown)
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf("wire: "+format, args...)
	}
}
