package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sqldb"
	"repro/internal/sqldb/sqlparse"
)

// Server serves a sqldb.DB over TCP. Each connection gets its own session,
// so LOCK TABLES state, open transactions and prepared statement ids (which
// map client-assigned u32s to ASTs held by the database's shared plan
// cache) are all per-connection, as in MySQL. A connection that drops — or
// is drained by Shutdown — rolls back its open transaction when its session
// closes.
type Server struct {
	db     *sqldb.DB
	logger *log.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining atomic.Bool
	shutdown chan struct{}
	wg       sync.WaitGroup
	connWG   sync.WaitGroup // connection goroutines only (drain waits here)

	queries       atomic.Int64
	textExecs     atomic.Int64
	preparedExecs atomic.Int64
	prepares      atomic.Int64
}

// QueryCount returns the number of statements served — the database
// tier's work counter in the cross-tier telemetry.
func (s *Server) QueryCount() int64 { return s.queries.Load() }

// Stats describes the database tier's protocol traffic for the cross-tier
// telemetry: total statements, split by arrival path, the shared plan
// cache's hit/miss counters, the transaction subsystem's
// commit/abort/deadlock counters, and the snapshot-read (MVCC) counters.
type Stats struct {
	Queries       int64 `json:"queries"`
	TextExecs     int64 `json:"text_execs"`
	PreparedExecs int64 `json:"prepared_execs"`
	Prepares      int64 `json:"prepares"`

	PlanCache sqldb.PlanCacheStats `json:"plan_cache"`
	Txns      sqldb.TxnStats       `json:"txns"`
	MVCC      sqldb.MVCCStats      `json:"mvcc"`
	WAL       sqldb.WALStats       `json:"wal"`
}

// Stats snapshots the server.
func (s *Server) Stats() Stats {
	return Stats{
		Queries:       s.queries.Load(),
		TextExecs:     s.textExecs.Load(),
		PreparedExecs: s.preparedExecs.Load(),
		Prepares:      s.prepares.Load(),
		PlanCache:     s.db.PlanCacheStats(),
		Txns:          s.db.TxnStats(),
		MVCC:          s.db.MVCCStats(),
		WAL:           s.db.WALStats(),
	}
}

// NewServer creates a server for db. logger may be nil to discard logs.
func NewServer(db *sqldb.DB, logger *log.Logger) *Server {
	return &Server{
		db:       db,
		logger:   logger,
		conns:    make(map[net.Conn]struct{}),
		shutdown: make(chan struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in a
// background goroutine. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("wire: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return
			default:
			}
			if s.draining.Load() {
				return
			}
			s.logf("accept: %v", err)
			return
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// txnStmts maps the v3/v4 transaction-control frames to their shared,
// stateless ASTs.
var txnStmts = map[byte]sqlparse.Statement{
	msgBegin:      &sqlparse.Begin{},
	msgCommit:     &sqlparse.Commit{},
	msgRollback:   &sqlparse.Rollback{},
	msgPrepareTxn: &sqlparse.PrepareTxn{},
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.connWG.Done()
	sess := s.db.NewSession()
	defer func() {
		sess.Close()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 32<<10)
	w := bufio.NewWriterSize(conn, 32<<10)
	var fb frameBuf // request buffer, reused per frame
	// This connection's prepared ids. Bounded: see maxStmtsPerConn.
	stmts := make(map[uint32]sqlparse.Statement)
	for {
		typ, payload, err := fb.read(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !s.draining.Load() {
				s.logf("read: %v", err)
			}
			return
		}
		var res *sqldb.Result
		var outTyp byte = msgResult
		switch typ {
		case msgQuery:
			var query string
			var args []sqldb.Value
			query, args, err = decodeQuery(payload)
			if err == nil {
				s.queries.Add(1)
				s.textExecs.Add(1)
				res, err = sess.Exec(query, args...)
			}
		case msgPrepare:
			var id uint32
			var query string
			id, query, err = decodePrepare(payload)
			if err == nil {
				s.prepares.Add(1)
				if _, exists := stmts[id]; !exists && len(stmts) >= maxStmtsPerConn {
					// The shared plan cache is bounded; the per-connection
					// id table must be too, or one client could pin
					// unlimited ASTs.
					err = fmt.Errorf("wire: too many prepared statements (%d)", maxStmtsPerConn)
				} else {
					var stmt sqlparse.Statement
					stmt, err = s.db.Prepare(query)
					if err == nil {
						stmts[id] = stmt
						outTyp = msgPrepOK
					}
				}
			}
		case msgExecStmt:
			var id uint32
			var args []sqldb.Value
			id, args, err = decodeExecStmt(payload)
			if err == nil {
				stmt, ok := stmts[id]
				if !ok {
					err = fmt.Errorf("wire: unknown statement id %d", id)
				} else {
					s.queries.Add(1)
					s.preparedExecs.Add(1)
					res, err = sess.ExecStmt(stmt, args...)
				}
			}
		case msgCloseStmt:
			var id uint32
			id, err = decodeCloseStmt(payload)
			if err == nil {
				delete(stmts, id)
				outTyp = msgPrepOK
			}
		case msgBegin, msgCommit, msgRollback, msgPrepareTxn:
			// Transaction control frames carry no payload; they run the
			// corresponding statement on the session. queries counts them:
			// they are statements the tier served, arriving framed.
			s.queries.Add(1)
			_, err = sess.ExecStmt(txnStmts[typ])
			if err == nil {
				outTyp = msgTxnOK
			}
		default:
			s.logf("unexpected frame type 0x%x", typ)
			return
		}
		e := getEnc()
		switch {
		case err != nil:
			outTyp = msgError
			e.b = append(e.b, err.Error()...)
		case outTyp == msgResult:
			encodeResult(e, res)
		}
		err = writeFrame(w, outTyp, e.b)
		putEnc(e)
		if err != nil {
			s.logf("write: %v", err)
			return
		}
		// Pipelined requests (PREPARE immediately followed by EXECUTE) are
		// answered in one TCP segment: flush only before blocking on the
		// next read.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				s.logf("flush: %v", err)
				return
			}
			// A draining server finishes the in-flight statement (just
			// answered above) and hangs up before blocking on the next read.
			if s.draining.Load() {
				return
			}
		}
	}
}

// drainIdleGrace bounds how long Shutdown keeps an idle connection open:
// long enough for a request already shipped by the client — in a socket
// buffer or not yet parsed — to arrive and be answered, short enough that
// pooled-but-quiet client connections don't stall the drain.
const drainIdleGrace = 200 * time.Millisecond

// Shutdown drains the server: it stops accepting, lets every connection
// finish and answer work that is in flight (including requests already
// shipped but not yet read — each connection gets a short read deadline
// rather than an instant hangup), and falls back to a hard Close when
// grace elapses first. Transactions still open when their connection drains
// are aborted: each connection's session rolls back as it closes, so no
// half-applied transaction survives the shutdown. This is what dbserver
// runs on SIGTERM, so a cluster replica can leave without cutting off
// statements the broadcast already shipped — or keeping their effects
// without the commit that would justify them.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining.Store(true)
	ln := s.ln
	idle := drainIdleGrace
	if grace < idle {
		idle = grace
	}
	// Deadline instead of close: a connection with a request in flight
	// reads it, answers, and exits on the draining check; one with
	// nothing to say fails its read at the deadline and closes.
	deadline := time.Now().Add(idle)
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		s.logf("drain grace %s elapsed, closing %d connections", grace, n)
	}
	return s.Close()
}

// Close stops accepting and closes every connection, releasing their locks.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.shutdown)
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf("wire: "+format, args...)
	}
}
