package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb/sqlparse"
)

// DB is an in-memory database instance. It is safe for concurrent use by
// multiple sessions. Statement isolation follows MyISAM semantics (table
// locks); multi-statement atomicity comes from the transaction subsystem
// (txn.go): BEGIN/COMMIT/ROLLBACK with per-session row-level undo logs.
type DB struct {
	mu     sync.RWMutex // guards the catalog (tables map), not table data
	tables map[string]*Table
	locks  *lockManager
	plans  *planCache

	// wal is the attached write-ahead log, nil for a purely in-memory
	// instance. Set once by AttachWAL before the DB serves traffic.
	wal *WAL

	txns          txnCounters
	mvcc          mvccCounters
	lockWaitNanos atomic.Int64 // configured txn lock-wait timeout (0 = default)
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables: make(map[string]*Table),
		locks:  newLockManager(),
		plans:  newPlanCache(0),
	}
}

// ErrNoTable is wrapped by errors returned for statements that reference an
// unknown table.
var ErrNoTable = errors.New("no such table")

// table resolves a table name.
func (db *DB) table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqldb: %w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Table exposes a table for inspection (tests, data generators).
func (db *DB) Table(name string) (*Table, error) { return db.table(name) }

// tableLockOf returns t's lock-manager entry without the map lookup when
// the pointer was cached at CREATE time.
func (db *DB) tableLockOf(t *Table) *tableLock {
	if t.tlock != nil {
		return t.tlock
	}
	return db.locks.lockFor(t.name)
}

// TableNames returns the catalog in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Session is one client's connection state: the set of tables held via
// LOCK TABLES, and the open transaction if any. Sessions are not
// goroutine-safe; each connection owns one.
type Session struct {
	db   *DB
	held []heldLock // non-nil while a LOCK TABLES set is active
	tx   *txn       // non-nil while a transaction is open
	// pendingLSN is the WAL position of the statement's commit unit, set
	// while engine locks are held and awaited (group commit) by ExecStmt
	// after they are released.
	pendingLSN uint64
}

// NewSession creates a session on db.
func (db *DB) NewSession() *Session { return &Session{db: db} }

// Close rolls back any open transaction and releases any locks still held
// (a disconnecting client implicitly runs ROLLBACK and UNLOCK TABLES).
func (s *Session) Close() {
	if s.tx != nil {
		s.rollbackTxn()
		s.db.txns.rollbacks.Add(1)
	}
	if s.held != nil {
		s.db.locks.releaseSet(s.held)
		s.held = nil
	}
}

// HoldsLocks reports whether a LOCK TABLES set is active.
func (s *Session) HoldsLocks() bool { return s.held != nil }

// Result is the outcome of a statement: rows for SELECT, counters otherwise.
type Result struct {
	Columns      []string
	Rows         []Row
	RowsAffected int64
	LastInsertID int64
}

// Exec parses and executes one statement with '?' placeholders bound to
// args, honoring the session's LOCK TABLES state. Parsing goes through the
// database's shared plan cache, so repeated statements — from any session —
// are parsed once.
func (s *Session) Exec(query string, args ...Value) (*Result, error) {
	stmt, err := s.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(stmt, args...)
}

// SessionExecer adapts a Session to the application packages' Execer
// interfaces. Pooled wire clients distinguish Exec (text) from ExecCached
// (EXECUTE-by-id); for an in-process session the two coincide — Exec
// already parses through the shared plan cache.
type SessionExecer struct{ S *Session }

// Exec executes one statement on the session.
func (e SessionExecer) Exec(q string, args ...Value) (*Result, error) {
	return e.S.Exec(q, args...)
}

// ExecCached executes one statement on the session (same as Exec).
func (e SessionExecer) ExecCached(q string, args ...Value) (*Result, error) {
	return e.S.Exec(q, args...)
}

// ExecStmt executes an already-parsed statement. Callers that issue the same
// query repeatedly (the application tiers) parse once and reuse the AST, as
// a prepared statement would.
//
// With a WAL attached, a statement that committed work (auto-commit DML,
// DDL, or the COMMIT ending a transaction) is acknowledged only after its
// log record is fsynced — the group-commit wait happens here, after every
// engine lock has been released, so commits queue behind one fsync instead
// of serializing on it.
func (s *Session) ExecStmt(stmt sqlparse.Statement, args ...Value) (*Result, error) {
	res, err := s.execStmt(stmt, args)
	if lsn := s.pendingLSN; lsn != 0 {
		s.pendingLSN = 0
		if w := s.db.wal; w != nil {
			if werr := w.WaitDurable(lsn); werr != nil && err == nil {
				// Applied in memory but not durably logged: surface the
				// failure — the cluster treats it like any failed write
				// (eject and later resync the replica).
				return nil, werr
			}
		}
	}
	return res, err
}

// notePending records the highest WAL LSN this statement is responsible
// for. LSNs are totally ordered, so waiting on the max covers every unit
// the statement produced (an implicit commit plus a DDL record, say).
func (s *Session) notePending(lsn uint64) {
	if lsn > s.pendingLSN {
		s.pendingLSN = lsn
	}
}

func (s *Session) execStmt(stmt sqlparse.Statement, args []Value) (*Result, error) {
	if s.tx != nil && s.tx.prepared {
		// Between PREPARE TRANSACTION and its resolution only the second
		// phase is legal.
		switch stmt.(type) {
		case *sqlparse.Commit, *sqlparse.Rollback:
		default:
			return nil, errors.New("sqldb: transaction is prepared; only COMMIT or ROLLBACK allowed")
		}
	}
	switch st := stmt.(type) {
	case *sqlparse.CreateTable:
		s.implicitCommit()
		return s.db.execCreateTable(s, st)
	case *sqlparse.CreateIndex:
		s.implicitCommit()
		return s.db.execCreateIndex(s, st)
	case *sqlparse.DropTable:
		s.implicitCommit()
		return s.db.execDropTable(s, st)
	case *sqlparse.LockTables:
		return s.execLockTables(st)
	case *sqlparse.UnlockTables:
		return s.execUnlockTables()
	case *sqlparse.ShowTables:
		return s.db.execShowTables()
	case *sqlparse.ShowTableStatus:
		return s.db.execShowTableStatus()
	case *sqlparse.ShowWALStatus:
		return s.db.execShowWALStatus()
	case *sqlparse.ShowWALChain:
		return s.db.execShowWALChain(uint64(st.AtLSN))
	case *sqlparse.ShowWALRecords:
		return s.db.execShowWALRecords(uint64(st.SinceLSN), st.Limit)
	case *sqlparse.AlterAutoInc:
		s.implicitCommit()
		return s.db.execAlterAutoInc(s, st)
	case *sqlparse.PrepareTxn:
		return s.execPrepareTxn()
	case *sqlparse.Begin:
		return s.execBegin()
	case *sqlparse.Commit:
		return s.execCommit()
	case *sqlparse.Rollback:
		return s.execRollback()
	case *sqlparse.Insert:
		return s.execDML(st.Table, st.Src, args, func(t *Table) (*Result, error) {
			return execInsert(t, st, args, s.tx)
		})
	case *sqlparse.Update:
		return s.execDML(st.Table, st.Src, args, func(t *Table) (*Result, error) {
			return execUpdate(t, st, args, s.tx)
		})
	case *sqlparse.Delete:
		return s.execDML(st.Table, st.Src, args, func(t *Table) (*Result, error) {
			return execDelete(t, st, args, s.tx)
		})
	case *sqlparse.Select:
		return s.execSelect(st, args)
	default:
		return nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// implicitCommit commits an open transaction before statements that cannot
// be part of one (DDL, LOCK TABLES) — MySQL's implicit-commit rule.
func (s *Session) implicitCommit() {
	if s.tx != nil {
		s.commitTxn()
	}
}

// execDML routes a write statement: inside a transaction the table's write
// lock is acquired with the wait timeout and held until commit/rollback,
// with the statement's effects undone on failure; outside, the statement
// takes its implicit short MyISAM lock. src is the statement's source text
// for WAL logging (empty on hand-built ASTs: such statements execute but
// cannot be logged).
func (s *Session) execDML(table, src string, args []Value, fn func(*Table) (*Result, error)) (*Result, error) {
	if s.tx != nil {
		return s.withTxnLock(table, src, args, fn)
	}
	return s.withLock(table, true, src, args, fn)
}

// logAutoCommit appends an auto-commit statement to the WAL while the
// caller still holds the table's write lock. It is called even when the
// statement failed: MyISAM's partial application (a multi-row INSERT that
// dies on row 3 keeps rows 1-2) is committed state, and replaying the
// statement reproduces exactly the same partial application and error.
func (s *Session) logAutoCommit(src string, args []Value) {
	if w := s.db.wal; w != nil && src != "" {
		s.notePending(w.appendOne(src, args))
	}
}

// withLock brackets a single-table statement with its implicit MyISAM table
// lock, unless the session already holds the table via LOCK TABLES.
func (s *Session) withLock(table string, write bool, src string, args []Value, fn func(*Table) (*Result, error)) (*Result, error) {
	t, err := s.db.table(table)
	if err != nil {
		return nil, err
	}
	if held, strong := s.holds(t.name); held {
		if write && !strong {
			return nil, fmt.Errorf("sqldb: table %q locked READ, write denied", table)
		}
		res, err := fn(t)
		if write {
			// MyISAM writes are committed per statement, even under
			// LOCK TABLES WRITE: publish while the exclusive hold lasts.
			s.logAutoCommit(src, args)
			t.publish()
		}
		return res, err
	}
	if s.held != nil {
		// MyISAM: with LOCK TABLES active, only locked tables may be used.
		return nil, fmt.Errorf("sqldb: table %q was not locked with LOCK TABLES", table)
	}
	tl := s.db.tableLockOf(t)
	tl.lock(write)
	res, err := fn(t)
	if write {
		// Publish before releasing the lock: an auto-commit statement's
		// effects are committed state the moment the lock drops, and a
		// failed one may still have applied part of its row set. The WAL
		// append happens under the same lock so log order matches
		// publication order; the fsync wait comes later, lock-free.
		s.logAutoCommit(src, args)
		t.publish()
	}
	tl.unlock(write)
	return res, err
}

// holds reports whether the session's LOCK TABLES set covers table, and
// whether the hold is a write lock.
func (s *Session) holds(table string) (held, write bool) {
	for _, h := range s.held {
		if h.table == table {
			return true, h.write
		}
	}
	return false, false
}

func (s *Session) execLockTables(st *sqlparse.LockTables) (*Result, error) {
	s.implicitCommit()
	if s.held != nil {
		// MySQL implicitly releases the previous set.
		s.db.locks.releaseSet(s.held)
		s.held = nil
	}
	want := make([]heldLock, 0, len(st.Items))
	for _, it := range st.Items {
		t, err := s.db.table(it.Table)
		if err != nil {
			return nil, err
		}
		want = append(want, heldLock{table: t.name, write: it.Write})
	}
	s.held = s.db.locks.acquireSet(want)
	return &Result{}, nil
}

func (s *Session) execUnlockTables() (*Result, error) {
	if s.held != nil {
		s.db.locks.releaseSet(s.held)
		s.held = nil
	}
	return &Result{}, nil
}

// DDL executors log to the WAL inside their exclusive section (catalog or
// table write lock) so the log's statement order matches apply order, and
// only on success with an actual state change — a no-op IF EXISTS / IF NOT
// EXISTS outcome changed nothing and replays as nothing.
func (db *DB) execCreateTable(s *Session, st *sqlparse.CreateTable) (*Result, error) {
	cols := make([]Column, 0, len(st.Columns))
	for _, c := range st.Columns {
		cols = append(cols, Column{
			Name:          c.Name,
			Type:          c.Type,
			PrimaryKey:    c.PrimaryKey,
			AutoIncrement: c.AutoIncrement,
			NotNull:       c.NotNull || c.PrimaryKey,
		})
	}
	t, err := newTable(strings.ToLower(st.Name), cols)
	if err != nil {
		return nil, err
	}
	t.tlock = db.locks.lockFor(t.name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[t.name]; dup {
		if st.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqldb: table %q already exists", st.Name)
	}
	db.tables[t.name] = t
	if db.wal != nil && st.Src != "" {
		s.notePending(db.wal.appendOne(st.Src, nil))
	}
	return &Result{}, nil
}

// execShowTables lists the catalog, one row per table in sorted order.
func (db *DB) execShowTables() (*Result, error) {
	names := db.TableNames()
	res := &Result{Columns: []string{"table"}}
	for _, n := range names {
		res.Rows = append(res.Rows, Row{String(n)})
	}
	return res, nil
}

// execShowTableStatus reports each table's row count and AUTO_INCREMENT
// state. The replica-sync path reads it to reproduce id assignment exactly
// on the destination — row data alone cannot carry the counter's stride.
func (db *DB) execShowTableStatus() (*Result, error) {
	res := &Result{Columns: []string{"table", "rows", "auto_increment", "ai_offset", "ai_stride"}}
	for _, n := range db.TableNames() {
		t, err := db.table(n)
		if err != nil {
			continue // dropped between catalog read and lookup
		}
		tl := db.tableLockOf(t)
		tl.lock(false)
		res.Rows = append(res.Rows, Row{
			String(n), Int(int64(len(t.rows))), Int(t.nextAI),
			Int(t.aiOffset), Int(t.aiStride),
		})
		tl.unlock(false)
	}
	return res, nil
}

// execAlterAutoInc applies ALTER TABLE ... AUTO_INCREMENT under the table's
// write lock. Only the id-assignment counters change, so snapshot versions
// are left alone: readers never observe the counter.
func (db *DB) execAlterAutoInc(s *Session, st *sqlparse.AlterAutoInc) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	tl := db.tableLockOf(t)
	tl.lock(true)
	t.setAutoInc(st.Offset, st.Stride, st.Next)
	if db.wal != nil && st.Src != "" {
		s.notePending(db.wal.appendOne(st.Src, nil))
	}
	tl.unlock(true)
	return &Result{}, nil
}

func (db *DB) execCreateIndex(s *Session, st *sqlparse.CreateIndex) (*Result, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	col, err := t.colOf(st.Column)
	if err != nil {
		return nil, err
	}
	tl := db.tableLockOf(t)
	tl.lock(true)
	defer tl.unlock(true)
	if err := t.addIndex(st.Name, col, st.Unique); err != nil {
		return nil, err
	}
	t.publish() // snapshots copy indexes; a new one must invalidate them
	if db.wal != nil && st.Src != "" {
		s.notePending(db.wal.appendOne(st.Src, nil))
	}
	return &Result{}, nil
}

func (db *DB) execDropTable(s *Session, st *sqlparse.DropTable) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(st.Name)
	if _, ok := db.tables[name]; !ok {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("sqldb: %w: %q", ErrNoTable, st.Name)
	}
	delete(db.tables, name)
	if db.wal != nil && st.Src != "" {
		s.notePending(db.wal.appendOne(st.Src, nil))
	}
	return &Result{}, nil
}

// execSelect routes a query to the right read path. The default is the
// snapshot path (mvcc.go): every referenced table is served from its frozen
// last-committed version, with no read locks and no lock-wait — the
// multi-version read that lets browse traffic bypass the 2PL machinery
// entirely. Two cases still take the locked path: a LOCK TABLES session
// reads its held tables directly (the MyISAM bracket demands current state
// and already holds the locks), and a transaction that has write-locked any
// referenced table reads live state under statement-scoped timed read locks
// so it observes its own uncommitted writes.
func (s *Session) execSelect(st *sqlparse.Select, args []Value) (*Result, error) {
	names := []string{st.From.Table}
	for _, j := range st.Joins {
		names = append(names, j.Table.Table)
	}
	tabs := make([]*Table, len(names))
	for i, n := range names {
		t, err := s.db.table(n)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}
	switch {
	case s.tx != nil:
		if s.tx.holdsWriteAny(tabs) {
			// Read-your-writes: the transaction wrote at least one of these
			// tables, so the statement must see live (uncommitted) state.
			release, err := s.txnReadLocks(tabs)
			if err != nil {
				return nil, err
			}
			defer release()
			return execSelect(tabs, st, args)
		}
		views, release, err := s.snapshots(tabs, true)
		if err != nil {
			return nil, err
		}
		defer release()
		return execSelect(views, st, args)
	case s.held != nil:
		// MyISAM: with LOCK TABLES active, only locked tables may be used —
		// and reads on them go to live state under the held locks.
		for i, t := range tabs {
			if held, _ := s.holds(t.name); !held {
				return nil, fmt.Errorf("sqldb: table %q was not locked with LOCK TABLES", names[i])
			}
		}
		return execSelect(tabs, st, args)
	default:
		views, release, err := s.snapshots(tabs, false)
		if err != nil {
			return nil, err
		}
		defer release()
		return execSelect(views, st, args)
	}
}
