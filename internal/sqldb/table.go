package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb/sqlparse"
)

// Column describes one table column.
type Column struct {
	Name          string
	Type          sqlparse.ColType
	PrimaryKey    bool
	AutoIncrement bool
	NotNull       bool
}

// Table is heap storage plus indexes. Access must be serialized by the
// database lock manager (MyISAM-style table locks); Table itself is not
// goroutine-safe — except for the snapshot machinery (mvcc.go): version is
// bumped by writers under the write lock and read lock-free by the snapshot
// fast path, and snap holds a frozen copy that any number of readers share
// without locks.
type Table struct {
	name    string
	columns []Column
	colIdx  map[string]int // lower-cased name -> position

	rows    map[int64]Row // rowid -> row
	nextID  int64         // next rowid
	nextAI  int64         // next AUTO_INCREMENT value
	pkCol   int           // -1 when no primary key
	indexes map[string]*index

	// aiOffset/aiStride configure strided AUTO_INCREMENT assignment
	// (MySQL's auto_increment_offset / auto_increment_increment): values are
	// drawn from the congruence class ≡ aiOffset (mod aiStride), so each
	// shard of a partitioned table assigns from a disjoint id space. Zero
	// stride means the classic dense sequence.
	aiOffset int64
	aiStride int64

	// rowOrder preserves insertion order for stable full scans.
	rowOrder []int64

	// tlock caches the lock-manager entry for this table, set before the
	// table is published in the catalog (db.tableLockOf falls back to the
	// name lookup when nil, e.g. on frozen snapshots).
	tlock *tableLock

	// Snapshot-read state (mvcc.go). version counts committed publications;
	// snap caches the frozen copy of the last refreshed version; snapMu
	// serializes refreshes so concurrent readers of a stale snapshot build
	// one copy, not one each; snapHits counts lock-free reads served by the
	// installed snapshot (reset at refresh) — the adaptive-refresh signal.
	// On a frozen copy itself, frozen is set and snapSeq records the
	// version it was built from; the atomics stay zero.
	version  atomic.Uint64
	snap     atomic.Pointer[Table]
	snapMu   sync.Mutex
	snapHits atomic.Int64
	frozen   bool
	snapSeq  uint64
}

// index is a hash index over one column, with lazily maintained sorted keys
// for range scans. sorted marks frozen-snapshot indexes whose posting lists
// were sorted at freeze time and are immutable, so lookups can return them
// without the copy-and-sort.
type index struct {
	name   string
	col    int
	unique bool
	sorted bool
	m      map[indexKey][]int64
}

func newTable(name string, cols []Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqldb: table %q needs at least one column", name)
	}
	t := &Table{
		name:    name,
		columns: cols,
		colIdx:  make(map[string]int, len(cols)),
		rows:    make(map[int64]Row),
		nextID:  1,
		nextAI:  1,
		pkCol:   -1,
		indexes: make(map[string]*index),
	}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %q in table %q", c.Name, name)
		}
		t.colIdx[lc] = i
		if c.PrimaryKey {
			if t.pkCol >= 0 {
				return nil, fmt.Errorf("sqldb: multiple primary keys in table %q", name)
			}
			t.pkCol = i
		}
	}
	if t.pkCol >= 0 {
		t.indexes["primary"] = &index{name: "primary", col: t.pkCol, unique: true,
			m: make(map[indexKey][]int64)}
	}
	return t, nil
}

// assignAI returns the next AUTO_INCREMENT value and advances the counter by
// the configured stride.
func (t *Table) assignAI() int64 {
	v := t.nextAI
	if t.aiStride > 1 {
		t.nextAI += t.aiStride
	} else {
		t.nextAI++
	}
	return v
}

// noteExplicitAI advances the counter past an explicitly supplied value,
// keeping it in the configured congruence class — so a replica synced with
// explicit ids assigns the same next id as its source.
func (t *Table) noteExplicitAI(v int64) {
	if v < t.nextAI {
		return
	}
	t.nextAI = t.alignAI(v + 1)
}

// alignAI returns the smallest value >= from in the configured congruence
// class (from itself when no stride is set).
func (t *Table) alignAI(from int64) int64 {
	if t.aiStride <= 1 {
		return from
	}
	r := (t.aiOffset - from) % t.aiStride
	if r < 0 {
		r += t.aiStride
	}
	return from + r
}

// setAutoInc applies ALTER TABLE ... AUTO_INCREMENT: zero fields leave their
// setting unchanged; next pins the counter exactly, otherwise the counter is
// re-aligned to the (possibly new) congruence class.
func (t *Table) setAutoInc(offset, stride, next int64) {
	if offset > 0 {
		t.aiOffset = offset
	}
	if stride > 0 {
		t.aiStride = stride
	}
	if next > 0 {
		t.nextAI = next
		return
	}
	t.nextAI = t.alignAI(t.nextAI)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Columns returns the schema in declaration order.
func (t *Table) Columns() []Column { return t.columns }

// RowCount returns the number of stored rows.
func (t *Table) RowCount() int { return len(t.rows) }

// colOf resolves a column name (case-insensitive).
func (t *Table) colOf(name string) (int, error) {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("sqldb: unknown column %q in table %q", name, t.name)
}

// addIndex creates a secondary index over col and backfills it.
func (t *Table) addIndex(name string, col int, unique bool) error {
	key := strings.ToLower(name)
	if _, dup := t.indexes[key]; dup {
		return fmt.Errorf("sqldb: index %q already exists on %q", name, t.name)
	}
	ix := &index{name: name, col: col, unique: unique, m: make(map[indexKey][]int64)}
	for id, r := range t.rows {
		k := r[col].key()
		if unique && len(ix.m[k]) > 0 {
			return fmt.Errorf("sqldb: duplicate value %v building unique index %q", r[col], name)
		}
		ix.m[k] = append(ix.m[k], id)
	}
	t.indexes[key] = ix
	return nil
}

// indexOn returns an index whose key column is col, preferring unique ones.
func (t *Table) indexOn(col int) *index {
	var found *index
	for _, ix := range t.indexes {
		if ix.col != col {
			continue
		}
		if ix.unique {
			return ix
		}
		found = ix
	}
	return found
}

// insert stores a row (already in schema order, AUTO_INCREMENT resolved) and
// maintains indexes. It returns the rowid.
func (t *Table) insert(r Row) (int64, error) {
	if len(r) != len(t.columns) {
		return 0, fmt.Errorf("sqldb: row width %d != %d columns in %q",
			len(r), len(t.columns), t.name)
	}
	for i, c := range t.columns {
		if c.NotNull && r[i].IsNull() {
			return 0, fmt.Errorf("sqldb: NULL in NOT NULL column %q.%q", t.name, c.Name)
		}
	}
	for _, ix := range t.indexes {
		if ix.unique {
			k := r[ix.col].key()
			if len(ix.m[k]) > 0 {
				return 0, fmt.Errorf("sqldb: duplicate key %v for unique index %q on %q",
					r[ix.col], ix.name, t.name)
			}
		}
	}
	id := t.nextID
	t.nextID++
	t.rows[id] = r
	t.rowOrder = append(t.rowOrder, id)
	for _, ix := range t.indexes {
		k := r[ix.col].key()
		ix.m[k] = append(ix.m[k], id)
	}
	return id, nil
}

// update rewrites columns of the row at id, maintaining indexes. The stored
// row is replaced, never mutated in place: frozen snapshots share Row slices
// with live storage, so a row that has ever been stored must stay immutable.
func (t *Table) update(id int64, set map[int]Value) error {
	r, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("sqldb: update of missing rowid %d in %q", id, t.name)
	}
	// Constraint checks first so a violation leaves row and indexes untouched.
	for _, ix := range t.indexes {
		nv, changed := set[ix.col]
		if !changed || Equal(nv, r[ix.col]) {
			continue
		}
		if ix.unique && len(ix.m[nv.key()]) > 0 {
			return fmt.Errorf("sqldb: duplicate key %v for unique index %q on %q",
				nv, ix.name, t.name)
		}
	}
	for col, nv := range set {
		if t.columns[col].NotNull && nv.IsNull() {
			return fmt.Errorf("sqldb: NULL in NOT NULL column %q.%q",
				t.name, t.columns[col].Name)
		}
	}
	nr := make(Row, len(r))
	copy(nr, r)
	for col, nv := range set {
		for _, ix := range t.indexes {
			if ix.col != col {
				continue
			}
			ix.remove(r[col].key(), id)
			ix.m[nv.key()] = append(ix.m[nv.key()], id)
		}
		nr[col] = nv
	}
	t.rows[id] = nr
	return nil
}

// remove drops id from the posting list of key k.
func (ix *index) remove(k indexKey, id int64) {
	list := ix.m[k]
	for i, v := range list {
		if v == id {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(ix.m, k)
	} else {
		ix.m[k] = list
	}
}

// deleteRow removes the row at id from storage and all indexes.
func (t *Table) deleteRow(id int64) {
	r, ok := t.rows[id]
	if !ok {
		return
	}
	for _, ix := range t.indexes {
		ix.remove(r[ix.col].key(), id)
	}
	delete(t.rows, id)
	// rowOrder is compacted lazily during scans.
}

// scan calls fn for each live row in insertion order. fn must not mutate the
// table. Deleted ids encountered in rowOrder are compacted away — except on
// frozen snapshots, which many readers scan concurrently: their rowOrder was
// tombstone-filtered at freeze time and must stay untouched.
func (t *Table) scan(fn func(id int64, r Row) error) error {
	if t.frozen {
		for _, id := range t.rowOrder {
			if err := fn(id, t.rows[id]); err != nil {
				return err
			}
		}
		return nil
	}
	live := t.rowOrder[:0]
	var err error
	for _, id := range t.rowOrder {
		r, ok := t.rows[id]
		if !ok {
			continue
		}
		live = append(live, id)
		if err == nil {
			err = fn(id, r)
		}
	}
	t.rowOrder = live
	return err
}

// restoreCols reverts columns of the row at id to their pre-statement
// values, maintaining indexes. It is the undo path of update: constraints
// are not rechecked — the old values were valid when the statement ran, and
// undo applies in reverse order, so the pre-image is always restorable.
// Like update, it replaces the stored row (copy-on-write) rather than
// mutating it, since snapshots may share the current slice.
func (t *Table) restoreCols(id int64, old map[int]Value) {
	r, ok := t.rows[id]
	if !ok {
		return
	}
	nr := make(Row, len(r))
	copy(nr, r)
	for col, ov := range old {
		for _, ix := range t.indexes {
			if ix.col != col {
				continue
			}
			ix.remove(r[col].key(), id)
			ix.m[ov.key()] = append(ix.m[ov.key()], id)
		}
		nr[col] = ov
	}
	t.rows[id] = nr
}

// undoInsert removes an inserted row and restores the rowid/AUTO_INCREMENT
// counters — the undo path of insert. Unlike a plain delete, the rowid is
// also compacted out of rowOrder immediately: the restored counters mean
// the id WILL be reused by the next insert, and a stale entry would make
// scans emit that future row twice.
func (t *Table) undoInsert(id, prevNextID, prevNextAI int64) {
	t.deleteRow(id)
	pos := sort.Search(len(t.rowOrder), func(i int) bool { return t.rowOrder[i] >= id })
	if pos < len(t.rowOrder) && t.rowOrder[pos] == id {
		t.rowOrder = append(t.rowOrder[:pos], t.rowOrder[pos+1:]...)
	}
	t.nextID = prevNextID
	t.nextAI = prevNextAI
}

// restoreRow resurrects a deleted row under its original rowid, maintaining
// indexes and scan order. rowOrder is always ascending (rowids are assigned
// monotonically), so a sorted insert restores the original scan position;
// the id may still be present when no scan compacted it away since the
// delete.
func (t *Table) restoreRow(id int64, r Row) {
	if _, live := t.rows[id]; live {
		return
	}
	t.rows[id] = r
	for _, ix := range t.indexes {
		k := r[ix.col].key()
		ix.m[k] = append(ix.m[k], id)
	}
	pos := sort.Search(len(t.rowOrder), func(i int) bool { return t.rowOrder[i] >= id })
	if pos < len(t.rowOrder) && t.rowOrder[pos] == id {
		return
	}
	t.rowOrder = append(t.rowOrder, 0)
	copy(t.rowOrder[pos+1:], t.rowOrder[pos:])
	t.rowOrder[pos] = id
}

// lookup returns the rowids matching value v on column col via an index, or
// ok=false when no index covers the column.
func (t *Table) lookup(col int, v Value) (ids []int64, ok bool) {
	ix := t.indexOn(col)
	if ix == nil {
		return nil, false
	}
	list := ix.m[v.key()]
	if ix.sorted {
		// Frozen-snapshot index: the posting list was sorted at freeze time
		// and nobody mutates it, so it can be returned as-is.
		return list, true
	}
	// Copy and sort for deterministic result order.
	out := make([]int64, len(list))
	copy(out, list)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// freeze builds an immutable copy of t's current state for snapshot reads.
// The caller must hold at least the table's read lock. Schema (columns,
// colIdx) and the Row slices themselves are shared — rows are never mutated
// in place once stored — while the row map, scan order and index posting
// lists are copied so subsequent writers cannot disturb the snapshot.
// rowOrder is tombstone-filtered up front because frozen scans skip the
// lazy compaction, and posting lists are pre-sorted so frozen lookups skip
// the per-lookup copy-and-sort.
func (t *Table) freeze() *Table {
	sp := &Table{
		name:     t.name,
		columns:  t.columns,
		colIdx:   t.colIdx,
		rows:     make(map[int64]Row, len(t.rows)),
		nextID:   t.nextID,
		nextAI:   t.nextAI,
		pkCol:    t.pkCol,
		aiOffset: t.aiOffset,
		aiStride: t.aiStride,
		indexes:  make(map[string]*index, len(t.indexes)),
		rowOrder: make([]int64, 0, len(t.rows)),
		frozen:   true,
		snapSeq:  t.version.Load(),
	}
	for _, id := range t.rowOrder {
		r, ok := t.rows[id]
		if !ok {
			continue
		}
		sp.rows[id] = r
		sp.rowOrder = append(sp.rowOrder, id)
	}
	for key, ix := range t.indexes {
		m := make(map[indexKey][]int64, len(ix.m))
		for k, list := range ix.m {
			cp := make([]int64, len(list))
			copy(cp, list)
			sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
			m[k] = cp
		}
		sp.indexes[key] = &index{name: ix.name, col: ix.col, unique: ix.unique, sorted: true, m: m}
	}
	return sp
}
