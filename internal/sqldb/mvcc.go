package sqldb

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"
)

// This file is the multi-version read path: copy-on-write table versions
// published at commit, so read-only statements (and the reads of
// transactions that have not written the referenced tables) execute against
// an immutable snapshot of the last committed state and never touch the
// table lock manager — no read locks, no lock-wait, no interaction with the
// 2PL writer path, which keeps PR-4 semantics unchanged for writers.
//
// Mechanics. Every table carries a version counter that writers bump while
// still holding the table's write lock, at the moment their effects become
// committed state: at the end of an auto-commit DML statement, per
// statement inside a LOCK TABLES WRITE bracket (MyISAM writes are
// immediately committed), and at COMMIT for transactional writes — one bump
// per written table, before the locks release, so within a table a
// transaction's effects publish atomically. Rollback restores the
// pre-transaction image and publishes nothing.
//
// The snapshot itself is built lazily by the first reader that notices the
// published version moved: it takes the table's read lock once (waiting for
// the committing writer to release, exactly as a locking read would), copies
// the row map, scan order and indexes into a frozen Table, and installs it
// for every subsequent reader. Rows are immutable once stored — update
// replaces the row slice instead of mutating it (see Table.update) — so the
// copy shares row storage with the live table and costs O(rows), paid once
// per commit per reading table rather than per read. The rebuild is
// adaptive (snapRefreshMin): a table whose snapshots die before serving
// enough reads to amortize the clone routes those reads to the classic
// locked path instead of recloning per commit. While a transaction or
// LOCK TABLES section holds a table's write lock but has not yet published,
// readers keep serving the previous version without blocking — the
// consistent nonlocking read of InnoDB's READ COMMITTED.
//
// Visibility rules (DESIGN.md §4b): a snapshot read sees every transaction
// that committed before the statement started and nothing of any
// transaction still in flight; a statement that joins several tables takes
// each table's latest committed version independently; a transaction's own
// reads switch to the live locked path for tables it has write-locked
// (read-your-writes), and stay on snapshots for everything else.

// errSnapshotWait is the internal marker for a snapshot refresh that timed
// out waiting for a committing writer inside a transaction; the caller
// converts it into the transaction's deadlock-timeout abort.
var errSnapshotWait = errors.New("sqldb: snapshot refresh lock wait timed out")

// MVCCStats is the snapshot-read subsystem's observability surface.
type MVCCStats struct {
	// SnapshotReads counts SELECT statements served entirely from frozen
	// snapshots.
	SnapshotReads int64 `json:"snapshot_reads"`
	// LockBypasses counts per-table read-lock acquisitions those statements
	// avoided: tables served from a current snapshot without touching the
	// lock manager at all.
	LockBypasses int64 `json:"lock_bypasses"`
	// Refreshes counts snapshot rebuilds — one per (commit, first
	// subsequent reader) pair, the amortized copy-on-write cost.
	Refreshes int64 `json:"refreshes"`
	// LiveFallbacks counts per-table reads the adaptive policy routed to
	// the classic locked path instead of recloning a write-hot table (the
	// outgoing snapshot had not served enough reads to amortize a rebuild).
	LiveFallbacks int64 `json:"live_fallbacks"`
}

// mvccCounters aggregates the DB-wide snapshot-read counters.
type mvccCounters struct {
	snapReads     atomic.Int64
	lockBypasses  atomic.Int64
	refreshes     atomic.Int64
	liveFallbacks atomic.Int64
}

// MVCCStats snapshots the snapshot-read counters.
func (db *DB) MVCCStats() MVCCStats {
	return MVCCStats{
		SnapshotReads: db.mvcc.snapReads.Load(),
		LockBypasses:  db.mvcc.lockBypasses.Load(),
		Refreshes:     db.mvcc.refreshes.Load(),
		LiveFallbacks: db.mvcc.liveFallbacks.Load(),
	}
}

// publish marks t's committed state as changed. It must be called while the
// table's write lock (or an exclusive hold via LOCK TABLES WRITE) is still
// held, so a concurrent snapshot refresh — which takes the read lock —
// cannot copy a half-published state.
func (t *Table) publish() { t.version.Add(1) }

// TableVersion reports a table's commit-time version counter: it advances
// once per committed publication of the table's state (write commits and
// DDL), never on aborted transactions — the rolled-back writes were never
// published. This is the engine-side ground truth the caching tier's
// client-side version mirror approximates (internal/cluster, cache.go);
// tests assert the two agree on the publish/no-publish decision. Unknown
// tables report 0.
func (db *DB) TableVersion(name string) uint64 {
	t, err := db.table(name)
	if err != nil {
		return 0
	}
	return t.version.Load()
}

// view returns the installed snapshot when it is still current, lock-free.
func (t *Table) view() (*Table, bool) {
	sp := t.snap.Load()
	if sp != nil && sp.snapSeq == t.version.Load() {
		t.snapHits.Add(1)
		return sp, true
	}
	return nil, false
}

// snapRefreshMin is the adaptive-refresh threshold: a stale snapshot is
// recloned only if the outgoing one served at least this many lock-free
// reads. A write-hot table whose snapshots die before paying for themselves
// stops being recloned per commit — its readers fall back to the classic
// short read-lock path instead (the pre-MVCC behavior), while read-mostly
// tables keep the lock-free path. The first snapshot of a table is always
// built, so purely read-only tables never touch the lock manager.
const snapRefreshMin = 2

// refreshSnap rebuilds t's snapshot from the last committed state. The copy
// runs under the table's read lock — the one place the snapshot path still
// meets the lock manager, paid only when the committed version moved since
// the last refresh. timed applies the transaction lock-wait discipline: a
// refresh on behalf of an open transaction aborts on timeout (the caller
// maps errSnapshotWait to the deadlock-timeout abort) instead of waiting
// forever behind a stuck writer.
func (t *Table) refreshSnap(db *DB, timed bool) (*Table, error) {
	t.snapMu.Lock()
	defer t.snapMu.Unlock()
	if sp := t.snap.Load(); sp != nil && sp.snapSeq == t.version.Load() {
		return sp, nil // another reader refreshed while we queued
	}
	tl := db.tableLockOf(t)
	if timed {
		start := time.Now()
		ok := tl.lockTimed(false, db.lockWait())
		db.txns.lockWaitNanos.Add(time.Since(start).Nanoseconds())
		if !ok {
			return nil, errSnapshotWait
		}
	} else {
		tl.lock(false)
	}
	sp := t.freeze()
	tl.unlock(false)
	t.snap.Store(sp)
	t.snapHits.Store(0)
	db.mvcc.refreshes.Add(1)
	return sp, nil
}

// snapshots resolves a view for every table of a read-only statement.
// Tables whose installed snapshot is current are served without any
// lock-manager interaction; a stale one pays one refresh — unless the dying
// snapshot never amortized its clone (snapRefreshMin), in which case the
// live table is read under a short statement-scoped read lock instead.
// timed carries the caller's transaction context into refreshSnap and the
// fallback locks. The returned release frees the fallback locks (a no-op
// when every table came from a snapshot) and must be held until the
// statement finishes executing against the views.
func (s *Session) snapshots(tabs []*Table, timed bool) ([]*Table, func(), error) {
	views := make([]*Table, len(tabs))
	bypassed := 0
	var live []*Table
	for i, t := range tabs {
		if sp, ok := t.view(); ok {
			views[i] = sp
			bypassed++
			continue
		}
		if t.snap.Load() != nil && t.snapHits.Load() < snapRefreshMin {
			live = append(live, t) // write-hot: views[i] filled below
			continue
		}
		sp, err := t.refreshSnap(s.db, timed)
		if err != nil {
			if errors.Is(err, errSnapshotWait) && s.tx != nil {
				return nil, nil, s.abortTxn(t.name)
			}
			return nil, nil, err
		}
		views[i] = sp
	}
	s.db.mvcc.lockBypasses.Add(int64(bypassed))
	if len(live) == 0 {
		s.db.mvcc.snapReads.Add(1)
		return views, func() {}, nil
	}
	release, err := s.liveReadLocks(live, timed)
	if err != nil {
		return nil, nil, err
	}
	for i, t := range tabs {
		if views[i] == nil {
			views[i] = t
		}
	}
	s.db.mvcc.liveFallbacks.Add(int64(len(live)))
	return views, release, nil
}

// liveReadLocks takes statement-scoped read locks on the fallback tables,
// in the same sorted deadlock-avoidance order every lock set uses. Inside a
// transaction the acquisitions are timed and a timeout aborts it.
func (s *Session) liveReadLocks(live []*Table, timed bool) (func(), error) {
	if timed && s.tx != nil {
		return s.txnReadLocks(live)
	}
	sorted := make([]*Table, len(live))
	copy(sorted, live)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, t := range sorted {
		s.db.tableLockOf(t).lock(false)
	}
	return func() {
		for _, t := range sorted {
			s.db.tableLockOf(t).unlock(false)
		}
	}, nil
}
