// Package sqldb is an in-memory relational database engine modeled on the
// MySQL 3.23 / MyISAM substrate the paper measures: typed tables with hash
// and ordered indexes, a SQL executor over the dialect in sqlparse, and
// MyISAM's locking discipline — implicit per-statement table locks with
// writer priority, plus explicit LOCK TABLES / UNLOCK TABLES sessions.
//
// The engine is the storage tier for both benchmark applications and is
// exposed over TCP by package wire, whose client takes the place of the
// MM-MySQL JDBC driver and PHP's native MySQL driver in the original paper.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates Value representations.
type Kind uint8

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// Value is a dynamically typed SQL value. The zero value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt converts to int64 (strings parse; NULL is 0).
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindString:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n
	default:
		return 0
	}
}

// AsFloat converts to float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindString:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f
	default:
		return 0
	}
}

// AsString converts to a string ("" for NULL).
func (v Value) AsString() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// Truthy reports SQL truthiness (non-zero, non-empty, non-NULL).
func (v Value) Truthy() bool {
	switch v.kind {
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindString:
		return v.s != ""
	default:
		return false
	}
}

// String implements fmt.Stringer for debugging output.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	if v.kind == KindString {
		return fmt.Sprintf("%q", v.s)
	}
	return v.AsString()
}

// Compare orders two values: NULL sorts first; numeric kinds compare
// numerically (mixed int/float allowed); strings compare lexicographically.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.kind == KindString && b.kind == KindString {
		return strings.Compare(a.s, b.s)
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL never equals anything, matching the
// three-valued logic the executor needs for WHERE).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// key returns a map key for index lookups. Numeric kinds normalize so that
// Int(3) and Float(3) collide, as Compare treats them equal.
func (v Value) key() indexKey {
	switch v.kind {
	case KindNull:
		return indexKey{kind: KindNull}
	case KindString:
		return indexKey{kind: KindString, s: v.s}
	default:
		return indexKey{kind: KindFloat, f: v.AsFloat()}
	}
}

// indexKey is the comparable form of a Value used by hash indexes.
type indexKey struct {
	kind Kind
	f    float64
	s    string
}

// Row is one table row. Rows are value slices in schema column order.
type Row []Value

// Note: results may alias storage rows. That is safe because stored rows
// are immutable once written — Table.update and Table.restoreCols replace
// the slice rather than mutating it (the copy-on-write contract snapshots
// rely on, mvcc.go).
