package sqldb

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/sqldb/sqlparse"
)

// planCache is the database's shared prepared-statement cache: parsed ASTs
// keyed by normalized query text, bounded LRU. Every session's Exec goes
// through it, so a statement the application tiers repeat — the dominant
// pattern of both benchmarks — is parsed at most once for the whole server,
// whether it arrives as a text query or over the wire protocol's
// EXECUTE-by-id fast path. Cached statements are shared across sessions;
// the executor treats ASTs as read-only, which makes that safe.
type planCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*list.Element
	lru     list.List // front = most recent; values are *planEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type planEntry struct {
	key  string
	stmt sqlparse.Statement
}

// defaultPlanCacheSize bounds the cache; both benchmarks together issue a
// few dozen distinct statements, so this never evicts in practice while
// still capping memory against pathological clients.
const defaultPlanCacheSize = 1024

func newPlanCache(limit int) *planCache {
	if limit <= 0 {
		limit = defaultPlanCacheSize
	}
	return &planCache{limit: limit, entries: make(map[string]*list.Element)}
}

func (c *planCache) get(key string) (sqlparse.Statement, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*planEntry).stmt, true
}

func (c *planCache) put(key string, stmt sqlparse.Statement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, dup := c.entries[key]; dup {
		// Another session parsed the same text concurrently; keep the
		// incumbent so every holder shares one AST.
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&planEntry{key: key, stmt: stmt})
	for c.lru.Len() > c.limit {
		el := c.lru.Back()
		c.lru.Remove(el)
		delete(c.entries, el.Value.(*planEntry).key)
	}
}

func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// PlanCacheStats is the cache's observability surface, reported by the
// database tier's telemetry.
type PlanCacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

// PlanCacheStats snapshots the plan cache.
func (db *DB) PlanCacheStats() PlanCacheStats {
	return PlanCacheStats{
		Hits:     db.plans.hits.Load(),
		Misses:   db.plans.misses.Load(),
		Size:     db.plans.size(),
		Capacity: db.plans.limit,
	}
}

// Prepare parses query through the plan cache, returning the shared AST.
func (db *DB) Prepare(query string) (sqlparse.Statement, error) {
	key := normalizeQuery(query)
	if stmt, ok := db.plans.get(key); ok {
		return stmt, nil
	}
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	db.plans.put(key, stmt)
	return stmt, nil
}

// normalizeQuery canonicalizes query text for cache keying: surrounding
// whitespace is trimmed and interior runs of whitespace collapse to one
// space, except inside quoted strings. The application tiers format the
// same statement with different indentation depending on call site; those
// must share one plan.
func normalizeQuery(q string) string {
	// Fast path: no whitespace beyond single interior spaces.
	clean := true
	for i := 0; i < len(q); i++ {
		c := q[i]
		if c == '\t' || c == '\n' || c == '\r' ||
			(c == ' ' && (i == 0 || i == len(q)-1 || q[i+1] == ' ')) {
			clean = false
			break
		}
	}
	if clean {
		return q
	}
	b := make([]byte, 0, len(q))
	var quote byte
	space := false
	for i := 0; i < len(q); i++ {
		c := q[i]
		if quote != 0 {
			b = append(b, c)
			// Mirror the lexer's escapes exactly (sqlparse.lexString):
			// backslash escapes the next byte, a doubled quote stays
			// inside the literal. Getting this wrong would let two
			// different statements collide on one cache key.
			if c == '\\' && i+1 < len(q) {
				i++
				b = append(b, q[i])
				continue
			}
			if c == quote {
				if i+1 < len(q) && q[i+1] == quote {
					i++
					b = append(b, q[i])
					continue
				}
				quote = 0
			}
			continue
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			space = true
			continue
		case '\'', '"':
			quote = c
		}
		if space && len(b) > 0 {
			b = append(b, ' ')
		}
		space = false
		b = append(b, c)
	}
	return string(b)
}
