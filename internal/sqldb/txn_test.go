package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// txnDB builds a small two-table database for transaction tests.
func txnDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	s := db.NewSession()
	defer s.Close()
	mustTx(t, s, `CREATE TABLE items (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(32), qty INT)`)
	mustTx(t, s, `CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, item INT, delta INT)`)
	mustTx(t, s, `CREATE UNIQUE INDEX items_name ON items (name)`)
	for i := 1; i <= 5; i++ {
		mustTx(t, s, "INSERT INTO items (name, qty) VALUES (?, ?)",
			String(fmt.Sprintf("item-%d", i)), Int(10))
	}
	return db
}

func mustTx(t *testing.T, s *Session, q string, args ...Value) *Result {
	t.Helper()
	res, err := s.Exec(q, args...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

// dump renders the full database state — rows in scan order plus the
// counters an insert would consume next — so bit-identical restoration is
// assertable as string equality.
func dump(t *testing.T, db *DB) string {
	t.Helper()
	var b strings.Builder
	s := db.NewSession()
	defer s.Close()
	for _, name := range db.TableNames() {
		res, err := s.Exec("SELECT * FROM " + name)
		if err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table(name)
		fmt.Fprintf(&b, "%s nextID=%d nextAI=%d %v\n", name, tab.nextID, tab.nextAI, res.Rows)
	}
	return b.String()
}

func TestTxnCommitPersists(t *testing.T) {
	db := txnDB(t)
	s := db.NewSession()
	defer s.Close()
	mustTx(t, s, "BEGIN")
	if !s.InTxn() {
		t.Fatal("no txn open after BEGIN")
	}
	mustTx(t, s, "INSERT INTO items (name, qty) VALUES ('six', 6)")
	mustTx(t, s, "UPDATE items SET qty = qty - 1 WHERE id = 1")
	mustTx(t, s, "COMMIT")
	if s.InTxn() {
		t.Fatal("txn still open after COMMIT")
	}
	res := mustTx(t, s, "SELECT qty FROM items WHERE name = 'six'")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 6 {
		t.Fatalf("committed insert missing: %v", res.Rows)
	}
	res = mustTx(t, s, "SELECT qty FROM items WHERE id = 1")
	if res.Rows[0][0].AsInt() != 9 {
		t.Fatalf("committed update missing: %v", res.Rows)
	}
	st := db.TxnStats()
	if st.Begins != 1 || st.Commits != 1 || st.Rollbacks != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTxnRollbackRestoresBitIdentical is the core property: after ROLLBACK
// the database — rows, scan order, indexes, AUTO_INCREMENT and rowid
// counters — matches the pre-transaction state exactly.
func TestTxnRollbackRestoresBitIdentical(t *testing.T) {
	db := txnDB(t)
	s := db.NewSession()
	defer s.Close()
	before := dump(t, db)

	mustTx(t, s, "BEGIN")
	mustTx(t, s, "INSERT INTO items (name, qty) VALUES ('doomed', 1)")
	mustTx(t, s, "UPDATE items SET qty = 99, name = 'renamed' WHERE id = 2")
	mustTx(t, s, "DELETE FROM items WHERE id = 4")
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (2, -1), (3, -2)")
	mustTx(t, s, "ROLLBACK")

	if after := dump(t, db); after != before {
		t.Fatalf("rollback did not restore state:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	// The unique index must have forgotten the aborted names and remember
	// the restored ones.
	if res := mustTx(t, s, "SELECT id FROM items WHERE name = 'renamed'"); len(res.Rows) != 0 {
		t.Fatalf("aborted update visible via index: %v", res.Rows)
	}
	if res := mustTx(t, s, "SELECT id FROM items WHERE name = 'item-2'"); len(res.Rows) != 1 {
		t.Fatalf("restored row missing from index: %v", res.Rows)
	}
	// A fresh insert continues the original AUTO_INCREMENT sequence.
	res := mustTx(t, s, "INSERT INTO items (name, qty) VALUES ('after', 1)")
	if res.LastInsertID != 6 {
		t.Fatalf("post-rollback LastInsertID %d, want 6", res.LastInsertID)
	}
}

// TestTxnStatementAtomicity: a statement failing midway is undone back to
// its own start while the transaction's earlier work survives.
func TestTxnStatementAtomicity(t *testing.T) {
	db := txnDB(t)
	s := db.NewSession()
	defer s.Close()
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "INSERT INTO items (name, qty) VALUES ('keep', 1)")
	// Second row collides with the unique name index: row one of this
	// statement must be undone, the 'keep' row must not.
	_, err := s.Exec("INSERT INTO items (name, qty) VALUES ('fresh', 1), ('keep', 2)")
	if err == nil {
		t.Fatal("duplicate key must fail")
	}
	res := mustTx(t, s, "SELECT COUNT(*) FROM items WHERE name = 'fresh'")
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatal("failed statement left a partial row")
	}
	mustTx(t, s, "COMMIT")
	res = mustTx(t, s, "SELECT qty FROM items WHERE name = 'keep'")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("earlier statement lost: %v", res.Rows)
	}
}

// TestTxnWriteLocksHeldUntilCommit: a second session's write to a table the
// transaction wrote blocks until COMMIT.
func TestTxnWriteLocksHeldUntilCommit(t *testing.T) {
	db := txnDB(t)
	s1 := db.NewSession()
	defer s1.Close()
	mustTx(t, s1, "BEGIN")
	mustTx(t, s1, "UPDATE items SET qty = 1 WHERE id = 1")

	done := make(chan error, 1)
	go func() {
		s2 := db.NewSession()
		defer s2.Close()
		_, err := s2.Exec("UPDATE items SET qty = 2 WHERE id = 1")
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("concurrent write completed while the transaction held the lock")
	case <-time.After(30 * time.Millisecond):
	}
	mustTx(t, s1, "COMMIT")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	res := mustTx(t, s1, "SELECT qty FROM items WHERE id = 1")
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("writes misordered: %v", res.Rows)
	}
}

// TestTxnDeadlockTimeoutAborts: two transactions locking two tables in
// opposite orders form a cycle; the wait timeout must abort one (rolling it
// back completely) instead of hanging.
func TestTxnDeadlockTimeoutAborts(t *testing.T) {
	db := txnDB(t)
	db.SetLockWaitTimeout(40 * time.Millisecond)
	before := dump(t, db)

	s1, s2 := db.NewSession(), db.NewSession()
	defer s1.Close()
	defer s2.Close()
	mustTx(t, s1, "BEGIN")
	mustTx(t, s2, "BEGIN")
	mustTx(t, s1, "UPDATE items SET qty = 0 WHERE id = 1")
	mustTx(t, s2, "UPDATE audit SET delta = 0 WHERE id = 1")

	errc := make(chan error, 2)
	go func() { _, err := s1.Exec("INSERT INTO audit (item, delta) VALUES (1, 1)"); errc <- err }()
	go func() { _, err := s2.Exec("INSERT INTO items (name, qty) VALUES ('dl', 1)"); errc <- err }()
	e1, e2 := <-errc, <-errc
	aborted := 0
	for _, err := range []error{e1, e2} {
		if err != nil {
			if !errors.Is(err, ErrLockWaitTimeout) {
				t.Fatalf("want lock wait timeout, got %v", err)
			}
			aborted++
		}
	}
	if aborted == 0 {
		t.Fatal("deadlock resolved without any abort")
	}
	if db.TxnStats().DeadlockTimeouts != int64(aborted) {
		t.Fatalf("deadlock counter %d, want %d", db.TxnStats().DeadlockTimeouts, aborted)
	}
	// Finish the survivors; aborted transactions are already rolled back
	// (their sessions are back in autocommit).
	s1.Exec("COMMIT")
	s2.Exec("COMMIT")
	if aborted == 2 {
		if after := dump(t, db); after != before {
			t.Fatalf("both aborted but state changed:\n%s\nvs\n%s", before, after)
		}
	}
}

// TestTxnImplicitBoundaries pins MySQL's implicit rules: BEGIN commits an
// open transaction, DDL and LOCK TABLES commit too, COMMIT/ROLLBACK without
// a transaction are no-ops, and a closing session rolls back.
func TestTxnImplicitBoundaries(t *testing.T) {
	db := txnDB(t)
	s := db.NewSession()
	mustTx(t, s, "COMMIT")   // no-op
	mustTx(t, s, "ROLLBACK") // no-op
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (1, 1)")
	mustTx(t, s, "BEGIN") // implicit commit of the first txn
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (2, 2)")
	mustTx(t, s, "LOCK TABLES audit WRITE") // implicit commit
	mustTx(t, s, "UNLOCK TABLES")
	if got := mustTx(t, s, "SELECT COUNT(*) FROM audit").Rows[0][0].AsInt(); got != 2 {
		t.Fatalf("audit rows %d, want 2 (both implicitly committed)", got)
	}
	mustTx(t, s, "START TRANSACTION")
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (3, 3)")
	s.Close() // disconnect: auto-ROLLBACK
	s2 := db.NewSession()
	defer s2.Close()
	if got := mustTx(t, s2, "SELECT COUNT(*) FROM audit").Rows[0][0].AsInt(); got != 2 {
		t.Fatalf("audit rows %d after disconnect, want 2 (open txn rolled back)", got)
	}
	if db.TxnStats().Rollbacks == 0 {
		t.Fatal("disconnect rollback not counted")
	}
}

// TestTxnReadYourWrites: reads inside the transaction see its uncommitted
// writes; reads from another session block on the write lock rather than
// observing them.
func TestTxnReadYourWrites(t *testing.T) {
	db := txnDB(t)
	db.SetLockWaitTimeout(5 * time.Second)
	s := db.NewSession()
	defer s.Close()
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "UPDATE items SET qty = 77 WHERE id = 3")
	res := mustTx(t, s, "SELECT qty FROM items WHERE id = 3")
	if res.Rows[0][0].AsInt() != 77 {
		t.Fatalf("own write invisible: %v", res.Rows)
	}
	// A joined read (items write-locked by us, audit not) still works.
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (3, 67)")
	res = mustTx(t, s, `SELECT a.delta FROM audit a JOIN items i ON i.id = a.item WHERE i.qty = 77`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 67 {
		t.Fatalf("joined read inside txn: %v", res.Rows)
	}
	mustTx(t, s, "ROLLBACK")
}

// TestTxnRowidReuseNoDuplicates is the regression test for the rowOrder
// compaction bug: an aborted INSERT restores the rowid counter, the next
// transaction reuses the id, and — without the undo path compacting the
// stale rowOrder entry — scans emitted the reused row twice. No scan runs
// between abort and reuse here, which is what hid the bug from sequential
// tests.
func TestTxnRowidReuseNoDuplicates(t *testing.T) {
	db := txnDB(t)
	s := db.NewSession()
	defer s.Close()
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (1, 100)")
	mustTx(t, s, "ROLLBACK")
	// No scan between the abort and the reuse.
	mustTx(t, s, "BEGIN")
	mustTx(t, s, "INSERT INTO audit (item, delta) VALUES (1, 200)")
	mustTx(t, s, "COMMIT")
	res := mustTx(t, s, "SELECT id, delta FROM audit")
	if len(res.Rows) != 1 {
		t.Fatalf("audit rows %v, want exactly one (reused rowid emitted twice?)", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsInt() != 200 {
		t.Fatalf("unexpected surviving row: %v", res.Rows)
	}
}

// TestTxnConcurrentAbortsConverge hammers two tables from several sessions
// with a mix of commits and aborts (run with -race): the final state must
// reflect committed work only.
func TestTxnConcurrentAbortsConverge(t *testing.T) {
	db := txnDB(t)
	const workers, rounds = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < rounds; i++ {
				if _, err := s.Exec("BEGIN"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Exec("UPDATE items SET qty = qty - 1 WHERE id = 1"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Exec("INSERT INTO audit (item, delta) VALUES (?, ?)",
					Int(1), Int(int64(w*rounds+i))); err != nil {
					t.Error(err)
					return
				}
				q := "COMMIT"
				if i%3 == 0 {
					q = "ROLLBACK"
				}
				if _, err := s.Exec(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := db.NewSession()
	defer s.Close()
	commits := int64(0)
	for i := 0; i < rounds; i++ {
		if i%3 != 0 {
			commits += workers
		}
	}
	if got := mustTx(t, s, "SELECT COUNT(*) FROM audit").Rows[0][0].AsInt(); got != commits {
		t.Fatalf("audit rows %d, want %d", got, commits)
	}
	if got := mustTx(t, s, "SELECT qty FROM items WHERE id = 1").Rows[0][0].AsInt(); got != 10-commits {
		t.Fatalf("qty %d, want %d", got, 10-commits)
	}
	// Every surviving rowid is unique.
	res := mustTx(t, s, "SELECT id FROM audit")
	seen := make(map[int64]bool)
	for _, r := range res.Rows {
		id := r[0].AsInt()
		if seen[id] {
			t.Fatalf("duplicate rowid %d in scan", id)
		}
		seen[id] = true
	}
}
