package sqldb

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/sqldb/walfault"
)

// The hard-kill half of the crash harness: walfault's "exit" action is a
// real os.Exit(137) mid-commit — no deferred cleanup, no flusher shutdown,
// the kill -9 stand-in — so it needs a real process to kill. The parent
// test re-execs the test binary as a child that inserts rows and records
// every acknowledged id (fsynced to a side file before the next insert),
// arms SQLDB_WALFAULT so the child dies at a WAL crash point, then
// recovers the data directory in-process and checks the durability
// contract: the surviving rows are a gapless prefix of the insert sequence
// that contains every acknowledged id.

const walCrashChildEnv = "WAL_CRASH_CHILD_DIR"

// TestWALCrashChildProcess is the child body; it only runs when the parent
// re-execs the binary with the env set, and it never returns normally —
// the armed fault kills it.
func TestWALCrashChildProcess(t *testing.T) {
	dir := os.Getenv(walCrashChildEnv)
	if dir == "" {
		t.Skip("parent-driven child process test")
	}
	hook, err := walfault.FromEnv(os.Exit)
	if err != nil || hook == nil {
		fmt.Fprintf(os.Stderr, "child: bad SQLDB_WALFAULT: %v\n", err)
		os.Exit(3)
	}
	db := New()
	ckptBytes := int64(-1) // matrix rows targeting MidCheckpoint enable auto-checkpointing
	if v := os.Getenv("WAL_CRASH_CKPT_BYTES"); v != "" {
		ckptBytes, _ = strconv.ParseInt(v, 10, 64)
	}
	opts := WALOptions{Dir: dir, FlushInterval: 100 * time.Microsecond, CheckpointBytes: ckptBytes, Fault: hook}
	if _, err := db.AttachWAL(opts); err != nil {
		fmt.Fprintf(os.Stderr, "child: attach: %v\n", err)
		os.Exit(3)
	}
	s := db.NewSession()
	if _, err := s.Exec("CREATE TABLE seq (id INT PRIMARY KEY)"); err != nil {
		fmt.Fprintf(os.Stderr, "child: schema: %v\n", err)
		os.Exit(3)
	}
	ack, err := os.OpenFile(filepath.Join(dir, "acked"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		os.Exit(3)
	}
	for i := 1; i <= 10000; i++ {
		if _, err := s.Exec("INSERT INTO seq (id) VALUES (?)", Int(int64(i))); err != nil {
			// A Crash()-style failure can't happen here (the fault action is
			// exit); any error is a real bug.
			fmt.Fprintf(os.Stderr, "child: insert %d: %v\n", i, err)
			os.Exit(3)
		}
		fmt.Fprintf(ack, "%d\n", i)
		if err := ack.Sync(); err != nil {
			os.Exit(3)
		}
	}
	// The fault should have killed us long before 10000 inserts.
	fmt.Fprintln(os.Stderr, "child: fault never fired")
	os.Exit(4)
}

// TestWALHardKillRecovery runs the kill matrix: for each crash point and
// hit count, a child process dies mid-commit via os.Exit(137) and the
// parent recovers its directory.
func TestWALHardKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	cases := []struct {
		point     walfault.Point
		hit       int
		ckptBytes int64 // 0 = auto-checkpoint disabled in the child
	}{
		{walfault.PreAppend, 5, 0},
		{walfault.PostAppendPreFsync, 3, 0},
		{walfault.PostAppendPreFsync, 20, 0},
		{walfault.MidCheckpoint, 1, 2 << 10},
		{walfault.MidRotate, 1, 2 << 10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s@%d", tc.point, tc.hit), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			spec := fmt.Sprintf("%s:exit:%d", tc.point, tc.hit)
			cmd := exec.Command(os.Args[0], "-test.run", "^TestWALCrashChildProcess$", "-test.v")
			ckpt := int64(-1)
			if tc.ckptBytes > 0 {
				ckpt = tc.ckptBytes
			}
			cmd.Env = append(os.Environ(),
				walCrashChildEnv+"="+dir,
				"SQLDB_WALFAULT="+spec,
				fmt.Sprintf("WAL_CRASH_CKPT_BYTES=%d", ckpt),
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != 137 {
				t.Fatalf("child (%s) exited %v, want 137:\n%s", spec, err, out)
			}

			acked := readAckedIDs(t, filepath.Join(dir, "acked"))
			db, info := recoverDB(t, dir)
			s := db.NewSession()
			defer s.Close()
			// Scan order is insert order (replay preserves it), so the rows
			// come back as the prefix 1..n without an ORDER BY.
			res, err := s.Exec("SELECT id FROM seq")
			if err != nil {
				t.Fatalf("recovered db unusable (info %+v): %v", info, err)
			}
			// Gapless prefix 1..n of the insert sequence…
			for i, row := range res.Rows {
				if row[0].AsInt() != int64(i+1) {
					t.Fatalf("row %d has id %d: recovered ids are not a gapless prefix", i, row[0].AsInt())
				}
			}
			// …that covers everything the child saw acknowledged.
			if len(res.Rows) < acked {
				t.Fatalf("recovered %d rows but child had %d acknowledged commits (info %+v)",
					len(res.Rows), acked, info)
			}
		})
	}
}

// readAckedIDs returns the highest insert id whose commit the child both
// received an ack for and durably noted. Ids are written in order, so the
// last complete line is the watermark; a torn final line (the child died
// mid-write) is ignored.
func readAckedIDs(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0 // died before the first ack
	}
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	max := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if n, err := strconv.Atoi(sc.Text()); err == nil && n > max {
			max = n
		}
	}
	return max
}
