// Package ajp implements a binary web-server-to-application-container
// protocol in the spirit of AJP12, the connector the paper's testbed uses
// between Apache and Tomcat. The web server (internal/httpd) forwards
// dynamic requests through a Connector; the container (internal/servlet)
// answers through a Listener. Connections are persistent and pooled, as
// mod_jk configures.
package ajp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"sync"
	"time"

	"repro/internal/httpd"
	"repro/internal/pool"
)

const (
	frameRequest  = 0x02
	frameResponse = 0x03
	maxFrameLen   = 8 << 20
)

// writeFrame / readFrame use the same 4-byte length + 1-byte type shape as
// the database wire protocol.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrameLen {
		return fmt.Errorf("ajp: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrameLen {
		return 0, nil, fmt.Errorf("ajp: oversized frame (%d bytes)", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, err
	}
	return hdr[4], p, nil
}

type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) str(s string) { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("ajp: %s at offset %d", msg, d.off)
	}
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) rawBytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || d.off+n > len(d.b) {
		d.fail("truncated bytes")
		return nil
	}
	p := make([]byte, n)
	copy(p, d.b[d.off:d.off+n])
	d.off += n
	return p
}

// encodeRequest flattens an httpd.Request.
func encodeRequest(req *httpd.Request) []byte {
	var e enc
	e.str(req.Method)
	e.str(req.Path)
	e.str(req.Query.Encode())
	e.u32(uint32(len(req.Header)))
	for _, k := range headerKeys(req.Header) {
		e.str(k)
		e.str(req.Header[k])
	}
	e.bytes(req.Body)
	return e.b
}

func headerKeys(h httpd.Header) []string {
	ks := make([]string, 0, len(h))
	for k := range h {
		ks = append(ks, k)
	}
	// insertion-order independence: sort
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}

func decodeRequest(p []byte) (*httpd.Request, error) {
	d := &dec{b: p}
	req := &httpd.Request{Header: httpd.Header{}}
	req.Method = d.str()
	req.Path = d.str()
	rawQ := d.str()
	n := int(d.u32())
	if n > 1000 {
		return nil, errors.New("ajp: absurd header count")
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		v := d.str()
		req.Header.Set(k, v)
	}
	req.Body = d.rawBytes()
	if d.err != nil {
		return nil, d.err
	}
	q, err := url.ParseQuery(rawQ)
	if err != nil {
		return nil, fmt.Errorf("ajp: bad query: %w", err)
	}
	req.Query = q
	return req, nil
}

func encodeResponse(resp *httpd.Response) []byte {
	var e enc
	e.u32(uint32(resp.Status))
	e.u32(uint32(len(resp.Header)))
	for _, k := range headerKeys(resp.Header) {
		e.str(k)
		e.str(resp.Header[k])
	}
	e.bytes(resp.Body)
	return e.b
}

func decodeResponse(p []byte) (*httpd.Response, error) {
	d := &dec{b: p}
	resp := &httpd.Response{Status: int(d.u32()), Header: httpd.Header{}}
	n := int(d.u32())
	if n > 1000 {
		return nil, errors.New("ajp: absurd header count")
	}
	for i := 0; i < n && d.err == nil; i++ {
		k := d.str()
		v := d.str()
		resp.Header.Set(k, v)
	}
	resp.Body = d.rawBytes()
	if d.err != nil {
		return nil, d.err
	}
	return resp, nil
}

// Listener serves container-side AJP: each accepted connection carries a
// sequence of request/response frames handled by h.
type Listener struct {
	h httpd.Handler

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewListener wraps a handler.
func NewListener(h httpd.Handler) *Listener {
	if h == nil {
		panic("ajp: nil handler")
	}
	return &Listener{h: h, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr and serves in the background, returning the bound addr.
func (l *Listener) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ajp: listen %s: %w", addr, err)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return nil, errors.New("ajp: listener closed")
	}
	l.ln = ln
	l.mu.Unlock()
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			l.mu.Lock()
			if l.closed {
				l.mu.Unlock()
				conn.Close()
				return
			}
			l.conns[conn] = struct{}{}
			l.mu.Unlock()
			l.wg.Add(1)
			go l.serve(conn)
		}
	}()
	return ln.Addr(), nil
}

func (l *Listener) serve(conn net.Conn) {
	defer l.wg.Done()
	defer func() {
		conn.Close()
		l.mu.Lock()
		delete(l.conns, conn)
		l.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 32<<10)
	bw := bufio.NewWriterSize(conn, 32<<10)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return
		}
		if typ != frameRequest {
			return
		}
		req, err := decodeRequest(payload)
		var resp *httpd.Response
		if err != nil {
			resp = httpd.Error(400, err.Error())
		} else {
			resp, err = l.h.ServeHTTP(req)
			if err != nil {
				resp = httpd.Error(500, "container error")
			} else if resp == nil {
				resp = httpd.Error(404, "")
			}
		}
		if err := writeFrame(bw, frameResponse, encodeResponse(resp)); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting and drops connections.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	ln := l.ln
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	l.wg.Wait()
	return nil
}

// Connector is the web-server side: an httpd.Handler that forwards requests
// to a container over pooled persistent connections (internal/pool, sized
// as mod_jk's connection_pool_size).
type Connector struct {
	pool      *pool.Pool[*connectorConn]
	opTimeout time.Duration
}

type connectorConn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// armedUntil amortizes SetDeadline: fast back-to-back round trips
	// reuse the armed deadline while >3/4 of the op window remains.
	armedUntil time.Time
}

// NewConnector creates a connector to a container at addr with up to size
// pooled connections and the default timeouts.
func NewConnector(addr string, size int) *Connector {
	return NewConnectorT(addr, size, pool.Timeouts{})
}

// NewConnectorT creates a connector bounding dials with t.Dial, each
// round trip with t.Op, and pool borrow waits with t.Wait (zero fields
// take the pool-package defaults; negative fields disable a bound).
func NewConnectorT(addr string, size int, t pool.Timeouts) *Connector {
	if size <= 0 {
		size = 8
	}
	t = t.WithDefaults()
	waitTimeout := time.Duration(-1)
	if t.Wait > 0 {
		waitTimeout = t.Wait
	}
	return &Connector{opTimeout: t.Op, pool: pool.New(pool.Config[*connectorConn]{
		Name: "ajp@" + addr,
		Dial: func() (*connectorConn, error) {
			var nc net.Conn
			var err error
			if t.Dial > 0 {
				nc, err = net.DialTimeout("tcp", addr, t.Dial)
			} else {
				nc, err = net.Dial("tcp", addr)
			}
			if err != nil {
				return nil, fmt.Errorf("ajp: dial %s: %w", addr, err)
			}
			return &connectorConn{
				nc: nc,
				br: bufio.NewReaderSize(nc, 32<<10),
				bw: bufio.NewWriterSize(nc, 32<<10),
			}, nil
		},
		Destroy:     func(cc *connectorConn) { cc.nc.Close() },
		Size:        size,
		WaitTimeout: waitTimeout,
	})}
}

// ServeHTTP forwards the request and returns the container's response. Any
// round-trip error discards the connection; the first is retried once on a
// fresh connection, in case the pooled one was stale.
func (c *Connector) ServeHTTP(req *httpd.Request) (*httpd.Response, error) {
	var resp *httpd.Response
	err := c.pool.Do(true, nil, func(cc *connectorConn) error {
		r, err := c.roundTrip(cc, req)
		if err != nil {
			return err
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Stats snapshots the connector pool's saturation counters.
func (c *Connector) Stats() pool.Stats { return c.pool.Stats() }

func (c *Connector) roundTrip(cc *connectorConn, req *httpd.Request) (*httpd.Response, error) {
	if c.opTimeout > 0 {
		if now := time.Now(); cc.armedUntil.Sub(now) <= c.opTimeout-c.opTimeout/4 {
			cc.armedUntil = now.Add(c.opTimeout)
			cc.nc.SetDeadline(cc.armedUntil)
		}
	}
	if err := writeFrame(cc.bw, frameRequest, encodeRequest(req)); err != nil {
		return nil, err
	}
	if err := cc.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(cc.br)
	if err != nil {
		return nil, err
	}
	if typ != frameResponse {
		return nil, fmt.Errorf("ajp: unexpected frame type 0x%x", typ)
	}
	return decodeResponse(payload)
}

// Close closes idle pooled connections.
func (c *Connector) Close() { c.pool.Close() }
