package ajp

import (
	"fmt"
	"net/url"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/httpd"
)

func TestRequestEncodingRoundtrip(t *testing.T) {
	in := &httpd.Request{
		Method: "POST",
		Path:   "/tpcw/buyconfirm",
		Header: httpd.Header{},
		Query:  url.Values{"c_id": {"7"}, "x": {"a b"}},
		Body:   []byte("payload bytes"),
	}
	in.Header.Set("Cookie", "JSESSIONID=s1")
	in.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	out, err := decodeRequest(encodeRequest(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Method != in.Method || out.Path != in.Path {
		t.Fatalf("roundtrip: %+v", out)
	}
	if out.Query.Get("c_id") != "7" || out.Query.Get("x") != "a b" {
		t.Fatalf("query: %v", out.Query)
	}
	if out.Header.Get("Cookie") != "JSESSIONID=s1" {
		t.Fatalf("header: %v", out.Header)
	}
	if string(out.Body) != "payload bytes" {
		t.Fatalf("body: %q", out.Body)
	}
}

func TestResponseEncodingRoundtrip(t *testing.T) {
	in := httpd.NewResponse()
	in.Status = 404
	in.Header.Set("Set-Cookie", "JSESSIONID=abc; Path=/")
	in.WriteString("<html>no</html>")
	out, err := decodeResponse(encodeResponse(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != 404 || out.Header.Get("Set-Cookie") == "" || string(out.Body) != "<html>no</html>" {
		t.Fatalf("roundtrip: %+v", out)
	}
}

// Property: request bodies of arbitrary bytes survive the frame.
func TestRequestBodyRoundtripProperty(t *testing.T) {
	f := func(body []byte, path string) bool {
		in := &httpd.Request{Method: "GET", Path: "/" + path,
			Header: httpd.Header{}, Query: url.Values{}, Body: body}
		out, err := decodeRequest(encodeRequest(in))
		if err != nil {
			return false
		}
		return string(out.Body) == string(body) && out.Path == in.Path
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := decodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage request must error")
	}
	if _, err := decodeResponse([]byte{0xff}); err == nil {
		t.Fatal("garbage response must error")
	}
}

func TestConnectorListenerRoundtrip(t *testing.T) {
	l := NewListener(httpd.HandlerFunc(func(req *httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		fmt.Fprintf(r, "echo:%s?%s", req.Path, req.Query.Encode())
		return r, nil
	}))
	addr, err := l.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := NewConnector(addr.String(), 3)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &httpd.Request{Method: "GET", Path: fmt.Sprintf("/p%d", i),
				Header: httpd.Header{}, Query: url.Values{}}
			resp, err := c.ServeHTTP(req)
			if err != nil {
				t.Errorf("serve: %v", err)
				return
			}
			if want := fmt.Sprintf("echo:/p%d?", i); string(resp.Body) != want {
				t.Errorf("body %q, want %q", resp.Body, want)
			}
		}()
	}
	wg.Wait()
}

func TestConnectorHandlerErrorBecomes500(t *testing.T) {
	l := NewListener(httpd.HandlerFunc(func(*httpd.Request) (*httpd.Response, error) {
		return nil, fmt.Errorf("boom")
	}))
	addr, err := l.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	c := NewConnector(addr.String(), 1)
	defer c.Close()
	resp, err := c.ServeHTTP(&httpd.Request{Method: "GET", Path: "/",
		Header: httpd.Header{}, Query: url.Values{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 {
		t.Fatalf("status %d, want 500", resp.Status)
	}
}

func TestConnectorReconnectsAfterListenerRestart(t *testing.T) {
	h := httpd.HandlerFunc(func(*httpd.Request) (*httpd.Response, error) {
		return httpd.NewResponse(), nil
	})
	l := NewListener(h)
	addr, err := l.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewConnector(addr.String(), 2)
	defer c.Close()
	req := &httpd.Request{Method: "GET", Path: "/", Header: httpd.Header{}, Query: url.Values{}}
	if _, err := c.ServeHTTP(req); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2 := NewListener(h)
	if _, err := l2.Listen(addr.String()); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer l2.Close()
	if _, err := c.ServeHTTP(req); err != nil {
		t.Fatalf("retry after restart failed: %v", err)
	}
}
