package chaos

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"
)

// echoServer answers each newline-terminated line with the same line.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := c.Write([]byte(line)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// roundTrip sends one line through conn and reads the echo, bounded by
// deadline.
func roundTrip(c net.Conn, line string, deadline time.Duration) (string, error) {
	c.SetDeadline(time.Now().Add(deadline))
	if _, err := c.Write([]byte(line + "\n")); err != nil {
		return "", err
	}
	got, err := bufio.NewReader(c).ReadString('\n')
	return strings.TrimSuffix(got, "\n"), err
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestProxyForwardsCleanly(t *testing.T) {
	p, err := Listen("t", echoServer(t), Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("hello %d", i)
		got, err := roundTrip(c, msg, time.Second)
		if err != nil || got != msg {
			t.Fatalf("round trip %d: got %q err %v", i, got, err)
		}
	}
	if s := p.Stats(); s.Conns != 1 || s.Resets != 0 || s.Stalled != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLatencyFaultDelays(t *testing.T) {
	p, err := Listen("t", echoServer(t), Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := roundTrip(c, "warm", time.Second); err != nil {
		t.Fatal(err)
	}
	p.Set(Fault{Kind: Latency, Delay: 60 * time.Millisecond})
	start := time.Now()
	got, err := roundTrip(c, "slow", 2*time.Second)
	if err != nil || got != "slow" {
		t.Fatalf("got %q err %v", got, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("latency fault added only %v", d)
	}
	p.Clear()
	if s := p.Stats(); s.DelayedIO == 0 {
		t.Fatalf("stats should count delayed io: %+v", s)
	}
}

func TestStallBlackholesThenKills(t *testing.T) {
	p, err := Listen("t", echoServer(t), Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := roundTrip(c, "warm", time.Second); err != nil {
		t.Fatal(err)
	}
	p.Set(Fault{Kind: Stall})
	// The stalled round trip must time out on the client's own deadline.
	if _, err := roundTrip(c, "void", 100*time.Millisecond); err == nil {
		t.Fatal("round trip through a stalled proxy succeeded")
	} else if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline expiry, got %v", err)
	}
	// Clearing the stall must KILL the connection, not deliver the
	// buffered "void" late (that late write is exactly the divergence
	// hazard the package documents).
	p.Clear()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.SetDeadline(time.Now().Add(100 * time.Millisecond))
		buf := make([]byte, 64)
		_, err := c.Read(buf)
		if err != nil && !errors.Is(err, os.ErrDeadlineExceeded) {
			break // conn killed — EOF or RST, either is right
		}
		if err == nil {
			t.Fatal("stalled bytes were delivered after Clear")
		}
		if time.Now().After(deadline) {
			t.Fatal("connection survived Clear after a stall")
		}
	}
	if s := p.Stats(); s.Stalled != 1 {
		t.Fatalf("stats = %+v, want 1 stalled conn", s)
	}
}

func TestResetKillsEstablishedAndNew(t *testing.T) {
	p, err := Listen("t", echoServer(t), Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	if _, err := roundTrip(c, "warm", time.Second); err != nil {
		t.Fatal(err)
	}
	p.Set(Fault{Kind: Reset})
	if _, err := roundTrip(c, "dead", 500*time.Millisecond); err == nil {
		t.Fatal("round trip on a reset connection succeeded")
	}
	// New connections are accepted then slammed shut.
	c2, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err == nil {
		c2.SetDeadline(time.Now().Add(time.Second))
		if _, err := roundTrip(c2, "x", 500*time.Millisecond); err == nil {
			t.Fatal("round trip during a reset window succeeded")
		}
		c2.Close()
	}
	p.Clear()
	// Fresh connection after the window works.
	c3 := dialProxy(t, p)
	if got, err := roundTrip(c3, "back", time.Second); err != nil || got != "back" {
		t.Fatalf("after Clear: got %q err %v", got, err)
	}
}

func TestScheduleWindows(t *testing.T) {
	// Rule 1 slows everything from the start; rule 2 overrides with a
	// reset window. Last match wins.
	sched := Schedule{Seed: 42, Rules: []Rule{
		{Fault: Fault{Kind: Latency, Delay: 5 * time.Millisecond}},
		{Fault: Fault{Kind: Reset}, From: 150 * time.Millisecond, To: 300 * time.Millisecond},
	}}
	p, err := Listen("t", echoServer(t), sched)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialProxy(t, p)
	if got, err := roundTrip(c, "early", time.Second); err != nil || got != "early" {
		t.Fatalf("inside latency window: got %q err %v", got, err)
	}
	time.Sleep(200 * time.Millisecond) // now inside the reset window
	if _, err := roundTrip(c, "mid", 500*time.Millisecond); err == nil {
		t.Fatal("round trip inside the reset window succeeded")
	}
	time.Sleep(150 * time.Millisecond) // window over
	c2 := dialProxy(t, p)
	if got, err := roundTrip(c2, "late", time.Second); err != nil || got != "late" {
		t.Fatalf("after reset window: got %q err %v", got, err)
	}
}

func TestPerConnRule(t *testing.T) {
	sched := Schedule{Rules: []Rule{{Fault: Fault{Kind: Reset}, Conn: 2}}}
	p, err := Listen("t", echoServer(t), sched)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c1 := dialProxy(t, p) // conn id 1: clean
	if got, err := roundTrip(c1, "one", time.Second); err != nil || got != "one" {
		t.Fatalf("conn 1: got %q err %v", got, err)
	}
	c2 := dialProxy(t, p) // conn id 2: reset on accept
	if _, err := roundTrip(c2, "two", 500*time.Millisecond); err == nil {
		t.Fatal("conn 2 should be reset by its rule")
	}
	if got, err := roundTrip(c1, "again", time.Second); err != nil || got != "again" {
		t.Fatalf("conn 1 after conn 2 reset: got %q err %v", got, err)
	}
}

func TestFlapGeneratesAlternatingWindows(t *testing.T) {
	var s Schedule
	s.Flap(100*time.Millisecond, 3, 20*time.Millisecond, 30*time.Millisecond)
	if len(s.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(s.Rules))
	}
	wantFrom := []time.Duration{100 * time.Millisecond, 150 * time.Millisecond, 200 * time.Millisecond}
	for i, r := range s.Rules {
		if r.Fault.Kind != Reset || r.From != wantFrom[i] || r.To != wantFrom[i]+20*time.Millisecond {
			t.Fatalf("rule %d = %+v", i, r)
		}
	}
}

func TestThrottleSlowsBulkTransfer(t *testing.T) {
	p, err := Listen("t", echoServer(t), Schedule{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Set(Fault{Kind: Throttle, BytesPerSec: 64 << 10})
	c := dialProxy(t, p)
	payload := strings.Repeat("x", 16<<10)
	start := time.Now()
	got, err := roundTrip(c, payload, 5*time.Second)
	if err != nil || got != payload {
		t.Fatalf("throttled transfer: len(got)=%d err=%v", len(got), err)
	}
	// 16KiB each way at 64KiB/s ≈ 500ms; assert well above untroubled.
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("throttle had no effect: %v", d)
	}
}
