// Package chaos is a fault-injecting TCP proxy for exercising the stack's
// slow-failure paths. The paper's experiment kills a tier and asks which
// bottleneck surfaces next, but a clean kill is the easy case — a closed
// listener refuses instantly. The dominant real-world failure mode is the
// peer that is *up but wrong*: slow, stalled, resetting mid-stream, or
// flapping. chaos.Proxy sits between a client and any TCP backend (db
// wire, AJP, RMI, HTTP) and applies scripted faults per connection, so
// tests can replay the same fault sequence deterministically and assert
// the stack degrades instead of hanging.
//
// Faults are scheduled two ways, composable:
//
//   - A Schedule: an ordered list of rules (connection matcher + fault +
//     time window relative to proxy start). The last matching rule wins,
//     so a broad "slow everything" rule can be overridden by a narrow
//     "but reset connection 3". Jitter is seeded per connection from
//     (Schedule.Seed, conn id), so one seed replays one fault sequence.
//   - Manual overrides: Set(fault)/Clear() flip the active fault for new
//     *and established* connections — the Lab's SlowReplica/
//     PartitionReplica hooks use this.
//
// Safety invariant — stalls kill: a stalled (blackholed) connection
// buffers nothing for later. When its stall window ends, or the override
// clears, the connection is torn down, never resumed. Resuming would
// deliver a write the client long since timed out on — applied on a
// replica the cluster already ejected, silently diverging the very
// byte-identical invariant the chaos tests assert.
package chaos

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names a fault class.
type Kind int

const (
	// None forwards bytes untouched.
	None Kind = iota
	// Latency delays each read by Delay (+ up to Jitter, seeded).
	Latency
	// Stall blackholes the connection: bytes stop flowing in both
	// directions but the sockets stay open, so the peer blocks until its
	// own deadline fires. Leaving a stall kills the connection.
	Stall
	// Reset tears the connection down mid-stream (RST-like: close with
	// pending data) and closes new connections immediately on accept.
	Reset
	// Throttle caps forwarding to BytesPerSec, the saturated-uplink shape.
	Throttle
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Reset:
		return "reset"
	case Throttle:
		return "throttle"
	}
	return "unknown"
}

// Fault is one concrete fault: a kind plus its parameters.
type Fault struct {
	Kind        Kind
	Delay       time.Duration // Latency: fixed delay per read
	Jitter      time.Duration // Latency: additional seeded random delay in [0,Jitter)
	BytesPerSec int           // Throttle: forwarding cap
}

// Rule scripts a fault for a slice of connections and a slice of time.
// Zero-value matchers match everything: From==0,To==0 means the whole
// run; Conn==0 means every connection (connection ids start at 1).
type Rule struct {
	Fault Fault
	From  time.Duration // window start, relative to proxy start
	To    time.Duration // window end (0 = open-ended)
	Conn  int           // match one connection id (0 = all)
}

func (r Rule) matches(connID int, since time.Duration) bool {
	if r.Conn != 0 && r.Conn != connID {
		return false
	}
	if since < r.From {
		return false
	}
	if r.To != 0 && since >= r.To {
		return false
	}
	return true
}

// Schedule is a deterministic fault script. Rules are evaluated in order
// and the last match wins; no match means no fault. The same Seed and
// rule list replay the same per-connection jitter sequence.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// Flap appends alternating Reset windows to a schedule: starting at
// `from`, `cycles` windows of `down` downtime separated by `up` of
// healthy forwarding. It models the link that keeps coming back just
// long enough to be trusted again.
func (s *Schedule) Flap(from time.Duration, cycles int, down, up time.Duration) {
	at := from
	for i := 0; i < cycles; i++ {
		s.Rules = append(s.Rules, Rule{Fault: Fault{Kind: Reset}, From: at, To: at + down})
		at += down + up
	}
}

// Stats counts what the proxy did to its traffic.
type Stats struct {
	Conns     int64 `json:"conns"`
	Resets    int64 `json:"resets"`
	Stalled   int64 `json:"stalled"`
	DelayedIO int64 `json:"delayed_io"`
}

// Proxy is a fault-injecting TCP forwarder. Create with Listen, point
// clients at Addr(), and script faults via the Schedule or Set/Clear.
type Proxy struct {
	name    string
	backend string
	ln      net.Listener
	sched   Schedule
	start   time.Time

	override atomic.Pointer[Fault] // manual Set/Clear, wins over the schedule

	mu     sync.Mutex
	conns  map[*proxyConn]struct{}
	closed bool
	nextID int

	conns_    atomic.Int64
	resets    atomic.Int64
	stalled   atomic.Int64
	delayedIO atomic.Int64
}

// Listen starts a proxy on a fresh loopback port forwarding to backend.
func Listen(name, backend string, sched Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		name:    name,
		backend: backend,
		ln:      ln,
		sched:   sched,
		start:   time.Now(),
		conns:   make(map[*proxyConn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial instead of
// the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Backend returns the address the proxy forwards to.
func (p *Proxy) Backend() string { return p.backend }

// Set overrides the schedule with a manual fault for all connections,
// current and future, until Clear. Setting a Stall freezes established
// connections in place; per the stall-kills invariant they are torn down
// when the override changes.
func (p *Proxy) Set(f Fault) {
	p.override.Store(&f)
	p.poke(f)
}

// Clear removes the manual override, returning control to the schedule.
func (p *Proxy) Clear() {
	p.override.Store(nil)
	p.poke(Fault{Kind: None})
}

// poke re-evaluates established connections after an override flip:
// stalled connections are killed (never resumed), and a Reset override
// kills everything immediately.
func (p *Proxy) poke(now Fault) {
	p.mu.Lock()
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		if now.Kind == Reset {
			c.kill()
			p.resets.Add(1)
			continue
		}
		if c.wasStalled.Load() {
			// The stall is over one way or another; late delivery of the
			// bytes buffered behind it is forbidden.
			c.kill()
		}
	}
}

// Stats snapshots the proxy's fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:     p.conns_.Load(),
		Resets:    p.resets.Load(),
		Stalled:   p.stalled.Load(),
		DelayedIO: p.delayedIO.Load(),
	}
}

// Close stops accepting and tears down every proxied connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]*proxyConn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.kill()
	}
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		cl, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			cl.Close()
			return
		}
		p.nextID++
		id := p.nextID
		p.mu.Unlock()
		p.conns_.Add(1)
		go p.serve(cl, id)
	}
}

// faultFor resolves the active fault for a connection right now: the
// manual override if set, else the last matching schedule rule.
func (p *Proxy) faultFor(connID int) Fault {
	if f := p.override.Load(); f != nil {
		return *f
	}
	since := time.Since(p.start)
	active := Fault{Kind: None}
	for _, r := range p.sched.Rules {
		if r.matches(connID, since) {
			active = r.Fault
		}
	}
	return active
}

func (p *Proxy) serve(cl net.Conn, id int) {
	if p.faultFor(id).Kind == Reset {
		// Accept-then-slam: the flapping listener's signature.
		p.resets.Add(1)
		abortiveClose(cl)
		return
	}
	be, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		cl.Close()
		return
	}
	c := &proxyConn{p: p, id: id, cl: cl, be: be,
		// rng is per-connection and seeded from (schedule seed, conn id):
		// jitter replays exactly for a given seed, independent of
		// goroutine interleaving across connections.
		rng: rand.New(rand.NewPCG(p.sched.Seed, uint64(id)))}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cl.Close()
		be.Close()
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.pump(cl, be) }()
	go func() { defer wg.Done(); c.pump(be, cl) }()
	wg.Wait()
	c.kill()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

type proxyConn struct {
	p      *Proxy
	id     int
	cl, be net.Conn
	rng    *rand.Rand
	rngMu  sync.Mutex // two pumps share the seeded stream

	killed     atomic.Bool
	wasStalled atomic.Bool
}

// kill closes both halves. Closing with unread buffered data is as close
// to an RST as portable Go gets, and the wire/AJP/RMI clients treat any
// mid-stream EOF as a transport error anyway.
func (c *proxyConn) kill() {
	if c.killed.CompareAndSwap(false, true) {
		abortiveClose(c.cl)
		c.be.Close()
	}
}

// abortiveClose makes Close send RST instead of FIN where the platform
// allows it, so a client blocked on a read fails fast rather than seeing
// a graceful EOF. Errors are ignored — plain Close is a fine fallback.
func abortiveClose(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	nc.Close()
}

// pump copies src→dst one read at a time, consulting the active fault
// before each forward. Short reads are fine: every chunk re-evaluates the
// schedule, so a connection slides between fault windows mid-stream.
func (c *proxyConn) pump(src, dst net.Conn) {
	buf := make([]byte, 16<<10)
	for {
		// Bound each read so a quiet connection still notices a fault
		// window opening (e.g. Reset at t=200ms must kill an idle conn).
		src.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			if !c.apply(buf[:n], dst) {
				return
			}
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Idle poll tick: re-check the schedule, keep pumping.
				f := c.p.faultFor(c.id)
				switch f.Kind {
				case Reset:
					c.p.resets.Add(1)
					c.kill()
					return
				case Stall:
					if !c.stall() {
						return
					}
				}
				continue
			}
			c.kill()
			return
		}
	}
}

// apply forwards one chunk under the currently active fault. Returns
// false when the connection died.
func (c *proxyConn) apply(chunk []byte, dst net.Conn) bool {
	switch f := c.p.faultFor(c.id); f.Kind {
	case Reset:
		c.p.resets.Add(1)
		c.kill()
		return false
	case Stall:
		// stall blackholes until the window ends, then kills (the
		// stall-kills invariant): the chunk is never delivered.
		return c.stall()
	case Latency:
		d := f.Delay
		if f.Jitter > 0 {
			c.rngMu.Lock()
			d += time.Duration(c.rng.Int64N(int64(f.Jitter)))
			c.rngMu.Unlock()
		}
		if d > 0 {
			c.p.delayedIO.Add(1)
			if !c.sleep(d) {
				return false
			}
		}
	case Throttle:
		if f.BytesPerSec > 0 {
			d := time.Duration(float64(len(chunk)) / float64(f.BytesPerSec) * float64(time.Second))
			c.p.delayedIO.Add(1)
			if !c.sleep(d) {
				return false
			}
		}
	}
	dst.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := dst.Write(chunk); err != nil {
		c.kill()
		return false
	}
	return true
}

// stall blackholes the connection until its stall window ends, then kills
// it (see the package invariant). Always leaves the connection dead;
// returns false for the caller's convenience.
func (c *proxyConn) stall() bool {
	if c.wasStalled.CompareAndSwap(false, true) {
		c.p.stalled.Add(1)
	}
	for !c.killed.Load() {
		f := c.p.faultFor(c.id)
		if f.Kind != Stall {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.kill()
	return false
}

// sleep waits d in small slices so a Reset window opening mid-delay still
// kills the connection promptly. Returns false if killed.
func (c *proxyConn) sleep(d time.Duration) bool {
	const slice = 10 * time.Millisecond
	for d > 0 {
		if c.killed.Load() {
			return false
		}
		step := d
		if step > slice {
			step = slice
		}
		time.Sleep(step)
		d -= step
		if f := c.p.faultFor(c.id); f.Kind == Reset || f.Kind == Stall {
			if f.Kind == Reset {
				c.p.resets.Add(1)
			} else {
				c.stall()
			}
			c.kill()
			return false
		}
	}
	return !c.killed.Load()
}
