package workload

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/httpd"
)

// testProfile exposes two interactions with distinguishable paths.
func testProfile() *Profile {
	return &Profile{
		Name: "test",
		Interactions: []Interaction{
			{Name: "read", Build: func(g *datagen.Gen) Request {
				return Request{Method: "GET", Path: fmt.Sprintf("/read?x=%d", g.Intn(10))}
			}},
			{Name: "write", Build: func(g *datagen.Gen) Request {
				return Request{Method: "POST", Path: "/write", Body: "v=1"}
			}},
		},
		Mixes: map[string][]float64{
			"mostly-read": {0.9, 0.1},
			"only-read":   {1.0, 0.0},
		},
	}
}

func startEcho(t *testing.T, withImages bool) (string, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var reads, writes atomic.Int64
	mux := httpd.NewMux()
	mux.HandleFunc("/read", func(req *httpd.Request) (*httpd.Response, error) {
		reads.Add(1)
		r := httpd.NewResponse()
		if withImages {
			r.WriteString(`<html><img src="/img/a.gif"><img src="/img/b.gif"></html>`)
		} else {
			r.WriteString("<html>ok</html>")
		}
		return r, nil
	})
	mux.HandleFunc("/write", func(req *httpd.Request) (*httpd.Response, error) {
		writes.Add(1)
		r := httpd.NewResponse()
		r.WriteString("<html>done</html>")
		return r, nil
	})
	mux.HandleFunc("/img/", func(req *httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		r.Header.Set("Content-Type", "image/gif")
		r.WriteString("GIF89a")
		return r, nil
	})
	srv := httpd.NewServer(mux, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String(), &reads, &writes
}

func TestRunCollectsMetrics(t *testing.T) {
	addr, reads, writes := startEcho(t, false)
	rep, err := Run(addr, testProfile(), Config{
		Clients: 4, Mix: "mostly-read",
		ThinkMean: time.Millisecond, SessionMean: 200 * time.Millisecond,
		RampUp: 50 * time.Millisecond, Measure: 400 * time.Millisecond,
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Interactions == 0 || rep.Errors != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.ThroughputIPM <= 0 || rep.Latency.Count() == 0 {
		t.Fatalf("metrics missing: %+v", rep)
	}
	if reads.Load() == 0 {
		t.Fatal("server saw no reads")
	}
	// mostly-read mix should strongly favor reads.
	if rep.ByInteraction["read"] < rep.ByInteraction["write"] {
		t.Fatalf("mix not respected: %+v", rep.ByInteraction)
	}
	_ = writes
}

func TestMixZeroWeightNeverRuns(t *testing.T) {
	addr, _, writes := startEcho(t, false)
	_, err := Run(addr, testProfile(), Config{
		Clients: 3, Mix: "only-read",
		ThinkMean: time.Millisecond, SessionMean: 100 * time.Millisecond,
		Measure: 200 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if writes.Load() != 0 {
		t.Fatalf("zero-weight interaction ran %d times", writes.Load())
	}
}

func TestImageFetching(t *testing.T) {
	addr, _, _ := startEcho(t, true)
	rep, err := Run(addr, testProfile(), Config{
		Clients: 2, Mix: "only-read",
		ThinkMean: time.Millisecond, SessionMean: 100 * time.Millisecond,
		Measure: 300 * time.Millisecond, FetchImages: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ImageFetches < rep.Interactions {
		t.Fatalf("expected ~2 images per page: %d images / %d interactions",
			rep.ImageFetches, rep.Interactions)
	}
}

func TestUnknownMix(t *testing.T) {
	if _, err := Run("127.0.0.1:1", testProfile(), Config{Mix: "nope"}); err == nil {
		t.Fatal("unknown mix must fail")
	}
}

func TestImageSrcParsing(t *testing.T) {
	html := `<html><img src="/a.gif">text<img src="/b/c.png"><img src=></html>`
	got := imageSrcs(html)
	if len(got) != 2 || got[0] != "/a.gif" || got[1] != "/b/c.png" {
		t.Fatalf("imageSrcs: %v", got)
	}
	if srcs := imageSrcs("no images here"); len(srcs) != 0 {
		t.Fatalf("phantom images: %v", srcs)
	}
}

func TestDeterministicPick(t *testing.T) {
	p := testProfile()
	c1 := emulatedClient{profile: p, weights: p.Mixes["mostly-read"], g: datagen.New(7)}
	c2 := emulatedClient{profile: p, weights: p.Mixes["mostly-read"], g: datagen.New(7)}
	for i := 0; i < 100; i++ {
		if c1.pick() != c2.pick() {
			t.Fatal("same seed diverged")
		}
	}
}
