// Package workload is the client-browser emulator of §4.1: each emulated
// client runs sessions of interactions against the web server over one
// persistent HTTP connection, choosing the next interaction from a state
// transition matrix, thinking for negative-exponentially distributed times
// between interactions, and fetching the images embedded in each page. The
// run is split into ramp-up, measurement and ramp-down phases; only
// completions inside the measurement window count (§4.5).
package workload

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datagen"
	"repro/internal/httpd/httpclient"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Request is one interaction's HTTP request.
type Request struct {
	Method      string
	Path        string
	Body        string
	ContentType string
}

// Interaction is one of a site's interaction types.
type Interaction struct {
	Name string
	// Build creates a concrete request with randomized parameters.
	Build func(g *datagen.Gen) Request
}

// Profile describes a site to drive: its interactions and named mixes.
type Profile struct {
	Name         string
	Interactions []Interaction
	// Mixes maps a mix name to per-interaction probabilities. Each row of
	// the state transition matrix equals the mix distribution (the
	// memoryless matrix preserving the paper's mix ratios; see DESIGN.md).
	Mixes map[string][]float64
}

// Config controls a run. Times are real durations — the emulator drives a
// real server, so tests scale them down from TPC-W's 7 s / 15 min.
type Config struct {
	Clients     int
	Mix         string
	ThinkMean   time.Duration // TPC-W: 7s, exponential
	SessionMean time.Duration // TPC-W: 15min, exponential
	RampUp      time.Duration
	Measure     time.Duration
	RampDown    time.Duration
	Seed        int64
	FetchImages bool
	// Timeout bounds one HTTP round trip.
	Timeout time.Duration
	// OnMeasureStart / OnMeasureEnd run as the measurement window opens
	// and closes — core.Lab.Run uses them to snapshot server telemetry
	// over exactly the measured interval, excluding ramp phases.
	OnMeasureStart func()
	OnMeasureEnd   func()
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 50 * time.Millisecond
	}
	if c.SessionMean <= 0 {
		c.SessionMean = 100 * c.ThinkMean
	}
	if c.Measure <= 0 {
		c.Measure = time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// Report summarizes a run.
type Report struct {
	Mix             string
	Clients         int
	Interactions    int64   // completions inside the measurement window
	ThroughputIPM   float64 // interactions per minute
	Errors          int64
	ImageFetches    int64
	Latency         *stats.Reservoir
	ByInteraction   map[string]int64
	MeasureDuration time.Duration
	// Tiers is the server stack's per-tier saturation over the run —
	// which tier bottlenecked, the paper's headline observable. It is
	// filled by callers with server-side access (core.Lab.Run) or from a
	// /status fetch (cmd/loadgen); nil when unavailable.
	Tiers *telemetry.Snapshot
}

// Bottleneck names the saturated tier, or "" when no telemetry attached.
func (r *Report) Bottleneck() string {
	if r.Tiers == nil {
		return ""
	}
	return r.Tiers.Bottleneck()
}

// FormatTiers renders the per-tier saturation section, or "" when no
// telemetry attached.
func (r *Report) FormatTiers() string {
	if r.Tiers == nil {
		return ""
	}
	return r.Tiers.Format()
}

// Run drives the profile against the web server at addr ("host:port").
func Run(addr string, p *Profile, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	weights, ok := p.Mixes[cfg.Mix]
	if !ok {
		return nil, fmt.Errorf("workload: profile %q has no mix %q", p.Name, cfg.Mix)
	}
	if len(weights) != len(p.Interactions) {
		return nil, fmt.Errorf("workload: mix %q has %d weights for %d interactions",
			cfg.Mix, len(weights), len(p.Interactions))
	}

	var (
		completed  atomic.Int64
		errors     atomic.Int64
		imgFetches atomic.Int64
		inWindow   atomic.Bool
	)
	latency := stats.NewReservoir(8192, cfg.Seed)
	byInter := stats.NewCounter()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := emulatedClient{
				addr: addr, profile: p, weights: weights, cfg: cfg,
				g:    datagen.New(cfg.Seed + int64(i)*7919),
				stop: stop,
			}
			c.run(&completed, &errors, &imgFetches, &inWindow, latency, byInter)
		}()
	}

	sleepInterruptible(cfg.RampUp, stop)
	if cfg.OnMeasureStart != nil {
		cfg.OnMeasureStart()
	}
	inWindow.Store(true)
	start := time.Now()
	sleepInterruptible(cfg.Measure, stop)
	inWindow.Store(false)
	measured := time.Since(start)
	if cfg.OnMeasureEnd != nil {
		cfg.OnMeasureEnd()
	}
	sleepInterruptible(cfg.RampDown, stop)
	close(stop)
	wg.Wait()

	n := completed.Load()
	return &Report{
		Mix:             cfg.Mix,
		Clients:         cfg.Clients,
		Interactions:    n,
		ThroughputIPM:   float64(n) / measured.Seconds() * 60,
		Errors:          errors.Load(),
		ImageFetches:    imgFetches.Load(),
		Latency:         latency,
		ByInteraction:   byInter.Snapshot(),
		MeasureDuration: measured,
	}, nil
}

func sleepInterruptible(d time.Duration, stop chan struct{}) {
	if d <= 0 {
		return
	}
	select {
	case <-time.After(d):
	case <-stop:
	}
}

type emulatedClient struct {
	addr    string
	profile *Profile
	weights []float64
	cfg     Config
	g       *datagen.Gen
	stop    chan struct{}
}

func (c *emulatedClient) run(completed, errors, imgFetches *atomic.Int64,
	inWindow *atomic.Bool, latency *stats.Reservoir, byInter *stats.Counter) {
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		// One session: a fresh persistent connection for its lifetime.
		hc := httpclient.New(c.addr, c.cfg.Timeout)
		sessionEnd := time.Now().Add(c.exp(c.cfg.SessionMean))
		for time.Now().Before(sessionEnd) {
			select {
			case <-c.stop:
				hc.Close()
				return
			default:
			}
			idx := c.pick()
			inter := c.profile.Interactions[idx]
			req := inter.Build(c.g)
			start := time.Now()
			ok := c.doInteraction(hc, req, imgFetches)
			elapsed := time.Since(start)
			if inWindow.Load() {
				if ok {
					completed.Add(1)
					latency.Add(elapsed.Seconds())
					byInter.Inc(inter.Name)
				} else {
					errors.Add(1)
				}
			}
			c.think()
		}
		hc.Close()
	}
}

// doInteraction performs the request plus embedded image fetches.
func (c *emulatedClient) doInteraction(hc *httpclient.Client, req Request, imgFetches *atomic.Int64) bool {
	var resp *httpclient.Response
	var err error
	if req.Method == "POST" {
		resp, err = hc.PostForm(req.Path, req.Body)
	} else {
		resp, err = hc.Get(req.Path)
	}
	if err != nil || resp.Status >= 500 {
		return false
	}
	if c.cfg.FetchImages {
		for _, src := range imageSrcs(string(resp.Body)) {
			if r, err := hc.Get(src); err == nil && r.Status < 500 {
				imgFetches.Add(1)
			}
		}
	}
	return true
}

// imageSrcs extracts <img src="..."> references, the embedded objects the
// emulated browser requests with each page (§3.1).
func imageSrcs(html string) []string {
	var out []string
	rest := html
	for {
		i := strings.Index(rest, `<img src="`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`<img src="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return out
		}
		out = append(out, rest[:j])
		rest = rest[j:]
	}
}

// pick samples the next interaction from the transition matrix row.
func (c *emulatedClient) pick() int {
	x := c.g.Float64()
	var cum float64
	for i, w := range c.weights {
		cum += w
		if x < cum {
			return i
		}
	}
	return len(c.weights) - 1
}

// think sleeps a negative-exponential think time truncated at 10x the mean
// (TPC-W clause 5.3.1.1).
func (c *emulatedClient) think() {
	d := c.exp(c.cfg.ThinkMean)
	if max := 10 * c.cfg.ThinkMean; d > max {
		d = max
	}
	sleepInterruptible(d, c.stop)
}

func (c *emulatedClient) exp(mean time.Duration) time.Duration {
	u := c.g.Float64()
	for u == 0 {
		u = c.g.Float64()
	}
	return time.Duration(-float64(mean) * ln(u))
}

// ln isolates the math dependency for the exponential sampler.
func ln(x float64) float64 { return math.Log(x) }
