package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestReservoirExactStats(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := 1; i <= 5; i++ {
		r.Add(float64(i))
	}
	if r.Count() != 5 || r.Mean() != 3 || r.Min() != 1 || r.Max() != 5 {
		t.Fatalf("stats: n=%d mean=%g min=%g max=%g", r.Count(), r.Mean(), r.Min(), r.Max())
	}
	if sd := r.StdDev(); math.Abs(sd-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev %g", sd)
	}
}

func TestReservoirPercentiles(t *testing.T) {
	r := NewReservoir(1000, 1)
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	if p := r.Percentile(50); math.Abs(p-50.5) > 1 {
		t.Fatalf("p50 %g", p)
	}
	if p := r.Percentile(95); math.Abs(p-95) > 1.5 {
		t.Fatalf("p95 %g", p)
	}
	if r.Percentile(0) != 1 || r.Percentile(100) != 100 {
		t.Fatalf("extremes: %g %g", r.Percentile(0), r.Percentile(100))
	}
}

func TestReservoirSamplingBounded(t *testing.T) {
	r := NewReservoir(64, 2)
	for i := 0; i < 10000; i++ {
		r.Add(float64(i % 500))
	}
	if r.Count() != 10000 {
		t.Fatalf("count %d", r.Count())
	}
	// Percentile still sane on the subsample.
	if p := r.Percentile(50); p < 100 || p > 400 {
		t.Fatalf("p50 from sample: %g", p)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir(8, 1)
	if r.Mean() != 0 || r.Percentile(50) != 0 || r.Min() != 0 || r.Max() != 0 || r.StdDev() != 0 {
		t.Fatal("empty reservoir must report zeros")
	}
}

func TestReservoirConcurrent(t *testing.T) {
	r := NewReservoir(128, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(1)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 || r.Mean() != 1 {
		t.Fatalf("count %d mean %g", r.Count(), r.Mean())
	}
}

// Property: mean lies within [min, max] for any input set.
func TestReservoirMeanBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		ok := true
		for _, v := range vals {
			// The exact-sum accumulators overflow near MaxFloat64; the
			// metric domain is latencies in seconds.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		r := NewReservoir(32, 5)
		for _, v := range vals {
			r.Add(v)
		}
		if r.Count() > 0 {
			m := r.Mean()
			ok = m >= r.Min()-1e-9*math.Abs(r.Min())-1e-9 &&
				m <= r.Max()+1e-9*math.Abs(r.Max())+1e-9
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	c.Inc("a")
	c.Inc("b")
	if c.Total() != 3 || c.Get("a") != 2 || c.Get("b") != 1 || c.Get("zz") != 0 {
		t.Fatalf("counter: %+v", c.Snapshot())
	}
	snap := c.Snapshot()
	c.Inc("a")
	if snap["a"] != 2 {
		t.Fatal("snapshot must be a copy")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc("k")
			}
		}()
	}
	wg.Wait()
	if c.Get("k") != 4000 {
		t.Fatalf("lost increments: %d", c.Get("k"))
	}
}
