// Package stats provides the measurement utilities the experiment harness
// uses: latency reservoirs with percentiles, counters, and interval
// throughput — the role the sysstat post-mortem analysis plays in the
// paper's methodology (§4.5).
package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Reservoir is a fixed-size uniform sample of observations (Vitter's
// algorithm R), safe for concurrent use.
type Reservoir struct {
	mu    sync.Mutex
	cap   int
	seen  int64
	vals  []float64
	sum   float64
	sumSq float64
	min   float64
	max   float64
	r     *rand.Rand
}

// NewReservoir creates a reservoir keeping up to capacity samples.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Reservoir{cap: capacity, r: rand.New(rand.NewSource(seed)),
		min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (rv *Reservoir) Add(v float64) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	rv.seen++
	rv.sum += v
	rv.sumSq += v * v
	if v < rv.min {
		rv.min = v
	}
	if v > rv.max {
		rv.max = v
	}
	if len(rv.vals) < rv.cap {
		rv.vals = append(rv.vals, v)
		return
	}
	if j := rv.r.Int63n(rv.seen); j < int64(rv.cap) {
		rv.vals[j] = v
	}
}

// Count returns the number of observations.
func (rv *Reservoir) Count() int64 {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return rv.seen
}

// Mean returns the exact mean over all observations (not just the sample).
func (rv *Reservoir) Mean() float64 {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.seen == 0 {
		return 0
	}
	return rv.sum / float64(rv.seen)
}

// StdDev returns the exact population standard deviation.
func (rv *Reservoir) StdDev() float64 {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.seen == 0 {
		return 0
	}
	m := rv.sum / float64(rv.seen)
	v := rv.sumSq/float64(rv.seen) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (rv *Reservoir) Min() float64 {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.seen == 0 {
		return 0
	}
	return rv.min
}

// Max returns the largest observation (0 when empty).
func (rv *Reservoir) Max() float64 {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.seen == 0 {
		return 0
	}
	return rv.max
}

// Percentile estimates the p-th percentile (0 < p < 100) from the sample.
func (rv *Reservoir) Percentile(p float64) float64 {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if len(rv.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), rv.vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Counter is a concurrent event counter with per-key breakdown.
type Counter struct {
	mu    sync.Mutex
	total int64
	byKey map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{byKey: make(map[string]int64)} }

// Inc adds one event under key.
func (c *Counter) Inc(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	c.byKey[key]++
}

// Total returns the event count.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Get returns the count for one key.
func (c *Counter) Get(key string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKey[key]
}

// Snapshot returns a copy of the per-key counts.
func (c *Counter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.byKey))
	for k, v := range c.byKey {
		out[k] = v
	}
	return out
}
