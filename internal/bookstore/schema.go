// Package bookstore implements the paper's online bookstore benchmark: the
// TPC-W application (§3.1) with its eight tables and fourteen interactions,
// three workload mixes (browsing 95%, shopping 80%, ordering 50% read-only),
// and two implementations of the application logic — a hand-written SQL
// layer shared by the script-module and servlet deployments, and an
// EJB session-façade variant over entity beans (ejb.go).
package bookstore

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// Scale sizes the generated database. The paper's full population is
// 10,000 items and 288,000 customers (350 MB); DefaultScale divides by 20
// so tests and examples stay fast while keeping realistic selectivities.
type Scale struct {
	Items     int
	Customers int
	Authors   int
	Countries int
	Orders    int // pre-existing order history
}

// DefaultScale is 1/20 of the paper's population.
func DefaultScale() Scale {
	return Scale{Items: 500, Customers: 14400, Authors: 125, Countries: 92, Orders: 1200}
}

// PaperScale is the population from TPC-W as the paper configures it.
func PaperScale() Scale {
	return Scale{Items: 10000, Customers: 288000, Authors: 2500, Countries: 92, Orders: 25920}
}

// TinyScale keeps unit tests fast.
func TinyScale() Scale {
	return Scale{Items: 60, Customers: 200, Authors: 15, Countries: 10, Orders: 50}
}

// Subjects are the TPC-W book subject categories.
var Subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"YOUTH", "TRAVEL",
}

// SchemaSQL returns the DDL for the eight TPC-W tables plus indexes.
func SchemaSQL() []string {
	return []string{
		`CREATE TABLE countries (
			id INT PRIMARY KEY AUTO_INCREMENT,
			name VARCHAR(50) NOT NULL)`,
		`CREATE TABLE authors (
			id INT PRIMARY KEY AUTO_INCREMENT,
			fname VARCHAR(20) NOT NULL,
			lname VARCHAR(20) NOT NULL)`,
		`CREATE INDEX idx_author_lname ON authors (lname)`,
		`CREATE TABLE items (
			id INT PRIMARY KEY AUTO_INCREMENT,
			title VARCHAR(60) NOT NULL,
			author_id INT NOT NULL,
			pub_date INT,
			subject VARCHAR(20),
			descr TEXT,
			cost FLOAT,
			stock INT,
			total_sold INT)`,
		`CREATE INDEX idx_item_subject ON items (subject)`,
		`CREATE INDEX idx_item_author ON items (author_id)`,
		`CREATE TABLE customers (
			id INT PRIMARY KEY AUTO_INCREMENT,
			uname VARCHAR(20) NOT NULL,
			passwd VARCHAR(20),
			fname VARCHAR(20),
			lname VARCHAR(20),
			addr_id INT,
			phone VARCHAR(16),
			email VARCHAR(50),
			discount FLOAT)`,
		`CREATE UNIQUE INDEX idx_cust_uname ON customers (uname)`,
		`CREATE TABLE address (
			id INT PRIMARY KEY AUTO_INCREMENT,
			street VARCHAR(40),
			city VARCHAR(30),
			country_id INT)`,
		`CREATE TABLE orders (
			id INT PRIMARY KEY AUTO_INCREMENT,
			customer_id INT NOT NULL,
			o_date INT,
			subtotal FLOAT,
			total FLOAT,
			status VARCHAR(16))`,
		`CREATE INDEX idx_order_customer ON orders (customer_id)`,
		`CREATE TABLE order_line (
			id INT PRIMARY KEY AUTO_INCREMENT,
			order_id INT NOT NULL,
			item_id INT NOT NULL,
			qty INT,
			discount FLOAT)`,
		`CREATE INDEX idx_ol_order ON order_line (order_id)`,
		`CREATE TABLE credit_info (
			id INT PRIMARY KEY AUTO_INCREMENT,
			order_id INT NOT NULL,
			cc_type VARCHAR(10),
			cc_number VARCHAR(16),
			cc_expiry INT,
			auth_id VARCHAR(16))`,
		`CREATE INDEX idx_ci_order ON credit_info (order_id)`,
	}
}

// Execer abstracts the two ways statements reach the database: a pooled
// wire client or an in-process session. Exec ships SQL text; ExecCached is
// the prepared-statement fast path for the statements an interaction
// repeats on every request (for in-process sessions the two are identical —
// the database's plan cache already deduplicates the parse).
type Execer interface {
	Exec(query string, args ...sqldb.Value) (*sqldb.Result, error)
	ExecCached(query string, args ...sqldb.Value) (*sqldb.Result, error)
}

var _ Execer = (*wire.Pool)(nil)
var _ Execer = (*wire.Conn)(nil)
var _ Execer = (*cluster.Client)(nil)
var _ Execer = (*cluster.Session)(nil)

// ShardBy is the benchmark's horizontal partitioning map
// (cluster.Config.ShardBy): the order-path tables — the only tables TPC-W
// writes during the run — partition by customer. Strided AUTO_INCREMENT
// makes an order's id congruent to its shard, so order lines and credit
// info keyed by order_id colocate with their order. The catalog
// (items, authors, countries) and the customer roster replicate to every
// shard as global tables — they are read-mostly and every shard's local
// joins need them.
func ShardBy() map[string]string {
	return map[string]string{
		"orders":      "customer_id",
		"order_line":  "order_id",
		"credit_info": "order_id",
	}
}

// CreateSchema applies the DDL.
func CreateSchema(db Execer) error {
	for _, q := range SchemaSQL() {
		if _, err := db.Exec(q); err != nil {
			return fmt.Errorf("bookstore: schema: %w", err)
		}
	}
	return nil
}

// Populate fills the database deterministically at the given scale.
func Populate(db Execer, sc Scale, seed int64) error {
	g := datagen.New(seed)
	for i := 0; i < sc.Countries; i++ {
		if _, err := db.Exec("INSERT INTO countries (name) VALUES (?)",
			sqldb.String(g.Name())); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Authors; i++ {
		if _, err := db.Exec("INSERT INTO authors (fname, lname) VALUES (?, ?)",
			sqldb.String(g.Name()), sqldb.String(g.Name())); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Items; i++ {
		if _, err := db.Exec(
			`INSERT INTO items (title, author_id, pub_date, subject, descr, cost, stock, total_sold)
			 VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			sqldb.String(g.Sentence(3)),
			sqldb.Int(int64(1+g.Intn(sc.Authors))),
			sqldb.Int(g.Date(12000, 3000)),
			sqldb.String(datagen.Pick(g, Subjects)),
			sqldb.String(g.Sentence(25)),
			sqldb.Float(g.Price(5, 100)),
			sqldb.Int(int64(10+g.Intn(500))),
			sqldb.Int(int64(g.Intn(5000)))); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Customers; i++ {
		nick := fmt.Sprintf("user%d", i+1)
		if _, err := db.Exec(
			"INSERT INTO address (street, city, country_id) VALUES (?, ?, ?)",
			sqldb.String(g.Sentence(2)), sqldb.String(g.Name()),
			sqldb.Int(int64(1+g.Intn(sc.Countries)))); err != nil {
			return err
		}
		if _, err := db.Exec(
			`INSERT INTO customers (uname, passwd, fname, lname, addr_id, phone, email, discount)
			 VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			sqldb.String(nick), sqldb.String("pw"+nick),
			sqldb.String(g.Name()), sqldb.String(g.Name()),
			sqldb.Int(int64(i+1)), sqldb.String(g.Digits(10)),
			sqldb.String(g.Email(nick)), sqldb.Float(g.Price(0, 0.3))); err != nil {
			return err
		}
	}
	for i := 0; i < sc.Orders; i++ {
		cust := 1 + g.Intn(sc.Customers)
		res, err := db.Exec(
			`INSERT INTO orders (customer_id, o_date, subtotal, total, status)
			 VALUES (?, ?, ?, ?, ?)`,
			sqldb.Int(int64(cust)), sqldb.Int(g.Date(12000, 180)),
			sqldb.Float(g.Price(10, 300)), sqldb.Float(g.Price(10, 330)),
			sqldb.String("SHIPPED"))
		if err != nil {
			return err
		}
		oid := res.LastInsertID
		lines := 1 + g.Intn(4)
		for l := 0; l < lines; l++ {
			if _, err := db.Exec(
				"INSERT INTO order_line (order_id, item_id, qty, discount) VALUES (?, ?, ?, ?)",
				sqldb.Int(oid), sqldb.Int(int64(1+g.Intn(sc.Items))),
				sqldb.Int(int64(1+g.Intn(4))), sqldb.Float(0)); err != nil {
				return err
			}
		}
		if _, err := db.Exec(
			`INSERT INTO credit_info (order_id, cc_type, cc_number, cc_expiry, auth_id)
			 VALUES (?, ?, ?, ?, ?)`,
			sqldb.Int(oid), sqldb.String("VISA"), sqldb.String(g.Digits(16)),
			sqldb.Int(g.Date(13000, 0)), sqldb.String(g.Digits(8))); err != nil {
			return err
		}
	}
	return nil
}
