package bookstore

import (
	"encoding/gob"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpd"
	"repro/internal/servlet"
	"repro/internal/sqldb"
)

// The cart lives in the HTTP session; registering it with gob is what lets
// a replicated application tier write it through the shared session store
// (servlet.SessionStore) and restore it on another backend after failover.
func init() { gob.Register(&cart{}) }

// Config selects the locking discipline and optional emulated externals.
type Config struct {
	// Sync moves table locking into the engine-side lock manager (the
	// paper's "(sync)" configurations); false brackets each read-write
	// interaction in a database transaction (BEGIN ... COMMIT, rollback on
	// failure) — the role the PHP scripts' LOCK TABLES sections played,
	// with narrower locks.
	Sync bool
	// PGEDelay emulates the TPC-W payment gateway authorization latency
	// during Buy Confirm. Zero keeps tests fast.
	PGEDelay time.Duration
}

// App is the hand-written-SQL implementation of the bookstore, deployable
// both in-process with the web server (the PHP analog) and in a remote
// servlet container: both issue exactly the same statements, which is the
// paper's controlled variable (§4.2).
type App struct {
	sc  Scale
	cfg Config
}

// New creates the application. The database pool comes from the hosting
// container's context at request time.
func New(sc Scale, cfg Config) *App { return &App{sc: sc, cfg: cfg} }

// BasePath is the URL prefix of every bookstore interaction.
const BasePath = "/tpcw/"

// Interactions lists the fourteen TPC-W interaction names in a stable
// order; the workload generator indexes into it.
func Interactions() []string {
	return []string{
		"home", "newproducts", "bestsellers", "productdetail",
		"searchrequest", "searchresults", "shoppingcart",
		"customerregistration", "buyrequest", "buyconfirm",
		"orderinquiry", "orderdisplay", "adminrequest", "adminconfirm",
	}
}

// Register installs all interaction servlets on a container.
func (a *App) Register(c *servlet.Container) {
	type h = func(*servlet.Context, *httpd.Request) (*httpd.Response, error)
	routes := map[string]h{
		"home":                 a.home,
		"newproducts":          a.newProducts,
		"bestsellers":          a.bestSellers,
		"productdetail":        a.productDetail,
		"searchrequest":        a.searchRequest,
		"searchresults":        a.searchResults,
		"shoppingcart":         a.shoppingCart,
		"customerregistration": a.register,
		"buyrequest":           a.buyRequest,
		"buyconfirm":           a.buyConfirm,
		"orderinquiry":         a.orderInquiry,
		"orderdisplay":         a.orderDisplay,
		"adminrequest":         a.adminRequest,
		"adminconfirm":         a.adminConfirm,
	}
	for name, fn := range routes {
		c.Register(BasePath+name, servlet.Func(fn))
	}
}

// withLocks runs fn under the configuration's concurrency discipline. set
// lists every table fn touches with its intent. With Sync the engine-side
// lock manager serializes (the paper's "(sync)" configurations). Without it
// fn runs inside a real database transaction declaring the write-intent
// tables: a short transaction whose locks are acquired per written table as
// the statements arrive and released at COMMIT — strictly narrower than the
// old LOCK TABLES bracket, which write-locked everything up front and
// read-locked even the read-only tables for the whole section. An error
// (or panic) rolls the whole section back on every replica. A set with no
// write intent needs no bracket at all: its reads take their own short
// locks statement by statement.
func (a *App) withLocks(ctx *servlet.Context, set []servlet.TableLock, fn func(ex Execer) error) error {
	if ctx.DB == nil {
		return servlet.ErrNoDatabase
	}
	if a.cfg.Sync {
		release := ctx.Locks.Acquire(set)
		defer release()
		// Individual statements still take their own implicit short table
		// locks in the database, which is harmless (§2.2).
		return fn(ctx.DB)
	}
	writes := servlet.WriteTables(set)
	if len(writes) == 0 {
		return fn(ctx.DB)
	}
	return ctx.Tx(writes, func(tx *cluster.Session) error { return fn(tx) })
}

// ---- shared row shapes and rendering ----

// ItemSummary is a list entry on home/new/best/search pages.
type ItemSummary struct {
	ID     int64
	Title  string
	Author string
	Cost   float64
}

// ItemDetail is the product-detail page payload.
type ItemDetail struct {
	ItemSummary
	Subject string
	Descr   string
	PubDate int64
	Stock   int64
}

// OrderView is the order-display payload.
type OrderView struct {
	OrderID int64
	Date    int64
	Total   float64
	Status  string
	Lines   []OrderLineView
}

// OrderLineView is one line of an order.
type OrderLineView struct {
	ItemID int64
	Title  string
	Qty    int64
}

func page(title string, body func(b *strings.Builder)) *httpd.Response {
	resp := httpd.NewResponse()
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body><h1>%s</h1>\n", title, title)
	b.WriteString(`<img src="/img/logo.gif"><img src="/img/banner.gif">` + "\n")
	body(&b)
	b.WriteString("</body></html>\n")
	resp.WriteString(b.String())
	return resp
}

func renderItems(b *strings.Builder, items []ItemSummary) {
	b.WriteString("<table>\n")
	for _, it := range items {
		fmt.Fprintf(b,
			`<tr><td><img src="/img/item_%d.gif"></td><td><a href="%sproductdetail?i_id=%d">%s</a></td><td>%s</td><td>$%.2f</td></tr>`+"\n",
			it.ID%64, BasePath, it.ID, it.Title, it.Author, it.Cost)
	}
	b.WriteString("</table>\n")
}

func itemSummaries(res *sqldb.Result) []ItemSummary {
	out := make([]ItemSummary, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, ItemSummary{
			ID: r[0].AsInt(), Title: r[1].AsString(),
			Author: r[2].AsString(), Cost: r[3].AsFloat(),
		})
	}
	return out
}

// intParam reads an integer query/form parameter with a fallback.
func intParam(req *httpd.Request, key string, def int64) int64 {
	v := req.Form().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def
	}
	return n
}

// ---- the fourteen interactions ----

// home (read-only): greeting plus five promotional items.
func (a *App) home(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	cid := intParam(req, "c_id", 0)
	var greeting string
	if cid > 0 {
		res, err := ctx.DB.ExecCached("SELECT fname, lname FROM customers WHERE id = ?", sqldb.Int(cid))
		if err != nil {
			return nil, err
		}
		if len(res.Rows) > 0 {
			greeting = res.Rows[0][0].AsString() + " " + res.Rows[0][1].AsString()
		}
	}
	subject := Subjects[int(cid)%len(Subjects)]
	res, err := ctx.DB.ExecCached(
		`SELECT i.id, i.title, a.lname, i.cost FROM items i
		 JOIN authors a ON a.id = i.author_id
		 WHERE i.subject = ? ORDER BY i.total_sold DESC LIMIT 5`,
		sqldb.String(subject))
	if err != nil {
		return nil, err
	}
	items := itemSummaries(res)
	return page("TPC-W Home", func(b *strings.Builder) {
		if greeting != "" {
			fmt.Fprintf(b, "<p>Welcome back, %s!</p>\n", greeting)
		}
		renderItems(b, items)
	}), nil
}

// newProducts (read-only): newest 50 in a subject.
func (a *App) newProducts(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	subject := req.Form().Get("subject")
	if subject == "" {
		subject = Subjects[0]
	}
	res, err := ctx.DB.ExecCached(
		`SELECT i.id, i.title, a.lname, i.cost FROM items i
		 JOIN authors a ON a.id = i.author_id
		 WHERE i.subject = ? ORDER BY i.pub_date DESC LIMIT 50`,
		sqldb.String(subject))
	if err != nil {
		return nil, err
	}
	items := itemSummaries(res)
	return page("New Products: "+subject, func(b *strings.Builder) {
		renderItems(b, items)
	}), nil
}

// bestSellers (read-only): the heavy decision-support query of the mix.
func (a *App) bestSellers(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	subject := req.Form().Get("subject")
	if subject == "" {
		subject = Subjects[0]
	}
	res, err := ctx.DB.ExecCached(
		`SELECT i.id, i.title, a.lname, i.cost FROM items i
		 JOIN authors a ON a.id = i.author_id
		 WHERE i.subject = ? ORDER BY i.total_sold DESC LIMIT 50`,
		sqldb.String(subject))
	if err != nil {
		return nil, err
	}
	items := itemSummaries(res)
	return page("Best Sellers: "+subject, func(b *strings.Builder) {
		renderItems(b, items)
	}), nil
}

// productDetail (read-only).
func (a *App) productDetail(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	id := intParam(req, "i_id", 1)
	res, err := ctx.DB.ExecCached(
		`SELECT i.id, i.title, a.lname, i.cost, i.subject, i.descr, i.pub_date, i.stock
		 FROM items i JOIN authors a ON a.id = i.author_id WHERE i.id = ?`,
		sqldb.Int(id))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return httpd.Error(404, "no such item"), nil
	}
	r := res.Rows[0]
	d := ItemDetail{
		ItemSummary: ItemSummary{ID: r[0].AsInt(), Title: r[1].AsString(),
			Author: r[2].AsString(), Cost: r[3].AsFloat()},
		Subject: r[4].AsString(), Descr: r[5].AsString(),
		PubDate: r[6].AsInt(), Stock: r[7].AsInt(),
	}
	return page("Product Detail", func(b *strings.Builder) {
		fmt.Fprintf(b, `<img src="/img/item_%d.gif"><h2>%s</h2><p>by %s</p><p>%s</p><p>$%.2f (%d in stock)</p>`+"\n",
			d.ID%64, d.Title, d.Author, d.Descr, d.Cost, d.Stock)
	}), nil
}

// searchRequest is the one all-static interaction of the benchmark (§3.1).
func (a *App) searchRequest(*servlet.Context, *httpd.Request) (*httpd.Response, error) {
	return page("Search", func(b *strings.Builder) {
		fmt.Fprintf(b, `<form action="%ssearchresults"><select name="type">
<option>author</option><option>title</option><option>subject</option></select>
<input name="term"><input type="submit"></form>`+"\n", BasePath)
	}), nil
}

// searchResults (read-only): author / title / subject searches.
func (a *App) searchResults(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	f := req.Form()
	typ, term := f.Get("type"), f.Get("term")
	var res *sqldb.Result
	var err error
	switch typ {
	case "title":
		res, err = ctx.DB.ExecCached(
			`SELECT i.id, i.title, a.lname, i.cost FROM items i
			 JOIN authors a ON a.id = i.author_id
			 WHERE i.title LIKE ? ORDER BY i.title LIMIT 50`,
			sqldb.String("%"+term+"%"))
	case "subject":
		res, err = ctx.DB.ExecCached(
			`SELECT i.id, i.title, a.lname, i.cost FROM items i
			 JOIN authors a ON a.id = i.author_id
			 WHERE i.subject = ? ORDER BY i.title LIMIT 50`,
			sqldb.String(strings.ToUpper(term)))
	default: // author
		res, err = ctx.DB.ExecCached(
			`SELECT i.id, i.title, a.lname, i.cost FROM items i
			 JOIN authors a ON a.id = i.author_id
			 WHERE a.lname LIKE ? ORDER BY i.title LIMIT 50`,
			sqldb.String(term+"%"))
	}
	if err != nil {
		return nil, err
	}
	items := itemSummaries(res)
	return page("Search Results", func(b *strings.Builder) {
		renderItems(b, items)
	}), nil
}

// cart is the session-resident shopping cart (TPC-W keeps cart state with
// the application tier; the paper's eight tables exclude it).
type cart struct {
	Lines map[int64]int64 // item id -> qty
}

func sessionCart(ctx *servlet.Context, req *httpd.Request, resp *httpd.Response) (*servlet.Session, *cart) {
	sess := ctx.Sessions.Ensure(req, resp)
	if v, ok := sess.Get("cart"); ok {
		return sess, v.(*cart)
	}
	c := &cart{Lines: make(map[int64]int64)}
	sess.Set("cart", c)
	return sess, c
}

// shoppingCart (read-write interaction): add/update lines, then price the
// cart against the items table under the locking discipline.
func (a *App) shoppingCart(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	resp := httpd.NewResponse()
	sess, ct := sessionCart(ctx, req, resp)
	if id := intParam(req, "i_id", 0); id > 0 {
		qty := intParam(req, "qty", 1)
		if qty <= 0 {
			delete(ct.Lines, id)
		} else {
			ct.Lines[id] = qty
		}
		sess.Set("cart", ct) // publish the mutation to the session store
	}
	type priced struct {
		ItemSummary
		Qty int64
	}
	var lines []priced
	var total float64
	// The cart page's per-item reads: sync serializes them in the engine;
	// non-sync runs them unbracketed (a read-only set opens no
	// transaction), so each SELECT sees the latest committed prices —
	// per-statement consistency, like the EJB configuration's reads.
	err := a.withLocks(ctx,
		[]servlet.TableLock{{Table: "items"}, {Table: "authors"}},
		func(ex Execer) error {
			ids := make([]int64, 0, len(ct.Lines))
			for id := range ct.Lines {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				res, err := ex.ExecCached(
					`SELECT i.id, i.title, a.lname, i.cost FROM items i
					 JOIN authors a ON a.id = i.author_id WHERE i.id = ?`,
					sqldb.Int(id))
				if err != nil {
					return err
				}
				if len(res.Rows) == 0 {
					continue
				}
				s := itemSummaries(res)[0]
				lines = append(lines, priced{s, ct.Lines[id]})
				total += s.Cost * float64(ct.Lines[id])
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	out := page("Shopping Cart", func(b *strings.Builder) {
		for _, l := range lines {
			fmt.Fprintf(b, "<p>%s x%d = $%.2f</p>\n", l.Title, l.Qty, l.Cost*float64(l.Qty))
		}
		fmt.Fprintf(b, "<p>Total: $%.2f</p>\n", total)
	})
	out.Header = resp.Header // keep Set-Cookie
	return out, nil
}

// register (read-write): create address + customer.
func (a *App) register(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	f := req.Form()
	uname := f.Get("uname")
	if uname == "" {
		uname = fmt.Sprintf("newuser%d", time.Now().UnixNano())
	}
	var cid int64
	err := a.withLocks(ctx,
		[]servlet.TableLock{{Table: "customers", Write: true}, {Table: "address", Write: true}},
		func(ex Execer) error {
			res, err := ex.ExecCached(
				"INSERT INTO address (street, city, country_id) VALUES (?, ?, ?)",
				sqldb.String(f.Get("street")), sqldb.String(f.Get("city")), sqldb.Int(1))
			if err != nil {
				return err
			}
			res, err = ex.ExecCached(
				`INSERT INTO customers (uname, passwd, fname, lname, addr_id, phone, email, discount)
				 VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
				sqldb.String(uname), sqldb.String(f.Get("passwd")),
				sqldb.String(f.Get("fname")), sqldb.String(f.Get("lname")),
				sqldb.Int(res.LastInsertID), sqldb.String(f.Get("phone")),
				sqldb.String(uname+"@example.com"), sqldb.Float(0))
			if err != nil {
				return err
			}
			cid = res.LastInsertID
			return nil
		})
	if err != nil {
		return nil, err
	}
	return page("Registered", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Welcome %s, customer #%d</p>\n", uname, cid)
	}), nil
}

// buyRequest (read-write class in TPC-W; reads here): show the cart with
// customer info before purchase.
func (a *App) buyRequest(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	cid := intParam(req, "c_id", 1)
	res, err := ctx.DB.ExecCached(
		`SELECT c.fname, c.lname, a.street, a.city FROM customers c
		 JOIN address a ON a.id = c.addr_id WHERE c.id = ?`, sqldb.Int(cid))
	if err != nil {
		return nil, err
	}
	resp := httpd.NewResponse()
	_, ct := sessionCart(ctx, req, resp)
	out := page("Buy Request", func(b *strings.Builder) {
		if len(res.Rows) > 0 {
			r := res.Rows[0]
			fmt.Fprintf(b, "<p>Ship to %s %s, %s, %s</p>\n",
				r[0].AsString(), r[1].AsString(), r[2].AsString(), r[3].AsString())
		}
		fmt.Fprintf(b, "<p>%d cart lines</p>\n", len(ct.Lines))
		fmt.Fprintf(b, `<form action="%sbuyconfirm"><input type="hidden" name="c_id" value="%d"><input type="submit" value="Confirm"></form>`+"\n", BasePath, cid)
	})
	out.Header = resp.Header
	return out, nil
}

// buyConfirm (read-write): the purchase transaction — the lock-holding
// critical section of the benchmark (§5.1).
func (a *App) buyConfirm(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	cid := intParam(req, "c_id", 1)
	resp := httpd.NewResponse()
	sess, ct := sessionCart(ctx, req, resp)
	if len(ct.Lines) == 0 {
		ct.Lines[1+cid%int64(a.sc.Items)] = 1 // emulated browsers always buy something
		sess.Set("cart", ct)
	}
	// The sync configurations authorize payment before entering the
	// critical section; the PHP flow holds its LOCK TABLES across the
	// gateway call (see perfsim's calibration notes).
	if a.cfg.Sync && a.cfg.PGEDelay > 0 {
		time.Sleep(a.cfg.PGEDelay)
	}
	var orderID int64
	err := a.withLocks(ctx,
		[]servlet.TableLock{
			{Table: "customers"}, {Table: "items", Write: true},
			{Table: "orders", Write: true}, {Table: "order_line", Write: true},
			{Table: "credit_info", Write: true},
		},
		func(ex Execer) error {
			cres, err := ex.ExecCached("SELECT discount FROM customers WHERE id = ?", sqldb.Int(cid))
			if err != nil {
				return err
			}
			discount := 0.0
			if len(cres.Rows) > 0 {
				discount = cres.Rows[0][0].AsFloat()
			}
			var subtotal float64
			ids := make([]int64, 0, len(ct.Lines))
			for id := range ct.Lines {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				ires, err := ex.ExecCached("SELECT cost FROM items WHERE id = ?", sqldb.Int(id))
				if err != nil {
					return err
				}
				if len(ires.Rows) > 0 {
					subtotal += ires.Rows[0][0].AsFloat() * float64(ct.Lines[id])
				}
			}
			if !a.cfg.Sync && a.cfg.PGEDelay > 0 {
				time.Sleep(a.cfg.PGEDelay)
			}
			total := subtotal * (1 - discount)
			ores, err := ex.ExecCached(
				`INSERT INTO orders (customer_id, o_date, subtotal, total, status)
				 VALUES (?, ?, ?, ?, ?)`,
				sqldb.Int(cid), sqldb.Int(12000), sqldb.Float(subtotal),
				sqldb.Float(total), sqldb.String("PENDING"))
			if err != nil {
				return err
			}
			orderID = ores.LastInsertID
			for _, id := range ids {
				qty := ct.Lines[id]
				if _, err := ex.ExecCached(
					"INSERT INTO order_line (order_id, item_id, qty, discount) VALUES (?, ?, ?, ?)",
					sqldb.Int(orderID), sqldb.Int(id), sqldb.Int(qty), sqldb.Float(discount)); err != nil {
					return err
				}
				if _, err := ex.ExecCached(
					"UPDATE items SET stock = stock - ?, total_sold = total_sold + ? WHERE id = ?",
					sqldb.Int(qty), sqldb.Int(qty), sqldb.Int(id)); err != nil {
					return err
				}
			}
			_, err = ex.ExecCached(
				`INSERT INTO credit_info (order_id, cc_type, cc_number, cc_expiry, auth_id)
				 VALUES (?, ?, ?, ?, ?)`,
				sqldb.Int(orderID), sqldb.String("VISA"),
				sqldb.String("4111111111111111"), sqldb.Int(13000),
				sqldb.String("AUTH-OK"))
			return err
		})
	if err != nil {
		return nil, err
	}
	sess.Set("cart", &cart{Lines: make(map[int64]int64)})
	out := page("Order Confirmed", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Order #%d placed.</p>\n", orderID)
	})
	out.Header = resp.Header
	return out, nil
}

// orderInquiry (read-only): login form validation.
func (a *App) orderInquiry(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	cid := intParam(req, "c_id", 1)
	res, err := ctx.DB.ExecCached("SELECT uname FROM customers WHERE id = ?", sqldb.Int(cid))
	if err != nil {
		return nil, err
	}
	uname := ""
	if len(res.Rows) > 0 {
		uname = res.Rows[0][0].AsString()
	}
	return page("Order Inquiry", func(b *strings.Builder) {
		fmt.Fprintf(b, `<form action="%sorderdisplay"><input type="hidden" name="c_id" value="%d">%s<input type="submit"></form>`+"\n",
			BasePath, cid, uname)
	}), nil
}

// orderDisplay (read-only): the customer's most recent order.
func (a *App) orderDisplay(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	cid := intParam(req, "c_id", 1)
	res, err := ctx.DB.ExecCached(
		`SELECT id, o_date, total, status FROM orders
		 WHERE customer_id = ? ORDER BY id DESC LIMIT 1`, sqldb.Int(cid))
	if err != nil {
		return nil, err
	}
	var ov OrderView
	if len(res.Rows) > 0 {
		r := res.Rows[0]
		ov = OrderView{OrderID: r[0].AsInt(), Date: r[1].AsInt(),
			Total: r[2].AsFloat(), Status: r[3].AsString()}
		lres, err := ctx.DB.ExecCached(
			`SELECT ol.item_id, i.title, ol.qty FROM order_line ol
			 JOIN items i ON i.id = ol.item_id WHERE ol.order_id = ?`,
			sqldb.Int(ov.OrderID))
		if err != nil {
			return nil, err
		}
		for _, lr := range lres.Rows {
			ov.Lines = append(ov.Lines, OrderLineView{
				ItemID: lr[0].AsInt(), Title: lr[1].AsString(), Qty: lr[2].AsInt()})
		}
	}
	return page("Order Display", func(b *strings.Builder) {
		if ov.OrderID == 0 {
			b.WriteString("<p>No orders on file.</p>\n")
			return
		}
		fmt.Fprintf(b, "<p>Order #%d (%s): $%.2f</p>\n", ov.OrderID, ov.Status, ov.Total)
		for _, l := range ov.Lines {
			fmt.Fprintf(b, "<p>%s x%d</p>\n", l.Title, l.Qty)
		}
	}), nil
}

// adminRequest (read-only): show the item to edit.
func (a *App) adminRequest(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	return a.productDetail(ctx, req)
}

// adminConfirm (read-write): the administrative item update.
func (a *App) adminConfirm(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	if ctx.DB == nil {
		return nil, servlet.ErrNoDatabase
	}
	id := intParam(req, "i_id", 1)
	cost := float64(intParam(req, "cost", 25))
	err := a.withLocks(ctx, []servlet.TableLock{{Table: "items", Write: true}},
		func(ex Execer) error {
			res, err := ex.ExecCached("SELECT cost FROM items WHERE id = ?", sqldb.Int(id))
			if err != nil {
				return err
			}
			if len(res.Rows) == 0 {
				return nil
			}
			_, err = ex.ExecCached("UPDATE items SET cost = ?, pub_date = ? WHERE id = ?",
				sqldb.Float(cost), sqldb.Int(12001), sqldb.Int(id))
			return err
		})
	if err != nil {
		return nil, err
	}
	return page("Admin Confirm", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Item %d updated to $%.2f</p>\n", id, cost)
	}), nil
}
