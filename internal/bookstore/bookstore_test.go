package bookstore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ejb"
	"repro/internal/httpd"
	"repro/internal/rmi"
	"repro/internal/servlet"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

// startDB boots a populated database server at TinyScale.
func startDB(t testing.TB) string {
	t.Helper()
	db := sqldb.New()
	sess := db.NewSession()
	if err := CreateSchema(sqldb.SessionExecer{S: sess}); err != nil {
		t.Fatal(err)
	}
	if err := Populate(sqldb.SessionExecer{S: sess}, TinyScale(), 42); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	srv := wire.NewServer(db, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String()
}

// newAppContainer builds a container hosting the direct-SQL app.
func newAppContainer(t testing.TB, sync bool) *servlet.Container {
	t.Helper()
	c := servlet.NewContainer(servlet.Config{DBAddr: startDB(t), DBPoolSize: 8})
	New(TinyScale(), Config{Sync: sync}).Register(c)
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func doGet(t testing.TB, h httpd.Handler, path string) *httpd.Response {
	t.Helper()
	req := &httpd.Request{Method: "GET", Path: path, Header: httpd.Header{},
		Query: map[string][]string{}}
	if i := strings.IndexByte(path, '?'); i >= 0 {
		req.Path = path[:i]
		for _, kv := range strings.Split(path[i+1:], "&") {
			k, v, _ := strings.Cut(kv, "=")
			req.Query[k] = []string{v}
		}
	}
	resp, err := h.ServeHTTP(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return resp
}

func TestInteractionsCount(t *testing.T) {
	if len(Interactions()) != 14 {
		t.Fatalf("TPC-W defines 14 interactions, got %d", len(Interactions()))
	}
}

func TestMixesMatchPaperRatios(t *testing.T) {
	p := Profile(TinyScale())
	writeSet := map[string]bool{
		"shoppingcart": true, "customerregistration": true,
		"buyconfirm": true, "adminconfirm": true,
	}
	want := map[string]float64{BrowsingMix: 0.95, ShoppingMix: 0.80, OrderingMix: 0.50}
	for mix, ro := range want {
		weights := p.Mixes[mix]
		var sum, roSum float64
		for i, w := range weights {
			sum += w
			if !writeSet[p.Interactions[i].Name] {
				roSum += w
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s weights sum %.4f", mix, sum)
		}
		if roSum < ro-0.03 || roSum > ro+0.03 {
			t.Errorf("%s read-only fraction %.3f, want ~%.2f", mix, roSum, ro)
		}
	}
}

func TestAllInteractionsServeHTML(t *testing.T) {
	c := newAppContainer(t, false)
	h := c.Handler()
	paths := []string{
		BasePath + "home?c_id=3",
		BasePath + "newproducts?subject=ARTS",
		BasePath + "bestsellers?subject=HISTORY",
		BasePath + "productdetail?i_id=5",
		BasePath + "searchrequest",
		BasePath + "searchresults?type=subject&term=arts",
		BasePath + "searchresults?type=title&term=ba",
		BasePath + "searchresults?type=author&term=Ba",
		BasePath + "shoppingcart?i_id=4&qty=2",
		BasePath + "buyrequest?c_id=2",
		BasePath + "buyconfirm?c_id=2",
		BasePath + "orderinquiry?c_id=2",
		BasePath + "orderdisplay?c_id=2",
		BasePath + "adminrequest?i_id=3",
		BasePath + "adminconfirm?i_id=3&cost=42",
	}
	for _, p := range paths {
		resp := doGet(t, h, p)
		if resp.Status != 200 {
			t.Errorf("%s -> %d: %s", p, resp.Status, resp.Body)
			continue
		}
		if !strings.Contains(string(resp.Body), "<html>") {
			t.Errorf("%s: not HTML", p)
		}
	}
}

func TestBuyConfirmUpdatesState(t *testing.T) {
	for _, sync := range []bool{false, true} {
		t.Run(fmt.Sprintf("sync=%v", sync), func(t *testing.T) {
			c := newAppContainer(t, sync)
			h := c.Handler()
			before := doGet(t, h, BasePath+"productdetail?i_id=1")
			resp := doGet(t, h, BasePath+"buyconfirm?c_id=1") // default cart buys item c_id%items+1
			if resp.Status != 200 || !strings.Contains(string(resp.Body), "Order #") {
				t.Fatalf("buyconfirm: %d %s", resp.Status, resp.Body)
			}
			after := doGet(t, h, BasePath+"orderdisplay?c_id=1")
			if !strings.Contains(string(after.Body), "PENDING") {
				t.Fatalf("order not recorded: %s", after.Body)
			}
			_ = before
		})
	}
}

func TestRegisterCreatesCustomer(t *testing.T) {
	c := newAppContainer(t, false)
	req := &httpd.Request{Method: "POST", Path: BasePath + "customerregistration",
		Header: httpd.Header{}, Query: map[string][]string{},
		Body: []byte("uname=fresh1&passwd=x&fname=A&lname=B&street=S&city=C")}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := c.Handler().ServeHTTP(req)
	if err != nil || resp.Status != 200 {
		t.Fatalf("register: %v %d", err, resp.Status)
	}
	if !strings.Contains(string(resp.Body), "Welcome fresh1") {
		t.Fatalf("register body: %s", resp.Body)
	}
	// Duplicate uname must fail (unique index).
	if _, err := c.Handler().ServeHTTP(req); err == nil {
		t.Fatal("duplicate registration must error")
	}
}

func TestCartSessionPersistsAcrossRequests(t *testing.T) {
	c := newAppContainer(t, false)
	h := c.Handler()
	r1 := doGet(t, h, BasePath+"shoppingcart?i_id=2&qty=3")
	cookie := r1.Header.Get("Set-Cookie")
	if cookie == "" {
		t.Fatal("no session cookie")
	}
	jsid := strings.Split(strings.TrimPrefix(cookie, "JSESSIONID="), ";")[0]
	req := &httpd.Request{Method: "GET", Path: BasePath + "shoppingcart",
		Header: httpd.Header{}, Query: map[string][]string{"i_id": {"5"}, "qty": {"1"}}}
	req.Header.Set("Cookie", "JSESSIONID="+jsid)
	resp, err := h.ServeHTTP(req)
	if err != nil {
		t.Fatal(err)
	}
	// The cart should now show two lines (items 2 and 5).
	body := string(resp.Body)
	if strings.Count(body, "x3") != 1 {
		t.Fatalf("cart lost the first line: %s", body)
	}
}

func TestAdminConfirmChangesPrice(t *testing.T) {
	c := newAppContainer(t, true)
	h := c.Handler()
	doGet(t, h, BasePath+"adminconfirm?i_id=7&cost=77")
	resp := doGet(t, h, BasePath+"productdetail?i_id=7")
	if !strings.Contains(string(resp.Body), "$77.00") {
		t.Fatalf("price not updated: %s", resp.Body)
	}
}

// TestEJBDeployment exercises the full four-tier path: presentation
// servlets -> RMI -> session façade -> entity beans -> database.
func TestEJBDeployment(t *testing.T) {
	dbAddr := startDB(t)
	ec, err := ejb.NewContainer(ejb.Config{DBAddr: dbAddr, DBPoolSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ec.Close() })
	if err := RegisterEntities(ec); err != nil {
		t.Fatal(err)
	}
	if err := ec.RegisterFacade(FacadeName, &Facade{C: ec}); err != nil {
		t.Fatal(err)
	}
	rmiAddr, err := ec.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := rmi.NewClient(rmiAddr.String(), 4)
	t.Cleanup(client.Close)

	sc := servlet.NewContainer(servlet.Config{})
	NewPresentationApp(client, TinyScale()).Register(sc)
	if err := sc.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	h := sc.Handler()

	for _, p := range []string{
		BasePath + "home?c_id=2",
		BasePath + "bestsellers?subject=ARTS",
		BasePath + "productdetail?i_id=3",
		BasePath + "searchresults?type=subject&term=arts",
		BasePath + "buyconfirm?c_id=4",
		BasePath + "orderdisplay?c_id=4",
		BasePath + "adminconfirm?i_id=2&cost=55",
	} {
		resp := doGet(t, h, p)
		if resp.Status != 200 {
			t.Errorf("%s -> %d: %s", p, resp.Status, resp.Body)
		}
	}

	// The defining EJB property: several statements per interaction (at
	// TinyScale the list pages return only a handful of rows; full scale
	// multiplies this further).
	if q := ec.QueryCount(); q < 28 {
		t.Errorf("EJB container issued only %d statements for 7 interactions; CMP should flood the DB", q)
	}
	if ec.LoadCount() < 8 {
		t.Errorf("expected many entity activations, got %d", ec.LoadCount())
	}
}

// TestSameQueriesBothDeployments verifies §4.2's controlled variable: the
// direct app issues identical SQL whether co-located or remote — trivially
// true here since it is the same code; this test asserts the sync/non-sync
// variants leave the database in the same state after the same workload.
func TestSyncAndNonSyncEquivalent(t *testing.T) {
	count := func(sync bool) string {
		c := newAppContainer(t, sync)
		h := c.Handler()
		doGet(t, h, BasePath+"buyconfirm?c_id=3")
		doGet(t, h, BasePath+"adminconfirm?i_id=5&cost=60")
		resp := doGet(t, h, BasePath+"orderdisplay?c_id=3")
		return string(resp.Body)
	}
	a, b := count(false), count(true)
	if a != b {
		t.Fatalf("sync and non-sync diverged:\n%s\nvs\n%s", a, b)
	}
}

func TestWriteTablesExtraction(t *testing.T) {
	got := servlet.WriteTables([]servlet.TableLock{
		{Table: "orders", Write: true}, {Table: "customers"},
		{Table: "items", Write: true},
	})
	if len(got) != 2 || got[0] != "items" || got[1] != "orders" {
		t.Fatalf("WriteTables = %v, want [items orders]", got)
	}
}

func TestPopulateScalesAndIsDeterministic(t *testing.T) {
	build := func() *sqldb.DB {
		db := sqldb.New()
		s := db.NewSession()
		defer s.Close()
		if err := CreateSchema(sqldb.SessionExecer{S: s}); err != nil {
			t.Fatal(err)
		}
		if err := Populate(sqldb.SessionExecer{S: s}, TinyScale(), 7); err != nil {
			t.Fatal(err)
		}
		return db
	}
	d1, d2 := build(), build()
	for _, table := range []string{"items", "customers", "orders", "authors"} {
		t1, _ := d1.Table(table)
		t2, _ := d2.Table(table)
		if t1.RowCount() != t2.RowCount() || t1.RowCount() == 0 {
			t.Fatalf("%s: %d vs %d rows", table, t1.RowCount(), t2.RowCount())
		}
	}
	it, _ := d1.Table("items")
	if it.RowCount() != TinyScale().Items {
		t.Fatalf("items %d, want %d", it.RowCount(), TinyScale().Items)
	}
}
