package bookstore

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/workload"
)

// Mix names accepted by Profile.
const (
	BrowsingMix = "browsing"
	ShoppingMix = "shopping"
	OrderingMix = "ordering"
)

// Profile builds the client-emulator description of the bookstore: the 14
// interactions with parameter generators sized to the population, and the
// three TPC-W mixes (95% / 80% / 50% read-only). Each transition-matrix row
// equals the mix distribution, which preserves the mix ratios exactly (see
// DESIGN.md for the simplification note).
func Profile(sc Scale) *workload.Profile {
	item := func(g *datagen.Gen) int { return 1 + g.Intn(sc.Items) }
	cust := func(g *datagen.Gen) int { return 1 + g.Intn(sc.Customers) }
	subject := func(g *datagen.Gen) string { return datagen.Pick(g, Subjects) }
	get := func(format string, args ...any) workload.Request {
		return workload.Request{Method: "GET", Path: fmt.Sprintf(format, args...)}
	}
	inters := []workload.Interaction{
		{Name: "home", Build: func(g *datagen.Gen) workload.Request {
			return get("%shome?c_id=%d", BasePath, cust(g))
		}},
		{Name: "newproducts", Build: func(g *datagen.Gen) workload.Request {
			return get("%snewproducts?subject=%s", BasePath, subject(g))
		}},
		{Name: "bestsellers", Build: func(g *datagen.Gen) workload.Request {
			return get("%sbestsellers?subject=%s", BasePath, subject(g))
		}},
		{Name: "productdetail", Build: func(g *datagen.Gen) workload.Request {
			return get("%sproductdetail?i_id=%d", BasePath, item(g))
		}},
		{Name: "searchrequest", Build: func(g *datagen.Gen) workload.Request {
			return get("%ssearchrequest", BasePath)
		}},
		{Name: "searchresults", Build: func(g *datagen.Gen) workload.Request {
			types := []string{"author", "title", "subject"}
			typ := datagen.Pick(g, types)
			term := subject(g)
			if typ != "subject" {
				term = g.Word()[:2]
			}
			return get("%ssearchresults?type=%s&term=%s", BasePath, typ, term)
		}},
		{Name: "shoppingcart", Build: func(g *datagen.Gen) workload.Request {
			return get("%sshoppingcart?i_id=%d&qty=%d", BasePath, item(g), 1+g.Intn(3))
		}},
		{Name: "customerregistration", Build: func(g *datagen.Gen) workload.Request {
			return workload.Request{Method: "POST", Path: BasePath + "customerregistration",
				ContentType: "application/x-www-form-urlencoded",
				Body: fmt.Sprintf("uname=u%s%d&passwd=pw&fname=%s&lname=%s&street=x&city=y",
					g.Word(), g.Intn(1<<30), g.Name(), g.Name())}
		}},
		{Name: "buyrequest", Build: func(g *datagen.Gen) workload.Request {
			return get("%sbuyrequest?c_id=%d", BasePath, cust(g))
		}},
		{Name: "buyconfirm", Build: func(g *datagen.Gen) workload.Request {
			return get("%sbuyconfirm?c_id=%d", BasePath, cust(g))
		}},
		{Name: "orderinquiry", Build: func(g *datagen.Gen) workload.Request {
			return get("%sorderinquiry?c_id=%d", BasePath, cust(g))
		}},
		{Name: "orderdisplay", Build: func(g *datagen.Gen) workload.Request {
			return get("%sorderdisplay?c_id=%d", BasePath, cust(g))
		}},
		{Name: "adminrequest", Build: func(g *datagen.Gen) workload.Request {
			return get("%sadminrequest?i_id=%d", BasePath, item(g))
		}},
		{Name: "adminconfirm", Build: func(g *datagen.Gen) workload.Request {
			return get("%sadminconfirm?i_id=%d&cost=%d", BasePath, item(g), 5+g.Intn(95))
		}},
	}
	// Interaction order: home, new, best, detail, searchreq, searchres,
	// cart, register, buyreq, buyconfirm, orderinq, orderdisp, adminreq,
	// adminconf. Read-write interactions: cart, register, buyconfirm,
	// adminconfirm (buyrequest and the forms are reads).
	mixes := map[string][]float64{
		// 95% read-only (TPC-W browsing mix).
		BrowsingMix: {0.24, 0.09, 0.11, 0.19, 0.08, 0.18, 0.03, 0.008, 0.006, 0.006, 0.03, 0.02, 0.005, 0.005},
		// 80% read-only (shopping, the representative mix).
		ShoppingMix: {0.15, 0.07, 0.05, 0.18, 0.06, 0.14, 0.12, 0.04, 0.04, 0.026, 0.06, 0.05, 0.007, 0.007},
		// 50% read-only (ordering).
		OrderingMix: {0.07, 0.03, 0.02, 0.12, 0.04, 0.08, 0.25, 0.09, 0.08, 0.10, 0.04, 0.04, 0.005, 0.035},
	}
	return &workload.Profile{Name: "bookstore", Interactions: inters, Mixes: mixes}
}
