package bookstore

import (
	"fmt"
	"strings"

	"repro/internal/ejb"
	"repro/internal/httpd"
	"repro/internal/rmi"
	"repro/internal/servlet"
	"repro/internal/sqldb"
)

// This file is the EJB implementation of the bookstore (§4.2): entity beans
// with container-managed persistence for the eight tables, a stateless
// session façade holding the business logic, and thin presentation servlets
// that call the façade over RMI and render the same HTML as the
// hand-written-SQL app. The container generates all row access — list pages
// run a finder for primary keys and then activate each entity (one
// single-row SELECT per row), which is exactly the flood of short queries
// the paper measures against this architecture (§5.1, §6.1).

// RegisterEntities declares the entity beans on an EJB container.
func RegisterEntities(c *ejb.Container) error {
	defs := []ejb.EntityDef{
		{Name: "Country", Table: "countries", Key: "id", Fields: []string{"name"}},
		{Name: "Author", Table: "authors", Key: "id", Fields: []string{"fname", "lname"}},
		{Name: "Item", Table: "items", Key: "id", Fields: []string{
			"title", "author_id", "pub_date", "subject", "descr", "cost", "stock", "total_sold"}},
		{Name: "Customer", Table: "customers", Key: "id", Fields: []string{
			"uname", "passwd", "fname", "lname", "addr_id", "phone", "email", "discount"}},
		{Name: "Address", Table: "address", Key: "id", Fields: []string{"street", "city", "country_id"}},
		{Name: "Order", Table: "orders", Key: "id", Fields: []string{
			"customer_id", "o_date", "subtotal", "total", "status"}},
		{Name: "OrderLine", Table: "order_line", Key: "id", Fields: []string{
			"order_id", "item_id", "qty", "discount"}},
		{Name: "CreditInfo", Table: "credit_info", Key: "id", Fields: []string{
			"order_id", "cc_type", "cc_number", "cc_expiry", "auth_id"}},
	}
	for _, d := range defs {
		if err := c.DefineEntity(d); err != nil {
			return err
		}
	}
	return nil
}

// FacadeName is the RMI service name of the bookstore façade.
const FacadeName = "BookstoreFacade"

// Facade is the stateless session bean holding the bookstore business
// logic.
type Facade struct {
	C *ejb.Container
}

// ItemListArgs selects a list page.
type ItemListArgs struct {
	Subject string
	OrderBy string // "total_sold DESC" or "pub_date DESC"
	Limit   int
}

// ItemListReply carries list rows to the presentation tier.
type ItemListReply struct {
	Items []ItemSummary
}

// itemSummaryOf activates the item and its author entity (two CMP loads).
func itemSummaryOf(tx *ejb.Tx, pk sqldb.Value) (ItemSummary, error) {
	it, err := tx.Load("Item", pk)
	if err != nil {
		return ItemSummary{}, err
	}
	title, _ := it.Get("title")
	cost, _ := it.Get("cost")
	authorID, _ := it.Get("author_id")
	author, err := tx.Load("Author", authorID)
	if err != nil {
		return ItemSummary{}, err
	}
	lname, _ := author.Get("lname")
	return ItemSummary{ID: pk.AsInt(), Title: title.AsString(),
		Author: lname.AsString(), Cost: cost.AsFloat()}, nil
}

// List implements home / new products / best sellers: a finder plus one
// activation per row.
func (f *Facade) List(args *ItemListArgs, reply *ItemListReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		keys, err := tx.FindWhere("Item", "subject = ?",
			[]sqldb.Value{sqldb.String(args.Subject)}, args.OrderBy, args.Limit)
		if err != nil {
			return err
		}
		for _, pk := range keys {
			s, err := itemSummaryOf(tx, pk)
			if err != nil {
				return err
			}
			reply.Items = append(reply.Items, s)
		}
		return nil
	})
}

// DetailArgs / DetailReply serve the product-detail page.
type DetailArgs struct{ ItemID int64 }
type DetailReply struct {
	Found bool
	D     ItemDetail
}

// Detail activates one item and its author.
func (f *Facade) Detail(args *DetailArgs, reply *DetailReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		it, err := tx.Load("Item", sqldb.Int(args.ItemID))
		if err != nil {
			return nil // not found is not a fault
		}
		get := func(field string) sqldb.Value { v, _ := it.Get(field); return v }
		authorID := get("author_id")
		author, err := tx.Load("Author", authorID)
		if err != nil {
			return err
		}
		lname, _ := author.Get("lname")
		reply.Found = true
		reply.D = ItemDetail{
			ItemSummary: ItemSummary{ID: args.ItemID, Title: get("title").AsString(),
				Author: lname.AsString(), Cost: get("cost").AsFloat()},
			Subject: get("subject").AsString(), Descr: get("descr").AsString(),
			PubDate: get("pub_date").AsInt(), Stock: get("stock").AsInt(),
		}
		return nil
	})
}

// SearchArgs / reply reuse ItemListReply.
type SearchArgs struct {
	Type string
	Term string
}

// Search implements the three search modes via finders.
func (f *Facade) Search(args *SearchArgs, reply *ItemListReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		var keys []sqldb.Value
		var err error
		switch args.Type {
		case "title":
			keys, err = tx.FindWhere("Item", "title LIKE ?",
				[]sqldb.Value{sqldb.String("%" + args.Term + "%")}, "title", 50)
		case "subject":
			keys, err = tx.FindWhere("Item", "subject = ?",
				[]sqldb.Value{sqldb.String(strings.ToUpper(args.Term))}, "title", 50)
		default: // author: finder on authors, then items per author
			var authorKeys []sqldb.Value
			authorKeys, err = tx.FindWhere("Author", "lname LIKE ?",
				[]sqldb.Value{sqldb.String(args.Term + "%")}, "", 10)
			if err != nil {
				return err
			}
			for _, ak := range authorKeys {
				iks, ferr := tx.FindBy("Item", "author_id", ak, 10)
				if ferr != nil {
					return ferr
				}
				keys = append(keys, iks...)
			}
		}
		if err != nil {
			return err
		}
		if len(keys) > 50 {
			keys = keys[:50]
		}
		for _, pk := range keys {
			s, err := itemSummaryOf(tx, pk)
			if err != nil {
				return err
			}
			reply.Items = append(reply.Items, s)
		}
		return nil
	})
}

// GreetArgs / GreetReply implement the home-page greeting lookup.
type GreetArgs struct{ CustomerID int64 }
type GreetReply struct{ Greeting string }

// Greet activates the customer entity.
func (f *Facade) Greet(args *GreetArgs, reply *GreetReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		cst, err := tx.Load("Customer", sqldb.Int(args.CustomerID))
		if err != nil {
			return nil // unknown customer: empty greeting
		}
		fn, _ := cst.Get("fname")
		ln, _ := cst.Get("lname")
		reply.Greeting = fn.AsString() + " " + ln.AsString()
		return nil
	})
}

// CartArgs prices a cart.
type CartArgs struct {
	ItemIDs []int64
	Qtys    []int64
}

// CartReply returns priced lines.
type CartReply struct {
	Items []ItemSummary
	Total float64
}

// Cart activates each cart item.
func (f *Facade) Cart(args *CartArgs, reply *CartReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		for i, id := range args.ItemIDs {
			s, err := itemSummaryOf(tx, sqldb.Int(id))
			if err != nil {
				continue
			}
			reply.Items = append(reply.Items, s)
			if i < len(args.Qtys) {
				reply.Total += s.Cost * float64(args.Qtys[i])
			}
		}
		return nil
	})
}

// RegisterArgs / RegisterReply create a customer.
type RegisterArgs struct {
	Uname, Passwd, Fname, Lname, Street, City string
}
type RegisterReply struct{ CustomerID int64 }

// Register creates the address and customer entities.
func (f *Facade) Register(args *RegisterArgs, reply *RegisterReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		addr, err := tx.Create("Address", []sqldb.Value{
			sqldb.String(args.Street), sqldb.String(args.City), sqldb.Int(1)})
		if err != nil {
			return err
		}
		cid, err := tx.Create("Customer", []sqldb.Value{
			sqldb.String(args.Uname), sqldb.String(args.Passwd),
			sqldb.String(args.Fname), sqldb.String(args.Lname),
			addr, sqldb.String(""), sqldb.String(args.Uname + "@example.com"),
			sqldb.Float(0)})
		if err != nil {
			return err
		}
		reply.CustomerID = cid.AsInt()
		return nil
	})
}

// BuyArgs / BuyReply run the purchase.
type BuyArgs struct {
	CustomerID int64
	ItemIDs    []int64
	Qtys       []int64
}
type BuyReply struct{ OrderID int64 }

// Buy is the purchase transaction: entity activations and per-field stores
// replace the hand-written LOCK TABLES transaction; MyISAM's per-statement
// locks are the only database-side serialization (the paper's EJB
// configuration has no LOCK TABLES).
func (f *Facade) Buy(args *BuyArgs, reply *BuyReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		cst, err := tx.Load("Customer", sqldb.Int(args.CustomerID))
		if err != nil {
			return err
		}
		discount, _ := cst.Get("discount")
		var subtotal float64
		items := make([]*ejb.Entity, 0, len(args.ItemIDs))
		for i, id := range args.ItemIDs {
			it, err := tx.Load("Item", sqldb.Int(id))
			if err != nil {
				return err
			}
			cost, _ := it.Get("cost")
			qty := int64(1)
			if i < len(args.Qtys) {
				qty = args.Qtys[i]
			}
			subtotal += cost.AsFloat() * float64(qty)
			items = append(items, it)
		}
		total := subtotal * (1 - discount.AsFloat())
		orderPK, err := tx.Create("Order", []sqldb.Value{
			sqldb.Int(args.CustomerID), sqldb.Int(12000),
			sqldb.Float(subtotal), sqldb.Float(total), sqldb.String("PENDING")})
		if err != nil {
			return err
		}
		for i, it := range items {
			qty := int64(1)
			if i < len(args.Qtys) {
				qty = args.Qtys[i]
			}
			if _, err := tx.Create("OrderLine", []sqldb.Value{
				orderPK, it.PK(), sqldb.Int(qty), discount}); err != nil {
				return err
			}
			// Two single-column CMP stores per item.
			stock, _ := it.Get("stock")
			sold, _ := it.Get("total_sold")
			if err := it.Set("stock", sqldb.Int(stock.AsInt()-qty)); err != nil {
				return err
			}
			if err := it.Set("total_sold", sqldb.Int(sold.AsInt()+qty)); err != nil {
				return err
			}
		}
		if _, err := tx.Create("CreditInfo", []sqldb.Value{
			orderPK, sqldb.String("VISA"), sqldb.String("4111111111111111"),
			sqldb.Int(13000), sqldb.String("AUTH-OK")}); err != nil {
			return err
		}
		reply.OrderID = orderPK.AsInt()
		return nil
	})
}

// OrderArgs / OrderReply fetch the latest order.
type OrderArgs struct{ CustomerID int64 }
type OrderReply struct {
	Found bool
	Order OrderView
}

// LastOrder runs the order-display logic: finder + per-entity activations.
func (f *Facade) LastOrder(args *OrderArgs, reply *OrderReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		keys, err := tx.FindWhere("Order", "customer_id = ?",
			[]sqldb.Value{sqldb.Int(args.CustomerID)}, "id DESC", 1)
		if err != nil || len(keys) == 0 {
			return err
		}
		o, err := tx.Load("Order", keys[0])
		if err != nil {
			return err
		}
		get := func(field string) sqldb.Value { v, _ := o.Get(field); return v }
		reply.Found = true
		reply.Order = OrderView{OrderID: keys[0].AsInt(), Date: get("o_date").AsInt(),
			Total: get("total").AsFloat(), Status: get("status").AsString()}
		lineKeys, err := tx.FindBy("OrderLine", "order_id", keys[0], 0)
		if err != nil {
			return err
		}
		for _, lk := range lineKeys {
			l, err := tx.Load("OrderLine", lk)
			if err != nil {
				return err
			}
			itemID, _ := l.Get("item_id")
			qty, _ := l.Get("qty")
			it, err := tx.Load("Item", itemID)
			if err != nil {
				return err
			}
			title, _ := it.Get("title")
			reply.Order.Lines = append(reply.Order.Lines, OrderLineView{
				ItemID: itemID.AsInt(), Title: title.AsString(), Qty: qty.AsInt()})
		}
		return nil
	})
}

// AdminArgs / AdminReply update an item.
type AdminArgs struct {
	ItemID int64
	Cost   float64
}
type AdminReply struct{ Updated bool }

// Admin performs the administrative update as two CMP field stores.
func (f *Facade) Admin(args *AdminArgs, reply *AdminReply) error {
	return f.C.RunInTx(func(tx *ejb.Tx) error {
		it, err := tx.Load("Item", sqldb.Int(args.ItemID))
		if err != nil {
			return nil
		}
		if err := it.Set("cost", sqldb.Float(args.Cost)); err != nil {
			return err
		}
		if err := it.Set("pub_date", sqldb.Int(12001)); err != nil {
			return err
		}
		reply.Updated = true
		return nil
	})
}

// PresentationApp is the servlet-side presentation tier of the EJB
// deployment: it keeps only HTML rendering and calls the façade over RMI.
type PresentationApp struct {
	rmi *rmi.Client
	sc  Scale
}

// NewPresentationApp wires the presentation servlets to an RMI client.
func NewPresentationApp(client *rmi.Client, sc Scale) *PresentationApp {
	return &PresentationApp{rmi: client, sc: sc}
}

// Register installs the presentation servlets under the same URLs as the
// direct app, so the same workload profile drives both deployments.
func (p *PresentationApp) Register(c *servlet.Container) {
	type h = func(*servlet.Context, *httpd.Request) (*httpd.Response, error)
	routes := map[string]h{
		"home":                 p.home,
		"newproducts":          p.list("New Products", "pub_date DESC"),
		"bestsellers":          p.list("Best Sellers", "total_sold DESC"),
		"productdetail":        p.detail,
		"searchrequest":        p.searchRequest,
		"searchresults":        p.search,
		"shoppingcart":         p.cart,
		"customerregistration": p.register,
		"buyrequest":           p.buyRequest,
		"buyconfirm":           p.buyConfirm,
		"orderinquiry":         p.orderInquiry,
		"orderdisplay":         p.orderDisplay,
		"adminrequest":         p.detail,
		"adminconfirm":         p.adminConfirm,
	}
	for name, fn := range routes {
		c.Register(BasePath+name, servlet.Func(fn))
	}
}

func (p *PresentationApp) call(method string, args, reply any) error {
	return p.rmi.Call(FacadeName+"."+method, args, reply)
}

func (p *PresentationApp) home(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	cid := intParam(req, "c_id", 0)
	var greet GreetReply
	if cid > 0 {
		if err := p.call("Greet", &GreetArgs{CustomerID: cid}, &greet); err != nil && !rmi.IsFault(err) {
			return nil, err
		}
	}
	var reply ItemListReply
	subject := Subjects[int(cid)%len(Subjects)]
	if err := p.call("List", &ItemListArgs{Subject: subject, OrderBy: "total_sold DESC", Limit: 5}, &reply); err != nil {
		return nil, err
	}
	return page("TPC-W Home", func(b *strings.Builder) {
		if greet.Greeting != "" {
			fmt.Fprintf(b, "<p>Welcome back, %s!</p>\n", greet.Greeting)
		}
		renderItems(b, reply.Items)
	}), nil
}

func (p *PresentationApp) list(title, orderBy string) func(*servlet.Context, *httpd.Request) (*httpd.Response, error) {
	return func(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
		subject := req.Form().Get("subject")
		if subject == "" {
			subject = Subjects[0]
		}
		var reply ItemListReply
		if err := p.call("List", &ItemListArgs{Subject: subject, OrderBy: orderBy, Limit: 50}, &reply); err != nil {
			return nil, err
		}
		return page(title+": "+subject, func(b *strings.Builder) {
			renderItems(b, reply.Items)
		}), nil
	}
}

func (p *PresentationApp) detail(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	var reply DetailReply
	if err := p.call("Detail", &DetailArgs{ItemID: intParam(req, "i_id", 1)}, &reply); err != nil {
		return nil, err
	}
	if !reply.Found {
		return httpd.Error(404, "no such item"), nil
	}
	d := reply.D
	return page("Product Detail", func(b *strings.Builder) {
		fmt.Fprintf(b, `<img src="/img/item_%d.gif"><h2>%s</h2><p>by %s</p><p>%s</p><p>$%.2f (%d in stock)</p>`+"\n",
			d.ID%64, d.Title, d.Author, d.Descr, d.Cost, d.Stock)
	}), nil
}

func (p *PresentationApp) searchRequest(*servlet.Context, *httpd.Request) (*httpd.Response, error) {
	return page("Search", func(b *strings.Builder) {
		fmt.Fprintf(b, `<form action="%ssearchresults"><input name="term"><input type="submit"></form>`+"\n", BasePath)
	}), nil
}

func (p *PresentationApp) search(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	f := req.Form()
	var reply ItemListReply
	if err := p.call("Search", &SearchArgs{Type: f.Get("type"), Term: f.Get("term")}, &reply); err != nil {
		return nil, err
	}
	return page("Search Results", func(b *strings.Builder) {
		renderItems(b, reply.Items)
	}), nil
}

func (p *PresentationApp) cart(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	resp := httpd.NewResponse()
	sess, ct := sessionCart(ctx, req, resp)
	if id := intParam(req, "i_id", 0); id > 0 {
		qty := intParam(req, "qty", 1)
		if qty <= 0 {
			delete(ct.Lines, id)
		} else {
			ct.Lines[id] = qty
		}
		sess.Set("cart", ct) // publish the mutation to the session store
	}
	args := CartArgs{}
	for id, q := range ct.Lines {
		args.ItemIDs = append(args.ItemIDs, id)
		args.Qtys = append(args.Qtys, q)
	}
	var reply CartReply
	if err := p.call("Cart", &args, &reply); err != nil {
		return nil, err
	}
	out := page("Shopping Cart", func(b *strings.Builder) {
		for _, it := range reply.Items {
			fmt.Fprintf(b, "<p>%s $%.2f</p>\n", it.Title, it.Cost)
		}
		fmt.Fprintf(b, "<p>Total: $%.2f</p>\n", reply.Total)
	})
	out.Header = resp.Header
	return out, nil
}

func (p *PresentationApp) register(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	f := req.Form()
	uname := f.Get("uname")
	if uname == "" {
		uname = fmt.Sprintf("ejbuser%d", intParam(req, "seed", 0))
	}
	var reply RegisterReply
	err := p.call("Register", &RegisterArgs{Uname: uname, Passwd: f.Get("passwd"),
		Fname: f.Get("fname"), Lname: f.Get("lname"),
		Street: f.Get("street"), City: f.Get("city")}, &reply)
	if err != nil {
		return nil, err
	}
	return page("Registered", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Welcome %s, customer #%d</p>\n", uname, reply.CustomerID)
	}), nil
}

func (p *PresentationApp) buyRequest(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	resp := httpd.NewResponse()
	_, ct := sessionCart(ctx, req, resp)
	cid := intParam(req, "c_id", 1)
	out := page("Buy Request", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>%d cart lines</p>\n", len(ct.Lines))
		fmt.Fprintf(b, `<form action="%sbuyconfirm"><input type="hidden" name="c_id" value="%d"><input type="submit"></form>`+"\n", BasePath, cid)
	})
	out.Header = resp.Header
	return out, nil
}

func (p *PresentationApp) buyConfirm(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	resp := httpd.NewResponse()
	sess, ct := sessionCart(ctx, req, resp)
	cid := intParam(req, "c_id", 1)
	if len(ct.Lines) == 0 {
		ct.Lines[1+cid%int64(p.sc.Items)] = 1
		sess.Set("cart", ct)
	}
	args := BuyArgs{CustomerID: cid}
	for id, q := range ct.Lines {
		args.ItemIDs = append(args.ItemIDs, id)
		args.Qtys = append(args.Qtys, q)
	}
	var reply BuyReply
	if err := p.call("Buy", &args, &reply); err != nil {
		return nil, err
	}
	sess.Set("cart", &cart{Lines: make(map[int64]int64)})
	out := page("Order Confirmed", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Order #%d placed.</p>\n", reply.OrderID)
	})
	out.Header = resp.Header
	return out, nil
}

func (p *PresentationApp) orderInquiry(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	cid := intParam(req, "c_id", 1)
	return page("Order Inquiry", func(b *strings.Builder) {
		fmt.Fprintf(b, `<form action="%sorderdisplay"><input type="hidden" name="c_id" value="%d"><input type="submit"></form>`+"\n", BasePath, cid)
	}), nil
}

func (p *PresentationApp) orderDisplay(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	var reply OrderReply
	if err := p.call("LastOrder", &OrderArgs{CustomerID: intParam(req, "c_id", 1)}, &reply); err != nil {
		return nil, err
	}
	return page("Order Display", func(b *strings.Builder) {
		if !reply.Found {
			b.WriteString("<p>No orders on file.</p>\n")
			return
		}
		o := reply.Order
		fmt.Fprintf(b, "<p>Order #%d (%s): $%.2f</p>\n", o.OrderID, o.Status, o.Total)
		for _, l := range o.Lines {
			fmt.Fprintf(b, "<p>%s x%d</p>\n", l.Title, l.Qty)
		}
	}), nil
}

func (p *PresentationApp) adminConfirm(ctx *servlet.Context, req *httpd.Request) (*httpd.Response, error) {
	var reply AdminReply
	args := AdminArgs{ItemID: intParam(req, "i_id", 1), Cost: float64(intParam(req, "cost", 25))}
	if err := p.call("Admin", &args, &reply); err != nil {
		return nil, err
	}
	return page("Admin Confirm", func(b *strings.Builder) {
		fmt.Fprintf(b, "<p>Item %d updated: %v</p>\n", args.ItemID, reply.Updated)
	}), nil
}
