// Package telemetry defines the cross-tier saturation snapshot the stack
// reports: each tier contributes its request/query counters and the
// pool.Stats of its downstream transport pool, and the snapshot names the
// bottleneck tier — the paper's headline observable (which tier saturates
// under each middleware configuration, §5–§6).
//
// The package is a leaf so every layer can speak the same type:
// core.Lab builds snapshots and serves them as JSON on /status,
// workload.Report embeds a windowed delta, and cmd/loadgen decodes the
// JSON from a remote server.
package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/pool"
)

// Tier is one tier's counters. The Pool is the tier's client-side pool to
// the tier below it, so its wait time measures downstream saturation as
// seen from this tier (e.g. the servlet tier's pool is its database
// connection pool).
type Tier struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests,omitempty"`
	Queries  int64  `json:"queries,omitempty"`
	Loads    int64  `json:"loads,omitempty"`
	Stores   int64  `json:"stores,omitempty"`
	// Bytes is the tier's outbound payload volume (the web tier reports
	// response-body bytes — the NIC-bandwidth observable of the paper's
	// CPU figures).
	Bytes int64       `json:"bytes,omitempty"`
	Pool  *pool.Stats `json:"pool,omitempty"`
	// The database tier splits Queries by arrival path — EXECUTE-by-id
	// (prepared) vs SQL text — and reports its shared plan cache, the
	// statements-parsed-once observable of the wire protocol v2 work.
	PreparedExecs int64 `json:"prepared_execs,omitempty"`
	TextExecs     int64 `json:"text_execs,omitempty"`
	PlanHits      int64 `json:"plan_hits,omitempty"`
	PlanMisses    int64 `json:"plan_misses,omitempty"`
	// Transaction outcomes. For the database tier these are the engine's
	// counters (every BEGIN/COMMIT/ROLLBACK served); for the EJB tier they
	// are container-managed demarcation outcomes. DeadlockTimeouts counts
	// transactions aborted by the lock wait timeout, and TxnLockWaitNanos
	// is cumulative time transactions spent blocked on table locks — both
	// feed the bottleneck heuristic as database-tier saturation evidence.
	Commits          int64 `json:"commits,omitempty"`
	Aborts           int64 `json:"aborts,omitempty"`
	DeadlockTimeouts int64 `json:"deadlock_timeouts,omitempty"`
	TxnLockWaitNanos int64 `json:"txn_lock_wait_nanos,omitempty"`
	// MVCC read-path counters (database tier): SELECT statements served from
	// committed snapshots, per-table lock-manager bypasses those reads got
	// for free, and snapshot rebuilds (the slow path — a rebuild takes the
	// table's read lock once, then every reader until the next write is
	// lock-free).
	SnapshotReads     int64 `json:"snapshot_reads,omitempty"`
	LockBypasses      int64 `json:"lock_bypasses,omitempty"`
	SnapshotRefreshes int64 `json:"snapshot_refreshes,omitempty"`
	// Replica-coordination counters (tiers that own a cluster client):
	// Broadcasts counts statements fanned out to all replicas concurrently,
	// BroadcastAcks the replica acknowledgements they gathered (acks ÷
	// broadcasts ≈ replicas reached per write), and ReadOnlyTxns the
	// transactions that declared themselves read-only and skipped the
	// write-order locks entirely.
	Broadcasts    int64 `json:"broadcasts,omitempty"`
	BroadcastAcks int64 `json:"broadcast_acks,omitempty"`
	ReadOnlyTxns  int64 `json:"readonly_txns,omitempty"`
	// Robustness counters (tiers that own a cluster client). The transport-
	// level figures — operation deadlines hit, pool-wait timeouts, retry
	// backoff sleeps — live in Pool; these are the routing-level ones:
	// replicas ejected for lagging the broadcast pack, and the strict-write
	// degraded (read-only) mode's entries, exits, and fast-failed writes.
	// Degraded is a gauge: true while the cluster is read-only right now.
	SlowEjections   int64 `json:"slow_ejections,omitempty"`
	DegradedEntries int64 `json:"degraded_entries,omitempty"`
	DegradedExits   int64 `json:"degraded_exits,omitempty"`
	DegradedRejects int64 `json:"degraded_rejects,omitempty"`
	Degraded        bool  `json:"degraded,omitempty"`
	// Sharding counters (tiers whose cluster client fronts a horizontally
	// partitioned database tier): Shards is the shard-group count,
	// ShardSingle the statements routed to exactly one owning shard,
	// ShardScatter the reads fanned to every shard and merged client-side,
	// ShardBroadcast the keyless writes/DDL sent everywhere, and
	// Shard2PCTxns the transactions that touched several shards and
	// committed through two-phase commit.
	Shards         int   `json:"shards,omitempty"`
	ShardSingle    int64 `json:"shard_single,omitempty"`
	ShardScatter   int64 `json:"shard_scatter,omitempty"`
	ShardBroadcast int64 `json:"shard_broadcast,omitempty"`
	Shard2PCTxns   int64 `json:"shard_2pc_txns,omitempty"`
	// Caching-tier counters (DESIGN.md §10). The query-result cache lives
	// in the tier that owns the cluster client (servlet or ejb): hits were
	// served without touching the database tier, invalidations are entries
	// dropped because a referenced table's commit-time version moved, and
	// bypasses are reads forced live because the session's transaction
	// write-held a referenced table. The page cache lives in the web tier:
	// hits were served without touching the app tier at all. A tier below
	// a hot cache sees only the miss traffic — the Format verdict annotates
	// the bottleneck line so the shrunken load is not misread.
	QueryCacheHits          int64 `json:"query_cache_hits,omitempty"`
	QueryCacheMisses        int64 `json:"query_cache_misses,omitempty"`
	QueryCacheInvalidations int64 `json:"query_cache_invalidations,omitempty"`
	QueryCacheBypasses      int64 `json:"query_cache_bypasses,omitempty"`
	PageCacheHits           int64 `json:"page_cache_hits,omitempty"`
	PageCacheMisses         int64 `json:"page_cache_misses,omitempty"`
	PageCacheInvalidations  int64 `json:"page_cache_invalidations,omitempty"`
	PageCacheBypasses       int64 `json:"page_cache_bypasses,omitempty"`
	// Durability counters (DESIGN.md §12). For the database tier these
	// aggregate the replicas' write-ahead logs: record batches appended,
	// fsyncs issued (appends ÷ fsyncs is the group-commit amortization),
	// log bytes written, checkpoints taken, and boot-time recoveries. For
	// a tier that owns a cluster client, the WALDelta*/WALFull* counters
	// split rejoin data copies by path: log-shipping delta (and the
	// statements it replayed) versus full table copy.
	WALAppends     int64 `json:"wal_appends,omitempty"`
	WALFsyncs      int64 `json:"wal_fsyncs,omitempty"`
	WALBytes       int64 `json:"wal_bytes,omitempty"`
	WALCheckpoints int64 `json:"wal_checkpoints,omitempty"`
	WALRecoveries  int64 `json:"wal_recoveries,omitempty"`
	WALDeltaSyncs  int64 `json:"wal_delta_syncs,omitempty"`
	WALFullSyncs   int64 `json:"wal_full_syncs,omitempty"`
	WALDeltaStmts  int64 `json:"wal_delta_stmts,omitempty"`
	// Downstream names the tier Pool dials into. Pool wait time is
	// evidence that *that* tier's connections are all busy, so
	// Bottleneck charges the wait there, not to the pool's holder.
	Downstream string `json:"downstream,omitempty"`
}

// Replica is one database backend's view in a replicated (read-one-write-
// all) run: how the cluster client routed traffic to it, its health, and —
// when the snapshot owner also runs the servers — the statements it served.
// Lag is the cumulative time this replica's write acknowledgements trailed
// the fastest acknowledgement of each (concurrent) broadcast — zero on
// whichever replica answered first.
type Replica struct {
	ID int `json:"id"`
	// Shard is the owning shard group's index on a sharded cluster
	// (always 0 when the database tier is unsharded).
	Shard   int    `json:"shard"`
	Addr    string `json:"addr,omitempty"`
	Healthy bool   `json:"healthy"`
	// Reads / Writes count statements the cluster client routed here;
	// Ejections counts health ejections after transport failures.
	Reads     int64 `json:"reads"`
	Writes    int64 `json:"writes"`
	Ejections int64 `json:"ejections,omitempty"`
	LagNanos  int64 `json:"lag_nanos,omitempty"`
	// Queries is the replica server's own statement counter (server-side
	// view; 0 when the snapshot was taken from the client side only).
	Queries int64       `json:"queries,omitempty"`
	Pool    *pool.Stats `json:"pool,omitempty"`
	// Write-ahead log counters for this replica's backend (zero when the
	// snapshot owner does not run the servers, or the backend has no WAL):
	// appends/fsyncs/bytes measure the log, Checkpoints the snapshots it
	// rotated against, Recoveries whether this process recovered its state
	// from disk at boot.
	WALAppends  int64 `json:"wal_appends,omitempty"`
	WALFsyncs   int64 `json:"wal_fsyncs,omitempty"`
	WALBytes    int64 `json:"wal_bytes,omitempty"`
	Checkpoints int64 `json:"checkpoints,omitempty"`
	Recoveries  int64 `json:"recoveries,omitempty"`
}

// AppBackend is one application-tier backend's view in a load-balanced
// (replicated application tier) run: how the front-end balancer
// (internal/lb) routed traffic to it, its health, and — when the snapshot
// owner also runs the containers — the requests it served. Routed counts
// balancer dispatches; Affinity counts the subset pinned here by session
// affinity; Failovers counts pinned requests redirected to another backend
// because this one was down.
type AppBackend struct {
	ID        string `json:"id"`
	Healthy   bool   `json:"healthy"`
	Routed    int64  `json:"routed"`
	Affinity  int64  `json:"affinity,omitempty"`
	Failovers int64  `json:"failovers,omitempty"`
	Errors    int64  `json:"errors,omitempty"`
	Ejections int64  `json:"ejections,omitempty"`
	// InFlight is the balancer's requests-outstanding gauge at snapshot
	// time — the least-in-flight routing signal.
	InFlight int64 `json:"in_flight"`
	// Requests is the backend container's own served count (container-side
	// view; 0 when the snapshot was taken from the balancer side only).
	Requests int64 `json:"requests,omitempty"`
	// Pool is the balancer-side connector pool into this backend.
	Pool *pool.Stats `json:"pool,omitempty"`
}

// Snapshot is the whole stack at one moment (or, after Delta, over one
// measurement window).
type Snapshot struct {
	Arch      string `json:"arch,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Tiers     []Tier `json:"tiers"`
	// Replicas is the database tier's per-backend breakdown when the stack
	// runs a replicated cluster; empty for a single-backend run.
	Replicas []Replica `json:"replicas,omitempty"`
	// AppBackends is the application tier's per-backend breakdown when the
	// stack runs load-balanced container replicas; empty otherwise.
	AppBackends []AppBackend `json:"app_backends,omitempty"`
}

// Tier returns the named tier, or nil.
func (s *Snapshot) Tier(name string) *Tier {
	for i := range s.Tiers {
		if s.Tiers[i].Name == name {
			return &s.Tiers[i]
		}
	}
	return nil
}

// Delta returns the per-tier counter differences s−prev (for counters
// accumulated since boot), keeping s's gauges. Tiers missing from prev
// pass through unchanged.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	out := &Snapshot{Arch: s.Arch, Benchmark: s.Benchmark}
	for _, t := range s.Tiers {
		if prev != nil {
			if pt := prev.Tier(t.Name); pt != nil {
				t.Requests -= pt.Requests
				t.Queries -= pt.Queries
				t.Loads -= pt.Loads
				t.Stores -= pt.Stores
				t.Bytes -= pt.Bytes
				t.PreparedExecs -= pt.PreparedExecs
				t.TextExecs -= pt.TextExecs
				t.PlanHits -= pt.PlanHits
				t.PlanMisses -= pt.PlanMisses
				t.Commits -= pt.Commits
				t.Aborts -= pt.Aborts
				t.DeadlockTimeouts -= pt.DeadlockTimeouts
				t.TxnLockWaitNanos -= pt.TxnLockWaitNanos
				t.SnapshotReads -= pt.SnapshotReads
				t.LockBypasses -= pt.LockBypasses
				t.SnapshotRefreshes -= pt.SnapshotRefreshes
				t.Broadcasts -= pt.Broadcasts
				t.BroadcastAcks -= pt.BroadcastAcks
				t.ReadOnlyTxns -= pt.ReadOnlyTxns
				t.SlowEjections -= pt.SlowEjections
				t.DegradedEntries -= pt.DegradedEntries
				t.DegradedExits -= pt.DegradedExits
				t.DegradedRejects -= pt.DegradedRejects
				t.ShardSingle -= pt.ShardSingle
				t.ShardScatter -= pt.ShardScatter
				t.ShardBroadcast -= pt.ShardBroadcast
				t.Shard2PCTxns -= pt.Shard2PCTxns
				t.QueryCacheHits -= pt.QueryCacheHits
				t.QueryCacheMisses -= pt.QueryCacheMisses
				t.QueryCacheInvalidations -= pt.QueryCacheInvalidations
				t.QueryCacheBypasses -= pt.QueryCacheBypasses
				t.PageCacheHits -= pt.PageCacheHits
				t.PageCacheMisses -= pt.PageCacheMisses
				t.PageCacheInvalidations -= pt.PageCacheInvalidations
				t.PageCacheBypasses -= pt.PageCacheBypasses
				t.WALAppends -= pt.WALAppends
				t.WALFsyncs -= pt.WALFsyncs
				t.WALBytes -= pt.WALBytes
				t.WALCheckpoints -= pt.WALCheckpoints
				t.WALRecoveries -= pt.WALRecoveries
				t.WALDeltaSyncs -= pt.WALDeltaSyncs
				t.WALFullSyncs -= pt.WALFullSyncs
				t.WALDeltaStmts -= pt.WALDeltaStmts
				if t.Pool != nil && pt.Pool != nil {
					d := t.Pool.Sub(*pt.Pool)
					t.Pool = &d
				}
			}
		}
		out.Tiers = append(out.Tiers, t)
	}
	for _, r := range s.Replicas {
		if prev != nil {
			if pr := prev.Replica(r.ID); pr != nil {
				r.Reads -= pr.Reads
				r.Writes -= pr.Writes
				r.Ejections -= pr.Ejections
				r.LagNanos -= pr.LagNanos
				r.Queries -= pr.Queries
				r.WALAppends -= pr.WALAppends
				r.WALFsyncs -= pr.WALFsyncs
				r.WALBytes -= pr.WALBytes
				r.Checkpoints -= pr.Checkpoints
				r.Recoveries -= pr.Recoveries
				if r.Pool != nil && pr.Pool != nil {
					d := r.Pool.Sub(*pr.Pool)
					r.Pool = &d
				}
			}
		}
		out.Replicas = append(out.Replicas, r)
	}
	for _, a := range s.AppBackends {
		if prev != nil {
			if pa := prev.AppBackend(a.ID); pa != nil {
				a.Routed -= pa.Routed
				a.Affinity -= pa.Affinity
				a.Failovers -= pa.Failovers
				a.Errors -= pa.Errors
				a.Ejections -= pa.Ejections
				a.Requests -= pa.Requests
				if a.Pool != nil && pa.Pool != nil {
					d := a.Pool.Sub(*pa.Pool)
					a.Pool = &d
				}
			}
		}
		out.AppBackends = append(out.AppBackends, a)
	}
	return out
}

// AppBackend returns the application backend with the given id, or nil.
func (s *Snapshot) AppBackend(id string) *AppBackend {
	for i := range s.AppBackends {
		if s.AppBackends[i].ID == id {
			return &s.AppBackends[i]
		}
	}
	return nil
}

// Replica returns the replica with the given id, or nil.
func (s *Snapshot) Replica(id int) *Replica {
	for i := range s.Replicas {
		if s.Replicas[i].ID == id {
			return &s.Replicas[i]
		}
	}
	return nil
}

// Bottleneck names the most saturated tier: first by the cumulative time
// borrowers spent blocked waiting for a connection *into* it (a pool's
// wait time is charged to its Downstream tier — all of that tier's
// connections being busy is what made borrowers queue), then by the
// utilization of pools dialing into it, then by its own work count
// (requests+queries) as the proxy when nothing ever queued.
func (s *Snapshot) Bottleneck() string {
	if len(s.Tiers) == 0 {
		return ""
	}
	scores := make(map[string]*[3]float64, len(s.Tiers))
	for _, t := range s.Tiers {
		scores[t.Name] = &[3]float64{2: float64(t.Requests + t.Queries)}
	}
	for _, t := range s.Tiers {
		// Time transactions spent blocked on the database's table locks is
		// the same kind of evidence as pool wait time: work queued because
		// the tier below was busy — charged to the tier that owns the locks.
		scores[t.Name][0] += float64(t.TxnLockWaitNanos)
		if t.Pool == nil {
			continue
		}
		target := t.Downstream
		if _, ok := scores[target]; !ok {
			target = t.Name // unnamed or unknown downstream: charge the holder
		}
		sc := scores[target]
		// Time burned on operations that hit their deadline is the same
		// evidence as wait time, only stronger: the tier below was not just
		// busy but unresponsive. Both charge to the pool's Downstream, so a
		// stalled database reads as "db is the bottleneck (timing out)".
		sc[0] += float64(t.Pool.WaitNanos + t.Pool.TimeoutNanos)
		if u := t.Pool.Utilization(); u > sc[1] {
			sc[1] = u
		}
	}
	best, bestScore := s.Tiers[0].Name, *scores[s.Tiers[0].Name]
	for _, t := range s.Tiers[1:] {
		if sc := *scores[t.Name]; scoreLess(bestScore, sc) {
			best, bestScore = t.Name, sc
		}
	}
	return best
}

func scoreLess(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// JSON marshals the snapshot (the /status payload).
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only plain data; marshal cannot fail.
		panic("telemetry: marshal: " + err.Error())
	}
	return b
}

// Parse decodes a /status payload.
func Parse(b []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("telemetry: parse: %w", err)
	}
	return &s, nil
}

// Format renders the per-tier saturation table for reports, one line per
// tier, marking the bottleneck.
func (s *Snapshot) Format() string {
	var b strings.Builder
	bottleneck := s.Bottleneck()
	fmt.Fprintf(&b, "%-10s %9s %9s %8s %12s %8s %10s %9s\n",
		"tier", "requests", "queries", "MB out", "pool", "waits", "waittime", "borrow p95")
	for _, t := range s.Tiers {
		mark := " "
		if t.Name == bottleneck {
			mark = "*"
		}
		mb := "-"
		if t.Bytes > 0 {
			mb = fmt.Sprintf("%.1f", float64(t.Bytes)/(1<<20))
		}
		poolCol, waits, waitTime, p95 := "-", "-", "-", "-"
		if t.Pool != nil {
			poolCol = fmt.Sprintf("%d/%d busy", t.Pool.InUse, t.Pool.Capacity)
			waits = fmt.Sprintf("%d", t.Pool.Waits)
			waitTime = time.Duration(t.Pool.WaitNanos).Round(time.Microsecond).String()
			p95 = fmt.Sprintf("%.2fms", t.Pool.BorrowP95Millis)
		}
		fmt.Fprintf(&b, "%s%-9s %9d %9d %8s %12s %8s %10s %9s\n",
			mark, t.Name, t.Requests, t.Queries, mb, poolCol, waits, waitTime, p95)
	}
	for _, t := range s.Tiers {
		if t.PreparedExecs == 0 && t.TextExecs == 0 && t.PlanHits == 0 && t.PlanMisses == 0 {
			continue
		}
		hitRate := 0.0
		if n := t.PlanHits + t.PlanMisses; n > 0 {
			hitRate = 100 * float64(t.PlanHits) / float64(n)
		}
		fmt.Fprintf(&b, "%s execs: %d prepared / %d text; plan cache: %d hits / %d misses (%.1f%%)\n",
			t.Name, t.PreparedExecs, t.TextExecs, t.PlanHits, t.PlanMisses, hitRate)
	}
	for _, t := range s.Tiers {
		if t.Commits == 0 && t.Aborts == 0 && t.DeadlockTimeouts == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s txns: %d commits / %d aborts (%d deadlock timeouts, %s waiting on locks)\n",
			t.Name, t.Commits, t.Aborts, t.DeadlockTimeouts,
			time.Duration(t.TxnLockWaitNanos).Round(time.Microsecond))
	}
	for _, t := range s.Tiers {
		if t.SnapshotReads == 0 && t.SnapshotRefreshes == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s mvcc: %d snapshot reads, %d lock bypasses, %d refreshes\n",
			t.Name, t.SnapshotReads, t.LockBypasses, t.SnapshotRefreshes)
	}
	for _, t := range s.Tiers {
		if t.Broadcasts == 0 && t.ReadOnlyTxns == 0 {
			continue
		}
		acksPer := 0.0
		if t.Broadcasts > 0 {
			acksPer = float64(t.BroadcastAcks) / float64(t.Broadcasts)
		}
		fmt.Fprintf(&b, "%s cluster: %d broadcasts (%.1f acks each), %d read-only txns\n",
			t.Name, t.Broadcasts, acksPer, t.ReadOnlyTxns)
	}
	for _, t := range s.Tiers {
		qn := t.QueryCacheHits + t.QueryCacheMisses
		pn := t.PageCacheHits + t.PageCacheMisses
		if qn == 0 && t.QueryCacheBypasses == 0 && pn == 0 && t.PageCacheBypasses == 0 {
			continue
		}
		if qn > 0 || t.QueryCacheBypasses > 0 {
			fmt.Fprintf(&b, "%s query cache: %d hits / %d misses (%.1f%%), %d invalidations, %d txn bypasses\n",
				t.Name, t.QueryCacheHits, t.QueryCacheMisses, hitPct(t.QueryCacheHits, qn),
				t.QueryCacheInvalidations, t.QueryCacheBypasses)
		}
		if pn > 0 || t.PageCacheBypasses > 0 {
			fmt.Fprintf(&b, "%s page cache: %d hits / %d misses (%.1f%%), %d invalidations, %d session bypasses\n",
				t.Name, t.PageCacheHits, t.PageCacheMisses, hitPct(t.PageCacheHits, pn),
				t.PageCacheInvalidations, t.PageCacheBypasses)
		}
	}
	for _, t := range s.Tiers {
		if t.WALAppends == 0 && t.WALRecoveries == 0 && t.WALDeltaSyncs == 0 && t.WALFullSyncs == 0 {
			continue
		}
		perFsync := 0.0
		if t.WALFsyncs > 0 {
			perFsync = float64(t.WALAppends) / float64(t.WALFsyncs)
		}
		fmt.Fprintf(&b, "%s wal: %d appends / %d fsyncs (%.1f per fsync), %.1f MB, %d checkpoints, %d recoveries; rejoins %d delta (%d stmts) / %d full\n",
			t.Name, t.WALAppends, t.WALFsyncs, perFsync, float64(t.WALBytes)/(1<<20),
			t.WALCheckpoints, t.WALRecoveries, t.WALDeltaSyncs, t.WALDeltaStmts, t.WALFullSyncs)
	}
	for _, t := range s.Tiers {
		p := t.Pool
		if p == nil || (p.OpTimeouts == 0 && p.WaitTimeouts == 0 && p.Backoffs == 0) {
			continue
		}
		into := t.Downstream
		if into == "" {
			into = t.Name
		}
		fmt.Fprintf(&b, "%s->%s faults: %d op timeouts (%s lost), %d pool-wait timeouts, %d backoffs (%s waiting)\n",
			t.Name, into, p.OpTimeouts, time.Duration(p.TimeoutNanos).Round(time.Microsecond),
			p.WaitTimeouts, p.Backoffs, time.Duration(p.BackoffNanos).Round(time.Microsecond))
	}
	for _, t := range s.Tiers {
		if t.SlowEjections == 0 && t.DegradedEntries == 0 && t.DegradedRejects == 0 && !t.Degraded {
			continue
		}
		state := "recovered"
		if t.Degraded {
			state = "DEGRADED: read-only"
		}
		fmt.Fprintf(&b, "%s cluster health: %d slow ejections; degraded mode %d entries / %d exits, %d writes fast-failed [%s]\n",
			t.Name, t.SlowEjections, t.DegradedEntries, t.DegradedExits, t.DegradedRejects, state)
	}
	if len(s.AppBackends) > 0 {
		fmt.Fprintf(&b, "%-10s %9s %9s %9s %9s %12s %8s\n",
			"backend", "routed", "affinity", "failover", "inflight", "pool", "state")
		for _, a := range s.AppBackends {
			state := "healthy"
			if !a.Healthy {
				state = "ejected"
			}
			poolCol := "-"
			if a.Pool != nil {
				poolCol = fmt.Sprintf("%d/%d busy", a.Pool.InUse, a.Pool.Capacity)
			}
			fmt.Fprintf(&b, "%-10s %9d %9d %9d %9d %12s %8s\n",
				fmt.Sprintf("app[%s]", a.ID), a.Routed, a.Affinity, a.Failovers,
				a.InFlight, poolCol, state)
		}
	}
	if len(s.Replicas) > 0 {
		fmt.Fprintf(&b, "%-10s %9s %9s %9s %10s %12s %8s\n",
			"replica", "reads", "writes", "queries", "lag", "pool", "state")
		for _, r := range s.Replicas {
			state := "healthy"
			if !r.Healthy {
				state = "ejected"
			}
			poolCol := "-"
			if r.Pool != nil {
				poolCol = fmt.Sprintf("%d/%d busy", r.Pool.InUse, r.Pool.Capacity)
			}
			fmt.Fprintf(&b, "db[%d]%-5s %9d %9d %9d %10s %12s %8s\n",
				r.ID, "", r.Reads, r.Writes, r.Queries,
				time.Duration(r.LagNanos).Round(time.Microsecond), poolCol, state)
		}
	}
	verdict := bottleneck
	for _, t := range s.Tiers {
		if t.Pool != nil && t.Downstream == bottleneck && t.Pool.OpTimeouts > 0 {
			verdict += " (timing out)"
			break
		}
	}
	// A hot cache serves most traffic before it reaches the tiers below:
	// the verdict then describes only the post-cache residue, and reading
	// it as the uncached stack's bottleneck would misdiagnose. Annotate
	// whenever any cache served more than it missed.
	for _, t := range s.Tiers {
		if t.QueryCacheHits > t.QueryCacheMisses || t.PageCacheHits > t.PageCacheMisses {
			verdict += " (caches hot: tier load is post-cache)"
			break
		}
	}
	fmt.Fprintf(&b, "bottleneck: %s\n", verdict)
	return b.String()
}

// hitPct is the hit percentage of a hits+misses total (0 when idle).
func hitPct(hits, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(total)
}
