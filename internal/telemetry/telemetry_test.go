package telemetry

import (
	"strings"
	"testing"

	"repro/internal/pool"
)

func snap() *Snapshot {
	return &Snapshot{
		Arch: "WsApSr-DB", Benchmark: "bookstore",
		Tiers: []Tier{
			{Name: "web", Requests: 100, Downstream: "servlet",
				Pool: &pool.Stats{Name: "ajp", Capacity: 8, Gets: 40}},
			{Name: "servlet", Requests: 40, Downstream: "db",
				Pool: &pool.Stats{Name: "db", Capacity: 8, Gets: 90, Waits: 12, WaitNanos: 5e6}},
			{Name: "db", Queries: 90, PreparedExecs: 70, TextExecs: 20,
				PlanHits: 85, PlanMisses: 5},
		},
	}
}

func TestDeltaSubtractsCounters(t *testing.T) {
	before := snap()
	after := snap()
	after.Tiers[0].Requests = 250
	after.Tiers[2].Queries = 300
	after.Tiers[1].Pool.WaitNanos = 9e6

	after.Tiers[2].PreparedExecs = 170
	after.Tiers[2].PlanHits = 185

	d := after.Delta(before)
	if got := d.Tier("web").Requests; got != 150 {
		t.Fatalf("web delta = %d, want 150", got)
	}
	if got := d.Tier("db").Queries; got != 210 {
		t.Fatalf("db delta = %d, want 210", got)
	}
	if db := d.Tier("db"); db.PreparedExecs != 100 || db.PlanHits != 100 ||
		db.TextExecs != 0 || db.PlanMisses != 0 {
		t.Fatalf("prepared/plan-cache deltas: %+v", db)
	}
	if got := d.Tier("servlet").Pool.WaitNanos; got != 4e6 {
		t.Fatalf("pool wait delta = %d, want 4e6", got)
	}
	// Original snapshots are untouched.
	if after.Tier("web").Requests != 250 || before.Tier("web").Requests != 100 {
		t.Fatal("Delta mutated its inputs")
	}
}

func TestBottleneckChargesWaitDownstream(t *testing.T) {
	s := snap()
	// The servlet tier's db-client pool recorded wait time: the database
	// is what saturated, not the servlet holding the pool.
	if got := s.Bottleneck(); got != "db" {
		t.Fatalf("bottleneck = %q, want db (servlet's db pool queued)", got)
	}
	// Waits on the web tier's AJP pool instead indict the servlet tier.
	s.Tiers[1].Pool.WaitNanos = 0
	s.Tiers[0].Pool.WaitNanos = 3e6
	if got := s.Bottleneck(); got != "servlet" {
		t.Fatalf("bottleneck = %q, want servlet (web's AJP pool queued)", got)
	}
	// With no pool ever waiting anywhere, fall back to work volume.
	s.Tiers[0].Pool.WaitNanos = 0
	if got := s.Bottleneck(); got != "web" {
		t.Fatalf("bottleneck = %q, want web (most requests)", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := snap()
	back, err := Parse(s.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if back.Arch != s.Arch || len(back.Tiers) != 3 {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Tier("servlet").Pool.WaitNanos != 5e6 {
		t.Fatalf("pool stats lost: %+v", back.Tier("servlet").Pool)
	}
}

func TestFormatMarksBottleneck(t *testing.T) {
	out := snap().Format()
	if !strings.Contains(out, "bottleneck: db") {
		t.Fatalf("missing bottleneck line:\n%s", out)
	}
	if !strings.Contains(out, "*db") {
		t.Fatalf("bottleneck tier not marked:\n%s", out)
	}
	if !strings.Contains(out, "db execs: 70 prepared / 20 text") ||
		!strings.Contains(out, "plan cache: 85 hits / 5 misses") {
		t.Fatalf("missing prepared/plan-cache line:\n%s", out)
	}
}

func TestBottleneckChargesTimeoutsDownstream(t *testing.T) {
	s := snap()
	// A quiet pool that nonetheless burned time on expired deadlines: the
	// database was unresponsive, and the verdict names it with the
	// timing-out qualifier.
	s.Tiers[1].Pool.WaitNanos = 0
	s.Tiers[1].Pool.OpTimeouts = 4
	s.Tiers[1].Pool.TimeoutNanos = 8e8
	if got := s.Bottleneck(); got != "db" {
		t.Fatalf("bottleneck = %q, want db (servlet's db pool timing out)", got)
	}
	out := s.Format()
	if !strings.Contains(out, "bottleneck: db (timing out)") {
		t.Fatalf("missing timing-out verdict:\n%s", out)
	}
	if !strings.Contains(out, "servlet->db faults: 4 op timeouts") {
		t.Fatalf("missing fault line:\n%s", out)
	}
}

func TestDeltaAndFormatDegradedCounters(t *testing.T) {
	before := snap()
	before.Tiers[1].SlowEjections = 1
	before.Tiers[1].DegradedRejects = 2
	after := snap()
	after.Tiers[1].SlowEjections = 3
	after.Tiers[1].DegradedEntries = 1
	after.Tiers[1].DegradedExits = 1
	after.Tiers[1].DegradedRejects = 9
	after.Tiers[1].Degraded = true
	after.Tiers[1].Pool.WaitTimeouts = 5
	after.Tiers[1].Pool.Backoffs = 7
	after.Tiers[1].Pool.BackoffNanos = 2e6

	d := after.Delta(before)
	sv := d.Tier("servlet")
	if sv.SlowEjections != 2 || sv.DegradedEntries != 1 || sv.DegradedExits != 1 || sv.DegradedRejects != 7 {
		t.Fatalf("degraded deltas: %+v", sv)
	}
	if !sv.Degraded {
		t.Fatal("Degraded is a gauge and must pass through the delta")
	}
	out := after.Format()
	if !strings.Contains(out, "servlet cluster health: 3 slow ejections; degraded mode 1 entries / 1 exits, 9 writes fast-failed [DEGRADED: read-only]") {
		t.Fatalf("missing cluster-health line:\n%s", out)
	}
	if !strings.Contains(out, "5 pool-wait timeouts, 7 backoffs") {
		t.Fatalf("missing pool fault counters:\n%s", out)
	}
}
