package servlet

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// SessionStore is the write-through replication target for HTTP session
// state: every Session.Set publishes the session's serialized attributes
// here, and a container that has no local copy of a session (or a stale
// one) restores it from here. Sharing one store across the replicated
// application tier is what makes load-balancer failover transparent — the
// surviving backend picks the session up mid-flight with its state intact.
//
// Blobs are opaque to the store (the session manager gob-encodes the
// attribute map); versions are assigned by the store, monotonically per
// session, so a backend can cheaply detect that its local copy is behind
// (the session served requests on another backend since) and refresh.
type SessionStore interface {
	// Save replaces the session's blob and returns its new version.
	Save(id string, data []byte) uint64
	// Load returns the blob and its version.
	Load(id string) (data []byte, version uint64, ok bool)
	// Version returns the current version without the blob — the cheap
	// staleness probe on the session lookup path.
	Version(id string) (uint64, bool)
	// Delete drops the session (explicit expiry).
	Delete(id string)
}

// MemStore is the in-process SessionStore: a mutex-guarded map shared by
// every container replica in the process (the lab's stand-in for a
// replication bus; the interface accommodates an external store for
// multi-process deployments).
type MemStore struct {
	mu   sync.Mutex
	byID map[string]memEntry
}

type memEntry struct {
	data []byte
	ver  uint64
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{byID: make(map[string]memEntry)}
}

// Save implements SessionStore.
func (m *MemStore) Save(id string, data []byte) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.byID[id]
	e.ver++
	e.data = data
	m.byID[id] = e
	return e.ver
}

// Load implements SessionStore.
func (m *MemStore) Load(id string) ([]byte, uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.byID[id]
	return e.data, e.ver, ok
}

// Version implements SessionStore.
func (m *MemStore) Version(id string) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.byID[id]
	return e.ver, ok
}

// Delete implements SessionStore.
func (m *MemStore) Delete(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.byID, id)
}

// Len returns the number of stored sessions.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}

// encodeAttrs serializes a session's attribute map. Attribute values are
// gob-encoded, so applications storing custom types register them
// (gob.Register) — the same contract Java session replication places on
// attribute serializability.
func encodeAttrs(attrs map[string]any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(attrs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeAttrs deserializes a session blob.
func decodeAttrs(data []byte) (map[string]any, error) {
	var attrs map[string]any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&attrs); err != nil {
		return nil, err
	}
	if attrs == nil {
		attrs = make(map[string]any)
	}
	return attrs, nil
}
