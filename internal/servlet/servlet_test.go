package servlet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/ajp"
	"repro/internal/httpd"
	"repro/internal/sqldb"
	"repro/internal/sqldb/wire"
)

type countingServlet struct {
	mu       sync.Mutex
	inits    int
	destroys int
	served   int
}

func (c *countingServlet) Init(*Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inits++
	return nil
}

func (c *countingServlet) Service(_ *Context, req *httpd.Request) (*httpd.Response, error) {
	c.mu.Lock()
	c.served++
	c.mu.Unlock()
	r := httpd.NewResponse()
	r.WriteString("ok:" + req.Path)
	return r, nil
}

func (c *countingServlet) Destroy() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.destroys++
}

func TestContainerLifecycle(t *testing.T) {
	c := NewContainer(Config{})
	cs := &countingServlet{}
	c.Register("/app/", cs)
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn := ajp.NewConnector(addr.String(), 2)
	defer conn.Close()
	for i := 0; i < 3; i++ {
		resp, err := conn.ServeHTTP(&httpd.Request{
			Method: "GET", Path: fmt.Sprintf("/app/x%d", i),
			Header: httpd.Header{}, Query: map[string][]string{},
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("ok:/app/x%d", i); string(resp.Body) != want {
			t.Fatalf("body %q, want %q", resp.Body, want)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.inits != 1 || cs.destroys != 1 || cs.served != 3 {
		t.Fatalf("lifecycle counts: %+v", cs)
	}
}

func TestContainerWithDatabase(t *testing.T) {
	db := sqldb.New()
	sess := db.NewSession()
	if _, err := sess.Exec("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("INSERT INTO t VALUES (1, 'hi')"); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	dbsrv := wire.NewServer(db, nil)
	dbAddr, err := dbsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbsrv.Close()

	c := NewContainer(Config{DBAddr: dbAddr.String(), DBPoolSize: 4})
	c.Register("/q", Func(func(ctx *Context, req *httpd.Request) (*httpd.Response, error) {
		res, err := ctx.DB.Exec("SELECT v FROM t WHERE id = ?", sqldb.Int(1))
		if err != nil {
			return nil, err
		}
		r := httpd.NewResponse()
		r.WriteString(res.Rows[0][0].AsString())
		return r, nil
	}))
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := ajp.NewConnector(addr.String(), 2)
	defer conn.Close()
	resp, err := conn.ServeHTTP(&httpd.Request{Method: "GET", Path: "/q",
		Header: httpd.Header{}, Query: map[string][]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "hi" {
		t.Fatalf("body %q", resp.Body)
	}
}

func TestConnectorConcurrency(t *testing.T) {
	c := NewContainer(Config{})
	c.Register("/", Func(func(_ *Context, req *httpd.Request) (*httpd.Response, error) {
		r := httpd.NewResponse()
		r.WriteString(req.Query.Get("i"))
		return r, nil
	}))
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := ajp.NewConnector(addr.String(), 4)
	defer conn.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &httpd.Request{Method: "GET", Path: "/",
				Header: httpd.Header{},
				Query:  map[string][]string{"i": {fmt.Sprint(i)}}}
			resp, err := conn.ServeHTTP(req)
			if err != nil {
				t.Errorf("rt: %v", err)
				return
			}
			if string(resp.Body) != fmt.Sprint(i) {
				t.Errorf("mismatched response: got %q want %d", resp.Body, i)
			}
		}()
	}
	wg.Wait()
}

func TestLockManagerExclusion(t *testing.T) {
	lm := NewLockManager()
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rel := lm.Acquire([]TableLock{{Table: "items", Write: true}})
				counter++
				rel()
			}
		}()
	}
	wg.Wait()
	if counter != 1600 {
		t.Fatalf("counter %d, want 1600 (lost updates)", counter)
	}
}

func TestLockManagerOrderedMultiAcquire(t *testing.T) {
	lm := NewLockManager()
	var wg sync.WaitGroup
	stop := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 8; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Opposite textual orders must not deadlock.
				set := []TableLock{{Table: "a", Write: true}, {Table: "b", Write: true}}
				if i%2 == 1 {
					set[0], set[1] = set[1], set[0]
				}
				for j := 0; j < 200; j++ {
					rel := lm.Acquire(set)
					rel()
				}
			}()
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-stop:
		t.Fatal("deadlock in ordered multi-acquire")
	}
}

func TestLockManagerSharedReaders(t *testing.T) {
	lm := NewLockManager()
	r1 := lm.Acquire([]TableLock{{Table: "t"}})
	r2 := lm.Acquire([]TableLock{{Table: "t"}})
	r1()
	r2()
	// Duplicate entries merge to the strongest intent.
	rel := lm.Acquire([]TableLock{{Table: "t"}, {Table: "t", Write: true}})
	rel()
	rel() // double release is a no-op via sync.Once
}

func TestSessions(t *testing.T) {
	sm := NewSessionManager()
	req := &httpd.Request{Header: httpd.Header{}}
	resp := httpd.NewResponse()
	s := sm.Ensure(req, resp)
	if s == nil || sm.Len() != 1 {
		t.Fatal("session not created")
	}
	cookie := resp.Header.Get("Set-Cookie")
	if cookie == "" {
		t.Fatal("no Set-Cookie")
	}
	// Round-trip the cookie.
	req2 := &httpd.Request{Header: httpd.Header{}}
	req2.Header.Set("Cookie", "other=1; "+cookie[:len("JSESSIONID=")+9])
	s2 := sm.Lookup(req2)
	if s2 == nil || s2.ID != s.ID {
		t.Fatalf("lookup: %+v, want %q", s2, s.ID)
	}
	s.Set("cart", 42)
	if v, ok := s2.Get("cart"); !ok || v.(int) != 42 {
		t.Fatal("session attrs not shared")
	}
	sm.Expire(s.ID)
	if sm.Lookup(req2) != nil {
		t.Fatal("expired session still resolvable")
	}
}

func TestContextAttrs(t *testing.T) {
	ctx := &Context{}
	ctx.SetAttr("k", "v")
	if v, ok := ctx.Attr("k"); !ok || v.(string) != "v" {
		t.Fatal("attrs")
	}
	if _, ok := ctx.Attr("missing"); ok {
		t.Fatal("missing attr reported present")
	}
}

func TestRegisterAfterStartPanics(t *testing.T) {
	c := NewContainer(Config{})
	c.Register("/a", &countingServlet{})
	if _, err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Register("/b", &countingServlet{})
}
