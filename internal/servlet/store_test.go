package servlet

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/httpd"
)

// twoManagers builds the replicated-tier session setup: two containers'
// managers with distinct routes sharing one store.
func twoManagers() (*SessionManager, *SessionManager, *MemStore) {
	store := NewMemStore()
	m1, m2 := NewSessionManager(), NewSessionManager()
	m1.route, m1.store = "a0", store
	m2.route, m2.store = "a1", store
	return m1, m2, store
}

func cookieReq(id string) *httpd.Request {
	req := &httpd.Request{Method: "GET", Path: "/", Header: httpd.Header{}}
	if id != "" {
		req.Header.Set("Cookie", "JSESSIONID="+id)
	}
	return req
}

func TestEnsureAppendsRouteSuffix(t *testing.T) {
	m1, _, _ := twoManagers()
	resp := httpd.NewResponse()
	s := m1.Ensure(cookieReq(""), resp)
	if want := s.ID; want[len(want)-3:] != ".a0" {
		t.Fatalf("session id %q lacks route suffix", s.ID)
	}
	if c := resp.Header.Get("Set-Cookie"); c != "JSESSIONID="+s.ID+"; Path=/" {
		t.Fatalf("cookie %q", c)
	}
}

func TestWriteThroughRestoresOnOtherBackend(t *testing.T) {
	m1, m2, store := twoManagers()
	resp := httpd.NewResponse()
	s := m1.Ensure(cookieReq(""), resp)
	s.Set("user", "alice")
	s.Set("visits", 3)
	if store.Len() != 1 {
		t.Fatalf("store has %d sessions, want 1", store.Len())
	}

	// Backend a0 dies; the balancer fails the session over to a1, which
	// has never seen it and restores it from the store.
	s2 := m2.Lookup(cookieReq(s.ID))
	if s2 == nil {
		t.Fatal("survivor could not restore the session")
	}
	if v, _ := s2.Get("user"); v != "alice" {
		t.Fatalf("user = %v", v)
	}
	if v, _ := s2.Get("visits"); v != 3 {
		t.Fatalf("visits = %v", v)
	}
}

func TestStaleLocalCopyRefreshes(t *testing.T) {
	m1, m2, _ := twoManagers()
	resp := httpd.NewResponse()
	s := m1.Ensure(cookieReq(""), resp)
	s.Set("count", 1)

	// The session serves on the other backend for a while...
	s2 := m2.Lookup(cookieReq(s.ID))
	s2.Set("count", 2)

	// ...and when it comes back, the first backend's copy must reflect it.
	s1 := m1.Lookup(cookieReq(s.ID))
	if v, _ := s1.Get("count"); v != 2 {
		t.Fatalf("count = %v, want 2 (stale copy served)", v)
	}
}

func TestExpireDeletesFromStore(t *testing.T) {
	m1, m2, store := twoManagers()
	s := m1.Ensure(cookieReq(""), httpd.NewResponse())
	s.Set("k", "v")
	m1.Expire(s.ID)
	if store.Len() != 0 {
		t.Fatalf("store still holds %d sessions", store.Len())
	}
	if got := m2.Lookup(cookieReq(s.ID)); got != nil {
		t.Fatalf("expired session restored: %v", got)
	}
}

func TestNoStoreKeepsLocalSemantics(t *testing.T) {
	m := NewSessionManager()
	resp := httpd.NewResponse()
	s := m.Ensure(cookieReq(""), resp)
	if s.ID != "s00000001" {
		t.Fatalf("bare id %q changed", s.ID)
	}
	s.Set("k", "v")
	if got := m.Lookup(cookieReq(s.ID)); got != s {
		t.Fatal("local lookup broken")
	}
}

func TestConcurrentSessionTrafficAcrossBackends(t *testing.T) {
	// -race exercise: many sessions bouncing between two managers.
	m1, m2, _ := twoManagers()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := httpd.NewResponse()
			s := m1.Ensure(cookieReq(""), resp)
			for i := 0; i < 50; i++ {
				s.Set("n", i)
				if other := m2.Lookup(cookieReq(s.ID)); other != nil {
					other.Set("peer", fmt.Sprintf("w%d", w))
				}
				s = m1.Lookup(cookieReq(s.ID))
			}
		}()
	}
	wg.Wait()
}
